// Command districtlint runs the project's invariant suite (package
// repro/internal/lint) over module packages and exits non-zero when any
// finding survives suppression.
//
// Usage:
//
//	districtlint [-C dir] [-rules rule1,rule2] [patterns...]
//
// Patterns default to ./... and are resolved by `go list` relative to
// the module directory. Findings print one per line in the conventional
// file:line:col: rule: message form.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module directory to lint")
	rules := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: districtlint [-C dir] [-rules rule1,rule2] [patterns...]\n\nrules:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := selectRules(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "districtlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "districtlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "districtlint:", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "districtlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectRules resolves the -rules flag against the suite.
func selectRules(spec string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	names := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (rules: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
