// Command dbproxy runs one Database-proxy: a web service translating one
// heterogeneous database (BIM, SIM, or GIS) to the common open format
// and registering it on the master node.
//
// Usage:
//
//	dbproxy -kind bim -in building.vendora -format vendora \
//	    -district turin -master http://127.0.0.1:8080 -addr :0
//	dbproxy -kind sim -in network.xml -district turin
//	dbproxy -kind gis -district turin -synth 10
//	dbproxy -kind bim -synth 1 -district turin    (synthetic building)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/bim"
	"repro/internal/dbproxy"
	"repro/internal/gis"
	"repro/internal/sim"
)

func main() {
	kind := flag.String("kind", "", "proxy kind: bim | sim | gis (required)")
	in := flag.String("in", "", "database export file to load")
	format := flag.String("format", "vendora", "BIM export format: vendora | vendorb")
	district := flag.String("district", "turin", "district the database belongs to")
	masterURL := flag.String("master", "", "master node base URL (empty: no registration)")
	addr := flag.String("addr", "127.0.0.1:0", "web service listen address")
	synth := flag.Int("synth", 0, "generate a synthetic database of this size instead of loading -in")
	seed := flag.Int64("seed", 1, "synthetic generation seed")
	legacy := flag.Bool("legacy-aliases", false, "serve unversioned legacy route aliases (escape hatch)")
	flag.Parse()

	logger := log.New(os.Stderr, "dbproxy: ", log.LstdFlags)
	var bound string
	var closeFn func()
	var err error

	switch *kind {
	case "bim":
		bound, closeFn, err = runBIM(*in, *format, *district, *masterURL, *addr, *synth, *seed, *legacy)
	case "sim":
		bound, closeFn, err = runSIM(*in, *district, *masterURL, *addr, *synth, *seed, *legacy)
	case "gis":
		bound, closeFn, err = runGIS(*district, *masterURL, *addr, *synth, *seed, *legacy)
	default:
		logger.Fatalf("unknown -kind %q (want bim, sim, or gis)", *kind)
	}
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("%s database proxy listening on http://%s\n", *kind, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Print("shutting down")
	closeFn()
}

func runBIM(in, format, district, masterURL, addr string, synth int, seed int64, legacy bool) (string, func(), error) {
	var building *bim.Building
	switch {
	case synth > 0:
		building = bim.Synthesize(bim.SynthOptions{Seed: seed, Storeys: synth})
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return "", nil, err
		}
		defer f.Close() //lint:ignore closecheck read-only input file; close error cannot lose data
		if format == "vendorb" {
			building, err = bim.DecodeVendorB(f)
		} else {
			building, err = bim.DecodeVendorA(f)
		}
		if err != nil {
			return "", nil, fmt.Errorf("decode %s: %w", in, err)
		}
	default:
		return "", nil, fmt.Errorf("bim proxy needs -in or -synth")
	}
	p, err := dbproxy.NewBIMProxy(district, building)
	if err != nil {
		return "", nil, err
	}
	p.SetLegacyAliases(legacy)
	bound, err := p.Run(addr, masterURL)
	if err != nil {
		return "", nil, err
	}
	return bound, p.Close, nil
}

func runSIM(in, district, masterURL, addr string, synth int, seed int64, legacy bool) (string, func(), error) {
	var network *sim.Network
	switch {
	case synth > 0:
		network = sim.Synthesize(sim.SynthOptions{Seed: seed, Substations: synth})
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return "", nil, err
		}
		defer f.Close() //lint:ignore closecheck read-only input file; close error cannot lose data
		network, err = sim.DecodeExport(f)
		if err != nil {
			return "", nil, fmt.Errorf("decode %s: %w", in, err)
		}
	default:
		return "", nil, fmt.Errorf("sim proxy needs -in or -synth")
	}
	p, err := dbproxy.NewSIMProxy(district, network)
	if err != nil {
		return "", nil, err
	}
	p.SetLegacyAliases(legacy)
	bound, err := p.Run(addr, masterURL)
	if err != nil {
		return "", nil, err
	}
	return bound, p.Close, nil
}

func runGIS(district, masterURL, addr string, synth int, seed int64, legacy bool) (string, func(), error) {
	store := gis.NewStore(0)
	for i := 0; i < synth; i++ {
		lat := 45.05 + float64((seed+int64(i))%40)*0.001
		lon := 7.62 + float64((seed+int64(i*7))%80)*0.001
		err := store.Add(gis.Feature{
			ID:   fmt.Sprintf("urn:district:%s/building:b%02d", district, i),
			Kind: gis.FeatureBuilding, Name: fmt.Sprintf("Building %d", i),
			Footprint: []gis.Point{
				{Lat: lat, Lon: lon}, {Lat: lat + 0.0008, Lon: lon},
				{Lat: lat + 0.0008, Lon: lon + 0.0008}, {Lat: lat, Lon: lon + 0.0008},
			},
		})
		if err != nil {
			return "", nil, err
		}
	}
	p := dbproxy.NewGISProxy(district, store)
	p.SetLegacyAliases(legacy)
	bound, err := p.Run(addr, masterURL)
	if err != nil {
		return "", nil, err
	}
	return bound, p.Close, nil
}
