// Command deviceproxy runs one device-proxy over a simulated device.
// It is the standalone deployment of Fig. 1(b): dedicated layer (choose
// the protocol with -protocol), local database, and web service layer,
// publishing into the middleware hub and registering on the master.
//
// Usage:
//
//	deviceproxy -uri urn:district:turin/building:b01/device:t1 \
//	    -protocol zigbee -master http://127.0.0.1:8080 \
//	    -hub 127.0.0.1:7000 -addr :0 -poll 1s
//
// Instead of the middleware hops, samples can be shipped straight to
// the measurements database's batched /v2 ingest plane — the preferred
// write path:
//
//	deviceproxy -uri ... -ingest http://measuredb-host:9002
//
// The middleware TCP hub and the HTTP publish ingress remain as the
// deprecated event-per-sample fallbacks:
//
//	deviceproxy -uri ... -publish http://measuredb-host:9002
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/dataformat"
	"repro/internal/deviceproxy"
	"repro/internal/middleware"
	"repro/internal/protocol/enocean"
	"repro/internal/protocol/ieee802154"
	"repro/internal/stream"
	"repro/internal/tsdb"
	"repro/internal/wal"
	"repro/internal/wsn"
)

// multiPublisher fans one sample out to several publishers (TCP hub and
// HTTP ingress at once); the first error wins, later targets still run.
type multiPublisher []deviceproxy.Publisher

func (m multiPublisher) Publish(ev middleware.Event) error {
	var first error
	for _, p := range m {
		if err := p.Publish(ev); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func main() {
	uri := flag.String("uri", "", "device ontology URI (required)")
	protocol := flag.String("protocol", "zigbee", "device protocol: ieee802.15.4 | zigbee | enocean | opc-ua")
	masterURL := flag.String("master", "", "master node base URL (empty: no registration)")
	hubAddr := flag.String("hub", "", "middleware hub address (empty: no TCP publishing)")
	publishURL := flag.String("publish", "", "remote service base URL to publish samples to over HTTP, one event per sample (deprecated; empty: none)")
	ingestURL := flag.String("ingest", "", "measurements DB base URL to ship samples to via batched /v2 ingest (empty: none)")
	addr := flag.String("addr", "127.0.0.1:0", "web service listen address")
	poll := flag.Duration("poll", time.Second, "sampling period")
	seed := flag.Int64("seed", 1, "simulation seed")
	rate := flag.Float64("rate", 0, "per-client rate limit on hot data routes, requests/second (0: unlimited)")
	legacy := flag.Bool("legacy-aliases", false, "serve unversioned legacy route aliases (escape hatch)")
	dataDir := flag.String("data-dir", "", "durable storage directory for the proxy's local sample buffer (empty = in-memory)")
	fsync := flag.String("fsync", "none", "WAL fsync policy with -data-dir: none | interval | always")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof")
	flag.Parse()

	logger := log.New(os.Stderr, "deviceproxy: ", log.LstdFlags)
	if *uri == "" {
		logger.Fatal("missing -uri")
	}

	signals := map[dataformat.Quantity]wsn.Signal{
		dataformat.Temperature: {Base: 21, Amplitude: 2, Period: 24 * time.Hour, NoiseStd: 0.1, Min: -10, Max: 40},
		dataformat.Humidity:    {Base: 45, Amplitude: 8, Period: 24 * time.Hour, NoiseStd: 0.8, Min: 0, Max: 100},
	}
	driver, cleanup, actuates, err := buildDriver(*protocol, signals, *seed, *poll)
	if err != nil {
		logger.Fatalf("driver: %v", err)
	}
	defer cleanup()

	var publishers []deviceproxy.Publisher
	if *hubAddr != "" {
		node := middleware.NewNode(middleware.NodeOptions{ID: "devproxy:" + *uri})
		if err := node.Dial(*hubAddr); err != nil {
			logger.Fatalf("middleware hub: %v", err)
		}
		defer node.Close()
		publishers = append(publishers, node)
	}
	if *publishURL != "" {
		publishers = append(publishers, &stream.RemotePublisher{BaseURL: *publishURL})
	}
	var publisher deviceproxy.Publisher
	switch len(publishers) {
	case 0:
	case 1:
		publisher = publishers[0]
	default:
		publisher = multiPublisher(publishers)
	}

	var writer deviceproxy.SampleWriter
	if *ingestURL != "" {
		batcher := (&client.Client{}).Ingest(*ingestURL).Batcher(client.BatcherOptions{
			FlushEvery: *poll,
			OnError:    func(err error) { logger.Printf("ingest flush: %v", err) },
		})
		defer batcher.Close()
		writer = batcher
	}

	var limiter *api.RateLimiter
	if *rate > 0 {
		limiter = api.NewRateLimiter(*rate, int(*rate*2)+1)
	}

	// The local database layer: an in-memory buffer by default, a
	// WAL-backed engine when -data-dir makes the buffer restart-proof.
	var localEngine tsdb.Engine
	if *dataDir != "" {
		mode, err := wal.ParseMode(*fsync)
		if err != nil {
			logger.Fatal(err)
		}
		localEngine, err = tsdb.OpenSharded(tsdb.ShardedOptions{
			Shards: 1,
			Dir:    filepath.Join(*dataDir, "localdb"),
			Fsync:  mode,
			Store:  tsdb.Options{MaxSamplesPerSeries: 8192},
		})
		if err != nil {
			logger.Fatalf("local db: %v", err)
		}
	}

	proxy, err := deviceproxy.New(deviceproxy.Options{
		DeviceURI:            *uri,
		Name:                 *protocol + " device",
		Driver:               driver,
		Senses:               []dataformat.Quantity{dataformat.Temperature, dataformat.Humidity},
		Actuates:             actuates,
		PollEvery:            *poll,
		LocalEngine:          localEngine,
		Writer:               writer,
		Publisher:            publisher,
		MasterURL:            *masterURL,
		RateLimit:            limiter,
		DisableLegacyAliases: !*legacy,
		EnablePprof:          *pprof,
	})
	if err != nil {
		logger.Fatalf("proxy: %v", err)
	}
	bound, err := proxy.Run(*addr)
	if err != nil {
		logger.Fatalf("run: %v", err)
	}
	fmt.Printf("device proxy for %s (%s) listening on http://%s\n", *uri, *protocol, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Print("shutting down")
	proxy.Close()
}

// buildDriver wires one simulated device plus its driver.
func buildDriver(protocol string, signals map[dataformat.Quantity]wsn.Signal, seed int64, poll time.Duration) (deviceproxy.Driver, func(), []dataformat.Quantity, error) {
	switch protocol {
	case "ieee802.15.4":
		radio := ieee802154.NewRadio(ieee802154.RadioOptions{Seed: seed})
		node, err := wsn.NewNode802154(radio, 0x0D15, 0x0010, signals, seed)
		if err != nil {
			return nil, nil, nil, err
		}
		drv, err := wsn.NewDriver802154(radio, 0x0D15, 0x0001, 0x0010, len(signals))
		if err != nil {
			return nil, nil, nil, err
		}
		return drv, func() { node.Close(); radio.Close() }, nil, nil
	case "zigbee":
		radio := ieee802154.NewRadio(ieee802154.RadioOptions{Seed: seed})
		node, err := wsn.NewNodeZigbee(radio, 0x0D15, 0x0020, signals, true, seed)
		if err != nil {
			return nil, nil, nil, err
		}
		drv, err := wsn.NewDriverZigbee(radio, 0x0D15, 0x0002, 0x0020,
			[]dataformat.Quantity{dataformat.Temperature, dataformat.Humidity, dataformat.SwitchState})
		if err != nil {
			return nil, nil, nil, err
		}
		return drv, func() { node.Close(); radio.Close() }, []dataformat.Quantity{dataformat.SwitchState}, nil
	case "enocean":
		link := &wsn.SerialLink{}
		node := wsn.NewNodeEnOcean(link, enocean.EEPTempHumA50401, 0x01800001, signals, seed)
		node.Start(poll / 2)
		node.Emit()
		drv := wsn.NewDriverEnOcean(link, enocean.EEPTempHumA50401, 0x01800001, nil)
		return drv, node.Close, nil, nil
	case "opc-ua":
		node, err := wsn.NewNodeOPCUA(signals, []dataformat.Quantity{dataformat.Temperature}, seed)
		if err != nil {
			return nil, nil, nil, err
		}
		drv, err := wsn.NewDriverOPCUA(node.Addr(),
			[]dataformat.Quantity{dataformat.Temperature, dataformat.Humidity},
			[]dataformat.Quantity{dataformat.Temperature})
		if err != nil {
			node.Close()
			return nil, nil, nil, err
		}
		return drv, node.Close, []dataformat.Quantity{dataformat.Temperature}, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown protocol %q", protocol)
	}
}
