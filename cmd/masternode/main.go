// Command masternode runs the district master node: the unique entry
// point of the infrastructure, holding the ontology and the proxy
// registry. Districts and their entities can be preloaded from a JSON
// ontology file; proxies then register themselves over HTTP.
//
// Usage:
//
//	masternode -addr :8080 [-district turin] [-sweep 1m] [-ttl 5m]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/master"
	"repro/internal/stream"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	district := flag.String("district", "turin", "district to create at startup (empty: none)")
	ttl := flag.Duration("ttl", 5*time.Minute, "proxy liveness TTL")
	sweep := flag.Duration("sweep", time.Minute, "stale-registration sweep period (0 disables)")
	legacy := flag.Bool("legacy-aliases", false, "serve unversioned legacy route aliases (escape hatch; versioned /v1 paths are always served)")
	dataDir := flag.String("data-dir", "", "durable storage directory for the registry-event stream replay ring (empty = in-memory)")
	fsync := flag.String("fsync", "none", "WAL fsync policy with -data-dir: none | interval | always")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	var streamOpts stream.Options
	if *dataDir != "" {
		mode, err := wal.ParseMode(*fsync)
		if err != nil {
			logger.Fatal(err)
		}
		streamOpts.Hub.Dir = filepath.Join(*dataDir, "stream")
		streamOpts.Hub.Fsync = mode
	}
	m := master.New(master.Options{
		LivenessTTL:          *ttl,
		SweepEvery:           *sweep,
		Logger:               logger,
		DisableLegacyAliases: !*legacy,
		Stream:               streamOpts,
		EnablePprof:          *pprof,
	})
	if *district != "" {
		uri, err := m.Ontology().AddDistrict(*district, *district)
		if err != nil {
			logger.Fatalf("create district: %v", err)
		}
		logger.Printf("district %s ready", uri)
	}
	bound, err := m.Serve(*addr)
	if err != nil {
		logger.Fatalf("serve: %v", err)
	}
	fmt.Printf("master node listening on http://%s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Print("shutting down")
	m.Close()
}
