// Command districtsim boots an entire synthetic district in one process
// — master node, middleware hub, measurements database, GIS/BIM/SIM
// proxies, and device proxies over simulated WSN hardware — then prints
// the endpoints so districtctl (or curl) can explore it.
//
// Usage:
//
//	districtsim -buildings 4 -devices 4 -networks 1 -poll 1s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
)

func main() {
	buildings := flag.Int("buildings", 3, "number of buildings")
	networks := flag.Int("networks", 1, "number of distribution networks")
	devices := flag.Int("devices", 4, "devices per building")
	poll := flag.Duration("poll", time.Second, "device sampling period")
	seed := flag.Int64("seed", 1, "synthetic generation seed")
	flag.Parse()

	d, err := core.Bootstrap(core.Spec{
		Buildings:          *buildings,
		Networks:           *networks,
		DevicesPerBuilding: *devices,
		PollEvery:          *poll,
		Seed:               *seed,
	})
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	fmt.Printf("district %q is up:\n", d.Spec.District)
	fmt.Printf("  master node     %s\n", d.MasterURL)
	fmt.Printf("  middleware hub  %s\n", d.HubAddr)
	fmt.Printf("  measurements DB %s\n", d.MeasureURL)
	fmt.Printf("  %d buildings, %d networks, %d device proxies\n",
		len(d.BIMs), len(d.SIMs), len(d.DeviceProxies))
	fmt.Printf("\ntry: districtctl -master %s model -district %s\n", d.MasterURL, d.Spec.District)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			st := d.Measure.Stats()
			fmt.Fprintf(os.Stderr, "measurements: %d ingested, %d series\n", st.Ingested, st.Store.Series)
		case <-sig:
			fmt.Fprintln(os.Stderr, "shutting down")
			d.Close()
			return
		}
	}
}
