// Command districtsim boots an entire synthetic district in one process
// — master node, middleware hub, measurements database, GIS/BIM/SIM
// proxies, and device proxies over simulated WSN hardware — then prints
// the endpoints so districtctl (or curl) can explore it.
//
// Usage:
//
//	districtsim -buildings 4 -devices 4 -networks 1 -poll 1s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/measuredb"
)

func main() {
	buildings := flag.Int("buildings", 3, "number of buildings")
	networks := flag.Int("networks", 1, "number of distribution networks")
	devices := flag.Int("devices", 4, "devices per building")
	poll := flag.Duration("poll", time.Second, "device sampling period")
	seed := flag.Int64("seed", 1, "synthetic generation seed")
	legacy := flag.Bool("legacy-aliases", false, "serve unversioned legacy route aliases on every service (escape hatch)")
	readRate := flag.Float64("read-rate", 0, "measurements DB read-tier rate limit per client IP (req/s, 0 = off)")
	batchRate := flag.Float64("batch-rate", 0, "measurements DB /v2/query batch-tier rate limit per client IP (req/s, 0 = off)")
	ingestRate := flag.Float64("ingest-rate", 0, "measurements DB /v2 ingest write-tier rate limit per client IP (req/s, 0 = off)")
	shards := flag.Int("shards", 0, "measurements DB storage shards (0 = engine default)")
	measureNodes := flag.Int("measure-nodes", 0, "deploy the measurements DB as this many cluster nodes behind one coordinator (0/1 = single service)")
	busWrites := flag.Bool("bus-writes", false, "route device samples over the deprecated middleware bus hop instead of /v2 ingest")
	dataDir := flag.String("data-dir", "", "durable storage directory: WAL+snapshots under the measurements DB, persisted stream replay ring and ingest dedup window (empty = in-memory)")
	fsync := flag.String("fsync", "none", "WAL fsync policy with -data-dir: none | interval | always")
	snapshotEvery := flag.Int("snapshot-every", 0, "snapshot+compact each storage shard's WAL after N rows (0 = engine default)")
	headWindow := flag.Duration("head-window", 0, "with -data-dir: keep this much recent data in the RAM head, compact older samples into columnar block files (0 = engine default 30m, negative = disable blocks)")
	retentionRaw := flag.Duration("retention-raw", 0, "with -data-dir: demote raw samples older than this to 1m/1h rollups (0 = keep forever)")
	retentionRollup := flag.Duration("retention-rollup", 0, "with -data-dir: drop rollups of raw-expired data older than this (0 = keep forever)")
	qcacheBytes := flag.Int64("qcache-bytes", 0, "bound the measurements DB's generation-keyed query result cache in bytes (0 = disabled)")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof on every service")
	flag.Parse()

	d, err := core.Bootstrap(core.Spec{
		Buildings:          *buildings,
		Networks:           *networks,
		DevicesPerBuilding: *devices,
		PollEvery:          *poll,
		Seed:               *seed,
		LegacyAliases:      *legacy,
		MeasureReadRate:    *readRate,
		MeasureBatchRate:   *batchRate,
		MeasureWriteRate:   *ingestRate,
		MeasureShards:      *shards,
		MeasureNodes:       *measureNodes,
		BusWrites:          *busWrites,
		DataDir:            *dataDir,
		FsyncMode:          *fsync,
		SnapshotEvery:      *snapshotEvery,
		HeadWindow:         *headWindow,
		RetentionRaw:       *retentionRaw,
		RetentionRollup:    *retentionRollup,
		QCacheBytes:        *qcacheBytes,
		EnablePprof:        *pprof,
	})
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	fmt.Printf("district %q is up:\n", d.Spec.District)
	fmt.Printf("  master node     %s\n", d.MasterURL)
	fmt.Printf("  middleware hub  %s\n", d.HubAddr)
	if len(d.MeasureNodeURLs) > 0 {
		fmt.Printf("  measurements DB %s (coordinator over %d nodes)\n", d.MeasureURL, len(d.MeasureNodeURLs))
		for i, u := range d.MeasureNodeURLs {
			fmt.Printf("    node %d        %s\n", i, u)
		}
	} else {
		fmt.Printf("  measurements DB %s\n", d.MeasureURL)
	}
	if *dataDir != "" {
		fmt.Printf("  durable storage %s (fsync=%s)\n", *dataDir, *fsync)
	}
	fmt.Printf("  %d buildings, %d networks, %d device proxies\n",
		len(d.BIMs), len(d.SIMs), len(d.DeviceProxies))
	fmt.Printf("\ntry: districtctl -master %s model -district %s\n", d.MasterURL, d.Spec.District)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	// The periodic report goes through the /v2 data plane over HTTP —
	// one batch query aggregating every stored series — so the sim
	// exercises the same path a remote dashboard would.
	mc := d.Client().Measurements(d.MeasureURL)
	ctx := context.Background()
	for {
		select {
		case <-ticker.C:
			var st measuredb.Stats
			if d.Measure != nil {
				st = d.Measure.Stats()
			} else {
				// Clustered deployment: sum the nodes the same way the
				// coordinator's /v1/stats does.
				for _, n := range d.MeasureNodes {
					ns := n.Stats()
					st.Ingested += ns.Ingested
					st.Store.Series += ns.Store.Series
				}
			}
			rsp, err := mc.Query(ctx, measuredb.BatchQuery{
				Selectors: []measuredb.SeriesSelector{{Device: "*"}},
				Aggregate: true,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "measurements: %d ingested, %d series (v2 batch query failed: %v)\n",
					st.Ingested, st.Store.Series, err)
				continue
			}
			fmt.Fprintf(os.Stderr, "measurements: %d ingested; v2 batch: %d series, %d samples aggregated\n",
				st.Ingested, rsp.Series, rsp.Samples)
		case <-sig:
			fmt.Fprintln(os.Stderr, "shutting down")
			d.Close()
			return
		}
	}
}
