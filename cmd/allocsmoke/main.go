// Command allocsmoke is CI's allocation-regression gate for the hot
// paths. It reads `go test -bench` output on stdin, extracts the
// "allocs/row" metric the H benchmarks report, and compares each
// sub-benchmark against the ceilings in a checked-in thresholds file:
//
//	go test -run '^$' -bench 'BenchmarkH[12]' -benchtime 1x . | allocsmoke -thresholds hotalloc_ci.json
//
// The thresholds file maps sub-benchmark names (with any -<procs>
// suffix stripped) to the maximum tolerated allocs/row. A benchmark
// above its ceiling, or a ceiling whose benchmark never ran (a rename
// must not silently disarm the gate), exits non-zero. Benchmarks
// without a ceiling entry pass through unchecked — CSV encode, for
// example, is reported for reference only.
//
// Raw allocs/row, not a benchstat delta, is deliberate: the metric
// counts mallocs per row over the whole op, so it is stable at
// -benchtime=1x on a noisy shared runner where timing comparisons are
// not, and the ceilings (see BENCH_hotpath.json for measured values an
// order of magnitude below them) leave room for scheduling jitter
// without room for an accidental per-row allocation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	thresholds := flag.String("thresholds", "hotalloc_ci.json", "JSON file mapping benchmark name -> max allocs/row")
	flag.Parse()

	raw, err := os.ReadFile(*thresholds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocsmoke:", err)
		os.Exit(2)
	}
	var file struct {
		Note     string             `json:"note"`
		Ceilings map[string]float64 `json:"ceilings"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		fmt.Fprintf(os.Stderr, "allocsmoke: %s: %v\n", *thresholds, err)
		os.Exit(2)
	}

	seen := make(map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the bench output through for the CI log
		name, allocs, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		// Keep the worst observation if a benchmark ran more than once.
		if prev, dup := seen[name]; !dup || allocs > prev {
			seen[name] = allocs
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "allocsmoke: read stdin:", err)
		os.Exit(2)
	}

	failed := false
	for name, max := range file.Ceilings {
		got, ran := seen[name]
		switch {
		case !ran:
			fmt.Fprintf(os.Stderr, "allocsmoke: FAIL %s: benchmark did not run (renamed? the ceiling in %s must follow)\n", name, *thresholds)
			failed = true
		case got > max:
			fmt.Fprintf(os.Stderr, "allocsmoke: FAIL %s: %g allocs/row exceeds ceiling %g\n", name, got, max)
			failed = true
		default:
			fmt.Fprintf(os.Stderr, "allocsmoke: ok   %s: %g allocs/row (ceiling %g)\n", name, got, max)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseBenchLine extracts (benchmark name, allocs/row) from one line of
// go test -bench output, e.g.
//
//	BenchmarkH1_IngestAllocs/transport=ndjson-4   20   7579028 ns/op   0.0139 allocs/row   ...
//
// The -<procs> suffix testing appends to the name is stripped so
// thresholds are portable across runner core counts.
func parseBenchLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] != "allocs/row" {
			continue
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, false
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i >= 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		return name, v, true
	}
	return "", 0, false
}
