// Command districtctl is the end-user application as a CLI: it queries
// the master node, follows the returned proxy URIs, and prints either
// the raw resolutions, the integrated comprehensive area model, device
// data, or issues actuation commands.
//
// Usage:
//
//	districtctl -master http://127.0.0.1:8080 query -district turin
//	districtctl -master ... model -district turin [-bbox 45.06,7.65,45.07,7.67]
//	districtctl -master ... devices -entity urn:district:turin/building:b00
//	districtctl -master ... latest -proxy http://127.0.0.1:9001/ -quantity temperature
//	districtctl -master ... control -proxy http://... -quantity state.switch -value 1
//	districtctl -master ... watch "registry/#"
//	districtctl -master ... watch -url http://measuredb:9002 "measurements/turin/#"
//	districtctl -master ... series -url http://measuredb:9002 [-device 'urn:district:turin/*']
//	districtctl -master ... samples -url http://measuredb:9002 -device <uri> -quantity temperature
//	districtctl -master ... top [-url http://measuredb:9002,...] [-interval 2s]
//	districtctl -master ... trace <trace-id>
//	districtctl -master ... cluster status
//	districtctl -master ... cluster move <shard> <node-url>
//	districtctl -master ... data status [-url http://measuredb:9002]
//	districtctl -master ... data compact [-shard N]
//	districtctl data verify -dir /var/lib/district/measuredb/tsdb
//
// The CLI speaks the sub-client SDK: catalog commands ride
// client.Catalog(), device reads/actuation client.Devices(), live
// streams client.Streams(), and the measurements commands the /v2 data
// plane through client.Measurements() (cursor depagination included).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/awareness"
	"repro/internal/client"
	"repro/internal/dataformat"
	"repro/internal/middleware"
	"repro/internal/stream"
)

func main() {
	masterURL := flag.String("master", "http://127.0.0.1:8080", "master node base URL")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	c := &client.Client{MasterURL: *masterURL}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	// Interrupts cancel in-flight requests and retry backoffs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch cmd {
	case "query":
		err = cmdQuery(ctx, c, args)
	case "model":
		err = cmdModel(ctx, c, args)
	case "devices":
		err = cmdDevices(ctx, c, args)
	case "latest":
		err = cmdLatest(ctx, c, args)
	case "control":
		err = cmdControl(ctx, c, args)
	case "report":
		err = cmdReport(ctx, c, args)
	case "watch":
		err = cmdWatch(ctx, c, args)
	case "series":
		err = cmdSeries(ctx, c, args)
	case "samples":
		err = cmdSamples(ctx, c, args)
	case "top":
		err = cmdTop(ctx, c, args)
	case "trace":
		err = cmdTrace(ctx, c, args)
	case "cluster":
		err = cmdCluster(ctx, c, args)
	case "data":
		err = cmdData(ctx, c, args)
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: districtctl [-master URL] query|model|devices|latest|control|report|watch|series|samples|top|trace|cluster|data [options]")
	os.Exit(2)
}

// measureBase resolves the measurements-database base URL: the -url
// flag, or the MeasureURI advertised by the master for the district.
func measureBase(ctx context.Context, c *client.Client, urlFlag, district string) (string, error) {
	if urlFlag != "" {
		return urlFlag, nil
	}
	qr, err := c.Catalog().Query(ctx, district, client.Area{})
	if err != nil {
		return "", err
	}
	if qr.MeasureURI == "" {
		return "", fmt.Errorf("district %s advertises no measurements database; pass -url", district)
	}
	return qr.MeasureURI, nil
}

// cmdSeries lists the measurement store's series catalog through the
// /v2 data plane, depaginating transparently.
func cmdSeries(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("series", flag.ExitOnError)
	urlFlag := fs.String("url", "", "measurements DB base URL (default: resolve via the master)")
	district := fs.String("district", "turin", "district (for -url resolution)")
	device := fs.String("device", "", "device URI or glob filter ('*' matches any run)")
	quantity := fs.String("quantity", "", "quantity or glob filter")
	fs.Parse(args)
	base, err := measureBase(ctx, c, *urlFlag, *district)
	if err != nil {
		return err
	}
	series, err := c.Measurements(base).AllSeries(ctx,
		client.WithDevice(*device), client.WithQuantity(*quantity))
	if err != nil {
		return err
	}
	for _, s := range series {
		fmt.Printf("  %-60s %-16s %d samples\n", s.Device, s.Quantity, s.Samples)
	}
	fmt.Printf("%d series\n", len(series))
	return nil
}

// cmdSamples walks one series through the auto-depaginating iterator —
// however long the range, the client holds one page at a time.
func cmdSamples(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("samples", flag.ExitOnError)
	urlFlag := fs.String("url", "", "measurements DB base URL (default: resolve via the master)")
	district := fs.String("district", "turin", "district (for -url resolution)")
	device := fs.String("device", "", "device URI (required)")
	quantity := fs.String("quantity", "temperature", "quantity to read")
	limit := fs.Int("limit", 500, "page size for the cursor walk")
	fs.Parse(args)
	if *device == "" {
		return fmt.Errorf("missing -device")
	}
	base, err := measureBase(ctx, c, *urlFlag, *district)
	if err != nil {
		return err
	}
	it := c.Measurements(base).Iter(ctx, *device, *quantity, client.WithLimit(*limit))
	n := 0
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		fmt.Printf("%s  %12.4f\n", p.At.Local().Format("2006-01-02 15:04:05.000"), p.Value)
		n++
	}
	if err := it.Err(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d samples over %d pages\n", n, it.Pages())
	return nil
}

// cmdWatch tails a service's live event stream: by default the master
// node's (registry lifecycle), or any streaming service via -url (the
// measurements database, a device proxy). Measurement payloads are
// decoded and printed as one line per sample; everything else prints as
// raw payload bytes. The subscription reconnects and resumes on its own;
// interrupt to stop.
func cmdWatch(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	urlFlag := fs.String("url", "", "service base URL to stream from (default: the master node)")
	patternFlag := fs.String("pattern", "#", "topic pattern to watch")
	raw := fs.Bool("raw", false, "print raw payloads, skip measurement decoding")
	fs.Parse(args)
	pattern := *patternFlag
	if fs.NArg() > 0 {
		pattern = fs.Arg(0)
	}
	var sub *stream.Subscription
	var err error
	if *urlFlag == "" {
		sub, err = c.Streams().Subscribe(ctx, pattern)
	} else {
		sub, err = c.Streams().SubscribeService(ctx, *urlFlag, pattern)
	}
	if err != nil {
		return err
	}
	defer sub.Close()
	fmt.Fprintf(os.Stderr, "watching %q (interrupt to stop)\n", pattern)
	for ev := range sub.Events {
		printEvent(ev, *raw)
	}
	return sub.Err()
}

// printEvent renders one live event.
func printEvent(ev middleware.Event, raw bool) {
	at := ev.At.Local().Format("15:04:05.000")
	if !raw {
		if doc, err := dataformat.Decode(ev.Payload, dataformat.Sniff(ev.Payload)); err == nil && doc.Measurement != nil {
			m := doc.Measurement
			fmt.Printf("%s  %-60s %10.3f %-8s %s\n", at, ev.Topic, m.Value, m.Unit, m.Device)
			return
		}
	}
	fmt.Printf("%s  %-60s %s\n", at, ev.Topic, ev.Payload)
}

// cmdReport prints the user-awareness report: comfort per building,
// alerts, and the consumption profile peak.
func cmdReport(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	district := fs.String("district", "turin", "district to report on")
	history := fs.Duration("history", time.Hour, "measurement history window")
	tempHigh := fs.Float64("temp-high", 26, "overheat alert threshold (degC)")
	tempLow := fs.Float64("temp-low", 16, "underheat alert threshold (degC)")
	fs.Parse(args)
	model, err := c.BuildAreaModel(ctx, *district, client.Area{}, client.BuildOptions{
		IncludeDevices: true,
		IncludeGIS:     true,
		History:        *history,
	})
	if err != nil && model == nil {
		return err
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: partial model: %v\n", err)
	}
	fmt.Printf("awareness report for %s (%d measurements)\n", model.District, len(model.Measurements))

	for _, e := range model.Entities {
		if e.Kind != dataformat.EntityBuilding {
			continue
		}
		comfort, err := awareness.ComfortIndex(model, e.URI, awareness.DefaultComfort)
		if err != nil {
			continue
		}
		fmt.Printf("  %-45s comfort %5.1f%% (%d samples)\n", e.URI, comfort.InBand*100, comfort.Samples)
	}

	alerts := awareness.Evaluate(model, []awareness.Rule{
		{Name: "overheat", Quantity: dataformat.Temperature,
			Above: awareness.Float(*tempHigh), Severity: awareness.SeverityWarning},
		{Name: "underheat", Quantity: dataformat.Temperature,
			Below: awareness.Float(*tempLow), Severity: awareness.SeverityWarning},
	})
	fmt.Printf("%d alerts\n", len(alerts))
	for _, a := range alerts {
		fmt.Printf("  [%s] %s: %s = %.2f (limit %.2f)\n", a.Severity, a.Rule, a.Device, a.Value, a.Limit)
	}

	if profile, err := awareness.ConsumptionProfile(model, "", time.Hour); err == nil {
		at, w := profile.Peak()
		fmt.Printf("consumption peak: %.0f W mean at %02d:00\n", w, int(at.Hours()))
	}
	return nil
}

// parseBBox parses "minLat,minLon,maxLat,maxLon".
func parseBBox(s string) (client.Area, error) {
	if s == "" {
		return client.Area{}, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return client.Area{}, fmt.Errorf("bbox wants 4 comma-separated numbers, got %q", s)
	}
	var vals [4]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return client.Area{}, fmt.Errorf("bbox component %d: %v", i, err)
		}
		vals[i] = v
	}
	return client.Area{MinLat: vals[0], MinLon: vals[1], MaxLat: vals[2], MaxLon: vals[3]}, nil
}

func cmdQuery(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	district := fs.String("district", "turin", "district to query")
	bbox := fs.String("bbox", "", "area minLat,minLon,maxLat,maxLon")
	fs.Parse(args)
	area, err := parseBBox(*bbox)
	if err != nil {
		return err
	}
	qr, err := c.Catalog().Query(ctx, *district, area)
	if err != nil {
		return err
	}
	fmt.Printf("district %s: %d entities (GIS %s, measurements %s)\n",
		qr.District, len(qr.Entities), orNone(qr.GISURI), orNone(qr.MeasureURI))
	for _, e := range qr.Entities {
		fmt.Printf("  %-9s %-45s -> %s\n", e.Kind, e.URI, orNone(e.ProxyURI))
	}
	return nil
}

func cmdModel(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("model", flag.ExitOnError)
	district := fs.String("district", "turin", "district to query")
	bbox := fs.String("bbox", "", "area minLat,minLon,maxLat,maxLon")
	devices := fs.Bool("devices", true, "include device data")
	fs.Parse(args)
	area, err := parseBBox(*bbox)
	if err != nil {
		return err
	}
	model, err := c.BuildAreaModel(ctx, *district, area, client.BuildOptions{
		IncludeDevices: *devices,
		IncludeGIS:     true,
	})
	if err != nil && model == nil {
		return err
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: partial model: %v\n", err)
	}
	fmt.Printf("comprehensive model of %s: %d entities, %d measurements, %d conflicts, sources: %d\n",
		model.District, len(model.Entities), len(model.Measurements), len(model.Conflicts), len(model.Sources))
	for _, s := range model.Summarize() {
		fmt.Printf("  %-50s %-14s latest %8.2f %-7s (n=%d, mean %.2f)\n",
			s.Device, s.Quantity, s.Latest, s.Unit, s.Count, s.Mean)
	}
	for _, conflict := range model.Conflicts {
		fmt.Printf("  conflict on %s.%s: kept %q (%s), dropped %q (%s)\n",
			conflict.URI, conflict.Property, conflict.Kept, conflict.KeptFrom, conflict.Dropped, conflict.DropFrom)
	}
	return nil
}

func cmdDevices(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("devices", flag.ExitOnError)
	entity := fs.String("entity", "", "entity URI (required)")
	fs.Parse(args)
	if *entity == "" {
		return fmt.Errorf("missing -entity")
	}
	devices, err := c.Catalog().Devices(ctx, *entity)
	if err != nil {
		return err
	}
	for _, d := range devices {
		fmt.Printf("  %-55s %-12s -> %s\n", d.URI, d.Extra["protocol"], orNone(d.ProxyURI))
	}
	return nil
}

func cmdLatest(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("latest", flag.ExitOnError)
	proxy := fs.String("proxy", "", "device proxy base URL (required)")
	quantity := fs.String("quantity", "temperature", "quantity to read")
	fs.Parse(args)
	if *proxy == "" {
		return fmt.Errorf("missing -proxy")
	}
	m, err := c.Devices().Latest(ctx, *proxy, dataformat.Quantity(*quantity))
	if err != nil {
		return err
	}
	fmt.Printf("%s %s = %.3f %s at %s (via %s)\n",
		m.Device, m.Quantity, m.Value, m.Unit, m.Timestamp.Format("15:04:05"), m.Protocol)
	return nil
}

func cmdControl(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("control", flag.ExitOnError)
	proxy := fs.String("proxy", "", "device proxy base URL (required)")
	quantity := fs.String("quantity", "state.switch", "quantity to actuate")
	value := fs.Float64("value", 1, "value to apply")
	fs.Parse(args)
	if *proxy == "" {
		return fmt.Errorf("missing -proxy")
	}
	res, err := c.Devices().Control(ctx, *proxy, dataformat.Quantity(*quantity), *value)
	if err != nil {
		return err
	}
	if !res.Applied {
		return fmt.Errorf("not applied: %s", res.Error)
	}
	fmt.Printf("applied %s=%g on %s\n", res.Quantity, res.Value, res.Device)
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
