package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"text/tabwriter"

	"repro/internal/client"
)

// Cluster commands: "cluster status" renders the master's shard map and
// every node's shard-level state (ownership, on-disk size, WAL depth);
// "cluster move <shard> <node>" performs a live shard handoff —
// freeze, archive copy, replay on the target, map flip, release — while
// ingest keeps running against the coordinator.

func cmdCluster(ctx context.Context, c *client.Client, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: districtctl cluster status|move [options]")
	}
	switch args[0] {
	case "status":
		return cmdClusterStatus(ctx, c, args[1:])
	case "move":
		return cmdClusterMove(ctx, c, args[1:])
	default:
		return fmt.Errorf("unknown cluster subcommand %q (want status or move)", args[0])
	}
}

func cmdClusterStatus(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("cluster status", flag.ExitOnError)
	fs.Parse(args)
	cc := c.Cluster()
	m, err := cc.Map(ctx)
	if err != nil {
		return fmt.Errorf("shard map: %w", err)
	}
	fmt.Printf("shard map epoch %d, %d shards over %d nodes\n", m.Epoch, m.Shards, len(m.Nodes()))
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tSHARD\tOWNED\tMOVING\tSERIES\tSAMPLES\tDISK\tWAL ROWS\tWAL SEGS")
	for _, node := range m.Nodes() {
		st, err := cc.NodeStatus(ctx, node)
		if err != nil {
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\t-\t-\t-\t(%v)\n", node, err)
			continue
		}
		for _, sh := range st.Shards {
			if !sh.Owned && !sh.Moving && sh.Series == 0 {
				continue // empty unowned shard: noise
			}
			fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%d\t%d\t%s\t%d\t%d\n",
				node, sh.Shard, sh.Owned, sh.Moving, sh.Series, sh.Samples,
				sizeOf(sh.DiskBytes), sh.WALPending, sh.WALSegments)
		}
	}
	return tw.Flush()
}

// sizeOf renders a byte count compactly.
func sizeOf(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return strconv.FormatInt(n, 10) + "B"
	}
}

func cmdClusterMove(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("cluster move", flag.ExitOnError)
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("usage: districtctl cluster move <shard> <node-url>")
	}
	shard, err := strconv.Atoi(rest[0])
	if err != nil {
		return fmt.Errorf("bad shard %q", rest[0])
	}
	rep, err := c.Cluster().Move(ctx, shard, rest[1])
	if err != nil {
		return err
	}
	fmt.Printf("moved shard %d: %s -> %s (%d rows replayed, map epoch %d)\n",
		rep.Shard, rep.From, rep.To, rep.Rows, rep.Epoch)
	return nil
}
