package main

import (
	"context"
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/obs"
)

// Ops commands: "top" polls /v1/metrics across services and renders a
// live text dashboard; "trace <id>" prints the span records a service
// retains for one trace, stage timings included. Both ride
// client.Ops(), so they work against any service in the platform.

// opsTargets resolves the service list for an ops command: the -url
// comma list verbatim, or the master plus the district's advertised
// measurements database.
func opsTargets(ctx context.Context, c *client.Client, urlFlag, district string) ([]string, error) {
	if urlFlag != "" {
		var out []string
		for _, u := range strings.Split(urlFlag, ",") {
			if u = strings.TrimSpace(u); u != "" {
				out = append(out, u)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("-url lists no base URLs")
		}
		return out, nil
	}
	targets := []string{c.MasterURL}
	if qr, err := c.Catalog().Query(ctx, district, client.Area{}); err == nil && qr.MeasureURI != "" {
		targets = append(targets, qr.MeasureURI)
	}
	return targets, nil
}

// cmdTop renders a periodically refreshing metrics dashboard: per-route
// request counters, then the obs instruments — histograms as
// p50/p99/count, counters and gauges as plain values.
func cmdTop(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	urlFlag := fs.String("url", "", "comma-separated service base URLs (default: master + the district's measurements DB)")
	district := fs.String("district", "turin", "district (for default -url resolution)")
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	iters := fs.Int("n", 0, "number of refreshes (0: until interrupted)")
	fs.Parse(args)
	targets, err := opsTargets(ctx, c, *urlFlag, *district)
	if err != nil {
		return err
	}
	for i := 0; *iters <= 0 || i < *iters; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(*interval):
			}
			fmt.Print("\x1b[2J\x1b[H") // clear + home between refreshes
		}
		fmt.Printf("districtctl top — %s (refresh %s)\n", time.Now().Format("15:04:05"), *interval)
		for _, base := range targets {
			snap, err := c.Ops(base).Metrics(ctx)
			if err != nil {
				fmt.Printf("\n== %s ==\n  unreachable: %v\n", base, err)
				continue
			}
			printMetrics(base, snap)
		}
	}
	return nil
}

// printMetrics renders one service's metrics snapshot.
func printMetrics(base string, snap *api.MetricsSnapshot) {
	fmt.Printf("\n== %s ==\n", base)
	if len(snap.Routes) > 0 {
		fmt.Printf("  %-44s %10s %8s %9s %9s\n", "ROUTE", "COUNT", "ERRORS", "MEAN_MS", "MAX_MS")
		for _, r := range snap.Routes {
			fmt.Printf("  %-44s %10d %8d %9.2f %9.2f\n", r.Route, r.Count, r.Errors, r.MeanMs, r.MaxMs)
		}
	}
	printQCacheLine(snap)
	if len(snap.Instruments) == 0 {
		return
	}
	fmt.Printf("  %-58s %s\n", "INSTRUMENT", "VALUE")
	for _, in := range snap.Instruments {
		name := in.Name + labelSuffix(in.Labels)
		if in.Histogram != nil {
			h := in.Histogram
			fmt.Printf("  %-58s n=%d p50=%s p99=%s\n",
				name, h.Count, fmtQuantile(*h, 0.5), fmtQuantile(*h, 0.99))
			continue
		}
		fmt.Printf("  %-58s %g\n", name, in.Value)
	}
}

// printQCacheLine digests the query result-cache counters into one
// hit-ratio line when the service has the cache enabled (the raw
// instruments still print below it).
func printQCacheLine(snap *api.MetricsSnapshot) {
	vals := map[string]float64{}
	for _, in := range snap.Instruments {
		switch in.Name {
		case "repro_qcache_hits_total", "repro_qcache_misses_total",
			"repro_qcache_evictions_total", "repro_qcache_bytes", "repro_qcache_entries":
			vals[in.Name] = in.Value
		}
	}
	hits, hasHits := vals["repro_qcache_hits_total"]
	misses, hasMisses := vals["repro_qcache_misses_total"]
	if !hasHits || !hasMisses {
		return
	}
	ratio := 0.0
	if total := hits + misses; total > 0 {
		ratio = 100 * hits / total
	}
	fmt.Printf("  qcache: %.1f%% hit (hits=%.0f misses=%.0f evictions=%.0f) entries=%.0f bytes=%.0f\n",
		ratio, hits, misses, vals["repro_qcache_evictions_total"],
		vals["repro_qcache_entries"], vals["repro_qcache_bytes"])
}

// labelSuffix renders instrument labels as {k=v,...}, sorted.
func labelSuffix(labels obs.Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// fmtQuantile renders a histogram quantile estimate, or "-" while the
// histogram is empty.
func fmtQuantile(h obs.HistogramSnapshot, q float64) string {
	if h.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.4g", h.Quantile(q))
}

// cmdTrace prints the retained span records for one trace ID: one line
// per service hop, stage timings indented beneath it.
func cmdTrace(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	urlFlag := fs.String("url", "", "comma-separated service base URLs to ask (default: master + the district's measurements DB)")
	district := fs.String("district", "turin", "district (for default -url resolution)")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: districtctl trace [-url URL,...] <trace-id>")
	}
	id := fs.Arg(0)
	targets, err := opsTargets(ctx, c, *urlFlag, *district)
	if err != nil {
		return err
	}
	found := 0
	for _, base := range targets {
		tr, err := c.Ops(base).Trace(ctx, id)
		if err != nil {
			continue // not every service saw the trace
		}
		for _, sp := range tr.Spans {
			found++
			fmt.Printf("%s  %-10s %-6s %-40s %3d %9.3fms\n",
				sp.Start.Local().Format("15:04:05.000"), sp.Service, sp.Method, sp.Route, sp.Status, sp.DurationMS)
			for _, st := range sp.Stages {
				fmt.Printf("    %-28s %9.3fms\n", st.Name, st.DurationMS)
			}
		}
	}
	if found == 0 {
		return fmt.Errorf("no retained spans for trace %s (rings are bounded; old traces age out)", id)
	}
	return nil
}
