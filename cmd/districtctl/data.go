package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/client"
	"repro/internal/tsdb"
)

// Data commands, the ops surface of the durable storage layer:
// "data status" renders a running measurements DB's per-shard storage
// report (head vs block sizes, WAL watermarks); "data compact" forces a
// block compaction cycle; "data verify" CRC-checks a data directory on
// disk — WAL segments, snapshots, and every frame of every block file —
// without a running service.

func cmdData(ctx context.Context, c *client.Client, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: districtctl data status|compact|verify [options]")
	}
	switch args[0] {
	case "status":
		return cmdDataStatus(ctx, c, args[1:])
	case "compact":
		return cmdDataCompact(ctx, c, args[1:])
	case "verify":
		return cmdDataVerify(args[1:])
	default:
		return fmt.Errorf("unknown data subcommand %q (want status, compact or verify)", args[0])
	}
}

func cmdDataStatus(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("data status", flag.ExitOnError)
	urlFlag := fs.String("url", "", "measurements DB base URL (default: resolve via the master)")
	district := fs.String("district", "turin", "district (for -url resolution)")
	fs.Parse(args)
	base, err := measureBase(ctx, c, *urlFlag, *district)
	if err != nil {
		return err
	}
	st, err := c.Ops(base).StorageStatus(ctx)
	if err != nil {
		return err
	}
	if !st.Durable {
		fmt.Println("engine is in-memory (no -data-dir); nothing on disk")
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "SHARD\tSERIES\tSAMPLES\tBLOCKS\tBLOCK BYTES\tBLOCK SAMPLES\tWAL ROWS\tWAL SEGS\tDISK\tDIR")
	var blocks int
	var blockBytes, diskBytes int64
	for _, sh := range st.Shards {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%s\t%d\t%d\t%d\t%s\t%s\n",
			sh.Shard, sh.Series, sh.Samples, sh.Blocks, sizeOf(sh.BlockBytes),
			sh.BlockSamples, sh.WALPending, sh.WALSegments, sizeOf(sh.DiskBytes), sh.Dir)
		blocks += sh.Blocks
		blockBytes += sh.BlockBytes
		diskBytes += sh.DiskBytes
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("%d shards, %d blocks, %s in blocks, %s on disk\n",
		len(st.Shards), blocks, sizeOf(blockBytes), sizeOf(diskBytes))
	return nil
}

func cmdDataCompact(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("data compact", flag.ExitOnError)
	urlFlag := fs.String("url", "", "measurements DB base URL (default: resolve via the master)")
	district := fs.String("district", "turin", "district (for -url resolution)")
	shard := fs.Int("shard", -1, "shard to compact (-1: all)")
	fs.Parse(args)
	base, err := measureBase(ctx, c, *urlFlag, *district)
	if err != nil {
		return err
	}
	if err := c.Ops(base).Compact(ctx, *shard); err != nil {
		return err
	}
	if *shard >= 0 {
		fmt.Printf("compacted shard %d\n", *shard)
	} else {
		fmt.Println("compacted all shards")
	}
	return nil
}

func cmdDataVerify(args []string) error {
	fs := flag.NewFlagSet("data verify", flag.ExitOnError)
	dir := fs.String("dir", "", "tsdb data directory (the engine dir holding shard-NNNN/, or one shard dir)")
	fs.Parse(args)
	if *dir == "" && fs.NArg() > 0 {
		*dir = fs.Arg(0)
	}
	if *dir == "" {
		return fmt.Errorf("usage: districtctl data verify -dir <tsdb-dir>")
	}
	results, err := tsdb.VerifyDataDir(*dir)
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "DIR\tSEGS\tRECORDS\tSNAPS\tSNAP RECS\tBLOCKS\tBLOCK BYTES\tTORN TAIL\tORPHANS")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%s\t%d\t%s\n",
			r.Dir, r.WAL.Segments, r.WAL.Records, r.WAL.Snapshots, r.WAL.SnapshotRecords,
			r.Blocks, sizeOf(r.BlockBytes), r.WAL.TornTailBytes, orDash(strings.Join(r.OrphanBlocks, ",")))
	}
	if werr := tw.Flush(); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		return fmt.Errorf("verification FAILED: %w", err)
	}
	fmt.Printf("%d shard dir(s) verified clean\n", len(results))
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
