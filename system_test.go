package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataformat"
	"repro/internal/deviceproxy"
	"repro/internal/master"
	"repro/internal/measuredb"
	"repro/internal/middleware"
	"repro/internal/ontology"
	"repro/internal/proxyhttp"
	"repro/internal/registry"
	"repro/internal/stream"
	"repro/internal/tsdb"
	"repro/internal/wal"
)

// System-level integration tests: whole-infrastructure behaviours that
// no single package test can cover — failure recovery, multi-district
// deployments, XML end-to-end, and the measurements history path.

// TestMain guards the whole suite against goroutine leaks: every test
// here boots real services (masters, proxies, hubs, shard workers) and
// tears them down through Close paths — a worker that outlives its
// Close is a shutdown bug no individual assertion would catch. The
// check snapshots the goroutine count before the run, gives the
// schedulers a settle window after it (idle HTTP keep-alives are
// explicitly closed first), and dumps every stack when the count never
// returns near the baseline.
func TestMain(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if leaked := goroutineLeak(base); leaked != "" {
			fmt.Fprint(os.Stderr, leaked)
			code = 1
		}
	}
	os.Exit(code)
}

// goroutineLeak waits for the goroutine count to settle back to the
// pre-run baseline (plus slack for runtime helpers the first tests
// start: finalizer, timer, and HTTP transport internals). On timeout it
// returns a report with all stacks; empty means no leak.
func goroutineLeak(base int) string {
	const slack = 4
	http.DefaultClient.CloseIdleConnections()
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(5 * time.Second)
	n := 0
	for {
		n = runtime.NumGoroutine()
		if n <= base+slack {
			return ""
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return fmt.Sprintf("system_test: goroutine leak: %d before the run, %d after the settle window (slack %d)\n\n%s\n",
		base, n, slack, buf)
}

func bootstrap(t *testing.T, spec core.Spec) *core.District {
	t.Helper()
	d, err := core.Bootstrap(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestSystemXMLEndToEnd(t *testing.T) {
	d := bootstrap(t, core.Spec{
		Buildings: 1, DevicesPerBuilding: 1,
		Protocols: []core.Protocol{core.ProtoOPCUA},
		PollEvery: 50 * time.Millisecond, Seed: 31,
	})
	if !d.WaitForSamples(1, 10*time.Second) {
		t.Fatal("no samples")
	}
	// The whole client flow with XML as the negotiated encoding.
	c := &client.Client{MasterURL: d.MasterURL, Encoding: dataformat.XML}
	ctx := context.Background()
	model, err := c.BuildAreaModel(ctx, "turin", client.Area{}, client.BuildOptions{
		IncludeDevices: true, IncludeGIS: true,
	})
	if err != nil {
		t.Fatalf("XML flow: %v", err)
	}
	if len(model.Entities) == 0 || len(model.Measurements) == 0 {
		t.Fatalf("XML flow lost data: %d entities, %d measurements",
			len(model.Entities), len(model.Measurements))
	}
}

func TestSystemHistoryThroughMeasureDB(t *testing.T) {
	d := bootstrap(t, core.Spec{
		Buildings: 1, DevicesPerBuilding: 1,
		Protocols: []core.Protocol{core.ProtoZigBee},
		PollEvery: 30 * time.Millisecond, Seed: 32,
	})
	if !d.WaitForSamples(5, 10*time.Second) {
		t.Fatal("no samples")
	}
	// Wait until the middleware has carried at least 5 temperature
	// samples into the global DB (each poll also publishes humidity and
	// switch state, so the ingest counter alone is not enough).
	device := url.QueryEscape("urn:district:turin/building:b00/device:d00")
	historyURL := d.MeasureURL + "/v1/query?device=" + device + "&quantity=temperature"
	var doc *dataformat.Document
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var err error
		doc, err = proxyhttp.GetDoc(nil, historyURL, dataformat.JSON)
		if err == nil && len(doc.Measurements) >= 5 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if doc == nil || len(doc.Measurements) < 5 {
		n := 0
		if doc != nil {
			n = len(doc.Measurements)
		}
		t.Fatalf("history = %d samples; measuredb stats %+v", n, d.Measure.Stats())
	}
	// And the device proxy's own buffer agrees in magnitude.
	c := d.Client()
	ctx := context.Background()
	devices, err := c.Catalog().Devices(ctx, "urn:district:turin/building:b00")
	if err != nil || len(devices) == 0 {
		t.Fatalf("devices: %v %v", devices, err)
	}
	ms, err := c.FetchData(ctx, devices[0].ProxyURI, dataformat.Temperature, time.Time{}, time.Time{})
	if err != nil || len(ms) < 5 {
		t.Fatalf("local buffer: %d samples, %v", len(ms), err)
	}
}

func TestSystemProxyHeartbeatSurvivesMasterAmnesia(t *testing.T) {
	// A master that forgets a registration (restart) must be repopulated
	// by the proxy's heartbeat loop re-registering.
	m := master.New(master.Options{})
	if _, err := m.Ontology().AddDistrict("turin", "Torino"); err != nil {
		t.Fatal(err)
	}
	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	reg := &proxyhttp.Registrar{
		MasterURL: "http://" + addr,
		Registration: registry.Registration{
			ID: "p1", Kind: registry.KindGIS,
			BaseURL: "http://p1/", EntityURI: "urn:district:turin",
		},
		HeartbeatEvery: 20 * time.Millisecond,
	}
	if err := reg.Start(); err != nil {
		t.Fatal(err)
	}
	defer reg.Stop()
	if m.Registry().Len() != 1 {
		t.Fatal("initial registration missing")
	}
	// Simulate master-side amnesia.
	if err := m.Registry().Deregister("p1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.Registry().Len() == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("proxy did not re-register after master forgot it")
}

func TestSystemStaleProxySwept(t *testing.T) {
	m := master.New(master.Options{LivenessTTL: 50 * time.Millisecond, SweepEvery: 20 * time.Millisecond})
	if _, err := m.Ontology().AddDistrict("turin", "Torino"); err != nil {
		t.Fatal(err)
	}
	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Register once without heartbeats.
	one := &proxyhttp.Registrar{
		MasterURL: "http://" + addr,
		Registration: registry.Registration{
			ID: "dying", Kind: registry.KindBIM,
			BaseURL: "http://x/", EntityURI: "urn:district:turin",
		},
	}
	if err := one.Register(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.Registry().Len() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("stale proxy never swept")
}

func TestSystemMultiDistrict(t *testing.T) {
	// One master can serve several districts, each with its own tree;
	// queries stay scoped.
	m := master.New(master.Options{})
	ont := m.Ontology()
	for _, name := range []string{"turin", "milan"} {
		uri, err := ont.AddDistrict(name, name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := ont.AddEntity(uri, ontology.KindBuilding,
				fmt.Sprintf("b%02d", i), "B", 45+float64(i)*0.01, 7.6); err != nil {
				t.Fatal(err)
			}
		}
	}
	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c := &client.Client{MasterURL: "http://" + addr}
	ctx := context.Background()
	for _, name := range []string{"turin", "milan"} {
		qr, err := c.Query(ctx, name, client.Area{})
		if err != nil {
			t.Fatal(err)
		}
		if qr.District != name || len(qr.Entities) != 3 {
			t.Fatalf("%s: %+v", name, qr)
		}
		for _, e := range qr.Entities {
			if want := "urn:district:" + name; e.URI[:len(want)] != want {
				t.Fatalf("cross-district leak: %s in %s query", e.URI, name)
			}
		}
	}
}

func TestSystemMiddlewareSurvivesLeafCrash(t *testing.T) {
	hub := middleware.NewNode(middleware.NodeOptions{ID: "hub", Relay: true})
	hubAddr, err := hub.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	crash := middleware.NewNode(middleware.NodeOptions{ID: "crash"})
	if err := crash.Dial(hubAddr); err != nil {
		t.Fatal(err)
	}
	waitPeers(t, crash, 1)
	crash.Close() // leaf dies

	// Hub keeps serving the survivors.
	alive := middleware.NewNode(middleware.NodeOptions{ID: "alive"})
	got := make(chan struct{}, 1)
	if _, err := alive.Subscribe("x/#", func(middleware.Event) {
		select {
		case got <- struct{}{}:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := alive.Dial(hubAddr); err != nil {
		t.Fatal(err)
	}
	defer alive.Close()
	waitPeers(t, alive, 1)
	time.Sleep(50 * time.Millisecond)

	pub := middleware.NewNode(middleware.NodeOptions{ID: "pub"})
	if err := pub.Dial(hubAddr); err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	waitPeers(t, pub, 1)
	if err := pub.Publish(middleware.Event{Topic: "x/y", Payload: []byte("1")}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("event lost after peer crash")
	}
}

func waitPeers(t *testing.T, n *middleware.Node, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(n.Peers()) >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node %s never reached %d peers", n.ID(), want)
}

// TestSystemStreamBridgeExactlyOnce is the federated streaming walk of
// the paper's Fig. 1 topology over HTTP: two measurements-database
// services run on separate HTTP servers; a publisher injects samples
// into service A's /v1/publish ingress; a stream.Bridge mirrors A's
// measurement subtree into service B's bus (so B ingests everything A
// hears); and a live subscriber on B's stream is killed mid-flight and
// resumed with Last-Event-ID — it must observe every event exactly once.
func TestSystemStreamBridgeExactlyOnce(t *testing.T) {
	ctx := context.Background()
	newService := func() (*measuredb.Service, string) {
		s := measuredb.New(measuredb.Options{})
		addr, err := s.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s, "http://" + addr
	}
	svcA, urlA := newService()
	svcB, urlB := newService()

	bridge, err := stream.NewBridge(ctx, urlA, measuredb.IngestPattern, svcB.Bus(), stream.SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	// First half of the subscriber's life on B's stream.
	sub, err := stream.Subscribe(ctx, urlB, measuredb.IngestPattern, stream.SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	waitStreamSubs := func(s *measuredb.Service, n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if s.Stats().Stream.Subscribers >= n {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("stream never reached %d subscribers: %+v", n, s.Stats().Stream)
	}
	waitStreamSubs(svcA, 1) // the bridge is attached
	waitStreamSubs(svcB, 1) // the subscriber is attached

	// Publish numbered samples into A over its HTTP ingress — the path a
	// device proxy on another host uses.
	const total = 40
	deviceURI := "urn:district:turin/building:b00/device:e2e"
	base := time.Now().UTC().Truncate(time.Second)
	pub := &stream.RemotePublisher{BaseURL: urlA}
	for i := 0; i < total; i++ {
		m := dataformat.Measurement{
			Source: urlA, Device: deviceURI,
			Quantity: dataformat.Temperature, Unit: dataformat.Celsius,
			Value: float64(i), Timestamp: base.Add(time.Duration(i) * time.Second),
		}
		payload, err := dataformat.NewMeasurementDoc(m).Encode(dataformat.JSON)
		if err != nil {
			t.Fatal(err)
		}
		if err := pub.Publish(middleware.Event{
			Topic:   measuredb.Topic(deviceURI, m.Quantity),
			Payload: payload,
			Headers: map[string]string{"content-type": "application/json"},
			At:      m.Timestamp,
		}); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}

	seen := make(map[float64]int)
	var cursor uint64 // stream ID of the last event the consumer processed
	receive := func(s *stream.Subscription, n int) {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for got := 0; got < n; {
			select {
			case ev, ok := <-s.Events:
				if !ok {
					t.Fatalf("stream ended early (%v) after %d/%d", s.Err(), got, n)
				}
				doc, err := dataformat.Decode(ev.Payload, dataformat.Sniff(ev.Payload))
				if err != nil || doc.Measurement == nil {
					t.Fatalf("bad payload on %s: %v", ev.Topic, err)
				}
				seen[doc.Measurement.Value]++
				cursor = stream.EventID(ev)
				got++
			case <-deadline:
				t.Fatalf("timeout after %d/%d events (bridge mirrored %d)", got, n, bridge.Mirrored())
			}
		}
	}

	// Kill the subscriber mid-stream: events already buffered client-side
	// but not yet consumed die with it. The resume cursor is the stamped
	// stream ID of the last event actually processed, so the replacement
	// subscription replays exactly the unprocessed remainder.
	receive(sub, 15)
	sub.Close()
	resumed, err := stream.Subscribe(ctx, urlB, measuredb.IngestPattern, stream.SubscribeOptions{
		AfterID: cursor,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	receive(resumed, total-15)

	for i := 0; i < total; i++ {
		if n := seen[float64(i)]; n != 1 {
			t.Fatalf("event %d observed %d times across the kill/resume", i, n)
		}
	}

	// Both stores hold the full series: A ingested its own ingress
	// traffic, B ingested what the bridge mirrored.
	key := tsdb.SeriesKey{Device: deviceURI, Quantity: string(dataformat.Temperature)}
	for name, svc := range map[string]*measuredb.Service{"A": svcA, "B": svcB} {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) && svc.Store().Len(key) < total {
			time.Sleep(10 * time.Millisecond)
		}
		if n := svc.Store().Len(key); n != total {
			t.Fatalf("service %s ingested %d/%d samples", name, n, total)
		}
	}
}

// TestSystemDeviceProxyLiveStream subscribes straight to one device
// proxy's stream endpoint — no middleware link, no measurements DB —
// and sees its samples live.
func TestSystemDeviceProxyLiveStream(t *testing.T) {
	d := bootstrap(t, core.Spec{
		Buildings: 1, DevicesPerBuilding: 1,
		Protocols: []core.Protocol{core.ProtoOPCUA},
		PollEvery: time.Hour, Seed: 35, // polls driven by hand below
	})
	c := d.Client()
	ctx := context.Background()
	devices, err := c.Catalog().Devices(ctx, "urn:district:turin/building:b00")
	if err != nil || len(devices) != 1 {
		t.Fatalf("devices: %v %v", devices, err)
	}
	sub, err := c.SubscribeService(ctx, devices[0].ProxyURI, "measurements/#")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	proxy := d.DeviceProxies[0]
	deadline := time.Now().Add(10 * time.Second)
	for proxy.Stream().Hub().Stats().Subscribers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("proxy stream never saw the subscriber")
		}
		time.Sleep(5 * time.Millisecond)
	}
	proxy.PollOnce()
	select {
	case ev := <-sub.Events:
		doc, err := dataformat.Decode(ev.Payload, dataformat.Sniff(ev.Payload))
		if err != nil || doc.Measurement == nil {
			t.Fatalf("bad live payload: %v", err)
		}
		if doc.Measurement.Device != devices[0].URI {
			t.Fatalf("sample from %s, want %s", doc.Measurement.Device, devices[0].URI)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no live sample from the device proxy stream")
	}
}

// TestSystemBatchActuation drives the batch endpoint through the client
// against a real (simulated OPC-UA) device.
func TestSystemBatchActuation(t *testing.T) {
	d := bootstrap(t, core.Spec{
		Buildings: 1, DevicesPerBuilding: 1,
		Protocols: []core.Protocol{core.ProtoOPCUA},
		PollEvery: time.Hour, Seed: 36,
	})
	c := d.Client()
	ctx := context.Background()
	devices, err := c.Catalog().Devices(ctx, "urn:district:turin/building:b00")
	if err != nil || len(devices) != 1 {
		t.Fatalf("devices: %v %v", devices, err)
	}
	rsp, err := c.ControlBatch(ctx, devices[0].ProxyURI, []deviceproxy.ControlRequest{
		{Quantity: dataformat.Temperature, Value: 19},
		{Quantity: dataformat.Quantity("no.such.actuator"), Value: 1},
		{Quantity: dataformat.Temperature, Value: 21},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rsp.Applied != 2 || len(rsp.Results) != 3 {
		t.Fatalf("batch response = %+v", rsp)
	}
	if !rsp.Results[0].Applied || rsp.Results[1].Applied || !rsp.Results[2].Applied {
		t.Fatalf("per-command outcomes wrong: %+v", rsp.Results)
	}
	if rsp.Results[1].Error == "" {
		t.Fatal("failed command carries no error")
	}
}

func TestSystemDeviceProxyStatsEndpoint(t *testing.T) {
	d := bootstrap(t, core.Spec{
		Buildings: 1, DevicesPerBuilding: 1,
		Protocols: []core.Protocol{core.ProtoEnOcean},
		PollEvery: 30 * time.Millisecond, Seed: 33,
	})
	if !d.WaitForSamples(2, 10*time.Second) {
		t.Fatal("no samples")
	}
	c := d.Client()
	ctx := context.Background()
	devices, err := c.Catalog().Devices(ctx, "urn:district:turin/building:b00")
	if err != nil || len(devices) != 1 {
		t.Fatalf("devices: %v %v", devices, err)
	}
	rsp, err := http.Get(devices[0].ProxyURI + "v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", rsp.StatusCode)
	}
}

func TestSystemOntologyEndpointReflectsRegistrations(t *testing.T) {
	d := bootstrap(t, core.Spec{
		Buildings: 1, DevicesPerBuilding: 1,
		Protocols: []core.Protocol{core.ProtoOPCUA},
		PollEvery: time.Hour, Seed: 34,
	})
	doc, err := proxyhttp.GetDoc(nil, d.MasterURL+"/v1/ontology?uri=urn:district:turin", dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	e := doc.Entity
	if e == nil {
		t.Fatal("no entity")
	}
	// The building node must carry its BIM proxy URI from registration.
	var building *dataformat.Entity
	for i := range e.Children {
		if e.Children[i].Kind == dataformat.EntityBuilding {
			building = &e.Children[i]
		}
	}
	if building == nil {
		t.Fatal("no building in ontology export")
	}
	if v, ok := building.Prop(ontology.PropProxyURI); !ok || v == "" {
		t.Error("building lacks registered proxy URI")
	}
	if len(building.Children) != 1 {
		t.Fatalf("device leaves = %d", len(building.Children))
	}
	if v, ok := building.Children[0].Prop(ontology.PropProxyURI); !ok || v == "" {
		t.Error("device lacks registered proxy URI")
	}
}

// ---------------------------------------------------------------------
// Durable storage layer: crash-recovery goldens
// ---------------------------------------------------------------------

// durableMeasureDB boots a durable measurements DB over dir with full
// fsync, serving on a fresh port. The caller decides whether to Close
// it — NOT closing is the in-process stand-in for a SIGKILL: nothing
// graceful runs, and everything acked was already fsynced.
func durableMeasureDB(t *testing.T, dir string) (*measuredb.Service, string) {
	t.Helper()
	s, err := measuredb.Open(measuredb.Options{
		DataDir:              dir,
		Fsync:                wal.FsyncAlways,
		Shards:               2,
		DisableLegacyAliases: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return s, "http://" + addr
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	rsp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	raw, err := io.ReadAll(rsp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if rsp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, rsp.StatusCode, raw)
	}
	return string(raw)
}

func postDurableIngest(t *testing.T, base, key, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v2/ingest", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	raw, _ := io.ReadAll(rsp.Body)
	return rsp, string(raw)
}

// TestSystemDurableIngestSurvivesRestart is the acked-rows golden: rows
// acked through /v2/ingest with -data-dir set survive a kill+restart
// byte-for-byte (query responses identical pre/post, torn WAL tail
// included), and retrying the acked batch with its Idempotency-Key
// replays from the persisted dedup window instead of double-appending.
func TestSystemDurableIngestSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	const dev = "urn:district:turin/building:b01/device:dur0"
	body := `{"rows":[
		{"device":"` + dev + `","quantity":"temperature","at":"2015-03-09T10:00:00Z","value":20.5},
		{"device":"` + dev + `","quantity":"temperature","at":"2015-03-09T10:01:00Z","value":21.25},
		{"device":"` + dev + `","quantity":"humidity","at":"2015-03-09T10:00:00Z","value":45}
	]}`

	// "Killed" later: no graceful Close happens before the restart
	// below opens the same data dir — the deferred Close only runs at
	// test end, after every post-restart assertion, so its goroutines
	// do not outlive the test (the TestMain leak guard checks).
	// Closing late adds no bytes: every acked append is already flushed
	// to the OS, a late Close merely fsyncs and releases descriptors.
	s1, url1 := durableMeasureDB(t, dir)
	defer s1.Close()
	rsp, raw := postDurableIngest(t, url1, "restart-key", body)
	if rsp.StatusCode != http.StatusOK || !strings.Contains(raw, `"accepted":3`) {
		t.Fatalf("ingest = %d: %s", rsp.StatusCode, raw)
	}
	samplesPath := "/v2/series/" + url.PathEscape(dev) + "/temperature/samples"
	pre := httpGetBody(t, url1+samplesPath)

	// The kill also tears the tail of a shard WAL mid-frame.
	segs, err := filepath.Glob(filepath.Join(dir, "tsdb", "shard-*", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments under the data dir: %v", err)
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xca, 0xfe, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, url2 := durableMeasureDB(t, dir)
	defer s2.Close()
	post := httpGetBody(t, url2+samplesPath)
	if pre != post {
		t.Fatalf("samples differ across restart:\npre:  %s\npost: %s", pre, post)
	}

	// The acked batch retried with its key replays, not re-executes.
	preStats := s2.Store().Stats()
	rsp, raw = postDurableIngest(t, url2, "restart-key", body)
	if rsp.StatusCode != http.StatusOK {
		t.Fatalf("retry = %d: %s", rsp.StatusCode, raw)
	}
	if rsp.Header.Get("Idempotent-Replay") != "true" || !strings.Contains(raw, `"replayed":true`) {
		t.Fatalf("retry not replayed: %s", raw)
	}
	if got := s2.Store().Stats(); got.Samples != preStats.Samples {
		t.Fatalf("retry duplicated rows: %d -> %d samples", preStats.Samples, got.Samples)
	}
}

// TestSystemSSEResumeAcrossRestart is the stream golden: a subscriber
// that saw events, went away, and comes back AFTER the service was
// killed and restarted resumes with its pre-restart Last-Event-ID and
// receives exactly the events it missed — once each, no duplicates —
// because the replay ring is journaled next to the tsdb WAL.
func TestSystemSSEResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	const dev = "urn:district:turin/building:b02/device:dur1"
	ctx := context.Background()
	row := func(val float64) string {
		return fmt.Sprintf(`{"rows":[{"device":"%s","quantity":"temperature","at":"2015-03-09T10:0%d:00Z","value":%g}]}`,
			dev, int(val), val)
	}
	values := func(evs []middleware.Event) []float64 {
		var out []float64
		for _, ev := range evs {
			doc, err := dataformat.Decode(ev.Payload, dataformat.Sniff(ev.Payload))
			if err != nil || doc.Measurement == nil {
				t.Fatalf("bad stream payload: %v", err)
			}
			out = append(out, doc.Measurement.Value)
		}
		return out
	}
	collectN := func(sub *stream.Subscription, n int) []middleware.Event {
		t.Helper()
		var out []middleware.Event
		deadline := time.After(10 * time.Second)
		for len(out) < n {
			select {
			case ev, ok := <-sub.Events:
				if !ok {
					t.Fatalf("stream ended after %d/%d events", len(out), n)
				}
				out = append(out, ev)
			case <-deadline:
				t.Fatalf("timeout after %d/%d events", len(out), n)
			}
		}
		return out
	}
	waitSubscribers := func(s *measuredb.Service, n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for s.Stream().Hub().Stats().Subscribers < n {
			if time.Now().After(deadline) {
				t.Fatalf("hub never reached %d subscribers", n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// "Killed" later: closed only at test end (see the restart test
	// above) so the restart still sees a crash-shaped data dir while
	// the goroutines are reclaimed before the leak guard runs.
	s1, url1 := durableMeasureDB(t, dir)
	defer s1.Close()

	subA, err := stream.Subscribe(ctx, url1, "measurements/#", stream.SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitSubscribers(s1, 1)
	for _, v := range []float64{1, 2, 3} {
		if rsp, raw := postDurableIngest(t, url1, "", row(v)); rsp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: %s", raw)
		}
	}
	if got := values(collectN(subA, 3)); got[0] != 1 || got[2] != 3 {
		t.Fatalf("pre-restart events = %v", got)
	}
	lastID := subA.LastID()

	// A second subscriber keeps the hub live while A is away (attached
	// BEFORE A goes, so the subscriber count never touches zero and
	// every gap event is journaled as it fans out).
	bctx, bcancel := context.WithCancel(ctx)
	subB, err := stream.Subscribe(bctx, url1, "measurements/#", stream.SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitSubscribers(s1, 2)
	subA.Close()
	for _, v := range []float64{4, 5, 6} {
		if rsp, raw := postDurableIngest(t, url1, "", row(v)); rsp.StatusCode != http.StatusOK {
			t.Fatalf("gap ingest: %s", raw)
		}
	}
	collectN(subB, 3) // the gap events really went out pre-kill
	bcancel()
	subB.Close()

	// Kill + restart, then A resumes with its pre-restart cursor.
	s2, url2 := durableMeasureDB(t, dir)
	defer s2.Close()
	subA2, err := stream.Subscribe(ctx, url2, "measurements/#", stream.SubscribeOptions{AfterID: lastID})
	if err != nil {
		t.Fatal(err)
	}
	defer subA2.Close()
	gap := collectN(subA2, 3)
	if got := values(gap); got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Fatalf("resumed gap = %v, want [4 5 6]", got)
	}
	// And the stream continues live past the replayed gap, IDs still
	// monotonic — no duplicates of the gap can follow.
	waitSubscribers(s2, 1)
	if rsp, raw := postDurableIngest(t, url2, "", row(7)); rsp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart ingest: %s", raw)
	}
	next := collectN(subA2, 1)
	if got := values(next); got[0] != 7 {
		t.Fatalf("post-restart event = %v, want [7]", got)
	}
	if stream.EventID(next[0]) <= stream.EventID(gap[2]) {
		t.Fatalf("IDs not monotonic across restart: %d then %d",
			stream.EventID(gap[2]), stream.EventID(next[0]))
	}
}

// ---------------------------------------------------------------------
// Cluster: live shard handoff golden
// ---------------------------------------------------------------------

// clusterHandoffNode boots one durable cluster node against the master,
// serving on a fresh port, with its self URL announced for ownership
// checks.
func clusterHandoffNode(t *testing.T, masterURL string, shards int) (*measuredb.Service, string) {
	t.Helper()
	s, err := measuredb.Open(measuredb.Options{
		DataDir:              t.TempDir(),
		Fsync:                wal.FsyncNone,
		Shards:               shards,
		DisableLegacyAliases: true,
		Cluster: &measuredb.ClusterOptions{
			Master:  masterURL,
			Refresh: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.SetClusterSelf("http://" + addr)
	return s, "http://" + addr
}

// clusterBatchQuery runs one /v2/query against base and returns the raw
// response bytes plus the decoded document.
func clusterBatchQuery(t *testing.T, base string, req measuredb.BatchQuery) ([]byte, measuredb.BatchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := http.Post(base+"/v2/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	raw, err := io.ReadAll(rsp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if rsp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d: %s", rsp.StatusCode, raw)
	}
	var out measuredb.BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return raw, out
}

// TestSystemClusterHandoffUnderLiveIngest is the kill-free handoff
// golden: a 2-node cluster behind one coordinator keeps accepting keyed
// /v2 writes while one shard is moved live from node 0 to node 1 —
// freeze, archive, replay, epoch flip, release. Afterwards every acked
// row is present exactly once, a bounded /v2/query over a quiesced
// series is byte-for-byte identical across the epoch flip, and a keyed
// batch retried across the move still replays instead of re-executing.
func TestSystemClusterHandoffUnderLiveIngest(t *testing.T) {
	ctx := context.Background()
	m := master.New(master.Options{})
	maddr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	masterURL := "http://" + maddr

	const shards = 4
	n0, url0 := clusterHandoffNode(t, masterURL, shards)
	n1, url1 := clusterHandoffNode(t, masterURL, shards)

	// Everything starts on node 0; the move drags one shard to node 1.
	owners := make([]string, shards)
	for i := range owners {
		owners[i] = url0
	}
	preMap, err := m.ClusterMap().Set(cluster.Map{Shards: shards, Owners: owners})
	if err != nil {
		t.Fatal(err)
	}

	coord, err := measuredb.OpenCoordinator(measuredb.CoordinatorOptions{
		Master: masterURL, Refresh: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	caddr, err := coord.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coordURL := "http://" + caddr

	devInShard := func(shard int) string {
		for i := 0; ; i++ {
			dev := fmt.Sprintf("urn:district:turin/cluster:c%d/device:d%d", shard, i)
			if tsdb.ShardOf(dev, shards) == shard {
				return dev
			}
		}
	}
	const moveShard = 1
	movDev := devInShard(moveShard) // rides the moving shard
	stayDev := devInShard(2)        // stays on node 0 throughout

	c := &client.Client{MasterURL: masterURL}
	ing := c.Ingest(coordURL)
	base := time.Now().UTC().Add(-time.Hour).Truncate(time.Second)

	// Quiesced series on the moving shard: written once, then only read.
	// Its bounded query is the byte-for-byte golden across the flip.
	static := []measuredb.Point{
		{Device: movDev, Quantity: "humidity", At: base.Add(-30 * time.Minute), Value: 41},
		{Device: movDev, Quantity: "humidity", At: base.Add(-29 * time.Minute), Value: 42.5},
		{Device: movDev, Quantity: "humidity", At: base.Add(-28 * time.Minute), Value: 44},
	}
	if res, err := ing.Append(ctx, static); err != nil || res.Accepted != len(static) {
		t.Fatalf("static seed: %+v, %v", res, err)
	}
	// A keyed stay-shard batch: retried verbatim after the move below to
	// prove the dedup window still replays across the cluster epoch flip.
	dedupRows := []measuredb.Point{
		{Device: stayDev, Quantity: "humidity", At: base.Add(-30 * time.Minute), Value: 7},
	}
	if res, err := ing.Append(ctx, dedupRows, client.WithIdempotencyKey("handoff-dedup")); err != nil || res.Accepted != 1 {
		t.Fatalf("dedup seed: %+v, %v", res, err)
	}
	// Force a block compaction on node 0: the quiesced humidity rows are
	// ~90 minutes old, well past the head window, so they move from the
	// WAL into a columnar block file. The shard handoff below must ship
	// those block bytes for the golden query to survive the flip.
	if err := c.Ops(url0).Compact(ctx, -1); err != nil {
		t.Fatalf("pre-move compaction: %v", err)
	}
	st0, err := c.Ops(url0).StorageStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st0.Durable || st0.Shards[moveShard].Blocks == 0 {
		t.Fatalf("moving shard has no blocks before the move: %+v", st0.Shards[moveShard])
	}
	goldenQuery := measuredb.BatchQuery{
		Selectors: []measuredb.SeriesSelector{{Device: movDev, Quantity: "humidity"}},
		From:      base.Add(-40 * time.Minute),
		To:        base.Add(-20 * time.Minute),
		Limit:     100,
	}
	goldenPre, pre := clusterBatchQuery(t, coordURL, goldenQuery)
	if pre.Series != 1 || pre.Samples != len(static) {
		t.Fatalf("golden pre-move: %d series, %d samples", pre.Series, pre.Samples)
	}

	// Live keyed ingest through the coordinator: one row per series per
	// batch at distinct timestamps. A batch whose delivery fails is
	// retried with the SAME key until it acks — exactly how a real
	// producer rides out a handoff.
	var (
		mu      sync.Mutex
		acked   []measuredb.Point
		loopErr error
	)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rows := []measuredb.Point{
				{Device: movDev, Quantity: "temperature", At: base.Add(time.Duration(i) * time.Second), Value: float64(i)},
				{Device: stayDev, Quantity: "temperature", At: base.Add(time.Duration(i) * time.Second), Value: float64(-i)},
			}
			key := fmt.Sprintf("handoff-live-%d", i)
			delivered := false
			for attempt := 0; attempt < 50 && !delivered; attempt++ {
				res, err := ing.Append(ctx, rows, client.WithIdempotencyKey(key))
				if err == nil && res.Rejected == 0 {
					delivered = true
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			mu.Lock()
			if delivered {
				acked = append(acked, rows...)
			} else if loopErr == nil {
				loopErr = fmt.Errorf("batch %d never acked through the handoff", i)
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	time.Sleep(250 * time.Millisecond) // let pre-move batches land
	rep, err := c.Cluster().Move(ctx, moveShard, url1)
	if err != nil {
		t.Fatalf("move: %v", err)
	}
	if rep.From != url0 || rep.To != url1 || rep.Rows == 0 || rep.Epoch <= preMap.Epoch {
		t.Fatalf("move report: %+v (pre epoch %d)", rep, preMap.Epoch)
	}
	time.Sleep(250 * time.Millisecond) // and post-flip batches
	close(stop)
	<-done
	if loopErr != nil {
		t.Fatal(loopErr)
	}

	// The moved shard now lives on node 1 — bytes included — and node 0
	// released (and wiped) its copy.
	movKey := tsdb.SeriesKey{Device: movDev, Quantity: "humidity"}
	if n := n1.Store().Len(movKey); n != len(static) {
		t.Fatalf("target node holds %d static samples, want %d", n, len(static))
	}
	if n := n0.Store().Len(movKey); n != 0 {
		t.Fatalf("source node still holds %d samples after release", n)
	}
	// The block file rode along: the target serves the moved shard from
	// block storage, not just replayed WAL rows.
	st1, err := c.Ops(url1).StorageStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Shards[moveShard].Blocks == 0 {
		t.Fatalf("moved shard has no blocks on the target: %+v", st1.Shards[moveShard])
	}

	// Byte-for-byte golden across the epoch flip.
	goldenPost, _ := clusterBatchQuery(t, coordURL, goldenQuery)
	if string(goldenPre) != string(goldenPost) {
		t.Fatalf("query differs across the flip:\npre:  %s\npost: %s", goldenPre, goldenPost)
	}

	// Every acked live row is present exactly once, on both the moved
	// and the unmoved series.
	perSeries := map[string]map[int64]float64{}
	mu.Lock()
	for _, p := range acked {
		k := p.Device
		if perSeries[k] == nil {
			perSeries[k] = map[int64]float64{}
		}
		perSeries[k][p.At.UnixNano()] = p.Value
	}
	ackedN := len(acked)
	mu.Unlock()
	if ackedN == 0 {
		t.Fatal("no batches acked during the handoff window")
	}
	for dev, want := range perSeries {
		_, out := clusterBatchQuery(t, coordURL, measuredb.BatchQuery{
			Selectors: []measuredb.SeriesSelector{{Device: dev, Quantity: "temperature"}},
			From:      base.Add(-time.Minute),
			To:        base.Add(20 * time.Minute),
			Limit:     tsdb.DefaultPageLimit,
		})
		if len(out.Results) != 1 || out.Results[0].Error != "" {
			t.Fatalf("%s: %+v", dev, out.Results)
		}
		seen := map[int64]int{}
		for _, s := range out.Results[0].Series {
			for _, p := range s.Samples {
				seen[p.At.UnixNano()]++
			}
		}
		for at, val := range want {
			if seen[at] != 1 {
				t.Fatalf("%s: acked row at %s appears %d times (value %v), want exactly once",
					dev, time.Unix(0, at).UTC(), seen[at], val)
			}
		}
	}

	// The pre-move keyed batch retried across the flip still replays.
	stayKey := tsdb.SeriesKey{Device: stayDev, Quantity: "humidity"}
	preLen := n0.Store().Len(stayKey)
	res, err := ing.Append(ctx, dedupRows, client.WithIdempotencyKey("handoff-dedup"))
	if err != nil || res.Accepted != 1 {
		t.Fatalf("dedup retry: %+v, %v", res, err)
	}
	if n := n0.Store().Len(stayKey); n != preLen {
		t.Fatalf("dedup regression: %d -> %d samples after keyed retry", preLen, n)
	}
}
