// Energy awareness: the feedback loop the paper aims at ("providing
// feedback to end-users and increasing user awareness", §I). The example
// builds the integrated area model, then derives the awareness layer:
// comfort index per building, consumption profile with its daily peak,
// and threshold alerts — the figures a district dashboard would show to
// occupants and operators.
//
//	go run ./examples/energyaware
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/awareness"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dataformat"
)

func main() {
	ctx := context.Background()
	district, err := core.Bootstrap(core.Spec{
		Buildings:          2,
		DevicesPerBuilding: 4,
		PollEvery:          80 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	defer district.Close()
	if !district.WaitForSamples(8, 20*time.Second) {
		log.Fatal("no samples")
	}

	c := district.Client()
	model, err := c.BuildAreaModel(ctx, "turin", client.Area{}, client.BuildOptions{
		IncludeDevices: true,
		IncludeGIS:     true,
		History:        time.Hour, // pull the buffered history, not just latest
	})
	if err != nil {
		log.Fatalf("area model: %v", err)
	}
	fmt.Printf("integrated %d measurements from %d sources\n\n",
		len(model.Measurements), len(model.Sources))

	// Comfort per building.
	for _, uri := range []string{
		"urn:district:turin/building:b00",
		"urn:district:turin/building:b01",
	} {
		comfort, err := awareness.ComfortIndex(model, uri, awareness.DefaultComfort)
		if err != nil {
			fmt.Printf("%s: comfort n/a (%v)\n", uri, err)
			continue
		}
		fmt.Printf("%s: comfort %.0f%% in band over %d samples (worst device: %s at %.0f%%)\n",
			uri, comfort.InBand*100, comfort.Samples, comfort.WorstDevice, comfort.WorstInBand*100)
	}

	// Alerts: overheating and freeze protection.
	alerts := awareness.Evaluate(model, []awareness.Rule{
		{Name: "overheat", Quantity: dataformat.Temperature,
			Above: awareness.Float(26), Severity: awareness.SeverityWarning},
		{Name: "freeze-risk", Quantity: dataformat.Temperature,
			Below: awareness.Float(5), Severity: awareness.SeverityCritical},
		{Name: "dry-air", Quantity: dataformat.Humidity,
			Below: awareness.Float(25), Severity: awareness.SeverityInfo},
	})
	fmt.Printf("\n%d active alerts\n", len(alerts))
	for _, a := range alerts {
		fmt.Printf("  [%s] %s: %s %s = %.2f (limit %.2f)\n",
			a.Severity, a.Rule, a.Device, a.Quantity, a.Value, a.Limit)
	}

	// Consumption profile (only meaningful when power meters report).
	if profile, err := awareness.ConsumptionProfile(model, "", time.Hour); err == nil {
		at, w := profile.Peak()
		fmt.Printf("\ndaily consumption peak: %.0f W mean at %02d:00\n", w, int(at.Hours()))
	} else {
		fmt.Printf("\nno power meters in this deployment (%v)\n", err)
	}
}
