// Demand response: the actuation path of the paper ("allow the remote
// control of actuator devices"). A utility-side controller watches the
// distribution network's solved load; when the plant output exceeds a
// peak threshold, it sheds load by switching off actuators found through
// the master node — device discovery, capability inspection, and control
// all flow through the infrastructure's web services. The effect of the
// shed is then confirmed live: the controller subscribes to the
// measurements database's event stream and watches the switch-state
// samples drop to zero as the devices report back.
//
//	go run ./examples/demandresponse
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dataformat"
	"repro/internal/sim"
)

func main() {
	ctx := context.Background()
	district, err := core.Bootstrap(core.Spec{
		Buildings:          3,
		Networks:           1,
		DevicesPerBuilding: 4,
		PollEvery:          100 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	defer district.Close()
	if !district.WaitForSamples(2, 15*time.Second) {
		log.Fatal("no samples")
	}
	c := district.Client()

	// 1. Discover the switchable actuators in the district.
	qr, err := c.Catalog().Query(ctx, "turin", client.Area{})
	if err != nil {
		log.Fatal(err)
	}
	type actuator struct {
		deviceURI, proxyURI string
	}
	var switches []actuator
	for _, entity := range qr.Entities {
		devices, err := c.Catalog().Devices(ctx, entity.URI)
		if err != nil {
			continue
		}
		for _, d := range devices {
			if d.ProxyURI == "" {
				continue
			}
			info, err := c.Devices().Info(ctx, d.ProxyURI)
			if err != nil {
				continue
			}
			for _, q := range info.Actuates {
				if q == dataformat.SwitchState {
					switches = append(switches, actuator{d.URI, d.ProxyURI})
				}
			}
		}
	}
	fmt.Printf("found %d switchable loads in the district\n", len(switches))
	if len(switches) == 0 {
		log.Fatal("no actuators discovered")
	}

	// 2. Read the network's solved state from its SIM proxy.
	solution := fetchSolution(ctx, district.SIMs[0].EntityURI(), c)
	fmt.Printf("baseline plant output: %.1f kW (efficiency %.3f)\n",
		solution.PlantOutputKW, solution.Efficiency())

	// 3. Simulate a demand spike and respond to it.
	district.SIMs[0].SetDemand(spikeTarget(district), 4000)
	solution = fetchSolution(ctx, district.SIMs[0].EntityURI(), c)
	fmt.Printf("after spike:           %.1f kW\n", solution.PlantOutputKW)

	// 3b. Subscribe to the live measurement stream BEFORE shedding, so
	// the confirmation samples cannot be missed.
	sub, err := c.Streams().SubscribeService(ctx, district.MeasureURL, "measurements/turin/#")
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	const peakKW = 2000.0
	if solution.PlantOutputKW > peakKW {
		fmt.Printf("peak threshold %.0f kW exceeded: shedding %d loads\n", peakKW, len(switches))
		for _, sw := range switches {
			res, err := c.Devices().Control(ctx, sw.proxyURI, dataformat.SwitchState, 0)
			if err != nil || !res.Applied {
				fmt.Printf("  %-55s FAILED (%v)\n", sw.deviceURI, err)
				continue
			}
			fmt.Printf("  %-55s OFF\n", sw.deviceURI)
		}
	}

	// 4. Verify live: watch the stream until every shed device reports a
	// zero switch-state sample (or the deadline passes).
	pending := make(map[string]bool, len(switches))
	for _, sw := range switches {
		pending[sw.deviceURI] = true
	}
	deadline := time.After(10 * time.Second)
	for len(pending) > 0 {
		select {
		case ev, ok := <-sub.Events:
			if !ok {
				log.Fatalf("stream ended early: %v", sub.Err())
			}
			doc, err := dataformat.Decode(ev.Payload, dataformat.Sniff(ev.Payload))
			if err != nil || doc.Measurement == nil {
				continue
			}
			m := doc.Measurement
			if m.Quantity != dataformat.SwitchState || m.Value != 0 || !pending[m.Device] {
				continue
			}
			delete(pending, m.Device)
			fmt.Printf("verified live %-55s OFF\n", m.Device)
		case <-deadline:
			log.Fatalf("%d loads never confirmed off over the stream", len(pending))
		}
	}
}

// fetchSolution reads a SIM proxy's /solution endpoint through the
// master-resolved proxy URI.
func fetchSolution(ctx context.Context, entityURI string, c *client.Client) *sim.Solution {
	qr, err := c.Catalog().Query(ctx, "turin", client.Area{})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range qr.Entities {
		if e.URI != entityURI || e.ProxyURI == "" {
			continue
		}
		rsp, err := http.Get(api.URL(e.ProxyURI, "solution"))
		if err != nil {
			log.Fatal(err)
		}
		defer rsp.Body.Close()
		var sol sim.Solution
		if err := json.NewDecoder(rsp.Body).Decode(&sol); err != nil {
			log.Fatal(err)
		}
		return &sol
	}
	log.Fatalf("network %s not resolved", entityURI)
	return nil
}

// spikeTarget picks one substation of the first network.
func spikeTarget(d *core.District) string {
	// Substation IDs follow the synthetic naming of internal/sim.
	return "dh00-s000"
}
