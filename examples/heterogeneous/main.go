// Heterogeneous integration: the paper's core claim demonstrated — four
// devices speaking four different protocols (plain IEEE 802.15.4,
// ZigBee/ZCL, EnOcean/ESP3, OPC UA) end up as uniform common-format
// measurements in one integrated model, with the protocol only surviving
// as provenance metadata. The example prints, for each device, the
// native technology and the translated values, then shows that the
// integrated series are indistinguishable in structure.
//
//	go run ./examples/heterogeneous
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dataformat"
)

func main() {
	ctx := context.Background()
	district, err := core.Bootstrap(core.Spec{
		Buildings:          1,
		DevicesPerBuilding: 4, // exactly one of each protocol
		Protocols:          core.AllProtocols,
		PollEvery:          100 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	defer district.Close()
	if !district.WaitForSamples(3, 15*time.Second) {
		log.Fatal("no samples")
	}
	c := district.Client()

	// Per-device view: protocol, capabilities, latest reading.
	devices, err := c.Catalog().Devices(ctx, "urn:district:turin/building:b00")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("devices behind the building's proxies:")
	for _, d := range devices {
		info, err := c.Devices().Info(ctx, d.ProxyURI)
		if err != nil {
			log.Fatalf("info %s: %v", d.URI, err)
		}
		m, err := c.Devices().Latest(ctx, d.ProxyURI, dataformat.Temperature)
		if err != nil {
			log.Fatalf("latest %s: %v", d.URI, err)
		}
		fmt.Printf("  %-14s senses %v\n", info.Protocol, info.Senses)
		fmt.Printf("    native read translated to: %s = %.2f %s\n", m.Quantity, m.Value, m.Unit)
	}

	// Integrated view: one model, origin-independent.
	model, err := c.BuildAreaModel(ctx, "turin", client.Area{}, client.BuildOptions{IncludeDevices: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nintegrated area model (protocol is provenance only):")
	protocols := map[string]int{}
	for _, m := range model.Measurements {
		if m.Quantity != dataformat.Temperature {
			continue
		}
		if m.Unit != dataformat.Celsius {
			log.Fatalf("non-canonical unit slipped through: %q", m.Unit)
		}
		protocols[m.Protocol]++
	}
	for proto, n := range protocols {
		fmt.Printf("  %-14s contributed %d temperature samples, all in degC\n", proto, n)
	}
	if len(protocols) < 4 {
		fmt.Printf("  (only %d protocols visible in this round; raw devices: %d)\n", len(protocols), len(devices))
	}
	fmt.Printf("\n%d total measurements integrated from %d sources\n",
		len(model.Measurements), len(model.Sources))
}
