// District monitor: the Fig. 1(a) walk as a live dashboard. An operator
// watches one area of the district: the example subscribes to the
// measurements database's HTTP event stream for real-time samples AND
// periodically rebuilds the integrated area model from the proxies,
// printing consumption and comfort summaries — the "visualization and
// simulation of energy consumption trends" use case that motivates the
// paper.
//
//	go run ./examples/districtmonitor
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dataformat"
	"repro/internal/integration"
	"repro/internal/measuredb"
)

func main() {
	ctx := context.Background()
	district, err := core.Bootstrap(core.Spec{
		Buildings:          3,
		Networks:           1,
		DevicesPerBuilding: 4,
		PollEvery:          150 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	defer district.Close()
	c := district.Client()

	// Live path: subscribe to the measurements database's event stream
	// over HTTP — no middleware link needed, any host on the network
	// could run this monitor against the service URL alone.
	var live atomic.Int64
	sub, err := c.Streams().SubscribeService(ctx, district.MeasureURL, "measurements/turin/#")
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	go func() {
		for range sub.Events {
			live.Add(1)
		}
	}()

	if !district.WaitForSamples(2, 15*time.Second) {
		log.Fatal("no samples")
	}

	// Periodic path: area query -> proxies -> integration, three rounds.
	for round := 1; round <= 3; round++ {
		time.Sleep(400 * time.Millisecond)
		model, err := c.BuildAreaModel(ctx, "turin", client.Area{}, client.BuildOptions{
			IncludeDevices: true,
			IncludeGIS:     true,
		})
		if err != nil {
			log.Fatalf("round %d: %v", round, err)
		}
		fmt.Printf("\n=== monitoring round %d (live events so far: %d) ===\n", round, live.Load())
		printComfort(model)
		printNetwork(model)
	}

	// One /v2 batch query replaces a per-series polling loop: every
	// building's temperature series aggregates in a single round trip,
	// pushed down into the store (no raw samples cross the wire).
	mc := c.Measurements(district.MeasureURL)
	batch := measuredb.BatchQuery{Aggregate: true}
	for b := 0; b < 3; b++ {
		batch.Selectors = append(batch.Selectors, measuredb.SeriesSelector{
			Device:   fmt.Sprintf("urn:district:turin/building:b%02d/*", b),
			Quantity: "temperature",
		})
	}
	rsp, err := mc.Query(ctx, batch)
	if err != nil {
		log.Fatalf("batch query: %v", err)
	}
	fmt.Printf("\nper-building temperature (one batch query, %d series, %d samples aggregated):\n",
		rsp.Series, rsp.Samples)
	for _, res := range rsp.Results {
		for _, series := range res.Series {
			agg := series.Aggregate
			fmt.Printf("  %-55s mean %6.2f degC over %d samples [%.2f..%.2f]\n",
				series.Device, agg.Mean, agg.Count, agg.Min, agg.Max)
		}
	}

	st := district.Measure.Stats()
	fmt.Printf("\nglobal measurements DB: %d samples in %d series (streamed %d events to %d subscribers)\n",
		st.Ingested, st.Store.Series, st.Stream.Delivered, st.Stream.Subscribers)
}

// printComfort prints per-device temperature/humidity.
func printComfort(model *integration.AreaModel) {
	for _, s := range model.Summarize() {
		if s.Quantity == dataformat.Temperature || s.Quantity == dataformat.Humidity {
			fmt.Printf("  %-55s %-12s %7.2f %s\n", s.Device, s.Quantity, s.Latest, s.Unit)
		}
	}
}

// printNetwork prints the distribution network's solved state from its
// merged entity properties.
func printNetwork(model *integration.AreaModel) {
	e, ok := model.Entity("urn:district:turin/network:dh00")
	if !ok {
		return
	}
	out, _ := e.Prop("plantOutput.kW")
	loss, _ := e.Prop("loss.kW")
	eff, _ := e.Prop("efficiency")
	fmt.Printf("  network dh00: plant output %s kW, losses %s kW, efficiency %s\n", out, loss, eff)
}
