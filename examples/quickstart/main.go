// Quickstart: boot a miniature district, run the paper's end-user flow
// once, and print the comprehensive area model.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/measuredb"
)

func main() {
	ctx := context.Background()
	// 1. Boot the infrastructure: master node + ontology, middleware
	//    hub, measurements DB, GIS/BIM/SIM proxies, device proxies over
	//    simulated ZigBee/802.15.4/EnOcean/OPC-UA hardware.
	district, err := core.Bootstrap(core.Spec{
		Buildings:          2,
		DevicesPerBuilding: 4,
		PollEvery:          100 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	defer district.Close()
	fmt.Printf("district up: master %s\n", district.MasterURL)

	// 2. Let the device proxies buffer a few samples.
	if !district.WaitForSamples(3, 15*time.Second) {
		log.Fatal("devices produced no samples")
	}

	// 3. End-user flow: query the master for the whole district, follow
	//    the proxy URIs, integrate everything.
	c := district.Client()
	model, err := c.BuildAreaModel(ctx, "turin", client.Area{}, client.BuildOptions{
		IncludeDevices: true,
		IncludeGIS:     true,
	})
	if err != nil {
		log.Fatalf("area model: %v", err)
	}

	fmt.Printf("\ncomprehensive model: %d entities from %d sources, %d measurements\n",
		len(model.Entities), len(model.Sources), len(model.Measurements))
	for _, s := range model.Summarize() {
		fmt.Printf("  %-55s %-12s latest %7.2f %s\n", s.Device, s.Quantity, s.Latest, s.Unit)
	}

	// 4. Write path: derive a district-level series and append it
	//    through the typed /v2 ingest sub-client (the batched write
	//    plane the device proxies themselves ride), then read it back
	//    through the /v2 query plane.
	var sum float64
	var n int
	for _, s := range model.Summarize() {
		if s.Quantity == "temperature" {
			sum += s.Latest
			n++
		}
	}
	if n > 0 {
		const derived = "urn:district:turin/derived:avg"
		res, err := c.Ingest(district.MeasureURL).Append(ctx, []measuredb.Point{
			{Device: derived, Quantity: "temperature", At: time.Now().UTC(), Value: sum / float64(n)},
		})
		if err != nil {
			log.Fatalf("ingest: %v", err)
		}
		latest, err := c.Measurements(district.MeasureURL).Latest(ctx, derived, "temperature")
		if err != nil {
			log.Fatalf("read back: %v", err)
		}
		fmt.Printf("\nderived district mean: %.2f °C (ingested %d row via /v2/ingest)\n",
			latest.Value, res.Accepted)
	}
}
