// Package repro holds the benchmark harness that regenerates every
// experiment in DESIGN.md §3 (the paper is a 2-page extended abstract
// with no quantitative tables; Fig. 1(a)/1(b) and the qualitative claims
// of §II/§IV define the experiments — see EXPERIMENTS.md for the
// paper-vs-measured record).
//
// Run with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bytes"
	"repro/internal/api"
	"repro/internal/bim"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataformat"
	"repro/internal/dbproxy"
	"repro/internal/deviceproxy"
	"repro/internal/gis"
	"repro/internal/integration"
	"repro/internal/master"
	"repro/internal/measuredb"
	"repro/internal/middleware"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/protocol/enocean"
	"repro/internal/protocol/ieee802154"
	"repro/internal/protocol/opcua"
	"repro/internal/protocol/zigbee"
	"repro/internal/proxyhttp"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/tsdb"
	"repro/internal/wal"
	"repro/internal/wsn"
)

var benchT0 = time.Date(2015, 3, 9, 10, 0, 0, 0, time.UTC)

// ---------------------------------------------------------------------
// F1a — Fig. 1(a): end-to-end area query. The client queries the master,
// follows every returned proxy URI, and integrates the comprehensive
// model. Latency should grow with the number of proxies *in the area*,
// not with total district size (the redirection/scalability claim).
// ---------------------------------------------------------------------

func BenchmarkF1a_EndToEndAreaQuery(b *testing.B) {
	for _, buildings := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("buildings=%d", buildings), func(b *testing.B) {
			d, err := core.Bootstrap(core.Spec{
				Buildings:          buildings,
				Networks:           1,
				DevicesPerBuilding: 1,
				Protocols:          []core.Protocol{core.ProtoOPCUA}, // cheapest device path
				PollEvery:          time.Hour,                        // no background sampling noise
				Seed:               7,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			for _, p := range d.DeviceProxies {
				p.PollOnce() // one buffered sample each
			}
			c := d.Client()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model, err := c.BuildAreaModel(ctx, "turin", client.Area{}, client.BuildOptions{
					IncludeDevices: true, IncludeGIS: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(model.Entities) == 0 {
					b.Fatal("empty model")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// F1b — Fig. 1(b): the device-proxy pipeline per protocol. One PollOnce
// covers the dedicated layer (real protocol round trip), the local
// database append, and the publish/subscribe publication.
// ---------------------------------------------------------------------

func BenchmarkF1b_DeviceProxyPipeline(b *testing.B) {
	signals := map[dataformat.Quantity]wsn.Signal{
		dataformat.Temperature: {Base: 21},
		dataformat.Humidity:    {Base: 45},
	}
	bus := middleware.NewBus(middleware.BusOptions{QueueLen: -1})
	defer bus.Close()
	_, _ = bus.Subscribe(measuredb.IngestPattern, func(middleware.Event) {})

	run := func(b *testing.B, driver deviceproxy.Driver) {
		b.Helper()
		proxy, err := deviceproxy.New(deviceproxy.Options{
			DeviceURI: "urn:district:turin/building:b00/device:bench",
			Driver:    driver,
			PollEvery: time.Hour,
			Publisher: bus,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := proxy.Run("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer proxy.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			proxy.PollOnce()
		}
		b.StopTimer()
		if proxy.Stats().Samples == 0 {
			b.Fatal("pipeline produced no samples")
		}
	}

	b.Run("protocol=ieee802.15.4", func(b *testing.B) {
		radio := ieee802154.NewRadio(ieee802154.RadioOptions{Seed: 1})
		defer radio.Close()
		node, err := wsn.NewNode802154(radio, 1, 0x10, signals, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer node.Close()
		drv, err := wsn.NewDriver802154(radio, 1, 0x01, 0x10, len(signals))
		if err != nil {
			b.Fatal(err)
		}
		run(b, drv)
	})
	b.Run("protocol=zigbee", func(b *testing.B) {
		radio := ieee802154.NewRadio(ieee802154.RadioOptions{Seed: 1})
		defer radio.Close()
		node, err := wsn.NewNodeZigbee(radio, 1, 0x20, signals, false, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer node.Close()
		drv, err := wsn.NewDriverZigbee(radio, 1, 0x02, 0x20,
			[]dataformat.Quantity{dataformat.Temperature, dataformat.Humidity})
		if err != nil {
			b.Fatal(err)
		}
		run(b, drv)
	})
	b.Run("protocol=enocean", func(b *testing.B) {
		link := &wsn.SerialLink{}
		node := wsn.NewNodeEnOcean(link, enocean.EEPTempHumA50401, 0x100, signals, 1)
		defer node.Close()
		node.Emit()
		drv := wsn.NewDriverEnOcean(link, enocean.EEPTempHumA50401, 0x100, nil)
		run(b, drv)
	})
	b.Run("protocol=opc-ua", func(b *testing.B) {
		node, err := wsn.NewNodeOPCUA(signals, nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer node.Close()
		drv, err := wsn.NewDriverOPCUA(node.Addr(),
			[]dataformat.Quantity{dataformat.Temperature, dataformat.Humidity}, nil)
		if err != nil {
			b.Fatal(err)
		}
		run(b, drv)
	})
}

// ---------------------------------------------------------------------
// E1 — master query latency vs district size ("scalable" claim): the
// ontology lookup should stay flat-ish as the district grows, because
// the master only resolves and redirects.
// ---------------------------------------------------------------------

func BenchmarkE1_MasterQueryVsDistrictSize(b *testing.B) {
	for _, buildings := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("buildings=%d", buildings), func(b *testing.B) {
			ont := ontology.New()
			turin, err := ont.AddDistrict("turin", "Torino")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < buildings; i++ {
				lat := 45.0 + float64(i%200)*0.0005
				lon := 7.6 + float64(i/200)*0.0005
				uri, err := ont.AddEntity(turin, ontology.KindBuilding, fmt.Sprintf("b%05d", i), "B", lat, lon)
				if err != nil {
					b.Fatal(err)
				}
				_ = ont.SetProperty(uri, ontology.PropProxyURI, "http://proxy/")
			}
			// A fixed-size neighbourhood: ~25 buildings regardless of total.
			area := ontology.Area{MinLat: 45.0, MinLon: 7.6, MaxLat: 45.0025, MaxLon: 7.6025}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ont.ResolveArea("turin", area)
				if err != nil {
					b.Fatal(err)
				}
				_ = res
			}
		})
	}
}

// ---------------------------------------------------------------------
// E2 — middleware throughput vs subscription count, with the trie index
// against the naive linear-scan baseline (ablation of DESIGN.md §5).
// ---------------------------------------------------------------------

func BenchmarkE2_MiddlewareThroughput(b *testing.B) {
	for _, kind := range []struct {
		name string
		m    middleware.MatcherKind
	}{{"matcher=trie", middleware.TrieMatcher}, {"matcher=linear", middleware.LinearMatcher}} {
		for _, subs := range []int{1, 16, 64, 256} {
			b.Run(fmt.Sprintf("%s/subs=%d", kind.name, subs), func(b *testing.B) {
				bus := middleware.NewBus(middleware.BusOptions{Matcher: kind.m, QueueLen: -1})
				defer bus.Close()
				for i := 0; i < subs; i++ {
					pattern := fmt.Sprintf("measurements/turin/building:b%03d/#", i)
					if _, err := bus.Subscribe(pattern, func(middleware.Event) {}); err != nil {
						b.Fatal(err)
					}
				}
				ev := middleware.Event{
					Topic:   "measurements/turin/building:b000/device:d0/temperature",
					Payload: []byte(`{"v":21.5}`),
					At:      benchT0,
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := bus.Publish(ev); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE2_MiddlewareNetworked measures the TCP hop: leaf publisher
// -> relay hub -> leaf subscriber.
func BenchmarkE2_MiddlewareNetworked(b *testing.B) {
	hub := middleware.NewNode(middleware.NodeOptions{ID: "hub", Relay: true})
	hubAddr, err := hub.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer hub.Close()
	pub := middleware.NewNode(middleware.NodeOptions{ID: "pub"})
	if err := pub.Dial(hubAddr); err != nil {
		b.Fatal(err)
	}
	defer pub.Close()
	sub := middleware.NewNode(middleware.NodeOptions{ID: "sub"})
	got := make(chan struct{}, 1024)
	if _, err := sub.Subscribe("bench/#", func(middleware.Event) { got <- struct{}{} }); err != nil {
		b.Fatal(err)
	}
	if err := sub.Dial(hubAddr); err != nil {
		b.Fatal(err)
	}
	defer sub.Close()
	time.Sleep(100 * time.Millisecond) // subscription propagation

	ev := middleware.Event{Topic: "bench/x", Payload: []byte("21.5"), At: benchT0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish(ev); err != nil {
			b.Fatal(err)
		}
		<-got
	}
}

// ---------------------------------------------------------------------
// E3 — registration scalability: proxies joining the master node.
// ---------------------------------------------------------------------

func BenchmarkE3_ProxyRegistration(b *testing.B) {
	for _, preload := range []int{10, 1000, 100000} {
		b.Run(fmt.Sprintf("existing=%d", preload), func(b *testing.B) {
			reg := registry.New()
			for i := 0; i < preload; i++ {
				_ = reg.Register(registry.Registration{
					ID: fmt.Sprintf("pre%06d", i), Kind: registry.KindDevice,
					BaseURL: "http://x/", EntityURI: "urn:e",
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := reg.Register(registry.Registration{
					ID: fmt.Sprintf("new%09d", i), Kind: registry.KindDevice,
					BaseURL: "http://x/", EntityURI: "urn:e",
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3_RegistrationHTTP includes the master's HTTP path.
func BenchmarkE3_RegistrationHTTP(b *testing.B) {
	m := master.New(master.Options{})
	if _, err := m.Ontology().AddDistrict("turin", "Torino"); err != nil {
		b.Fatal(err)
	}
	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := &registrarShim{masterURL: "http://" + addr, id: fmt.Sprintf("p%09d", i)}
		if err := reg.register(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// E4 — per-protocol translation overhead: native encoding -> decode ->
// common format, the work a device-proxy's dedicated layer does per
// sample (no network, pure codec).
// ---------------------------------------------------------------------

func BenchmarkE4_ProtocolTranslation(b *testing.B) {
	b.Run("protocol=ieee802.15.4", func(b *testing.B) {
		payload := ieee802154.EncodeReading(ieee802154.SensorReading{
			Kind: ieee802154.ReadingTemperature, Value: 21.57, Battery: 90,
		})
		frame := &ieee802154.Frame{
			Type: ieee802154.FrameData, IntraPAN: true,
			DestPAN: 1, DestAddr: 2, SrcAddr: 3, Payload: payload,
		}
		raw, err := frame.Encode()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f, err := ieee802154.Decode(raw)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ieee802154.DecodeReading(f.Payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("protocol=zigbee", func(b *testing.B) {
		zcl, err := zigbee.EncodeReport(1, []zigbee.Attribute{
			{ID: zigbee.AttrMeasuredValue, Type: zigbee.TypeInt16, Value: 2157},
		})
		if err != nil {
			b.Fatal(err)
		}
		aps := (&zigbee.APSFrame{Cluster: zigbee.ClusterTemperature, Profile: zigbee.ProfileHomeAutomation, ZCL: zcl}).Encode()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, err := zigbee.DecodeAPS(aps)
			if err != nil {
				b.Fatal(err)
			}
			f, err := zigbee.DecodeFrame(a.ZCL)
			if err != nil {
				b.Fatal(err)
			}
			attrs, err := zigbee.DecodeReport(f.Payload)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, _, err := zigbee.Translate(a.Cluster, attrs[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("protocol=enocean", func(b *testing.B) {
		tg, err := enocean.EncodeEEP(enocean.EEPTempHumA50401, 0x100, []enocean.Reading{
			{Quantity: dataformat.Temperature, Value: 21.5},
			{Quantity: dataformat.Humidity, Value: 45},
		})
		if err != nil {
			b.Fatal(err)
		}
		raw := tg.WrapRadio().Encode()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pkt, _, err := enocean.Decode(raw)
			if err != nil {
				b.Fatal(err)
			}
			t2, err := enocean.DecodeTelegram(pkt.Data)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := enocean.DecodeEEP(enocean.EEPTempHumA50401, t2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("protocol=opc-ua", func(b *testing.B) {
		// The OPC UA read includes a real TCP round trip — the wired
		// legacy path is inherently heavier, which is the point of the
		// comparison.
		node, err := wsn.NewNodeOPCUA(map[dataformat.Quantity]wsn.Signal{
			dataformat.Temperature: {Base: 21.5},
		}, nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer node.Close()
		c, err := opcua.Dial(node.Addr(), time.Second)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		ids := []opcua.NodeID{{Namespace: 1, ID: "Controller.temperature"}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Read(ids); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// E5 — database-proxy translation: vendor export -> model -> common
// format document, per database kind and output encoding.
// ---------------------------------------------------------------------

func BenchmarkE5_DatabaseTranslation(b *testing.B) {
	building := bim.Synthesize(bim.SynthOptions{Seed: 5, Storeys: 4, SpacesPerStorey: 8, DevicesPerSpace: 2})
	network := sim.Synthesize(sim.SynthOptions{Seed: 5, Substations: 32})
	feature := gis.Feature{
		ID: "urn:district:turin/building:b01", Kind: gis.FeatureBuilding, Name: "B",
		Footprint: []gis.Point{{Lat: 45, Lon: 7}, {Lat: 45.001, Lon: 7}, {Lat: 45.001, Lon: 7.001}, {Lat: 45, Lon: 7.001}},
	}
	for _, enc := range []dataformat.Encoding{dataformat.JSON, dataformat.XML} {
		b.Run(fmt.Sprintf("db=bim/enc=%s", enc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := dbproxy.BuildingEntity(building, "turin")
				if _, err := dataformat.NewEntityDoc(e).Encode(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("db=sim/enc=%s", enc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := dbproxy.NetworkEntity(network, "turin")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dataformat.NewEntityDoc(e).Encode(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("db=gis/enc=%s", enc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := dbproxy.FeatureEntity(&feature)
				if _, err := dataformat.NewEntityDoc(e).Encode(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// E6 — the local-database layer (and the global measurement store):
// append and range-query rates of the time-series engine.
// ---------------------------------------------------------------------

func BenchmarkE6_TimeSeriesEngine(b *testing.B) {
	key := tsdb.SeriesKey{Device: "urn:d", Quantity: "temperature"}
	b.Run("op=append", func(b *testing.B) {
		s := tsdb.New(tsdb.Options{MaxSamplesPerSeries: 1 << 20})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.Append(key, tsdb.Sample{At: benchT0.Add(time.Duration(i) * time.Second), Value: float64(i)})
		}
	})
	for _, window := range []int{100, 10000} {
		b.Run(fmt.Sprintf("op=query/window=%d", window), func(b *testing.B) {
			s := tsdb.New(tsdb.Options{MaxSamplesPerSeries: 1 << 20})
			for i := 0; i < 100000; i++ {
				_ = s.Append(key, tsdb.Sample{At: benchT0.Add(time.Duration(i) * time.Second), Value: float64(i)})
			}
			from := benchT0.Add(50000 * time.Second)
			to := from.Add(time.Duration(window) * time.Second)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				samples, err := s.Query(key, from, to)
				if err != nil {
					b.Fatal(err)
				}
				if len(samples) == 0 {
					b.Fatal("empty query")
				}
			}
		})
	}
	b.Run("op=aggregate", func(b *testing.B) {
		s := tsdb.New(tsdb.Options{MaxSamplesPerSeries: 1 << 20})
		for i := 0; i < 100000; i++ {
			_ = s.Append(key, tsdb.Sample{At: benchT0.Add(time.Duration(i) * time.Second), Value: float64(i)})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Aggregate(key, benchT0, benchT0.Add(100000*time.Second)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// E7 — integration merge cost vs number of sources and conflict ratio.
// ---------------------------------------------------------------------

func BenchmarkE7_IntegrationMerge(b *testing.B) {
	makeEntities := func(source int, conflicting bool) []dataformat.Entity {
		out := make([]dataformat.Entity, 20)
		for i := range out {
			e := dataformat.Entity{
				URI:  fmt.Sprintf("urn:district:turin/building:b%02d", i),
				Kind: dataformat.EntityBuilding,
				Name: "B",
			}
			val := "same"
			if conflicting {
				val = fmt.Sprintf("from-source-%d", source)
			}
			e.SetProp("owner", val, "string")
			out[i] = e
		}
		return out
	}
	for _, sources := range []int{2, 16, 64} {
		for _, conflicting := range []bool{false, true} {
			b.Run(fmt.Sprintf("sources=%d/conflicts=%v", sources, conflicting), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m := integration.NewMerger("turin")
					for s := 0; s < sources; s++ {
						for _, e := range makeEntities(s, conflicting) {
							m.AddEntity(fmt.Sprintf("src%d", s), e)
						}
					}
					out := m.Result()
					if len(out.Entities) != 20 {
						b.Fatal("merge lost entities")
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// E8 — federation (paper's design: translate at each proxy, integrate at
// the edge, keep every database live) vs naive union (decode every
// vendor export into one central database, re-encoding centrally).
// The union baseline also loses the provenance of conflicting values,
// which the benchmark reports via the conflict counter.
// ---------------------------------------------------------------------

func BenchmarkE8_FederationVsUnion(b *testing.B) {
	const nBuildings = 24
	exports := make([]*bim.Building, nBuildings)
	for i := range exports {
		exports[i] = bim.Synthesize(bim.SynthOptions{
			ID: fmt.Sprintf("b%02d", i), Seed: int64(i + 1),
			Storeys: 3, SpacesPerStorey: 6, DevicesPerSpace: 1,
		})
	}
	b.Run("mode=federated", func(b *testing.B) {
		// Each proxy translates its own database (parallelizable, here
		// shown as the per-source loop); the client merges entities.
		for i := 0; i < b.N; i++ {
			m := integration.NewMerger("turin")
			for s, building := range exports {
				e := dbproxy.BuildingEntity(building, "turin")
				m.AddEntity(fmt.Sprintf("bim%02d", s), e)
			}
			out := m.Result()
			if len(out.Entities) == 0 {
				b.Fatal("no entities")
			}
		}
	})
	b.Run("mode=union", func(b *testing.B) {
		// Central union: re-encode every building into one store through
		// the vendor format (decode+encode both ends), then translate
		// the union — the design §II argues against.
		for i := 0; i < b.N; i++ {
			var union []*bim.Building
			for _, building := range exports {
				var buf bytes.Buffer
				if err := bim.EncodeVendorA(&buf, building); err != nil {
					b.Fatal(err)
				}
				decoded, err := bim.DecodeVendorA(&buf)
				if err != nil {
					b.Fatal(err)
				}
				union = append(union, decoded)
			}
			m := integration.NewMerger("turin")
			for _, building := range union {
				m.AddEntity("central", dbproxy.BuildingEntity(building, "turin"))
			}
			if len(m.Result().Entities) == 0 {
				b.Fatal("no entities")
			}
		}
	})
}

// registrarShim posts one registration without the Registrar's loop.
type registrarShim struct {
	masterURL string
	id        string
}

func (r *registrarShim) register() error {
	reg := proxyhttp.Registrar{
		MasterURL: r.masterURL,
		Registration: registry.Registration{
			ID: r.id, Kind: registry.KindDevice,
			BaseURL: "http://x/", EntityURI: "urn:district:turin",
		},
	}
	return reg.Register()
}

// BenchmarkF1b_AblationPublish isolates the publish/subscribe layer's
// share of the device-proxy pipeline (DESIGN.md §5): the same EnOcean
// pipeline with and without middleware publication.
func BenchmarkF1b_AblationPublish(b *testing.B) {
	signals := map[dataformat.Quantity]wsn.Signal{
		dataformat.Temperature: {Base: 21},
		dataformat.Humidity:    {Base: 45},
	}
	for _, publish := range []bool{false, true} {
		b.Run(fmt.Sprintf("publish=%v", publish), func(b *testing.B) {
			link := &wsn.SerialLink{}
			node := wsn.NewNodeEnOcean(link, enocean.EEPTempHumA50401, 0x200, signals, 1)
			defer node.Close()
			node.Emit()
			var pub deviceproxy.Publisher
			if publish {
				bus := middleware.NewBus(middleware.BusOptions{QueueLen: -1})
				defer bus.Close()
				if _, err := bus.Subscribe(measuredb.IngestPattern, func(middleware.Event) {}); err != nil {
					b.Fatal(err)
				}
				pub = bus
			}
			proxy, err := deviceproxy.New(deviceproxy.Options{
				DeviceURI: "urn:district:turin/building:b00/device:abl",
				Driver:    wsn.NewDriverEnOcean(link, enocean.EEPTempHumA50401, 0x200, nil),
				PollEvery: time.Hour,
				Publisher: pub,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := proxy.Run("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			defer proxy.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				proxy.PollOnce()
			}
		})
	}
}

// ---------------------------------------------------------------------
// S1 — stream fan-out: one publisher feeding many concurrent
// subscribers through the SSE hub. The hub holds its lock across the
// whole fan-out, so this measures the per-event cost of sequencing +
// ring append + trie match + N bounded-queue handoffs.
// ---------------------------------------------------------------------

func BenchmarkS1_StreamHubFanout(b *testing.B) {
	for _, subs := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("subscribers=%d", subs), func(b *testing.B) {
			hub := stream.NewHub(stream.HubOptions{FirstID: 1, QueueLen: 4096})
			defer hub.Close()
			var delivered atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < subs; i++ {
				sub, _, err := hub.Subscribe("measurements/#", 0)
				if err != nil {
					b.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range sub.C {
						delivered.Add(1)
					}
				}()
			}
			ev := middleware.Event{
				Topic:   "measurements/turin/building:b00/device:d00/temperature",
				Payload: []byte(`{"value":21.5}`),
				At:      benchT0,
			}
			// Wave pacing: fully drain every 1024 events, so per-queue
			// backlog stays well under QueueLen and no subscriber is ever
			// evicted — the benchmark must measure fan-out, not eviction.
			waitDrained := func(events int) {
				want := int64(events) * int64(subs)
				for delivered.Load() < want {
					if hub.Stats().Evicted > 0 {
						b.Fatal("benchmark evicted a subscriber")
					}
					runtime.Gosched()
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := hub.Publish(ev); err != nil {
					b.Fatal(err)
				}
				if i%1024 == 1023 {
					waitDrained(i + 1)
				}
			}
			waitDrained(b.N)
			b.StopTimer()
			hub.Close()
			wg.Wait()
		})
	}
}

// ---------------------------------------------------------------------
// S2 — stream fan-out end to end: one publisher on the service bus, 100
// SSE subscribers over real HTTP connections. Reported time is per
// published event fully delivered to all 100 subscribers.
// ---------------------------------------------------------------------

func BenchmarkS2_StreamSSEFanout100(b *testing.B) {
	const subs = 100
	bus := middleware.NewBus(middleware.BusOptions{QueueLen: -1})
	defer bus.Close()
	svc, err := stream.NewService(bus, stream.Options{
		Hub: stream.HubOptions{FirstID: 1, QueueLen: 8192, History: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	srv := api.NewServer(api.Options{Service: "bench"})
	svc.Mount(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered atomic.Int64
	for i := 0; i < subs; i++ {
		sub, err := stream.Subscribe(ctx, ts.URL, "measurements/#", stream.SubscribeOptions{Buffer: 1024})
		if err != nil {
			b.Fatal(err)
		}
		defer sub.Close()
		go func() {
			for range sub.Events {
				delivered.Add(1)
			}
		}()
	}
	deadline := time.Now().Add(30 * time.Second)
	for svc.Hub().Stats().Subscribers < subs {
		if time.Now().After(deadline) {
			b.Fatalf("only %d/%d SSE subscribers attached", svc.Hub().Stats().Subscribers, subs)
		}
		time.Sleep(time.Millisecond)
	}

	ev := middleware.Event{
		Topic:   "measurements/turin/building:b00/device:d00/temperature",
		Payload: []byte(`{"value":21.5}`),
		At:      benchT0,
	}
	// Wave pacing: fully drain every 64 events, so the per-subscriber
	// SSE queues can always absorb the in-flight wave and slow-consumer
	// eviction cannot fire.
	waitDrained := func(events int) {
		want := int64(events) * subs
		for delivered.Load() < want {
			if svc.Hub().Stats().Evicted > 0 {
				b.Fatal("benchmark evicted a subscriber")
			}
			runtime.Gosched()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bus.Publish(ev); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			waitDrained(i + 1)
		}
	}
	waitDrained(b.N)
	b.StopTimer()
}

// ---------------------------------------------------------------------
// Q — the /v2 query data plane: cursor iteration vs range flattening in
// the store, batch fan-in over HTTP, and row-at-a-time streaming.
// ---------------------------------------------------------------------

// Q1 — reading one large stored range. Query materializes the whole
// range in a single slice (O(range) memory per call); the cursor
// iterator walks it in bounded pages (O(page) memory), which is the
// primitive under /v2 pagination and the NDJSON/CSV streams. Both
// produce the same rows — the contrast is allocation shape.
func BenchmarkQ1_TsdbIteratorVsQueryFlatten(b *testing.B) {
	const n = 131072
	key := tsdb.SeriesKey{Device: "urn:d", Quantity: "temperature"}
	s := tsdb.New(tsdb.Options{MaxSamplesPerSeries: 1 << 20})
	for i := 0; i < n; i++ {
		if err := s.Append(key, tsdb.Sample{At: benchT0.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	from, to := benchT0, benchT0.Add(n*time.Second)
	b.Run("op=query-flatten", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			samples, err := s.Query(key, from, to)
			if err != nil || len(samples) != n {
				b.Fatalf("flatten returned %d samples, err %v", len(samples), err)
			}
		}
	})
	for _, page := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("op=iter/page=%d", page), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				it := s.Iter(key, from, to, page)
				rows := 0
				for _, ok := it.Next(); ok; _, ok = it.Next() {
					rows++
				}
				if err := it.Err(); err != nil || rows != n {
					b.Fatalf("iterator returned %d rows, err %v", rows, err)
				}
			}
		})
	}
}

// benchV2Service builds a measurements DB (legacy aliases off, as the
// binaries now run) pre-filled with devices×perSeries samples, serves
// it over HTTP, and returns the /v2 sub-client.
func benchV2Service(b *testing.B, devices, perSeries int) (*client.Measurements, func(int) string) {
	b.Helper()
	svc := measuredb.New(measuredb.Options{DisableLegacyAliases: true})
	b.Cleanup(svc.Close)
	device := func(d int) string {
		return fmt.Sprintf("urn:district:turin/building:b%03d/device:d0", d)
	}
	store := svc.Store()
	for d := 0; d < devices; d++ {
		key := tsdb.SeriesKey{Device: device(d), Quantity: "temperature"}
		for i := 0; i < perSeries; i++ {
			if err := store.Append(key, tsdb.Sample{At: benchT0.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	}
	ts := httptest.NewServer(svc.Handler())
	b.Cleanup(ts.Close)
	c := &client.Client{MaxAttempts: 1}
	return c.Measurements(ts.URL), device
}

// Q2 — the dashboard-poll shape that motivated the redesign: reading a
// summary of many series. Per-series issues one /v2 aggregate round
// trip per device; batch resolves every selector in one POST /v2/query
// with aggregate pushdown.
func BenchmarkQ2_V2BatchQueryFanIn(b *testing.B) {
	const devices, perSeries = 120, 50
	mc, device := benchV2Service(b, devices, perSeries)
	ctx := context.Background()

	req := measuredb.BatchQuery{Aggregate: true}
	for d := 0; d < devices; d++ {
		req.Selectors = append(req.Selectors, measuredb.SeriesSelector{Device: device(d), Quantity: "temperature"})
	}
	b.Run(fmt.Sprintf("op=batch-aggregate/selectors=%d", devices), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rsp, err := mc.Query(ctx, req)
			if err != nil || rsp.Series != devices {
				b.Fatalf("batch resolved %+v, err %v", rsp, err)
			}
		}
	})
	b.Run(fmt.Sprintf("op=per-series-aggregate/requests=%d", devices), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for d := 0; d < devices; d++ {
				agg, err := mc.Aggregate(ctx, device(d), "temperature")
				if err != nil || agg.Count != perSeries {
					b.Fatalf("aggregate of device %d = %+v, err %v", d, agg, err)
				}
			}
		}
	})
}

// Q3 — shipping one large range to a client: auto-depaginating JSON
// pages vs one row-at-a-time NDJSON stream. Neither endpoint holds the
// range in memory; the stream also amortizes the HTTP round trips.
func BenchmarkQ3_V2SamplesTransport(b *testing.B) {
	const rows = 50000
	mc, device := benchV2Service(b, 1, rows)
	ctx := context.Background()

	b.Run("op=json-pages/limit=1000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			it := mc.Iter(ctx, device(0), "temperature", client.WithLimit(1000))
			n := 0
			for _, ok := it.Next(); ok; _, ok = it.Next() {
				n++
			}
			if err := it.Err(); err != nil || n != rows {
				b.Fatalf("depaginated %d rows over %d pages, err %v", n, it.Pages(), err)
			}
		}
	})
	b.Run("op=ndjson-stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := mc.Stream(ctx, device(0), "temperature")
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for _, ok := st.Next(); ok; _, ok = st.Next() {
				n++
			}
			err = st.Err()
			st.Close()
			if err != nil || n != rows {
				b.Fatalf("streamed %d rows, err %v", n, err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// I — the /v2 ingest data plane and the sharded storage engine: write
// throughput vs shard count, and the ingest transports vs the legacy
// event-per-sample bus hop.
// ---------------------------------------------------------------------

// I1 — engine ingest throughput vs the single-lock store. The workload
// is the ingest-dominated shape of the platform: concurrent producers
// (gateways, proxy batchers, backfills) shipping per-device runs of
// samples across many devices. store=single-lock is the pre-redesign
// path — every sample individually resolved and locked in one Store,
// exactly what the bus hop's Ingest-per-event did. The sharded engine
// partitions rows by device hash once per run, hands them to the
// per-shard append queues, and each shard's single writer applies whole
// runs under one lock; shard count sets the write parallelism available
// to multi-core hosts. Reported time is per ingested row.
//
// NOTE: the shards=N/shards=1 ratio measures write parallelism, so it
// only opens up with real cores — on a single-core container every
// variant converges to the same per-row cost (the queue+partition
// machinery costs nothing it doesn't win back in run grouping), which
// is itself the useful result there: sharding is free when it can't
// help.
func BenchmarkI1Ingest(b *testing.B) {
	const (
		devices   = 512
		producers = 4
		runLen    = 16 // consecutive samples per device, a flushed buffer
		chunk     = 1024
		perProd   = devices / producers
	)
	keys := make([]tsdb.SeriesKey, devices)
	for d := range keys {
		keys[d] = tsdb.SeriesKey{
			Device:   fmt.Sprintf("urn:district:turin/building:b%03d/device:d%d", d/4, d%4),
			Quantity: "temperature",
		}
	}
	// produce feeds count rows from producer w's disjoint device subset
	// as per-device runs (timestamps ascend per series). The chunk
	// buffer is reused across ships — both write paths copy rows before
	// returning (Enqueue partitions, Append reads by value).
	produce := func(w, count int, ship func([]tsdb.Row)) {
		rows := make([]tsdb.Row, 0, chunk)
		for i := 0; i < count; i++ {
			run := i / runLen
			key := keys[w*perProd+run%perProd]
			rows = append(rows, tsdb.Row{
				Key:    key,
				Sample: tsdb.Sample{At: benchT0.Add(time.Duration(run/perProd*runLen+i%runLen) * time.Second), Value: float64(i)},
			})
			if len(rows) == chunk {
				ship(rows)
				rows = rows[:0]
			}
		}
		if len(rows) > 0 {
			ship(rows)
		}
	}
	runProducers := func(b *testing.B, ship func([]tsdb.Row)) {
		var wg sync.WaitGroup
		for w := 0; w < producers; w++ {
			count := b.N / producers
			if w == 0 {
				count += b.N % producers
			}
			wg.Add(1)
			go func(w, count int) {
				defer wg.Done()
				produce(w, count, ship)
			}(w, count)
		}
		wg.Wait()
	}

	b.Run("store=single-lock", func(b *testing.B) {
		st := tsdb.New(tsdb.Options{MaxSamplesPerSeries: 1 << 16})
		defer st.Close()
		b.ResetTimer()
		runProducers(b, func(rows []tsdb.Row) {
			for _, r := range rows { // the old path: one resolve+lock per sample
				if err := st.Append(r.Key, r.Sample); err != nil {
					b.Error(err)
				}
			}
		})
		b.StopTimer()
		if st.Stats().Samples == 0 {
			b.Fatal("no samples ingested")
		}
	})
	for _, shards := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng := tsdb.NewSharded(tsdb.ShardedOptions{
				Shards: shards,
				Store:  tsdb.Options{MaxSamplesPerSeries: 1 << 16},
			})
			defer eng.Close()
			b.ResetTimer()
			runProducers(b, func(rows []tsdb.Row) {
				if err := eng.Enqueue(rows); err != nil {
					b.Error(err)
				}
			})
			eng.Flush()
			b.StopTimer()
			if eng.Stats().Samples == 0 {
				b.Fatal("no samples ingested")
			}
		})
	}
	// The durable engine with the weakest fsync policy: the WAL adds row
	// encoding plus a write(2) per shard wave on top of shards=8 — the
	// acceptance bar is staying within 25% of the in-memory engine.
	b.Run("shards=8-wal-none", func(b *testing.B) {
		eng, err := tsdb.OpenSharded(tsdb.ShardedOptions{
			Shards:        8,
			Store:         tsdb.Options{MaxSamplesPerSeries: 1 << 16},
			Dir:           b.TempDir(),
			Fsync:         wal.FsyncNone,
			SnapshotEvery: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		b.ResetTimer()
		runProducers(b, func(rows []tsdb.Row) {
			if err := eng.Enqueue(rows); err != nil {
				b.Error(err)
			}
		})
		eng.Flush()
		b.StopTimer()
		if eng.Stats().Samples == 0 {
			b.Fatal("no samples ingested")
		}
	})
}

// I2 — shipping samples to the measurements DB over HTTP: the batched
// JSON ingest, the NDJSON streaming writer, and the legacy
// one-event-per-sample /v1/publish bus hop they replace. Reported time
// is per row delivered and stored.
func BenchmarkI2_V2IngestTransport(b *testing.B) {
	newSvc := func(b *testing.B) (*measuredb.Service, string) {
		b.Helper()
		svc := measuredb.New(measuredb.Options{DisableLegacyAliases: true})
		b.Cleanup(svc.Close)
		ts := httptest.NewServer(svc.Handler())
		b.Cleanup(ts.Close)
		return svc, ts.URL
	}
	row := func(i int) measuredb.Point {
		return measuredb.Point{
			Device:   fmt.Sprintf("urn:district:turin/building:b%03d/device:d0", i%64),
			Quantity: "temperature",
			At:       benchT0.Add(time.Duration(i) * time.Second),
			Value:    float64(i),
		}
	}
	ctx := context.Background()

	b.Run("op=json-batch/rows=1000", func(b *testing.B) {
		svc, url := newSvc(b)
		ic := (&client.Client{MaxAttempts: 1}).Ingest(url)
		b.ResetTimer()
		for sent := 0; sent < b.N; {
			n := 1000
			if left := b.N - sent; left < n {
				n = left
			}
			rows := make([]measuredb.Point, n)
			for i := range rows {
				rows[i] = row(sent + i)
			}
			res, err := ic.Append(ctx, rows)
			if err != nil || res.Rejected != 0 {
				b.Fatalf("append: %+v, err %v", res, err)
			}
			sent += n
		}
		b.StopTimer()
		if svc.Stats().Ingested != uint64(b.N) {
			b.Fatalf("ingested %d of %d", svc.Stats().Ingested, b.N)
		}
	})
	b.Run("op=ndjson-stream", func(b *testing.B) {
		svc, url := newSvc(b)
		ic := (&client.Client{MaxAttempts: 1}).Ingest(url)
		b.ResetTimer()
		st, err := ic.Stream(ctx)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if err := st.Write(row(i)); err != nil {
				b.Fatal(err)
			}
		}
		res, err := st.Close()
		b.StopTimer()
		if err != nil || res.Accepted != b.N {
			b.Fatalf("stream summary %+v, err %v", res, err)
		}
		_ = svc
	})
	b.Run("op=bus-publish-per-sample", func(b *testing.B) {
		svc, url := newSvc(b)
		pub := &stream.RemotePublisher{BaseURL: url, Transport: &api.Transport{MaxAttempts: 1}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := row(i)
			doc := dataformat.NewMeasurementDoc(dataformat.Measurement{
				Source: "http://bench/", Device: m.Device,
				Quantity: dataformat.Temperature, Unit: dataformat.Celsius,
				Value: m.Value, Timestamp: m.At,
			})
			payload, err := doc.Encode(dataformat.JSON)
			if err != nil {
				b.Fatal(err)
			}
			if err := pub.Publish(middleware.Event{
				Topic:   measuredb.Topic(m.Device, dataformat.Temperature),
				Payload: payload,
				At:      m.At,
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if svc.Stats().Ingested != uint64(b.N) {
			b.Fatalf("ingested %d of %d", svc.Stats().Ingested, b.N)
		}
	})
}

// ---------------------------------------------------------------------
// D — the durable storage layer. D1 prices the WAL under each fsync
// policy against the in-memory engine (same batch shape as the ingest
// path ships: per-device runs through the shard queues). D2 measures
// boot-time recovery against log size — the cost a deployment pays per
// restart when snapshots are disabled, i.e. the worst case the
// snapshot cadence exists to bound.
// ---------------------------------------------------------------------

// durBenchRows fills rows with per-device runs, timestamps advancing
// per iteration so the stores never fold spills.
func durBenchRows(rows []tsdb.Row, keys []tsdb.SeriesKey, iter int) {
	run := len(rows) / len(keys)
	for j := range rows {
		rows[j] = tsdb.Row{
			Key: keys[j/run%len(keys)],
			Sample: tsdb.Sample{
				At:    benchT0.Add(time.Duration(iter*len(rows)+j) * time.Millisecond),
				Value: float64(j),
			},
		}
	}
}

func BenchmarkD1_WALAppend(b *testing.B) {
	const batch = 512
	keys := make([]tsdb.SeriesKey, 16)
	for d := range keys {
		keys[d] = tsdb.SeriesKey{
			Device:   fmt.Sprintf("urn:district:turin/building:b%02d/device:w%d", d/4, d%4),
			Quantity: "temperature",
		}
	}
	for _, mode := range []string{"mem", "none", "interval", "always"} {
		b.Run("fsync="+mode, func(b *testing.B) {
			opts := tsdb.ShardedOptions{
				Shards:        4,
				Store:         tsdb.Options{MaxSamplesPerSeries: 1 << 16},
				SnapshotEvery: -1, // isolate the append path
			}
			if mode != "mem" {
				m, err := wal.ParseMode(mode)
				if err != nil {
					b.Fatal(err)
				}
				opts.Dir = b.TempDir()
				opts.Fsync = m
			}
			eng, err := tsdb.OpenSharded(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			rows := make([]tsdb.Row, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				durBenchRows(rows, keys, i)
				if errs := eng.AppendBatch(rows); errs != nil {
					b.Fatal(errs[0])
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batch), "rows/op")
		})
	}
}

func BenchmarkD2_Recovery(b *testing.B) {
	const batch = 1024
	keys := make([]tsdb.SeriesKey, 32)
	for d := range keys {
		keys[d] = tsdb.SeriesKey{
			Device:   fmt.Sprintf("urn:district:turin/building:b%02d/device:r%d", d/4, d%4),
			Quantity: "temperature",
		}
	}
	for _, total := range []int{1 << 14, 1 << 17} {
		b.Run(fmt.Sprintf("rows=%d", total), func(b *testing.B) {
			dir := b.TempDir()
			opts := tsdb.ShardedOptions{
				Shards:        4,
				Store:         tsdb.Options{MaxSamplesPerSeries: 1 << 20},
				Dir:           dir,
				SnapshotEvery: -1, // pure log replay: the recovery worst case
			}
			eng, err := tsdb.OpenSharded(opts)
			if err != nil {
				b.Fatal(err)
			}
			rows := make([]tsdb.Row, batch)
			for i := 0; i < total/batch; i++ {
				durBenchRows(rows, keys, i)
				if errs := eng.AppendBatch(rows); errs != nil {
					b.Fatal(errs[0])
				}
			}
			eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				re, err := tsdb.OpenSharded(opts)
				if err != nil {
					b.Fatal(err)
				}
				if got := re.Stats().Samples; got != total {
					b.Fatalf("recovered %d rows, want %d", got, total)
				}
				re.Close()
			}
		})
	}
}

// ---------------------------------------------------------------------
// O — the observability tax. O1 prices full instrumentation on the
// durable write path: the same AppendBatch waves with metrics off (nil
// registry, no stage collector — every observation site nil-guards to
// nothing) versus fully on (per-shard WAL/fsync histograms, commit
// group sizing, queue-depth gauges, and a per-request stage collector,
// the shape every traced /v2/ingest pays). The acceptance bar is <= 3%
// overhead per row.
// ---------------------------------------------------------------------

func BenchmarkO1_ObsOverhead(b *testing.B) {
	const batch = 512
	keys := make([]tsdb.SeriesKey, 16)
	for d := range keys {
		keys[d] = tsdb.SeriesKey{
			Device:   fmt.Sprintf("urn:district:turin/building:b%02d/device:o%d", d/4, d%4),
			Quantity: "temperature",
		}
	}
	run := func(b *testing.B, reg *obs.Registry, staged bool) {
		eng, err := tsdb.OpenSharded(tsdb.ShardedOptions{
			Shards:        8,
			Store:         tsdb.Options{MaxSamplesPerSeries: 1 << 20},
			Dir:           b.TempDir(),
			Fsync:         wal.FsyncNone,
			SnapshotEvery: -1,
			Metrics:       reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		rows := make([]tsdb.Row, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			durBenchRows(rows, keys, i)
			var errs []error
			if staged {
				errs = eng.AppendBatchStages(rows, &obs.Stages{})
			} else {
				errs = eng.AppendBatch(rows)
			}
			if errs != nil {
				b.Fatal(errs[0])
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(batch), "rows/op")
	}
	b.Run("obs=off", func(b *testing.B) { run(b, nil, false) })
	b.Run("obs=on", func(b *testing.B) { run(b, obs.NewRegistry(), true) })
}

// ---------------------------------------------------------------------
// C1 — cluster router: the /v2 data plane through the coordinator as
// the cluster widens. In-memory nodes (8 shards each) behind one
// coordinator, shard ownership round-robin; op=ingest ships 512-row
// keyed batches (ns/op is per row), op=query runs a glob aggregate
// batch query over a preloaded corpus (ns/op is per query). nodes=1 is
// the router-overhead baseline: same wire path, no fan-out.
// ---------------------------------------------------------------------

// benchCluster boots nodes in-memory cluster nodes behind a
// coordinator, shards owned round-robin.
func benchCluster(b *testing.B, nodes int) (string, func()) {
	b.Helper()
	const shards = 8
	m := master.New(master.Options{})
	maddr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	masterURL := "http://" + maddr
	var svcs []*measuredb.Service
	var nodeURLs []string
	for i := 0; i < nodes; i++ {
		s, err := measuredb.Open(measuredb.Options{
			Shards:               shards,
			DisableLegacyAliases: true,
			Cluster:              &measuredb.ClusterOptions{Master: masterURL},
		})
		if err != nil {
			b.Fatal(err)
		}
		addr, err := s.Serve("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		s.SetClusterSelf("http://" + addr)
		svcs = append(svcs, s)
		nodeURLs = append(nodeURLs, "http://"+addr)
	}
	owners := make([]string, shards)
	for i := range owners {
		owners[i] = nodeURLs[i%nodes]
	}
	if _, err := m.ClusterMap().Set(cluster.Map{Shards: shards, Owners: owners}); err != nil {
		b.Fatal(err)
	}
	coord, err := measuredb.OpenCoordinator(measuredb.CoordinatorOptions{Master: masterURL})
	if err != nil {
		b.Fatal(err)
	}
	caddr, err := coord.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	return "http://" + caddr, func() {
		coord.Close()
		for _, s := range svcs {
			s.Close()
		}
		m.Close()
	}
}

func BenchmarkC1_ClusterRouter(b *testing.B) {
	const (
		devices  = 256
		batchLen = 512
	)
	devs := make([]string, devices)
	for d := range devs {
		devs[d] = fmt.Sprintf("urn:district:turin/building:b%03d/device:d%d", d/4, d%4)
	}
	for _, nodes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodes=%d/op=ingest", nodes), func(b *testing.B) {
			coordURL, cleanup := benchCluster(b, nodes)
			defer cleanup()
			ing := (&client.Client{MasterURL: coordURL}).Ingest(coordURL)
			ctx := context.Background()
			rows := make([]measuredb.Point, 0, batchLen)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows = append(rows, measuredb.Point{
					Device: devs[i%devices], Quantity: "temperature",
					At: benchT0.Add(time.Duration(i/devices) * time.Second), Value: float64(i),
				})
				if len(rows) == batchLen || i == b.N-1 {
					if res, err := ing.Append(ctx, rows); err != nil || res.Rejected != 0 {
						b.Fatalf("append: %+v, %v", res, err)
					}
					rows = rows[:0]
				}
			}
		})
		b.Run(fmt.Sprintf("nodes=%d/op=query", nodes), func(b *testing.B) {
			coordURL, cleanup := benchCluster(b, nodes)
			defer cleanup()
			ctx := context.Background()
			ing := (&client.Client{MasterURL: coordURL}).Ingest(coordURL)
			var rows []measuredb.Point
			for d := range devs {
				for j := 0; j < 16; j++ {
					rows = append(rows, measuredb.Point{
						Device: devs[d], Quantity: "temperature",
						At: benchT0.Add(time.Duration(j) * time.Second), Value: float64(j),
					})
				}
				if len(rows) >= 1024 {
					if _, err := ing.Append(ctx, rows); err != nil {
						b.Fatal(err)
					}
					rows = rows[:0]
				}
			}
			if len(rows) > 0 {
				if _, err := ing.Append(ctx, rows); err != nil {
					b.Fatal(err)
				}
			}
			tr := &api.Transport{}
			req := measuredb.BatchQuery{
				Selectors: []measuredb.SeriesSelector{{Device: "*", Quantity: "temperature"}},
				Aggregate: true,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var out measuredb.BatchResponse
				if err := tr.PostJSON(ctx, coordURL+"/v2/query", req, &out); err != nil {
					b.Fatal(err)
				}
				if out.Series != devices {
					b.Fatalf("series = %d, want %d", out.Series, devices)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// D3/D4 — the columnar block tier. D3 prices the block codec against
// the legacy snapshot codec on the same quantized sensor walk (0.25
// steps — the shape real metering data has) and times the full
// compaction cycle: cut + rollups + head snapshot + WAL truncate. D4
// prices a month-range aggregate served by the block index/rollup tier
// against the same aggregate raw-scanned from memory.
// ---------------------------------------------------------------------

// blockBenchRows builds a deterministic quantized random walk: one row
// per second per series, values stepping by ±0.25 like a discretized
// sensor. Quantized deltas are the case the XOR float codec exists for.
func blockBenchRows(keys []tsdb.SeriesKey, perSeries int, base time.Time) []tsdb.Row {
	rows := make([]tsdb.Row, 0, len(keys)*perSeries)
	vals := make([]float64, len(keys))
	for d := range vals {
		vals[d] = 20 + float64(d)
	}
	for i := 0; i < perSeries; i++ {
		for d, k := range keys {
			switch (i * 7919 / (d + 1)) % 3 {
			case 0:
				vals[d] += 0.25
			case 1:
				vals[d] -= 0.25
			}
			rows = append(rows, tsdb.Row{Key: k, Sample: tsdb.Sample{
				At: base.Add(time.Duration(i) * time.Second), Value: vals[d]}})
		}
	}
	return rows
}

func BenchmarkD3_BlockCodecFootprint(b *testing.B) {
	const perSeries = 8192
	keys := make([]tsdb.SeriesKey, 32)
	for d := range keys {
		keys[d] = tsdb.SeriesKey{
			Device:   fmt.Sprintf("urn:district:turin/building:b%02d/device:c%d", d/4, d%4),
			Quantity: "temperature",
		}
	}
	base := time.Now().UTC().Add(-6 * time.Hour).Truncate(time.Second)
	rows := blockBenchRows(keys, perSeries, base)
	total := len(rows)
	for _, codec := range []string{"snapshot", "block"} {
		b.Run("codec="+codec, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				opts := tsdb.ShardedOptions{
					Shards:        1,
					Store:         tsdb.Options{MaxSamplesPerSeries: 1 << 20},
					Dir:           dir,
					SnapshotEvery: -1, // only the explicit compaction below
				}
				if codec == "snapshot" {
					opts.Blocks = tsdb.BlockPolicy{HeadWindow: -1} // legacy full-store snapshots
				} else {
					opts.Blocks = tsdb.BlockPolicy{HeadWindow: time.Minute}
				}
				eng, err := tsdb.OpenSharded(opts)
				if err != nil {
					b.Fatal(err)
				}
				for off := 0; off < len(rows); off += 4096 {
					end := off + 4096
					if end > len(rows) {
						end = len(rows)
					}
					if errs := eng.AppendBatch(rows[off:end]); errs != nil {
						b.Fatal(errs[0])
					}
				}
				b.StartTimer()
				if err := eng.CompactAll(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				pattern := "*.snap"
				if codec == "block" {
					pattern = "*.blk"
				}
				files, err := filepath.Glob(filepath.Join(dir, "shard-0000", pattern))
				if err != nil || len(files) == 0 {
					b.Fatalf("no %s files after compaction (%v)", pattern, err)
				}
				var onDisk int64
				for _, f := range files {
					st, err := os.Stat(f)
					if err != nil {
						b.Fatal(err)
					}
					onDisk += st.Size()
				}
				b.ReportMetric(float64(onDisk)/float64(total), "bytes/sample")
				eng.Close()
			}
			b.ReportMetric(float64(total), "rows/op")
		})
	}
}

func BenchmarkD4_RollupAggregate(b *testing.B) {
	// One sample per minute for 30 days, ending a day ago: the
	// month-on-a-dashboard query shape.
	const perSeries = 43200
	key := tsdb.SeriesKey{Device: "urn:district:turin/building:b01/device:m0", Quantity: "temperature"}
	base := time.Now().UTC().Add(-31 * 24 * time.Hour).Truncate(time.Minute)
	rows := make([]tsdb.Row, perSeries)
	v := 20.0
	for i := range rows {
		switch (i * 7919) % 3 {
		case 0:
			v += 0.25
		case 1:
			v -= 0.25
		}
		rows[i] = tsdb.Row{Key: key, Sample: tsdb.Sample{
			At: base.Add(time.Duration(i) * time.Minute), Value: v}}
	}
	from, to := base.Add(-time.Hour), base.Add(perSeries*time.Minute+time.Hour)

	b.Run("path=rollup", func(b *testing.B) {
		opts := tsdb.ShardedOptions{
			Shards:        1,
			Store:         tsdb.Options{MaxSamplesPerSeries: 1 << 20},
			Dir:           b.TempDir(),
			SnapshotEvery: -1,
			Blocks:        tsdb.BlockPolicy{HeadWindow: time.Minute},
		}
		eng, err := tsdb.OpenSharded(opts)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		if errs := eng.AppendBatch(rows); errs != nil {
			b.Fatal(errs[0])
		}
		if err := eng.CompactAll(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			agg, err := eng.Aggregate(key, from, to)
			if err != nil || agg.Count != perSeries {
				b.Fatalf("aggregate: %+v, %v", agg, err)
			}
		}
	})
	b.Run("path=raw", func(b *testing.B) {
		mem := tsdb.New(tsdb.Options{MaxSamplesPerSeries: 1 << 20})
		for _, r := range rows {
			if err := mem.Append(r.Key, r.Sample); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			agg, err := mem.Aggregate(key, from, to)
			if err != nil || agg.Count != perSeries {
				b.Fatalf("aggregate: %+v, %v", agg, err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// H — the hot-path allocation overhaul: per-row allocation budgets on
// the /v2 ingest decode and query encode planes (pooled scanner and
// row encoders vs the reflecting encoding/json paths they replaced),
// and the generation-keyed result cache's cached-vs-uncached latency.
// The committed ceilings live in BENCH_hotpath.json and hotalloc_ci.json;
// CI runs H1/H2 at -benchtime=1x and fails on regression.
// ---------------------------------------------------------------------

// discardResponseWriter sinks a response body without buffering it, so
// MemStats deltas around a handler call measure the handler, not the
// recorder.
type discardResponseWriter struct {
	h      http.Header
	status int
}

func (d *discardResponseWriter) Header() http.Header { return d.h }

func (d *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }

func (d *discardResponseWriter) WriteHeader(status int) {
	if d.status == 0 {
		d.status = status
	}
}

// benchAllocsPerRow times fn (which processes rowsPerOp rows per call)
// and reports steady-state heap allocations per row from the MemStats
// delta across the timed loop. One untimed warm-up call primes pools,
// interners, and lazily created metrics so the figure is the per-row
// budget, not first-request setup.
func benchAllocsPerRow(b *testing.B, rowsPerOp int, fn func()) {
	b.Helper()
	fn()
	b.ReportAllocs()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	rows := float64(b.N) * float64(rowsPerOp)
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/rows, "allocs/row")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(rows/secs, "rows/s")
	}
}

// H1 — ingest decode allocations. One op is a full POST /v2/ingest of
// 8192 rows through the service handler (routing and envelope
// included); allocs/row is the steady-state heap cost of decoding,
// validating, and applying one row. The pooled zero-copy scanner's
// budget is <= 2 allocs/row on both transports.
func BenchmarkH1_IngestAllocs(b *testing.B) {
	const (
		devices   = 64
		rowsPerOp = 8192
	)
	deviceOf := func(d int) string {
		return fmt.Sprintf("urn:district:turin/building:b%03d/device:d0", d)
	}
	rowJSON := func(i int) string {
		return fmt.Sprintf(`{"device":%q,"quantity":"temperature","at":"2015-03-09T%02d:%02d:%02dZ","value":%d.25}`,
			deviceOf(i%devices), 10+i/3600%8, i/60%60, i%60, i%97)
	}
	var nd, batch bytes.Buffer
	batch.WriteString(`{"rows":[`)
	for i := 0; i < rowsPerOp; i++ {
		nd.WriteString(rowJSON(i))
		nd.WriteByte('\n')
		if i > 0 {
			batch.WriteByte(',')
		}
		batch.WriteString(rowJSON(i))
	}
	batch.WriteString(`]}`)

	run := func(b *testing.B, body []byte, contentType string) {
		svc := measuredb.New(measuredb.Options{
			DisableLegacyAliases: true,
			Engine: tsdb.NewSharded(tsdb.ShardedOptions{
				Store: tsdb.Options{MaxSamplesPerSeries: 1 << 22},
			}),
		})
		b.Cleanup(svc.Close)
		h := svc.Handler()
		benchAllocsPerRow(b, rowsPerOp, func() {
			req := httptest.NewRequest("POST", "/v2/ingest", bytes.NewReader(body))
			req.Header.Set("Content-Type", contentType)
			w := &discardResponseWriter{h: make(http.Header)}
			h.ServeHTTP(w, req)
			if w.status != 200 {
				b.Fatalf("ingest status %d", w.status)
			}
		})
	}
	b.Run("transport=ndjson", func(b *testing.B) { run(b, nd.Bytes(), measuredb.NDJSONType) })
	b.Run("transport=json-batch", func(b *testing.B) { run(b, batch.Bytes(), "application/json") })
}

// H2 — query encode allocations. One op streams a 50000-row series out
// of GET /v2/.../samples through the service handler into a discarding
// writer; allocs/row is the steady-state encode cost per emitted row.
// The pooled append encoders' budget is <= 1 alloc/row on NDJSON (CSV
// pays two per-row string conversions to encoding/csv and is reported
// for reference, without a ceiling).
func BenchmarkH2_QueryEncodeAllocs(b *testing.B) {
	const rowsPerOp = 50000
	device := "urn:district:turin/building:b000/device:d0"
	svc := measuredb.New(measuredb.Options{
		DisableLegacyAliases: true,
		Engine: tsdb.NewSharded(tsdb.ShardedOptions{
			Store: tsdb.Options{MaxSamplesPerSeries: 1 << 20},
		}),
	})
	b.Cleanup(svc.Close)
	store := svc.Store()
	key := tsdb.SeriesKey{Device: device, Quantity: "temperature"}
	for i := 0; i < rowsPerOp; i++ {
		if err := store.Append(key, tsdb.Sample{At: benchT0.Add(time.Duration(i) * time.Second), Value: float64(i) + 0.25}); err != nil {
			b.Fatal(err)
		}
	}
	h := svc.Handler()
	target := "/v2/series/" + url.PathEscape(device) + "/temperature/samples"
	run := func(b *testing.B, encoding string) {
		benchAllocsPerRow(b, rowsPerOp, func() {
			req := httptest.NewRequest("GET", target+"?encoding="+encoding, nil)
			w := &discardResponseWriter{h: make(http.Header)}
			h.ServeHTTP(w, req)
			if w.status != 200 {
				b.Fatalf("samples status %d", w.status)
			}
		})
	}
	b.Run("encoding=ndjson", func(b *testing.B) { run(b, "ndjson") })
	b.Run("encoding=csv", func(b *testing.B) { run(b, "csv") })
}

// H3 — the generation-keyed result cache. The op is a full GET
// /v2/.../aggregate through the handler over a 200k-sample series; with
// the cache on, every request after the first is a key build, two
// atomic loads, and a pre-encoded body write. The acceptance bar is
// >= 5x latency improvement cached vs uncached (byte-identity of the
// responses is asserted by the measuredb test suite, not here).
func BenchmarkH3_CachedAggregate(b *testing.B) {
	const perSeries = 200000
	device := "urn:district:turin/building:b000/device:d0"
	key := tsdb.SeriesKey{Device: device, Quantity: "temperature"}
	target := "/v2/series/" + url.PathEscape(device) + "/temperature/aggregate"
	for _, mode := range []struct {
		name  string
		bytes int64
	}{{"cache=off", 0}, {"cache=on", 64 << 20}} {
		b.Run(mode.name, func(b *testing.B) {
			svc := measuredb.New(measuredb.Options{
				DisableLegacyAliases: true,
				QCacheBytes:          mode.bytes,
				Engine: tsdb.NewSharded(tsdb.ShardedOptions{
					Store: tsdb.Options{MaxSamplesPerSeries: 1 << 20},
				}),
			})
			b.Cleanup(svc.Close)
			store := svc.Store()
			for i := 0; i < perSeries; i++ {
				if err := store.Append(key, tsdb.Sample{At: benchT0.Add(time.Duration(i) * time.Second), Value: float64(i % 977)}); err != nil {
					b.Fatal(err)
				}
			}
			h := svc.Handler()
			do := func() {
				req := httptest.NewRequest("GET", target, nil)
				w := &discardResponseWriter{h: make(http.Header)}
				h.ServeHTTP(w, req)
				if w.status != 200 {
					b.Fatalf("aggregate status %d", w.status)
				}
			}
			do() // fill the cache (and fault in the head pages) untimed
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				do()
			}
		})
	}
}
