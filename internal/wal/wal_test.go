package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collect replays the whole log into memory.
func collect(t *testing.T, l *Log, after uint64) (seqs []uint64, recs [][]byte) {
	t.Helper()
	err := l.Replay(after, func(seq uint64, p []byte) error {
		seqs = append(seqs, seq)
		recs = append(recs, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	for i, p := range want {
		seq, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	seqs, recs := collect(t, l, 0)
	if len(recs) != 3 || !bytes.Equal(recs[2], []byte("three")) || seqs[0] != 1 {
		t.Fatalf("replay = %v %q", seqs, recs)
	}
	// after-filter
	seqs, _ = collect(t, l, 2)
	if len(seqs) != 1 || seqs[0] != 3 {
		t.Fatalf("replay after 2 = %v", seqs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: continues numbering, keeps the data.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 3 {
		t.Fatalf("LastSeq after reopen = %d", got)
	}
	if seq, err := l2.Append([]byte("four")); err != nil || seq != 4 {
		t.Fatalf("append after reopen = %d, %v", seq, err)
	}
	seqs, _ = collect(t, l2, 0)
	if len(seqs) != 4 {
		t.Fatalf("replay after reopen = %v", seqs)
	}
}

func TestFirstSeqAndEmptyLastSeq(t *testing.T) {
	l, err := Open(t.TempDir(), Options{FirstSeq: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.LastSeq(); got != 999 {
		t.Fatalf("empty LastSeq = %d, want 999", got)
	}
	if seq, _ := l.Append([]byte("x")); seq != 1000 {
		t.Fatalf("first seq = %d, want 1000", seq)
	}
}

// tailSegment returns the path of the newest segment file.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	bases, err := listSegments(dir)
	if err != nil || len(bases) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	return filepath.Join(dir, fmt.Sprintf("%016x%s", bases[len(bases)-1], segSuffix))
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte{byte(i), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-append: garbage (a torn frame) at the tail.
	f, err := os.OpenFile(tailSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 3 {
		t.Fatalf("LastSeq after torn tail = %d, want 3", got)
	}
	seqs, _ := collect(t, l2, 0)
	if len(seqs) != 3 {
		t.Fatalf("replay after torn tail = %v", seqs)
	}
	// The torn record's sequence is reused by the next append.
	if seq, err := l2.Append([]byte("fresh")); err != nil || seq != 4 {
		t.Fatalf("append after truncation = %d, %v", seq, err)
	}
	_, recs := collect(t, l2, 3)
	if len(recs) != 1 || !bytes.Equal(recs[0], []byte("fresh")) {
		t.Fatalf("recs = %q", recs)
	}
}

func TestCorruptPayloadTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(bytes.Repeat([]byte("a"), 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(bytes.Repeat([]byte("b"), 32)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a byte inside the LAST record's payload: its CRC fails and it
	// is dropped; the first record survives.
	path := tailSegment(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seqs, _ := collect(t, l2, 0)
	if len(seqs) != 1 {
		t.Fatalf("replay after corruption = %v, want 1 record", seqs)
	}
}

func TestSegmentRollAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 40; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 4 {
		t.Fatalf("segments = %d, want several", l.Segments())
	}
	if err := l.TruncateBefore(21); err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, l, 0)
	if len(seqs) == 0 || seqs[0] > 21 {
		t.Fatalf("first retained seq = %v, want <= 21", seqs)
	}
	if seqs[len(seqs)-1] != 40 {
		t.Fatalf("last seq = %d", seqs[len(seqs)-1])
	}
	// Records >= 21 are all still present (whole-segment granularity may
	// retain some earlier ones).
	n := 0
	for _, s := range seqs {
		if s >= 21 {
			n++
		}
	}
	if n != 20 {
		t.Fatalf("retained >= 21: %d, want 20", n)
	}
}

func TestAppendBatchGroupAndTooBig(t *testing.T) {
	l, err := Open(t.TempDir(), Options{MaxRecord: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	last, err := l.AppendBatch([][]byte{[]byte("a"), []byte("b"), []byte("c")})
	if err != nil || last != 3 {
		t.Fatalf("batch = %d, %v", last, err)
	}
	if _, err := l.Append(bytes.Repeat([]byte("x"), 9)); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized append err = %v", err)
	}
	if _, err := l.Append(nil); !errors.Is(err, ErrTooBig) {
		t.Fatalf("empty append err = %v", err)
	}
}

func TestFsyncModes(t *testing.T) {
	for _, mode := range []Mode{FsyncNone, FsyncInterval, FsyncAlways} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Fsync: mode, SyncEvery: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l.Append([]byte("payload")); err != nil {
				t.Fatal(err)
			}
			if mode == FsyncInterval {
				time.Sleep(20 * time.Millisecond) // let the syncer run once
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			// Reopen WITHOUT closing: the kill-shaped path. The append was
			// write(2)-flushed, so it must be visible in every mode.
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			seqs, _ := collect(t, l2, 0)
			if len(seqs) != 1 {
				t.Fatalf("mode %v lost the record: %v", mode, seqs)
			}
			l2.Close()
			l.Close()
		})
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{"": FsyncNone, "none": FsyncNone, "interval": FsyncInterval, "always": FsyncAlways} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseMode("sometimes"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if seq, sr, err := LatestSnapshot(dir); err != nil || sr != nil || seq != 0 {
		t.Fatalf("empty dir snapshot = %d, %v, %v", seq, sr, err)
	}
	write := func(seq uint64, recs ...string) {
		err := WriteSnapshot(dir, seq, func(sw *SnapshotWriter) error {
			for _, r := range recs {
				if err := sw.Record([]byte(r)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	write(10, "alpha", "beta")
	write(25, "gamma")

	seq, sr, err := LatestSnapshot(dir)
	if err != nil || sr == nil || seq != 25 {
		t.Fatalf("latest = %d, %v", seq, err)
	}
	p, err := sr.Record()
	if err != nil || string(p) != "gamma" {
		t.Fatalf("record = %q, %v", p, err)
	}
	if _, err := sr.Record(); !errors.Is(err, io.EOF) {
		t.Fatalf("end err = %v", err)
	}
	sr.Close()

	RemoveSnapshotsBefore(dir, 25)
	seqs, err := listSnapshots(dir)
	if err != nil || len(seqs) != 1 || seqs[0] != 25 {
		t.Fatalf("after prune: %v, %v", seqs, err)
	}
}

func TestSnapshotCrashLeavesPreviousAuthoritative(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 5, func(sw *SnapshotWriter) error { return sw.Record([]byte("good")) }); err != nil {
		t.Fatal(err)
	}
	// A failing producer must not leave a half-written snapshot behind.
	wantErr := errors.New("producer died")
	if err := WriteSnapshot(dir, 9, func(sw *SnapshotWriter) error {
		_ = sw.Record([]byte("partial"))
		return wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	seq, sr, err := LatestSnapshot(dir)
	if err != nil || seq != 5 {
		t.Fatalf("latest after failed write = %d, %v", seq, err)
	}
	sr.Close()
}

func TestSkipTo(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("a")); err != nil { // seq 1
		t.Fatal(err)
	}
	if err := l.SkipTo(100); err != nil {
		t.Fatal(err)
	}
	if err := l.SkipTo(50); err != nil { // behind: no-op
		t.Fatal(err)
	}
	if seq, err := l.Append([]byte("b")); err != nil || seq != 100 {
		t.Fatalf("post-skip seq = %d, %v", seq, err)
	}
	l.Close()

	// The jump survives a reopen and replay sees both epochs with their
	// original sequences.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 100 {
		t.Fatalf("LastSeq after reopen = %d", got)
	}
	seqs, _ := collect(t, l2, 0)
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 100 {
		t.Fatalf("replay = %v", seqs)
	}
}
