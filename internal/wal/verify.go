package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
)

// VerifyResult summarizes a read-only integrity scan of one log
// directory.
type VerifyResult struct {
	// Segments and Records count the segment files and the whole,
	// CRC-valid records they hold.
	Segments int `json:"segments"`
	Records  int `json:"records"`
	// TornTailBytes is how many bytes past the last whole record the
	// active (last) segment carries — the normal artefact of a kill
	// mid-append, truncated away by the next Open.
	TornTailBytes int64 `json:"torn_tail_bytes,omitempty"`
	// Snapshots and SnapshotRecords count the snapshot files and their
	// records, all CRC-checked.
	Snapshots       int `json:"snapshots"`
	SnapshotRecords int `json:"snapshot_records"`
}

// VerifyDir CRC-checks every record of every segment and snapshot in
// dir without opening a live log: nothing is created, truncated, or
// repaired. A torn tail on the last segment is reported, not an error
// (Open recovers it); corruption anywhere else is.
func VerifyDir(dir string) (VerifyResult, error) {
	var res VerifyResult
	bases, err := listSegments(dir)
	if err != nil {
		return res, err
	}
	for i, base := range bases {
		path := fmt.Sprintf("%s/%016x%s", dir, base, segSuffix)
		count, valid, err := scanSegment(path, 64<<20)
		if err != nil {
			return res, err
		}
		res.Segments++
		res.Records += count
		if info, err := os.Stat(path); err == nil && info.Size() > valid {
			if i < len(bases)-1 {
				return res, fmt.Errorf("wal: segment %016x: %d bytes of corruption mid-log: %w",
					base, info.Size()-valid, ErrCorrupt)
			}
			res.TornTailBytes = info.Size() - valid
		}
	}
	seqs, err := listSnapshots(dir)
	if err != nil {
		return res, err
	}
	for _, seq := range seqs {
		n, err := verifySnapshot(snapPath(dir, seq))
		if err != nil {
			return res, err
		}
		res.Snapshots++
		res.SnapshotRecords += n
	}
	return res, nil
}

// verifySnapshot reads one snapshot file to EOF, CRC-checking every
// record.
func verifySnapshot(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close() //lint:ignore closecheck read-only verification scan; close error cannot lose data
	fr := &frameReader{r: bufio.NewReaderSize(f, 1<<16), max: 64 << 20}
	n := 0
	for {
		_, err := fr.next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("wal: snapshot %s record %d: %w", path, n, err)
		}
		n++
	}
}
