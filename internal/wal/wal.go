// Package wal is the durable storage substrate of the infrastructure: a
// segmented, CRC-checked, append-only record log plus atomic snapshot
// files. The tsdb engine journals every acked row batch through one Log
// per shard, the stream hub re-backs its replay ring with one, and the
// ingest idempotency window persists delivery outcomes alongside — all
// three ride the same segment abstraction, so crash recovery, torn-tail
// handling and compaction behave identically across the write path.
//
// Records are framed as [len uint32][crc32c uint32][payload]; a torn
// frame at the tail (the normal shape of a SIGKILL mid-append) fails the
// CRC, is truncated away on Open, and its sequence number is reused by
// the next append. Every append is write(2)-flushed to the OS before it
// returns, so a process kill never loses acked records in any fsync
// mode; the fsync policy only decides what a whole-machine crash can
// take with it:
//
//	FsyncNone      no fsync — survives process kill, not power loss
//	FsyncInterval  fsync at most every SyncEvery — bounded loss window
//	FsyncAlways    fsync before the append returns — group-committed
//	               by callers that batch, full durability
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Mode is a WAL fsync policy.
type Mode int

// Fsync policies, weakest to strongest.
const (
	FsyncNone Mode = iota
	FsyncInterval
	FsyncAlways
)

// String renders the mode in the form the -fsync flags accept.
func (m Mode) String() string {
	switch m {
	case FsyncInterval:
		return "interval"
	case FsyncAlways:
		return "always"
	default:
		return "none"
	}
}

// ParseMode parses a -fsync flag value ("" means FsyncNone).
func ParseMode(s string) (Mode, error) {
	switch strings.TrimSpace(s) {
	case "", "none":
		return FsyncNone, nil
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	default:
		return FsyncNone, fmt.Errorf("wal: bad fsync mode %q (want none, interval or always)", s)
	}
}

// Errors returned by the log.
var (
	ErrClosed  = errors.New("wal: log closed")
	ErrCorrupt = errors.New("wal: corrupt record")
	ErrTooBig  = errors.New("wal: record exceeds MaxRecord")
)

// Options configure a Log.
type Options struct {
	// SegmentBytes rolls the active segment once it exceeds this many
	// bytes (default 8 MiB). Sealed segments are the unit of compaction:
	// TruncateBefore deletes whole segments below a snapshot watermark.
	SegmentBytes int64
	// Fsync is the durability policy (default FsyncNone).
	Fsync Mode
	// SyncEvery is the FsyncInterval background sync period (default
	// 100ms); ignored in the other modes.
	SyncEvery time.Duration
	// FirstSeq is the sequence number of the first record when the
	// directory is empty (default 1). An existing log continues from its
	// own tail and ignores this.
	FirstSeq uint64
	// MaxRecord bounds one record's payload (default 64 MiB); it guards
	// the decoder against reading a garbage length as an allocation.
	MaxRecord int
	// OnSync, when set, receives the duration of every data-file fsync
	// (observability hook). It is called with the log's mutex held and
	// must not block or call back into the log.
	OnSync func(d time.Duration)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.FirstSeq == 0 {
		o.FirstSeq = 1
	}
	if o.MaxRecord <= 0 {
		o.MaxRecord = 64 << 20
	}
	return o
}

const (
	segSuffix   = ".seg"
	frameHeader = 8 // len + crc
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is a segmented append-only record log. Appends assign contiguous
// sequence numbers; segment files are named by the sequence of their
// first record, so a reader derives every record's sequence from the
// file name and its position. One goroutine may append at a time (the
// log serializes internally); Replay is meant for recovery, before
// concurrent appends start.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File // active segment
	w      *bufWriter
	segs   []uint64 // base seq of every segment, ascending; last is active
	next   uint64   // next seq to assign
	size   int64    // bytes in the active segment
	dirty  bool     // bytes flushed to the OS but not fsynced
	err    error    // sticky background sync failure
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// bufWriter is a minimal buffered writer (bufio.Writer sized for frame
// bursts) that tracks nothing else; split out so the header scratch can
// live beside it.
type bufWriter struct {
	f   *os.File
	buf []byte
}

func (b *bufWriter) write(p []byte) {
	b.buf = append(b.buf, p...)
}

func (b *bufWriter) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.f.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}

// Open opens (creating if needed) the log in dir. The tail segment is
// scanned and truncated at the first torn or corrupt frame, so a log
// cut down mid-append by a crash recovers to its last whole record.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	bases, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, stop: make(chan struct{})}
	if len(bases) == 0 {
		if err := l.createSegment(opts.FirstSeq); err != nil {
			return nil, err
		}
	} else {
		base := bases[len(bases)-1]
		count, valid, err := scanSegment(l.segPath(base), opts.MaxRecord)
		if err != nil {
			return nil, err
		}
		if info, err := os.Stat(l.segPath(base)); err == nil && info.Size() > valid {
			if err := os.Truncate(l.segPath(base), valid); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
		}
		f, err := os.OpenFile(l.segPath(base), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
		l.w = &bufWriter{f: f}
		l.segs = bases
		l.next = base + uint64(count)
		l.size = valid
	}
	if opts.Fsync == FsyncInterval {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

func (l *Log) segPath(base uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%016x%s", base, segSuffix))
}

// listSegments returns the base sequences of every segment, ascending.
func listSegments(dir string) ([]uint64, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var bases []uint64
	for _, e := range names {
		name := e.Name()
		if !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// scanSegment counts the whole frames of a segment and the byte length
// they occupy; a torn or corrupt tail is simply excluded.
func scanSegment(path string, maxRecord int) (count int, valid int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close() //lint:ignore closecheck read-only scan; close error cannot lose data
	r := &frameReader{r: bufio.NewReaderSize(f, 1<<16), max: maxRecord}
	for {
		_, err := r.next()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, ErrCorrupt) {
				return count, valid, nil
			}
			return 0, 0, err
		}
		count++
		valid = r.off
	}
}

// frameReader reads frames sequentially, tracking the offset after the
// last whole frame. Any malformed frame — short header, zero or
// oversized length, payload cut short, CRC mismatch — reads as
// ErrCorrupt; clean end-of-file as io.EOF.
type frameReader struct {
	r   io.Reader
	max int
	off int64
	buf []byte
}

func (fr *frameReader) next() ([]byte, error) {
	var hdr [frameHeader]byte
	n, err := io.ReadFull(fr.r, hdr[:])
	if n == 0 && errors.Is(err, io.EOF) {
		return nil, io.EOF
	}
	if err != nil {
		return nil, ErrCorrupt // torn header
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || int(length) > fr.max {
		return nil, ErrCorrupt
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	payload := fr.buf[:length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, ErrCorrupt // torn payload
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, ErrCorrupt
	}
	fr.off += frameHeader + int64(length)
	return payload, nil
}

func (l *Log) createSegment(base uint64) error {
	f, err := os.OpenFile(l.segPath(base), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = &bufWriter{f: f}
	l.segs = append(l.segs, base)
	l.next = base
	l.size = 0
	return nil
}

// rollLocked seals the active segment and opens the next one, based at
// base (normally l.next). Sealed segments are fsynced in the durable
// modes so compaction never deletes the only synced copy of a record.
func (l *Log) rollLocked(base uint64) error {
	if err := l.w.flush(); err != nil {
		return err
	}
	if l.opts.Fsync != FsyncNone {
		if err := l.syncFile(l.f); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.createSegment(base)
}

// SkipTo advances the next sequence to seq by sealing the active
// segment and opening a new one based there. Callers that bind an
// external ID space to the log (the stream hub's event IDs) use it
// after a restart to jump past IDs that may have been assigned live
// but lost from the journal's tail — re-issuing those to different
// records would let a resuming consumer mistake fresh data for
// already-seen. No-op when seq is not ahead of the log.
func (l *Log) SkipTo(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if seq <= l.next {
		return nil
	}
	if err := l.rollLocked(seq); err != nil {
		return l.failLocked(fmt.Errorf("wal: skip to %d: %w", seq, err))
	}
	return nil
}

// Append writes one record and returns its sequence number, honouring
// the fsync policy. The payload reaches the OS (write(2)) before Append
// returns in every mode.
func (l *Log) Append(p []byte) (uint64, error) {
	return l.AppendBatch([][]byte{p})
}

// AppendBatch writes records contiguously and returns the sequence of
// the last. In FsyncAlways mode the whole batch is covered by a single
// fsync — the group-commit path for callers that queue writes.
func (l *Log) AppendBatch(ps [][]byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	if len(ps) == 0 {
		return l.next - 1, nil
	}
	// Validate the whole batch before buffering any of it: rejecting a
	// record mid-batch would leave its predecessors buffered with
	// sequence numbers assigned — flushed by the next successful append
	// as phantom records of a batch the caller was told failed.
	for _, p := range ps {
		if len(p) == 0 || len(p) > l.opts.MaxRecord {
			return 0, ErrTooBig
		}
	}
	var hdr [frameHeader]byte
	for _, p := range ps {
		if l.size >= l.opts.SegmentBytes {
			if err := l.rollLocked(l.next); err != nil {
				return 0, l.failLocked(fmt.Errorf("wal: roll segment: %w", err))
			}
		}
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
		l.w.write(hdr[:])
		l.w.write(p)
		l.size += frameHeader + int64(len(p))
		l.next++
	}
	if err := l.w.flush(); err != nil {
		return 0, l.failLocked(fmt.Errorf("wal: %w", err))
	}
	if l.opts.Fsync == FsyncAlways {
		if err := l.syncFile(l.f); err != nil {
			return 0, l.failLocked(fmt.Errorf("wal: %w", err))
		}
	} else {
		l.dirty = true
	}
	return l.next - 1, nil
}

// syncFile fsyncs one of the log's data files, reporting the stall to
// the OnSync observability hook when one is installed.
func (l *Log) syncFile(f *os.File) error {
	if l.opts.OnSync == nil {
		return f.Sync()
	}
	start := time.Now()
	err := f.Sync()
	l.opts.OnSync(time.Since(start))
	return err
}

// failLocked poisons the log after a write-path failure. A failed or
// short write can leave a torn frame mid-segment; anything appended
// after it would sit beyond the tear and be silently truncated by the
// next recovery scan — acked-but-unrecoverable, the one thing a WAL
// must never produce. So the first failure is sticky: every later
// append fails fast until the log is reopened (which truncates at the
// tear and restores the invariant).
func (l *Log) failLocked(err error) error {
	if l.err == nil {
		l.err = err
	}
	return err
}

// Sync flushes and fsyncs the active segment. Like append failures, a
// sync failure poisons the log (see failLocked).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.syncLocked(); err != nil {
		if !errors.Is(err, ErrClosed) {
			return l.failLocked(err)
		}
		return err
	}
	return nil
}

func (l *Log) syncLocked() error {
	if l.closed {
		return ErrClosed
	}
	if err := l.w.flush(); err != nil {
		return err
	}
	if !l.dirty {
		return nil
	}
	if err := l.syncFile(l.f); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

// syncLoop is the FsyncInterval background syncer; a failure parks in
// l.err so the next Append surfaces it instead of acking unsynced data.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				if err := l.syncLocked(); err != nil && l.err == nil {
					l.err = err
				}
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// LastSeq returns the sequence of the most recent record (FirstSeq-1
// when the log is empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Segments reports how many segment files the log currently spans.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Replay streams every record with sequence > after, in order. A torn
// tail in the last segment ends the replay cleanly; corruption in an
// earlier segment is unreachable-data loss and is returned as an error
// wrapping ErrCorrupt. The log is locked for the duration — Replay is a
// recovery-time operation.
func (l *Log) Replay(after uint64, fn func(seq uint64, rec []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.w.flush(); err != nil {
		return err
	}
	for i, base := range l.segs {
		last := i == len(l.segs)-1
		if !last && l.segs[i+1] <= after+1 {
			continue // every record in this segment is <= after
		}
		if err := l.replaySegment(base, last, after, fn); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) replaySegment(base uint64, last bool, after uint64, fn func(uint64, []byte) error) error {
	f, err := os.Open(l.segPath(base))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close() //lint:ignore closecheck read-only replay; close error cannot lose data
	r := &frameReader{r: bufio.NewReaderSize(f, 1<<16), max: l.opts.MaxRecord}
	seq := base
	for {
		p, err := r.next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if errors.Is(err, ErrCorrupt) {
			if last {
				return nil // torn tail: normal kill artefact
			}
			return fmt.Errorf("wal: segment %016x record %d: %w", base, seq, ErrCorrupt)
		}
		if err != nil {
			return err
		}
		if seq > after {
			if err := fn(seq, p); err != nil {
				return err
			}
		}
		seq++
	}
}

// TruncateBefore deletes sealed segments every record of which has
// sequence < seq — the compaction step after a snapshot at seq-1. The
// active segment is never deleted.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	kept := l.segs[:0]
	for i, base := range l.segs {
		if i < len(l.segs)-1 && l.segs[i+1] <= seq {
			if err := os.Remove(l.segPath(base)); err != nil && !os.IsNotExist(err) {
				// Keep the bookkeeping consistent with the directory.
				kept = append(kept, base)
			}
			continue
		}
		kept = append(kept, base)
	}
	l.segs = kept
	return nil
}

// Close flushes, fsyncs and closes the log. Safe to call twice.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	close(l.stop)
	l.mu.Unlock()
	l.wg.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.w.flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	return err
}
