package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshots are the compaction half of the durability layer: a snapshot
// file captures the full state of a store as of one log sequence, after
// which every log segment at or below that watermark can be deleted
// (TruncateBefore). Snapshot files are written to a temp name, fsynced,
// and renamed into place, so a crash mid-snapshot leaves the previous
// snapshot (and the uncompacted log) authoritative. Content is a stream
// of CRC-framed records in the same format as log segments.

const (
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

// SnapshotWriter frames records into a snapshot file.
type SnapshotWriter struct {
	w   *bufio.Writer
	max int
}

// Record appends one framed record to the snapshot.
func (sw *SnapshotWriter) Record(p []byte) error {
	if len(p) == 0 || len(p) > sw.max {
		return ErrTooBig
	}
	var hdr [frameHeader]byte
	putFrameHeader(hdr[:], p)
	if _, err := sw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := sw.w.Write(p)
	return err
}

func putFrameHeader(hdr []byte, p []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
}

// WriteSnapshot atomically writes the snapshot for watermark seq into
// dir: fn streams the records, then the file is fsynced and renamed to
// <seq>.snap (the directory is fsynced too, so the rename survives a
// crash). After it returns, TruncateBefore(seq+1) is safe.
func WriteSnapshot(dir string, seq uint64, fn func(*SnapshotWriter) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	final := snapPath(dir, seq)
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	sw := &SnapshotWriter{w: bufio.NewWriterSize(f, 1<<16), max: 64 << 20}
	if err := fn(sw); err != nil {
		err = errors.Join(err, f.Close())
		os.Remove(tmp)
		return err
	}
	if err := sw.w.Flush(); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	// Best effort, like every directory fsync here: some filesystems
	// reject it, and the data fsync above already landed.
	_ = SyncDir(dir)
	return nil
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x%s", seq, snapSuffix))
}

// SyncDir fsyncs a directory so renames and removes inside it are
// durable. Exported for the other durable layers (the tsdb engine meta
// file uses the same tmp+fsync+rename dance). Callers on filesystems
// that reject directory fsync may treat the error as best-effort.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	return errors.Join(err, d.Close())
}

// SnapshotReader streams the records of one snapshot file.
type SnapshotReader struct {
	f  *os.File
	fr *frameReader
}

// Record returns the next snapshot record; io.EOF ends the stream. A
// torn or corrupt record returns an error wrapping ErrCorrupt — a
// snapshot is atomic, so unlike a log tail there is no benign cut.
func (sr *SnapshotReader) Record() ([]byte, error) {
	p, err := sr.fr.next()
	if errors.Is(err, ErrCorrupt) {
		return nil, fmt.Errorf("wal: snapshot %s: %w", sr.f.Name(), ErrCorrupt)
	}
	return p, err
}

// Close releases the snapshot file.
func (sr *SnapshotReader) Close() error { return sr.f.Close() }

// LatestSnapshot opens the newest snapshot in dir, returning its
// watermark sequence. A (0, nil, nil) return means no snapshot exists.
func LatestSnapshot(dir string) (uint64, *SnapshotReader, error) {
	seqs, err := listSnapshots(dir)
	if err != nil || len(seqs) == 0 {
		return 0, nil, err
	}
	seq := seqs[len(seqs)-1]
	f, err := os.Open(snapPath(dir, seq))
	if err != nil {
		return 0, nil, fmt.Errorf("wal: %w", err)
	}
	return seq, &SnapshotReader{f: f, fr: &frameReader{r: bufio.NewReaderSize(f, 1<<16), max: 64 << 20}}, nil
}

// RemoveSnapshotsBefore deletes snapshots with watermark < seq, plus
// any abandoned temp files. Best effort.
func RemoveSnapshotsBefore(dir string, seq uint64) {
	seqs, err := listSnapshots(dir)
	if err != nil {
		return
	}
	for _, s := range seqs {
		if s < seq {
			_ = os.Remove(snapPath(dir, s))
		}
	}
	if stray, err := filepath.Glob(filepath.Join(dir, "*"+tmpSuffix)); err == nil {
		for _, p := range stray {
			_ = os.Remove(p)
		}
	}
}

// listSnapshots returns snapshot watermarks in dir, ascending.
func listSnapshots(dir string) ([]uint64, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, e := range names {
		name := e.Name()
		if !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, snapSuffix), 16, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}
