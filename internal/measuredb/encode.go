package measuredb

import (
	"math"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// Hand-rolled NDJSON row encoders for the streaming read plane. The
// per-row cost of json.Encoder (reflection, interface boxing, the
// pointer fields of BatchRow) dominated the query hot path; these
// append into one pooled buffer per response and produce byte-identical
// output to encoding/json (HTML escaping, U+2028/U+2029, the float
// exponent cleanup, RFC 3339 nano timestamps), so switching a stream
// consumer between releases sees no wire change.

// rowBuf is one response's reusable row-encode buffer.
type rowBuf struct{ b []byte }

var rowBufPool = sync.Pool{New: func() any { return &rowBuf{b: make([]byte, 0, 256)} }}

func getRowBuf() *rowBuf { return rowBufPool.Get().(*rowBuf) }

// maxPooledRowBuf caps what returns to the pool; one giant device URI
// should not pin its high-water mark forever.
const maxPooledRowBuf = 64 << 10

func putRowBuf(buf *rowBuf) {
	if cap(buf.b) <= maxPooledRowBuf {
		rowBufPool.Put(buf)
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string exactly as encoding/json
// encodes it: control characters, '"', '\\', the HTML set (&, <, >),
// and U+2028/U+2029 escaped; invalid UTF-8 bytes rendered as the
// six-byte escape `\ufffd` (the encoder escapes the replacement rune,
// it does not emit it literally).
//
// districtlint:hotpath
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '"':
				b = append(b, '\\', '"')
			case '\\':
				b = append(b, '\\', '\\')
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendJSONFloat appends f exactly as encoding/json encodes float64
// values: shortest form, 'e' notation outside [1e-6, 1e21) with the
// two-digit exponent's leading zero trimmed.
//
// districtlint:hotpath
func appendJSONFloat(b []byte, f float64) []byte {
	format := byte('f')
	if abs := math.Abs(f); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendJSONTime appends t as time.Time.MarshalJSON would (quoted
// RFC 3339 with nanoseconds).
//
// districtlint:hotpath
func appendJSONTime(b []byte, t time.Time) []byte {
	b = append(b, '"')
	b = t.AppendFormat(b, time.RFC3339Nano)
	return append(b, '"')
}

// appendPointNDJSON appends one streamed samples row (a Point with the
// series named on it) plus the newline json.Encoder terminates rows
// with. Device and quantity carry omitempty, so empty values vanish
// just as they would through reflection.
//
// districtlint:hotpath
func appendPointNDJSON(b []byte, p Point) []byte {
	b = append(b, '{')
	if p.Device != "" {
		b = append(b, `"device":`...)
		b = appendJSONString(b, p.Device)
		b = append(b, ',')
	}
	if p.Quantity != "" {
		b = append(b, `"quantity":`...)
		b = appendJSONString(b, p.Quantity)
		b = append(b, ',')
	}
	b = append(b, `"at":`...)
	b = appendJSONTime(b, p.At)
	b = append(b, `,"value":`...)
	b = appendJSONFloat(b, p.Value)
	return append(b, '}', '\n')
}

// appendBatchSampleRow appends one raw-sample row of an NDJSON batch
// stream: the BatchRow shape with only the sample fields set.
//
// districtlint:hotpath
func appendBatchSampleRow(b []byte, selector int, device, quantity string, at time.Time, v float64) []byte {
	b = append(b, `{"selector":`...)
	b = strconv.AppendInt(b, int64(selector), 10)
	if device != "" {
		b = append(b, `,"device":`...)
		b = appendJSONString(b, device)
	}
	if quantity != "" {
		b = append(b, `,"quantity":`...)
		b = appendJSONString(b, quantity)
	}
	b = append(b, `,"at":`...)
	b = appendJSONTime(b, at)
	b = append(b, `,"value":`...)
	b = appendJSONFloat(b, v)
	return append(b, '}', '\n')
}
