package measuredb

import (
	"sync"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/qcache"
)

// Result-cache glue: how the /v2 read plane keys the generation-keyed
// cache (internal/qcache) off the sharded engine's mutation counters.
//
// The consistency argument lives in the ordering, not in any explicit
// invalidation: a handler snapshots the relevant shard generations
// BEFORE evaluating the store read, and the snapshot is part of the
// cache key. Storage bumps a shard's generation before acknowledging
// any mutation (append wave, compaction publish, retention pass, reset,
// restore), so a key built after an acked write can never equal a key
// built before it — read-your-writes holds exactly, and stale entries
// are simply never addressed again until the LRU ages them out.

// qcScratch pools the per-request key builder and generation buffer so
// a cache probe costs one string materialization, nothing else.
type qcScratch struct {
	k    qcache.Key
	gens []uint64
}

var qcScratchPool = sync.Pool{New: func() any { return new(qcScratch) }}

func getQCScratch() *qcScratch {
	sc := qcScratchPool.Get().(*qcScratch)
	sc.k.Reset()
	return sc
}

func putQCScratch(sc *qcScratch) { qcScratchPool.Put(sc) }

// cachedDevice serves a single-device route through the result cache.
// build appends the request's normalized identity to the key; the owner
// shard's generation is appended after it, read before compute runs.
// On a miss, compute's result is encoded once (exactly the bytes
// api.WriteJSON would produce), cached, and returned as api.RawJSON so
// cached and uncached responses are byte-identical.
func (s *Service) cachedDevice(device string, build func(*qcache.Key), compute func() (any, error)) (any, error) {
	if s.qc == nil {
		return compute()
	}
	sc := getQCScratch()
	defer putQCScratch(sc)
	build(&sc.k)
	sc.k.Uint(s.qsh.ShardGeneration(s.qsh.ShardFor(device)))
	return s.qcServe(sc, compute)
}

// cachedAll is cachedDevice for routes that read across every shard
// (catalog listings, batch queries): the key carries the full
// generation vector, so a write to any shard invalidates it.
func (s *Service) cachedAll(build func(*qcache.Key), compute func() (any, error)) (any, error) {
	if s.qc == nil {
		return compute()
	}
	sc := getQCScratch()
	defer putQCScratch(sc)
	build(&sc.k)
	sc.gens = s.qsh.Generations(sc.gens[:0])
	sc.k.Gens(sc.gens)
	return s.qcServe(sc, compute)
}

func (s *Service) qcServe(sc *qcScratch, compute func() (any, error)) (any, error) {
	key := sc.k.String()
	if raw, ok := s.qc.Get(key); ok {
		return api.RawJSON(raw), nil
	}
	out, err := compute()
	if err != nil {
		// Errors are never cached: they already cost nothing to
		// recompute, and a NotFound must heal the moment a write lands.
		return nil, err
	}
	enc, encErr := api.EncodeJSON(out)
	if encErr != nil {
		// An unencodable value will fail identically in the response
		// writer; let that path own the error envelope.
		return out, nil
	}
	s.qc.Put(key, enc)
	return api.RawJSON(enc), nil
}

// registerQCacheMetrics exposes the cache counters on the service
// registry.
func registerQCacheMetrics(reg *obs.Registry, c *qcache.Cache) {
	reg.CounterFunc("repro_qcache_hits_total",
		"Query result-cache hits (responses served without touching the store).", nil,
		func() float64 { return float64(c.Stats().Hits) })
	reg.CounterFunc("repro_qcache_misses_total",
		"Query result-cache misses (responses evaluated from the store).", nil,
		func() float64 { return float64(c.Stats().Misses) })
	reg.CounterFunc("repro_qcache_evictions_total",
		"Query result-cache entries evicted under the byte budget.", nil,
		func() float64 { return float64(c.Stats().Evictions) })
	reg.GaugeFunc("repro_qcache_bytes",
		"Bytes resident in the query result cache (keys, values, and bookkeeping).", nil,
		func() float64 { return float64(c.Stats().Bytes) })
	reg.GaugeFunc("repro_qcache_entries",
		"Entries resident in the query result cache.", nil,
		func() float64 { return float64(c.Stats().Entries) })
}
