package measuredb

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"time"
)

// The row scanner's contract is bit-compatibility with encoding/json
// on everything except error text: same rows out, same inputs rejected.
// These tests hold it to that contract with the real decoder as the
// oracle — first over a table of known-nasty shapes, then under fuzz.

// oracleNDJSON mirrors the production NDJSON loop over json.Decoder:
// rows decoded up to the first error, and whether the stream ended in
// an error or a clean EOF (the first error poisons the rest, as both
// ingest paths treat it).
func oracleNDJSON(data []byte) ([]Point, bool) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var rows []Point
	for {
		var p Point
		if err := dec.Decode(&p); err != nil {
			return rows, !errors.Is(err, io.EOF)
		}
		rows = append(rows, p)
	}
}

// scanNDJSON is the same loop over the hand-rolled scanner.
func scanNDJSON(data []byte) ([]Point, bool) {
	sc := newPointScanner(bytes.NewReader(data))
	defer sc.release()
	var rows []Point
	var p Point
	for {
		if err := sc.next(&p); err != nil {
			return rows, !errors.Is(err, io.EOF)
		}
		rows = append(rows, p)
	}
}

// oracleBatch decodes a whole {"rows":[...]} body the way the ingest
// plane did before the scanner: one json.Decoder value (trailing bytes
// ignored), unmarshalled into the single-slice-field struct.
func oracleBatch(data []byte) ([]Point, bool) {
	var batch struct {
		Rows []Point `json:"rows"`
	}
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&batch); err != nil {
		return nil, false
	}
	return batch.Rows, true
}

func scanBatch(data []byte) ([]Point, bool) {
	sc := newPointScanner(bytes.NewReader(data))
	defer sc.release()
	pts, err := sc.decodeBatch("rows")
	if err != nil {
		return nil, false
	}
	// The scanner's rows alias pooled memory; the comparison below
	// outlives release, so copy.
	out := make([]Point, len(pts))
	copy(out, pts)
	return out, true
}

// samePoint compares decoded rows for oracle equality: strings exact,
// values by bit pattern (-0 and NaN distinctions included), times by
// instant and by re-rendered RFC 3339 text (which pins the decoded
// zone offset without comparing Location pointers).
func samePoint(a, b Point) bool {
	return a.Device == b.Device &&
		a.Quantity == b.Quantity &&
		math.Float64bits(a.Value) == math.Float64bits(b.Value) &&
		a.At.Equal(b.At) &&
		a.At.Format(time.RFC3339Nano) == b.At.Format(time.RFC3339Nano)
}

func diffRows(t *testing.T, input []byte, got, want []Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("input %q: scanner decoded %d rows, oracle %d\nscanner: %+v\noracle:  %+v", input, len(got), len(want), got, want)
	}
	for i := range got {
		if !samePoint(got[i], want[i]) {
			t.Fatalf("input %q: row %d differs\nscanner: %+v\noracle:  %+v", input, i, got[i], want[i])
		}
	}
}

func checkNDJSONOracle(t *testing.T, data []byte) {
	t.Helper()
	got, gotErr := scanNDJSON(data)
	want, wantErr := oracleNDJSON(data)
	if gotErr != wantErr {
		t.Fatalf("input %q: scanner errored=%v, oracle errored=%v (scanner rows %+v, oracle rows %+v)", data, gotErr, wantErr, got, want)
	}
	diffRows(t, data, got, want)
}

func checkBatchOracle(t *testing.T, data []byte) {
	t.Helper()
	got, gotOK := scanBatch(data)
	want, wantOK := oracleBatch(data)
	if gotOK != wantOK {
		t.Fatalf("input %q: scanner ok=%v, oracle ok=%v", data, gotOK, wantOK)
	}
	if gotOK {
		diffRows(t, data, got, want)
	}
}

// rowScannerCorpus is the seed corpus shared by the table tests and the
// fuzzers: every scanner fast path, every slow-path fallback, and the
// encoding/json quirks the scanner mirrors on purpose.
var rowScannerCorpus = []string{
	// The dominant well-formed shapes.
	`{"device":"urn:d/1","quantity":"temperature","at":"2015-03-09T10:00:00Z","value":21.5}`,
	"{\"device\":\"a\",\"at\":\"2015-03-09T10:00:00Z\",\"value\":1}\n{\"device\":\"b\",\"at\":\"2015-03-09T10:00:01Z\",\"value\":2}\n",
	`{}`,
	``,
	`   ` + "\n\t",
	// Field-name matching: exact, folded, unknown, duplicate (last
	// wins), and null (never touches the field).
	`{"DEVICE":"a","Quantity":"q","AT":"2015-03-09T10:00:00Z","VaLuE":3}`,
	`{"device":"a","device":"b"}`,
	`{"device":"a","device":null}`,
	`{"device":null,"at":null,"value":null,"quantity":null}`,
	`{"unknown":{"nested":[1,2,{"x":"y"}],"b":true},"value":7}`,
	`{"extra":"😀","value":1}`,
	// Strings: escapes, surrogates (paired, lone, half-paired), invalid
	// UTF-8 (U+FFFD replacement), controls, and long tokens that force
	// window refills.
	`{"device":"A\n\t\"\\\/\b\f\r"}`,
	`{"device":"😀   "}`,
	`{"device":"\ud800"}`,
	`{"device":"\ud800A"}`,
	`{"device":"\udc00\ud800"}`,
	"{\"device\":\"\xff\xfe ok \xc3\x28\"}",
	"{\"device\":\"\x01\"}",
	`{"device":"` + strings.Repeat("x", 9000) + `"}`,
	`{"device":"unterminated`,
	`{"device":"bad \x escape"}`,
	`{"device":"bad \u00zz escape"}`,
	// Numbers: the exact-fast-path boundary (15 digits), exponents,
	// leading-zero rules, -0, overflow, and malformed grammar strconv
	// would have accepted.
	`{"value":0}`,
	`{"value":-0}`,
	`{"value":0.1}`,
	`{"value":123456789012345}`,
	`{"value":1234567890123456}`,
	`{"value":0.000000000000001}`,
	`{"value":1.7976931348623157e308}`,
	`{"value":1e400}`,
	`{"value":-1e-400}`,
	`{"value":2.5e-1}`,
	`{"value":5E+3}`,
	`{"value":01}`,
	`{"value":.5}`,
	`{"value":1.}`,
	`{"value":1e}`,
	`{"value":+1}`,
	`{"value":0x10}`,
	`{"value":Inf}`,
	`{"value":NaN}`,
	// Timestamps: the hand-parsed Z fast path, fractions, offsets and
	// malformed shapes that fall back to time.UnmarshalJSON, leap days,
	// and escapes inside the raw token (handed over still escaped).
	`{"at":"2015-03-09T10:00:00Z"}`,
	`{"at":"2015-03-09T10:00:00.123456789Z"}`,
	`{"at":"2015-03-09T10:00:00.1234567891Z"}`,
	`{"at":"2015-03-09T10:00:00+01:30"}`,
	`{"at":"2016-02-29T00:00:00Z"}`,
	`{"at":"2015-02-29T00:00:00Z"}`,
	`{"at":"2100-02-29T00:00:00Z"}`,
	`{"at":"2000-02-29T23:59:59.999999999Z"}`,
	`{"at":"2015-03-09T24:00:00Z"}`,
	`{"at":"2015-03-09 10:00:00Z"}`,
	`{"at":"2015-03-09T10:00:00Z"}`,
	`{"at":"not a time"}`,
	`{"at":5}`,
	`{"at":""}`,
	// Wrong value types and broken structure.
	`{"device":5}`,
	`{"value":"5"}`,
	`{"device":"a"`,
	`{"device":"a",}`,
	`{"device" "a"}`,
	`{device:"a"}`,
	`[{"value":1}]`,
	`"just a string"`,
	`42`,
	`true`,
	`null`,
	"null\n{\"value\":1}\nnull",
	`nul`,
	// Batch bodies: the rows field in every position, folded, duplicate
	// (element-reuse semantics), null rows, null elements, unknown
	// siblings, and trailing garbage after the top-level value.
	`{"rows":[{"device":"a","at":"2015-03-09T10:00:00Z","value":1}]}`,
	`{"rows":[]}`,
	`{"rows":null}`,
	`{"ROWS":[{"value":1}],"other":3}`,
	`{"before":{"rows":[9]},"rows":[{"value":1},null,{"value":2}]}`,
	`{"rows":[{"device":"a","value":1}],"rows":[{"value":2}]}`,
	`{"rows":[{"device":"a","value":1},{"device":"b"}],"rows":[null,{"quantity":"q"}]}`,
	`{"rows":[{"device":"a"}],"rows":null}`,
	`{"rows":[{"value":1}]} trailing garbage`,
	`{"rows":[{"value":1}]}{"rows":[{"value":2}]}`,
	`{"rows":[1]}`,
	`{"rows":{"not":"array"}}`,
	`{"rows":[{"value":1}`,
}

func TestRowScannerNDJSONOracle(t *testing.T) {
	for _, input := range rowScannerCorpus {
		checkNDJSONOracle(t, []byte(input))
	}
}

func TestRowScannerBatchOracle(t *testing.T) {
	for _, input := range rowScannerCorpus {
		checkBatchOracle(t, []byte(input))
	}
}

// TestRowScannerSmallReads re-runs the corpus through a one-byte-at-a-
// time reader, so every token shape crosses a refill boundary at every
// possible offset.
func TestRowScannerSmallReads(t *testing.T) {
	for _, input := range rowScannerCorpus {
		sc := newPointScanner(iotest(strings.NewReader(input)))
		var got []Point
		var p Point
		gotErr := false
		for {
			err := sc.next(&p)
			if err != nil {
				gotErr = !errors.Is(err, io.EOF)
				break
			}
			got = append(got, p)
		}
		sc.release()
		want, wantErr := oracleNDJSON([]byte(input))
		if gotErr != wantErr {
			t.Fatalf("input %q (1-byte reads): scanner errored=%v, oracle errored=%v", input, gotErr, wantErr)
		}
		diffRows(t, []byte(input), got, want)
	}
}

// iotest wraps r to deliver one byte per Read.
func iotest(r io.Reader) io.Reader { return &oneByteReader{r: r} }

type oneByteReader struct{ r io.Reader }

func (o *oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func FuzzRowScannerNDJSON(f *testing.F) {
	for _, input := range rowScannerCorpus {
		f.Add([]byte(input))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkNDJSONOracle(t, data)
	})
}

func FuzzRowScannerBatch(f *testing.F) {
	for _, input := range rowScannerCorpus {
		f.Add([]byte(input))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkBatchOracle(t, data)
	})
}
