package measuredb

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/tsdb"
)

const ingestDevice = "urn:district:turin/building:b07/device:w-1"

// ingestURL posts body to /v2/ingest with the given content type and
// optional idempotency key, returning status and body.
func postIngest(t *testing.T, base, contentType, idem, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v2/ingest", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if idem != "" {
		req.Header.Set("Idempotency-Key", idem)
	}
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	raw, _ := io.ReadAll(rsp.Body)
	return rsp.StatusCode, string(raw)
}

func TestV2IngestJSONBatch(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"rows":[
		{"device":"` + ingestDevice + `","quantity":"temperature","at":"2015-03-09T10:00:00Z","value":20.5},
		{"device":"` + ingestDevice + `","quantity":"temperature","at":"2015-03-09T10:01:00Z","value":21},
		{"device":"` + ingestDevice + `","quantity":"humidity","at":"2015-03-09T10:00:00Z","value":45}
	]}`
	code, rspBody := postIngest(t, ts.URL, "application/json", "", body)
	if code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", code, rspBody)
	}
	var res IngestResult
	if err := json.Unmarshal([]byte(rspBody), &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 || res.Rejected != 0 {
		t.Fatalf("result = %+v", res)
	}
	if got := s.Store().Len(tsdb.SeriesKey{Device: ingestDevice, Quantity: "temperature"}); got != 2 {
		t.Fatalf("stored temperature samples = %d", got)
	}
	if got := s.Stats().Ingested; got != 3 {
		t.Fatalf("ingested counter = %d", got)
	}

	// The ingested rows are immediately readable through the /v2 query
	// data plane.
	var page SamplesPage
	if code := getJSON(t, samplesURL(ts.URL, ingestDevice, "temperature", ""), &page); code != http.StatusOK {
		t.Fatalf("samples read = %d", code)
	}
	if page.Count != 2 || page.Samples[0].Value != 20.5 {
		t.Fatalf("read back page = %+v", page)
	}
}

// TestV2IngestNDJSONErrorRowsGolden pins the exact summary envelope for
// an NDJSON stream holding both valid and invalid rows: rejected rows
// are located by index, accepted rows stand.
func TestV2IngestNDJSONErrorRowsGolden(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"device":"` + ingestDevice + `","quantity":"temperature","at":"2015-03-09T10:00:00Z","value":20}
{"quantity":"temperature","at":"2015-03-09T10:01:00Z","value":21}
{"device":"` + ingestDevice + `","at":"2015-03-09T10:02:00Z","value":22}
{"device":"` + ingestDevice + `","quantity":"temperature","at":"2015-03-09T10:03:00Z","value":23}
`
	code, rspBody := postIngest(t, ts.URL, NDJSONType, "", body)
	if code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", code, rspBody)
	}
	want := `{"accepted":2,"rejected":2,"errors":[{"row":1,"error":"missing device"},{"row":2,"error":"missing quantity"}]}
`
	if rspBody != want {
		t.Fatalf("ingest golden mismatch:\ngot:  %q\nwant: %q", rspBody, want)
	}
	if got := s.Store().Len(tsdb.SeriesKey{Device: ingestDevice, Quantity: "temperature"}); got != 2 {
		t.Fatalf("stored samples = %d, want 2", got)
	}
	if st := s.Stats(); st.Ingested != 2 || st.Rejected != 2 {
		t.Fatalf("counters = %+v", st)
	}
}

// TestV2IngestNDJSONMalformedRowStops checks a syntactically broken line
// is reported at its index and ends the request without failing it.
func TestV2IngestNDJSONMalformedRowStops(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"device":"` + ingestDevice + `","quantity":"temperature","at":"2015-03-09T10:00:00Z","value":20}
this is not json
{"device":"` + ingestDevice + `","quantity":"temperature","at":"2015-03-09T10:01:00Z","value":21}
`
	code, rspBody := postIngest(t, ts.URL, NDJSONType, "", body)
	if code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", code, rspBody)
	}
	var res IngestResult
	if err := json.Unmarshal([]byte(rspBody), &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || res.Rejected != 1 || len(res.Errors) != 1 || res.Errors[0].Row != 1 {
		t.Fatalf("result = %+v", res)
	}
	if !strings.HasPrefix(res.Errors[0].Error, "malformed row") {
		t.Fatalf("error = %q", res.Errors[0].Error)
	}
	if got := s.Store().Len(tsdb.SeriesKey{Device: ingestDevice, Quantity: "temperature"}); got != 1 {
		t.Fatalf("stored samples = %d, want 1", got)
	}
}

func TestV2PutSeriesSamples(t *testing.T) {
	s, ts := newTestServer(t)
	target := ts.URL + "/v2/series/" + url.PathEscape(ingestDevice) + "/temperature/samples"
	body := `{"samples":[{"at":"2015-03-09T10:00:00Z","value":19},{"at":"2015-03-09T10:05:00Z","value":19.5}]}`
	req, _ := http.NewRequest(http.MethodPut, target, strings.NewReader(body))
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(rsp.Body)
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		t.Fatalf("put = %d: %s", rsp.StatusCode, raw)
	}
	var res IngestResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 2 || res.Rejected != 0 {
		t.Fatalf("result = %+v", res)
	}
	smp, err := s.Store().Latest(tsdb.SeriesKey{Device: ingestDevice, Quantity: "temperature"})
	if err != nil || smp.Value != 19.5 {
		t.Fatalf("latest = %+v, err %v", smp, err)
	}
}

// TestV2IngestIdempotencyWindow retries one keyed batch and checks the
// rows are applied once, with the stored outcome replayed.
func TestV2IngestIdempotencyWindow(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"rows":[{"device":"` + ingestDevice + `","quantity":"temperature","at":"2015-03-09T10:00:00Z","value":20}]}`

	code, first := postIngest(t, ts.URL, "application/json", "retry-123", body)
	if code != http.StatusOK {
		t.Fatalf("first = %d: %s", code, first)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v2/ingest", strings.NewReader(body))
	req.Header.Set("Idempotency-Key", "retry-123")
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(rsp.Body)
	rsp.Body.Close()
	if rsp.Header.Get("Idempotent-Replay") != "true" {
		t.Fatalf("replay header missing; body %s", raw)
	}
	var res IngestResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Replayed || res.Accepted != 1 {
		t.Fatalf("replayed result = %+v", res)
	}
	if got := s.Store().Len(tsdb.SeriesKey{Device: ingestDevice, Quantity: "temperature"}); got != 1 {
		t.Fatalf("stored samples = %d, want 1 (replay re-applied rows)", got)
	}
	// A different key applies normally.
	if code, _ := postIngest(t, ts.URL, "application/json", "retry-124", body); code != http.StatusOK {
		t.Fatalf("second key = %d", code)
	}
	if got := s.Store().Len(tsdb.SeriesKey{Device: ingestDevice, Quantity: "temperature"}); got != 2 {
		t.Fatalf("stored samples = %d, want 2", got)
	}
}

// TestV2IngestFeedsLiveStream checks /v2-ingested rows still reach live
// stream subscribers (fed directly to the hub, not re-ingested via the
// bus).
func TestV2IngestFeedsLiveStream(t *testing.T) {
	s, ts := newTestServer(t)
	sub, _, err := s.Stream().Hub().Subscribe("measurements/#", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	body := `{"rows":[{"device":"` + ingestDevice + `","quantity":"temperature","at":"2015-03-09T10:00:00Z","value":20}]}`
	if code, rsp := postIngest(t, ts.URL, "application/json", "", body); code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", code, rsp)
	}
	select {
	case ev := <-sub.C:
		if !strings.Contains(ev.Event.Topic, "temperature") {
			t.Fatalf("event topic = %q", ev.Event.Topic)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no live event for ingested row")
	}
	if got := s.Stats().Ingested; got != 1 {
		t.Fatalf("ingested = %d (bus loop would double-count)", got)
	}
}

// TestV2QueryNDJSONStreamGolden pins the streamed batch response: sample
// rows through the iterator, per-selector error rows, a summary trailer.
func TestV2QueryNDJSONStreamGolden(t *testing.T) {
	s, ts := newTestServer(t)
	fillSeries(t, s, v2Device, "temperature", 3)

	body := `{"selectors":[{"device":"` + v2Device + `","quantity":"temperature"},{"device":"urn:nothing"}]}`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v2/query", strings.NewReader(body))
	req.Header.Set("Accept", NDJSONType)
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if ct := rsp.Header.Get("Content-Type"); !strings.HasPrefix(ct, NDJSONType) {
		t.Fatalf("content type = %q", ct)
	}
	raw, _ := io.ReadAll(rsp.Body)
	want := `{"selector":0,"device":"` + v2Device + `","quantity":"temperature","at":"2015-03-09T10:00:00Z","value":0}
{"selector":0,"device":"` + v2Device + `","quantity":"temperature","at":"2015-03-09T10:01:00Z","value":1}
{"selector":0,"device":"` + v2Device + `","quantity":"temperature","at":"2015-03-09T10:02:00Z","value":2}
{"selector":1,"error":"no matching series"}
{"summary":true,"series":1,"samples":3}
`
	if string(raw) != want {
		t.Fatalf("ndjson query golden mismatch:\ngot:  %q\nwant: %q", raw, want)
	}
}

// TestV2QueryNDJSONAggregateAndTruncation covers the pushed-down and
// limited shapes of the streamed batch response.
func TestV2QueryNDJSONAggregateAndTruncation(t *testing.T) {
	s, ts := newTestServer(t)
	fillSeries(t, s, v2Device, "temperature", 10)

	post := func(body string) []string {
		t.Helper()
		rsp, err := http.Post(ts.URL+"/v2/query?encoding=ndjson", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer rsp.Body.Close()
		raw, _ := io.ReadAll(rsp.Body)
		return strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	}

	lines := post(`{"selectors":[{"device":"` + v2Device + `","quantity":"temperature"}],"aggregate":true}`)
	if len(lines) != 2 {
		t.Fatalf("aggregate stream = %d lines: %v", len(lines), lines)
	}
	var row BatchRow
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatal(err)
	}
	if row.Aggregate == nil || row.Aggregate.Count != 10 {
		t.Fatalf("aggregate row = %+v", row)
	}

	lines = post(`{"selectors":[{"device":"` + v2Device + `","quantity":"temperature"}],"limit":4}`)
	// 4 sample rows + truncation marker + trailer.
	if len(lines) != 6 {
		t.Fatalf("limited stream = %d lines: %v", len(lines), lines)
	}
	var marker BatchRow
	if err := json.Unmarshal([]byte(lines[4]), &marker); err != nil {
		t.Fatal(err)
	}
	if !marker.Truncated {
		t.Fatalf("line 4 = %q, want truncation marker", lines[4])
	}
	var trailer BatchTrailer
	if err := json.Unmarshal([]byte(lines[5]), &trailer); err != nil {
		t.Fatal(err)
	}
	if !trailer.Summary || trailer.Samples != 4 || trailer.Series != 1 {
		t.Fatalf("trailer = %+v", trailer)
	}
}

// TestV2WriteRateLimitTier checks the write tier trips independently of
// reads and surfaces in the metrics.
func TestV2WriteRateLimitTier(t *testing.T) {
	writeRL := api.NewRateLimiter(1000, 1)
	s := New(Options{WriteLimiter: writeRL})
	defer s.Close()
	fillSeries(t, s, v2Device, "temperature", 2)
	h := s.Handler()

	do := func(method, target, body string) int {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, _ := http.NewRequest(method, target, rd)
		req.RemoteAddr = "10.9.9.9:1"
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	ingestBody := `{"rows":[{"device":"` + ingestDevice + `","quantity":"temperature","at":"2015-03-09T10:00:00Z","value":1}]}`
	if code := do(http.MethodPost, "/v2/ingest", ingestBody); code != http.StatusOK {
		t.Fatalf("first ingest = %d", code)
	}
	if code := do(http.MethodPost, "/v2/ingest", ingestBody); code != http.StatusTooManyRequests {
		t.Fatalf("second ingest = %d, want 429", code)
	}
	target := "/v2/series/" + url.PathEscape(v2Device) + "/temperature/samples"
	if code := do(http.MethodGet, target, ""); code != http.StatusOK {
		t.Fatalf("read after write trip = %d (tiers not independent)", code)
	}
	req, _ := http.NewRequest(http.MethodGet, "/v1/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var snap api.MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range snap.Limiters {
		if l.Tier == "write" {
			found = true
			if l.Allowed != 1 || l.Rejected != 1 {
				t.Fatalf("write tier stats = %+v", l)
			}
		}
	}
	if !found {
		t.Fatal("write tier missing from /v1/metrics")
	}
}

// TestDedupWindowInFlightRetry pins the timed-out-retry race the window
// exists for: a retry arriving while the first delivery is still being
// applied must wait and replay its outcome, never re-execute.
func TestDedupWindowInFlightRetry(t *testing.T) {
	d := newDedupWindow(0, 0)
	ctx := context.Background()

	tok, res, err := d.begin(ctx, "k")
	if err != nil || res != nil || tok == nil {
		t.Fatalf("first begin = tok %v res %v err %v", tok, res, err)
	}

	got := make(chan *IngestResult, 1)
	go func() {
		_, res, err := d.begin(ctx, "k") // lands while the first is in flight
		if err != nil {
			t.Errorf("retry begin: %v", err)
		}
		got <- res
	}()
	select {
	case <-got:
		t.Fatal("retry returned before the in-flight delivery finished")
	case <-time.After(20 * time.Millisecond):
	}
	tok.store(IngestResult{Accepted: 7})
	select {
	case res := <-got:
		if res == nil || !res.Replayed || res.Accepted != 7 {
			t.Fatalf("retry replayed %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("retry never unblocked")
	}

	// An abandoned claim hands the key to the waiter for re-execution.
	tok2, res, _ := d.begin(ctx, "k2")
	if tok2 == nil || res != nil {
		t.Fatalf("claim k2 = tok %v res %v", tok2, res)
	}
	reclaim := make(chan *dedupToken, 1)
	go func() {
		tok3, res, err := d.begin(ctx, "k2")
		if err != nil || res != nil {
			t.Errorf("waiter after abandon: res %v err %v", res, err)
		}
		reclaim <- tok3
	}()
	time.Sleep(10 * time.Millisecond)
	tok2.abandon()
	select {
	case tok3 := <-reclaim:
		if tok3 == nil {
			t.Fatal("waiter did not reclaim the abandoned key")
		}
		tok3.store(IngestResult{Accepted: 1})
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never unblocked after abandon")
	}

	// A canceled waiter errors out instead of hanging.
	tok4, _, _ := d.begin(ctx, "k3")
	cctx, cancel := context.WithCancel(ctx)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := d.begin(cctx, "k3")
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("canceled waiter returned nil error")
	}
	tok4.abandon()
}
