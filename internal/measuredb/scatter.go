package measuredb

import (
	"runtime"
	"sync"

	"repro/internal/tsdb"
)

// Scatter-gather planning over the sharded store. A glob selector can
// match series in every shard; resolution fans one matcher per shard and
// merges the sorted per-shard key lists, so catalog listings and batch
// queries see one deterministic order whatever the partitioning is.
// Exact selectors skip the fan-out: the device hash names the one shard
// that can hold the series.

// matchKeys filters one key list by a selector, sorted.
func matchKeys(keys []tsdb.SeriesKey, sel SeriesSelector) []tsdb.SeriesKey {
	var out []tsdb.SeriesKey
	for _, k := range keys {
		if sel.Device != "" && !globMatch(sel.Device, k.Device) {
			continue
		}
		if sel.Quantity != "" && !globMatch(sel.Quantity, k.Quantity) {
			continue
		}
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

// mergeSortedKeys k-way merges per-shard sorted key lists into one
// sorted list. Shard counts are small, so a linear min-scan per output
// key beats heap bookkeeping.
func mergeSortedKeys(lists [][]tsdb.SeriesKey) []tsdb.SeriesKey {
	total, nonEmpty, last := 0, 0, -1
	for i, l := range lists {
		total += len(l)
		if len(l) > 0 {
			nonEmpty++
			last = i
		}
	}
	if total == 0 {
		return nil
	}
	if nonEmpty == 1 {
		return lists[last]
	}
	out := make([]tsdb.SeriesKey, 0, total)
	pos := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if best < 0 || keyLess(l[pos[i]], lists[best][pos[best]]) {
				best = i
			}
		}
		out = append(out, lists[best][pos[best]])
		pos[best]++
	}
	return out
}

// keyLess orders series keys by device, then quantity.
func keyLess(a, b tsdb.SeriesKey) bool {
	if a.Device != b.Device {
		return a.Device < b.Device
	}
	return a.Quantity < b.Quantity
}

// resolveSelector expands one selector to the stored series it matches,
// sorted for deterministic output. On a sharded engine, glob selectors
// scatter one matcher per shard and gather a merged sorted list; exact
// device selectors only consult the owning shard.
func (s *Service) resolveSelector(sel SeriesSelector) []tsdb.SeriesKey {
	keys := s.resolveSelectorKeys(sel)
	if s.fanout != nil {
		s.fanout.Observe(float64(len(keys)))
	}
	return keys
}

func (s *Service) resolveSelectorKeys(sel SeriesSelector) []tsdb.SeriesKey {
	exactDevice := sel.Device != "" && !hasGlob(sel.Device)
	if exactDevice && sel.Quantity != "" && !hasGlob(sel.Quantity) {
		key := tsdb.SeriesKey{Device: sel.Device, Quantity: sel.Quantity}
		if s.store.Len(key) > 0 {
			return []tsdb.SeriesKey{key}
		}
		return nil
	}
	sh, sharded := s.store.(*tsdb.Sharded)
	switch {
	case sharded && exactDevice:
		// One device → one shard; its key list is already device-local.
		return matchKeys(s.store.KeysForDevice(sel.Device), sel)
	case sharded && sh.NumShards() > 1:
		per := make([][]tsdb.SeriesKey, sh.NumShards())
		var wg sync.WaitGroup
		for i := range per {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				per[i] = matchKeys(sh.ShardKeys(i), sel)
			}(i)
		}
		wg.Wait()
		return mergeSortedKeys(per)
	default:
		return matchKeys(s.store.Keys(), sel)
	}
}

// gatherBatch evaluates one function per selector concurrently, bounded
// by the host's parallelism, writing each result into its
// request-ordered slot. It is the gather half of POST /v2/query: the
// per-selector work (resolution, per-shard reads) runs in parallel, the
// response order stays the request order.
func gatherBatch(n int, eval func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			eval(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				eval(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
