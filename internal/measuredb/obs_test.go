package measuredb

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestPrometheusStorageInternals scrapes a durable service's text
// exposition after one ingest and validates the storage-internals
// families through the obs parser: route latency and per-shard WAL
// histograms must be well-formed cumulative series, and the ingest /
// snapshot gauges must be present.
func TestPrometheusStorageInternals(t *testing.T) {
	s, ts := openDurableServer(t, t.TempDir())
	defer func() { ts.Close(); s.Close() }()

	body := `{"rows":[
		{"device":"` + ingestDevice + `","quantity":"temperature","at":"2015-03-09T10:00:00Z","value":20.5},
		{"device":"` + ingestDevice + `","quantity":"temperature","at":"2015-03-09T10:01:00Z","value":21}
	]}`
	code, rsp := postIngest(t, ts.URL, "application/json", "obs-key-1", body)
	if code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", code, rsp)
	}

	scrape, err := http.Get(ts.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer scrape.Body.Close()
	raw, err := io.ReadAll(scrape.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseProm(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, raw)
	}

	for _, name := range []string{
		"repro_http_request_duration_seconds",
		"repro_tsdb_wal_append_seconds",
		"repro_tsdb_wal_fsync_seconds",
		"repro_tsdb_snapshot_duration_seconds",
		"repro_ingest_dedup_claim_seconds",
	} {
		f, ok := fams[name]
		if !ok {
			t.Errorf("family %s missing from exposition", name)
			continue
		}
		if err := f.ValidateHistogram(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}

	// FsyncAlways journals the batch before acking, so the shard that
	// owns the device has observed at least one append and one fsync.
	walCount := 0.0
	for _, c := range fams["repro_tsdb_wal_append_seconds"].Counts {
		walCount += c.Value
	}
	if walCount == 0 {
		t.Error("repro_tsdb_wal_append_seconds observed nothing after a durable ingest")
	}

	gauges := []string{
		"repro_tsdb_snapshot_age_seconds",
		"repro_tsdb_wal_pending_rows",
		"repro_tsdb_queue_depth",
		"repro_ingest_dedup_window_entries",
		"repro_stream_subscribers",
	}
	for _, name := range gauges {
		f, ok := fams[name]
		if !ok {
			t.Errorf("gauge family %s missing from exposition", name)
			continue
		}
		if f.Type != "gauge" {
			t.Errorf("%s TYPE = %q, want gauge", name, f.Type)
		}
	}

	var ingested float64
	for _, smp := range fams["repro_ingest_rows_total"].Samples {
		ingested += smp.Value
	}
	if ingested != 2 {
		t.Errorf("repro_ingest_rows_total = %g, want 2", ingested)
	}
	// The keyed ingest went through the dedup window; the claim
	// histogram and window gauge must reflect it.
	var claims float64
	for _, c := range fams["repro_ingest_dedup_claim_seconds"].Counts {
		claims += c.Value
	}
	if claims != 1 {
		t.Errorf("repro_ingest_dedup_claim_seconds count = %g, want 1", claims)
	}
}
