package measuredb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/dataformat"
	"repro/internal/middleware"
	"repro/internal/proxyhttp"
	"repro/internal/tsdb"
)

var t0 = time.Date(2015, 3, 9, 10, 0, 0, 0, time.UTC)

func sampleMeasurement(i int) dataformat.Measurement {
	return dataformat.Measurement{
		Source:    "http://devproxy/",
		Device:    "urn:district:turin/building:b01/device:t-1",
		Quantity:  dataformat.Temperature,
		Unit:      dataformat.Celsius,
		Value:     20 + float64(i),
		Timestamp: t0.Add(time.Duration(i) * time.Minute),
	}
}

func TestIngestAndQueryDirect(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	for i := 0; i < 10; i++ {
		m := sampleMeasurement(i)
		if err := s.Ingest(&m); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Ingested != 10 || st.Store.Samples != 10 || st.Store.Series != 1 {
		t.Errorf("Stats = %+v", st)
	}
	bad := dataformat.Measurement{}
	if err := s.Ingest(&bad); err == nil {
		t.Error("invalid measurement ingested")
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("Rejected = %d", got)
	}
}

func TestTopicConstruction(t *testing.T) {
	got := Topic("urn:district:turin/building:b01/device:t-1", dataformat.Temperature)
	want := "measurements/turin/building:b01/device:t-1/temperature"
	if got != want {
		t.Errorf("Topic = %q, want %q", got, want)
	}
	if err := middleware.ValidateTopic(got); err != nil {
		t.Errorf("topic invalid for middleware: %v", err)
	}
	// Weird URIs never produce wildcard segments.
	got = Topic("urn:district:x/+/#//", dataformat.CO2)
	if err := middleware.ValidateTopic(got); err != nil {
		t.Errorf("sanitization failed: %q %v", got, err)
	}
}

func TestBusIngestPath(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	bus := middleware.NewBus(middleware.BusOptions{QueueLen: -1}) // synchronous
	defer bus.Close()
	if _, err := s.AttachBus(bus); err != nil {
		t.Fatal(err)
	}
	m := sampleMeasurement(0)
	payload, err := dataformat.NewMeasurementDoc(m).Encode(dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Publish(middleware.Event{
		Topic:   Topic(m.Device, m.Quantity),
		Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Ingested; got != 1 {
		t.Fatalf("Ingested = %d", got)
	}
	// Garbage payloads are rejected, not fatal.
	_ = bus.Publish(middleware.Event{Topic: "measurements/x", Payload: []byte("{")})
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("Rejected = %d", got)
	}
	// Batch documents ingest all entries.
	batch := dataformat.NewMeasurementsDoc([]dataformat.Measurement{sampleMeasurement(1), sampleMeasurement(2)})
	payload, _ = batch.Encode(dataformat.XML)
	_ = bus.Publish(middleware.Event{Topic: "measurements/batch", Payload: payload})
	if got := s.Stats().Ingested; got != 3 {
		t.Errorf("Ingested after batch = %d", got)
	}
}

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postAppend(t *testing.T, url string, doc *dataformat.Document, enc dataformat.Encoding) int {
	t.Helper()
	body, err := doc.Encode(enc)
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := http.Post(url+"/append", enc.ContentType(), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	var out map[string]int
	_ = json.NewDecoder(rsp.Body).Decode(&out)
	if rsp.StatusCode != http.StatusOK {
		t.Fatalf("/append = %d", rsp.StatusCode)
	}
	return out["stored"]
}

func TestAppendEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	doc := dataformat.NewMeasurementsDoc([]dataformat.Measurement{sampleMeasurement(0), sampleMeasurement(1)})
	if stored := postAppend(t, ts.URL, doc, dataformat.JSON); stored != 2 {
		t.Errorf("stored = %d", stored)
	}
	if s.Stats().Ingested != 2 {
		t.Errorf("Ingested = %d", s.Stats().Ingested)
	}
	// XML append too.
	doc = dataformat.NewMeasurementDoc(sampleMeasurement(2))
	if stored := postAppend(t, ts.URL, doc, dataformat.XML); stored != 1 {
		t.Errorf("xml stored = %d", stored)
	}
	if s.Stats().Ingested != 3 {
		t.Errorf("Ingested after XML = %d", s.Stats().Ingested)
	}
}

func TestAppendRejects(t *testing.T) {
	_, ts := newTestServer(t)
	rsp, err := http.Get(ts.URL + "/append")
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /append = %d", rsp.StatusCode)
	}
	rsp, err = http.Post(ts.URL+"/append", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty POST /append = %d", rsp.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	for i := 0; i < 30; i++ {
		m := sampleMeasurement(i)
		_ = s.Ingest(&m)
	}
	device := url.QueryEscape("urn:district:turin/building:b01/device:t-1")
	u := fmt.Sprintf("%s/query?device=%s&quantity=temperature&from=%s&to=%s",
		ts.URL, device,
		url.QueryEscape(t0.Add(5*time.Minute).Format(time.RFC3339)),
		url.QueryEscape(t0.Add(9*time.Minute).Format(time.RFC3339)))
	doc, err := proxyhttp.GetDoc(nil, u, dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Measurements) != 5 {
		t.Fatalf("measurements = %d, want 5", len(doc.Measurements))
	}
	if doc.Measurements[0].Value != 25 || doc.Measurements[0].Unit != dataformat.Celsius {
		t.Errorf("first = %+v", doc.Measurements[0])
	}
	// XML negotiation.
	doc, err = proxyhttp.GetDoc(nil, u, dataformat.XML)
	if err != nil || len(doc.Measurements) != 5 {
		t.Errorf("xml query: %v, %d", err, len(doc.Measurements))
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		query string
		want  int
	}{
		{"/query?device=x", http.StatusBadRequest},
		{"/query?device=x&quantity=temperature", http.StatusNotFound},
		{"/query?device=x&quantity=t&from=garbage", http.StatusBadRequest},
		{"/latest?device=x&quantity=temperature", http.StatusNotFound},
		{"/latest", http.StatusBadRequest},
		{"/aggregate?device=x&quantity=t", http.StatusNotFound},
	} {
		rsp, err := http.Get(ts.URL + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		rsp.Body.Close()
		if rsp.StatusCode != tc.want {
			t.Errorf("%s = %d, want %d", tc.query, rsp.StatusCode, tc.want)
		}
	}
}

func TestLatestEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	for i := 0; i < 5; i++ {
		m := sampleMeasurement(i)
		_ = s.Ingest(&m)
	}
	device := url.QueryEscape("urn:district:turin/building:b01/device:t-1")
	doc, err := proxyhttp.GetDoc(nil, ts.URL+"/latest?device="+device+"&quantity=temperature", dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Measurement == nil || doc.Measurement.Value != 24 {
		t.Errorf("latest = %+v", doc.Measurement)
	}
}

func TestSeriesEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	m := sampleMeasurement(0)
	_ = s.Ingest(&m)
	m2 := m
	m2.Quantity = dataformat.Humidity
	_ = s.Ingest(&m2)
	m3 := m
	m3.Device = "urn:district:turin/building:b02/device:x"
	_ = s.Ingest(&m3)

	rsp, err := http.Get(ts.URL + "/series")
	if err != nil {
		t.Fatal(err)
	}
	var all []SeriesInfo
	_ = json.NewDecoder(rsp.Body).Decode(&all)
	rsp.Body.Close()
	if len(all) != 3 {
		t.Fatalf("series = %+v", all)
	}
	device := url.QueryEscape(m.Device)
	rsp, err = http.Get(ts.URL + "/series?device=" + device)
	if err != nil {
		t.Fatal(err)
	}
	var one []SeriesInfo
	_ = json.NewDecoder(rsp.Body).Decode(&one)
	rsp.Body.Close()
	if len(one) != 2 || one[0].Quantity != "humidity" {
		t.Errorf("device series = %+v", one)
	}
}

func TestAggregateEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	for i := 0; i < 10; i++ {
		m := sampleMeasurement(i) // values 20..29
		_ = s.Ingest(&m)
	}
	device := url.QueryEscape("urn:district:turin/building:b01/device:t-1")
	rsp, err := http.Get(ts.URL + "/aggregate?device=" + device + "&quantity=temperature")
	if err != nil {
		t.Fatal(err)
	}
	var agg AggregateResponse
	_ = json.NewDecoder(rsp.Body).Decode(&agg)
	rsp.Body.Close()
	if agg.Count != 10 || agg.Min != 20 || agg.Max != 29 || agg.Mean != 24.5 {
		t.Errorf("aggregate = %+v", agg)
	}

	// Downsampled buckets.
	rsp, err = http.Get(ts.URL + "/aggregate?device=" + device + "&quantity=temperature&window=5m")
	if err != nil {
		t.Fatal(err)
	}
	var buckets []tsdb.Bucket
	_ = json.NewDecoder(rsp.Body).Decode(&buckets)
	rsp.Body.Close()
	if len(buckets) != 2 || buckets[0].Count != 5 {
		t.Errorf("buckets = %+v", buckets)
	}
	rsp, _ = http.Get(ts.URL + "/aggregate?device=" + device + "&quantity=temperature&window=banana")
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad window = %d", rsp.StatusCode)
	}
}

func TestServeAndClose(t *testing.T) {
	s := New(Options{})
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	s.Close()
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server alive after Close")
	}
}
