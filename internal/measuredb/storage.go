package measuredb

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/api"
	"repro/internal/tsdb"
)

// The durable-storage ops surface, the service half of
// `districtctl data`:
//
//	GET  /v1/storage                 per-shard storage status
//	POST /v1/storage/compact[?shard=N]  force a compaction cycle
//
// Both require the sharded engine; compaction additionally requires a
// durable one (DataDir set).

// StorageShard is one shard's slice of the storage status report.
type StorageShard struct {
	tsdb.ShardStatus
	DiskBytes int64 `json:"disk_bytes,omitempty"`
}

// StorageStatus is the GET /v1/storage body.
type StorageStatus struct {
	Durable bool           `json:"durable"`
	Shards  []StorageShard `json:"shards"`
}

// mountStorage registers the storage ops routes when the backing engine
// is the sharded one (default and cluster deployments; a caller-supplied
// Engine or Store has no shard surface to report).
func (s *Service) mountStorage(srv *api.Server) {
	if _, ok := s.store.(*tsdb.Sharded); !ok {
		return
	}
	srv.HandleFunc(http.MethodGet, "/storage", s.storageStatus)
	srv.HandleFunc(http.MethodPost, "/storage/compact", s.storageCompact)
}

// storageStatus reports every shard's live storage counters: head
// series/samples, WAL watermarks, block files and their bytes.
func (s *Service) storageStatus(w http.ResponseWriter, r *http.Request) {
	sh := s.store.(*tsdb.Sharded)
	out := StorageStatus{Shards: make([]StorageShard, 0, sh.NumShards())}
	for i := 0; i < sh.NumShards(); i++ {
		st := StorageShard{ShardStatus: sh.ShardStatus(i)}
		if st.Dir != "" {
			out.Durable = true
			st.DiskBytes = dirBytes(st.Dir)
		}
		out.Shards = append(out.Shards, st)
	}
	api.WriteJSON(w, http.StatusOK, out)
}

// storageCompact forces a compaction cycle — cut head rows past the
// head window into a block, apply retention, snapshot, truncate the WAL
// — on one shard (?shard=N) or all of them.
func (s *Service) storageCompact(w http.ResponseWriter, r *http.Request) {
	sh := s.store.(*tsdb.Sharded)
	var err error
	shards := sh.NumShards()
	if arg := r.URL.Query().Get("shard"); arg != "" {
		i, perr := strconv.Atoi(arg)
		if perr != nil || i < 0 || i >= sh.NumShards() {
			api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad shard %q (engine has %d)", arg, sh.NumShards())))
			return
		}
		shards = 1
		err = sh.CompactShard(i)
	} else {
		err = sh.CompactAll()
	}
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, tsdb.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		api.WriteError(w, r, api.WithStatus(status, fmt.Errorf("compact: %w", err)))
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{"compacted": true, "shards": shards})
}
