package measuredb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/dataformat"
	"repro/internal/middleware"
	"repro/internal/obs"
	"repro/internal/tsdb"
	"repro/internal/wal"
)

// The /v2 ingest data plane: the write half of the resource-oriented
// API, replacing the one-sample-at-a-time bus hop for bulk writers.
//
//	POST /v2/ingest                                  batched JSON or NDJSON rows
//	PUT  /v2/series/{device}/{quantity}/samples      single-series append
//
// Both routes report per-row outcomes: a row that fails validation (or
// lands on a closed store) is counted and located in the summary
// envelope instead of failing the request. NDJSON bodies are decoded
// row at a time and applied in bounded chunks, so a request is O(chunk)
// in server memory however many rows it carries. An optional
// Idempotency-Key header deduplicates retries inside a sliding window.

// maxIngestBody bounds ingest (and batch query) request bodies.
const maxIngestBody = 64 << 20

// ingestChunk is how many staged rows are applied per engine batch.
const ingestChunk = 512

// maxIngestErrors caps the per-row error list in a summary envelope;
// further failures only count (ErrorsTruncated marks the cut).
const maxIngestErrors = 64

// IngestBatch is the JSON body of POST /v2/ingest.
type IngestBatch struct {
	Rows []Point `json:"rows"`
}

// SeriesAppend is the JSON body of PUT /v2/series/{device}/{quantity}/samples.
// Sample rows carry at/value only; the series is named by the path.
type SeriesAppend struct {
	Samples []Point `json:"samples"`
}

// RowError locates one rejected row by its 0-based position in the
// request body.
type RowError struct {
	Row   int    `json:"row"`
	Error string `json:"error"`
}

// IngestResult is the summary envelope of the ingest plane.
type IngestResult struct {
	Accepted int        `json:"accepted"`
	Rejected int        `json:"rejected"`
	Errors   []RowError `json:"errors,omitempty"`
	// ErrorsTruncated reports that more rows failed than Errors lists.
	ErrorsTruncated bool `json:"errors_truncated,omitempty"`
	// Replayed marks an idempotent replay: the rows were NOT re-applied,
	// this is the stored outcome of the first delivery.
	Replayed bool `json:"replayed,omitempty"`
}

// ---------------------------------------------------------------------
// Idempotency window
// ---------------------------------------------------------------------

// defaultIdempotencyWindow is how long ingest results are replayable.
const defaultIdempotencyWindow = 10 * time.Minute

// defaultClaimTTL is how long an unfinished claim may block retries
// before a retry takes it over (see begin).
const defaultClaimTTL = time.Minute

// maxDedupEntries bounds the window's memory under hostile keys.
const maxDedupEntries = 4096

// dedupCompactEvery rewrites the persisted window (snapshot + log
// truncation) after this many appended outcome records.
const dedupCompactEvery = 4 * maxDedupEntries

// dedupWindow remembers recent ingest outcomes by Idempotency-Key, so a
// client retrying a timed-out request (the shared transport replays
// bodies on retry) does not double-append its rows. A key is claimed
// BEFORE its rows are applied: a retry arriving while the first
// delivery is still in flight waits for it and replays its outcome —
// the in-flight window is exactly when timed-out retries land. A claim
// older than claimTTL whose owner never settled (a client that died
// mid-request holding the connection open) is handed over to the next
// retry instead of parking it forever.
//
// With a log attached (openLog), finished outcomes are also persisted,
// so a batch acked before a crash replays after the restart instead of
// double-appending. Claims are not persisted: a crash mid-delivery
// leaves no outcome, and the retry re-executes against whatever prefix
// of the batch the tsdb WAL preserved.
type dedupWindow struct {
	// mu serializes the window map; every keyed request takes it, so
	// journal IO must stay outside (see store and compact).
	mu       sync.Mutex // districtlint:lockio
	ttl      time.Duration
	claimTTL time.Duration
	entries  map[string]*dedupEntry
	queue    []dedupRef // FIFO of insertions for TTL/cap eviction
	now      func() time.Time

	log         *wal.Log // nil: memory-only
	dir         string
	appended    int
	persistErrs uint64 // outcomes finalized in memory but not journaled
}

type dedupEntry struct {
	key     string
	res     IngestResult
	at      time.Time
	done    chan struct{} // closed when res is final
	ok      bool          // res is valid (false: delivery abandoned)
	pending bool          // res set, journal append in flight (see store)
	stolen  bool          // claim handed to a newer request (see begin)
}

type dedupRef struct {
	key string
	at  time.Time
}

// dedupRecord is the persisted form of one finished outcome.
type dedupRecord struct {
	Key string       `json:"key"`
	At  time.Time    `json:"at"`
	Res IngestResult `json:"res"`
}

// newDedupWindow builds the window (ttl 0 = default; negative disables
// deduplication and returns nil; claimTTL 0 = default, negative
// disables claim takeover).
func newDedupWindow(ttl, claimTTL time.Duration) *dedupWindow {
	if ttl < 0 {
		return nil
	}
	if ttl == 0 {
		ttl = defaultIdempotencyWindow
	}
	if claimTTL == 0 {
		claimTTL = defaultClaimTTL
	}
	return &dedupWindow{ttl: ttl, claimTTL: claimTTL, entries: make(map[string]*dedupEntry), now: time.Now}
}

// closedChan is the pre-closed done channel of reloaded entries.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// openLog attaches persistence: reload still-fresh outcomes from the
// snapshot and log in dir, then compact them into a fresh snapshot so
// boot cost stays proportional to the live window, not ingest history.
func (d *dedupWindow) openLog(dir string, mode wal.Mode) error {
	insert := func(p []byte) error {
		var r dedupRecord
		if err := json.Unmarshal(p, &r); err != nil {
			return nil // unreadable outcome: drop it, keep the rest
		}
		if d.now().Sub(r.At) >= d.ttl {
			return nil
		}
		d.entries[r.Key] = &dedupEntry{key: r.Key, res: r.Res, at: r.At, done: closedChan, ok: true}
		d.queue = append(d.queue, dedupRef{key: r.Key, at: r.At})
		return nil
	}
	snapSeq, sr, err := wal.LatestSnapshot(dir)
	if err != nil {
		return err
	}
	if sr != nil {
		for {
			p, err := sr.Record()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return errors.Join(err, sr.Close())
			}
			_ = insert(p)
		}
		// The snapshot was read to EOF; a close error on the read-only
		// file cannot invalidate what was decoded.
		_ = sr.Close() //lint:ignore closecheck read-only snapshot already decoded to EOF; close error cannot lose data
	}
	log, err := wal.Open(dir, wal.Options{Fsync: mode, SegmentBytes: 1 << 20})
	if err != nil {
		return err
	}
	if err := log.Replay(snapSeq, func(_ uint64, p []byte) error { return insert(p) }); err != nil {
		return errors.Join(err, log.Close())
	}
	d.log = log
	d.dir = dir
	d.compact()
	return nil
}

// compact snapshots the live outcomes at the log watermark and
// truncates the segments below it. The window's mutex is held only to
// copy the live set — the snapshot write (file IO, two fsyncs) runs
// outside it, so keyed requests never queue behind a compaction.
// Outcomes journaled while the snapshot is being written sit above the
// captured watermark and survive the truncation.
func (d *dedupWindow) compact() {
	d.mu.Lock()
	log := d.log
	if log == nil {
		d.mu.Unlock()
		return
	}
	d.pruneLocked()
	seq := log.LastSeq()
	recs := make([][]byte, 0, len(d.entries))
	for _, ref := range d.queue {
		e := d.entries[ref.key]
		if e == nil || !(e.ok || e.pending) || !e.at.Equal(ref.at) {
			continue
		}
		if p, err := json.Marshal(dedupRecord{Key: e.key, At: e.at, Res: e.res}); err == nil {
			recs = append(recs, p)
		}
	}
	dir := d.dir
	d.mu.Unlock()

	err := wal.WriteSnapshot(dir, seq, func(sw *wal.SnapshotWriter) error {
		for _, p := range recs {
			if err := sw.Record(p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return // log intact; retried a full cadence later
	}
	_ = log.TruncateBefore(seq + 1)
	wal.RemoveSnapshotsBefore(dir, seq)
}

// size reports how many keys the window currently remembers (nil-safe).
func (d *dedupWindow) size() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// persistErrors reports outcomes finalized in memory but lost to the
// journal (nil-safe); non-zero means acked keyed batches stopped being
// crash-replayable at some point.
func (d *dedupWindow) persistErrors() uint64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.persistErrs
}

// close releases the persistence log (nil-safe). The log is detached
// under the window mutex and closed outside it — the close may flush —
// and the close error is returned: it is the last word on whether the
// journaled outcomes reached disk.
func (d *dedupWindow) close() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	log := d.log
	d.log = nil
	d.mu.Unlock()
	if log == nil {
		return nil
	}
	return log.Close()
}

// pruneLocked drops expired entries and enforces the cap. In-flight
// entries survive the cap sweep (they are completed or abandoned by
// their request) but fall to TTL like any other — a delivery outliving
// the whole window has no retry left to protect.
func (d *dedupWindow) pruneLocked() {
	now := d.now()
	for len(d.queue) > 0 {
		ref := d.queue[0]
		if now.Sub(ref.at) < d.ttl && len(d.queue) <= maxDedupEntries {
			break
		}
		d.queue = d.queue[1:]
		// A re-used key may have a fresher entry; only forget the one
		// this ref inserted.
		if e, ok := d.entries[ref.key]; ok && e.at.Equal(ref.at) {
			delete(d.entries, ref.key)
		}
	}
}

// dedupToken is one request's claim on an idempotency key; exactly one
// of store or abandon must be called once the request settles.
type dedupToken struct {
	d *dedupWindow
	e *dedupEntry
}

// store finalizes the claimed delivery: waiting and future retries
// replay res, and with persistence attached the outcome is journaled
// (under the log's fsync policy) before it becomes replayable or the
// caller can respond — an acked keyed batch replays after a crash
// instead of double-appending. The journal append (an fsync, in always
// mode) runs OUTSIDE the window's mutex: only same-key waiters block on
// it (done is still open), not every other key's begin(). A claim that
// was taken over (claimTTL) discards its late outcome: the stealer
// owns the key now.
func (t *dedupToken) store(res IngestResult) {
	if t == nil {
		return
	}
	d, e := t.d, t.e
	d.mu.Lock()
	if e.stolen {
		d.mu.Unlock()
		return
	}
	e.res = res
	// pending makes the outcome visible to a concurrent compaction: its
	// journal record may land just below the snapshot watermark and be
	// truncated with the segments, so the snapshot must carry it.
	e.pending = true
	log := d.log
	d.mu.Unlock()

	journaled := false
	if log != nil {
		p, err := json.Marshal(dedupRecord{Key: e.key, At: e.at, Res: res})
		if err == nil {
			_, err = log.Append(p)
		}
		if err != nil {
			// The log is sticky-failed: detach it and count the loss, so
			// the degradation (acked outcomes no longer crash-replayable)
			// is visible in the stats instead of silent. The close runs
			// outside the window mutex, after the detach.
			var dead *wal.Log
			d.mu.Lock()
			d.persistErrs++
			if d.log == log {
				dead = d.log
				d.log = nil
			}
			d.mu.Unlock()
			if dead != nil {
				_ = dead.Close() //lint:ignore closecheck log already sticky-failed; Close error carries no new information
			}
		} else {
			journaled = true
		}
	}

	compactDue := false
	d.mu.Lock()
	if e.stolen { // taken over while journaling; the stealer owns done now
		d.mu.Unlock()
		return
	}
	e.ok, e.pending = true, false
	close(e.done)
	if journaled {
		if d.appended++; d.appended >= dedupCompactEvery {
			d.appended = 0 // back off a full cadence, success or failure
			compactDue = true
		}
	}
	d.mu.Unlock()
	if compactDue {
		d.compact()
	}
}

// abandon releases the claim without an outcome (the request failed
// before applying rows); a retry re-executes from scratch.
func (t *dedupToken) abandon() {
	if t == nil || t.e == nil {
		return
	}
	t.d.mu.Lock()
	e := t.e
	if !e.ok && !e.stolen {
		if cur := t.d.entries[e.key]; cur == e {
			delete(t.d.entries, e.key)
		}
		close(e.done)
	}
	t.d.mu.Unlock()
	t.e = nil
}

// begin claims key for this request. It returns, exclusively:
// a non-nil token (the caller owns the delivery and must store or
// abandon), a non-nil result (a finished delivery to replay), or an
// error (the context ended while waiting on an in-flight delivery).
// An empty key (or disabled window) returns all nils: no idempotency.
//
// An in-flight claim older than claimTTL is treated as abandoned by a
// dead client and handed to the arriving retry: the old owner's late
// outcome (if it ever settles) is discarded, and any requests waiting
// on it wake up and line up behind the new claim.
func (d *dedupWindow) begin(ctx context.Context, key string) (*dedupToken, *IngestResult, error) {
	if d == nil || key == "" {
		return nil, nil, nil
	}
	for {
		d.mu.Lock()
		d.pruneLocked()
		e := d.entries[key]
		if e == nil {
			e = &dedupEntry{key: key, at: d.now(), done: make(chan struct{})}
			d.entries[key] = e
			d.queue = append(d.queue, dedupRef{key: key, at: e.at})
			d.mu.Unlock()
			return &dedupToken{d: d, e: e}, nil, nil
		}
		if e.ok {
			res := e.res
			res.Replayed = true
			d.mu.Unlock()
			return nil, &res, nil
		}
		if d.claimTTL > 0 && d.now().Sub(e.at) >= d.claimTTL {
			e.stolen = true
			close(e.done) // waiters re-examine and find the fresh claim
			fresh := &dedupEntry{key: key, at: d.now(), done: make(chan struct{})}
			d.entries[key] = fresh
			d.queue = append(d.queue, dedupRef{key: key, at: fresh.at})
			d.mu.Unlock()
			return &dedupToken{d: d, e: fresh}, nil, nil
		}
		done := e.done
		d.mu.Unlock()
		select {
		case <-done: // finished, abandoned or stolen; re-examine
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// ---------------------------------------------------------------------
// Row staging
// ---------------------------------------------------------------------

// ingester stages the rows of one ingest request and applies them in
// bounded chunks through the engine's batched, shard-parallel append
// path. While at least one SSE subscriber is connected (re-checked per
// chunk, so one joining mid-backfill picks up from the next chunk),
// accepted rows are republished to the service's stream hub — directly
// to the hub, not the bus, which would re-ingest them. With no
// subscribers the hub (and its bounded replay ring) is skipped: that
// keeps the ingest-dominated path free of per-row document encoding,
// at the documented cost that rows ingested while nobody listens are
// not resumable via Last-Event-ID (the bus write path feeds the ring
// unconditionally).
type ingester struct {
	s   *Service
	res IngestResult

	rows []tsdb.Row
	src  []int // global row index per staged row
	next int   // next global row index

	// stages receives the request's store-apply / wal-append /
	// hub-publish timings (nil outside a traced request; all uses are
	// guarded so the untraced path takes no timestamps).
	stages *obs.Stages
}

// ingesterPool recycles ingesters (and their chunk-sized staging
// slices) across requests; finish returns them.
var ingesterPool = sync.Pool{New: func() any { return new(ingester) }}

func (s *Service) newIngester(st *obs.Stages) *ingester {
	g := ingesterPool.Get().(*ingester)
	if g.rows == nil {
		g.rows = make([]tsdb.Row, 0, ingestChunk)
		g.src = make([]int, 0, ingestChunk)
	}
	g.s = s
	g.stages = st
	g.next = 0
	return g
}

// reject records one failed row.
//
// districtlint:hotpath
func (g *ingester) reject(row int, msg string) {
	g.res.Rejected++
	if len(g.res.Errors) < maxIngestErrors {
		g.res.Errors = append(g.res.Errors, RowError{Row: row, Error: msg})
	} else {
		g.res.ErrorsTruncated = true
	}
}

// add validates and stages one self-contained row (device and quantity
// on the row itself).
//
// districtlint:hotpath
func (g *ingester) add(p Point) {
	row := g.next
	g.next++
	if p.Device == "" {
		g.reject(row, "missing device")
		return
	}
	if p.Quantity == "" {
		g.reject(row, "missing quantity")
		return
	}
	g.stage(row, tsdb.SeriesKey{Device: p.Device, Quantity: p.Quantity}, p)
}

// addTo validates and stages one row of a path-named series.
//
// districtlint:hotpath
func (g *ingester) addTo(key tsdb.SeriesKey, p Point) {
	row := g.next
	g.next++
	g.stage(row, key, p)
}

// stage applies the shared value/time validation and queues the row.
//
// districtlint:hotpath
func (g *ingester) stage(row int, key tsdb.SeriesKey, p Point) {
	if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
		g.reject(row, "non-finite value")
		return
	}
	at := p.At
	if at.IsZero() {
		at = time.Now().UTC()
	}
	g.rows = append(g.rows, tsdb.Row{Key: key, Sample: tsdb.Sample{At: at, Value: p.Value}})
	g.src = append(g.src, row)
	if len(g.rows) >= ingestChunk {
		g.flush()
	}
}

// flush applies the staged chunk and folds per-row outcomes into the
// summary. On the sharded engine the stage collector rides into the
// shard workers, which attribute the WAL and store waits themselves;
// other engines get a single store-apply timing around the batch call.
//
// districtlint:hotpath
func (g *ingester) flush() {
	if len(g.rows) == 0 {
		return
	}
	var errs []error
	if sh, ok := g.s.store.(*tsdb.Sharded); ok {
		errs = sh.AppendBatchStages(g.rows, g.stages)
	} else {
		var start time.Time
		if g.stages != nil {
			start = time.Now()
		}
		errs = g.s.store.AppendBatch(g.rows)
		if g.stages != nil {
			g.stages.Observe("store-apply", time.Since(start))
		}
	}
	live := g.s.streamS.Hub().Stats().Subscribers > 0
	var pubStart time.Time
	if live && g.stages != nil {
		pubStart = time.Now()
	}
	for i := range g.rows {
		if errs != nil && errs[i] != nil {
			g.reject(g.src[i], errs[i].Error())
			continue
		}
		g.res.Accepted++
		if live {
			g.publish(g.rows[i])
		}
	}
	if live && g.stages != nil {
		g.stages.Observe("hub-publish", time.Since(pubStart))
	}
	g.rows = g.rows[:0]
	g.src = g.src[:0]
}

// publish feeds one accepted row to the stream hub for live subscribers.
func (g *ingester) publish(r tsdb.Row) {
	m := measurementsOf(r.Key, []tsdb.Sample{r.Sample}, g.s.srv.Addr())[0]
	payload, err := dataformat.NewMeasurementDoc(m).Encode(dataformat.JSON)
	if err != nil {
		return
	}
	_ = g.s.streamS.Hub().Publish(middleware.Event{
		Topic:   Topic(r.Key.Device, dataformat.Quantity(r.Key.Quantity)),
		Payload: payload,
		Headers: map[string]string{"content-type": "application/json"},
		At:      r.Sample.At,
	})
}

// finish applies any staged tail and returns the summary, recycling
// the ingester: it must not be touched afterwards. The result's error
// slice escapes to the caller, so res is detached rather than reused.
func (g *ingester) finish() IngestResult {
	g.flush()
	g.s.ingested.Add(uint64(g.res.Accepted))
	g.s.rejected.Add(uint64(g.res.Rejected))
	res := g.res
	g.res = IngestResult{}
	g.s = nil
	g.stages = nil
	ingesterPool.Put(g)
	return res
}

// ---------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------

// claimIdempotency claims the request's Idempotency-Key. When the key
// already has an outcome (finished, or finishing while we wait), it is
// replayed and handled=true is returned; otherwise the caller owns the
// delivery and must tok.store (success) or tok.abandon (early failure)
// — tok is nil when the request carries no key.
func (s *Service) claimIdempotency(w http.ResponseWriter, r *http.Request) (tok *dedupToken, handled bool) {
	key := r.Header.Get("Idempotency-Key")
	var start time.Time
	if key != "" {
		start = time.Now()
	}
	tok, res, err := s.dedup.begin(r.Context(), key)
	if key != "" {
		d := time.Since(start)
		s.dedupClaim.ObserveDuration(d)
		obs.StagesFrom(r.Context()).Observe("dedup-claim", d)
	}
	if err != nil {
		api.WriteError(w, r, api.WithStatus(http.StatusServiceUnavailable,
			fmt.Errorf("waiting on in-flight idempotent delivery: %v", err)))
		return nil, true
	}
	if res != nil {
		w.Header().Set("Idempotent-Replay", "true")
		api.WriteJSON(w, http.StatusOK, *res)
		return nil, true
	}
	return tok, false
}

// v2Ingest serves POST /v2/ingest: a batched JSON body ({"rows":[...]})
// by default, or a row-at-a-time NDJSON stream when the request body is
// application/x-ndjson. Rows are applied in bounded chunks through the
// sharded engine; the response is a per-row summary envelope.
func (s *Service) v2Ingest(w http.ResponseWriter, r *http.Request) {
	tok, handled := s.claimIdempotency(w, r)
	if handled {
		return
	}
	defer tok.abandon() // no-op once the outcome is stored
	// Body encoding negotiation mirrors the read plane: NDJSON on an
	// explicit Content-Type or encoding=ndjson, anything else decoded
	// as JSON (curl's default form content type included).
	ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";")
	ndjson := strings.TrimSpace(ct) == NDJSONType
	switch enc := r.URL.Query().Get("encoding"); enc {
	case "":
	case "json":
		ndjson = false
	case "ndjson":
		ndjson = true
	default:
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad encoding %q (want json or ndjson)", enc)))
		return
	}

	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	if s.cnode != nil {
		// Clustered nodes buffer the whole request before applying any
		// row: a request addressed to a frozen or foreign shard must be
		// rejected before anything reaches the WAL (cluster.go).
		s.clusterIngest(w, r, tok, body, ndjson)
		return
	}
	sc := newPointScanner(body)
	defer sc.release()
	if ndjson {
		g := s.newIngester(obs.StagesFrom(r.Context()))
		var p Point
		for {
			if err := sc.next(&p); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				// A malformed line poisons the rest of the stream: report
				// it at its row index and stop reading; earlier rows stand.
				g.reject(g.next, "malformed row: "+err.Error())
				break
			}
			g.add(p)
		}
		res := g.finish()
		tok.store(res)
		api.WriteJSON(w, http.StatusOK, res)
		return
	}
	pts, err := sc.decodeBatch("rows")
	if err != nil {
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad request body: %v", err)))
		return
	}
	if len(pts) == 0 {
		api.WriteError(w, r, api.BadRequest(errors.New("empty rows")))
		return
	}
	g := s.newIngester(obs.StagesFrom(r.Context()))
	for i := range pts {
		g.add(pts[i])
	}
	res := g.finish()
	tok.store(res)
	api.WriteJSON(w, http.StatusOK, res)
}

// v2PutSamples serves PUT /v2/series/{device}/{quantity}/samples: an
// append to one path-named series, with the same summary envelope and
// idempotency window as POST /v2/ingest.
func (s *Service) v2PutSamples(w http.ResponseWriter, r *http.Request) {
	p := api.ParamsOf(r)
	key := tsdb.SeriesKey{Device: p.Get("device"), Quantity: p.Get("quantity")}
	if key.Device == "" || key.Quantity == "" {
		api.WriteError(w, r, api.BadRequest(errors.New("missing device or quantity path segment")))
		return
	}
	tok, handled := s.claimIdempotency(w, r)
	if handled {
		return
	}
	defer tok.abandon() // no-op once the outcome is stored
	sc := newPointScanner(http.MaxBytesReader(w, r.Body, maxIngestBody))
	defer sc.release()
	samples, err := sc.decodeBatch("samples")
	if err != nil {
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad request body: %v", err)))
		return
	}
	if len(samples) == 0 {
		api.WriteError(w, r, api.BadRequest(errors.New("empty samples")))
		return
	}
	if s.cnode != nil {
		s.cnode.gate.RLock()
		defer s.cnode.gate.RUnlock()
		if !s.clusterAdmitKey(w, r, key.Device) {
			return
		}
	}
	g := s.newIngester(obs.StagesFrom(r.Context()))
	for _, smp := range samples {
		g.addTo(key, smp)
	}
	res := g.finish()
	tok.store(res)
	api.WriteJSON(w, http.StatusOK, res)
}
