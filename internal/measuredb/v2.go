package measuredb

import (
	"context"
	"encoding/base64"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/dataformat"
	"repro/internal/qcache"
	"repro/internal/tsdb"
)

// The /v2 query data plane: resource-oriented routes over the
// measurements store, following the batch/pagination conventions of
// mainstream time-series APIs instead of one-series-per-request query
// params.
//
//	GET  /v2/series                                      series catalog (globs, paginated)
//	GET  /v2/series/{device}/{quantity}/samples          samples (cursor pages; JSON/NDJSON/CSV)
//	GET  /v2/series/{device}/{quantity}/latest           freshest sample
//	GET  /v2/series/{device}/{quantity}/aggregate        summary or windowed buckets
//	POST /v2/query                                       batch multi-series read
//
// Device URIs contain "/", so the {device} path parameter travels
// percent-encoded (url.PathEscape). Cursors are opaque: clients echo
// next_cursor back verbatim.

// Streamable media types of the samples route. JSON stays the default;
// NDJSON and CSV are written row-at-a-time, so a response is O(1) in
// server memory however large the range is.
const (
	NDJSONType = "application/x-ndjson"
	CSVType    = "text/csv"
)

// v2 pagination and batch bounds.
const (
	maxPageLimit      = 10000
	maxBatchSelectors = 1024
)

// Point is one sample on the /v2 wire. Device and Quantity are set on
// self-contained rows (NDJSON/CSV, batch results) and omitted inside a
// SamplesPage, whose envelope already names the series.
type Point struct {
	Device   string    `json:"device,omitempty"`
	Quantity string    `json:"quantity,omitempty"`
	At       time.Time `json:"at"`
	Value    float64   `json:"value"`
}

// SamplesPage is the JSON body of GET /v2/.../samples: one bounded page
// plus the opaque cursor resuming after it.
type SamplesPage struct {
	Device     string  `json:"device"`
	Quantity   string  `json:"quantity"`
	Samples    []Point `json:"samples"`
	Count      int     `json:"count"`
	NextCursor string  `json:"next_cursor,omitempty"`
}

// SeriesPage is the JSON body of GET /v2/series.
type SeriesPage struct {
	Series     []SeriesInfo `json:"series"`
	Count      int          `json:"count"`
	NextCursor string       `json:"next_cursor,omitempty"`
}

// SeriesSelector names the series a batch query entry reads: an exact
// device URI or a glob ('*' matches any run of characters), and an
// exact/glob quantity (empty selects every quantity of the device).
type SeriesSelector struct {
	Device   string `json:"device"`
	Quantity string `json:"quantity,omitempty"`
}

// BatchQuery is the POST /v2/query body: many selectors evaluated in
// one request over a shared time range, optionally pushing aggregation
// or windowed downsampling into the store instead of shipping raw rows.
type BatchQuery struct {
	Selectors []SeriesSelector `json:"selectors"`
	From      time.Time        `json:"from,omitempty"`
	To        time.Time        `json:"to,omitempty"`
	// Limit caps raw samples per matched series (default DefaultPageLimit,
	// max maxPageLimit); ignored when Aggregate or Window is set.
	Limit int `json:"limit,omitempty"`
	// Aggregate returns one summary per series instead of samples.
	Aggregate bool `json:"aggregate,omitempty"`
	// Window (a Go duration, e.g. "5m") returns downsampled buckets.
	Window string `json:"window,omitempty"`
}

// BatchSeries is one matched series' result inside a batch response.
type BatchSeries struct {
	Device    string             `json:"device"`
	Quantity  string             `json:"quantity"`
	Samples   []Point            `json:"samples,omitempty"`
	Aggregate *AggregateResponse `json:"aggregate,omitempty"`
	Buckets   []tsdb.Bucket      `json:"buckets,omitempty"`
	// Truncated reports that the series holds more samples in range than
	// Limit allowed; page through /v2/.../samples to get the rest.
	Truncated bool `json:"truncated,omitempty"`
}

// BatchResult pairs one selector with what it matched. A selector that
// matches nothing reports an Error instead of failing the whole batch.
type BatchResult struct {
	Selector SeriesSelector `json:"selector"`
	Series   []BatchSeries  `json:"series,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// BatchResponse is the POST /v2/query reply: per-selector results in
// request order plus whole-batch totals.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
	Series  int           `json:"series"`
	Samples int           `json:"samples"`
}

// ---------------------------------------------------------------------
// Opaque cursors
// ---------------------------------------------------------------------

// encodeCursor renders a store cursor opaquely (base64url of
// "<unix-nanos>:<seen>").
func encodeCursor(c tsdb.Cursor) string {
	raw := strconv.FormatInt(c.After.UnixNano(), 10) + ":" + strconv.Itoa(c.Seen)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// decodeCursor parses an opaque cursor ("" is the start of the range).
func decodeCursor(s string) (tsdb.Cursor, error) {
	if s == "" {
		return tsdb.Cursor{}, nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return tsdb.Cursor{}, fmt.Errorf("bad cursor: %v", err)
	}
	nanosStr, seenStr, ok := strings.Cut(string(raw), ":")
	if !ok {
		return tsdb.Cursor{}, errors.New("bad cursor: malformed payload")
	}
	nanos, err1 := strconv.ParseInt(nanosStr, 10, 64)
	seen, err2 := strconv.Atoi(seenStr)
	if err1 != nil || err2 != nil || seen < 0 {
		return tsdb.Cursor{}, errors.New("bad cursor: malformed payload")
	}
	return tsdb.Cursor{After: time.Unix(0, nanos).UTC(), Seen: seen}, nil
}

// encodeSeriesCursor marks a position in the sorted series catalog.
func encodeSeriesCursor(k tsdb.SeriesKey) string {
	return base64.RawURLEncoding.EncodeToString([]byte(k.Device + "\x00" + k.Quantity))
}

func decodeSeriesCursor(s string) (tsdb.SeriesKey, error) {
	if s == "" {
		return tsdb.SeriesKey{}, nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return tsdb.SeriesKey{}, fmt.Errorf("bad cursor: %v", err)
	}
	device, quantity, ok := strings.Cut(string(raw), "\x00")
	if !ok {
		return tsdb.SeriesKey{}, errors.New("bad cursor: malformed payload")
	}
	return tsdb.SeriesKey{Device: device, Quantity: quantity}, nil
}

// ---------------------------------------------------------------------
// Selector resolution
// ---------------------------------------------------------------------

// globMatch reports whether s matches pattern, where '*' matches any
// run of characters (including separators — a district-wide selector is
// "urn:district:turin/*"). Iterative with backtracking, no allocation.
func globMatch(pattern, s string) bool {
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		// The wildcard case must win over the literal one: a '*' in the
		// subject would otherwise consume the pattern's '*' as a literal
		// and lose the backtrack point.
		case pi < len(pattern) && pattern[pi] == '*':
			star, mark = pi, si
			pi++
		case pi < len(pattern) && pattern[pi] == s[si]:
			pi++
			si++
		case star >= 0:
			mark++
			pi, si = star+1, mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

func hasGlob(s string) bool { return strings.ContainsRune(s, '*') }

// sortKeys orders series keys by device, then quantity.
func sortKeys(keys []tsdb.SeriesKey) {
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
}

// ---------------------------------------------------------------------
// Route plumbing
// ---------------------------------------------------------------------

// mountV2 registers the /v2 data plane on the service's API server,
// wrapping the routes in their rate-limit tiers.
func (s *Service) mountV2(srv *api.Server, read, batch, write func(http.Handler) http.Handler) {
	srv.HandleV2(http.MethodGet, "/series", read(api.Query(s.v2Series)))
	srv.HandleV2(http.MethodGet, "/series/{device}/{quantity}/samples", read(http.HandlerFunc(s.v2Samples)))
	srv.HandleV2(http.MethodGet, "/series/{device}/{quantity}/latest", read(api.QueryP(s.v2Latest)))
	srv.HandleV2(http.MethodGet, "/series/{device}/{quantity}/aggregate", read(api.QueryP(s.v2Aggregate)))
	srv.HandleV2(http.MethodPost, "/query", batch(http.HandlerFunc(s.v2Query)))
	srv.HandleV2(http.MethodPost, "/ingest", write(http.HandlerFunc(s.v2Ingest)))
	srv.HandleV2(http.MethodPut, "/series/{device}/{quantity}/samples", write(http.HandlerFunc(s.v2PutSamples)))
}

// pageLimit parses the limit query parameter with the shared bounds.
func pageLimit(q url.Values) (int, error) {
	raw := q.Get("limit")
	if raw == "" {
		return tsdb.DefaultPageLimit, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad limit %q", raw)
	}
	return min(n, maxPageLimit), nil
}

// clampLimit applies the shared bounds to a body-supplied limit.
func clampLimit(n int) int {
	if n <= 0 {
		return tsdb.DefaultPageLimit
	}
	return min(n, maxPageLimit)
}

// v2Series serves the paginated series catalog, optionally filtered by
// device/quantity globs.
func (s *Service) v2Series(ctx context.Context, q url.Values) (any, error) {
	limit, err := pageLimit(q)
	if err != nil {
		return nil, api.BadRequest(err)
	}
	after, err := decodeSeriesCursor(q.Get("cursor"))
	if err != nil {
		return nil, api.BadRequest(err)
	}
	return s.cachedAll(func(k *qcache.Key) {
		k.Str("series").Str(q.Get("device")).Str(q.Get("quantity")).
			Int(int64(limit)).Str(after.Device).Str(after.Quantity)
	}, func() (any, error) {
		keys := s.resolveSelector(SeriesSelector{Device: q.Get("device"), Quantity: q.Get("quantity")})
		if after != (tsdb.SeriesKey{}) {
			i := sort.Search(len(keys), func(i int) bool {
				if keys[i].Device != after.Device {
					return keys[i].Device > after.Device
				}
				return keys[i].Quantity > after.Quantity
			})
			keys = keys[i:]
		}
		page := SeriesPage{Series: make([]SeriesInfo, 0, min(limit, len(keys)))}
		for _, k := range keys {
			if len(page.Series) == limit {
				page.NextCursor = encodeSeriesCursor(tsdb.SeriesKey{
					Device:   page.Series[limit-1].Device,
					Quantity: page.Series[limit-1].Quantity,
				})
				break
			}
			page.Series = append(page.Series, SeriesInfo{Device: k.Device, Quantity: k.Quantity, Samples: s.store.Len(k)})
		}
		page.Count = len(page.Series)
		return page, nil
	})
}

// samplesParams decodes the shared parameters of the per-series routes.
func samplesParams(p api.Params, q url.Values) (key tsdb.SeriesKey, from, to time.Time, err error) {
	key = tsdb.SeriesKey{Device: p.Get("device"), Quantity: p.Get("quantity")}
	if key.Device == "" || key.Quantity == "" {
		return key, from, to, api.BadRequest(errors.New("missing device or quantity path segment"))
	}
	if from, to, err = parseRange(q); err != nil {
		return key, from, to, api.BadRequest(err)
	}
	return key, from, to, nil
}

// v2Samples serves one series range: a JSON cursor page by default, or
// a row-at-a-time NDJSON/CSV stream when the client asks for one (via
// Accept or the encoding query parameter).
func (s *Service) v2Samples(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	key, from, to, err := samplesParams(api.ParamsOf(r), q)
	if err != nil {
		api.WriteError(w, r, err)
		return
	}
	limit, err := pageLimit(q)
	if err != nil {
		api.WriteError(w, r, api.BadRequest(err))
		return
	}
	cur, err := decodeCursor(q.Get("cursor"))
	if err != nil {
		api.WriteError(w, r, api.BadRequest(err))
		return
	}

	mediaType := api.NegotiateMediaType(r.Header.Get("Accept"), "application/json", NDJSONType, CSVType)
	switch q.Get("encoding") {
	case "":
	case "json":
		mediaType = "application/json"
	case "ndjson":
		mediaType = NDJSONType
	case "csv":
		mediaType = CSVType
	default:
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad encoding %q (want json, ndjson, or csv)", q.Get("encoding"))))
		return
	}

	if mediaType == "application/json" || mediaType == "" {
		out, err := s.cachedDevice(key.Device, func(k *qcache.Key) {
			k.Str("samples").Str(key.Device).Str(key.Quantity).
				Int(from.UnixNano()).Int(to.UnixNano()).Int(int64(limit)).
				Int(cur.After.UnixNano()).Int(int64(cur.Seen))
		}, func() (any, error) {
			page, err := s.store.QueryPage(key, from, to, cur, limit)
			if err != nil {
				return nil, err
			}
			out := SamplesPage{
				Device:   key.Device,
				Quantity: key.Quantity,
				Samples:  make([]Point, len(page.Samples)),
				Count:    len(page.Samples),
			}
			for i, smp := range page.Samples {
				out.Samples[i] = Point{At: smp.At, Value: smp.Value}
			}
			if page.More {
				out.NextCursor = encodeCursor(page.Next)
			}
			return out, nil
		})
		if err != nil {
			api.WriteError(w, r, err)
			return
		}
		api.WriteJSON(w, http.StatusOK, out)
		return
	}

	// Streaming encodings ride the store iterator: rows go out as they
	// are read, a bounded page at a time, so the response never
	// materializes the range. An explicit limit still caps the stream;
	// the default streams the whole range.
	streamLimit := 0
	if q.Get("limit") != "" {
		streamLimit = limit
	}
	it := s.store.Iter(key, from, to, 0)
	it = it.StartAt(cur)
	s.streamSamples(w, r, key, it, mediaType, streamLimit)
}

// streamSamples writes iterator rows in the negotiated encoding,
// flushing periodically so slow consumers see progress.
func (s *Service) streamSamples(w http.ResponseWriter, r *http.Request, key tsdb.SeriesKey, it *tsdb.Iterator, mediaType string, limit int) {
	// Surface a missing series as a proper envelope before committing
	// the streaming content type.
	first, ok := it.Next()
	if !ok {
		if err := it.Err(); err != nil {
			api.WriteError(w, r, err)
			return
		}
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", mediaType+"; charset=utf-8")
	w.WriteHeader(http.StatusOK)

	var writeRow func(p Point) error
	var finish func()
	switch mediaType {
	case NDJSONType:
		buf := getRowBuf()
		defer putRowBuf(buf)
		writeRow = func(p Point) error {
			buf.b = appendPointNDJSON(buf.b[:0], p)
			_, err := w.Write(buf.b)
			return err
		}
		finish = func() {}
	case CSVType:
		cw := csv.NewWriter(w)
		_ = cw.Write([]string{"device", "quantity", "at", "value"})
		var record [4]string
		writeRow = func(p Point) error {
			record[0], record[1] = p.Device, p.Quantity
			record[2] = p.At.UTC().Format(time.RFC3339Nano)
			record[3] = strconv.FormatFloat(p.Value, 'g', -1, 64)
			return cw.Write(record[:])
		}
		finish = func() { cw.Flush() }
	}

	rows := 0
	for smp, more := first, ok; more; smp, more = it.Next() {
		row := Point{Device: key.Device, Quantity: key.Quantity, At: smp.At, Value: smp.Value}
		if err := writeRow(row); err != nil {
			return // client went away
		}
		rows++
		if limit > 0 && rows >= limit {
			break
		}
		if rows%256 == 0 {
			finish()
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	finish()
	if flusher != nil {
		flusher.Flush()
	}
}

// v2Latest serves the freshest sample of one series as a measurement
// document (content-negotiated like the v1 route).
func (s *Service) v2Latest(ctx context.Context, p api.Params, q url.Values) (any, error) {
	key := tsdb.SeriesKey{Device: p.Get("device"), Quantity: p.Get("quantity")}
	smp, err := s.store.Latest(key)
	if err != nil {
		return nil, api.NotFound(err)
	}
	ms := measurementsOf(key, []tsdb.Sample{smp}, s.srv.Addr())
	return dataformat.NewMeasurementDoc(ms[0]), nil
}

// v2Aggregate serves a range summary, or windowed buckets with window=.
// Responses flow through the generation-keyed result cache: repeated
// identical aggregates over a quiescent shard are served from cache,
// byte-identical to a fresh evaluation.
func (s *Service) v2Aggregate(ctx context.Context, p api.Params, q url.Values) (any, error) {
	key, from, to, err := samplesParams(p, q)
	if err != nil {
		return nil, err
	}
	ws := q.Get("window")
	var window time.Duration
	if ws != "" {
		if window, err = time.ParseDuration(ws); err != nil {
			return nil, api.BadRequest(fmt.Errorf("bad window: %v", err))
		}
	}
	return s.cachedDevice(key.Device, func(k *qcache.Key) {
		k.Str("agg").Str(key.Device).Str(key.Quantity).
			Int(from.UnixNano()).Int(to.UnixNano()).Str(ws)
	}, func() (any, error) {
		if ws != "" {
			buckets, err := s.store.Downsample(key, from, to, window)
			if err != nil {
				return nil, err
			}
			return buckets, nil
		}
		agg, err := s.store.Aggregate(key, from, to)
		if err != nil {
			return nil, err
		}
		return aggregateResponse(key, agg), nil
	})
}

// aggregateResponse renders a store aggregate on the wire.
func aggregateResponse(key tsdb.SeriesKey, agg tsdb.Aggregate) *AggregateResponse {
	return &AggregateResponse{
		Device: key.Device, Quantity: key.Quantity,
		Count: agg.Count, Min: agg.Min, Max: agg.Max, Mean: agg.Mean, Sum: agg.Sum,
	}
}

// batchPlan is a validated, normalized batch query.
type batchPlan struct {
	req    BatchQuery
	window time.Duration
	limit  int
}

// planBatch validates a batch request and normalizes its bounds.
func planBatch(req BatchQuery) (batchPlan, error) {
	if len(req.Selectors) == 0 {
		return batchPlan{}, api.BadRequest(errors.New("empty selector batch"))
	}
	if len(req.Selectors) > maxBatchSelectors {
		return batchPlan{}, api.BadRequest(fmt.Errorf("%d selectors exceed the batch cap of %d", len(req.Selectors), maxBatchSelectors))
	}
	if !req.To.IsZero() && req.To.Before(req.From) {
		return batchPlan{}, api.BadRequest(errors.New("to before from"))
	}
	plan := batchPlan{req: req, limit: clampLimit(req.Limit)}
	if req.Window != "" {
		var err error
		if plan.window, err = time.ParseDuration(req.Window); err != nil {
			return batchPlan{}, api.BadRequest(fmt.Errorf("bad window: %v", err))
		}
	}
	return plan, nil
}

// evalSelector resolves one selector and reads every matched series.
func (s *Service) evalSelector(plan batchPlan, sel SeriesSelector) BatchResult {
	res := BatchResult{Selector: sel}
	keys := s.resolveSelector(sel)
	if len(keys) == 0 {
		res.Error = "no matching series"
		return res
	}
	req := plan.req
	for _, key := range keys {
		bs := BatchSeries{Device: key.Device, Quantity: key.Quantity}
		var err error
		switch {
		case plan.window > 0:
			var buckets []tsdb.Bucket
			if buckets, err = s.store.Downsample(key, req.From, req.To, plan.window); err == nil {
				bs.Buckets = buckets
			}
		case req.Aggregate:
			var agg tsdb.Aggregate
			if agg, err = s.store.Aggregate(key, req.From, req.To); err == nil {
				bs.Aggregate = aggregateResponse(key, agg)
			}
		default:
			var page tsdb.Page
			if page, err = s.store.QueryPage(key, req.From, req.To, tsdb.Cursor{}, plan.limit); err == nil {
				bs.Samples = make([]Point, len(page.Samples))
				for j, smp := range page.Samples {
					bs.Samples[j] = Point{At: smp.At, Value: smp.Value}
				}
				bs.Truncated = page.More
			}
		}
		if err != nil {
			// A series evicted between resolution and read is a
			// per-selector miss, never a whole-batch failure.
			res.Error = err.Error()
			continue
		}
		res.Series = append(res.Series, bs)
	}
	return res
}

// sampleCount is one series result's contribution to the batch totals.
func (bs *BatchSeries) sampleCount() int {
	switch {
	case bs.Aggregate != nil:
		return bs.Aggregate.Count
	case bs.Buckets != nil:
		n := 0
		for _, b := range bs.Buckets {
			n += b.Count
		}
		return n
	default:
		return len(bs.Samples)
	}
}

// evalBatch scatters the selectors over a bounded worker pool — each
// selector's resolution additionally fans over the store's shards — and
// gathers request-ordered results with whole-batch totals.
func (s *Service) evalBatch(plan batchPlan) BatchResponse {
	out := BatchResponse{Results: make([]BatchResult, len(plan.req.Selectors))}
	gatherBatch(len(plan.req.Selectors), func(i int) {
		out.Results[i] = s.evalSelector(plan, plan.req.Selectors[i])
	})
	for i := range out.Results {
		for j := range out.Results[i].Series {
			out.Series++
			out.Samples += out.Results[i].Series[j].sampleCount()
		}
	}
	return out
}

// v2Query evaluates a batch of series selectors in one request: a JSON
// document by default, or a row-at-a-time NDJSON stream (Accept or
// encoding=ndjson) whose raw-sample rows ride the store iterator, so the
// response is O(1) in server memory however much the selectors match.
func (s *Service) v2Query(w http.ResponseWriter, r *http.Request) {
	// The body is read whole (it is already bounded) so the raw bytes can
	// key the result cache: two textually identical batch requests share
	// one cache entry without re-normalizing the parsed form.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err != nil {
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad request body: %v", err)))
		return
	}
	var req BatchQuery
	if err := json.Unmarshal(body, &req); err != nil {
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad request body: %v", err)))
		return
	}
	plan, err := planBatch(req)
	if err != nil {
		api.WriteError(w, r, err)
		return
	}
	mediaType := api.NegotiateMediaType(r.Header.Get("Accept"), "application/json", NDJSONType)
	switch enc := r.URL.Query().Get("encoding"); enc {
	case "":
	case "json":
		mediaType = "application/json"
	case "ndjson":
		mediaType = NDJSONType
	default:
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad encoding %q (want json or ndjson)", enc)))
		return
	}
	if mediaType == NDJSONType {
		s.streamBatch(w, plan)
		return
	}
	out, err := s.cachedAll(func(k *qcache.Key) {
		k.Str("query").Bytes(body)
	}, func() (any, error) {
		return s.evalBatch(plan), nil
	})
	if err != nil {
		api.WriteError(w, r, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, out)
}

// BatchRow is one line of an NDJSON-streamed batch response. Exactly one
// of the payload fields is set: At/Value for a raw sample, Aggregate or
// Bucket for pushed-down summaries, Truncated marking a series cut at
// the limit, or Error for a failed selector.
type BatchRow struct {
	Selector  int                `json:"selector"`
	Device    string             `json:"device,omitempty"`
	Quantity  string             `json:"quantity,omitempty"`
	At        *time.Time         `json:"at,omitempty"`
	Value     *float64           `json:"value,omitempty"`
	Truncated bool               `json:"truncated,omitempty"`
	Aggregate *AggregateResponse `json:"aggregate,omitempty"`
	Bucket    *tsdb.Bucket       `json:"bucket,omitempty"`
	Error     string             `json:"error,omitempty"`
}

// BatchTrailer is the last line of an NDJSON-streamed batch response:
// the whole-batch totals the JSON envelope carries in its top level.
type BatchTrailer struct {
	Summary bool `json:"summary"`
	Series  int  `json:"series"`
	Samples int  `json:"samples"`
}

// streamBatch writes one NDJSON row per sample/bucket/aggregate, walking
// raw-sample selectors through the store iterator: selectors stream in
// request order, memory stays O(1), and a trailer line carries the
// totals.
func (s *Service) streamBatch(w http.ResponseWriter, plan batchPlan) {
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", NDJSONType+"; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	req := plan.req
	trailer := BatchTrailer{Summary: true}
	rows := 0
	emit := func(row BatchRow) bool {
		rows++
		if rows%256 == 0 && flusher != nil {
			flusher.Flush()
		}
		return enc.Encode(row) == nil
	}
	// Raw sample rows dominate large streams; they bypass the reflecting
	// encoder for a pooled append buffer (identical bytes, no per-row
	// BatchRow pointer fields).
	buf := getRowBuf()
	defer putRowBuf(buf)
	emitSample := func(selector int, device, quantity string, at time.Time, v float64) bool {
		rows++
		if rows%256 == 0 && flusher != nil {
			flusher.Flush()
		}
		buf.b = appendBatchSampleRow(buf.b[:0], selector, device, quantity, at, v)
		_, err := w.Write(buf.b)
		return err == nil
	}
	for i, sel := range req.Selectors {
		keys := s.resolveSelector(sel)
		if len(keys) == 0 {
			if !emit(BatchRow{Selector: i, Error: "no matching series"}) {
				return
			}
			continue
		}
		for _, key := range keys {
			row := BatchRow{Selector: i, Device: key.Device, Quantity: key.Quantity}
			switch {
			case plan.window > 0:
				buckets, err := s.store.Downsample(key, req.From, req.To, plan.window)
				if err != nil {
					if !emit(BatchRow{Selector: i, Error: err.Error()}) {
						return
					}
					continue
				}
				trailer.Series++
				for bi := range buckets {
					trailer.Samples += buckets[bi].Count
					row.Bucket = &buckets[bi]
					if !emit(row) {
						return
					}
				}
			case req.Aggregate:
				agg, err := s.store.Aggregate(key, req.From, req.To)
				if err != nil {
					if !emit(BatchRow{Selector: i, Error: err.Error()}) {
						return
					}
					continue
				}
				trailer.Series++
				trailer.Samples += agg.Count
				row.Aggregate = aggregateResponse(key, agg)
				if !emit(row) {
					return
				}
			default:
				it := s.store.Iter(key, req.From, req.To, 0)
				n := 0
				for n < plan.limit {
					smp, ok := it.Next()
					if !ok {
						break
					}
					n++
					if !emitSample(i, key.Device, key.Quantity, smp.At, smp.Value) {
						return
					}
				}
				if err := it.Err(); err != nil {
					if !emit(BatchRow{Selector: i, Error: err.Error()}) {
						return
					}
					continue
				}
				trailer.Series++
				trailer.Samples += n
				if n == plan.limit {
					if _, more := it.Next(); more {
						if !emit(BatchRow{Selector: i, Device: key.Device, Quantity: key.Quantity, Truncated: true}) {
							return
						}
					}
				}
			}
		}
	}
	_ = enc.Encode(trailer)
	if flusher != nil {
		flusher.Flush()
	}
}
