package measuredb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/dataformat"
	"repro/internal/tsdb"
)

// fillSeries ingests n samples, one per minute from t0, for a device.
func fillSeries(t *testing.T, s *Service, device string, quantity dataformat.Quantity, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		m := dataformat.Measurement{
			Source: "http://devproxy/", Device: device, Quantity: quantity,
			Unit: dataformat.Celsius, Value: float64(i),
			Timestamp: t0.Add(time.Duration(i) * time.Minute),
		}
		if err := s.Ingest(&m); err != nil {
			t.Fatal(err)
		}
	}
}

// getJSON fetches a URL and decodes the JSON body into out, returning
// the status code.
func getJSON(t *testing.T, rawURL string, out any) int {
	t.Helper()
	rsp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	body, err := io.ReadAll(rsp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && rsp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("undecodable body %q: %v", body, err)
		}
	}
	return rsp.StatusCode
}

const v2Device = "urn:district:turin/building:b01/device:t-1"

func samplesURL(base, device, quantity, query string) string {
	u := base + "/v2/series/" + url.PathEscape(device) + "/" + url.PathEscape(quantity) + "/samples"
	if query != "" {
		u += "?" + query
	}
	return u
}

func TestV2SamplesCursorRoundTrip(t *testing.T) {
	s, ts := newTestServer(t)
	fillSeries(t, s, v2Device, dataformat.Temperature, 95)

	var got []Point
	cursor := ""
	pages := 0
	for {
		q := "limit=20"
		if cursor != "" {
			q += "&cursor=" + url.QueryEscape(cursor)
		}
		var page SamplesPage
		if code := getJSON(t, samplesURL(ts.URL, v2Device, "temperature", q), &page); code != http.StatusOK {
			t.Fatalf("page %d = %d", pages, code)
		}
		if page.Device != v2Device || page.Quantity != "temperature" {
			t.Fatalf("page identity = %q %q", page.Device, page.Quantity)
		}
		got = append(got, page.Samples...)
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(got) != 95 || pages != 5 {
		t.Fatalf("depaginated %d samples over %d pages, want 95 over 5", len(got), pages)
	}
	for i, p := range got {
		if p.Value != float64(i) {
			t.Fatalf("sample %d = %v (gap or duplicate)", i, p.Value)
		}
	}
}

func TestV2SamplesEmptyAndBoundaryPages(t *testing.T) {
	s, ts := newTestServer(t)
	fillSeries(t, s, v2Device, dataformat.Temperature, 40)

	// Exact boundary: limit == range size must finish in one page with
	// no cursor.
	var page SamplesPage
	if code := getJSON(t, samplesURL(ts.URL, v2Device, "temperature", "limit=40"), &page); code != http.StatusOK {
		t.Fatalf("boundary page = %d", code)
	}
	if page.Count != 40 || page.NextCursor != "" {
		t.Fatalf("boundary page: count %d cursor %q", page.Count, page.NextCursor)
	}

	// An empty window inside a stored series: empty page, no cursor.
	q := fmt.Sprintf("from=%s&to=%s",
		url.QueryEscape(t0.Add(24*time.Hour).Format(time.RFC3339)),
		url.QueryEscape(t0.Add(25*time.Hour).Format(time.RFC3339)))
	if code := getJSON(t, samplesURL(ts.URL, v2Device, "temperature", q), &page); code != http.StatusOK {
		t.Fatalf("empty window = %d", code)
	}
	if page.Count != 0 || len(page.Samples) != 0 || page.NextCursor != "" {
		t.Fatalf("empty window page = %+v", page)
	}

	// Unknown series and garbage cursors map to proper envelopes.
	if code := getJSON(t, samplesURL(ts.URL, "urn:nope", "temperature", ""), nil); code != http.StatusNotFound {
		t.Fatalf("unknown series = %d", code)
	}
	if code := getJSON(t, samplesURL(ts.URL, v2Device, "temperature", "cursor=%21garbage"), nil); code != http.StatusBadRequest {
		t.Fatalf("garbage cursor = %d", code)
	}
}

func TestV2SamplesCursorSurvivesStoreMutation(t *testing.T) {
	s, ts := newTestServer(t)
	fillSeries(t, s, v2Device, dataformat.Temperature, 50)

	var first SamplesPage
	if code := getJSON(t, samplesURL(ts.URL, v2Device, "temperature", "limit=20"), &first); code != http.StatusOK {
		t.Fatalf("first page = %d", code)
	}
	if first.NextCursor == "" {
		t.Fatal("first page has no cursor")
	}

	// Mutate the store between pages: 10 more samples land in range.
	for i := 50; i < 60; i++ {
		m := dataformat.Measurement{
			Source: "x", Device: v2Device, Quantity: dataformat.Temperature,
			Unit: dataformat.Celsius, Value: float64(i),
			Timestamp: t0.Add(time.Duration(i) * time.Minute),
		}
		_ = s.Ingest(&m)
	}

	got := append([]Point{}, first.Samples...)
	cursor := first.NextCursor
	for cursor != "" {
		var page SamplesPage
		q := "limit=20&cursor=" + url.QueryEscape(cursor)
		if code := getJSON(t, samplesURL(ts.URL, v2Device, "temperature", q), &page); code != http.StatusOK {
			t.Fatalf("resumed page = %d", code)
		}
		got = append(got, page.Samples...)
		cursor = page.NextCursor
	}
	if len(got) != 60 {
		t.Fatalf("mutated walk returned %d samples, want 60", len(got))
	}
	for i, p := range got {
		if p.Value != float64(i) {
			t.Fatalf("sample %d = %v", i, p.Value)
		}
	}
}

func TestV2SeriesCatalogPaginationAndGlobs(t *testing.T) {
	s, ts := newTestServer(t)
	for b := 0; b < 3; b++ {
		device := fmt.Sprintf("urn:district:turin/building:b%02d/device:d0", b)
		fillSeries(t, s, device, dataformat.Temperature, 2)
		fillSeries(t, s, device, dataformat.Humidity, 2)
	}

	var all []SeriesInfo
	cursor := ""
	for {
		u := ts.URL + "/v2/series?limit=4"
		if cursor != "" {
			u += "&cursor=" + url.QueryEscape(cursor)
		}
		var page SeriesPage
		if code := getJSON(t, u, &page); code != http.StatusOK {
			t.Fatalf("series page = %d", code)
		}
		all = append(all, page.Series...)
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(all) != 6 {
		t.Fatalf("catalog = %d series, want 6", len(all))
	}

	var filtered SeriesPage
	u := ts.URL + "/v2/series?device=" + url.QueryEscape("urn:district:turin/building:b01/*") + "&quantity=temperature"
	if code := getJSON(t, u, &filtered); code != http.StatusOK {
		t.Fatalf("filtered catalog = %d", code)
	}
	if filtered.Count != 1 || filtered.Series[0].Device != "urn:district:turin/building:b01/device:d0" {
		t.Fatalf("filtered catalog = %+v", filtered)
	}
}

func TestV2LatestAndAggregate(t *testing.T) {
	s, ts := newTestServer(t)
	fillSeries(t, s, v2Device, dataformat.Temperature, 10)

	base := ts.URL + "/v2/series/" + url.PathEscape(v2Device) + "/temperature"
	rsp, err := http.Get(base + "/latest")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rsp.Body)
	rsp.Body.Close()
	doc, err := dataformat.Decode(body, dataformat.JSON)
	if err != nil || doc.Measurement == nil {
		t.Fatalf("latest doc: %v (%q)", err, body)
	}
	if doc.Measurement.Value != 9 {
		t.Fatalf("latest = %v", doc.Measurement.Value)
	}

	var agg AggregateResponse
	if code := getJSON(t, base+"/aggregate", &agg); code != http.StatusOK {
		t.Fatalf("aggregate = %d", code)
	}
	if agg.Count != 10 || agg.Min != 0 || agg.Max != 9 || agg.Mean != 4.5 {
		t.Fatalf("aggregate = %+v", agg)
	}

	var buckets []tsdb.Bucket
	if code := getJSON(t, base+"/aggregate?window=5m", &buckets); code != http.StatusOK {
		t.Fatalf("windowed aggregate = %d", code)
	}
	if len(buckets) != 2 || buckets[0].Count != 5 || buckets[1].Count != 5 {
		t.Fatalf("buckets = %+v", buckets)
	}
}

func TestV2BatchQueryMixedHitMiss(t *testing.T) {
	s, ts := newTestServer(t)
	for b := 0; b < 3; b++ {
		fillSeries(t, s, fmt.Sprintf("urn:district:turin/building:b%02d/device:d0", b), dataformat.Temperature, 20)
	}

	req := BatchQuery{
		Selectors: []SeriesSelector{
			{Device: "urn:district:turin/building:b00/device:d0", Quantity: "temperature"}, // exact hit
			{Device: "urn:district:turin/*", Quantity: "temperature"},                      // glob, 3 series
			{Device: "urn:district:turin/building:b00/device:d0"},                          // all quantities
			{Device: "urn:district:elsewhere/*"},                                           // miss
		},
		Limit: 5,
	}
	body, _ := json.Marshal(req)
	rsp, err := http.Post(ts.URL+"/v2/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(rsp.Body)
		t.Fatalf("batch = %d: %s", rsp.StatusCode, raw)
	}
	var out BatchResponse
	if err := json.NewDecoder(rsp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("results = %d", len(out.Results))
	}
	if n := len(out.Results[0].Series); n != 1 || out.Results[0].Error != "" {
		t.Fatalf("exact hit = %+v", out.Results[0])
	}
	if !out.Results[0].Series[0].Truncated || len(out.Results[0].Series[0].Samples) != 5 {
		t.Fatalf("limit pushdown = %+v", out.Results[0].Series[0])
	}
	if n := len(out.Results[1].Series); n != 3 {
		t.Fatalf("glob selector matched %d series", n)
	}
	if n := len(out.Results[2].Series); n != 1 {
		t.Fatalf("all-quantities selector matched %d series", n)
	}
	if out.Results[3].Error == "" || len(out.Results[3].Series) != 0 {
		t.Fatalf("miss selector = %+v", out.Results[3])
	}
	if out.Series != 5 || out.Samples != 25 {
		t.Fatalf("totals = %d series, %d samples", out.Series, out.Samples)
	}
}

func TestV2BatchQueryAggregatePushdownManySelectors(t *testing.T) {
	s, ts := newTestServer(t)
	const devices = 120
	for d := 0; d < devices; d++ {
		fillSeries(t, s, fmt.Sprintf("urn:district:turin/building:b%03d/device:d0", d), dataformat.Temperature, 10)
	}
	req := BatchQuery{Aggregate: true}
	for d := 0; d < devices; d++ {
		req.Selectors = append(req.Selectors, SeriesSelector{
			Device:   fmt.Sprintf("urn:district:turin/building:b%03d/device:d0", d),
			Quantity: "temperature",
		})
	}
	body, _ := json.Marshal(req)
	rsp, err := http.Post(ts.URL+"/v2/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	var out BatchResponse
	if err := json.NewDecoder(rsp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != devices || out.Series != devices {
		t.Fatalf("resolved %d results, %d series; want %d each", len(out.Results), out.Series, devices)
	}
	for i, res := range out.Results {
		if res.Error != "" || len(res.Series) != 1 || res.Series[0].Aggregate == nil {
			t.Fatalf("selector %d = %+v", i, res)
		}
		if agg := res.Series[0].Aggregate; agg.Count != 10 || agg.Mean != 4.5 {
			t.Fatalf("selector %d aggregate = %+v", i, agg)
		}
		if len(res.Series[0].Samples) != 0 {
			t.Fatalf("selector %d shipped raw samples despite pushdown", i)
		}
	}
	if out.Samples != devices*10 {
		t.Fatalf("aggregated sample total = %d", out.Samples)
	}
}

func TestV2BatchQueryWindowPushdownAndCaps(t *testing.T) {
	s, ts := newTestServer(t)
	fillSeries(t, s, v2Device, dataformat.Temperature, 30)

	req := BatchQuery{
		Selectors: []SeriesSelector{{Device: v2Device, Quantity: "temperature"}},
		Window:    "10m",
	}
	body, _ := json.Marshal(req)
	rsp, err := http.Post(ts.URL+"/v2/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var out BatchResponse
	if err := json.NewDecoder(rsp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if len(out.Results) != 1 || len(out.Results[0].Series) != 1 {
		t.Fatalf("window batch = %+v", out)
	}
	if n := len(out.Results[0].Series[0].Buckets); n != 3 {
		t.Fatalf("buckets = %d, want 3", n)
	}

	// Empty and oversized batches draw 400 envelopes.
	for _, bad := range []BatchQuery{
		{},
		{Selectors: make([]SeriesSelector, maxBatchSelectors+1)},
		{Selectors: []SeriesSelector{{Device: "x"}}, Window: "bogus"},
	} {
		body, _ := json.Marshal(bad)
		rsp, err := http.Post(ts.URL+"/v2/query", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		rsp.Body.Close()
		if rsp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad batch accepted: %d", rsp.StatusCode)
		}
	}
}

func TestV2SamplesNDJSONGolden(t *testing.T) {
	s, ts := newTestServer(t)
	fillSeries(t, s, v2Device, dataformat.Temperature, 3)

	req, _ := http.NewRequest(http.MethodGet, samplesURL(ts.URL, v2Device, "temperature", ""), nil)
	req.Header.Set("Accept", NDJSONType)
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if ct := rsp.Header.Get("Content-Type"); !strings.HasPrefix(ct, NDJSONType) {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(rsp.Body)
	want := `{"device":"urn:district:turin/building:b01/device:t-1","quantity":"temperature","at":"2015-03-09T10:00:00Z","value":0}
{"device":"urn:district:turin/building:b01/device:t-1","quantity":"temperature","at":"2015-03-09T10:01:00Z","value":1}
{"device":"urn:district:turin/building:b01/device:t-1","quantity":"temperature","at":"2015-03-09T10:02:00Z","value":2}
`
	if string(body) != want {
		t.Fatalf("ndjson golden mismatch:\ngot:  %q\nwant: %q", body, want)
	}

	// The encoding query parameter selects NDJSON without an Accept header.
	rsp2, err := http.Get(samplesURL(ts.URL, v2Device, "temperature", "encoding=ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(rsp2.Body)
	rsp2.Body.Close()
	if string(body2) != want {
		t.Fatalf("encoding=ndjson mismatch: %q", body2)
	}
}

func TestV2SamplesCSVGolden(t *testing.T) {
	s, ts := newTestServer(t)
	fillSeries(t, s, v2Device, dataformat.Temperature, 2)

	rsp, err := http.Get(samplesURL(ts.URL, v2Device, "temperature", "encoding=csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if ct := rsp.Header.Get("Content-Type"); !strings.HasPrefix(ct, CSVType) {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(rsp.Body)
	want := "device,quantity,at,value\n" +
		"urn:district:turin/building:b01/device:t-1,temperature,2015-03-09T10:00:00Z,0\n" +
		"urn:district:turin/building:b01/device:t-1,temperature,2015-03-09T10:01:00Z,1\n"
	if string(body) != want {
		t.Fatalf("csv golden mismatch:\ngot:  %q\nwant: %q", body, want)
	}
}

func TestV2RateLimitTiers(t *testing.T) {
	readRL := api.NewRateLimiter(1000, 2)
	batchRL := api.NewRateLimiter(1000, 1)
	s := New(Options{ReadLimiter: readRL, BatchLimiter: batchRL})
	defer s.Close()
	fillSeries(t, s, v2Device, dataformat.Temperature, 5)
	h := s.Handler()

	do := func(method, target, body string) int {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, _ := http.NewRequest(method, target, rd)
		req.RemoteAddr = "10.1.2.3:999"
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}

	// The batch tier (burst 1) trips independently of the read tier.
	batchBody := `{"selectors":[{"device":"` + v2Device + `","quantity":"temperature"}]}`
	if code := do(http.MethodPost, "/v2/query", batchBody); code != http.StatusOK {
		t.Fatalf("first batch = %d", code)
	}
	if code := do(http.MethodPost, "/v2/query", batchBody); code != http.StatusTooManyRequests {
		t.Fatalf("second batch = %d, want 429", code)
	}
	target := "/v2/series/" + url.PathEscape(v2Device) + "/temperature/samples"
	if code := do(http.MethodGet, target, ""); code != http.StatusOK {
		t.Fatalf("read after batch trip = %d (tiers not independent)", code)
	}

	// Tier stats surface in /v1/metrics.
	req, _ := http.NewRequest(http.MethodGet, "/v1/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var snap api.MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	tiers := map[string]api.LimiterStats{}
	for _, l := range snap.Limiters {
		tiers[l.Tier] = l
	}
	if tiers["batch"].Rejected != 1 || tiers["batch"].Allowed != 1 {
		t.Fatalf("batch tier stats = %+v", tiers["batch"])
	}
	if tiers["read"].Allowed == 0 || tiers["read"].Rejected != 0 {
		t.Fatalf("read tier stats = %+v", tiers["read"])
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "anything", true},
		{"urn:district:turin/*", "urn:district:turin/building:b01/device:d0", true},
		{"urn:district:turin/*", "urn:district:milan/building:b01", false},
		{"*d0", "urn:x/device:d0", true},
		{"a*c*e", "abcde", true},
		{"a*c*e", "abde", false},
		{"", "", true},
		{"*", "", true},
		// A literal '*' in the subject must not swallow the pattern's
		// wildcard (regression: the literal case used to win the tie).
		{"a*", "a*b", true},
		{"*abc", "*Zabc", true},
		{"a*b", "a*", false},
	}
	for _, c := range cases {
		if got := globMatch(c.pattern, c.s); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}
