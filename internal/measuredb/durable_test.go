package measuredb

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/dataformat"
	"repro/internal/wal"
)

// openDurableServer builds a durable service over dir, plus its HTTP
// front. close=false leaves the service un-Closed — the in-process
// stand-in for a SIGKILL (everything acked was already write(2)-flushed
// or fsynced; nothing graceful runs).
func openDurableServer(t *testing.T, dir string) (*Service, *httptest.Server) {
	t.Helper()
	s, err := Open(Options{DataDir: dir, Fsync: wal.FsyncAlways, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts
}

func TestDurableIngestAndDedupSurviveKill(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := openDurableServer(t, dir)
	defer ts1.Close() // the service itself is deliberately NOT closed

	body := `{"rows":[
		{"device":"` + ingestDevice + `","quantity":"temperature","at":"2015-03-09T10:00:00Z","value":20.5},
		{"device":"` + ingestDevice + `","quantity":"temperature","at":"2015-03-09T10:01:00Z","value":21}
	]}`
	code, rsp := postIngest(t, ts1.URL, "application/json", "crash-key-1", body)
	if code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", code, rsp)
	}
	preSamples := s1.Store().Stats().Samples
	if preSamples != 2 {
		t.Fatalf("pre-kill samples = %d", preSamples)
	}

	// "Restart": a second service over the same data dir.
	s2, ts2 := openDurableServer(t, dir)
	defer func() { ts2.Close(); s2.Close() }()
	if got := s2.Store().Stats().Samples; got != preSamples {
		t.Fatalf("recovered %d samples, want %d", got, preSamples)
	}

	// The same keyed batch replays from the persisted window instead of
	// double-appending.
	code, rsp = postIngest(t, ts2.URL, "application/json", "crash-key-1", body)
	if code != http.StatusOK {
		t.Fatalf("retry = %d: %s", code, rsp)
	}
	var res IngestResult
	if err := json.Unmarshal([]byte(rsp), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Replayed || res.Accepted != 2 {
		t.Fatalf("retry result = %+v, want replayed accepted=2", res)
	}
	if got := s2.Store().Stats().Samples; got != preSamples {
		t.Fatalf("retry duplicated rows: %d samples, want %d", got, preSamples)
	}

	// A fresh key still executes normally on the recovered service.
	code, rsp = postIngest(t, ts2.URL, "application/json", "crash-key-2", body)
	if code != http.StatusOK {
		t.Fatalf("fresh ingest = %d: %s", code, rsp)
	}
	if got := s2.Store().Stats().Samples; got != preSamples+2 {
		t.Fatalf("fresh ingest landed %d samples, want %d", got, preSamples+2)
	}
}

func TestDurableV1AppendSharesWritePath(t *testing.T) {
	// /v1/append is a forwarder onto the v2 staging path: with a durable
	// engine its rows are journaled exactly like /v2/ingest rows, and
	// the response carries the Deprecation pointer at /v2/ingest.
	dir := t.TempDir()
	_, ts1 := openDurableServer(t, dir)
	defer ts1.Close()

	doc := dataformat.NewMeasurementDoc(dataformat.Measurement{
		Source:    "t",
		Device:    ingestDevice,
		Quantity:  dataformat.Temperature,
		Unit:      "Cel",
		Value:     19,
		Timestamp: time.Date(2015, 3, 9, 10, 0, 0, 0, time.UTC),
	})
	body, err := doc.Encode(dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(ts1.URL+"/v1/append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("v1 append = %d", r.StatusCode)
	}
	if r.Header.Get("Deprecation") != "true" {
		t.Fatal("missing Deprecation header on /v1/append")
	}

	s2, ts2 := openDurableServer(t, dir)
	defer func() { ts2.Close(); s2.Close() }()
	if got := s2.Store().Stats().Samples; got != 1 {
		t.Fatalf("v1-appended row not recovered: %d samples", got)
	}
}

// TestDedupClaimTTL pins the regression from the never-completed-claim
// bug: a client that claims a key and dies mid-request (its handler
// never stores or abandons) must not park retries of that key forever —
// after the claim TTL, the next retry takes the claim over.
func TestDedupClaimTTL(t *testing.T) {
	d := newDedupWindow(0, 0)
	var clockMu sync.Mutex
	now := time.Now()
	d.now = func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return now }
	advance := func(dt time.Duration) { clockMu.Lock(); now = now.Add(dt); clockMu.Unlock() }
	ctx := context.Background()

	tok1, res, err := d.begin(ctx, "k")
	if tok1 == nil || res != nil || err != nil {
		t.Fatalf("claim = %v %v %v", tok1, res, err)
	}
	// tok1's owner dies: neither store nor abandon ever runs.

	// Within the TTL, a retry with a deadline waits and then errors.
	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, _, err := d.begin(cctx, "k"); err == nil {
		t.Fatal("retry inside claim TTL did not wait")
	}

	// Past the TTL the claim is handed over and the retry re-executes.
	advance(defaultClaimTTL + time.Second)
	tok2, res, err := d.begin(ctx, "k")
	if err != nil || res != nil || tok2 == nil {
		t.Fatalf("post-TTL begin = %v %v %v", tok2, res, err)
	}
	tok2.store(IngestResult{Accepted: 3})

	// The stolen claim's late outcome is discarded: tok1 settling must
	// not clobber the new owner's stored result (and must not panic on
	// the already-closed done channel).
	tok1.store(IngestResult{Accepted: 99})
	_, res, err = d.begin(ctx, "k")
	if err != nil || res == nil || res.Accepted != 3 || !res.Replayed {
		t.Fatalf("replay after takeover = %+v, %v", res, err)
	}

	// Waiters blocked on the dead claim wake up when it is stolen and
	// line up behind the new owner.
	tok3, _, _ := d.begin(ctx, "k2")
	_ = tok3 // dead owner again
	woken := make(chan *IngestResult, 1)
	go func() {
		_, res, err := d.begin(ctx, "k2")
		if err != nil {
			t.Errorf("waiter: %v", err)
		}
		woken <- res
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block
	advance(defaultClaimTTL + time.Second)
	tok4, res, err := d.begin(ctx, "k2") // steals
	if tok4 == nil || res != nil || err != nil {
		t.Fatalf("steal = %v %v %v", tok4, res, err)
	}
	tok4.store(IngestResult{Accepted: 5})
	select {
	case res := <-woken:
		if res == nil || res.Accepted != 5 {
			t.Fatalf("woken waiter got %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter stayed parked after the claim was stolen")
	}
}

func TestDedupClaimTTLDisabled(t *testing.T) {
	d := newDedupWindow(0, -1)
	now := time.Now()
	d.now = func() time.Time { return now }
	tok, _, _ := d.begin(context.Background(), "k")
	if tok == nil {
		t.Fatal("no claim")
	}
	// Well past any claim TTL but inside the idempotency window (the
	// whole entry expires with the window either way).
	now = now.Add(5 * time.Minute)
	cctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := d.begin(cctx, "k"); err == nil {
		t.Fatal("takeover happened with claimTTL disabled")
	}
}

func TestDedupWindowCompactsOnBoot(t *testing.T) {
	dir := t.TempDir()
	d := newDedupWindow(0, 0)
	if err := d.openLog(dir, wal.FsyncNone); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tok, _, _ := d.begin(context.Background(), string(rune('a'+i)))
		tok.store(IngestResult{Accepted: i})
	}
	d.close()

	d2 := newDedupWindow(0, 0)
	if err := d2.openLog(dir, wal.FsyncNone); err != nil {
		t.Fatal(err)
	}
	defer d2.close()
	_, res, err := d2.begin(context.Background(), "c")
	if err != nil || res == nil || res.Accepted != 2 || !res.Replayed {
		t.Fatalf("reloaded outcome = %+v, %v", res, err)
	}
	// An unknown key executes fresh.
	tok, res, _ := d2.begin(context.Background(), "zz")
	if tok == nil || res != nil {
		t.Fatalf("fresh key = %v %v", tok, res)
	}
	tok.abandon()
}
