package measuredb

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/tsdb"
)

// The node side of the measuredb cluster: a clustered node keeps a
// cached copy of the master-published shard map, refuses writes for
// shards it does not own — or that are frozen mid-handoff — with
// retryable 503 envelopes (the coordinator re-resolves the map and
// retries against the new owner), and serves the handoff plane:
//
//	GET  /v1/cluster/status                      per-shard ownership + sizes
//	POST /v1/cluster/shards/{shard}/freeze       stop writes, drain, fsync
//	GET  /v1/cluster/shards/{shard}/archive      stream the shard directory
//	POST /v1/cluster/shards/{shard}/restore      replay an archived shard
//	POST /v1/cluster/shards/{shard}/release      unfreeze (and wipe if moved)
//
// The handoff protocol (orchestrated by client.Cluster.Move) is
// freeze → archive → restore on the target → map flip on the master →
// release on the source. Exactly-once without store-level dedup holds
// because: rows rejected during the freeze were never journaled (the
// coordinator retries them against the new owner), the restore replays
// a byte-complete frozen directory, and release only wipes the source
// copy after re-resolving the map and seeing ownership gone.

// ClusterOptions attach a measuredb node to a cluster.
type ClusterOptions struct {
	// Master is the base URL publishing /v1/cluster/map.
	Master string
	// Self is this node's advertised base URL. Usually unknown until
	// Serve binds a port — call Service.SetClusterSelf then. Ownership
	// checks are self-aware only once the node knows its own address.
	Self string
	// Refresh is the shard-map cache TTL (0 = cluster.DefaultRefresh).
	Refresh time.Duration
	// Transport overrides the map-fetch transport (nil = default).
	Transport *api.Transport
}

// clusterNode is a Service's cluster state (nil on unclustered nodes).
type clusterNode struct {
	res  *cluster.Resolver
	self atomic.Value // string: advertised base URL ("" until known)

	// gate serializes write admission against a freeze: every write
	// request holds it in read mode from ownership check through engine
	// apply, and freeze flips the moving mark under the write lock — so
	// after freeze returns, no admitted-but-unapplied write can slip
	// into the shard behind the drain.
	gate sync.RWMutex

	mu     sync.Mutex
	moving map[int]bool

	staleRejects  atomic.Uint64
	movingRejects atomic.Uint64
	ownerRejects  atomic.Uint64
}

func newClusterNode(opts *ClusterOptions) *clusterNode {
	c := &clusterNode{
		res:    cluster.NewResolver(opts.Master, opts.Transport, opts.Refresh),
		moving: make(map[int]bool),
	}
	c.self.Store(opts.Self)
	return c
}

// selfURL returns the node's advertised base URL ("" until known).
func (c *clusterNode) selfURL() string {
	v, _ := c.self.Load().(string)
	return v
}

// isMoving reports whether a shard is frozen mid-handoff on this node.
func (c *clusterNode) isMoving(shard int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.moving[shard]
}

// SetClusterSelf records the node's advertised base URL once Serve has
// bound it; no-op on unclustered nodes.
func (s *Service) SetClusterSelf(base string) {
	if s.cnode != nil {
		s.cnode.self.Store(base)
	}
}

// registerClusterMetrics adds the node-side cluster instruments.
func (s *Service) registerClusterMetrics() {
	c := s.cnode
	s.reg.GaugeFunc("repro_cluster_map_epoch",
		"Epoch of the node's cached shard map (0 = not yet resolved).", nil,
		func() float64 { return float64(c.res.CachedEpoch()) })
	reject := func(reason string, v *atomic.Uint64) {
		s.reg.CounterFunc("repro_cluster_write_rejects_total",
			"Write requests rejected by the cluster ownership guard, by reason.",
			obs.Labels{"reason": reason},
			func() float64 { return float64(v.Load()) })
	}
	reject(cluster.CodeStaleEpoch, &c.staleRejects)
	reject(cluster.CodeShardMoving, &c.movingRejects)
	reject(cluster.CodeNotOwner, &c.ownerRejects)
}

// retryableClusterErr builds the 503 envelope carrying a cluster code;
// callers pair it with a Retry-After header so transports back off and
// re-resolve instead of hammering the stale owner.
func retryableClusterErr(code string, err error) error {
	return &api.Error{Status: http.StatusServiceUnavailable, Code: code, Err: err}
}

// writeClusterRetry writes a retryable rejection: Retry-After plus the
// standard envelope with the cluster code.
func writeClusterRetry(w http.ResponseWriter, r *http.Request, err error) {
	w.Header().Set("Retry-After", "1")
	api.WriteError(w, r, err)
}

// clusterEngine returns the sharded engine (cluster mode pins it).
func (s *Service) clusterEngine() *tsdb.Sharded { return s.store.(*tsdb.Sharded) }

// clusterCheckEpoch validates the request's X-Cluster-Epoch header
// against the node's map view. A request stamped newer than the cache
// triggers a refresh (that is how nodes learn of a flip without
// polling); one stamped older than the refreshed view is rejected as
// stale so the sender re-resolves.
func (s *Service) clusterCheckEpoch(r *http.Request) error {
	hdr := r.Header.Get(cluster.EpochHeader)
	if hdr == "" {
		return nil // unstamped legacy writer: ownership check still applies
	}
	e, err := strconv.ParseUint(hdr, 10, 64)
	if err != nil {
		return api.BadRequest(fmt.Errorf("bad %s header %q", cluster.EpochHeader, hdr))
	}
	m, err := s.cnode.res.EnsureEpoch(r.Context(), e)
	if err != nil {
		return nil // master unreachable: admit on the cached view below
	}
	if e < m.Epoch {
		s.cnode.staleRejects.Add(1)
		return retryableClusterErr(cluster.CodeStaleEpoch,
			fmt.Errorf("request resolved map epoch %d, node holds %d; re-resolve and retry", e, m.Epoch))
	}
	return nil
}

// clusterCheckDevice enforces shard ownership for one device. Caller
// holds the gate in read mode.
func (s *Service) clusterCheckDevice(device string) error {
	c := s.cnode
	shard := s.clusterEngine().ShardFor(device)
	if c.isMoving(shard) {
		c.movingRejects.Add(1)
		return retryableClusterErr(cluster.CodeShardMoving,
			fmt.Errorf("shard %d is mid-handoff on this node; retry against the new owner", shard))
	}
	if m, ok := c.res.Cached(); ok {
		if self := c.selfURL(); self != "" && m.Owner(shard) != self {
			c.ownerRejects.Add(1)
			return retryableClusterErr(cluster.CodeNotOwner,
				fmt.Errorf("shard %d is owned by %s (map epoch %d)", shard, m.Owner(shard), m.Epoch))
		}
	}
	return nil
}

// clusterOwnsDevice is the bus-path guard: broadcast middleware traffic
// reaches every node, and only the owner may store a row — anything
// else would double-count it across the cluster. Fire-and-forget rows
// addressed to a frozen shard are dropped too (the bus has no retry
// channel; the acked /v2 plane is the loss-free path).
func (s *Service) clusterOwnsDevice(device string) bool {
	c := s.cnode
	shard := s.clusterEngine().ShardFor(device)
	if c.isMoving(shard) {
		c.movingRejects.Add(1)
		return false
	}
	m, ok := c.res.Cached()
	if !ok {
		return true // no map yet: single-node bring-up
	}
	self := c.selfURL()
	if self == "" || m.Owner(shard) == self {
		return true
	}
	c.ownerRejects.Add(1)
	return false
}

// clusterIngest is the clustered body of POST /v2/ingest. Unlike the
// single-node path it buffers the whole request before applying
// anything: a request addressed to a frozen or foreign shard must be
// rejected BEFORE any row reaches the WAL, otherwise the coordinator's
// retry against the new owner would duplicate the prefix. tok is the
// request's idempotency claim (abandoned by the caller's defer on
// rejection, so the retry re-executes).
func (s *Service) clusterIngest(w http.ResponseWriter, r *http.Request, tok *dedupToken, body io.Reader, ndjson bool) {
	sc := newPointScanner(body)
	defer sc.release()
	var pts []Point
	var malformed string
	if ndjson {
		var p Point
		for {
			if err := sc.next(&p); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				// Same semantics as the streaming path: the malformed line
				// is reported at its row index, rows before it stand.
				malformed = "malformed row: " + err.Error()
				break
			}
			sc.pts = append(sc.pts, p)
		}
		pts = sc.pts
	} else {
		var err error
		if pts, err = sc.decodeBatch("rows"); err != nil {
			api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad request body: %v", err)))
			return
		}
		if len(pts) == 0 {
			api.WriteError(w, r, api.BadRequest(errors.New("empty rows")))
			return
		}
	}
	if err := s.clusterCheckEpoch(r); err != nil {
		writeClusterRetry(w, r, err)
		return
	}

	c := s.cnode
	c.gate.RLock()
	defer c.gate.RUnlock()
	for i := range pts {
		if pts[i].Device == "" {
			continue // the ingester rejects it per-row below
		}
		if err := s.clusterCheckDevice(pts[i].Device); err != nil {
			writeClusterRetry(w, r, err)
			return
		}
	}
	g := s.newIngester(obs.StagesFrom(r.Context()))
	for _, p := range pts {
		g.add(p)
	}
	if malformed != "" {
		g.reject(g.next, malformed)
	}
	res := g.finish()
	tok.store(res)
	api.WriteJSON(w, http.StatusOK, res)
}

// clusterAdmitKey is the PUT /v2/.../samples guard: one path-named
// device, checked (and held) under the gate by the caller.
func (s *Service) clusterAdmitKey(w http.ResponseWriter, r *http.Request, device string) bool {
	if err := s.clusterCheckEpoch(r); err != nil {
		writeClusterRetry(w, r, err)
		return false
	}
	if err := s.clusterCheckDevice(device); err != nil {
		writeClusterRetry(w, r, err)
		return false
	}
	return true
}

// ---------------------------------------------------------------------
// Handoff endpoints
// ---------------------------------------------------------------------

// mountCluster registers the node-side cluster plane (clustered nodes
// only).
func (s *Service) mountCluster(srv *api.Server) {
	srv.HandleFunc(http.MethodGet, "/cluster/status", s.clusterStatus)
	srv.HandleFunc(http.MethodPost, "/cluster/shards/{shard}/freeze", s.clusterFreeze)
	srv.HandleFunc(http.MethodGet, "/cluster/shards/{shard}/archive", s.clusterArchive)
	srv.HandleFunc(http.MethodPost, "/cluster/shards/{shard}/restore", s.clusterRestore)
	srv.HandleFunc(http.MethodPost, "/cluster/shards/{shard}/release", s.clusterRelease)
}

// ClusterShardStatus is one shard's slice of a node status report.
type ClusterShardStatus struct {
	tsdb.ShardStatus
	Owned     bool  `json:"owned"`
	Moving    bool  `json:"moving,omitempty"`
	DiskBytes int64 `json:"disk_bytes,omitempty"`
}

// ClusterNodeStatus is the GET /v1/cluster/status body.
type ClusterNodeStatus struct {
	Self   string               `json:"self,omitempty"`
	Epoch  uint64               `json:"epoch"`
	Shards []ClusterShardStatus `json:"shards"`
}

// clusterStatus reports the node's map view and per-shard counters —
// the per-node half of `districtctl cluster status`.
func (s *Service) clusterStatus(w http.ResponseWriter, r *http.Request) {
	sh := s.clusterEngine()
	c := s.cnode
	m, _ := c.res.Get(r.Context())
	self := c.selfURL()
	out := ClusterNodeStatus{Self: self, Epoch: m.Epoch}
	for i := 0; i < sh.NumShards(); i++ {
		st := ClusterShardStatus{
			ShardStatus: sh.ShardStatus(i),
			Owned:       self != "" && m.Owner(i) == self,
			Moving:      c.isMoving(i),
		}
		if st.Dir != "" {
			st.DiskBytes = dirBytes(st.Dir)
		}
		out.Shards = append(out.Shards, st)
	}
	api.WriteJSON(w, http.StatusOK, out)
}

// dirBytes sums the regular files directly inside dir (shard
// directories are flat).
func dirBytes(dir string) int64 {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var n int64
	for _, e := range ents {
		if info, err := e.Info(); err == nil && info.Mode().IsRegular() {
			n += info.Size()
		}
	}
	return n
}

// clusterShardArg parses the {shard} path parameter against the engine.
func (s *Service) clusterShardArg(w http.ResponseWriter, r *http.Request) (*tsdb.Sharded, int, bool) {
	sh := s.clusterEngine()
	i, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || i < 0 || i >= sh.NumShards() {
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad shard %q (engine has %d)", r.PathValue("shard"), sh.NumShards())))
		return nil, 0, false
	}
	return sh, i, true
}

// clusterFreeze stops writes into one shard and drains it: the moving
// mark is flipped under the gate's write lock (waiting out every
// admitted in-flight write), the queue flushes, and the WAL fsyncs —
// after the response the shard directory is byte-complete and no new
// row can enter it.
func (s *Service) clusterFreeze(w http.ResponseWriter, r *http.Request) {
	sh, i, ok := s.clusterShardArg(w, r)
	if !ok {
		return
	}
	c := s.cnode
	c.gate.Lock()
	c.mu.Lock()
	c.moving[i] = true
	c.mu.Unlock()
	c.gate.Unlock()
	if err := sh.SyncShard(i); err != nil {
		api.WriteError(w, r, api.Internal(fmt.Errorf("sync shard %d: %w", i, err)))
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{"shard": i, "frozen": true})
}

// clusterRelease ends a handoff on the source node. It re-resolves the
// map first: if this node still owns the shard the move was aborted and
// the data stays; if ownership has flipped away, the local copy is
// wiped. Either way the shard unfreezes.
func (s *Service) clusterRelease(w http.ResponseWriter, r *http.Request) {
	sh, i, ok := s.clusterShardArg(w, r)
	if !ok {
		return
	}
	c := s.cnode
	stillOwner := true // unreachable master or unknown self: keep the data
	if m, err := c.res.Refresh(r.Context()); err == nil {
		if self := c.selfURL(); self != "" {
			stillOwner = m.Owner(i) == self
		}
	}
	reset := false
	if !stillOwner {
		if err := sh.ResetShard(i); err != nil {
			api.WriteError(w, r, api.Internal(fmt.Errorf("reset shard %d: %w", i, err)))
			return
		}
		reset = true
	}
	c.mu.Lock()
	delete(c.moving, i)
	c.mu.Unlock()
	api.WriteJSON(w, http.StatusOK, map[string]any{"shard": i, "released": true, "reset": reset})
}

// archiveHeader leads a shard archive stream.
type archiveHeader struct {
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
}

// clusterArchive streams a frozen shard's directory: a JSON header
// frame, then one frame per file (uvarint name length, name, uvarint
// size, bytes), then a zero-length terminator. Requires the shard to be
// frozen — archiving a live WAL would race its writer.
func (s *Service) clusterArchive(w http.ResponseWriter, r *http.Request) {
	sh, i, ok := s.clusterShardArg(w, r)
	if !ok {
		return
	}
	if !s.cnode.isMoving(i) {
		api.WriteError(w, r, api.WithStatus(http.StatusConflict, fmt.Errorf("shard %d is not frozen", i)))
		return
	}
	dir := sh.ShardDir(i)
	if dir == "" {
		api.WriteError(w, r, api.WithStatus(http.StatusConflict, errors.New("in-memory engine has no shard directory to archive")))
		return
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		api.WriteError(w, r, api.Internal(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 1<<16)
	var num [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(num[:], v)
		_, err := bw.Write(num[:n])
		return err
	}
	hdr, _ := json.Marshal(archiveHeader{Shard: i, Shards: sh.NumShards()})
	if err := writeUvarint(uint64(len(hdr))); err != nil {
		return
	}
	if _, err := bw.Write(hdr); err != nil {
		return
	}
	for _, e := range ents {
		info, err := e.Info()
		if err != nil || !info.Mode().IsRegular() {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return // stream is torn; the restorer's frame parse fails loudly
		}
		err = func() error {
			defer f.Close() //lint:ignore closecheck read-only archive source; a close error cannot corrupt the stream
			if err := writeUvarint(uint64(len(e.Name()))); err != nil {
				return err
			}
			if _, err := bw.WriteString(e.Name()); err != nil {
				return err
			}
			if err := writeUvarint(uint64(info.Size())); err != nil {
				return err
			}
			// The shard is frozen: the file cannot grow under the copy, so
			// the declared size is exact.
			_, err := io.CopyN(bw, f, info.Size())
			return err
		}()
		if err != nil {
			return
		}
	}
	if err := writeUvarint(0); err != nil {
		return
	}
	_ = bw.Flush()
}

// clusterRestore rebuilds one shard from an archive stream. The files
// land in a temp directory and are replayed through the engine's own
// write path (re-journaled under this node's WAL), after a ResetShard
// that makes a retried restore idempotent instead of double-applying.
func (s *Service) clusterRestore(w http.ResponseWriter, r *http.Request) {
	sh, i, ok := s.clusterShardArg(w, r)
	if !ok {
		return
	}
	br := bufio.NewReaderSize(r.Body, 1<<16)
	readFrame := func(limit uint64) ([]byte, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if n > limit {
			return nil, fmt.Errorf("frame of %d bytes exceeds limit %d", n, limit)
		}
		p := make([]byte, n)
		if _, err := io.ReadFull(br, p); err != nil {
			return nil, err
		}
		return p, nil
	}
	rawHdr, err := readFrame(1 << 12)
	if err != nil {
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad archive header: %v", err)))
		return
	}
	var hdr archiveHeader
	if err := json.Unmarshal(rawHdr, &hdr); err != nil {
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad archive header: %v", err)))
		return
	}
	if hdr.Shard != i || hdr.Shards != sh.NumShards() {
		api.WriteError(w, r, api.WithStatus(http.StatusConflict,
			fmt.Errorf("archive is shard %d of %d, this node expects shard %d of %d",
				hdr.Shard, hdr.Shards, i, sh.NumShards())))
		return
	}
	tmp, err := os.MkdirTemp("", "measuredb-restore-")
	if err != nil {
		api.WriteError(w, r, api.Internal(err))
		return
	}
	defer os.RemoveAll(tmp)
	for {
		name, err := readFrame(1 << 10)
		if err != nil {
			api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad archive frame: %v", err)))
			return
		}
		if len(name) == 0 {
			break // terminator
		}
		if strings.ContainsAny(string(name), "/\\") || string(name) == ".." {
			api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad archive file name %q", name)))
			return
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad archive frame: %v", err)))
			return
		}
		f, err := os.OpenFile(filepath.Join(tmp, string(name)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			api.WriteError(w, r, api.Internal(err))
			return
		}
		_, cerr := io.CopyN(f, br, int64(size))
		if err := f.Close(); cerr == nil {
			cerr = err
		}
		if cerr != nil {
			api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad archive file %q: %v", name, cerr)))
			return
		}
	}
	// Wipe first: a retried restore must replace, not append to, a
	// partial earlier attempt.
	if err := sh.ResetShard(i); err != nil {
		api.WriteError(w, r, api.Internal(fmt.Errorf("reset shard %d: %w", i, err)))
		return
	}
	// Compacted blocks ship wholesale: their raw-expired series exist
	// only as rollups, which have no row form to replay. The copy runs
	// before the row replay so the restored read view layers the WAL
	// tail over the blocks exactly like the source did. Block-less
	// archives skip the import so they restore onto any engine.
	if names, err := tsdb.BlockFiles(tmp); err != nil {
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad archive block manifest: %v", err)))
		return
	} else if len(names) > 0 {
		if err := sh.ImportShardBlocks(i, tmp); err != nil {
			api.WriteError(w, r, api.Internal(fmt.Errorf("import shard %d blocks: %w", i, err)))
			return
		}
	}
	rows := 0
	err = tsdb.ReadShardDir(tmp, func(batch []tsdb.Row) error {
		for _, row := range batch {
			if sh.ShardFor(row.Key.Device) != i {
				return fmt.Errorf("archived row for device %q hashes to shard %d, not %d",
					row.Key.Device, sh.ShardFor(row.Key.Device), i)
			}
		}
		if errs := sh.AppendBatch(batch); errs != nil {
			for _, e := range errs {
				if e != nil {
					return e
				}
			}
		}
		rows += len(batch)
		return nil
	})
	if err != nil {
		api.WriteError(w, r, api.Internal(fmt.Errorf("replay shard %d archive: %w", i, err)))
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{"shard": i, "rows": rows})
}
