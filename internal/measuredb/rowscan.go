package measuredb

import (
	"bytes"
	"io"
	"strconv"
	"sync"
	"time"
	"unicode/utf16"
	"unicode/utf8"
)

// The hand-rolled row scanner of the ingest plane: parses Point rows
// out of JSON and NDJSON request bodies without reflection,
// intermediate maps, or per-row buffers. encoding/json charges several
// allocations per row (the reflect-driven decode, the key strings, the
// time re-parse); the scanner reads rows in place over one pooled,
// refilling window and interns the device/quantity strings, so
// steady-state ingest of a known device fleet allocates nothing per
// row.
//
// Behavior is deliberately bit-compatible with encoding/json where it
// matters (the fuzz tests hold it to the oracle): case-insensitive key
// matching with Unicode simple folding, last-duplicate-wins, null as a
// no-op, U+FFFD replacement of invalid UTF-8 in strings, surrogate-pair
// decoding, the JSON number grammar (stricter than strconv), and
// timestamps fed to time.Time.UnmarshalJSON exactly as the decoder
// would (raw, still-escaped, quotes included). Only the error TEXT
// differs; every input that fails encoding/json fails the scanner and
// vice versa.

const (
	// minScanBuf is the initial refill window; it grows to hold the
	// largest single token seen, then is reused via the pool.
	minScanBuf = 8 << 10
	// maxScanDepth bounds unknown-field nesting, mirroring
	// encoding/json's 10000 limit.
	maxScanDepth = 10000
	// maxInterned caps the device/quantity intern table a pooled scanner
	// carries across requests; hostile high-cardinality bodies fall back
	// to plain allocation instead of growing it forever.
	maxInterned = 4096
)

// scanError is a malformed-input diagnosis. The message is composed
// lazily in Error(), so the hot parse loop never formats strings.
type scanError struct {
	msg string
	off int64
}

func (e *scanError) Error() string {
	return "invalid JSON: " + e.msg + " at byte " + strconv.FormatInt(e.off, 10)
}

// pointScanner scans Point rows from a JSON byte stream over a
// refilling window. Scanners are pooled; the intern table survives
// across requests on purpose.
type pointScanner struct {
	r     io.Reader
	buf   []byte
	pos   int   // next unread byte
	limit int   // end of valid data in buf
	eof   bool  // r is exhausted
	base  int64 // stream offset of buf[0] (error positions)

	interned map[string]string
	pts      []Point // pooled row slice for whole-body decodes
	scratch  []byte  // unescape spill buffer
	stack    []byte  // container stack for skipValue
}

var pointScannerPool = sync.Pool{New: func() any { return new(pointScanner) }}

// newPointScanner readies a pooled scanner over r.
func newPointScanner(r io.Reader) *pointScanner {
	sc := pointScannerPool.Get().(*pointScanner)
	sc.r = r
	sc.pos, sc.limit, sc.base = 0, 0, 0
	sc.eof = false
	if sc.buf == nil {
		sc.buf = make([]byte, minScanBuf)
	}
	if sc.interned == nil || len(sc.interned) > maxInterned {
		sc.interned = make(map[string]string, 64)
	}
	return sc
}

// release returns the scanner (and its row slice) to the pool. Rows
// returned by decodeBatch are invalid after this.
func (sc *pointScanner) release() {
	sc.r = nil
	sc.pts = sc.pts[:0]
	pointScannerPool.Put(sc)
}

// refill slides the live window to the front of the buffer and reads
// more input. keep is the earliest buffer offset the caller still
// references; its post-slide position is returned. io.EOF reports an
// exhausted source with no new bytes.
func (sc *pointScanner) refill(keep int) (int, error) {
	if sc.eof {
		return keep, io.EOF
	}
	if keep > 0 {
		copy(sc.buf, sc.buf[keep:sc.limit])
		sc.base += int64(keep)
		sc.pos -= keep
		sc.limit -= keep
		keep = 0
	}
	if sc.limit == len(sc.buf) {
		nb := make([]byte, len(sc.buf)*2)
		copy(nb, sc.buf[:sc.limit])
		sc.buf = nb
	}
	for {
		n, err := sc.r.Read(sc.buf[sc.limit:])
		sc.limit += n
		if err == io.EOF {
			sc.eof = true
			if n == 0 {
				return keep, io.EOF
			}
			return keep, nil
		}
		if err != nil {
			return keep, err
		}
		if n > 0 {
			return keep, nil
		}
	}
}

// cur returns the byte at the read position, refilling as needed;
// ok=false is a clean end of input.
func (sc *pointScanner) cur() (byte, bool, error) {
	for sc.pos >= sc.limit {
		if _, err := sc.refill(sc.pos); err != nil {
			if err == io.EOF {
				return 0, false, nil
			}
			return 0, false, err
		}
	}
	return sc.buf[sc.pos], true, nil
}

// skipWS advances over JSON whitespace.
func (sc *pointScanner) skipWS() error {
	for {
		for sc.pos < sc.limit {
			switch sc.buf[sc.pos] {
			case ' ', '\t', '\r', '\n':
				sc.pos++
			default:
				return nil
			}
		}
		if _, err := sc.refill(sc.pos); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

func (sc *pointScanner) errAt(msg string) error {
	return &scanError{msg: msg, off: sc.base + int64(sc.pos)}
}

// next parses the next NDJSON row into p. io.EOF reports a clean end
// of input; any other error poisons the rest of the stream.
//
// districtlint:hotpath
func (sc *pointScanner) next(p *Point) error {
	*p = Point{}
	if err := sc.skipWS(); err != nil {
		return err
	}
	c, ok, err := sc.cur()
	if err != nil {
		return err
	}
	if !ok {
		return io.EOF
	}
	if c == 'n' {
		// A bare null decodes as a zero row, as json.Decoder would.
		return sc.literal("null")
	}
	if c != '{' {
		return sc.errAt("expected '{'")
	}
	return sc.parsePoint(p)
}

// Field tags of the Point row shape.
const (
	fieldNone = iota
	fieldDevice
	fieldQuantity
	fieldAt
	fieldValue
)

var (
	nameDevice   = []byte("device")
	nameQuantity = []byte("quantity")
	nameAt       = []byte("at")
	nameValue    = []byte("value")
)

// fieldOf matches a decoded key to a Point field the way encoding/json
// does: exact match first, then case-insensitive with Unicode simple
// folding.
func fieldOf(key []byte) int {
	switch string(key) {
	case "device":
		return fieldDevice
	case "quantity":
		return fieldQuantity
	case "at":
		return fieldAt
	case "value":
		return fieldValue
	}
	switch {
	case bytes.EqualFold(key, nameDevice):
		return fieldDevice
	case bytes.EqualFold(key, nameQuantity):
		return fieldQuantity
	case bytes.EqualFold(key, nameAt):
		return fieldAt
	case bytes.EqualFold(key, nameValue):
		return fieldValue
	}
	return fieldNone
}

// parsePoint decodes one {...} row; the opening brace is at the read
// position. Duplicate keys overwrite (last wins), unknown keys are
// skipped after full syntax validation, null never touches a field.
//
// districtlint:hotpath
func (sc *pointScanner) parsePoint(p *Point) error {
	sc.pos++ // '{'
	if err := sc.skipWS(); err != nil {
		return err
	}
	c, ok, err := sc.cur()
	if err != nil {
		return err
	}
	if !ok {
		return sc.errAt("unexpected end of object")
	}
	if c == '}' {
		sc.pos++
		return nil
	}
	for {
		if err := sc.skipWS(); err != nil {
			return err
		}
		key, err := sc.scanString()
		if err != nil {
			return err
		}
		field := fieldOf(key)
		if err := sc.skipWS(); err != nil {
			return err
		}
		c, ok, err := sc.cur()
		if err != nil {
			return err
		}
		if !ok || c != ':' {
			return sc.errAt("expected ':'")
		}
		sc.pos++
		if err := sc.skipWS(); err != nil {
			return err
		}
		switch field {
		case fieldDevice:
			s, isNull, err := sc.stringValue()
			if err != nil {
				return err
			}
			if !isNull {
				p.Device = s
			}
		case fieldQuantity:
			s, isNull, err := sc.stringValue()
			if err != nil {
				return err
			}
			if !isNull {
				p.Quantity = s
			}
		case fieldAt:
			if err := sc.timeValue(&p.At); err != nil {
				return err
			}
		case fieldValue:
			v, isNull, err := sc.numberValue()
			if err != nil {
				return err
			}
			if !isNull {
				p.Value = v
			}
		default:
			if err := sc.skipValue(); err != nil {
				return err
			}
		}
		if err := sc.skipWS(); err != nil {
			return err
		}
		c, ok, err = sc.cur()
		if err != nil {
			return err
		}
		if !ok {
			return sc.errAt("unexpected end of object")
		}
		switch c {
		case ',':
			sc.pos++
		case '}':
			sc.pos++
			return nil
		default:
			return sc.errAt("expected ',' or '}'")
		}
	}
}

// scanStringRaw scans the quoted token at the read position, validating
// escapes and rejecting raw control characters, and returns the raw
// bytes including both quotes plus whether any escape occurred. The
// slice aliases the scan buffer: use it before the next scanner call.
func (sc *pointScanner) scanStringRaw() ([]byte, bool, error) {
	c, ok, err := sc.cur()
	if err != nil {
		return nil, false, err
	}
	if !ok || c != '"' {
		return nil, false, sc.errAt("expected string")
	}
	start := sc.pos
	i := sc.pos + 1
	hasEsc := false
	more := func() error {
		ns, err := sc.refill(start)
		if err != nil {
			return err
		}
		i -= start - ns
		start = ns
		return nil
	}
	for {
		if i >= sc.limit {
			if err := more(); err != nil {
				if err == io.EOF {
					sc.pos = sc.limit
					return nil, false, sc.errAt("unterminated string")
				}
				return nil, false, err
			}
			continue
		}
		switch c := sc.buf[i]; {
		case c == '"':
			raw := sc.buf[start : i+1]
			sc.pos = i + 1
			return raw, hasEsc, nil
		case c == '\\':
			hasEsc = true
			i++
			for i >= sc.limit {
				if err := more(); err != nil {
					if err == io.EOF {
						sc.pos = sc.limit
						return nil, false, sc.errAt("unterminated string")
					}
					return nil, false, err
				}
			}
			switch sc.buf[i] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				i++
			case 'u':
				i++
				for k := 0; k < 4; k++ {
					for i >= sc.limit {
						if err := more(); err != nil {
							if err == io.EOF {
								sc.pos = sc.limit
								return nil, false, sc.errAt("unterminated string")
							}
							return nil, false, err
						}
					}
					if !isHex(sc.buf[i]) {
						sc.pos = i
						return nil, false, sc.errAt("invalid \\u escape")
					}
					i++
				}
			default:
				sc.pos = i
				return nil, false, sc.errAt("invalid escape character")
			}
		case c < 0x20:
			sc.pos = i
			return nil, false, sc.errAt("control character in string")
		default:
			i++
		}
	}
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func hex4(b []byte) rune {
	var r rune
	for _, c := range b[:4] {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		default:
			r |= rune(c-'A') + 10
		}
	}
	return r
}

// scanString scans the string token at the read position and returns
// its decoded bytes (escapes applied, invalid UTF-8 replaced with
// U+FFFD, exactly as encoding/json decodes it). The slice aliases the
// scan buffer or the scanner's scratch — use it before the next call.
func (sc *pointScanner) scanString() ([]byte, error) {
	raw, hasEsc, err := sc.scanStringRaw()
	if err != nil {
		return nil, err
	}
	body := raw[1 : len(raw)-1]
	if !hasEsc {
		ascii := true
		for _, b := range body {
			if b >= utf8.RuneSelf {
				ascii = false
				break
			}
		}
		if ascii || utf8.Valid(body) {
			return body, nil
		}
	}
	return sc.unescape(body), nil
}

// unescape decodes body's (pre-validated) escapes into the scanner's
// scratch buffer, replacing invalid UTF-8 and unpaired surrogates with
// U+FFFD the way encoding/json's unquote does.
func (sc *pointScanner) unescape(body []byte) []byte {
	out := sc.scratch[:0]
	for i := 0; i < len(body); {
		c := body[i]
		switch {
		case c == '\\':
			i++
			switch body[i] {
			case '"':
				out = append(out, '"')
				i++
			case '\\':
				out = append(out, '\\')
				i++
			case '/':
				out = append(out, '/')
				i++
			case 'b':
				out = append(out, '\b')
				i++
			case 'f':
				out = append(out, '\f')
				i++
			case 'n':
				out = append(out, '\n')
				i++
			case 'r':
				out = append(out, '\r')
				i++
			case 't':
				out = append(out, '\t')
				i++
			case 'u':
				r := hex4(body[i+1:])
				i += 5
				if utf16.IsSurrogate(r) {
					var r2 rune = -1
					if i+5 < len(body) && body[i] == '\\' && body[i+1] == 'u' {
						r2 = hex4(body[i+2:])
					}
					if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
						out = utf8.AppendRune(out, dec)
						i += 6
						break
					}
					r = utf8.RuneError
				}
				out = utf8.AppendRune(out, r)
			}
		case c < utf8.RuneSelf:
			out = append(out, c)
			i++
		default:
			r, size := utf8.DecodeRune(body[i:])
			if r == utf8.RuneError && size == 1 {
				out = utf8.AppendRune(out, utf8.RuneError)
				i++
			} else {
				out = append(out, body[i:i+size]...)
				i += size
			}
		}
	}
	sc.scratch = out
	return out
}

// intern returns b as a string, reusing the previous allocation for a
// repeated value.
func (sc *pointScanner) intern(b []byte) string {
	if s, ok := sc.interned[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(sc.interned) < maxInterned {
		sc.interned[s] = s
	}
	return s
}

// stringValue parses a string (or null) field value.
func (sc *pointScanner) stringValue() (string, bool, error) {
	c, ok, err := sc.cur()
	if err != nil {
		return "", false, err
	}
	if !ok {
		return "", false, sc.errAt("unexpected end of value")
	}
	if c == 'n' {
		return "", true, sc.literal("null")
	}
	if c != '"' {
		return "", false, sc.errAt("expected string value")
	}
	b, err := sc.scanString()
	if err != nil {
		return "", false, err
	}
	return sc.intern(b), false, nil
}

// timeValue parses a timestamp (or null) field value. The fast path
// hand-parses the plain UTC RFC 3339 shape; everything else goes
// through time.Time.UnmarshalJSON with the raw quoted token, exactly
// the bytes encoding/json would hand it.
func (sc *pointScanner) timeValue(t *time.Time) error {
	c, ok, err := sc.cur()
	if err != nil {
		return err
	}
	if !ok {
		return sc.errAt("unexpected end of value")
	}
	if c == 'n' {
		return sc.literal("null")
	}
	if c != '"' {
		return sc.errAt("expected timestamp string")
	}
	off := sc.base + int64(sc.pos)
	raw, hasEsc, err := sc.scanStringRaw()
	if err != nil {
		return err
	}
	if !hasEsc {
		if tt, ok := parseRFC3339(raw[1 : len(raw)-1]); ok {
			*t = tt
			return nil
		}
	}
	if err := t.UnmarshalJSON(raw); err != nil {
		return &scanError{msg: "bad timestamp: " + err.Error(), off: off}
	}
	return nil
}

// numberValue parses a number (or null) field value, enforcing the
// JSON number grammar before converting.
func (sc *pointScanner) numberValue() (float64, bool, error) {
	c, ok, err := sc.cur()
	if err != nil {
		return 0, false, err
	}
	if !ok {
		return 0, false, sc.errAt("unexpected end of value")
	}
	if c == 'n' {
		return 0, true, sc.literal("null")
	}
	off := sc.base + int64(sc.pos)
	tok, err := sc.scanNumber()
	if err != nil {
		return 0, false, err
	}
	if v, ok := fastFloat(tok); ok {
		return v, false, nil
	}
	v, perr := strconv.ParseFloat(string(tok), 64)
	if perr != nil {
		// Grammar already validated, so this is a range overflow —
		// an error in encoding/json as well.
		return 0, false, &scanError{msg: "number out of range", off: off}
	}
	return v, false, nil
}

// scanNumber scans the number token at the read position, enforcing
// JSON grammar (strconv accepts hex floats, a leading '+', "Inf" — all
// invalid JSON). The slice aliases the scan buffer.
func (sc *pointScanner) scanNumber() ([]byte, error) {
	start := sc.pos
	i := sc.pos
	more := func() bool {
		if i < sc.limit {
			return true
		}
		ns, err := sc.refill(start)
		if err != nil {
			return false
		}
		i -= start - ns
		start = ns
		return i < sc.limit
	}
	digits := func() int {
		n := 0
		for more() && sc.buf[i] >= '0' && sc.buf[i] <= '9' {
			n++
			i++
		}
		return n
	}
	fail := func(msg string) error {
		sc.pos = i
		return sc.errAt(msg)
	}
	if more() && sc.buf[i] == '-' {
		i++
	}
	// Integer part: a single 0, or a nonzero digit run.
	if !more() || sc.buf[i] < '0' || sc.buf[i] > '9' {
		return nil, fail("invalid number")
	}
	if sc.buf[i] == '0' {
		i++
	} else if digits() == 0 {
		return nil, fail("invalid number")
	}
	if more() && sc.buf[i] == '.' {
		i++
		if digits() == 0 {
			return nil, fail("invalid number")
		}
	}
	if more() && (sc.buf[i] == 'e' || sc.buf[i] == 'E') {
		i++
		if more() && (sc.buf[i] == '+' || sc.buf[i] == '-') {
			i++
		}
		if digits() == 0 {
			return nil, fail("invalid number")
		}
	}
	tok := sc.buf[start:i]
	sc.pos = i
	return tok, nil
}

// pow10 holds the exactly-representable powers of ten of the fast
// float path.
var pow10 = [16]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15}

// fastFloat converts plain decimals of up to 15 significant digits and
// no exponent without allocating: mantissa and scale are both exact in
// float64, and the correctly-rounded division yields bit-identical
// results to strconv.ParseFloat.
func fastFloat(tok []byte) (float64, bool) {
	i := 0
	neg := false
	if i < len(tok) && tok[i] == '-' {
		neg = true
		i++
	}
	var mant uint64
	ndig, scale := 0, 0
	seenDot := false
	for ; i < len(tok); i++ {
		c := tok[i]
		switch {
		case c >= '0' && c <= '9':
			mant = mant*10 + uint64(c-'0')
			ndig++
			if seenDot {
				scale++
			}
		case c == '.':
			seenDot = true
		default:
			return 0, false // exponent form: let strconv handle it
		}
	}
	if ndig > 15 {
		return 0, false
	}
	v := float64(mant) / pow10[scale]
	if neg {
		v = -v
	}
	return v, true
}

// literal consumes one fixed literal ("null", "true", "false").
func (sc *pointScanner) literal(lit string) error {
	for j := 0; j < len(lit); j++ {
		c, ok, err := sc.cur()
		if err != nil {
			return err
		}
		if !ok || c != lit[j] {
			return sc.errAt("invalid literal")
		}
		sc.pos++
	}
	return nil
}

// skipValue consumes (and fully validates) one JSON value of an
// unknown field, iteratively, with the same nesting bound as
// encoding/json.
func (sc *pointScanner) skipValue() error {
	stack := sc.stack[:0]
	defer func() { sc.stack = stack[:0] }()
value:
	for {
		if err := sc.skipWS(); err != nil {
			return err
		}
		c, ok, err := sc.cur()
		if err != nil {
			return err
		}
		if !ok {
			return sc.errAt("unexpected end of value")
		}
		switch {
		case c == '{':
			sc.pos++
			if err := sc.skipWS(); err != nil {
				return err
			}
			c2, ok, err := sc.cur()
			if err != nil {
				return err
			}
			if !ok {
				return sc.errAt("unexpected end of object")
			}
			if c2 == '}' {
				sc.pos++
				break // empty object: one complete value
			}
			if len(stack) >= maxScanDepth {
				return sc.errAt("exceeded max nesting depth")
			}
			stack = append(stack, '{')
			if err := sc.objectKey(); err != nil {
				return err
			}
			continue value
		case c == '[':
			sc.pos++
			if err := sc.skipWS(); err != nil {
				return err
			}
			c2, ok, err := sc.cur()
			if err != nil {
				return err
			}
			if !ok {
				return sc.errAt("unexpected end of array")
			}
			if c2 == ']' {
				sc.pos++
				break
			}
			if len(stack) >= maxScanDepth {
				return sc.errAt("exceeded max nesting depth")
			}
			stack = append(stack, '[')
			continue value
		case c == '"':
			if _, _, err := sc.scanStringRaw(); err != nil {
				return err
			}
		case c == 't':
			if err := sc.literal("true"); err != nil {
				return err
			}
		case c == 'f':
			if err := sc.literal("false"); err != nil {
				return err
			}
		case c == 'n':
			if err := sc.literal("null"); err != nil {
				return err
			}
		case c == '-' || c >= '0' && c <= '9':
			if _, err := sc.scanNumber(); err != nil {
				return err
			}
		default:
			return sc.errAt("unexpected character")
		}
		// One value finished: unwind closers and continue after commas.
		for {
			if len(stack) == 0 {
				return nil
			}
			if err := sc.skipWS(); err != nil {
				return err
			}
			c, ok, err := sc.cur()
			if err != nil {
				return err
			}
			if !ok {
				return sc.errAt("unexpected end of value")
			}
			if stack[len(stack)-1] == '{' {
				switch c {
				case ',':
					sc.pos++
					if err := sc.skipWS(); err != nil {
						return err
					}
					if err := sc.objectKey(); err != nil {
						return err
					}
					continue value
				case '}':
					sc.pos++
					stack = stack[:len(stack)-1]
				default:
					return sc.errAt("expected ',' or '}'")
				}
			} else {
				switch c {
				case ',':
					sc.pos++
					continue value
				case ']':
					sc.pos++
					stack = stack[:len(stack)-1]
				default:
					return sc.errAt("expected ',' or ']'")
				}
			}
		}
	}
}

// objectKey consumes `"key" :` inside a skipped object.
func (sc *pointScanner) objectKey() error {
	if _, _, err := sc.scanStringRaw(); err != nil {
		return err
	}
	if err := sc.skipWS(); err != nil {
		return err
	}
	c, ok, err := sc.cur()
	if err != nil {
		return err
	}
	if !ok || c != ':' {
		return sc.errAt("expected ':'")
	}
	sc.pos++
	return nil
}

// decodeBatch parses a whole {"<field>":[...]} request body, appending
// rows to the scanner's pooled slice (valid until release). Semantics
// mirror json.Unmarshal into the single-slice-field structs of the
// ingest plane: unknown keys are skipped after validation, a repeated
// field restarts the slice, null leaves it empty, a null array element
// is a zero row, trailing bytes after the top-level value are ignored
// (json.Decoder reads one value), and any syntax error fails the whole
// body before a single row is applied.
func (sc *pointScanner) decodeBatch(field string) ([]Point, error) {
	sc.pts = sc.pts[:0]
	if err := sc.skipWS(); err != nil {
		return nil, err
	}
	c, ok, err := sc.cur()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, io.EOF // empty body, the decoder's wording
	}
	if c == 'n' {
		if err := sc.literal("null"); err != nil {
			return nil, err
		}
		return sc.pts, nil
	}
	if c != '{' {
		return nil, sc.errAt("expected '{'")
	}
	sc.pos++
	if err := sc.skipWS(); err != nil {
		return nil, err
	}
	if c, ok, err = sc.cur(); err != nil {
		return nil, err
	}
	if !ok {
		return nil, sc.errAt("unexpected end of object")
	}
	if c == '}' {
		sc.pos++
		return sc.pts, nil
	}
	fieldName := []byte(field)
	for {
		if err := sc.skipWS(); err != nil {
			return nil, err
		}
		key, err := sc.scanString()
		if err != nil {
			return nil, err
		}
		match := string(key) == field || bytes.EqualFold(key, fieldName)
		if err := sc.skipWS(); err != nil {
			return nil, err
		}
		if c, ok, err = sc.cur(); err != nil {
			return nil, err
		}
		if !ok || c != ':' {
			return nil, sc.errAt("expected ':'")
		}
		sc.pos++
		if err := sc.skipWS(); err != nil {
			return nil, err
		}
		if match {
			if err := sc.rowArray(); err != nil {
				return nil, err
			}
		} else if err := sc.skipValue(); err != nil {
			return nil, err
		}
		if err := sc.skipWS(); err != nil {
			return nil, err
		}
		if c, ok, err = sc.cur(); err != nil {
			return nil, err
		}
		if !ok {
			return nil, sc.errAt("unexpected end of object")
		}
		switch c {
		case ',':
			sc.pos++
		case '}':
			sc.pos++
			return sc.pts, nil
		default:
			return nil, sc.errAt("expected ',' or '}'")
		}
	}
}

// rowArray parses the row array (or null) of a batch body into the
// pooled slice, restarting it: a duplicate field replaces the earlier
// value like json.Unmarshal does. Replacement carries Unmarshal's
// element-reuse semantics: the restarted slice appends over the same
// backing array, so row i of the later array decodes INTO the earlier
// row i — absent and null fields keep the earlier value. prev is
// whatever this decodeBatch call has already parsed (empty on the
// first field occurrence, matching Unmarshal's fresh nil slice).
func (sc *pointScanner) rowArray() error {
	prev := sc.pts
	sc.pts = sc.pts[:0]
	c, ok, err := sc.cur()
	if err != nil {
		return err
	}
	if !ok {
		return sc.errAt("unexpected end of value")
	}
	if c == 'n' {
		return sc.literal("null")
	}
	if c != '[' {
		return sc.errAt("expected array of rows")
	}
	sc.pos++
	if err := sc.skipWS(); err != nil {
		return err
	}
	if c, ok, err = sc.cur(); err != nil {
		return err
	}
	if !ok {
		return sc.errAt("unexpected end of array")
	}
	if c == ']' {
		sc.pos++
		return nil
	}
	for {
		if err := sc.skipWS(); err != nil {
			return err
		}
		if c, ok, err = sc.cur(); err != nil {
			return err
		}
		if !ok {
			return sc.errAt("unexpected end of array")
		}
		var p Point
		if n := len(sc.pts); n < len(prev) {
			p = prev[n] // reused element: decode merges over it
		}
		switch c {
		case 'n':
			// null never touches the element; a reused one keeps its
			// earlier value, exactly as Unmarshal leaves it.
			if err := sc.literal("null"); err != nil {
				return err
			}
		case '{':
			if err := sc.parsePoint(&p); err != nil {
				return err
			}
		default:
			return sc.errAt("expected object row")
		}
		sc.pts = append(sc.pts, p)
		if err := sc.skipWS(); err != nil {
			return err
		}
		if c, ok, err = sc.cur(); err != nil {
			return err
		}
		if !ok {
			return sc.errAt("unexpected end of array")
		}
		switch c {
		case ',':
			sc.pos++
		case ']':
			sc.pos++
			return nil
		default:
			return sc.errAt("expected ',' or ']'")
		}
	}
}

// daysIn is the day count of each month in a non-leap year.
var daysIn = [13]int{0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

// parseRFC3339 parses the strict, dominant RFC 3339 shape —
// YYYY-MM-DDThh:mm:ss[.fffffffff]Z — without allocating. ok=false
// sends the caller to time.Time.UnmarshalJSON, which handles numeric
// offsets, leap seconds, and every malformed case exactly as
// encoding/json would.
func parseRFC3339(b []byte) (time.Time, bool) {
	num2 := func(i int) (int, bool) {
		d1, d2 := b[i]-'0', b[i+1]-'0'
		if d1 > 9 || d2 > 9 {
			return 0, false
		}
		return int(d1)*10 + int(d2), true
	}
	if len(b) < 20 || b[4] != '-' || b[7] != '-' || b[10] != 'T' || b[13] != ':' || b[16] != ':' {
		return time.Time{}, false
	}
	y1, ok1 := num2(0)
	y2, ok2 := num2(2)
	month, ok3 := num2(5)
	day, ok4 := num2(8)
	hour, ok5 := num2(11)
	minute, ok6 := num2(14)
	sec, ok7 := num2(17)
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7) {
		return time.Time{}, false
	}
	year := y1*100 + y2
	i := 19
	nanos := 0
	if i < len(b) && b[i] == '.' {
		i++
		start := i
		mult := 100000000
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			if i-start >= 9 {
				return time.Time{}, false // over-long fraction: slow path
			}
			nanos += int(b[i]-'0') * mult
			mult /= 10
			i++
		}
		if i == start {
			return time.Time{}, false
		}
	}
	if i != len(b)-1 || b[i] != 'Z' {
		return time.Time{}, false // numeric offsets: slow path
	}
	maxDay := daysIn[month%13]
	if month == 2 && year%4 == 0 && (year%100 != 0 || year%400 == 0) {
		maxDay = 29
	}
	if month < 1 || month > 12 || day < 1 || day > maxDay ||
		hour > 23 || minute > 59 || sec > 59 {
		return time.Time{}, false
	}
	return time.Date(year, time.Month(month), day, hour, minute, sec, nanos, time.UTC), true
}
