package measuredb

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// The append-based row encoders replaced json.Encoder on the streaming
// paths; their bytes must stay indistinguishable on the wire. These
// tests render the same rows both ways and require byte equality —
// HTML escaping, U+2028/U+2029, U+FFFD replacement, the f/e float
// boundary with exponent trimming, RFC 3339 nano timestamps, and
// omitempty field dropping all included.

var encodeStrings = []string{
	"",
	"temperature",
	"urn:district:turin/building:b001/device:d0",
	`quote " backslash \ slash /`,
	"tabs\tand\nnewlines\rand\x00controls\x1f",
	"html <script> & friends >",
	"line sep \u2028 para sep \u2029",
	"smileys 😀 and accents é ü",
	"invalid utf8 \xff\xc3\x28 tail",
	"lone high surrogate \xed\xa0\x80 bytes",
	"ends mid-rune \xc3",
}

var encodeFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 21.5, -273.15,
	0.1, 1.0 / 3.0,
	1e-7, 9.999999e-7, 1e-6, // the 'e' format lower boundary
	1e20, 9.99999999e20, 1e21, 1e22, // and the upper one
	5e-324, math.MaxFloat64, -math.MaxFloat64,
	123456789012345, 1234567890123456, 12345678901234567,
	3.141592653589793, 2.718281828459045e-100,
}

var encodeTimes = []time.Time{
	{},
	time.Date(2015, 3, 9, 10, 0, 0, 0, time.UTC),
	time.Date(2015, 3, 9, 10, 0, 0, 123456789, time.UTC),
	time.Date(2015, 3, 9, 10, 0, 0, 120000000, time.UTC),
	time.Date(2015, 12, 31, 23, 59, 59, 999999999, time.FixedZone("", 90*60)),
	time.Date(1, 1, 1, 0, 0, 0, 1, time.UTC),
	time.Date(9999, 12, 31, 23, 59, 59, 0, time.FixedZone("", -11*3600)),
}

// oracleLine renders v exactly as the streaming paths used to: one
// json.Encoder row, trailing newline included.
func oracleLine(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("oracle encode: %v", err)
	}
	return buf.Bytes()
}

func TestAppendPointNDJSONMatchesEncoder(t *testing.T) {
	var rows []Point
	for _, s := range encodeStrings {
		rows = append(rows,
			Point{Device: s, Quantity: "q", At: encodeTimes[1], Value: 1},
			Point{Device: "d", Quantity: s, At: encodeTimes[1], Value: 1})
	}
	for _, f := range encodeFloats {
		rows = append(rows, Point{Device: "d", Quantity: "q", At: encodeTimes[1], Value: f})
	}
	for _, at := range encodeTimes {
		rows = append(rows, Point{Device: "d", Quantity: "q", At: at, Value: 1})
	}
	rows = append(rows, Point{}) // both strings omitted via omitempty
	for _, p := range rows {
		got := appendPointNDJSON(nil, p)
		want := oracleLine(t, p)
		if !bytes.Equal(got, want) {
			t.Errorf("Point %+v:\nappend:  %q\nencoder: %q", p, got, want)
		}
	}
}

func TestAppendBatchSampleRowMatchesEncoder(t *testing.T) {
	type sample struct {
		selector int
		device   string
		quantity string
		at       time.Time
		value    float64
	}
	var rows []sample
	for i, s := range encodeStrings {
		rows = append(rows,
			sample{i, s, "q", encodeTimes[1], 1},
			sample{i, "d", s, encodeTimes[1], 1})
	}
	for _, f := range encodeFloats {
		rows = append(rows, sample{3, "d", "q", encodeTimes[1], f})
	}
	for _, at := range encodeTimes {
		rows = append(rows, sample{-7, "d", "q", at, 0})
	}
	rows = append(rows, sample{0, "", "", encodeTimes[1], 2.5})
	for _, r := range rows {
		got := appendBatchSampleRow(nil, r.selector, r.device, r.quantity, r.at, r.value)
		at, v := r.at, r.value
		want := oracleLine(t, BatchRow{Selector: r.selector, Device: r.device, Quantity: r.quantity, At: &at, Value: &v})
		if !bytes.Equal(got, want) {
			t.Errorf("row %+v:\nappend:  %q\nencoder: %q", r, got, want)
		}
	}
}

func FuzzAppendJSONString(f *testing.F) {
	for _, s := range encodeStrings {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got := appendJSONString(nil, s)
		want, err := json.Marshal(s)
		if err != nil {
			t.Skip()
		}
		if !bytes.Equal(got, want) {
			t.Errorf("string %q:\nappend:  %q\nmarshal: %q", s, got, want)
		}
	})
}

func FuzzAppendJSONFloat(f *testing.F) {
	for _, v := range encodeFloats {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Skip() // json refuses these; the value plane cannot produce them
		}
		got := appendJSONFloat(nil, v)
		want, err := json.Marshal(v)
		if err != nil {
			t.Skip()
		}
		if !bytes.Equal(got, want) {
			t.Errorf("float %x (%g):\nappend:  %q\nmarshal: %q", math.Float64bits(v), v, got, want)
		}
	})
}
