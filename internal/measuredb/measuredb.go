// Package measuredb implements the district's global measurements
// database service: the store "where data collected by sensors placed in
// the district" accumulates (paper §II). Device-proxies publish their
// samples into the middleware; this service subscribes to the
// measurement topic space, ingests everything it sees, and serves
// historical queries through a Database-proxy-style web service in the
// common format.
package measuredb

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/dataformat"
	"repro/internal/middleware"
	"repro/internal/obs"
	"repro/internal/proxyhttp"
	"repro/internal/qcache"
	"repro/internal/stream"
	"repro/internal/tsdb"
	"repro/internal/wal"
)

func init() {
	// Store sentinels → HTTP statuses for the unified error envelope.
	// Registered here (the store's first web consumer); the device-proxy
	// shares the mapping through the same table.
	api.RegisterStatus(tsdb.ErrNoSeries, http.StatusNotFound)
	api.RegisterStatus(tsdb.ErrBadInterval, http.StatusBadRequest)
}

// Topic space for measurements: measurements/<district>/<entity>/<device>/<quantity>.
const (
	// TopicRoot prefixes every measurement publication.
	TopicRoot = "measurements"
	// IngestPattern subscribes to every measurement in the district.
	IngestPattern = TopicRoot + "/#"
)

// Service is the measurements database.
type Service struct {
	store tsdb.Engine
	srv   proxyhttp.Server
	apiS  *api.Server
	dedup *dedupWindow

	// bus is the service's event spine: everything the service hears —
	// local publishes, relayed middleware-node traffic, and remote
	// HTTP /v1/publish injections — flows through it, so the ingest
	// subscription and the streaming hub see one unified event order.
	bus     *middleware.Bus
	ownBus  bool
	ingest  *middleware.Subscription
	streamS *stream.Service

	ingested atomic.Uint64
	rejected atomic.Uint64

	// reg is the service's instrument registry (storage internals,
	// stream counters, ingest histograms); attached to the API metrics so
	// /v1/metrics exposes it.
	reg        *obs.Registry
	dedupClaim *obs.Histogram // Idempotency-Key claim wait
	fanout     *obs.Histogram // series matched per selector resolution

	// cnode holds the node's cluster state — cached shard map, handoff
	// freezes, ownership guards (cluster.go); nil on unclustered nodes.
	cnode *clusterNode

	// qc is the generation-keyed result cache (nil = disabled, which
	// Get/Put treat as always-miss) and qsh the sharded engine whose
	// generation counters key it. Both set only when Options.QCacheBytes
	// is positive and the engine is the default sharded one.
	qc  *qcache.Cache
	qsh *tsdb.Sharded
}

// Options configure the service.
type Options struct {
	// Engine overrides the backing storage engine. Nil builds a
	// device-hash tsdb.Sharded engine with Shards partitions.
	Engine tsdb.Engine
	// Shards sizes the default sharded engine (0 = tsdb.DefaultShards).
	// Ignored when Engine (or Store) is supplied.
	Shards int
	// Store overrides the backing store with a single-lock tsdb.Store.
	//
	// Deprecated: use Engine; kept so pre-sharding callers compile.
	Store *tsdb.Store
	// Logger receives access-log lines; nil silences them.
	Logger api.Logger
	// Bus overrides the service's event spine; nil creates a private
	// one. The service always ingests from (and streams) this bus.
	Bus *middleware.Bus
	// Stream tunes the streaming subsystem (hub sizing, publish-ingress
	// rate limiting). A PublishLimiter set here is exposed in the
	// metrics as the "publish" tier.
	Stream stream.Options
	// DisableLegacyAliases drops the unversioned route aliases; only
	// /v1 and /v2 paths are then served.
	DisableLegacyAliases bool
	// ReadLimiter, when set, rate-limits the cheap read routes (v1
	// query/latest/series/aggregate and the /v2 reads) per client IP —
	// the "read" tier.
	ReadLimiter *api.RateLimiter
	// BatchLimiter, when set, rate-limits POST /v2/query per client IP
	// — the "batch" tier. Batch reads fan out over many series, so they
	// get a tighter budget than cheap single-series reads.
	BatchLimiter *api.RateLimiter
	// WriteLimiter, when set, rate-limits the /v2 ingest plane
	// (POST /v2/ingest, PUT /v2/series/.../samples) per client IP — the
	// "write" tier.
	WriteLimiter *api.RateLimiter
	// IdempotencyWindow is how long ingest Idempotency-Keys are
	// remembered (0 = 10 minutes; negative disables deduplication).
	IdempotencyWindow time.Duration
	// IdempotencyClaimTTL is how long an unfinished idempotency claim
	// (a keyed request that never stored an outcome — typically a client
	// that died mid-request) may block retries of the same key before a
	// retry takes the claim over and re-executes (0 = 1 minute;
	// negative disables takeover).
	IdempotencyClaimTTL time.Duration

	// DataDir enables the durable storage layer: the default engine
	// becomes a WAL-backed tsdb.Sharded under <DataDir>/tsdb, the stream
	// replay ring is journaled under <DataDir>/stream (Last-Event-ID
	// resume survives a restart), and finished ingest idempotency
	// outcomes persist under <DataDir>/dedup (acked keyed batches replay
	// after a crash instead of double-appending). Empty keeps everything
	// in memory. Ignored by the engine when Engine or Store is supplied;
	// the stream and dedup state still persist.
	DataDir string
	// Fsync is the WAL durability policy for all three logs (default
	// wal.FsyncNone: acked writes survive a process kill; "interval"
	// bounds machine-crash loss to SyncEvery; "always" fsyncs before
	// acking, group-committed per shard queue wave).
	Fsync wal.Mode
	// SnapshotEvery compacts each tsdb shard's WAL into a snapshot after
	// this many appended rows (0 = engine default, 65536; negative
	// disables record-based snapshots).
	SnapshotEvery int
	// SnapshotInterval also cuts a shard snapshot when the last one is
	// older than this (0 disables).
	SnapshotInterval time.Duration
	// Blocks tunes the columnar block layer of the durable engine: how
	// much recent data stays in the RAM head, and how long raw samples
	// and rollups are retained on disk. The zero value keeps the default
	// 30m head window with infinite retention. Only meaningful with
	// DataDir.
	Blocks tsdb.BlockPolicy

	// QCacheBytes bounds the generation-keyed query/aggregate result
	// cache (internal/qcache). Zero (the default) disables it entirely:
	// every read evaluates from the store, exactly as before the cache
	// existed. Only the default sharded engine can be cached — a
	// caller-supplied Engine or Store has no generation counters, so the
	// option is ignored there.
	QCacheBytes int64

	// Cluster attaches the node to a multi-host cluster: it caches the
	// master-published shard map, rejects writes for shards it does not
	// own (or that are frozen mid-handoff) with retryable envelopes, and
	// serves the /v1/cluster handoff plane. Requires the default sharded
	// engine — a caller-supplied Engine or Store cannot be clustered.
	Cluster *ClusterOptions

	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof
	// on the service's web interface.
	EnablePprof bool
	// SlowRequest is the span-duration threshold above which requests are
	// logged (0 = 1s; negative disables).
	SlowRequest time.Duration
}

// New creates a measurements database service. It can only fail when
// Options.DataDir requests durability — use Open for that; New panics
// on a disk error.
func New(opts Options) *Service {
	s, err := Open(opts)
	if err != nil {
		panic("measuredb: " + err.Error() + " (use Open for durable services)")
	}
	return s
}

// Open creates a measurements database service, recovering the storage
// engine, the stream replay ring, and the ingest idempotency window
// from Options.DataDir when set.
func Open(opts Options) (*Service, error) {
	reg := obs.NewRegistry()
	st := opts.Engine
	if st == nil && opts.Store != nil {
		st = opts.Store
	}
	var err error
	if st == nil {
		if opts.DataDir != "" {
			st, err = tsdb.OpenSharded(tsdb.ShardedOptions{
				Shards:           opts.Shards,
				Dir:              filepath.Join(opts.DataDir, "tsdb"),
				Fsync:            opts.Fsync,
				SnapshotEvery:    opts.SnapshotEvery,
				SnapshotInterval: opts.SnapshotInterval,
				Blocks:           opts.Blocks,
				Metrics:          reg,
			})
			if err != nil {
				return nil, fmt.Errorf("open tsdb engine: %w", err)
			}
		} else {
			st = tsdb.NewSharded(tsdb.ShardedOptions{Shards: opts.Shards, Metrics: reg})
		}
	}
	if opts.Cluster != nil {
		if _, ok := st.(*tsdb.Sharded); !ok {
			st.Close()
			return nil, errors.New("cluster mode requires the sharded engine")
		}
	}
	dedup := newDedupWindow(opts.IdempotencyWindow, opts.IdempotencyClaimTTL)
	if dedup != nil && opts.DataDir != "" {
		if err := dedup.openLog(filepath.Join(opts.DataDir, "dedup"), opts.Fsync); err != nil {
			st.Close()
			return nil, fmt.Errorf("open idempotency window: %w", err)
		}
	}
	s := &Service{store: st, bus: opts.Bus, dedup: dedup, reg: reg}
	if opts.QCacheBytes > 0 {
		if sh, ok := st.(*tsdb.Sharded); ok {
			s.qc = qcache.New(opts.QCacheBytes)
			s.qsh = sh
		}
	}
	if opts.Cluster != nil {
		s.cnode = newClusterNode(opts.Cluster)
	}
	if s.bus == nil {
		// Synchronous delivery: the spine's only subscribers (store
		// ingest, stream hub) are non-blocking, and publishing inline on
		// the caller's goroutine keeps ingestion immediate — the
		// behaviour callers of AttachBus with a synchronous bus expect.
		s.bus = middleware.NewBus(middleware.BusOptions{QueueLen: -1})
		s.ownBus = true
	}
	fail := func(err error) (*Service, error) {
		err = errors.Join(err, dedup.close())
		if s.ownBus {
			s.bus.Close()
		}
		st.Close()
		return nil, err
	}
	if s.ingest, err = s.bus.Subscribe(IngestPattern, s.onEvent); err != nil {
		return fail(fmt.Errorf("ingest subscription on supplied bus: %w", err))
	}
	streamOpts := opts.Stream
	if opts.DataDir != "" && streamOpts.Hub.Dir == "" {
		streamOpts.Hub.Dir = filepath.Join(opts.DataDir, "stream")
		streamOpts.Hub.Fsync = opts.Fsync
	}
	if s.streamS, err = stream.NewService(s.bus, streamOpts); err != nil {
		s.ingest.Unsubscribe()
		return fail(fmt.Errorf("stream service: %w", err))
	}
	s.registerMetrics()
	s.apiS = s.buildAPI(opts)
	return s, nil
}

// registerMetrics registers the service-level instruments: the stream
// hub's counters and the ingest/dedup/query internals. The engine's
// storage instruments were registered by OpenSharded (default engines
// only — a caller-supplied Engine observes itself).
func (s *Service) registerMetrics() {
	s.streamS.RegisterMetrics(s.reg)
	s.reg.CounterFunc("repro_ingest_rows_total",
		"Rows accepted into the store, over every ingest path.", nil,
		func() float64 { return float64(s.ingested.Load()) })
	s.reg.CounterFunc("repro_ingest_rejected_rows_total",
		"Rows rejected by validation or the store.", nil,
		func() float64 { return float64(s.rejected.Load()) })
	s.reg.CounterFunc("repro_ingest_dedup_persist_errors_total",
		"Idempotency outcomes acked but not journaled.", nil,
		func() float64 { return float64(s.dedup.persistErrors()) })
	s.reg.GaugeFunc("repro_ingest_dedup_window_entries",
		"Idempotency keys currently remembered.", nil,
		func() float64 { return float64(s.dedup.size()) })
	s.dedupClaim = s.reg.Histogram("repro_ingest_dedup_claim_seconds",
		"Idempotency-Key claim wait (includes waiting out an in-flight delivery of the same key).",
		obs.FastLatencyBuckets, nil)
	s.fanout = s.reg.Histogram("repro_query_fanout_series",
		"Series matched per selector resolution (scatter-gather fan-out width).",
		obs.CountBuckets, nil)
	if s.qc != nil {
		registerQCacheMetrics(s.reg, s.qc)
		for i := 0; i < s.qsh.NumShards(); i++ {
			shard := i
			s.reg.GaugeFunc("repro_qcache_shard_generation",
				"Mutation generation of one engine shard (every acked append wave, compaction publish, retention pass, or restore bumps it; cache keys embed the value, so a moving generation is what retires stale entries).",
				obs.Labels{"shard": strconv.Itoa(shard)},
				func() float64 { return float64(s.qsh.ShardGeneration(shard)) })
		}
	}
	if s.cnode != nil {
		s.registerClusterMetrics()
	}
}

// Bus exposes the service's event spine. Publishing a measurement
// document event on it both stores the sample and streams it to every
// live subscriber.
func (s *Service) Bus() *middleware.Bus { return s.bus }

// Stream exposes the streaming service (hub stats, KickAll).
func (s *Service) Stream() *stream.Service { return s.streamS }

// Store exposes the backing storage engine (benchmarks and tests).
func (s *Service) Store() tsdb.Engine { return s.store }

// Ingest stores one measurement document payload.
func (s *Service) Ingest(m *dataformat.Measurement) error {
	if err := m.Validate(); err != nil {
		s.rejected.Add(1)
		return err
	}
	if s.cnode != nil && !s.clusterOwnsDevice(m.Device) {
		// Broadcast bus traffic reaches every cluster node; only the
		// owner stores a row (anything else double-counts it). Dropping
		// is correct on this fire-and-forget plane — the acked /v2 path
		// is the loss-free one.
		return nil
	}
	key := tsdb.SeriesKey{Device: m.Device, Quantity: string(m.Quantity)}
	if err := s.store.Append(key, tsdb.Sample{At: m.Timestamp, Value: m.Value}); err != nil {
		s.rejected.Add(1)
		return err
	}
	s.ingested.Add(1)
	return nil
}

// AttachBus subscribes the service to an external bus's measurement
// topics so every published sample lands in the store — the paper's
// "publish data into the infrastructure (for instance to a global
// measurement database)" path. External events are relayed onto the
// service's own spine first, so they also reach the streaming hub and
// its remote SSE subscribers.
func (s *Service) AttachBus(bus *middleware.Bus) (*middleware.Subscription, error) {
	if bus == s.bus {
		return s.ingest, nil // already the spine; nothing to relay
	}
	return bus.Subscribe(IngestPattern, s.relay)
}

// AttachNode subscribes through a networked middleware node.
func (s *Service) AttachNode(node *middleware.Node) (*middleware.Subscription, error) {
	return node.Subscribe(IngestPattern, s.relay)
}

// relay forwards one externally-heard event onto the service's spine.
func (s *Service) relay(ev middleware.Event) {
	_ = s.bus.Publish(ev)
}

func (s *Service) onEvent(ev middleware.Event) {
	doc, err := dataformat.Decode(ev.Payload, dataformat.Sniff(ev.Payload))
	if err != nil {
		s.rejected.Add(1)
		return
	}
	switch doc.Kind {
	case dataformat.KindMeasurement:
		_ = s.Ingest(doc.Measurement)
	case dataformat.KindMeasurements:
		for i := range doc.Measurements {
			_ = s.Ingest(&doc.Measurements[i])
		}
	default:
		s.rejected.Add(1)
	}
}

// Stats are cumulative ingest counters.
type Stats struct {
	Ingested uint64          `json:"ingested"`
	Rejected uint64          `json:"rejected"`
	Store    tsdb.Stats      `json:"store"`
	Stream   stream.HubStats `json:"stream"`
	// DedupPersistErrors counts idempotency outcomes that were acked but
	// could not be journaled (durable services only): non-zero means
	// keyed retries of those batches would re-execute after a crash.
	DedupPersistErrors uint64 `json:"dedup_persist_errors,omitempty"`
}

// Stats returns a snapshot of service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Ingested:           s.ingested.Load(),
		Rejected:           s.rejected.Load(),
		Store:              s.store.Stats(),
		Stream:             s.streamS.Hub().Stats(),
		DedupPersistErrors: s.dedup.persistErrors(),
	}
}

// buildAPI registers the service's endpoints on the unified API layer.
// The v1 surface is served under /v1/... with the bare path kept as a
// legacy alias (unless disabled); the /v2 query data plane (v2.go) has
// no aliases:
//
//	POST /v1/append                      body: measurement(s) document
//	GET  /v1/query?device=&quantity=&from=&to=
//	GET  /v1/latest?device=&quantity=
//	GET  /v1/series?device=              (all series, or one device's)
//	GET  /v1/aggregate?device=&quantity=&from=&to=[&window=]
//	GET  /v1/stats
//	GET  /v1/storage                     per-shard durable storage status
//	POST /v1/storage/compact[?shard=N]   force a block compaction cycle
//	GET  /v1/stream?topic=<pattern>      live events (SSE)
//	POST /v1/publish                     event ingress (middleware.Event JSON)
//	GET  /v1/metrics, /v1/healthz
//	GET  /v2/series[?device=&quantity=&limit=&cursor=]
//	GET  /v2/series/{device}/{quantity}/samples|latest|aggregate
//	POST /v2/query                       batch multi-series read
//	POST /v2/ingest                      batched / NDJSON sample ingest
//	PUT  /v2/series/{device}/{quantity}/samples  single-series append
//
// Route classes draw their own rate-limit tiers: cheap reads share
// Options.ReadLimiter, the batch endpoint Options.BatchLimiter, the
// ingest plane Options.WriteLimiter, and the publish ingress the stream
// PublishLimiter — all surfaced per tier in /v1/metrics.
func (s *Service) buildAPI(opts Options) *api.Server {
	srv := api.NewServer(api.Options{
		Service:              "measuredb",
		Logger:               opts.Logger,
		DisableLegacyAliases: opts.DisableLegacyAliases,
		EnablePprof:          opts.EnablePprof,
		SlowRequest:          opts.SlowRequest,
	})
	srv.Metrics().AttachRegistry(s.reg)
	tier := func(rl *api.RateLimiter, name string) func(http.Handler) http.Handler {
		if rl == nil {
			return func(h http.Handler) http.Handler { return h }
		}
		srv.Metrics().RegisterLimiter(name, rl)
		return api.RateLimit(rl)
	}
	read := tier(opts.ReadLimiter, "read")
	batch := tier(opts.BatchLimiter, "batch")
	write := tier(opts.WriteLimiter, "write")
	if opts.Stream.PublishLimiter != nil {
		srv.Metrics().RegisterLimiter("publish", opts.Stream.PublishLimiter)
	}

	srv.Handle(http.MethodPost, "/append", deprecated("/v2/ingest", api.DocIn(s.append)))
	srv.Handle(http.MethodGet, "/query", read(api.Query(s.query)))
	srv.Handle(http.MethodGet, "/latest", read(api.Query(s.latest)))
	srv.Handle(http.MethodGet, "/series", read(api.Query(s.series)))
	srv.Handle(http.MethodGet, "/aggregate", read(api.Query(s.aggregate)))
	srv.Get("/stats", func(ctx context.Context, q url.Values) (any, error) {
		return s.Stats(), nil
	})
	s.mountV2(srv, read, batch, write)
	s.mountStorage(srv)
	if s.cnode != nil {
		s.mountCluster(srv)
	}
	s.streamS.Mount(srv)
	return srv
}

// SetLegacyAliases toggles the unversioned route aliases at runtime.
func (s *Service) SetLegacyAliases(enabled bool) { s.apiS.SetLegacyAliases(enabled) }

// Handler returns the service's web interface.
func (s *Service) Handler() http.Handler { return s.apiS.Handler() }

// Metrics exposes the per-route API metrics.
func (s *Service) Metrics() *api.Metrics { return s.apiS.Metrics() }

// Serve binds the web interface and returns the bound address.
func (s *Service) Serve(addr string) (string, error) {
	return s.srv.Serve(addr, s.Handler())
}

// Close stops the web interface, the streaming subsystem, the
// idempotency window, and the store (draining and syncing any durable
// state).
func (s *Service) Close() {
	s.srv.Close()
	if err := s.streamS.Close(); err != nil {
		log.Printf("measuredb: stream close: %v", err)
	}
	s.ingest.Unsubscribe()
	if s.ownBus {
		s.bus.Close()
	}
	if err := s.dedup.close(); err != nil {
		log.Printf("measuredb: dedup journal close: %v", err)
	}
	s.store.Close()
}

// deprecated marks a legacy route's responses as deprecated, pointing
// clients at the successor resource.
func deprecated(successor string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h.ServeHTTP(w, r)
	})
}

// append serves POST /v1/append as a thin forwarder onto the /v2/ingest
// staging path, so the infrastructure has exactly one (durable) write
// pipeline: rows flow through the same batched engine appends, live
// stream feed, and counters as the resource-oriented ingest plane. The
// v1 response shape is kept; responses carry a Deprecation header.
func (s *Service) append(ctx context.Context, doc *dataformat.Document) (map[string]int, error) {
	var ms []dataformat.Measurement
	switch doc.Kind {
	case dataformat.KindMeasurement:
		ms = []dataformat.Measurement{*doc.Measurement}
	case dataformat.KindMeasurements:
		ms = doc.Measurements
	default:
		return nil, api.BadRequest(fmt.Errorf("unsupported document kind %q", doc.Kind))
	}
	g := s.newIngester(obs.StagesFrom(ctx))
	for i := range ms {
		m := &ms[i]
		// v1 keeps the document-level validation (units, quantities) the
		// bus ingest path applies; a bad measurement fails the request
		// like it always did, rows staged before it stand.
		if err := m.Validate(); err != nil {
			g.finish()
			return nil, api.BadRequest(err)
		}
		g.addTo(tsdb.SeriesKey{Device: m.Device, Quantity: string(m.Quantity)},
			Point{At: m.Timestamp, Value: m.Value})
	}
	res := g.finish()
	if res.Rejected > 0 {
		return nil, api.BadRequest(errors.New(res.Errors[0].Error))
	}
	return map[string]int{"stored": res.Accepted}, nil
}

// parseRange reads from/to as RFC 3339 timestamps; both optional.
func parseRange(q url.Values) (from, to time.Time, err error) {
	if s := q.Get("from"); s != "" {
		from, err = time.Parse(time.RFC3339, s)
		if err != nil {
			return from, to, fmt.Errorf("bad from: %v", err)
		}
	}
	if s := q.Get("to"); s != "" {
		to, err = time.Parse(time.RFC3339, s)
		if err != nil {
			return from, to, fmt.Errorf("bad to: %v", err)
		}
	}
	return from, to, nil
}

func seriesKey(q url.Values) (tsdb.SeriesKey, error) {
	device := q.Get("device")
	quantity := q.Get("quantity")
	if device == "" || quantity == "" {
		return tsdb.SeriesKey{}, api.BadRequest(errors.New("missing device or quantity parameter"))
	}
	return tsdb.SeriesKey{Device: device, Quantity: quantity}, nil
}

// measurementsOf converts samples back to common-format measurements.
func measurementsOf(key tsdb.SeriesKey, samples []tsdb.Sample, source string) []dataformat.Measurement {
	out := make([]dataformat.Measurement, len(samples))
	unit, _ := dataformat.CanonicalUnit(dataformat.Quantity(key.Quantity))
	for i, smp := range samples {
		out[i] = dataformat.Measurement{
			Source:    source,
			Device:    key.Device,
			Quantity:  dataformat.Quantity(key.Quantity),
			Unit:      unit,
			Value:     smp.Value,
			Timestamp: smp.At,
		}
	}
	return out
}

// query returns a series slice as a content-negotiated document; store
// sentinels map to statuses through the shared table.
func (s *Service) query(ctx context.Context, q url.Values) (any, error) {
	key, err := seriesKey(q)
	if err != nil {
		return nil, err
	}
	from, to, err := parseRange(q)
	if err != nil {
		return nil, api.BadRequest(err)
	}
	samples, err := s.store.Query(key, from, to)
	if err != nil {
		return nil, err
	}
	return dataformat.NewMeasurementsDoc(measurementsOf(key, samples, s.srv.Addr())), nil
}

func (s *Service) latest(ctx context.Context, q url.Values) (any, error) {
	key, err := seriesKey(q)
	if err != nil {
		return nil, err
	}
	smp, err := s.store.Latest(key)
	if err != nil {
		return nil, api.NotFound(err)
	}
	ms := measurementsOf(key, []tsdb.Sample{smp}, s.srv.Addr())
	return dataformat.NewMeasurementDoc(ms[0]), nil
}

// SeriesInfo describes one stored series.
type SeriesInfo struct {
	Device   string `json:"device"`
	Quantity string `json:"quantity"`
	Samples  int    `json:"samples"`
}

func (s *Service) series(ctx context.Context, q url.Values) (any, error) {
	device := q.Get("device")
	var keys []tsdb.SeriesKey
	if device != "" {
		keys = s.store.KeysForDevice(device)
	} else {
		keys = s.store.Keys()
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Device != keys[j].Device {
			return keys[i].Device < keys[j].Device
		}
		return keys[i].Quantity < keys[j].Quantity
	})
	out := make([]SeriesInfo, len(keys))
	for i, k := range keys {
		out[i] = SeriesInfo{Device: k.Device, Quantity: k.Quantity, Samples: s.store.Len(k)}
	}
	return out, nil
}

// AggregateResponse is the JSON shape of /aggregate.
type AggregateResponse struct {
	Device   string  `json:"device"`
	Quantity string  `json:"quantity"`
	Count    int     `json:"count"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	Mean     float64 `json:"mean"`
	Sum      float64 `json:"sum"`
}

func (s *Service) aggregate(ctx context.Context, q url.Values) (any, error) {
	key, err := seriesKey(q)
	if err != nil {
		return nil, err
	}
	from, to, err := parseRange(q)
	if err != nil {
		return nil, api.BadRequest(err)
	}
	agg, err := s.store.Aggregate(key, from, to)
	if err != nil {
		return nil, api.NotFound(err)
	}
	// Optional downsampling: window=<duration> switches to buckets.
	if ws := q.Get("window"); ws != "" {
		window, err := time.ParseDuration(ws)
		if err != nil {
			return nil, api.BadRequest(fmt.Errorf("bad window: %v", err))
		}
		buckets, err := s.store.Downsample(key, from, to, window)
		if err != nil {
			return nil, api.BadRequest(err)
		}
		return buckets, nil
	}
	return AggregateResponse{
		Device: key.Device, Quantity: key.Quantity,
		Count: agg.Count, Min: agg.Min, Max: agg.Max, Mean: agg.Mean, Sum: agg.Sum,
	}, nil
}

// Topic builds the middleware topic for a measurement, mirroring the
// device URI structure: measurements/<district>/<path...>/<quantity>.
func Topic(deviceURI string, quantity dataformat.Quantity) string {
	topic := TopicRoot
	rest := deviceURI
	const prefix = "urn:district:"
	if len(rest) > len(prefix) && rest[:len(prefix)] == prefix {
		rest = rest[len(prefix):]
	}
	for _, seg := range splitPath(rest) {
		topic += "/" + sanitizeSegment(seg)
	}
	return topic + "/" + string(quantity)
}

func splitPath(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// sanitizeSegment keeps topic segments wildcard-free.
func sanitizeSegment(s string) string {
	if s == "+" || s == "#" || s == "" {
		return "_"
	}
	return s
}
