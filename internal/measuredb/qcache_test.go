package measuredb

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataformat"
	"repro/internal/tsdb"
)

// The result cache must be invisible on the wire: a cached service and
// an uncached twin fed identical writes must answer every read with
// identical bytes, at every point in the write history. These tests
// hold the cache to that oracle across plain reads, read-your-writes,
// shard resets, compaction + retention, and the coordinator proxy
// cache with its epoch- and write-generation keying.

// getRaw fetches a URL and returns the status code and raw body bytes.
func getRaw(t *testing.T, rawURL string) (int, []byte) {
	t.Helper()
	rsp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	body, err := io.ReadAll(rsp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return rsp.StatusCode, body
}

// postRaw posts a JSON body and returns the status code and raw bytes.
func postRaw(t *testing.T, rawURL string, body []byte) (int, []byte) {
	t.Helper()
	rsp, err := http.Post(rawURL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	out, err := io.ReadAll(rsp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return rsp.StatusCode, out
}

// scrapeMetric reads one unlabelled metric value off a server's
// Prometheus exposition.
func scrapeMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	code, body := getRaw(t, base+"/metrics?format=prometheus")
	if code != http.StatusOK {
		t.Fatalf("metrics scrape = %d", code)
	}
	for _, line := range strings.Split(string(body), "\n") {
		rest, ok := strings.CutPrefix(line, name)
		if !ok || rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		if i := strings.LastIndexByte(rest, ' '); i >= 0 {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest[i+1:]), 64)
			if err != nil {
				t.Fatalf("unparsable %s line %q", name, line)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// normalizeBody blanks the random request id of error envelopes so
// non-200 responses compare byte-for-byte too.
func normalizeBody(code int, b []byte) []byte {
	if code == http.StatusOK {
		return b
	}
	return reqIDPattern.ReplaceAll(b, []byte(`"requestId":"-"`))
}

var reqIDPattern = regexp.MustCompile(`"requestId":"[^"]*"`)

// qcTwin is a cached service next to an uncached oracle twin; every
// write goes to both, every read is compared byte for byte.
type qcTwin struct {
	cached, plain       *Service
	cachedURL, plainURL string
}

func newQCTwin(t *testing.T) *qcTwin {
	t.Helper()
	tw := &qcTwin{
		cached: New(Options{QCacheBytes: 1 << 20}),
		plain:  New(Options{}),
	}
	cts := httptest.NewServer(tw.cached.Handler())
	pts := httptest.NewServer(tw.plain.Handler())
	t.Cleanup(func() { cts.Close(); pts.Close(); tw.cached.Close(); tw.plain.Close() })
	tw.cachedURL, tw.plainURL = cts.URL, pts.URL
	return tw
}

func (tw *qcTwin) ingest(t *testing.T, m dataformat.Measurement) {
	t.Helper()
	for _, s := range []*Service{tw.cached, tw.plain} {
		mm := m
		if err := s.Ingest(&mm); err != nil {
			t.Fatal(err)
		}
	}
}

// checkGet asserts both services answer path with the same status and
// identical bytes, and returns the shared body.
func (tw *qcTwin) checkGet(t *testing.T, path string) []byte {
	t.Helper()
	ccode, cbody := getRaw(t, tw.cachedURL+path)
	pcode, pbody := getRaw(t, tw.plainURL+path)
	if ccode != pcode {
		t.Fatalf("GET %s: cached=%d uncached=%d", path, ccode, pcode)
	}
	cbody, pbody = normalizeBody(ccode, cbody), normalizeBody(pcode, pbody)
	if !bytes.Equal(cbody, pbody) {
		t.Fatalf("GET %s: cached body diverges from uncached\ncached:   %q\nuncached: %q", path, cbody, pbody)
	}
	return cbody
}

func qcMeasurement(device string, i int) dataformat.Measurement {
	return dataformat.Measurement{
		Source: "http://devproxy/", Device: device,
		Quantity: dataformat.Temperature, Unit: dataformat.Celsius,
		Value: 20 + float64(i), Timestamp: t0.Add(time.Duration(i) * time.Minute),
	}
}

const qcDevice2 = "urn:district:turin/building:b02/device:t-9"

// qcReadPaths is every cached read shape plus the uncached streaming
// encodings, which must stay correct with the cache turned on.
func qcReadPaths() []string {
	enc := func(q string) string {
		return "/v2/series/" + url.PathEscape(v2Device) + "/temperature/samples?" + q
	}
	return []string{
		"/v2/series",
		"/v2/series?device=urn:district:turin/*",
		enc("limit=200"),
		enc("limit=7"),
		enc("encoding=ndjson&limit=200"),
		enc("encoding=csv&limit=200"),
		"/v2/series/" + url.PathEscape(v2Device) + "/temperature/aggregate",
		"/v2/series/" + url.PathEscape(v2Device) + "/temperature/aggregate?window=5m",
		"/v2/series/" + url.PathEscape(v2Device) + "/temperature/latest",
	}
}

func TestQCacheByteIdenticalAndReadYourWrites(t *testing.T) {
	tw := newQCTwin(t)
	for i := 0; i < 60; i++ {
		tw.ingest(t, qcMeasurement(v2Device, i))
	}
	for i := 0; i < 25; i++ {
		tw.ingest(t, qcMeasurement(qcDevice2, i))
	}

	// First pass fills the cache, second must serve the same bytes from
	// it. Both passes are oracle-compared against the uncached twin.
	first := make(map[string][]byte)
	for _, p := range qcReadPaths() {
		first[p] = tw.checkGet(t, p)
	}
	for _, p := range qcReadPaths() {
		if again := tw.checkGet(t, p); !bytes.Equal(again, first[p]) {
			t.Fatalf("GET %s: repeat read changed without a write", p)
		}
	}
	if hits := scrapeMetric(t, tw.cachedURL, "repro_qcache_hits_total"); hits == 0 {
		t.Fatal("repeat reads produced no cache hits")
	}
	if misses := scrapeMetric(t, tw.cachedURL, "repro_qcache_misses_total"); misses == 0 {
		t.Fatal("first reads produced no cache misses")
	}

	// The batch query path, cached under the raw body key.
	body, err := json.Marshal(BatchQuery{
		Selectors: []SeriesSelector{
			{Device: v2Device, Quantity: "temperature"},
			{Device: qcDevice2, Quantity: "temperature"},
		},
		Limit: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	ccode, cbody := postRaw(t, tw.cachedURL+"/v2/query", body)
	pcode, pbody := postRaw(t, tw.plainURL+"/v2/query", body)
	if ccode != http.StatusOK || pcode != http.StatusOK || !bytes.Equal(cbody, pbody) {
		t.Fatalf("POST /v2/query: cached (%d, %q) vs uncached (%d, %q)", ccode, cbody, pcode, pbody)
	}
	if code, again := postRaw(t, tw.cachedURL+"/v2/query", body); code != http.StatusOK || !bytes.Equal(again, cbody) {
		t.Fatalf("POST /v2/query: repeat read changed without a write")
	}

	// Read-your-writes: every acked append must be visible on the very
	// next read, with bytes still matching the uncached twin.
	for i := 60; i < 64; i++ {
		tw.ingest(t, qcMeasurement(v2Device, i))
		for _, p := range qcReadPaths() {
			now := tw.checkGet(t, p)
			if strings.Contains(p, "limit=7") || strings.Contains(p, "/v2/series?") || p == "/v2/series" {
				continue // pages that cannot reflect an appended tail row
			}
			if bytes.Equal(now, first[p]) {
				t.Fatalf("GET %s: stale read after append %d", p, i)
			}
		}
		_, qnow := postRaw(t, tw.cachedURL+"/v2/query", body)
		_, qwant := postRaw(t, tw.plainURL+"/v2/query", body)
		if !bytes.Equal(qnow, qwant) || bytes.Equal(qnow, cbody) {
			t.Fatalf("POST /v2/query: stale read after append %d\ncached:   %q\nuncached: %q", i, qnow, qwant)
		}
	}
}

func TestQCacheResetShardInvalidates(t *testing.T) {
	tw := newQCTwin(t)
	for i := 0; i < 30; i++ {
		tw.ingest(t, qcMeasurement(v2Device, i))
	}
	warm := make(map[string][]byte)
	for _, p := range qcReadPaths() {
		warm[p] = tw.checkGet(t, p)
	}
	// Wipe the owning shard on both services — the restore/handoff
	// admin path — and require the cache to notice immediately.
	shard := tw.cached.qsh.ShardFor(v2Device)
	if err := tw.cached.qsh.ResetShard(shard); err != nil {
		t.Fatal(err)
	}
	if err := tw.plain.store.(*tsdb.Sharded).ResetShard(shard); err != nil {
		t.Fatal(err)
	}
	for _, p := range qcReadPaths() {
		now := tw.checkGet(t, p)
		if bytes.Equal(now, warm[p]) {
			t.Fatalf("GET %s: served pre-reset bytes after ResetShard", p)
		}
	}
}

func TestQCacheCompactionRetentionInvalidates(t *testing.T) {
	open := func(qcBytes int64) (*Service, string) {
		s, err := Open(Options{
			DataDir:       t.TempDir(),
			QCacheBytes:   qcBytes,
			SnapshotEvery: -1,
			Blocks:        tsdb.BlockPolicy{HeadWindow: time.Minute, RetentionRollup: time.Hour},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		return s, ts.URL
	}
	cached, cachedURL := open(1 << 20)
	plain, plainURL := open(0)

	// 2015-era rows: already past both the head window and the rollup
	// retention horizon, so one forced compaction cycle cuts them to a
	// block and a second drops the block entirely.
	for i := 0; i < 40; i++ {
		m := qcMeasurement(v2Device, i)
		if err := cached.Ingest(&m); err != nil {
			t.Fatal(err)
		}
		m = qcMeasurement(v2Device, i)
		if err := plain.Ingest(&m); err != nil {
			t.Fatal(err)
		}
	}
	check := func(p string) ([]byte, []byte) {
		t.Helper()
		ccode, cbody := getRaw(t, cachedURL+p)
		pcode, pbody := getRaw(t, plainURL+p)
		cbody, pbody = normalizeBody(ccode, cbody), normalizeBody(pcode, pbody)
		if ccode != pcode || !bytes.Equal(cbody, pbody) {
			t.Fatalf("GET %s: cached (%d, %q) diverges from uncached (%d, %q)", p, ccode, cbody, pcode, pbody)
		}
		return cbody, pbody
	}
	paths := qcReadPaths()
	warm := make(map[string][]byte)
	for _, p := range paths {
		warm[p], _ = check(p)
	}
	for _, s := range []*Service{cached, plain} {
		eng := s.store.(*tsdb.Sharded)
		for pass := 0; pass < 2; pass++ {
			if err := eng.CompactAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	changed := false
	for _, p := range paths {
		now, _ := check(p)
		if !bytes.Equal(now, warm[p]) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("compaction + retention dropped no data; the invalidation path went unexercised")
	}
}

func TestQCacheCoordinatorProxy(t *testing.T) {
	tc := newTestCluster(t, 4, 1<<20)
	dev := deviceInShard(0, tc.shards)
	base := tc.coordURL + "/v2/series/" + url.PathEscape(dev) + "/temperature/samples"

	put := func(from, n int) {
		t.Helper()
		var rows []string
		for i := from; i < from+n; i++ {
			at := t0.Add(time.Duration(i) * time.Minute).Format(time.RFC3339Nano)
			rows = append(rows, `{"at":"`+at+`","value":`+strconv.Itoa(20+i)+`}`)
		}
		req, err := http.NewRequest(http.MethodPut, base, strings.NewReader(`{"samples":[`+strings.Join(rows, ",")+`]}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		rsp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, rsp.Body)
		rsp.Body.Close()
		if rsp.StatusCode != http.StatusOK {
			t.Fatalf("PUT samples = %d", rsp.StatusCode)
		}
	}
	samplesAt := func(want int) []byte {
		t.Helper()
		code, body := getRaw(t, base+"?limit=100")
		if code != http.StatusOK {
			t.Fatalf("GET samples = %d (%s)", code, body)
		}
		var page SamplesPage
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatal(err)
		}
		if page.Count != want {
			t.Fatalf("page.Count = %d, want %d", page.Count, want)
		}
		return body
	}

	put(0, 5)
	first := samplesAt(5)
	if again := samplesAt(5); !bytes.Equal(again, first) {
		t.Fatal("repeat proxy read changed without a write")
	}
	if hits := scrapeMetric(t, tc.coordURL, "repro_qcache_hits_total"); hits == 0 {
		t.Fatal("repeat proxy read produced no coordinator cache hit")
	}

	// A write through the coordinator bumps its per-owner generation;
	// the very next read must show the new row, not the cached page.
	put(5, 1)
	second := samplesAt(6)
	if bytes.Equal(second, first) {
		t.Fatal("proxy read stale after forwarded write")
	}

	// A map epoch change re-keys every proxy entry; reads must keep
	// answering correctly through the flip.
	oldEpoch := scrapeMetric(t, tc.coordURL, "repro_cluster_map_epoch")
	owners := make([]string, tc.shards)
	for i := range owners {
		owners[i] = tc.nodeURLs[i%2]
	}
	if _, err := tc.master.ClusterMap().Set(cluster.Map{Shards: tc.shards, Owners: owners}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for scrapeMetric(t, tc.coordURL, "repro_cluster_map_epoch") <= oldEpoch {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never refreshed the new map epoch")
		}
		// The resolver refreshes on demand; proxied reads give it the
		// demand while we wait for the epoch gauge to move.
		getRaw(t, base+"?limit=100")
		time.Sleep(10 * time.Millisecond)
	}
	if after := samplesAt(6); !bytes.Equal(after, second) {
		t.Fatal("proxy read changed across an owner-preserving epoch flip")
	}
}
