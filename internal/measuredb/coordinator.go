package measuredb

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/proxyhttp"
	"repro/internal/qcache"
	"repro/internal/tsdb"
)

// Coordinator is the cluster's query/ingest router: a measuredb-shaped
// /v2 surface that owns no shards. It resolves the master-published
// shard map and fans each request out to the owner nodes — an exact
// device routes straight to its one owner, globs scatter to every node
// and k-way merge — so /v2 clients see one database however many hosts
// hold it.
//
// Routing is epoch-aware end to end: every forwarded request carries
// X-Cluster-Epoch, a node that rejects it with a retryable cluster
// envelope (stale epoch, shard frozen mid-handoff, ownership moved)
// triggers a map refresh and a bounded re-route, and page cursors are
// wrapped with the epoch they were cut under so pagination across a
// handoff is detectable (sample cursors are value-based, so a stale
// cursor still resumes correctly against the new owner — the wrap is
// observability, not state).
//
// Ingest is exactly-once end to end when the client sends an
// Idempotency-Key: the batch is partitioned per owner and forwarded
// under derived sub-keys ("<key>@<node>"), so a coordinator-level retry
// — or the client replaying the whole request after a 503 — replays
// already-applied partitions from each node's idempotency window
// instead of re-appending them.
type Coordinator struct {
	res *cluster.Resolver
	t   *api.Transport

	srv  proxyhttp.Server
	apiS *api.Server
	reg  *obs.Registry

	fanout       map[string]*obs.Histogram // per-route fan-out latency
	mu           sync.Mutex
	fwdErrs      map[string]*obs.Counter // per-node forward errors
	fwdRetries   map[string]*obs.Counter // per-node ownership retries
	staleCursors atomic.Uint64

	// qc caches successful per-device GET proxies, keyed by (route,
	// epoch, owner, request identity, the coordinator's write counter
	// for that owner). The counter bumps on every write this
	// coordinator forwards, so a client writing and reading through the
	// same coordinator keeps read-your-writes; writes arriving through
	// another coordinator are only seen once the epoch or LRU turns
	// over (the documented single-coordinator caveat). nil = disabled.
	qc        *qcache.Cache
	writeGens sync.Map // owner base URL -> *atomic.Uint64
}

// CoordinatorOptions configure a cluster coordinator.
type CoordinatorOptions struct {
	// Master is the base URL publishing /v1/cluster/map (required).
	Master string
	// Logger receives access-log lines; nil silences them.
	Logger api.Logger
	// Refresh is the shard-map cache TTL (0 = cluster.DefaultRefresh).
	Refresh time.Duration
	// Transport overrides the fan-out transport. The default keeps
	// per-call retries short so the coordinator's own refresh-and-reroute
	// loop — which can actually fix an ownership error — drives recovery.
	Transport *api.Transport
	// EnablePprof mounts /debug/pprof on the coordinator's interface.
	EnablePprof bool
	// SlowRequest is the span-duration threshold above which requests
	// are logged (0 = 1s; negative disables).
	SlowRequest time.Duration
	// QCacheBytes bounds the coordinator's per-device GET result cache
	// (see Coordinator.qc). Zero — the default — disables it.
	QCacheBytes int64
}

// coordinator fan-out and retry bounds.
const (
	// coordIngestAttempts bounds refresh-and-reroute rounds per ingest
	// request; rows still undeliverable after that fail the request with
	// a retryable envelope.
	coordIngestAttempts = 4
	// coordReadAttempts bounds re-routes of read fan-outs.
	coordReadAttempts = 2
)

// OpenCoordinator starts a coordinator over the cluster whose map the
// master publishes.
func OpenCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Master == "" {
		return nil, errors.New("coordinator requires a master URL")
	}
	t := opts.Transport
	if t == nil {
		t = &api.Transport{MaxAttempts: 2, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond}
	}
	c := &Coordinator{
		res:        cluster.NewResolver(opts.Master, t, opts.Refresh),
		t:          t,
		reg:        obs.NewRegistry(),
		fanout:     make(map[string]*obs.Histogram),
		fwdErrs:    make(map[string]*obs.Counter),
		fwdRetries: make(map[string]*obs.Counter),
	}
	for _, route := range []string{"series", "samples", "latest", "aggregate", "query", "ingest", "put_samples", "stats"} {
		c.fanout[route] = c.reg.Histogram("repro_cluster_fanout_seconds",
			"Coordinator fan-out latency per route (resolve + forward + merge).",
			obs.LatencyBuckets, obs.Labels{"route": route})
	}
	c.reg.GaugeFunc("repro_cluster_map_epoch",
		"Epoch of the coordinator's cached shard map (0 = not yet resolved).", nil,
		func() float64 { return float64(c.res.CachedEpoch()) })
	c.reg.CounterFunc("repro_cluster_stale_cursor_total",
		"Cursors presented from an older map epoch than the coordinator holds.", nil,
		func() float64 { return float64(c.staleCursors.Load()) })
	if opts.QCacheBytes > 0 {
		c.qc = qcache.New(opts.QCacheBytes)
		registerQCacheMetrics(c.reg, c.qc)
	}
	c.apiS = c.buildAPI(opts)
	return c, nil
}

// bumpWriteGen advances the coordinator-observed write counter of one
// owner node, unaddressing every cached read keyed under the old value.
func (c *Coordinator) bumpWriteGen(node string) {
	if c.qc == nil {
		return
	}
	g, _ := c.writeGens.LoadOrStore(node, new(atomic.Uint64))
	g.(*atomic.Uint64).Add(1)
}

// writeGenOf reads one owner's write counter.
func (c *Coordinator) writeGenOf(node string) uint64 {
	g, ok := c.writeGens.Load(node)
	if !ok {
		return 0
	}
	return g.(*atomic.Uint64).Load()
}

// forwardErr bumps the per-node forward-failure counter, lazily
// creating the labelset (node cardinality is bounded by cluster size).
func (c *Coordinator) forwardErr(node string) {
	c.mu.Lock()
	ctr := c.fwdErrs[node]
	if ctr == nil {
		ctr = c.reg.Counter("repro_cluster_forward_errors_total",
			"Forwarded requests that failed, by owner node.", obs.Labels{"node": node})
		c.fwdErrs[node] = ctr
	}
	c.mu.Unlock()
	ctr.Inc()
}

// forwardRetry bumps the per-node reroute counter.
func (c *Coordinator) forwardRetry(node string) {
	c.mu.Lock()
	ctr := c.fwdRetries[node]
	if ctr == nil {
		ctr = c.reg.Counter("repro_cluster_forward_retries_total",
			"Forwards re-routed after a map refresh, by the node that rejected.", obs.Labels{"node": node})
		c.fwdRetries[node] = ctr
	}
	c.mu.Unlock()
	ctr.Inc()
}

// buildAPI mounts the coordinator's /v2 surface (mirroring mountV2) and
// the v1 odds and ends clients expect from a measuredb base URL.
func (c *Coordinator) buildAPI(opts CoordinatorOptions) *api.Server {
	srv := api.NewServer(api.Options{
		Service:     "measuredb-coordinator",
		Logger:      opts.Logger,
		EnablePprof: opts.EnablePprof,
		SlowRequest: opts.SlowRequest,
	})
	srv.Metrics().AttachRegistry(c.reg)
	srv.HandleV2(http.MethodGet, "/series", http.HandlerFunc(c.v2Series))
	srv.HandleV2(http.MethodGet, "/series/{device}/{quantity}/samples", c.deviceProxy("samples"))
	srv.HandleV2(http.MethodGet, "/series/{device}/{quantity}/latest", c.deviceProxy("latest"))
	srv.HandleV2(http.MethodGet, "/series/{device}/{quantity}/aggregate", c.deviceProxy("aggregate"))
	srv.HandleV2(http.MethodPost, "/query", http.HandlerFunc(c.v2Query))
	srv.HandleV2(http.MethodPost, "/ingest", http.HandlerFunc(c.v2Ingest))
	srv.HandleV2(http.MethodPut, "/series/{device}/{quantity}/samples", c.deviceProxy("put_samples"))
	srv.Get("/stats", c.stats)
	srv.Get("/cluster/map", func(ctx context.Context, q url.Values) (any, error) {
		return c.resolve(ctx)
	})
	return srv
}

// Handler returns the coordinator's web interface.
func (c *Coordinator) Handler() http.Handler { return c.apiS.Handler() }

// Serve binds the web interface and returns the bound address.
func (c *Coordinator) Serve(addr string) (string, error) {
	return c.srv.Serve(addr, c.Handler())
}

// Close stops the web interface.
func (c *Coordinator) Close() { c.srv.Close() }

// resolve returns the freshest shard map available, surfacing "no map
// yet" as a retryable condition — a cluster client may simply have
// started before the topology was published.
func (c *Coordinator) resolve(ctx context.Context) (cluster.Map, error) {
	m, err := c.res.Get(ctx)
	if err != nil {
		return cluster.Map{}, &api.Error{Status: http.StatusServiceUnavailable, Code: "no_cluster_map",
			Err: fmt.Errorf("no shard map: %w", err)}
	}
	return m, nil
}

// observe records one route's fan-out latency.
func (c *Coordinator) observe(route string, start time.Time) {
	if h := c.fanout[route]; h != nil {
		h.ObserveDuration(time.Since(start))
	}
}

// ---------------------------------------------------------------------
// Epoch-wrapped cursors
// ---------------------------------------------------------------------

// wrapEpochCursor stamps a node cursor with the map epoch it was cut
// under: base64url("v1:<epoch>:<node cursor>").
func wrapEpochCursor(epoch uint64, inner string) string {
	if inner == "" {
		return ""
	}
	return base64.RawURLEncoding.EncodeToString(
		[]byte("v1:" + strconv.FormatUint(epoch, 10) + ":" + inner))
}

// unwrapEpochCursor splits a wrapped cursor; unwrapped cursors (a
// client that talked to a node directly, or pre-cluster traffic) pass
// through untouched with wrapped=false.
func unwrapEpochCursor(s string) (epoch uint64, inner string, wrapped bool) {
	if s == "" {
		return 0, "", false
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, s, false
	}
	rest, ok := strings.CutPrefix(string(raw), "v1:")
	if !ok {
		return 0, s, false
	}
	es, inner, ok := strings.Cut(rest, ":")
	if !ok {
		return 0, s, false
	}
	e, err := strconv.ParseUint(es, 10, 64)
	if err != nil {
		return 0, s, false
	}
	return e, inner, true
}

// unwrapCursorParam rewrites q's cursor to the node-level cursor,
// counting cursors cut under an older epoch than the current map's
// (sample and catalog cursors are value-based, so they still resume
// correctly — the counter surfaces pagination that crossed a handoff).
func (c *Coordinator) unwrapCursorParam(q url.Values, cur cluster.Map) {
	raw := q.Get("cursor")
	if raw == "" {
		return
	}
	epoch, inner, wrapped := unwrapEpochCursor(raw)
	if !wrapped {
		return
	}
	if epoch < cur.Epoch {
		c.staleCursors.Add(1)
	}
	q.Set("cursor", inner)
}

// ---------------------------------------------------------------------
// Forwarding plumbing
// ---------------------------------------------------------------------

// reroutable reports whether a forward error should trigger a map
// refresh and re-route: the node said so explicitly (a retryable
// cluster envelope), any 503, or the node was plain unreachable — in
// every case the freshest map is the coordinator's best next move.
func reroutable(err error) bool {
	var se *api.StatusError
	if !errors.As(err, &se) {
		return true // transport-level failure: node gone, maybe moved
	}
	return se.Status == http.StatusServiceUnavailable
}

// writeUpstream relays a forward failure to the client, preserving the
// node's envelope (status, code, message) when there is one.
func writeUpstream(w http.ResponseWriter, r *http.Request, err error) {
	var se *api.StatusError
	if !errors.As(err, &se) {
		api.WriteError(w, r, api.WithStatus(http.StatusBadGateway, err))
		return
	}
	if se.Status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	var env api.Envelope
	if json.Unmarshal([]byte(se.Body), &env) == nil && env.Error != "" {
		api.WriteError(w, r, &api.Error{Status: se.Status, Code: env.Code, Err: errors.New(env.Error)})
		return
	}
	api.WriteErrorStatus(w, r, se.Status, errors.New(se.Body))
}

// forward performs one epoch-stamped call to a node, bumping the
// per-node error counter on failure.
func (c *Coordinator) forward(ctx context.Context, method, u string, epoch uint64, header http.Header, body []byte) ([]byte, *http.Response, error) {
	if header == nil {
		header = http.Header{}
	}
	header.Set(cluster.EpochHeader, strconv.FormatUint(epoch, 10))
	raw, rsp, err := c.t.Do(ctx, method, u, header, body)
	if err != nil {
		c.forwardErr(nodeOf(u))
	}
	return raw, rsp, err
}

// nodeOf reduces a forwarded URL to its node base for metric labels.
func nodeOf(u string) string {
	if p, err := url.Parse(u); err == nil && p.Host != "" {
		return p.Scheme + "://" + p.Host
	}
	return u
}

// ---------------------------------------------------------------------
// Per-device routes: one owner, straight proxy
// ---------------------------------------------------------------------

// deviceProxy forwards one exact-device route to the shard owner,
// re-resolving and re-routing once when the owner rejects with a
// retryable cluster envelope. JSON sample pages get their next_cursor
// epoch-wrapped; other bodies stream back verbatim.
func (c *Coordinator) deviceProxy(route string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer c.observe(route, time.Now())
		p := api.ParamsOf(r)
		device, quantity := p.Get("device"), p.Get("quantity")
		if device == "" || quantity == "" {
			api.WriteError(w, r, api.BadRequest(errors.New("missing device or quantity path segment")))
			return
		}
		var body []byte
		if r.Body != nil && (r.Method == http.MethodPut || r.Method == http.MethodPost) {
			var err error
			if body, err = readAll(w, r); err != nil {
				api.WriteError(w, r, api.BadRequest(err))
				return
			}
		}
		suffix := route
		if route == "put_samples" { // PUT shares the samples path
			suffix = "samples"
		}
		var lastErr error
		for attempt := 0; attempt < coordReadAttempts; attempt++ {
			m, err := c.resolve(r.Context())
			if err != nil {
				api.WriteError(w, r, err)
				return
			}
			q := r.URL.Query()
			c.unwrapCursorParam(q, m)
			owner := m.Owner(m.ShardFor(device))
			encodedQ := q.Encode()
			u := api.URL2(owner, "/series/"+url.PathEscape(device)+"/"+url.PathEscape(quantity)+"/"+suffix+"?"+encodedQ)
			header := http.Header{}
			for _, h := range []string{"Accept", "Content-Type", "Idempotency-Key"} {
				if v := r.Header.Get(h); v != "" {
					header.Set(h, v)
				}
			}
			// GET proxies consult the per-owner cache: the key carries
			// the map epoch and this coordinator's write counter for the
			// owner, so a handoff or a forwarded write re-keys it.
			var ckey string
			if c.qc != nil && r.Method == http.MethodGet {
				sc := getQCScratch()
				sc.k.Str("proxy").Str(route).Uint(m.Epoch).Str(owner).
					Str(device).Str(quantity).Str(encodedQ).
					Str(r.Header.Get("Accept")).Uint(c.writeGenOf(owner))
				ckey = sc.k.String()
				putQCScratch(sc)
				if v, hit := c.qc.Get(ckey); hit {
					ct, cachedRaw := splitCachedCT(v)
					c.relayParts(w, http.StatusOK, ct, cachedRaw, route, m.Epoch)
					return
				}
			}
			raw, rsp, err := c.forward(r.Context(), r.Method, u, m.Epoch, header, body)
			if err == nil {
				if route == "put_samples" {
					c.bumpWriteGen(owner)
				}
				if ckey != "" && rsp.StatusCode == http.StatusOK {
					c.qc.Put(ckey, joinCachedCT(rsp.Header.Get("Content-Type"), raw))
				}
				c.relayBody(w, rsp, raw, route, m.Epoch)
				return
			}
			lastErr = err
			if !reroutable(err) {
				break
			}
			c.forwardRetry(nodeOf(owner))
			c.res.Refresh(r.Context())
		}
		writeUpstream(w, r, lastErr)
	})
}

// joinCachedCT packs a content type and body into one cache value;
// splitCachedCT undoes it. The NUL separator cannot appear in a media
// type.
func joinCachedCT(ct string, raw []byte) []byte {
	v := make([]byte, 0, len(ct)+1+len(raw))
	v = append(v, ct...)
	v = append(v, 0)
	return append(v, raw...)
}

func splitCachedCT(v []byte) (string, []byte) {
	i := bytes.IndexByte(v, 0)
	if i < 0 {
		return "", v
	}
	return string(v[:i]), v[i+1:]
}

// relayBody writes a successful node response back to the client,
// epoch-wrapping the cursor of JSON sample pages.
func (c *Coordinator) relayBody(w http.ResponseWriter, rsp *http.Response, raw []byte, route string, epoch uint64) {
	c.relayParts(w, rsp.StatusCode, rsp.Header.Get("Content-Type"), raw, route, epoch)
}

// relayParts is relayBody over already-split response parts (the cached
// replay path shares it, so hits and misses emit identical bytes).
func (c *Coordinator) relayParts(w http.ResponseWriter, status int, ct string, raw []byte, route string, epoch uint64) {
	if route == "samples" && strings.HasPrefix(ct, "application/json") {
		var page SamplesPage
		if json.Unmarshal(raw, &page) == nil {
			page.NextCursor = wrapEpochCursor(epoch, page.NextCursor)
			api.WriteJSON(w, status, page)
			return
		}
	}
	if ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(status)
	_, _ = w.Write(raw)
}

// readAll buffers a bounded request body.
func readAll(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}
	return raw, nil
}

// ---------------------------------------------------------------------
// GET /v2/series: scatter the catalog, merge sorted
// ---------------------------------------------------------------------

func (c *Coordinator) v2Series(w http.ResponseWriter, r *http.Request) {
	defer c.observe("series", time.Now())
	q := r.URL.Query()
	limit, err := pageLimit(q)
	if err != nil {
		api.WriteError(w, r, api.BadRequest(err))
		return
	}
	m, rerr := c.resolve(r.Context())
	if rerr != nil {
		api.WriteError(w, r, rerr)
		return
	}
	c.unwrapCursorParam(q, m)
	nodes := m.Nodes()
	pages := make([]*SeriesPage, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			u := api.URL2(node, "/series?"+q.Encode())
			raw, _, err := c.forward(r.Context(), http.MethodGet, u, m.Epoch, nil, nil)
			if err != nil {
				errs[i] = err
				return
			}
			var page SeriesPage
			if err := json.Unmarshal(raw, &page); err != nil {
				errs[i] = fmt.Errorf("bad series page from %s: %v", node, err)
				return
			}
			pages[i] = &page
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			writeUpstream(w, r, err)
			return
		}
	}
	merged, more := mergeSeriesPages(pages, limit)
	out := SeriesPage{Series: merged, Count: len(merged)}
	if more && len(merged) > 0 {
		last := merged[len(merged)-1]
		out.NextCursor = wrapEpochCursor(m.Epoch,
			encodeSeriesCursor(tsdb.SeriesKey{Device: last.Device, Quantity: last.Quantity}))
	}
	api.WriteJSON(w, http.StatusOK, out)
}

// mergeSeriesPages k-way merges per-node sorted catalog pages, cut to
// limit. Keys are disjoint across nodes except mid-handoff, when both
// the frozen source and the restored target list the shard — adjacent
// duplicates collapse keeping the larger sample count.
func mergeSeriesPages(pages []*SeriesPage, limit int) (out []SeriesInfo, more bool) {
	pos := make([]int, len(pages))
	for {
		best := -1
		for i, p := range pages {
			if p == nil || pos[i] >= len(p.Series) {
				// A node page cut at its own limit has more behind it.
				if p != nil && p.NextCursor != "" && pos[i] >= len(p.Series) {
					more = true
				}
				continue
			}
			if best < 0 || seriesInfoLess(p.Series[pos[i]], pages[best].Series[pos[best]]) {
				best = i
			}
		}
		if best < 0 {
			return out, more
		}
		next := pages[best].Series[pos[best]]
		pos[best]++
		if n := len(out); n > 0 && out[n-1].Device == next.Device && out[n-1].Quantity == next.Quantity {
			if next.Samples > out[n-1].Samples {
				out[n-1].Samples = next.Samples
			}
			continue
		}
		if len(out) == limit {
			return out, true
		}
		out = append(out, next)
	}
}

func seriesInfoLess(a, b SeriesInfo) bool {
	if a.Device != b.Device {
		return a.Device < b.Device
	}
	return a.Quantity < b.Quantity
}

// ---------------------------------------------------------------------
// POST /v2/query: per-selector routing, k-way result merge
// ---------------------------------------------------------------------

func (c *Coordinator) v2Query(w http.ResponseWriter, r *http.Request) {
	defer c.observe("query", time.Now())
	var req BatchQuery
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody)).Decode(&req); err != nil {
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad request body: %v", err)))
		return
	}
	if _, err := planBatch(req); err != nil {
		api.WriteError(w, r, err)
		return
	}
	ndjson := false
	switch enc := r.URL.Query().Get("encoding"); {
	case enc == "ndjson" || (enc == "" && api.NegotiateMediaType(r.Header.Get("Accept"), "application/json", NDJSONType) == NDJSONType):
		ndjson = true
	case enc == "" || enc == "json":
	default:
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad encoding %q (want json or ndjson)", enc)))
		return
	}
	var out BatchResponse
	var lastErr error
	for attempt := 0; attempt < coordReadAttempts; attempt++ {
		m, rerr := c.resolve(r.Context())
		if rerr != nil {
			api.WriteError(w, r, rerr)
			return
		}
		out, lastErr = c.fanQuery(r.Context(), m, req)
		if lastErr == nil {
			break
		}
		if !reroutable(lastErr) {
			writeUpstream(w, r, lastErr)
			return
		}
		c.res.Refresh(r.Context())
	}
	if lastErr != nil {
		writeUpstream(w, r, lastErr)
		return
	}
	if ndjson {
		c.streamMergedBatch(w, out)
		return
	}
	api.WriteJSON(w, http.StatusOK, out)
}

// fanQuery partitions the selectors over the map — exact devices to
// their one owner, globs to every node — runs the per-node batches
// concurrently, and merges per-selector results back into request
// order.
func (c *Coordinator) fanQuery(ctx context.Context, m cluster.Map, req BatchQuery) (BatchResponse, error) {
	nodes := m.Nodes()
	type nodeReq struct {
		sels []SeriesSelector
		idx  []int // global selector index per entry
	}
	perNode := make(map[string]*nodeReq, len(nodes))
	fanned := make([]bool, len(req.Selectors)) // true: scattered to all nodes
	for i, sel := range req.Selectors {
		var targets []string
		if sel.Device != "" && !hasGlob(sel.Device) {
			targets = []string{m.Owner(m.ShardFor(sel.Device))}
		} else {
			targets = nodes
			fanned[i] = true
		}
		for _, node := range targets {
			nr := perNode[node]
			if nr == nil {
				nr = &nodeReq{}
				perNode[node] = nr
			}
			nr.sels = append(nr.sels, sel)
			nr.idx = append(nr.idx, i)
		}
	}

	type nodeRes struct {
		node string
		rsp  BatchResponse
		err  error
	}
	results := make([]nodeRes, 0, len(perNode))
	for node := range perNode {
		results = append(results, nodeRes{node: node})
	}
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := results[i].node
			nr := perNode[node]
			body, _ := json.Marshal(BatchQuery{
				Selectors: nr.sels, From: req.From, To: req.To,
				Limit: req.Limit, Aggregate: req.Aggregate, Window: req.Window,
			})
			u := api.URL2(node, "/query")
			h := http.Header{"Content-Type": {"application/json"}}
			raw, _, err := c.forward(ctx, http.MethodPost, u, m.Epoch, h, body)
			if err != nil {
				results[i].err = err
				return
			}
			results[i].err = json.Unmarshal(raw, &results[i].rsp)
		}(i)
	}
	wg.Wait()

	parts := make([][]BatchResult, len(req.Selectors))
	for _, nr := range results {
		if nr.err != nil {
			return BatchResponse{}, nr.err
		}
		idx := perNode[nr.node].idx
		if len(nr.rsp.Results) != len(idx) {
			return BatchResponse{}, fmt.Errorf("node %s returned %d results for %d selectors", nr.node, len(nr.rsp.Results), len(idx))
		}
		for local, g := range idx {
			parts[g] = append(parts[g], nr.rsp.Results[local])
		}
	}
	out := BatchResponse{Results: make([]BatchResult, len(req.Selectors))}
	for i := range parts {
		out.Results[i] = mergeBatchResults(req.Selectors[i], parts[i])
		for j := range out.Results[i].Series {
			out.Series++
			out.Samples += out.Results[i].Series[j].sampleCount()
		}
	}
	return out, nil
}

// mergeBatchResults folds one selector's per-node results into one:
// series lists k-way merge by key (disjoint across nodes, duplicate
// keys mid-handoff collapse keeping the fuller copy), and "no matching
// series" from one node is dropped when another node matched.
func mergeBatchResults(sel SeriesSelector, parts []BatchResult) BatchResult {
	out := BatchResult{Selector: sel}
	if len(parts) == 1 {
		out.Series, out.Error = parts[0].Series, parts[0].Error
		return out
	}
	pos := make([]int, len(parts))
	for {
		best := -1
		for i, p := range parts {
			if pos[i] >= len(p.Series) {
				continue
			}
			if best < 0 || batchSeriesLess(p.Series[pos[i]], parts[best].Series[pos[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		next := parts[best].Series[pos[best]]
		pos[best]++
		if n := len(out.Series); n > 0 && out.Series[n-1].Device == next.Device && out.Series[n-1].Quantity == next.Quantity {
			if next.sampleCount() > out.Series[n-1].sampleCount() {
				out.Series[n-1] = next
			}
			continue
		}
		out.Series = append(out.Series, next)
	}
	if len(out.Series) == 0 {
		for _, p := range parts {
			if p.Error != "" {
				out.Error = p.Error
				break
			}
		}
		if out.Error == "" {
			out.Error = "no matching series"
		}
	}
	return out
}

func batchSeriesLess(a, b BatchSeries) bool {
	if a.Device != b.Device {
		return a.Device < b.Device
	}
	return a.Quantity < b.Quantity
}

// streamMergedBatch renders a merged batch response as NDJSON rows plus
// the summary trailer — same wire shape as a node's streamed batch,
// materialized from the merged result (per-series rows are already
// limit-bounded, so memory stays bounded too).
func (c *Coordinator) streamMergedBatch(w http.ResponseWriter, out BatchResponse) {
	w.Header().Set("Content-Type", NDJSONType+"; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(row BatchRow) bool { return enc.Encode(row) == nil }
	for i := range out.Results {
		res := &out.Results[i]
		if res.Error != "" {
			if !emit(BatchRow{Selector: i, Error: res.Error}) {
				return
			}
			continue
		}
		for j := range res.Series {
			bs := &res.Series[j]
			row := BatchRow{Selector: i, Device: bs.Device, Quantity: bs.Quantity}
			switch {
			case bs.Aggregate != nil:
				row.Aggregate = bs.Aggregate
				if !emit(row) {
					return
				}
			case bs.Buckets != nil:
				for bi := range bs.Buckets {
					row.Bucket = &bs.Buckets[bi]
					if !emit(row) {
						return
					}
				}
			default:
				for si := range bs.Samples {
					at, v := bs.Samples[si].At, bs.Samples[si].Value
					row.At, row.Value = &at, &v
					if !emit(row) {
						return
					}
				}
				if bs.Truncated {
					if !emit(BatchRow{Selector: i, Device: bs.Device, Quantity: bs.Quantity, Truncated: true}) {
						return
					}
				}
			}
		}
	}
	_ = enc.Encode(BatchTrailer{Summary: true, Series: out.Series, Samples: out.Samples})
}

// ---------------------------------------------------------------------
// POST /v2/ingest: partition by owner, forward, remap row errors
// ---------------------------------------------------------------------

// pendingRow is one not-yet-delivered ingest row with its position in
// the client's request body.
type pendingRow struct {
	idx int
	p   Point
}

func (c *Coordinator) v2Ingest(w http.ResponseWriter, r *http.Request) {
	defer c.observe("ingest", time.Now())
	key := r.Header.Get("Idempotency-Key")
	ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";")
	ndjson := strings.TrimSpace(ct) == NDJSONType
	switch enc := r.URL.Query().Get("encoding"); enc {
	case "":
	case "json":
		ndjson = false
	case "ndjson":
		ndjson = true
	default:
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad encoding %q (want json or ndjson)", enc)))
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	var pts []Point
	var res IngestResult
	reject := func(row int, msg string) {
		res.Rejected++
		if len(res.Errors) < maxIngestErrors {
			res.Errors = append(res.Errors, RowError{Row: row, Error: msg})
		} else {
			res.ErrorsTruncated = true
		}
	}
	if ndjson {
		dec := json.NewDecoder(body)
		for {
			var p Point
			if err := dec.Decode(&p); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				reject(len(pts), "malformed row: "+err.Error())
				break
			}
			pts = append(pts, p)
		}
	} else {
		var batch IngestBatch
		if err := json.NewDecoder(body).Decode(&batch); err != nil {
			api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad request body: %v", err)))
			return
		}
		if len(batch.Rows) == 0 {
			api.WriteError(w, r, api.BadRequest(errors.New("empty rows")))
			return
		}
		pts = batch.Rows
	}

	pending := make([]pendingRow, len(pts))
	for i, p := range pts {
		pending[i] = pendingRow{idx: i, p: p}
	}
	var lastErr error
	for attempt := 0; attempt < coordIngestAttempts && len(pending) > 0; attempt++ {
		m, rerr := c.resolve(r.Context())
		if rerr != nil {
			api.WriteError(w, r, rerr)
			return
		}
		var failed []pendingRow
		failed, lastErr = c.fanIngest(r.Context(), m, key, pending, &res, reject)
		if lastErr == nil && len(failed) == 0 {
			pending = nil
			break
		}
		pending = failed
		if lastErr != nil && !reroutable(lastErr) {
			writeUpstream(w, r, lastErr)
			return
		}
		c.res.Refresh(r.Context())
	}
	if len(pending) > 0 {
		// Some rows never reached an owner. The request fails whole with
		// a retryable envelope: a keyed client retry replays the applied
		// partitions from each node's idempotency window (sub-keys) and
		// re-attempts only what is still missing — exactly-once stands.
		w.Header().Set("Retry-After", "1")
		err := lastErr
		if err == nil {
			err = errors.New("rows undeliverable after re-routing")
		}
		api.WriteError(w, r, &api.Error{Status: http.StatusServiceUnavailable, Code: "rows_undelivered",
			Err: fmt.Errorf("%d of %d rows not yet applied: %v; retry with the same Idempotency-Key", len(pending), len(pts), err)})
		return
	}
	sortRowErrors(res.Errors)
	api.WriteJSON(w, http.StatusOK, res)
}

// fanIngest delivers one round: partitions pending rows by owner,
// forwards the partitions concurrently under derived idempotency
// sub-keys, folds per-row outcomes into res (indices remapped to the
// client's request), and returns the rows whose owner call failed.
func (c *Coordinator) fanIngest(ctx context.Context, m cluster.Map, key string, pending []pendingRow, res *IngestResult, reject func(int, string)) ([]pendingRow, error) {
	perNode := make(map[string][]pendingRow)
	for _, pr := range pending {
		node := m.Owner(m.ShardFor(pr.p.Device))
		perNode[node] = append(perNode[node], pr)
	}
	type nodeOut struct {
		node string
		rows []pendingRow
		rsp  IngestResult
		err  error
	}
	outs := make([]nodeOut, 0, len(perNode))
	for node, rows := range perNode {
		outs = append(outs, nodeOut{node: node, rows: rows})
	}
	var wg sync.WaitGroup
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := &outs[i]
			rows := make([]Point, len(o.rows))
			for j, pr := range o.rows {
				rows[j] = pr.p
			}
			body, _ := json.Marshal(IngestBatch{Rows: rows})
			h := http.Header{"Content-Type": {"application/json"}}
			if key != "" {
				// Derived sub-key: stable per (client key, node), so this
				// partition replays instead of re-applying on any retry.
				h.Set("Idempotency-Key", key+"@"+o.node)
			}
			u := api.URL2(o.node, "/ingest")
			raw, _, err := c.forward(ctx, http.MethodPost, u, m.Epoch, h, body)
			if err != nil {
				o.err = err
				return
			}
			o.err = json.Unmarshal(raw, &o.rsp)
		}(i)
	}
	wg.Wait()
	var failed []pendingRow
	var lastErr error
	for _, o := range outs {
		if o.err != nil {
			c.forwardRetry(nodeOf(o.node))
			failed = append(failed, o.rows...)
			lastErr = o.err
			continue
		}
		c.bumpWriteGen(o.node)
		res.Accepted += o.rsp.Accepted
		for _, re := range o.rsp.Errors {
			if re.Row >= 0 && re.Row < len(o.rows) {
				reject(o.rows[re.Row].idx, re.Error)
			}
		}
		// Rejected rows beyond the node's error cap still count.
		for extra := o.rsp.Rejected - len(o.rsp.Errors); extra > 0; extra-- {
			res.Rejected++
			res.ErrorsTruncated = true
		}
	}
	return failed, lastErr
}

// sortRowErrors orders per-row errors by request position.
func sortRowErrors(errs []RowError) {
	sort.Slice(errs, func(i, j int) bool { return errs[i].Row < errs[j].Row })
}

// ---------------------------------------------------------------------
// GET /v1/stats: sum the cluster
// ---------------------------------------------------------------------

// stats fans /v1/stats over the nodes and sums the counters into the
// familiar single-node shape (stream stats stay per-node).
func (c *Coordinator) stats(ctx context.Context, q url.Values) (any, error) {
	defer c.observe("stats", time.Now())
	m, err := c.resolve(ctx)
	if err != nil {
		return nil, err
	}
	nodes := m.Nodes()
	parts := make([]Stats, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			errs[i] = c.t.GetJSON(ctx, api.URL(node, "/stats"), &parts[i])
		}(i, node)
	}
	wg.Wait()
	var out Stats
	for i := range parts {
		if errs[i] != nil {
			return nil, api.WithStatus(http.StatusBadGateway,
				fmt.Errorf("stats from %s: %v", nodes[i], errs[i]))
		}
		out.Ingested += parts[i].Ingested
		out.Rejected += parts[i].Rejected
		out.Store.Series += parts[i].Store.Series
		out.Store.Samples += parts[i].Store.Samples
		out.Store.DroppedRows += parts[i].Store.DroppedRows
		out.DedupPersistErrors += parts[i].DedupPersistErrors
	}
	out.Store.Shards = m.Shards
	return out, nil
}
