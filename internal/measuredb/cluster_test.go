package measuredb

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/tsdb"
)

func TestEpochCursorRoundTrip(t *testing.T) {
	inner := encodeCursor(tsdb.Cursor{After: time.Unix(12, 34).UTC(), Seen: 2})
	wrapped := wrapEpochCursor(7, inner)
	epoch, got, ok := unwrapEpochCursor(wrapped)
	if !ok || epoch != 7 || got != inner {
		t.Fatalf("unwrap(%q) = (%d, %q, %v), want (7, %q, true)", wrapped, epoch, got, ok, inner)
	}
	if wrapEpochCursor(7, "") != "" {
		t.Fatal("wrapping an empty cursor should stay empty")
	}
	// Plain node cursors pass through unwrapped.
	if e, got, ok := unwrapEpochCursor(inner); ok || e != 0 || got != inner {
		t.Fatalf("plain cursor mangled: (%d, %q, %v)", e, got, ok)
	}
	if _, got, ok := unwrapEpochCursor("!!not-base64!!"); ok || got != "!!not-base64!!" {
		t.Fatal("junk cursor should pass through for the node to reject")
	}
}

func TestMergeSeriesPages(t *testing.T) {
	a := &SeriesPage{Series: []SeriesInfo{
		{Device: "a", Quantity: "q", Samples: 1},
		{Device: "c", Quantity: "q", Samples: 3},
	}}
	b := &SeriesPage{Series: []SeriesInfo{
		{Device: "b", Quantity: "q", Samples: 2},
		{Device: "c", Quantity: "q", Samples: 5}, // mid-handoff duplicate
		{Device: "d", Quantity: "q", Samples: 4},
	}}
	out, more := mergeSeriesPages([]*SeriesPage{a, b}, 10)
	want := []string{"a", "b", "c", "d"}
	if len(out) != len(want) || more {
		t.Fatalf("merged %d series (more=%v), want %d", len(out), more, len(want))
	}
	for i, dev := range want {
		if out[i].Device != dev {
			t.Fatalf("out[%d].Device = %q, want %q", i, out[i].Device, dev)
		}
	}
	if out[2].Samples != 5 {
		t.Fatalf("duplicate collapse kept %d samples, want the fuller copy (5)", out[2].Samples)
	}
	out, more = mergeSeriesPages([]*SeriesPage{a, b}, 2)
	if len(out) != 2 || !more {
		t.Fatalf("limit cut: got %d series, more=%v", len(out), more)
	}
}

func TestMergeBatchResults(t *testing.T) {
	sel := SeriesSelector{Device: "*"}
	merged := mergeBatchResults(sel, []BatchResult{
		{Selector: sel, Error: "no matching series"},
		{Selector: sel, Series: []BatchSeries{{Device: "x", Quantity: "q", Samples: []Point{{Value: 1}}}}},
	})
	if merged.Error != "" || len(merged.Series) != 1 {
		t.Fatalf("one-node match should drop the other's miss: %+v", merged)
	}
	merged = mergeBatchResults(sel, []BatchResult{
		{Selector: sel, Error: "no matching series"},
		{Selector: sel, Error: "no matching series"},
	})
	if merged.Error != "no matching series" {
		t.Fatalf("all-miss should keep the error, got %+v", merged)
	}
}

// testCluster is a 2-node in-memory cluster behind one coordinator.
type testCluster struct {
	master    *master.Master
	masterURL string
	nodes     []*Service
	nodeURLs  []string
	coord     *Coordinator
	coordURL  string
	shards    int
}

// newTestCluster builds the harness; an optional qcacheBytes argument
// turns on the coordinator's per-owner result cache.
func newTestCluster(t *testing.T, shards int, qcacheBytes ...int64) *testCluster {
	t.Helper()
	tc := &testCluster{shards: shards}
	tc.master = master.New(master.Options{})
	addr, err := tc.master.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tc.masterURL = "http://" + addr
	t.Cleanup(tc.master.Close)
	for i := 0; i < 2; i++ {
		n, err := Open(Options{Shards: shards, Cluster: &ClusterOptions{
			Master:  tc.masterURL,
			Refresh: 10 * time.Millisecond,
		}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		addr, err := n.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n.SetClusterSelf("http://" + addr)
		tc.nodes = append(tc.nodes, n)
		tc.nodeURLs = append(tc.nodeURLs, "http://"+addr)
	}
	owners := make([]string, shards)
	for i := range owners {
		owners[i] = tc.nodeURLs[i%2]
	}
	if _, err := tc.master.ClusterMap().Set(cluster.Map{Shards: shards, Owners: owners}); err != nil {
		t.Fatal(err)
	}
	copts := CoordinatorOptions{Master: tc.masterURL, Refresh: 10 * time.Millisecond}
	if len(qcacheBytes) > 0 {
		copts.QCacheBytes = qcacheBytes[0]
	}
	tc.coord, err = OpenCoordinator(copts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.coord.Close)
	caddr, err := tc.coord.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tc.coordURL = "http://" + caddr
	return tc
}

// deviceInShard fabricates a device URI hashing to the wanted shard.
func deviceInShard(shard, shards int) string {
	for i := 0; ; i++ {
		dev := fmt.Sprintf("urn:district:t/b%02d/d%d", shard, i)
		if tsdb.ShardOf(dev, shards) == shard {
			return dev
		}
	}
}

// postJSON posts a body and returns the status plus decoded envelope or
// result.
func postJSON(t *testing.T, url string, hdr map[string]string, body, out any) (int, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(rsp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return rsp.StatusCode, rsp.Header
}

func TestClusterRoutingAndGuards(t *testing.T) {
	const shards = 4
	tc := newTestCluster(t, shards)
	// In the past: zero-To queries default their upper bound to now.
	base := time.Now().UTC().Add(-time.Hour).Truncate(time.Second)

	// One device per shard, ingested through the coordinator.
	var rows []Point
	devs := make([]string, shards)
	for s := 0; s < shards; s++ {
		devs[s] = deviceInShard(s, shards)
		for j := 0; j < 3; j++ {
			rows = append(rows, Point{Device: devs[s], Quantity: "temperature",
				At: base.Add(time.Duration(j) * time.Second), Value: float64(s*10 + j)})
		}
	}
	var res IngestResult
	status, _ := postJSON(t, tc.coordURL+"/v2/ingest", map[string]string{"Idempotency-Key": "k1"},
		IngestBatch{Rows: rows}, &res)
	if status != http.StatusOK || res.Accepted != len(rows) || res.Rejected != 0 {
		t.Fatalf("coordinator ingest: status=%d res=%+v", status, res)
	}

	// Rows landed only on their owners.
	for s, dev := range devs {
		owner, other := tc.nodes[s%2], tc.nodes[(s+1)%2]
		if n := owner.Store().Len(tsdb.SeriesKey{Device: dev, Quantity: "temperature"}); n != 3 {
			t.Fatalf("shard %d owner holds %d samples, want 3", s, n)
		}
		if n := other.Store().Len(tsdb.SeriesKey{Device: dev, Quantity: "temperature"}); n != 0 {
			t.Fatalf("shard %d non-owner holds %d samples, want 0", s, n)
		}
	}

	// Keyed replay: same request again must not double-apply.
	status, _ = postJSON(t, tc.coordURL+"/v2/ingest", map[string]string{"Idempotency-Key": "k1"},
		IngestBatch{Rows: rows}, &res)
	if status != http.StatusOK || res.Accepted != len(rows) {
		t.Fatalf("replayed ingest: status=%d res=%+v", status, res)
	}
	for s, dev := range devs {
		if n := tc.nodes[s%2].Store().Len(tsdb.SeriesKey{Device: dev, Quantity: "temperature"}); n != 3 {
			t.Fatalf("replay double-applied: shard %d has %d samples", s, n)
		}
	}

	// Direct write to the wrong node: retryable not_owner envelope.
	var env api.Envelope
	status, hdr := postJSON(t, tc.nodeURLs[1]+"/v2/ingest", nil,
		IngestBatch{Rows: []Point{{Device: devs[0], Quantity: "temperature", At: base, Value: 1}}}, &env)
	if status != http.StatusServiceUnavailable || env.Code != cluster.CodeNotOwner {
		t.Fatalf("wrong-node write: status=%d env=%+v", status, env)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("wrong-node write: missing Retry-After")
	}

	// Frozen shard: retryable shard_moving envelope on the owner.
	rsp, err := http.Post(tc.nodeURLs[0]+"/v1/cluster/shards/0/freeze", "application/json", nil)
	if err != nil || rsp.StatusCode != http.StatusOK {
		t.Fatalf("freeze: %v status=%d", err, rsp.StatusCode)
	}
	rsp.Body.Close()
	status, hdr = postJSON(t, tc.nodeURLs[0]+"/v2/ingest", nil,
		IngestBatch{Rows: []Point{{Device: devs[0], Quantity: "temperature", At: base, Value: 1}}}, &env)
	if status != http.StatusServiceUnavailable || env.Code != cluster.CodeShardMoving {
		t.Fatalf("frozen-shard write: status=%d env=%+v", status, env)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("frozen-shard write: missing Retry-After")
	}
	// Release (map unchanged: node still owns shard 0, data stays).
	rsp, err = http.Post(tc.nodeURLs[0]+"/v1/cluster/shards/0/release", "application/json", nil)
	if err != nil || rsp.StatusCode != http.StatusOK {
		t.Fatalf("release: %v status=%d", err, rsp.StatusCode)
	}
	rsp.Body.Close()
	if n := tc.nodes[0].Store().Len(tsdb.SeriesKey{Device: devs[0], Quantity: "temperature"}); n != 3 {
		t.Fatalf("aborted handoff lost data: %d samples, want 3", n)
	}

	// Stale epoch: bump the map, then write with the old epoch.
	cur, _ := tc.master.ClusterMap().Current()
	if _, err := tc.master.ClusterMap().Move(0, tc.nodeURLs[0]); err != nil { // no-op move, epoch++
		t.Fatal(err)
	}
	status, _ = postJSON(t, tc.nodeURLs[0]+"/v2/ingest",
		map[string]string{cluster.EpochHeader: fmt.Sprint(cur.Epoch - 1)},
		IngestBatch{Rows: []Point{{Device: devs[0], Quantity: "temperature", At: base, Value: 1}}}, &env)
	if status != http.StatusServiceUnavailable || env.Code != cluster.CodeStaleEpoch {
		t.Fatalf("stale-epoch write: status=%d env=%+v", status, env)
	}

	// Merged catalog and batch query through the coordinator.
	var page SeriesPage
	if err := (&api.Transport{}).GetJSON(context.Background(), tc.coordURL+"/v2/series", &page); err != nil {
		t.Fatal(err)
	}
	if page.Count != shards {
		t.Fatalf("merged catalog lists %d series, want %d", page.Count, shards)
	}
	var batch BatchResponse
	status, _ = postJSON(t, tc.coordURL+"/v2/query", nil,
		BatchQuery{Selectors: []SeriesSelector{{Device: "*"}}}, &batch)
	if status != http.StatusOK || batch.Series != shards || batch.Samples != len(rows) {
		t.Fatalf("merged batch query: status=%d series=%d samples=%d (want %d/%d)",
			status, batch.Series, batch.Samples, shards, len(rows))
	}
	// Exact-device selector routes to the one owner.
	status, _ = postJSON(t, tc.coordURL+"/v2/query", nil,
		BatchQuery{Selectors: []SeriesSelector{{Device: devs[1], Quantity: "temperature"}}}, &batch)
	if status != http.StatusOK || batch.Series != 1 || batch.Samples != 3 {
		t.Fatalf("exact-device query: status=%d series=%d samples=%d", status, batch.Series, batch.Samples)
	}
}
