package registry

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func reg(id string, kind ProxyKind) Registration {
	return Registration{
		ID: id, Kind: kind,
		BaseURL:   "http://127.0.0.1:9000/" + id,
		EntityURI: "urn:district:turin/building:b01",
	}
}

func TestRegisterAndGet(t *testing.T) {
	g := New()
	if err := g.Register(reg("p1", KindBIM)); err != nil {
		t.Fatal(err)
	}
	got, err := g.Get("p1")
	if err != nil || got.Kind != KindBIM || got.LastSeen.IsZero() {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if _, err := g.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(ghost) = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	g := New()
	cases := []Registration{
		{Kind: KindBIM, BaseURL: "u", EntityURI: "e"},          // no ID
		{ID: "x", Kind: "weird", BaseURL: "u", EntityURI: "e"}, // bad kind
		{ID: "x", Kind: KindBIM, EntityURI: "e"},               // no URL
		{ID: "x", Kind: KindBIM, BaseURL: "u"},                 // no entity
	}
	for i, r := range cases {
		if err := g.Register(r); !errors.Is(err, ErrInvalid) {
			t.Errorf("case %d: err = %v, want ErrInvalid", i, err)
		}
	}
}

func TestRegisterUpsert(t *testing.T) {
	g := New()
	_ = g.Register(reg("p1", KindBIM))
	r2 := reg("p1", KindBIM)
	r2.BaseURL = "http://moved/"
	if err := g.Register(r2); err != nil {
		t.Fatal(err)
	}
	got, _ := g.Get("p1")
	if got.BaseURL != "http://moved/" {
		t.Errorf("upsert did not replace: %+v", got)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestHeartbeatAndAlive(t *testing.T) {
	now := time.Date(2015, 3, 9, 10, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	g := New().WithClock(clock)
	_ = g.Register(reg("p1", KindDevice))

	if !g.Alive("p1", time.Minute) {
		t.Error("fresh registration not alive")
	}
	now = now.Add(2 * time.Minute)
	if g.Alive("p1", time.Minute) {
		t.Error("stale registration alive")
	}
	if err := g.Heartbeat("p1"); err != nil {
		t.Fatal(err)
	}
	if !g.Alive("p1", time.Minute) {
		t.Error("heartbeat did not refresh")
	}
	if err := g.Heartbeat("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Heartbeat(ghost) = %v", err)
	}
	if g.Alive("ghost", time.Minute) {
		t.Error("unknown proxy alive")
	}
}

func TestDeregister(t *testing.T) {
	g := New()
	_ = g.Register(reg("p1", KindGIS))
	if err := g.Deregister("p1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Deregister("p1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double deregister: %v", err)
	}
}

func TestListByEntityByKind(t *testing.T) {
	g := New()
	_ = g.Register(reg("b", KindBIM))
	_ = g.Register(reg("a", KindDevice))
	other := reg("c", KindDevice)
	other.EntityURI = "urn:district:turin/building:b02"
	_ = g.Register(other)

	if got := g.List(); len(got) != 3 || got[0].ID != "a" {
		t.Errorf("List = %+v", got)
	}
	if got := g.ByEntity("urn:district:turin/building:b01"); len(got) != 2 {
		t.Errorf("ByEntity = %+v", got)
	}
	if got := g.ByKind(KindDevice); len(got) != 2 || got[0].ID != "a" {
		t.Errorf("ByKind = %+v", got)
	}
	if got := g.ByKind(KindSIM); len(got) != 0 {
		t.Errorf("ByKind(sim) = %+v", got)
	}
}

func TestSweep(t *testing.T) {
	now := time.Date(2015, 3, 9, 10, 0, 0, 0, time.UTC)
	g := New().WithClock(func() time.Time { return now })
	_ = g.Register(reg("old", KindBIM))
	now = now.Add(10 * time.Minute)
	_ = g.Register(reg("fresh", KindBIM))

	if dropped := g.Sweep(time.Minute); dropped != 1 {
		t.Errorf("Sweep dropped %d, want 1", dropped)
	}
	if _, err := g.Get("old"); !errors.Is(err, ErrNotFound) {
		t.Error("stale proxy survived sweep")
	}
	if _, err := g.Get("fresh"); err != nil {
		t.Error("fresh proxy swept")
	}
}

func TestConcurrentRegistry(t *testing.T) {
	g := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r := reg(string(rune('a'+w)), KindDevice)
				_ = g.Register(r)
				_ = g.Heartbeat(r.ID)
				g.List()
				g.Alive(r.ID, time.Minute)
			}
		}(w)
	}
	wg.Wait()
	if g.Len() != 8 {
		t.Errorf("Len = %d, want 8", g.Len())
	}
}
