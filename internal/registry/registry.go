// Package registry implements the master node's proxy registry. In the
// paper every proxy "registers itself on a single master node"; this
// package keeps those registrations — which proxy serves which ontology
// entity, at which web-service URL — together with liveness tracking so
// stale proxies age out of query results.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ProxyKind classifies registered proxies.
type ProxyKind string

// Proxy kinds, one per data-source family of the paper.
const (
	KindDevice  ProxyKind = "device"
	KindBIM     ProxyKind = "bim"
	KindSIM     ProxyKind = "sim"
	KindGIS     ProxyKind = "gis"
	KindMeasure ProxyKind = "measure"
)

// Valid reports whether the kind is one of the known proxy kinds.
func (k ProxyKind) Valid() bool {
	switch k {
	case KindDevice, KindBIM, KindSIM, KindGIS, KindMeasure:
		return true
	default:
		return false
	}
}

// Registration is one proxy's record.
type Registration struct {
	// ID is the proxy's self-chosen unique identifier.
	ID string `json:"id"`
	// Kind classifies the proxy.
	Kind ProxyKind `json:"kind"`
	// BaseURL is the proxy's web-service entry point.
	BaseURL string `json:"baseUrl"`
	// EntityURI is the ontology entity the proxy serves (a building for
	// a BIM proxy, a device for a device-proxy, a district for GIS).
	EntityURI string `json:"entityUri"`
	// Protocol is the native technology for device proxies.
	Protocol string `json:"protocol,omitempty"`
	// LastSeen is the time of the last registration or heartbeat.
	LastSeen time.Time `json:"lastSeen"`
}

// Errors reported by the registry.
var (
	ErrInvalid  = errors.New("registry: invalid registration")
	ErrNotFound = errors.New("registry: proxy not found")
)

// Validate checks the registration's required fields.
func (r *Registration) Validate() error {
	switch {
	case r.ID == "":
		return fmt.Errorf("%w: missing id", ErrInvalid)
	case !r.Kind.Valid():
		return fmt.Errorf("%w: unknown kind %q", ErrInvalid, r.Kind)
	case r.BaseURL == "":
		return fmt.Errorf("%w: missing baseUrl", ErrInvalid)
	case r.EntityURI == "":
		return fmt.Errorf("%w: missing entityUri", ErrInvalid)
	}
	return nil
}

// Registry is the thread-safe registration store.
type Registry struct {
	mu      sync.RWMutex
	proxies map[string]Registration
	now     func() time.Time
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{proxies: make(map[string]Registration), now: time.Now}
}

// WithClock overrides the registry clock (tests).
func (g *Registry) WithClock(now func() time.Time) *Registry {
	g.now = now
	return g
}

// Register inserts or refreshes a registration (idempotent upsert).
func (g *Registry) Register(r Registration) error {
	if err := r.Validate(); err != nil {
		return err
	}
	r.LastSeen = g.now()
	g.mu.Lock()
	g.proxies[r.ID] = r
	g.mu.Unlock()
	return nil
}

// Heartbeat refreshes a proxy's liveness.
func (g *Registry) Heartbeat(id string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.proxies[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	r.LastSeen = g.now()
	g.proxies[id] = r
	return nil
}

// Deregister removes a proxy.
func (g *Registry) Deregister(id string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.proxies[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(g.proxies, id)
	return nil
}

// Get returns one registration.
func (g *Registry) Get(id string) (Registration, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.proxies[id]
	if !ok {
		return Registration{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r, nil
}

// List returns all registrations sorted by ID.
func (g *Registry) List() []Registration {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Registration, 0, len(g.proxies))
	for _, r := range g.proxies {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByEntity returns the registrations serving an ontology entity URI.
func (g *Registry) ByEntity(entityURI string) []Registration {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Registration
	for _, r := range g.proxies {
		if r.EntityURI == entityURI {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByKind returns the registrations of one proxy kind sorted by ID.
func (g *Registry) ByKind(kind ProxyKind) []Registration {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Registration
	for _, r := range g.proxies {
		if r.Kind == kind {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Alive reports whether a proxy has been seen within ttl.
func (g *Registry) Alive(id string, ttl time.Duration) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.proxies[id]
	if !ok {
		return false
	}
	return g.now().Sub(r.LastSeen) <= ttl
}

// Sweep removes registrations not seen within ttl and returns how many
// were dropped.
func (g *Registry) Sweep(ttl time.Duration) int {
	cutoff := g.now().Add(-ttl)
	g.mu.Lock()
	defer g.mu.Unlock()
	dropped := 0
	for id, r := range g.proxies {
		if r.LastSeen.Before(cutoff) {
			delete(g.proxies, id)
			dropped++
		}
	}
	return dropped
}

// Len reports the number of live registrations.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.proxies)
}
