package zigbee

import (
	"encoding/binary"
	"errors"
)

// APSFrame is the application-support-sublayer encapsulation that carries
// a ZCL frame inside an IEEE 802.15.4 data payload: endpoints route the
// frame within a node, the cluster identifies the ZCL cluster, and the
// profile scopes the cluster space (Home Automation 0x0104 in the
// district deployments).
type APSFrame struct {
	DstEndpoint uint8
	SrcEndpoint uint8
	Cluster     ClusterID
	Profile     uint16
	Counter     uint8
	ZCL         []byte
}

// ProfileHomeAutomation is the ZigBee HA application profile.
const ProfileHomeAutomation uint16 = 0x0104

// ErrShortAPS reports a truncated APS frame.
var ErrShortAPS = errors.New("zigbee: APS frame too short")

// apsHeaderLen is the fixed APS header width used here.
const apsHeaderLen = 8

// Encode serializes the APS frame into an 802.15.4 payload.
func (a *APSFrame) Encode() []byte {
	out := make([]byte, 0, apsHeaderLen+len(a.ZCL))
	out = append(out, 0x00) // frame control: data, unicast, no security
	out = append(out, a.DstEndpoint)
	out = binary.LittleEndian.AppendUint16(out, uint16(a.Cluster))
	out = binary.LittleEndian.AppendUint16(out, a.Profile)
	out = append(out, a.SrcEndpoint, a.Counter)
	return append(out, a.ZCL...)
}

// DecodeAPS parses an APS frame from an 802.15.4 payload.
func DecodeAPS(data []byte) (*APSFrame, error) {
	if len(data) < apsHeaderLen {
		return nil, ErrShortAPS
	}
	a := &APSFrame{
		DstEndpoint: data[1],
		Cluster:     ClusterID(binary.LittleEndian.Uint16(data[2:])),
		Profile:     binary.LittleEndian.Uint16(data[4:]),
		SrcEndpoint: data[6],
		Counter:     data[7],
	}
	if len(data) > apsHeaderLen {
		a.ZCL = append([]byte(nil), data[apsHeaderLen:]...)
	}
	return a, nil
}
