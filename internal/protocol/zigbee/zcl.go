// Package zigbee implements the ZigBee Cluster Library (ZCL) framing the
// district's ZigBee device-proxy speaks, layered over IEEE 802.15.4
// transport. It covers the cluster/attribute vocabulary the deployments
// in the paper's project used (temperature, humidity, illuminance,
// occupancy, on/off actuation, electrical measurement), the standard
// read/report/write commands, and the APS-level encapsulation needed to
// route ZCL frames between endpoints.
package zigbee

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ClusterID identifies a ZCL cluster.
type ClusterID uint16

// Clusters used in the district deployments.
const (
	ClusterBasic       ClusterID = 0x0000
	ClusterOnOff       ClusterID = 0x0006
	ClusterIlluminance ClusterID = 0x0400
	ClusterTemperature ClusterID = 0x0402
	ClusterPressure    ClusterID = 0x0403
	ClusterHumidity    ClusterID = 0x0405
	ClusterOccupancy   ClusterID = 0x0406
	ClusterElectrical  ClusterID = 0x0B04
	ClusterMetering    ClusterID = 0x0702
)

// AttrID identifies an attribute within a cluster.
type AttrID uint16

// MeasuredValue is attribute 0x0000 of every measurement cluster.
const AttrMeasuredValue AttrID = 0x0000

// Cluster-specific attributes.
const (
	AttrOnOffState   AttrID = 0x0000 // OnOff cluster
	AttrActivePower  AttrID = 0x050B // Electrical Measurement
	AttrRMSVoltage   AttrID = 0x0505
	AttrRMSCurrent   AttrID = 0x0508
	AttrCurrentSumm  AttrID = 0x0000 // Metering: CurrentSummationDelivered
	AttrOccupancyMap AttrID = 0x0000 // Occupancy: bitmap8
)

// DataType is a ZCL attribute data type code.
type DataType uint8

// ZCL data types supported by the codec.
const (
	TypeBool   DataType = 0x10
	TypeBitmap DataType = 0x18
	TypeUint8  DataType = 0x20
	TypeUint16 DataType = 0x21
	TypeUint32 DataType = 0x23
	TypeInt8   DataType = 0x28
	TypeInt16  DataType = 0x29
	TypeInt32  DataType = 0x2B
)

// size returns the encoded width of the data type.
func (t DataType) size() (int, error) {
	switch t {
	case TypeBool, TypeBitmap, TypeUint8, TypeInt8:
		return 1, nil
	case TypeUint16, TypeInt16:
		return 2, nil
	case TypeUint32, TypeInt32:
		return 4, nil
	default:
		return 0, fmt.Errorf("zigbee: unsupported data type %#02x", uint8(t))
	}
}

// CommandID is a ZCL general command.
type CommandID uint8

// General commands supported (ZCL §2.5).
const (
	CmdReadAttributes     CommandID = 0x00
	CmdReadAttributesRsp  CommandID = 0x01
	CmdWriteAttributes    CommandID = 0x02
	CmdWriteAttributesRsp CommandID = 0x04
	CmdReportAttributes   CommandID = 0x0A
	CmdDefaultResponse    CommandID = 0x0B
)

// Status codes (ZCL §2.6.3).
const (
	StatusSuccess         = 0x00
	StatusUnsupportedAttr = 0x86
	StatusInvalidDataType = 0x8D
	StatusReadOnly        = 0x88
)

// Frame is a parsed ZCL frame (general commands, no manufacturer code).
type Frame struct {
	// ClusterLocal marks cluster-specific (vs profile-wide) commands.
	ClusterLocal bool
	// FromServer is the direction bit (server-to-client when set).
	FromServer bool
	// DisableDefaultRsp suppresses the default response.
	DisableDefaultRsp bool
	// Seq is the transaction sequence number.
	Seq uint8
	// Command is the command identifier.
	Command CommandID
	// Payload is the command-specific body.
	Payload []byte
}

// Errors reported by the ZCL codec.
var (
	ErrShortZCL = errors.New("zigbee: ZCL frame too short")
	ErrManuf    = errors.New("zigbee: manufacturer-specific frames unsupported")
)

// Encode serializes the ZCL frame.
func (f *Frame) Encode() []byte {
	var fc uint8
	if f.ClusterLocal {
		fc |= 0x01
	}
	if f.FromServer {
		fc |= 0x08
	}
	if f.DisableDefaultRsp {
		fc |= 0x10
	}
	out := make([]byte, 0, 3+len(f.Payload))
	out = append(out, fc, f.Seq, uint8(f.Command))
	return append(out, f.Payload...)
}

// DecodeFrame parses a ZCL frame.
func DecodeFrame(data []byte) (*Frame, error) {
	if len(data) < 3 {
		return nil, ErrShortZCL
	}
	fc := data[0]
	if fc&0x04 != 0 {
		return nil, ErrManuf
	}
	f := &Frame{
		ClusterLocal:      fc&0x01 != 0,
		FromServer:        fc&0x08 != 0,
		DisableDefaultRsp: fc&0x10 != 0,
		Seq:               data[1],
		Command:           CommandID(data[2]),
	}
	if len(data) > 3 {
		f.Payload = append([]byte(nil), data[3:]...)
	}
	return f, nil
}

// Attribute is one attribute record: identifier, type and raw value.
type Attribute struct {
	ID    AttrID
	Type  DataType
	Value int64 // sign-extended raw value; bools are 0/1
}

// encodeValue appends the attribute value in its wire width.
func (a Attribute) encodeValue(out []byte) ([]byte, error) {
	size, err := a.Type.size()
	if err != nil {
		return nil, err
	}
	switch size {
	case 1:
		out = append(out, uint8(a.Value))
	case 2:
		out = binary.LittleEndian.AppendUint16(out, uint16(a.Value))
	case 4:
		out = binary.LittleEndian.AppendUint32(out, uint32(a.Value))
	}
	return out, nil
}

// decodeValue reads a value of the given type, sign-extending as needed.
func decodeValue(t DataType, data []byte) (int64, int, error) {
	size, err := t.size()
	if err != nil {
		return 0, 0, err
	}
	if len(data) < size {
		return 0, 0, ErrShortZCL
	}
	var v int64
	switch size {
	case 1:
		if t == TypeInt8 {
			v = int64(int8(data[0]))
		} else {
			v = int64(data[0])
		}
	case 2:
		raw := binary.LittleEndian.Uint16(data)
		if t == TypeInt16 {
			v = int64(int16(raw))
		} else {
			v = int64(raw)
		}
	case 4:
		raw := binary.LittleEndian.Uint32(data)
		if t == TypeInt32 {
			v = int64(int32(raw))
		} else {
			v = int64(raw)
		}
	}
	return v, size, nil
}

// EncodeReport builds a Report Attributes frame for the records.
func EncodeReport(seq uint8, attrs []Attribute) ([]byte, error) {
	var payload []byte
	var err error
	for _, a := range attrs {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(a.ID))
		payload = append(payload, uint8(a.Type))
		payload, err = a.encodeValue(payload)
		if err != nil {
			return nil, err
		}
	}
	f := &Frame{Seq: seq, Command: CmdReportAttributes, FromServer: true, DisableDefaultRsp: true, Payload: payload}
	return f.Encode(), nil
}

// DecodeReport parses the payload of a Report Attributes frame.
func DecodeReport(payload []byte) ([]Attribute, error) {
	var out []Attribute
	for len(payload) > 0 {
		if len(payload) < 3 {
			return nil, ErrShortZCL
		}
		a := Attribute{
			ID:   AttrID(binary.LittleEndian.Uint16(payload)),
			Type: DataType(payload[2]),
		}
		v, n, err := decodeValue(a.Type, payload[3:])
		if err != nil {
			return nil, err
		}
		a.Value = v
		out = append(out, a)
		payload = payload[3+n:]
	}
	return out, nil
}

// EncodeReadRequest builds a Read Attributes frame for the attribute IDs.
func EncodeReadRequest(seq uint8, ids []AttrID) []byte {
	var payload []byte
	for _, id := range ids {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(id))
	}
	f := &Frame{Seq: seq, Command: CmdReadAttributes, Payload: payload}
	return f.Encode()
}

// DecodeReadRequest parses the payload of a Read Attributes frame.
func DecodeReadRequest(payload []byte) ([]AttrID, error) {
	if len(payload)%2 != 0 {
		return nil, ErrShortZCL
	}
	out := make([]AttrID, 0, len(payload)/2)
	for i := 0; i < len(payload); i += 2 {
		out = append(out, AttrID(binary.LittleEndian.Uint16(payload[i:])))
	}
	return out, nil
}

// ReadRecord is one record of a Read Attributes Response.
type ReadRecord struct {
	ID     AttrID
	Status uint8
	Attr   Attribute // valid when Status == StatusSuccess
}

// EncodeReadResponse builds a Read Attributes Response frame.
func EncodeReadResponse(seq uint8, records []ReadRecord) ([]byte, error) {
	var payload []byte
	var err error
	for _, r := range records {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(r.ID))
		payload = append(payload, r.Status)
		if r.Status == StatusSuccess {
			payload = append(payload, uint8(r.Attr.Type))
			payload, err = r.Attr.encodeValue(payload)
			if err != nil {
				return nil, err
			}
		}
	}
	f := &Frame{Seq: seq, Command: CmdReadAttributesRsp, FromServer: true, DisableDefaultRsp: true, Payload: payload}
	return f.Encode(), nil
}

// DecodeReadResponse parses the payload of a Read Attributes Response.
func DecodeReadResponse(payload []byte) ([]ReadRecord, error) {
	var out []ReadRecord
	for len(payload) > 0 {
		if len(payload) < 3 {
			return nil, ErrShortZCL
		}
		r := ReadRecord{
			ID:     AttrID(binary.LittleEndian.Uint16(payload)),
			Status: payload[2],
		}
		payload = payload[3:]
		if r.Status == StatusSuccess {
			if len(payload) < 1 {
				return nil, ErrShortZCL
			}
			r.Attr.ID = r.ID
			r.Attr.Type = DataType(payload[0])
			v, n, err := decodeValue(r.Attr.Type, payload[1:])
			if err != nil {
				return nil, err
			}
			r.Attr.Value = v
			payload = payload[1+n:]
		}
		out = append(out, r)
	}
	return out, nil
}

// EncodeWriteRequest builds a Write Attributes frame.
func EncodeWriteRequest(seq uint8, attrs []Attribute) ([]byte, error) {
	var payload []byte
	var err error
	for _, a := range attrs {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(a.ID))
		payload = append(payload, uint8(a.Type))
		payload, err = a.encodeValue(payload)
		if err != nil {
			return nil, err
		}
	}
	f := &Frame{Seq: seq, Command: CmdWriteAttributes, Payload: payload}
	return f.Encode(), nil
}

// DecodeWriteRequest parses a Write Attributes payload; it shares the
// record layout with Report Attributes.
func DecodeWriteRequest(payload []byte) ([]Attribute, error) {
	return DecodeReport(payload)
}

// EncodeDefaultResponse builds a Default Response frame.
func EncodeDefaultResponse(seq uint8, cmd CommandID, status uint8) []byte {
	f := &Frame{Seq: seq, Command: CmdDefaultResponse, FromServer: true, DisableDefaultRsp: true,
		Payload: []byte{uint8(cmd), status}}
	return f.Encode()
}

// DecodeDefaultResponse parses a Default Response payload.
func DecodeDefaultResponse(payload []byte) (cmd CommandID, status uint8, err error) {
	if len(payload) < 2 {
		return 0, 0, ErrShortZCL
	}
	return CommandID(payload[0]), payload[1], nil
}
