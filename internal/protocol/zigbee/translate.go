package zigbee

import (
	"fmt"
	"math"

	"repro/internal/dataformat"
)

// Translation from ZCL cluster attributes to the common data format. The
// scaling rules follow the ZCL specification for each measurement
// cluster: temperature and humidity MeasuredValue are hundredths,
// illuminance MeasuredValue is 10000*log10(lux)+1, electrical
// measurement ActivePower is watts, metering summation is watt-hours.

// Translate converts one attribute of a cluster into a quantity, value
// and unit of the common format.
func Translate(cluster ClusterID, attr Attribute) (dataformat.Quantity, float64, dataformat.Unit, error) {
	switch cluster {
	case ClusterTemperature:
		if attr.ID == AttrMeasuredValue {
			return dataformat.Temperature, float64(attr.Value) / 100, dataformat.Celsius, nil
		}
	case ClusterHumidity:
		if attr.ID == AttrMeasuredValue {
			return dataformat.Humidity, float64(attr.Value) / 100, dataformat.Percent, nil
		}
	case ClusterIlluminance:
		if attr.ID == AttrMeasuredValue {
			if attr.Value <= 0 {
				return dataformat.Illuminance, 0, dataformat.Lux, nil
			}
			lux := math.Pow(10, (float64(attr.Value)-1)/10000)
			return dataformat.Illuminance, lux, dataformat.Lux, nil
		}
	case ClusterPressure:
		if attr.ID == AttrMeasuredValue {
			// MeasuredValue is in kPa*10; common format uses Pa.
			return dataformat.Pressure, float64(attr.Value) * 100, dataformat.Pascal, nil
		}
	case ClusterOccupancy:
		if attr.ID == AttrOccupancyMap {
			v := 0.0
			if attr.Value&0x01 != 0 {
				v = 1
			}
			return dataformat.Occupancy, v, dataformat.Bool, nil
		}
	case ClusterOnOff:
		if attr.ID == AttrOnOffState {
			v := 0.0
			if attr.Value != 0 {
				v = 1
			}
			return dataformat.SwitchState, v, dataformat.Bool, nil
		}
	case ClusterElectrical:
		switch attr.ID {
		case AttrActivePower:
			return dataformat.PowerActive, float64(attr.Value), dataformat.Watt, nil
		case AttrRMSVoltage:
			return dataformat.Voltage, float64(attr.Value), dataformat.Volt, nil
		case AttrRMSCurrent:
			return dataformat.Current, float64(attr.Value) / 1000, dataformat.Ampere, nil
		}
	case ClusterMetering:
		if attr.ID == AttrCurrentSumm {
			return dataformat.EnergyActive, float64(attr.Value), dataformat.WattHour, nil
		}
	}
	return "", 0, "", fmt.Errorf("zigbee: no translation for cluster %#04x attr %#04x", uint16(cluster), uint16(attr.ID))
}

// Untranslate converts a common-format quantity and value back into the
// ZCL attribute encoding, used when writing actuator state.
func Untranslate(q dataformat.Quantity, value float64) (ClusterID, Attribute, error) {
	switch q {
	case dataformat.SwitchState:
		v := int64(0)
		if value != 0 {
			v = 1
		}
		return ClusterOnOff, Attribute{ID: AttrOnOffState, Type: TypeBool, Value: v}, nil
	case dataformat.Temperature:
		return ClusterTemperature, Attribute{ID: AttrMeasuredValue, Type: TypeInt16, Value: int64(value * 100)}, nil
	case dataformat.Humidity:
		return ClusterHumidity, Attribute{ID: AttrMeasuredValue, Type: TypeUint16, Value: int64(value * 100)}, nil
	default:
		return 0, Attribute{}, fmt.Errorf("zigbee: no attribute encoding for quantity %q", q)
	}
}

// ClusterForQuantity returns the measurement cluster that reports a
// quantity, used when a proxy builds read requests.
func ClusterForQuantity(q dataformat.Quantity) (ClusterID, AttrID, bool) {
	switch q {
	case dataformat.Temperature:
		return ClusterTemperature, AttrMeasuredValue, true
	case dataformat.Humidity:
		return ClusterHumidity, AttrMeasuredValue, true
	case dataformat.Illuminance:
		return ClusterIlluminance, AttrMeasuredValue, true
	case dataformat.Occupancy:
		return ClusterOccupancy, AttrOccupancyMap, true
	case dataformat.SwitchState:
		return ClusterOnOff, AttrOnOffState, true
	case dataformat.PowerActive:
		return ClusterElectrical, AttrActivePower, true
	case dataformat.EnergyActive:
		return ClusterMetering, AttrCurrentSumm, true
	case dataformat.Pressure:
		return ClusterPressure, AttrMeasuredValue, true
	default:
		return 0, 0, false
	}
}
