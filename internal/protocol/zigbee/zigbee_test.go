package zigbee

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataformat"
)

func TestZCLFrameRoundTrip(t *testing.T) {
	in := &Frame{ClusterLocal: true, FromServer: true, DisableDefaultRsp: true,
		Seq: 7, Command: CmdReportAttributes, Payload: []byte{1, 2, 3}}
	out, err := DecodeFrame(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != 7 || out.Command != CmdReportAttributes ||
		!out.ClusterLocal || !out.FromServer || !out.DisableDefaultRsp {
		t.Errorf("round trip: %+v", out)
	}
	if string(out.Payload) != string(in.Payload) {
		t.Errorf("payload = % x", out.Payload)
	}
}

func TestZCLRejects(t *testing.T) {
	if _, err := DecodeFrame([]byte{0, 1}); err != ErrShortZCL {
		t.Errorf("short frame: %v", err)
	}
	if _, err := DecodeFrame([]byte{0x04, 1, 2, 3, 4}); err != ErrManuf {
		t.Errorf("manufacturer frame: %v", err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	attrs := []Attribute{
		{ID: AttrMeasuredValue, Type: TypeInt16, Value: 2157}, // 21.57 degC
		{ID: 0x0001, Type: TypeUint8, Value: 88},              // battery
		{ID: 0x0002, Type: TypeInt32, Value: -1234567},        // signed wide
		{ID: 0x0003, Type: TypeBool, Value: 1},
	}
	raw, err := EncodeReport(5, attrs)
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Command != CmdReportAttributes || !f.FromServer {
		t.Fatalf("frame: %+v", f)
	}
	got, err := DecodeReport(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(attrs) {
		t.Fatalf("len = %d, want %d", len(got), len(attrs))
	}
	for i := range attrs {
		if got[i] != attrs[i] {
			t.Errorf("attr %d = %+v, want %+v", i, got[i], attrs[i])
		}
	}
}

func TestReportRejectsTruncation(t *testing.T) {
	raw, _ := EncodeReport(0, []Attribute{{ID: 1, Type: TypeUint16, Value: 500}})
	f, _ := DecodeFrame(raw)
	if _, err := DecodeReport(f.Payload[:len(f.Payload)-1]); err == nil {
		t.Error("truncated report accepted")
	}
}

func TestEncodeReportUnsupportedType(t *testing.T) {
	if _, err := EncodeReport(0, []Attribute{{ID: 1, Type: 0x42, Value: 1}}); err == nil {
		t.Error("unsupported data type accepted")
	}
}

func TestReadRequestRoundTrip(t *testing.T) {
	ids := []AttrID{AttrMeasuredValue, 0x0001, 0xFFF0}
	raw := EncodeReadRequest(9, ids)
	f, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Command != CmdReadAttributes || f.FromServer {
		t.Fatalf("frame: %+v", f)
	}
	got, err := DecodeReadRequest(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != AttrMeasuredValue || got[2] != 0xFFF0 {
		t.Errorf("ids = %v", got)
	}
	if _, err := DecodeReadRequest([]byte{1}); err == nil {
		t.Error("odd-length read request accepted")
	}
}

func TestReadResponseRoundTrip(t *testing.T) {
	records := []ReadRecord{
		{ID: AttrMeasuredValue, Status: StatusSuccess,
			Attr: Attribute{ID: AttrMeasuredValue, Type: TypeInt16, Value: -500}},
		{ID: 0x0009, Status: StatusUnsupportedAttr},
	}
	raw, err := EncodeReadResponse(3, records)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := DecodeFrame(raw)
	got, err := DecodeReadResponse(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Attr.Value != -500 {
		t.Errorf("value = %d, want -500 (sign extension)", got[0].Attr.Value)
	}
	if got[1].Status != StatusUnsupportedAttr {
		t.Errorf("status = %#x", got[1].Status)
	}
}

func TestWriteAndDefaultResponse(t *testing.T) {
	raw, err := EncodeWriteRequest(1, []Attribute{{ID: AttrOnOffState, Type: TypeBool, Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := DecodeFrame(raw)
	if f.Command != CmdWriteAttributes {
		t.Fatalf("command = %#x", f.Command)
	}
	attrs, err := DecodeWriteRequest(f.Payload)
	if err != nil || len(attrs) != 1 || attrs[0].Value != 1 {
		t.Fatalf("attrs = %v, err %v", attrs, err)
	}

	raw = EncodeDefaultResponse(1, CmdWriteAttributes, StatusSuccess)
	f, _ = DecodeFrame(raw)
	cmd, status, err := DecodeDefaultResponse(f.Payload)
	if err != nil || cmd != CmdWriteAttributes || status != StatusSuccess {
		t.Fatalf("default response: %v %v %v", cmd, status, err)
	}
	if _, _, err := DecodeDefaultResponse([]byte{1}); err == nil {
		t.Error("short default response accepted")
	}
}

func TestAPSRoundTrip(t *testing.T) {
	zcl, _ := EncodeReport(1, []Attribute{{ID: AttrMeasuredValue, Type: TypeInt16, Value: 2100}})
	in := &APSFrame{DstEndpoint: 1, SrcEndpoint: 10, Cluster: ClusterTemperature,
		Profile: ProfileHomeAutomation, Counter: 99, ZCL: zcl}
	out, err := DecodeAPS(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Cluster != ClusterTemperature || out.Profile != ProfileHomeAutomation ||
		out.DstEndpoint != 1 || out.SrcEndpoint != 10 || out.Counter != 99 {
		t.Errorf("APS round trip: %+v", out)
	}
	if _, err := DecodeAPS([]byte{1, 2, 3}); err != ErrShortAPS {
		t.Errorf("short APS: %v", err)
	}
}

func TestTranslateMeasurements(t *testing.T) {
	cases := []struct {
		cluster ClusterID
		attr    Attribute
		q       dataformat.Quantity
		value   float64
		unit    dataformat.Unit
	}{
		{ClusterTemperature, Attribute{ID: AttrMeasuredValue, Type: TypeInt16, Value: 2157}, dataformat.Temperature, 21.57, dataformat.Celsius},
		{ClusterTemperature, Attribute{ID: AttrMeasuredValue, Type: TypeInt16, Value: -500}, dataformat.Temperature, -5, dataformat.Celsius},
		{ClusterHumidity, Attribute{ID: AttrMeasuredValue, Type: TypeUint16, Value: 4720}, dataformat.Humidity, 47.2, dataformat.Percent},
		{ClusterOccupancy, Attribute{ID: AttrOccupancyMap, Type: TypeBitmap, Value: 3}, dataformat.Occupancy, 1, dataformat.Bool},
		{ClusterOnOff, Attribute{ID: AttrOnOffState, Type: TypeBool, Value: 0}, dataformat.SwitchState, 0, dataformat.Bool},
		{ClusterElectrical, Attribute{ID: AttrActivePower, Type: TypeInt16, Value: 1500}, dataformat.PowerActive, 1500, dataformat.Watt},
		{ClusterElectrical, Attribute{ID: AttrRMSCurrent, Type: TypeUint16, Value: 2500}, dataformat.Current, 2.5, dataformat.Ampere},
		{ClusterMetering, Attribute{ID: AttrCurrentSumm, Type: TypeUint32, Value: 123456}, dataformat.EnergyActive, 123456, dataformat.WattHour},
		{ClusterPressure, Attribute{ID: AttrMeasuredValue, Type: TypeInt16, Value: 1013}, dataformat.Pressure, 101300, dataformat.Pascal},
	}
	for _, tc := range cases {
		q, v, u, err := Translate(tc.cluster, tc.attr)
		if err != nil {
			t.Errorf("Translate(%#04x, %#04x): %v", uint16(tc.cluster), uint16(tc.attr.ID), err)
			continue
		}
		if q != tc.q || u != tc.unit || math.Abs(v-tc.value) > 1e-9 {
			t.Errorf("Translate(%#04x) = %v %v %v, want %v %v %v",
				uint16(tc.cluster), q, v, u, tc.q, tc.value, tc.unit)
		}
	}
}

func TestTranslateIlluminanceLog(t *testing.T) {
	// MeasuredValue = 10000*log10(lux)+1; 500 lx -> 26990.
	q, v, _, err := Translate(ClusterIlluminance, Attribute{ID: AttrMeasuredValue, Type: TypeUint16, Value: 26990})
	if err != nil {
		t.Fatal(err)
	}
	if q != dataformat.Illuminance || math.Abs(v-500) > 0.5 {
		t.Errorf("illuminance = %v, want ~500", v)
	}
	// Zero raw value means "too low to measure".
	_, v, _, _ = Translate(ClusterIlluminance, Attribute{ID: AttrMeasuredValue, Type: TypeUint16, Value: 0})
	if v != 0 {
		t.Errorf("zero raw = %v", v)
	}
}

func TestTranslateUnknown(t *testing.T) {
	if _, _, _, err := Translate(ClusterBasic, Attribute{ID: 0x1234}); err == nil {
		t.Error("unknown cluster/attr translated")
	}
}

func TestUntranslateRoundTrip(t *testing.T) {
	cluster, attr, err := Untranslate(dataformat.SwitchState, 1)
	if err != nil || cluster != ClusterOnOff || attr.Value != 1 {
		t.Fatalf("Untranslate switch: %v %v %v", cluster, attr, err)
	}
	q, v, _, err := Translate(cluster, attr)
	if err != nil || q != dataformat.SwitchState || v != 1 {
		t.Fatalf("round trip: %v %v %v", q, v, err)
	}
	if _, _, err := Untranslate(dataformat.CO2, 400); err == nil {
		t.Error("unsupported quantity accepted")
	}
}

func TestClusterForQuantity(t *testing.T) {
	c, a, ok := ClusterForQuantity(dataformat.Temperature)
	if !ok || c != ClusterTemperature || a != AttrMeasuredValue {
		t.Errorf("ClusterForQuantity(temperature) = %v %v %v", c, a, ok)
	}
	if _, _, ok := ClusterForQuantity(dataformat.FlowRate); ok {
		t.Error("flow rate has no ZigBee cluster; got ok")
	}
}

// Property: report encode/decode round-trips arbitrary int16 attributes.
func TestReportRoundTripProperty(t *testing.T) {
	f := func(seq uint8, values []int16) bool {
		if len(values) > 20 {
			values = values[:20]
		}
		attrs := make([]Attribute, len(values))
		for i, v := range values {
			attrs[i] = Attribute{ID: AttrID(i), Type: TypeInt16, Value: int64(v)}
		}
		raw, err := EncodeReport(seq, attrs)
		if err != nil {
			return false
		}
		fr, err := DecodeFrame(raw)
		if err != nil || fr.Seq != seq {
			return false
		}
		got, err := DecodeReport(fr.Payload)
		if err != nil || len(got) != len(attrs) {
			return false
		}
		for i := range attrs {
			if got[i] != attrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
