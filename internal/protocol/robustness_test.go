// Package protocol_test holds cross-protocol decoder robustness checks:
// every codec in the protocol substrates must reject arbitrary bytes
// with an error, never a panic — the property that lets device-proxies
// survive hostile or corrupted radio traffic.
package protocol_test

import (
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/protocol/enocean"
	"repro/internal/protocol/ieee802154"
	"repro/internal/protocol/opcua"
	"repro/internal/protocol/zigbee"
)

func TestIEEE802154DecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		frame, err := ieee802154.Decode(data)
		return err != nil || frame != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIEEE802154ReadingNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, err := ieee802154.DecodeReading(data)
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestZigbeeDecodersNeverPanic(t *testing.T) {
	f := func(data []byte) bool {
		if frame, err := zigbee.DecodeFrame(data); err == nil {
			_, _ = zigbee.DecodeReport(frame.Payload)
			_, _ = zigbee.DecodeReadRequest(frame.Payload)
			_, _ = zigbee.DecodeReadResponse(frame.Payload)
			_, _, _ = zigbee.DecodeDefaultResponse(frame.Payload)
		}
		_, _ = zigbee.DecodeAPS(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEnOceanDecodersNeverPanic(t *testing.T) {
	f := func(data []byte) bool {
		pkts, consumed := enocean.DecodeStream(data)
		if consumed < 0 || consumed > len(data) {
			return false
		}
		for _, p := range pkts {
			if tg, err := enocean.DecodeTelegram(p.Data); err == nil {
				for _, profile := range []enocean.EEP{
					enocean.EEPTempA50205, enocean.EEPTempHumA50401,
					enocean.EEPRockerF60201, enocean.EEPContactD50001,
				} {
					_, _ = enocean.DecodeEEP(profile, tg)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// A raw TCP client throwing garbage at an OPC UA server must get
// disconnected, not crash the server.
func TestOPCUAServerSurvivesGarbage(t *testing.T) {
	srv := opcua.NewServer(opcua.NewAddressSpace())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	payloads := [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		append([]byte("HELF"), 0xFF, 0xFF, 0xFF, 0x7F), // oversized length
		{},
	}
	for i, p := range payloads {
		conn, err := dial(addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		_, _ = conn.Write(p)
		conn.Close()
	}
	// The server must still answer a well-formed client.
	c, err := opcua.Dial(addr, 0)
	if err != nil {
		t.Fatalf("server dead after garbage: %v", err)
	}
	defer c.Close()
	if _, err := c.Browse(opcua.RootID); err != nil {
		t.Fatalf("browse after garbage: %v", err)
	}
}

func dial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second)
}
