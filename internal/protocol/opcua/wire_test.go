package opcua

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestUAMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeMessage(w, tagMsg, []byte(`{"requestId":1}`)); err != nil {
		t.Fatal(err)
	}
	tag, body, err := readMessage(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if tag != tagMsg || string(body) != `{"requestId":1}` {
		t.Errorf("round trip: %q %q", tag, body)
	}
}

func TestUAMessageEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeMessage(w, tagClose, nil); err != nil {
		t.Fatal(err)
	}
	tag, body, err := readMessage(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if tag != tagClose || len(body) != 0 {
		t.Errorf("round trip: %q %q", tag, body)
	}
}

func TestUAMessageRejectsChunked(t *testing.T) {
	var buf bytes.Buffer
	// Header with 'C' (intermediate chunk) instead of 'F'.
	hdr := []byte{'M', 'S', 'G', 'C', 8, 0, 0, 0}
	buf.Write(hdr)
	if _, _, err := readMessage(bufio.NewReader(&buf)); err == nil {
		t.Fatal("chunked message accepted")
	}
}

func TestUAMessageRejectsBadSizes(t *testing.T) {
	for _, size := range []uint32{0, 7, maxMessage + 9} {
		var buf bytes.Buffer
		hdr := make([]byte, 8)
		copy(hdr, "MSGF")
		binary.LittleEndian.PutUint32(hdr[4:], size)
		buf.Write(hdr)
		if _, _, err := readMessage(bufio.NewReader(&buf)); err == nil {
			t.Fatalf("size %d accepted", size)
		}
	}
}

func TestUAWriteRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeMessage(w, tagMsg, make([]byte, maxMessage)); err != ErrOversized {
		t.Fatalf("err = %v, want ErrOversized", err)
	}
}

// Property: arbitrary bodies round-trip through the UA-TCP framing.
func TestUAMessageRoundTripProperty(t *testing.T) {
	f := func(body []byte) bool {
		if len(body) > 1<<16 {
			body = body[:1<<16]
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := writeMessage(w, tagHello, body); err != nil {
			return false
		}
		tag, got, err := readMessage(bufio.NewReader(&buf))
		if err != nil || tag != tagHello {
			return false
		}
		return bytes.Equal(got, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
