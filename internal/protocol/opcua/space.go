// Package opcua implements a compact OPC Unified Architecture substrate:
// the UA-TCP handshake (Hello/Acknowledge), message chunking headers, a
// hierarchical address space of nodes, and the Browse/Read/Write service
// set, over plain TCP.
//
// The paper uses an OPC UA proxy to give the infrastructure backward
// compatibility with wired building-automation standards. The real
// deployments talk to commercial OPC UA servers (BMS gateways); this
// package stands in for those servers (DESIGN.md S7). Deliberate
// simplifications, documented here and in DESIGN.md: no security modes
// beyond None, a single secure-channel/session, and service bodies
// encoded as JSON instead of UA-Binary (the transport-level headers stay
// binary and spec-shaped). The service semantics — browse-by-reference,
// attribute reads with timestamps and status codes, writes gated on
// node access level — follow the specification.
package opcua

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// NodeID identifies a node: a namespace index plus a string identifier
// (the "s=" NodeId form; numeric ids are not needed by the district).
type NodeID struct {
	Namespace uint16 `json:"ns"`
	ID        string `json:"id"`
}

// String renders the canonical ns=N;s=ID form.
func (n NodeID) String() string { return fmt.Sprintf("ns=%d;s=%s", n.Namespace, n.ID) }

// NodeClass distinguishes folder objects from variables.
type NodeClass string

// Node classes supported.
const (
	ClassObject   NodeClass = "Object"
	ClassVariable NodeClass = "Variable"
)

// AccessLevel is the variable access bitmask.
type AccessLevel uint8

// Access level bits (OPC UA part 3 §5.6.2).
const (
	AccessRead  AccessLevel = 1 << 0
	AccessWrite AccessLevel = 1 << 1
)

// StatusCode is a UA status code; only the values the substrate needs.
type StatusCode uint32

// Status codes.
const (
	StatusGood            StatusCode = 0x00000000
	StatusBadNodeID       StatusCode = 0x80340000 // BadNodeIdUnknown
	StatusBadNotWritable  StatusCode = 0x803B0000
	StatusBadTypeMismatch StatusCode = 0x80740000
)

// DataValue is a variable value with source timestamp and status.
type DataValue struct {
	Value           float64    `json:"value"`
	SourceTimestamp time.Time  `json:"sourceTimestamp"`
	Status          StatusCode `json:"status"`
}

// Node is one entry of the address space.
type Node struct {
	ID          NodeID
	BrowseName  string
	Class       NodeClass
	Access      AccessLevel
	Description string

	value    DataValue
	children []NodeID
	onWrite  func(float64) error
}

// AddressSpace is the server-side node store.
type AddressSpace struct {
	mu    sync.RWMutex
	nodes map[NodeID]*Node
	root  NodeID
}

// Errors reported by address-space operations.
var (
	ErrNodeExists  = errors.New("opcua: node already exists")
	ErrNodeUnknown = errors.New("opcua: node unknown")
	ErrNotVariable = errors.New("opcua: node is not a variable")
	ErrNotWritable = errors.New("opcua: node not writable")
)

// RootID is the identifier of the Objects folder every space starts with.
var RootID = NodeID{Namespace: 0, ID: "Objects"}

// NewAddressSpace creates a space containing the root Objects folder.
func NewAddressSpace() *AddressSpace {
	s := &AddressSpace{nodes: make(map[NodeID]*Node), root: RootID}
	s.nodes[RootID] = &Node{ID: RootID, BrowseName: "Objects", Class: ClassObject}
	return s
}

// AddObject adds a folder object under parent.
func (s *AddressSpace) AddObject(parent, id NodeID, browseName string) error {
	return s.add(parent, &Node{ID: id, BrowseName: browseName, Class: ClassObject})
}

// AddVariable adds a variable node under parent. onWrite, when non-nil,
// runs on every successful Write — the hook actuators hang off.
func (s *AddressSpace) AddVariable(parent, id NodeID, browseName string, access AccessLevel, onWrite func(float64) error) error {
	return s.add(parent, &Node{
		ID: id, BrowseName: browseName, Class: ClassVariable,
		Access: access, onWrite: onWrite,
		value: DataValue{Status: StatusGood, SourceTimestamp: time.Now().UTC()},
	})
}

func (s *AddressSpace) add(parent NodeID, n *Node) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.nodes[parent]
	if !ok {
		return fmt.Errorf("%w: parent %s", ErrNodeUnknown, parent)
	}
	if _, dup := s.nodes[n.ID]; dup {
		return fmt.Errorf("%w: %s", ErrNodeExists, n.ID)
	}
	s.nodes[n.ID] = n
	p.children = append(p.children, n.ID)
	return nil
}

// SetValue updates a variable's value from the server side (a sampling
// loop), stamping the source time.
func (s *AddressSpace) SetValue(id NodeID, v float64, at time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	if n.Class != ClassVariable {
		return ErrNotVariable
	}
	n.value = DataValue{Value: v, SourceTimestamp: at, Status: StatusGood}
	return nil
}

// Value reads a variable's current data value.
func (s *AddressSpace) Value(id NodeID) (DataValue, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[id]
	if !ok {
		return DataValue{}, fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	if n.Class != ClassVariable {
		return DataValue{}, ErrNotVariable
	}
	return n.value, nil
}

// Write performs a client-initiated write: access is checked, the value
// stored, and the node's write hook invoked.
func (s *AddressSpace) Write(id NodeID, v float64) StatusCode {
	s.mu.Lock()
	n, ok := s.nodes[id]
	if !ok {
		s.mu.Unlock()
		return StatusBadNodeID
	}
	if n.Class != ClassVariable || n.Access&AccessWrite == 0 {
		s.mu.Unlock()
		return StatusBadNotWritable
	}
	n.value = DataValue{Value: v, SourceTimestamp: time.Now().UTC(), Status: StatusGood}
	hook := n.onWrite
	s.mu.Unlock()
	if hook != nil {
		if err := hook(v); err != nil {
			return StatusBadTypeMismatch
		}
	}
	return StatusGood
}

// ReferenceDescription describes one browse result entry.
type ReferenceDescription struct {
	ID         NodeID    `json:"id"`
	BrowseName string    `json:"browseName"`
	Class      NodeClass `json:"class"`
}

// Browse lists the children of a node, sorted by browse name.
func (s *AddressSpace) Browse(id NodeID) ([]ReferenceDescription, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeUnknown, id)
	}
	out := make([]ReferenceDescription, 0, len(n.children))
	for _, cid := range n.children {
		c := s.nodes[cid]
		out = append(out, ReferenceDescription{ID: c.ID, BrowseName: c.BrowseName, Class: c.Class})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BrowseName < out[j].BrowseName })
	return out, nil
}

// Len reports the number of nodes including the root.
func (s *AddressSpace) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}
