package opcua

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// UA-TCP message headers: a 3-byte type, the 'F' (final) chunk flag, and
// a little-endian total length, exactly as in OPC UA part 6 §7.1.2.

// Message type tags.
const (
	tagHello = "HEL"
	tagAck   = "ACK"
	tagMsg   = "MSG"
	tagClose = "CLO"
	tagError = "ERR"
)

// maxMessage bounds one UA-TCP message (8 MiB).
const maxMessage = 8 << 20

// protocolVersion is the UA-TCP protocol version announced in Hello.
const protocolVersion uint32 = 0

// Errors reported by the transport.
var (
	ErrBadHandshake = errors.New("opcua: bad handshake")
	ErrOversized    = errors.New("opcua: oversized message")
)

// hello is the UA-TCP Hello body.
type hello struct {
	Version     uint32 `json:"version"`
	EndpointURL string `json:"endpointUrl"`
}

// acknowledge is the UA-TCP Acknowledge body.
type acknowledge struct {
	Version uint32 `json:"version"`
}

// writeMessage frames and sends one message.
func writeMessage(w *bufio.Writer, tag string, body []byte) error {
	if len(body)+8 > maxMessage {
		return ErrOversized
	}
	var hdr [8]byte
	copy(hdr[:3], tag)
	hdr[3] = 'F'
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(body)+8))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

// readMessage reads one framed message.
func readMessage(r *bufio.Reader) (tag string, body []byte, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", nil, err
	}
	if hdr[3] != 'F' {
		return "", nil, fmt.Errorf("opcua: chunked messages unsupported (%q)", hdr[3])
	}
	size := binary.LittleEndian.Uint32(hdr[4:])
	if size < 8 || size > maxMessage {
		return "", nil, ErrOversized
	}
	body = make([]byte, size-8)
	if _, err := io.ReadFull(r, body); err != nil {
		return "", nil, err
	}
	return string(hdr[:3]), body, nil
}

// Service names of the supported service set.
const (
	svcBrowse = "Browse"
	svcRead   = "Read"
	svcWrite  = "Write"
)

// request is a service request envelope carried in a MSG message.
type request struct {
	RequestID uint32          `json:"requestId"`
	Service   string          `json:"service"`
	Body      json.RawMessage `json:"body"`
}

// response is a service response envelope.
type response struct {
	RequestID uint32          `json:"requestId"`
	Service   string          `json:"service"`
	Error     string          `json:"error,omitempty"`
	Body      json.RawMessage `json:"body,omitempty"`
}

// browseRequest/browseResponse carry the Browse service.
type browseRequest struct {
	Node NodeID `json:"node"`
}

type browseResponse struct {
	References []ReferenceDescription `json:"references"`
}

// readRequest/readResponse carry the Read service (Value attribute only).
type readRequest struct {
	Nodes []NodeID `json:"nodes"`
}

type readResult struct {
	Node   NodeID     `json:"node"`
	Value  DataValue  `json:"value"`
	Status StatusCode `json:"status"`
}

type readResponse struct {
	Results []readResult `json:"results"`
}

// writeRequest/writeResponse carry the Write service.
type writeValue struct {
	Node  NodeID  `json:"node"`
	Value float64 `json:"value"`
}

type writeRequest struct {
	Values []writeValue `json:"values"`
}

type writeResponse struct {
	Results []StatusCode `json:"results"`
}
