package opcua

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a UA-TCP client holding one connection to a server.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	nextID uint32
	closed bool
}

// ErrClientClosed reports use of a closed client.
var ErrClientClosed = errors.New("opcua: client closed")

// Dial connects to a server and performs the Hello/Acknowledge handshake.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	body, err := json.Marshal(hello{Version: protocolVersion, EndpointURL: "opc.tcp://" + addr})
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if err := writeMessage(c.w, tagHello, body); err != nil {
		conn.Close()
		return nil, err
	}
	tag, ackBody, err := readMessage(c.r)
	if err != nil || tag != tagAck {
		conn.Close()
		return nil, ErrBadHandshake
	}
	var ack acknowledge
	if err := json.Unmarshal(ackBody, &ack); err != nil {
		conn.Close()
		return nil, ErrBadHandshake
	}
	conn.SetDeadline(time.Time{})
	return c, nil
}

// call performs one request/response exchange.
func (c *Client) call(service string, reqBody, rspBody any) error {
	raw, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	c.nextID++
	req := request{RequestID: c.nextID, Service: service, Body: raw}
	out, err := json.Marshal(req)
	if err != nil {
		return err
	}
	c.conn.SetDeadline(time.Now().Add(10 * time.Second))
	defer c.conn.SetDeadline(time.Time{})
	if err := writeMessage(c.w, tagMsg, out); err != nil {
		return err
	}
	tag, body, err := readMessage(c.r)
	if err != nil {
		return err
	}
	if tag != tagMsg {
		return fmt.Errorf("opcua: unexpected message %q", tag)
	}
	var rsp response
	if err := json.Unmarshal(body, &rsp); err != nil {
		return err
	}
	if rsp.RequestID != req.RequestID {
		return fmt.Errorf("opcua: response id %d for request %d", rsp.RequestID, req.RequestID)
	}
	if rsp.Error != "" {
		return fmt.Errorf("opcua: server: %s", rsp.Error)
	}
	return json.Unmarshal(rsp.Body, rspBody)
}

// Browse lists the children of a node.
func (c *Client) Browse(node NodeID) ([]ReferenceDescription, error) {
	var rsp browseResponse
	if err := c.call(svcBrowse, browseRequest{Node: node}, &rsp); err != nil {
		return nil, err
	}
	return rsp.References, nil
}

// ReadResult is one node's read outcome.
type ReadResult struct {
	Node   NodeID
	Value  DataValue
	Status StatusCode
}

// Read reads the Value attribute of the given nodes.
func (c *Client) Read(nodes []NodeID) ([]ReadResult, error) {
	var rsp readResponse
	if err := c.call(svcRead, readRequest{Nodes: nodes}, &rsp); err != nil {
		return nil, err
	}
	out := make([]ReadResult, len(rsp.Results))
	for i, r := range rsp.Results {
		out[i] = ReadResult{Node: r.Node, Value: r.Value, Status: r.Status}
	}
	return out, nil
}

// Write writes the Value attribute of one node.
func (c *Client) Write(node NodeID, value float64) (StatusCode, error) {
	var rsp writeResponse
	if err := c.call(svcWrite, writeRequest{Values: []writeValue{{Node: node, Value: value}}}, &rsp); err != nil {
		return 0, err
	}
	if len(rsp.Results) != 1 {
		return 0, fmt.Errorf("opcua: %d write results for 1 value", len(rsp.Results))
	}
	return rsp.Results[0], nil
}

// Close sends CLO and drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.conn.SetDeadline(time.Now().Add(time.Second))
	_ = writeMessage(c.w, tagClose, nil)
	return c.conn.Close()
}
