package opcua

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func buildingSpace(t *testing.T) *AddressSpace {
	t.Helper()
	s := NewAddressSpace()
	floor := NodeID{1, "Floor1"}
	if err := s.AddObject(RootID, floor, "Floor 1"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddVariable(floor, NodeID{1, "Floor1.Temp"}, "Temperature", AccessRead, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AddVariable(floor, NodeID{1, "Floor1.Setpoint"}, "Setpoint", AccessRead|AccessWrite, nil); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAddressSpaceBasics(t *testing.T) {
	s := buildingSpace(t)
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	refs, err := s.Browse(RootID)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || refs[0].BrowseName != "Floor 1" {
		t.Fatalf("Browse(root) = %+v", refs)
	}
	refs, err = s.Browse(NodeID{1, "Floor1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0].BrowseName != "Setpoint" || refs[1].BrowseName != "Temperature" {
		t.Fatalf("Browse(floor) = %+v (want sorted by browse name)", refs)
	}
}

func TestAddressSpaceErrors(t *testing.T) {
	s := buildingSpace(t)
	if err := s.AddObject(NodeID{9, "missing"}, NodeID{1, "X"}, "X"); !errors.Is(err, ErrNodeUnknown) {
		t.Errorf("unknown parent: %v", err)
	}
	if err := s.AddObject(RootID, NodeID{1, "Floor1"}, "dup"); !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := s.Browse(NodeID{9, "missing"}); !errors.Is(err, ErrNodeUnknown) {
		t.Errorf("browse unknown: %v", err)
	}
	if _, err := s.Value(NodeID{1, "Floor1"}); !errors.Is(err, ErrNotVariable) {
		t.Errorf("value of object: %v", err)
	}
	if err := s.SetValue(NodeID{1, "Floor1"}, 1, time.Now()); !errors.Is(err, ErrNotVariable) {
		t.Errorf("set value of object: %v", err)
	}
}

func TestAddressSpaceWriteSemantics(t *testing.T) {
	s := buildingSpace(t)
	if code := s.Write(NodeID{1, "Floor1.Temp"}, 25); code != StatusBadNotWritable {
		t.Errorf("write to read-only = %#x", code)
	}
	if code := s.Write(NodeID{9, "nope"}, 1); code != StatusBadNodeID {
		t.Errorf("write to unknown = %#x", code)
	}
	if code := s.Write(NodeID{1, "Floor1.Setpoint"}, 22.5); code != StatusGood {
		t.Errorf("write = %#x", code)
	}
	dv, err := s.Value(NodeID{1, "Floor1.Setpoint"})
	if err != nil || dv.Value != 22.5 {
		t.Errorf("value after write = %+v, %v", dv, err)
	}
}

func TestWriteHookInvoked(t *testing.T) {
	s := NewAddressSpace()
	var mu sync.Mutex
	var got []float64
	err := s.AddVariable(RootID, NodeID{1, "Relay"}, "Relay", AccessRead|AccessWrite, func(v float64) error {
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if code := s.Write(NodeID{1, "Relay"}, 1); code != StatusGood {
		t.Fatalf("write = %#x", code)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("hook calls = %v", got)
	}
}

func TestWriteHookFailure(t *testing.T) {
	s := NewAddressSpace()
	_ = s.AddVariable(RootID, NodeID{1, "Relay"}, "Relay", AccessWrite, func(float64) error {
		return errors.New("stuck relay")
	})
	if code := s.Write(NodeID{1, "Relay"}, 1); code == StatusGood {
		t.Error("failing hook reported StatusGood")
	}
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(buildingSpace(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

func TestClientServerBrowseReadWrite(t *testing.T) {
	srv, addr := startServer(t)
	_ = srv.Space().SetValue(NodeID{1, "Floor1.Temp"}, 21.7, time.Now().UTC())

	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	refs, err := c.Browse(RootID)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || refs[0].ID.ID != "Floor1" {
		t.Fatalf("Browse = %+v", refs)
	}

	results, err := c.Read([]NodeID{{1, "Floor1.Temp"}, {9, "missing"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Status != StatusGood || results[0].Value.Value != 21.7 {
		t.Errorf("read temp = %+v", results[0])
	}
	if results[1].Status != StatusBadNodeID {
		t.Errorf("read missing = %+v", results[1])
	}

	code, err := c.Write(NodeID{1, "Floor1.Setpoint"}, 23)
	if err != nil || code != StatusGood {
		t.Fatalf("write: %v %#x", err, code)
	}
	dv, _ := srv.Space().Value(NodeID{1, "Floor1.Setpoint"})
	if dv.Value != 23 {
		t.Errorf("server-side value = %v", dv.Value)
	}

	code, err = c.Write(NodeID{1, "Floor1.Temp"}, 99)
	if err != nil || code != StatusBadNotWritable {
		t.Errorf("write read-only: %v %#x", err, code)
	}
}

func TestClientUnknownService(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out struct{}
	if err := c.call("Subscribe", struct{}{}, &out); err == nil {
		t.Error("unknown service accepted")
	}
}

func TestClientSequentialRequests(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		if _, err := c.Browse(RootID); err != nil {
			t.Fatalf("browse %d: %v", i, err)
		}
	}
}

func TestClientConcurrentCallsSerialized(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := c.Read([]NodeID{{1, "Floor1.Temp"}}); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientCloseThenUse(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Browse(RootID); err != ErrClientClosed {
		t.Errorf("call after close = %v, want ErrClientClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestDialNonServer(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestNodeIDString(t *testing.T) {
	if got := (NodeID{2, "Boiler.Temp"}).String(); got != "ns=2;s=Boiler.Temp" {
		t.Errorf("String = %q", got)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()
	srv.Close()
	// After server close, calls must fail rather than hang.
	done := make(chan struct{})
	go func() {
		_, _ = c.Browse(RootID)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(12 * time.Second):
		t.Fatal("call against closed server hung")
	}
}
