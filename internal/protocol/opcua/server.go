package opcua

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Server exposes an AddressSpace over the UA-TCP transport.
type Server struct {
	space *AddressSpace

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer creates a server over the given address space.
func NewServer(space *AddressSpace) *Server {
	return &Server{space: space, conns: make(map[net.Conn]struct{})}
}

// Space returns the served address space.
func (s *Server) Space() *AddressSpace { return s.space }

// Listen binds to addr and serves until Close. It returns the bound
// address, so ":0" can be used in tests and simulations.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serve(conn)
		}()
	}
}

// serve runs the handshake then the request loop for one connection.
func (s *Server) serve(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)

	tag, body, err := readMessage(r)
	if err != nil || tag != tagHello {
		return
	}
	var h hello
	if err := json.Unmarshal(body, &h); err != nil {
		return
	}
	ackBody, err := json.Marshal(acknowledge{Version: protocolVersion})
	if err != nil {
		return
	}
	if err := writeMessage(w, tagAck, ackBody); err != nil {
		return
	}

	for {
		tag, body, err := readMessage(r)
		if err != nil {
			return
		}
		switch tag {
		case tagClose:
			return
		case tagMsg:
			var req request
			if err := json.Unmarshal(body, &req); err != nil {
				return
			}
			rsp := s.dispatch(&req)
			out, err := json.Marshal(rsp)
			if err != nil {
				return
			}
			if err := writeMessage(w, tagMsg, out); err != nil {
				return
			}
		default:
			return
		}
	}
}

// dispatch executes one service request against the address space.
func (s *Server) dispatch(req *request) *response {
	rsp := &response{RequestID: req.RequestID, Service: req.Service}
	fail := func(err error) *response {
		rsp.Error = err.Error()
		return rsp
	}
	switch req.Service {
	case svcBrowse:
		var br browseRequest
		if err := json.Unmarshal(req.Body, &br); err != nil {
			return fail(err)
		}
		refs, err := s.space.Browse(br.Node)
		if err != nil {
			return fail(err)
		}
		rsp.Body, _ = json.Marshal(browseResponse{References: refs})
	case svcRead:
		var rr readRequest
		if err := json.Unmarshal(req.Body, &rr); err != nil {
			return fail(err)
		}
		results := make([]readResult, len(rr.Nodes))
		for i, id := range rr.Nodes {
			results[i].Node = id
			dv, err := s.space.Value(id)
			if err != nil {
				results[i].Status = StatusBadNodeID
				continue
			}
			results[i].Value = dv
			results[i].Status = StatusGood
		}
		rsp.Body, _ = json.Marshal(readResponse{Results: results})
	case svcWrite:
		var wr writeRequest
		if err := json.Unmarshal(req.Body, &wr); err != nil {
			return fail(err)
		}
		results := make([]StatusCode, len(wr.Values))
		for i, wv := range wr.Values {
			results[i] = s.space.Write(wv.Node, wv.Value)
		}
		rsp.Body, _ = json.Marshal(writeResponse{Results: results})
	default:
		return fail(fmt.Errorf("opcua: unknown service %q", req.Service))
	}
	return rsp
}

// Close stops the listener and drops every connection.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
