// Package ieee802154 implements the IEEE 802.15.4 MAC framing used by the
// infrastructure's 802.15.4 device-proxy, together with a simulated radio
// medium standing in for the physical WSN hardware of the paper's testbed.
//
// The substitution (DESIGN.md S4/S8) keeps the code path honest: frames
// are encoded and decoded byte-for-byte like on air — frame control field,
// sequence number, PAN/short addressing, payload, and the ITU-T CRC-16
// frame check sequence — only the antenna is replaced by Go channels.
package ieee802154

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// FrameType is the 3-bit frame type of the frame control field.
type FrameType uint8

// Frame types (IEEE 802.15.4-2006 §7.2.1.1).
const (
	FrameBeacon FrameType = 0
	FrameData   FrameType = 1
	FrameAck    FrameType = 2
	FrameMACCmd FrameType = 3
)

// String returns the conventional name of the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameBeacon:
		return "beacon"
	case FrameData:
		return "data"
	case FrameAck:
		return "ack"
	case FrameMACCmd:
		return "mac-command"
	default:
		return fmt.Sprintf("reserved(%d)", uint8(t))
	}
}

// Addressing mode constants for the frame control field. The substrate
// supports the no-address and 16-bit short-address modes, which is what
// intra-PAN sensor traffic uses.
const (
	addrNone  = 0
	addrShort = 2
)

// BroadcastAddr is the 16-bit broadcast short address.
const BroadcastAddr uint16 = 0xFFFF

// Frame is a parsed IEEE 802.15.4 MAC frame with short addressing.
type Frame struct {
	Type       FrameType
	Security   bool
	FramePend  bool
	AckRequest bool
	IntraPAN   bool
	Seq        uint8
	DestPAN    uint16
	DestAddr   uint16
	SrcPAN     uint16
	SrcAddr    uint16
	Payload    []byte
}

// Errors reported by the codec.
var (
	ErrShortFrame = errors.New("ieee802154: frame too short")
	ErrBadFCS     = errors.New("ieee802154: frame check sequence mismatch")
	ErrAddrMode   = errors.New("ieee802154: unsupported addressing mode")
)

// MaxPayload is the largest payload Encode accepts: aMaxPHYPacketSize
// (127) minus the maximal MAC header (11 for short addressing) and FCS.
const MaxPayload = 127 - 11 - 2

// fcs computes the 16-bit ITU-T CRC used as the 802.15.4 FCS:
// polynomial x^16 + x^12 + x^5 + 1, bit-reversed (0x8408), init 0.
func fcs(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0x8408
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}

// Encode serializes the frame including the trailing FCS.
func (f *Frame) Encode() ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("ieee802154: payload %d bytes exceeds %d", len(f.Payload), MaxPayload)
	}
	destMode, srcMode := addrShort, addrShort
	if f.Type == FrameAck {
		destMode, srcMode = addrNone, addrNone
	}
	var fcf uint16
	fcf |= uint16(f.Type) & 0x7
	if f.Security {
		fcf |= 1 << 3
	}
	if f.FramePend {
		fcf |= 1 << 4
	}
	if f.AckRequest {
		fcf |= 1 << 5
	}
	if f.IntraPAN {
		fcf |= 1 << 6
	}
	fcf |= uint16(destMode) << 10
	fcf |= uint16(srcMode) << 14

	buf := make([]byte, 0, 11+len(f.Payload)+2)
	buf = binary.LittleEndian.AppendUint16(buf, fcf)
	buf = append(buf, f.Seq)
	if destMode == addrShort {
		buf = binary.LittleEndian.AppendUint16(buf, f.DestPAN)
		buf = binary.LittleEndian.AppendUint16(buf, f.DestAddr)
	}
	if srcMode == addrShort {
		if !f.IntraPAN {
			buf = binary.LittleEndian.AppendUint16(buf, f.SrcPAN)
		}
		buf = binary.LittleEndian.AppendUint16(buf, f.SrcAddr)
	}
	buf = append(buf, f.Payload...)
	buf = binary.LittleEndian.AppendUint16(buf, fcs(buf))
	return buf, nil
}

// Decode parses a frame and verifies its FCS.
func Decode(data []byte) (*Frame, error) {
	if len(data) < 5 { // FCF + seq + FCS
		return nil, ErrShortFrame
	}
	body, trailer := data[:len(data)-2], data[len(data)-2:]
	if fcs(body) != binary.LittleEndian.Uint16(trailer) {
		return nil, ErrBadFCS
	}
	fcf := binary.LittleEndian.Uint16(body)
	f := &Frame{
		Type:       FrameType(fcf & 0x7),
		Security:   fcf&(1<<3) != 0,
		FramePend:  fcf&(1<<4) != 0,
		AckRequest: fcf&(1<<5) != 0,
		IntraPAN:   fcf&(1<<6) != 0,
		Seq:        body[2],
	}
	destMode := int(fcf >> 10 & 0x3)
	srcMode := int(fcf >> 14 & 0x3)
	if destMode != addrNone && destMode != addrShort ||
		srcMode != addrNone && srcMode != addrShort {
		return nil, ErrAddrMode
	}
	off := 3
	need := func(n int) error {
		if off+n > len(body) {
			return ErrShortFrame
		}
		return nil
	}
	if destMode == addrShort {
		if err := need(4); err != nil {
			return nil, err
		}
		f.DestPAN = binary.LittleEndian.Uint16(body[off:])
		f.DestAddr = binary.LittleEndian.Uint16(body[off+2:])
		off += 4
	}
	if srcMode == addrShort {
		if !f.IntraPAN {
			if err := need(2); err != nil {
				return nil, err
			}
			f.SrcPAN = binary.LittleEndian.Uint16(body[off:])
			off += 2
		}
		if err := need(2); err != nil {
			return nil, err
		}
		f.SrcAddr = binary.LittleEndian.Uint16(body[off:])
		off += 2
	}
	if off < len(body) {
		f.Payload = append([]byte(nil), body[off:]...)
	}
	return f, nil
}

// Ack builds the acknowledgement frame for a received frame.
func Ack(seq uint8) *Frame {
	return &Frame{Type: FrameAck, Seq: seq}
}
