package ieee802154

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The plain-802.15.4 devices in the district (those not speaking ZigBee
// on top) use a compact sensor payload: a magic byte, a reading kind, a
// milli-unit scaled signed 32-bit value, and a battery level. This
// mirrors the proprietary-but-simple payloads of the low-cost nodes the
// paper's testbed deployed.

// payloadMagic marks a sensor reading payload.
const payloadMagic = 0x5E

// ReadingKind identifies the sensed quantity in a sensor payload.
type ReadingKind uint8

// Reading kinds carried by plain 802.15.4 sensor payloads.
const (
	ReadingTemperature ReadingKind = 0x01 // milli-degC
	ReadingHumidity    ReadingKind = 0x02 // milli-percent
	ReadingIlluminance ReadingKind = 0x03 // milli-lux
	ReadingPower       ReadingKind = 0x04 // milliwatt
	ReadingOccupancy   ReadingKind = 0x05 // 0 / 1000
	ReadingCO2         ReadingKind = 0x06 // milli-ppm
)

// SensorReading is one decoded plain-802.15.4 sensor sample.
type SensorReading struct {
	Kind    ReadingKind
	Value   float64 // engineering units (degC, %, lx, W, ppm, bool)
	Battery uint8   // percent
}

// ErrBadPayload reports a payload that is not a sensor reading.
var ErrBadPayload = errors.New("ieee802154: not a sensor reading payload")

// EncodeReading builds the 8-byte sensor payload.
func EncodeReading(r SensorReading) []byte {
	milli := int32(r.Value * 1000)
	buf := make([]byte, 8)
	buf[0] = payloadMagic
	buf[1] = byte(r.Kind)
	binary.BigEndian.PutUint32(buf[2:], uint32(milli))
	buf[6] = r.Battery
	buf[7] = checksum(buf[:7])
	return buf
}

// DecodeReading parses a sensor payload.
func DecodeReading(p []byte) (SensorReading, error) {
	if len(p) != 8 || p[0] != payloadMagic {
		return SensorReading{}, ErrBadPayload
	}
	if checksum(p[:7]) != p[7] {
		return SensorReading{}, fmt.Errorf("%w: checksum mismatch", ErrBadPayload)
	}
	milli := int32(binary.BigEndian.Uint32(p[2:6]))
	return SensorReading{
		Kind:    ReadingKind(p[1]),
		Value:   float64(milli) / 1000,
		Battery: p[6],
	}, nil
}

// checksum is the one-byte XOR fold used by the sensor payload.
func checksum(b []byte) byte {
	var c byte
	for _, x := range b {
		c ^= x
	}
	return c
}
