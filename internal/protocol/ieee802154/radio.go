package ieee802154

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Radio simulates the shared 2.4 GHz medium of one PAN: every frame
// transmitted is delivered to all attached transceivers except the
// sender, subject to a configurable loss probability and propagation
// delay. It replaces the physical antennas of the paper's testbed while
// preserving broadcast semantics, loss, and ack timing behaviour.
type Radio struct {
	mu       sync.Mutex
	xcvrs    map[*Transceiver]struct{}
	lossProb float64
	delay    time.Duration
	rng      *rand.Rand
	closed   bool

	frames  uint64
	dropped uint64
}

// RadioOptions configure the simulated medium.
type RadioOptions struct {
	// LossProb in [0,1] drops each delivery independently.
	LossProb float64
	// Delay is the propagation + processing latency per delivery.
	Delay time.Duration
	// Seed makes the loss process reproducible; 0 uses a fixed default.
	Seed int64
}

// NewRadio creates a simulated medium.
func NewRadio(opts RadioOptions) *Radio {
	seed := opts.Seed
	if seed == 0 {
		seed = 0x802154
	}
	return &Radio{
		xcvrs:    make(map[*Transceiver]struct{}),
		lossProb: opts.LossProb,
		delay:    opts.Delay,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Transceiver is one attached radio endpoint with a short address.
type Transceiver struct {
	radio *Radio
	addr  uint16
	pan   uint16
	rx    chan []byte
}

// ErrRadioClosed reports transmission on a closed medium.
var ErrRadioClosed = errors.New("ieee802154: radio closed")

// Attach joins the medium with the given PAN and short address.
// rxBuffer is the receive queue depth (drops when full, like a real
// transceiver FIFO).
func (r *Radio) Attach(pan, addr uint16, rxBuffer int) (*Transceiver, error) {
	if rxBuffer <= 0 {
		rxBuffer = 64
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrRadioClosed
	}
	t := &Transceiver{radio: r, addr: addr, pan: pan, rx: make(chan []byte, rxBuffer)}
	r.xcvrs[t] = struct{}{}
	return t, nil
}

// Detach leaves the medium.
func (t *Transceiver) Detach() {
	t.radio.mu.Lock()
	delete(t.radio.xcvrs, t)
	t.radio.mu.Unlock()
}

// Addr returns the transceiver's short address.
func (t *Transceiver) Addr() uint16 { return t.addr }

// Transmit puts raw frame bytes on the air. Delivery is asynchronous.
func (t *Transceiver) Transmit(raw []byte) error {
	r := t.radio
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRadioClosed
	}
	r.frames++
	var targets []*Transceiver
	for x := range r.xcvrs {
		if x == t {
			continue
		}
		if r.lossProb > 0 && r.rng.Float64() < r.lossProb {
			r.dropped++
			continue
		}
		targets = append(targets, x)
	}
	delay := r.delay
	r.mu.Unlock()

	deliver := func() {
		for _, x := range targets {
			select {
			case x.rx <- raw:
			default:
				r.mu.Lock()
				r.dropped++
				r.mu.Unlock()
			}
		}
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
	} else {
		deliver()
	}
	return nil
}

// Send encodes and transmits a frame.
func (t *Transceiver) Send(f *Frame) error {
	raw, err := f.Encode()
	if err != nil {
		return err
	}
	return t.Transmit(raw)
}

// Receive blocks for the next frame addressed to this transceiver (its
// short address or broadcast, in its PAN) until the timeout elapses.
// Frames that fail FCS or address filtering are discarded, as hardware
// address filters do.
func (t *Transceiver) Receive(timeout time.Duration) (*Frame, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case raw := <-t.rx:
			f, err := Decode(raw)
			if err != nil {
				continue // corrupted on air: hardware drops it
			}
			if f.Type == FrameAck {
				return f, nil // acks carry no addressing
			}
			if f.DestPAN != t.pan && f.DestPAN != 0xFFFF {
				continue
			}
			if f.DestAddr != t.addr && f.DestAddr != BroadcastAddr {
				continue
			}
			return f, nil
		case <-deadline.C:
			return nil, ErrRxTimeout
		}
	}
}

// ErrRxTimeout reports that no frame arrived before the deadline.
var ErrRxTimeout = errors.New("ieee802154: receive timeout")

// RadioStats are cumulative medium counters.
type RadioStats struct {
	Frames  uint64
	Dropped uint64
	Nodes   int
}

// Stats returns a snapshot of medium counters.
func (r *Radio) Stats() RadioStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RadioStats{Frames: r.frames, Dropped: r.dropped, Nodes: len(r.xcvrs)}
}

// Close shuts the medium down.
func (r *Radio) Close() {
	r.mu.Lock()
	r.closed = true
	r.xcvrs = make(map[*Transceiver]struct{})
	r.mu.Unlock()
}
