package ieee802154

import (
	"testing"
	"testing/quick"
	"time"
)

func sampleFrame() *Frame {
	return &Frame{
		Type:       FrameData,
		AckRequest: true,
		IntraPAN:   true,
		Seq:        42,
		DestPAN:    0x1234,
		DestAddr:   0x0001,
		SrcAddr:    0x00A5,
		Payload:    []byte{0xDE, 0xAD, 0xBE, 0xEF},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := sampleFrame()
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.Seq != f.Seq || got.DestPAN != f.DestPAN ||
		got.DestAddr != f.DestAddr || got.SrcAddr != f.SrcAddr ||
		!got.AckRequest || !got.IntraPAN {
		t.Errorf("round trip mutated header: %+v", got)
	}
	if string(got.Payload) != string(f.Payload) {
		t.Errorf("payload = % x", got.Payload)
	}
}

func TestFrameInterPAN(t *testing.T) {
	f := sampleFrame()
	f.IntraPAN = false
	f.SrcPAN = 0x5678
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPAN != 0x5678 {
		t.Errorf("SrcPAN = %#x, want 0x5678", got.SrcPAN)
	}
}

func TestAckFrameRoundTrip(t *testing.T) {
	raw, err := Ack(7).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 5 { // FCF(2) + seq(1) + FCS(2): the minimal 802.15.4 frame
		t.Errorf("ack frame length = %d, want 5", len(raw))
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != FrameAck || got.Seq != 7 {
		t.Errorf("ack round trip: %+v", got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	raw, _ := sampleFrame().Encode()
	for i := range raw {
		corrupted := append([]byte(nil), raw...)
		corrupted[i] ^= 0x01
		if _, err := Decode(corrupted); err == nil {
			// A flipped bit could in principle still produce a valid
			// different frame only if it hits... nothing: FCS covers all
			// preceding bytes, and flipping FCS bits breaks the match.
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
}

func TestDecodeShortFrame(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err != ErrShortFrame {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
}

func TestEncodeOversizedPayload(t *testing.T) {
	f := sampleFrame()
	f.Payload = make([]byte, MaxPayload+1)
	if _, err := f.Encode(); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestFCSKnownVector(t *testing.T) {
	// ITU-T CRC16 (reflected, init 0) of "123456789" is 0x6F91... that is
	// for CRC-16/KERMIT with this exact bit ordering.
	if got := fcs([]byte("123456789")); got != 0x2189 {
		t.Errorf("fcs = %#04x, want 0x2189 (CRC-16/KERMIT)", got)
	}
}

// Property: encode/decode round-trips arbitrary data frames.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seq uint8, destPAN, dest, src uint16, payload []byte, ack bool) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		in := &Frame{
			Type: FrameData, Seq: seq, IntraPAN: true, AckRequest: ack,
			DestPAN: destPAN, DestAddr: dest, SrcAddr: src, Payload: payload,
		}
		raw, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := Decode(raw)
		if err != nil {
			return false
		}
		if out.Seq != seq || out.DestPAN != destPAN || out.DestAddr != dest ||
			out.SrcAddr != src || out.AckRequest != ack {
			return false
		}
		if len(out.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if out.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSensorReadingRoundTrip(t *testing.T) {
	in := SensorReading{Kind: ReadingTemperature, Value: 21.573, Battery: 88}
	out, err := DecodeReading(EncodeReading(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.Battery != 88 {
		t.Errorf("round trip: %+v", out)
	}
	if diff := out.Value - in.Value; diff > 0.001 || diff < -0.001 {
		t.Errorf("value %v, want %v (milli resolution)", out.Value, in.Value)
	}
}

func TestSensorReadingNegativeValue(t *testing.T) {
	in := SensorReading{Kind: ReadingTemperature, Value: -12.5, Battery: 10}
	out, err := DecodeReading(EncodeReading(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != -12.5 {
		t.Errorf("negative value = %v, want -12.5", out.Value)
	}
}

func TestDecodeReadingRejects(t *testing.T) {
	if _, err := DecodeReading([]byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
	good := EncodeReading(SensorReading{Kind: ReadingCO2, Value: 400})
	bad := append([]byte(nil), good...)
	bad[3] ^= 0xFF
	if _, err := DecodeReading(bad); err == nil {
		t.Error("corrupted payload accepted")
	}
	bad = append([]byte(nil), good...)
	bad[0] = 0x00
	if _, err := DecodeReading(bad); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestRadioDelivery(t *testing.T) {
	r := NewRadio(RadioOptions{})
	defer r.Close()
	a, err := r.Attach(0x1234, 0x0001, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Attach(0x1234, 0x0002, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := &Frame{Type: FrameData, IntraPAN: true, DestPAN: 0x1234, DestAddr: 0x0002, SrcAddr: 0x0001, Payload: []byte("hi")}
	if err := a.Send(f); err != nil {
		t.Fatal(err)
	}
	got, err := b.Receive(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "hi" || got.SrcAddr != 0x0001 {
		t.Errorf("received %+v", got)
	}
}

func TestRadioAddressFiltering(t *testing.T) {
	r := NewRadio(RadioOptions{})
	defer r.Close()
	a, _ := r.Attach(0x1234, 0x0001, 0)
	b, _ := r.Attach(0x1234, 0x0002, 0)
	// Addressed to someone else: b must not deliver it.
	f := &Frame{Type: FrameData, IntraPAN: true, DestPAN: 0x1234, DestAddr: 0x0099, SrcAddr: 0x0001}
	_ = a.Send(f)
	if _, err := b.Receive(50 * time.Millisecond); err != ErrRxTimeout {
		t.Fatalf("err = %v, want ErrRxTimeout", err)
	}
	// Broadcast: delivered.
	f.DestAddr = BroadcastAddr
	_ = a.Send(f)
	if _, err := b.Receive(time.Second); err != nil {
		t.Fatalf("broadcast not delivered: %v", err)
	}
}

func TestRadioLoss(t *testing.T) {
	r := NewRadio(RadioOptions{LossProb: 1.0})
	defer r.Close()
	a, _ := r.Attach(1, 1, 0)
	b, _ := r.Attach(1, 2, 0)
	_ = a.Send(&Frame{Type: FrameData, IntraPAN: true, DestPAN: 1, DestAddr: 2, SrcAddr: 1})
	if _, err := b.Receive(50 * time.Millisecond); err != ErrRxTimeout {
		t.Fatalf("frame delivered despite 100%% loss: %v", err)
	}
	st := r.Stats()
	if st.Frames != 1 || st.Dropped != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestRadioAckExchange(t *testing.T) {
	r := NewRadio(RadioOptions{})
	defer r.Close()
	sensor, _ := r.Attach(1, 0x10, 0)
	sink, _ := r.Attach(1, 0x01, 0)

	payload := EncodeReading(SensorReading{Kind: ReadingHumidity, Value: 47.2, Battery: 91})
	_ = sensor.Send(&Frame{Type: FrameData, AckRequest: true, IntraPAN: true, DestPAN: 1, DestAddr: 0x01, SrcAddr: 0x10, Seq: 9, Payload: payload})

	got, err := sink.Receive(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Send(Ack(got.Seq)); err != nil {
		t.Fatal(err)
	}
	ack, err := sensor.Receive(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != FrameAck || ack.Seq != 9 {
		t.Errorf("ack = %+v", ack)
	}
	reading, err := DecodeReading(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if reading.Kind != ReadingHumidity || reading.Battery != 91 {
		t.Errorf("reading = %+v", reading)
	}
}

func TestRadioDetachAndClose(t *testing.T) {
	r := NewRadio(RadioOptions{})
	a, _ := r.Attach(1, 1, 0)
	b, _ := r.Attach(1, 2, 0)
	b.Detach()
	if st := r.Stats(); st.Nodes != 1 {
		t.Errorf("Nodes = %d, want 1", st.Nodes)
	}
	r.Close()
	if err := a.Transmit([]byte{1}); err != ErrRadioClosed {
		t.Fatalf("Transmit after Close = %v, want ErrRadioClosed", err)
	}
	if _, err := r.Attach(1, 3, 0); err != ErrRadioClosed {
		t.Fatalf("Attach after Close = %v, want ErrRadioClosed", err)
	}
}
