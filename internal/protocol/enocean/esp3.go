// Package enocean implements the EnOcean Serial Protocol 3 (ESP3) framing
// and the EnOcean Equipment Profiles (EEP) the district's EnOcean
// device-proxy understands. EnOcean devices are energy-harvesting
// (batteryless) sensors and switches; the paper's testbed bridges them
// into the infrastructure through a serial gateway, which this package
// simulates with an in-memory byte stream while keeping the on-wire
// encoding — sync byte, CRC-8 protected header and data, ERP1 radio
// telegrams — exactly as a physical TCM 310 gateway would emit it.
package enocean

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// SyncByte starts every ESP3 packet.
const SyncByte = 0x55

// PacketType discriminates ESP3 packet contents.
type PacketType uint8

// ESP3 packet types (ESP3 spec §1.8).
const (
	TypeRadioERP1 PacketType = 0x01
	TypeResponse  PacketType = 0x02
	TypeEvent     PacketType = 0x04
	TypeCommand   PacketType = 0x05
)

// Packet is one ESP3 packet.
type Packet struct {
	Type     PacketType
	Data     []byte
	Optional []byte
}

// Errors reported by the ESP3 codec.
var (
	ErrNoSync    = errors.New("enocean: missing sync byte")
	ErrShortESP3 = errors.New("enocean: truncated ESP3 packet")
	ErrCRC       = errors.New("enocean: CRC mismatch")
)

// crc8 computes the CRC-8 used by ESP3 (polynomial 0x07, init 0).
func crc8(data []byte) byte {
	var crc byte
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Encode serializes the packet: sync, header (data length, optional
// length, type), CRC8H, data, optional, CRC8D.
func (p *Packet) Encode() []byte {
	header := make([]byte, 4)
	binary.BigEndian.PutUint16(header, uint16(len(p.Data)))
	header[2] = uint8(len(p.Optional))
	header[3] = uint8(p.Type)

	out := make([]byte, 0, 7+len(p.Data)+len(p.Optional))
	out = append(out, SyncByte)
	out = append(out, header...)
	out = append(out, crc8(header))
	out = append(out, p.Data...)
	out = append(out, p.Optional...)
	out = append(out, crc8(out[6:]))
	return out
}

// Decode parses one packet from the head of buf and returns it together
// with the number of bytes consumed.
func Decode(buf []byte) (*Packet, int, error) {
	if len(buf) < 1 || buf[0] != SyncByte {
		return nil, 0, ErrNoSync
	}
	if len(buf) < 6 {
		return nil, 0, ErrShortESP3
	}
	header := buf[1:5]
	if crc8(header) != buf[5] {
		return nil, 0, fmt.Errorf("%w: header", ErrCRC)
	}
	dataLen := int(binary.BigEndian.Uint16(header))
	optLen := int(header[2])
	total := 6 + dataLen + optLen + 1
	if len(buf) < total {
		return nil, 0, ErrShortESP3
	}
	payload := buf[6 : 6+dataLen+optLen]
	if crc8(payload) != buf[total-1] {
		return nil, 0, fmt.Errorf("%w: data", ErrCRC)
	}
	p := &Packet{
		Type:     PacketType(header[3]),
		Data:     append([]byte(nil), payload[:dataLen]...),
		Optional: append([]byte(nil), payload[dataLen:]...),
	}
	return p, total, nil
}

// DecodeStream scans a byte stream for packets, skipping garbage between
// sync bytes, and returns the packets plus the number of bytes consumed
// (up to the start of an incomplete trailing packet, if any).
func DecodeStream(buf []byte) ([]*Packet, int) {
	var out []*Packet
	consumed := 0
	for consumed < len(buf) {
		idx := bytes.IndexByte(buf[consumed:], SyncByte)
		if idx < 0 {
			consumed = len(buf)
			break
		}
		consumed += idx
		p, n, err := Decode(buf[consumed:])
		switch {
		case err == nil:
			out = append(out, p)
			consumed += n
		case errors.Is(err, ErrShortESP3):
			// Incomplete trailing packet: wait for more bytes.
			return out, consumed
		default:
			// Corrupt packet: skip this sync byte and rescan.
			consumed++
		}
	}
	return out, consumed
}
