package enocean

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataformat"
)

func TestCRC8KnownVector(t *testing.T) {
	// CRC-8/SMBUS (poly 0x07, init 0) of "123456789" is 0xF4.
	if got := crc8([]byte("123456789")); got != 0xF4 {
		t.Errorf("crc8 = %#02x, want 0xF4", got)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	in := &Packet{Type: TypeRadioERP1, Data: []byte{1, 2, 3, 4}, Optional: []byte{9, 8}}
	raw := in.Encode()
	if raw[0] != SyncByte {
		t.Fatal("packet does not start with sync byte")
	}
	out, n, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Errorf("consumed %d of %d", n, len(raw))
	}
	if out.Type != TypeRadioERP1 || string(out.Data) != string(in.Data) || string(out.Optional) != string(in.Optional) {
		t.Errorf("round trip: %+v", out)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	raw := (&Packet{Type: TypeRadioERP1, Data: []byte{1, 2, 3}}).Encode()
	for i := 1; i < len(raw); i++ { // skip sync byte (tested separately)
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x40
		if _, _, err := Decode(bad); err == nil {
			t.Errorf("corruption at byte %d accepted", i)
		}
	}
	bad := append([]byte(nil), raw...)
	bad[0] = 0x00
	if _, _, err := Decode(bad); !errors.Is(err, ErrNoSync) {
		t.Errorf("missing sync: %v", err)
	}
	if _, _, err := Decode(raw[:4]); !errors.Is(err, ErrShortESP3) {
		t.Error("truncated packet accepted")
	}
}

func TestDecodeStream(t *testing.T) {
	p1 := (&Packet{Type: TypeRadioERP1, Data: []byte{1}}).Encode()
	p2 := (&Packet{Type: TypeResponse, Data: []byte{2, 3}}).Encode()
	stream := append([]byte{0x00, 0x13}, p1...) // leading garbage
	stream = append(stream, 0x42)               // inter-packet garbage
	stream = append(stream, p2...)
	stream = append(stream, p1[:5]...) // incomplete trailing packet

	pkts, consumed := DecodeStream(stream)
	if len(pkts) != 2 {
		t.Fatalf("decoded %d packets, want 2", len(pkts))
	}
	if pkts[0].Data[0] != 1 || pkts[1].Data[0] != 2 {
		t.Errorf("packet payloads: %v %v", pkts[0].Data, pkts[1].Data)
	}
	if consumed != len(stream)-5 {
		t.Errorf("consumed = %d, want %d (stop before incomplete packet)", consumed, len(stream)-5)
	}
}

func TestDecodeStreamAllGarbage(t *testing.T) {
	pkts, consumed := DecodeStream([]byte{1, 2, 3, 4})
	if len(pkts) != 0 || consumed != 4 {
		t.Errorf("pkts=%d consumed=%d", len(pkts), consumed)
	}
}

func TestTelegramRoundTrip(t *testing.T) {
	in := &Telegram{RORG: RORG4BS, Data: []byte{0, 0, 100, 0x08}, SenderID: 0x0180ABCD, Status: 0}
	out, err := DecodeTelegram(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.RORG != RORG4BS || out.SenderID != 0x0180ABCD || len(out.Data) != 4 {
		t.Errorf("round trip: %+v", out)
	}
	// Through a full ESP3 packet too.
	pkt := in.WrapRadio()
	decoded, _, err := Decode(pkt.Encode())
	if err != nil {
		t.Fatal(err)
	}
	tg, err := DecodeTelegram(decoded.Data)
	if err != nil {
		t.Fatal(err)
	}
	if tg.SenderID != in.SenderID {
		t.Errorf("sender = %#08x", tg.SenderID)
	}
}

func TestDecodeTelegramRejects(t *testing.T) {
	if _, err := DecodeTelegram([]byte{0xA5, 1, 2}); err == nil {
		t.Error("short telegram accepted")
	}
	if _, err := DecodeTelegram([]byte{0x99, 1, 0, 0, 0, 0, 0}); err == nil {
		t.Error("unknown RORG accepted")
	}
	// 4BS telegram with 1BS length.
	if _, err := DecodeTelegram([]byte{0xA5, 1, 0, 0, 0, 0, 0}); err == nil {
		t.Error("length-mismatched telegram accepted")
	}
}

func TestEEPTemperatureRoundTrip(t *testing.T) {
	for _, want := range []float64{0, 10.5, 21.3, 40} {
		tg, err := EncodeEEP(EEPTempA50205, 0x100, []Reading{{dataformat.Temperature, want, dataformat.Celsius}})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := DecodeEEP(EEPTempA50205, tg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 1 || rs[0].Quantity != dataformat.Temperature {
			t.Fatalf("readings = %+v", rs)
		}
		if math.Abs(rs[0].Value-want) > 40.0/255+1e-9 { // 8-bit quantization
			t.Errorf("temp = %v, want ~%v", rs[0].Value, want)
		}
	}
}

func TestEEPTempHumRoundTrip(t *testing.T) {
	tg, err := EncodeEEP(EEPTempHumA50401, 0x200, []Reading{
		{dataformat.Temperature, 22.0, dataformat.Celsius},
		{dataformat.Humidity, 55.0, dataformat.Percent},
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := DecodeEEP(EEPTempHumA50401, tg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("readings = %+v", rs)
	}
	byQ := map[dataformat.Quantity]float64{}
	for _, r := range rs {
		byQ[r.Quantity] = r.Value
	}
	if math.Abs(byQ[dataformat.Humidity]-55) > 0.5 || math.Abs(byQ[dataformat.Temperature]-22) > 0.2 {
		t.Errorf("decoded %+v", byQ)
	}
}

func TestEEPHumidityOnly(t *testing.T) {
	tg, err := EncodeEEP(EEPTempHumA50401, 0x200, []Reading{{dataformat.Humidity, 40, dataformat.Percent}})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := DecodeEEP(EEPTempHumA50401, tg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Quantity != dataformat.Humidity {
		t.Fatalf("readings = %+v (temperature bit should be off)", rs)
	}
}

func TestEEPRockerAndContact(t *testing.T) {
	for _, on := range []float64{0, 1} {
		tg, err := EncodeEEP(EEPRockerF60201, 0x300, []Reading{{dataformat.SwitchState, on, dataformat.Bool}})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := DecodeEEP(EEPRockerF60201, tg)
		if err != nil || len(rs) != 1 || rs[0].Value != on {
			t.Errorf("rocker on=%v: %+v err=%v", on, rs, err)
		}

		tg, err = EncodeEEP(EEPContactD50001, 0x400, []Reading{{dataformat.ContactState, on, dataformat.Bool}})
		if err != nil {
			t.Fatal(err)
		}
		rs, err = DecodeEEP(EEPContactD50001, tg)
		if err != nil || len(rs) != 1 || rs[0].Value != on {
			t.Errorf("contact on=%v: %+v err=%v", on, rs, err)
		}
	}
}

func TestEEPOccupancy(t *testing.T) {
	for _, occ := range []float64{0, 1} {
		tg, err := EncodeEEP(EEPOccupancyA5070, 0x500, []Reading{{dataformat.Occupancy, occ, dataformat.Bool}})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := DecodeEEP(EEPOccupancyA5070, tg)
		if err != nil || len(rs) != 1 || rs[0].Value != occ {
			t.Errorf("occupancy %v: %+v err=%v", occ, rs, err)
		}
	}
}

func TestEEPTeachInDetected(t *testing.T) {
	// 4BS with LRN bit (DB0 bit3) cleared is a teach-in.
	tg := &Telegram{RORG: RORG4BS, Data: []byte{0, 0, 100, 0x00}, SenderID: 1}
	if _, err := DecodeEEP(EEPTempA50205, tg); !errors.Is(err, ErrTeachIn) {
		t.Errorf("err = %v, want ErrTeachIn", err)
	}
	tgc := &Telegram{RORG: RORG1BS, Data: []byte{0x00}, SenderID: 1}
	if _, err := DecodeEEP(EEPContactD50001, tgc); !errors.Is(err, ErrTeachIn) {
		t.Errorf("contact teach-in: %v", err)
	}
}

func TestEEPMismatchedRORG(t *testing.T) {
	tg := &Telegram{RORG: RORG1BS, Data: []byte{0x09}, SenderID: 1}
	if _, err := DecodeEEP(EEPTempA50205, tg); err == nil {
		t.Error("RORG mismatch accepted")
	}
}

func TestEncodeEEPMissingReading(t *testing.T) {
	if _, err := EncodeEEP(EEPTempA50205, 1, nil); err == nil {
		t.Error("missing temperature reading accepted")
	}
}

// Property: any byte stream, when split at arbitrary points, yields the
// same packets via DecodeStream as the whole (prefix-consumption safety).
func TestDecodeStreamIncrementalProperty(t *testing.T) {
	f := func(vals []byte, split uint8) bool {
		// Build a stream of two valid packets with the fuzz payload.
		if len(vals) > 32 {
			vals = vals[:32]
		}
		p1 := (&Packet{Type: TypeRadioERP1, Data: append([]byte{1}, vals...)}).Encode()
		p2 := (&Packet{Type: TypeEvent, Data: []byte{2}}).Encode()
		stream := append(append([]byte{}, p1...), p2...)

		whole, _ := DecodeStream(stream)
		cut := int(split) % len(stream)
		first, consumed := DecodeStream(stream[:cut])
		rest := append(append([]byte{}, stream[consumed:cut]...), stream[cut:]...)
		second, _ := DecodeStream(rest)
		return len(whole) == len(first)+len(second)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
