package enocean

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/dataformat"
)

// RORG is the radio telegram organization byte of an ERP1 telegram.
type RORG uint8

// Telegram organizations used by the supported profiles.
const (
	RORG4BS RORG = 0xA5 // 4-byte sensor data
	RORG1BS RORG = 0xD5 // 1-byte sensor data (contacts)
	RORGRPS RORG = 0xF6 // repeated switch (rockers)
)

// Telegram is a parsed ERP1 radio telegram.
type Telegram struct {
	RORG     RORG
	Data     []byte // 4 bytes for 4BS, 1 byte for 1BS/RPS
	SenderID uint32
	Status   uint8
}

// ErrShortTelegram reports a truncated ERP1 payload.
var ErrShortTelegram = errors.New("enocean: truncated ERP1 telegram")

// Encode serializes the telegram as the Data field of a RadioERP1 packet.
func (t *Telegram) Encode() []byte {
	out := make([]byte, 0, 1+len(t.Data)+5)
	out = append(out, uint8(t.RORG))
	out = append(out, t.Data...)
	out = binary.BigEndian.AppendUint32(out, t.SenderID)
	return append(out, t.Status)
}

// DecodeTelegram parses an ERP1 telegram from a RadioERP1 packet's data.
func DecodeTelegram(data []byte) (*Telegram, error) {
	if len(data) < 7 { // rorg + >=1 data + sender(4) + status
		return nil, ErrShortTelegram
	}
	rorg := RORG(data[0])
	var dataLen int
	switch rorg {
	case RORG4BS:
		dataLen = 4
	case RORG1BS, RORGRPS:
		dataLen = 1
	default:
		return nil, fmt.Errorf("enocean: unsupported RORG %#02x", data[0])
	}
	if len(data) != 1+dataLen+5 {
		return nil, ErrShortTelegram
	}
	return &Telegram{
		RORG:     rorg,
		Data:     append([]byte(nil), data[1:1+dataLen]...),
		SenderID: binary.BigEndian.Uint32(data[1+dataLen:]),
		Status:   data[len(data)-1],
	}, nil
}

// WrapRadio builds the ESP3 packet carrying the telegram, with the
// standard optional data (subtelegram count 3, broadcast destination,
// dBm 0xFF best, security 0).
func (t *Telegram) WrapRadio() *Packet {
	opt := []byte{0x03, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x00}
	return &Packet{Type: TypeRadioERP1, Data: t.Encode(), Optional: opt}
}

// EEP identifies an EnOcean Equipment Profile as rorg-func-type.
type EEP struct {
	RORG uint8
	Func uint8
	Type uint8
}

// String renders the profile in the conventional A5-02-05 form.
func (e EEP) String() string { return fmt.Sprintf("%02X-%02X-%02X", e.RORG, e.Func, e.Type) }

// Profiles supported by the proxy.
var (
	EEPTempA50205     = EEP{0xA5, 0x02, 0x05} // temperature 0..40 degC
	EEPTempHumA50401  = EEP{0xA5, 0x04, 0x01} // temperature 0..40 + humidity
	EEPRockerF60201   = EEP{0xF6, 0x02, 0x01} // 2-rocker switch
	EEPContactD50001  = EEP{0xD5, 0x00, 0x01} // single-input contact
	EEPOccupancyA5070 = EEP{0xA5, 0x07, 0x01} // occupancy PIR
)

// Reading is one decoded physical value from a telegram.
type Reading struct {
	Quantity dataformat.Quantity
	Value    float64
	Unit     dataformat.Unit
}

// ErrTeachIn reports a teach-in telegram, which carries no data.
var ErrTeachIn = errors.New("enocean: teach-in telegram")

// DecodeEEP interprets a telegram under an equipment profile and returns
// the readings it carries.
func DecodeEEP(profile EEP, t *Telegram) ([]Reading, error) {
	if uint8(t.RORG) != profile.RORG {
		return nil, fmt.Errorf("enocean: telegram RORG %#02x does not match profile %s", uint8(t.RORG), profile)
	}
	switch profile {
	case EEPTempA50205:
		if len(t.Data) != 4 {
			return nil, ErrShortTelegram
		}
		if t.Data[3]&0x08 == 0 {
			return nil, ErrTeachIn
		}
		// DB1 holds 255..0 for 0..40 degC (inverted scale).
		raw := float64(t.Data[2])
		temp := (255 - raw) * 40 / 255
		return []Reading{{dataformat.Temperature, temp, dataformat.Celsius}}, nil

	case EEPTempHumA50401:
		if len(t.Data) != 4 {
			return nil, ErrShortTelegram
		}
		if t.Data[3]&0x08 == 0 {
			return nil, ErrTeachIn
		}
		// DB2 humidity 0..250 -> 0..100%; DB1 temperature 0..250 -> 0..40 degC.
		hum := float64(t.Data[1]) * 100 / 250
		temp := float64(t.Data[2]) * 40 / 250
		out := []Reading{{dataformat.Humidity, hum, dataformat.Percent}}
		if t.Data[3]&0x02 != 0 { // T-sensor availability bit
			out = append(out, Reading{dataformat.Temperature, temp, dataformat.Celsius})
		}
		return out, nil

	case EEPOccupancyA5070:
		if len(t.Data) != 4 {
			return nil, ErrShortTelegram
		}
		if t.Data[3]&0x08 == 0 {
			return nil, ErrTeachIn
		}
		// DB1 >= 128 means motion observed.
		v := 0.0
		if t.Data[2] >= 128 {
			v = 1
		}
		return []Reading{{dataformat.Occupancy, v, dataformat.Bool}}, nil

	case EEPRockerF60201:
		if len(t.Data) != 1 {
			return nil, ErrShortTelegram
		}
		// Bits 7..5 carry the rocker action, bit 4 the energy bow. A0
		// pressed (0x30) or B0 pressed (0x70) means ON; AI/BI mean OFF.
		v := 0.0
		if t.Data[0]&0xF0 == 0x30 || t.Data[0]&0xF0 == 0x70 {
			v = 1
		}
		return []Reading{{dataformat.SwitchState, v, dataformat.Bool}}, nil

	case EEPContactD50001:
		if len(t.Data) != 1 {
			return nil, ErrShortTelegram
		}
		if t.Data[0]&0x08 == 0 {
			return nil, ErrTeachIn
		}
		v := 0.0
		if t.Data[0]&0x01 != 0 {
			v = 1 // contact closed
		}
		return []Reading{{dataformat.ContactState, v, dataformat.Bool}}, nil

	default:
		return nil, fmt.Errorf("enocean: unsupported profile %s", profile)
	}
}

// EncodeEEP builds the telegram a device with the given profile would
// send for the readings — the inverse of DecodeEEP, used by the WSN
// simulator's virtual EnOcean devices.
func EncodeEEP(profile EEP, sender uint32, readings []Reading) (*Telegram, error) {
	byQ := make(map[dataformat.Quantity]float64, len(readings))
	for _, r := range readings {
		byQ[r.Quantity] = r.Value
	}
	switch profile {
	case EEPTempA50205:
		temp, ok := byQ[dataformat.Temperature]
		if !ok {
			return nil, fmt.Errorf("enocean: profile %s needs a temperature reading", profile)
		}
		raw := 255 - clampByte(temp*255/40)
		return &Telegram{RORG: RORG4BS, Data: []byte{0, 0, raw, 0x08}, SenderID: sender}, nil

	case EEPTempHumA50401:
		hum := byQ[dataformat.Humidity]
		temp, hasTemp := byQ[dataformat.Temperature]
		db3 := byte(0x08)
		var db1 byte
		if hasTemp {
			db3 |= 0x02
			db1 = clampByte(temp * 250 / 40)
		}
		return &Telegram{RORG: RORG4BS, Data: []byte{0, clampByte(hum * 250 / 100), db1, db3}, SenderID: sender}, nil

	case EEPOccupancyA5070:
		var db1 byte = 0
		if byQ[dataformat.Occupancy] != 0 {
			db1 = 200
		}
		return &Telegram{RORG: RORG4BS, Data: []byte{0, 0, db1, 0x08}, SenderID: sender}, nil

	case EEPRockerF60201:
		var db0 byte = 0x10 // A1 pressed (off)
		if byQ[dataformat.SwitchState] != 0 {
			db0 = 0x30 // A0 pressed (on)
		}
		return &Telegram{RORG: RORGRPS, Data: []byte{db0}, SenderID: sender, Status: 0x30}, nil

	case EEPContactD50001:
		var db0 byte = 0x08
		if byQ[dataformat.ContactState] != 0 {
			db0 |= 0x01
		}
		return &Telegram{RORG: RORG1BS, Data: []byte{db0}, SenderID: sender}, nil

	default:
		return nil, fmt.Errorf("enocean: unsupported profile %s", profile)
	}
}

func clampByte(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
