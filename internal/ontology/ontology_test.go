package ontology

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/dataformat"
)

// buildSample creates a small two-district forest.
func buildSample(t *testing.T) *Ontology {
	t.Helper()
	o := New()
	turin, err := o.AddDistrict("turin", "Torino")
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetProperty(turin, PropGISURI, "http://gis.turin/"); err != nil {
		t.Fatal(err)
	}
	b1, err := o.AddEntity(turin, KindBuilding, "b01", "DAUIN", 45.0628, 7.6624)
	if err != nil {
		t.Fatal(err)
	}
	_ = o.SetProperty(b1, PropProxyURI, "http://bim-b01/")
	b2, err := o.AddEntity(turin, KindBuilding, "b02", "Library", 45.07, 7.69)
	if err != nil {
		t.Fatal(err)
	}
	_ = o.SetProperty(b2, PropProxyURI, "http://bim-b02/")
	n1, err := o.AddEntity(turin, KindNetwork, "dh1", "District Heating", 45.065, 7.67)
	if err != nil {
		t.Fatal(err)
	}
	_ = o.SetProperty(n1, PropProxyURI, "http://sim-dh1/")
	d1, err := o.AddDevice(b1, "t-1", "Temp Lab 1", 45.0628, 7.6624)
	if err != nil {
		t.Fatal(err)
	}
	_ = o.SetProperty(d1, PropProxyURI, "http://devproxy-1/")
	_ = o.SetProperty(d1, PropProtocol, "zigbee")
	if _, err := o.AddDevice(b1, "h-1", "Hum Lab 1", 45.0628, 7.6624); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddDistrict("milan", "Milano"); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestURIHelpers(t *testing.T) {
	if got := DistrictURI("turin"); got != "urn:district:turin" {
		t.Errorf("DistrictURI = %q", got)
	}
	if got := EntityURI("turin", KindBuilding, "b01"); got != "urn:district:turin/building:b01" {
		t.Errorf("EntityURI = %q", got)
	}
	if got := DeviceURI("urn:district:turin/building:b01", "t-1"); got != "urn:district:turin/building:b01/device:t-1" {
		t.Errorf("DeviceURI = %q", got)
	}
}

func TestParseURI(t *testing.T) {
	d, segs, err := ParseURI("urn:district:turin/building:b01/device:t-1")
	if err != nil || d != "turin" || len(segs) != 2 || segs[1] != "device:t-1" {
		t.Errorf("ParseURI = %q %v %v", d, segs, err)
	}
	if _, _, err := ParseURI("http://not-a-urn/"); err == nil {
		t.Error("bad prefix accepted")
	}
	if _, _, err := ParseURI("urn:district:"); err == nil {
		t.Error("empty district accepted")
	}
}

func TestBuildForest(t *testing.T) {
	o := buildSample(t)
	if o.Len() != 7 {
		t.Errorf("Len = %d, want 7", o.Len())
	}
	if got := o.Districts(); len(got) != 2 || got[0] != "urn:district:milan" {
		t.Errorf("Districts = %v (want sorted)", got)
	}
	kids, err := o.Children("urn:district:turin/building:b01")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0].Kind != KindDevice {
		t.Errorf("Children = %+v", kids)
	}
}

func TestAddRejections(t *testing.T) {
	o := buildSample(t)
	turin := "urn:district:turin"
	if _, err := o.AddDistrict("turin", "again"); !errors.Is(err, ErrDuplicateURI) {
		t.Errorf("duplicate district: %v", err)
	}
	if _, err := o.AddEntity(turin, KindBuilding, "b01", "again", 0, 0); !errors.Is(err, ErrDuplicateURI) {
		t.Errorf("duplicate building: %v", err)
	}
	if _, err := o.AddEntity(turin, KindDevice, "d", "bad kind", 0, 0); !errors.Is(err, ErrBadParent) {
		t.Errorf("device as entity: %v", err)
	}
	if _, err := o.AddEntity("urn:district:ghost", KindBuilding, "b", "x", 0, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown district: %v", err)
	}
	if _, err := o.AddEntity("urn:district:turin/building:b01", KindBuilding, "b", "nested", 0, 0); !errors.Is(err, ErrBadParent) {
		t.Errorf("building under building: %v", err)
	}
	if _, err := o.AddDevice(turin, "d", "device under district", 0, 0); !errors.Is(err, ErrBadParent) {
		t.Errorf("device under district: %v", err)
	}
	if _, err := o.AddDevice("urn:district:turin/building:b01", "t-1", "dup", 0, 0); !errors.Is(err, ErrDuplicateURI) {
		t.Errorf("duplicate device: %v", err)
	}
	if err := o.SetProperty("urn:ghost", "a", "b"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("SetProperty unknown: %v", err)
	}
}

func TestResolveAreaWholeDistrict(t *testing.T) {
	o := buildSample(t)
	got, err := o.ResolveArea("turin", Area{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("resolutions = %d, want 3 (2 buildings + 1 network)", len(got))
	}
	// Sorted children: b01, b02, dh1 — network URIs sort after buildings.
	if got[0].URI != "urn:district:turin/building:b01" || got[0].ProxyURI != "http://bim-b01/" {
		t.Errorf("first resolution = %+v", got[0])
	}
}

func TestResolveAreaFiltering(t *testing.T) {
	o := buildSample(t)
	// Box around b01 only.
	got, err := o.ResolveArea("turin", Area{MinLat: 45.06, MinLon: 7.66, MaxLat: 45.065, MaxLon: 7.665})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "DAUIN" {
		t.Fatalf("filtered = %+v", got)
	}
	if _, err := o.ResolveArea("ghost", Area{}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown district: %v", err)
	}
}

func TestResolveDevices(t *testing.T) {
	o := buildSample(t)
	got, err := o.ResolveDevices("urn:district:turin/building:b01")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("devices = %+v", got)
	}
	// Sorted by URI: h-1 before t-1.
	if got[0].URI != "urn:district:turin/building:b01/device:h-1" {
		t.Errorf("first device = %+v", got[0])
	}
	if got[1].ProxyURI != "http://devproxy-1/" || got[1].Extra[PropProtocol] != "zigbee" {
		t.Errorf("device resolution = %+v", got[1])
	}
}

func TestEntityConversion(t *testing.T) {
	o := buildSample(t)
	e, err := o.Entity("urn:district:turin")
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != dataformat.EntityDistrict || len(e.Children) != 3 {
		t.Fatalf("entity = %+v", e)
	}
	if v, ok := e.Prop(PropGISURI); !ok || v != "http://gis.turin/" {
		t.Errorf("district property lost: %v %v", v, ok)
	}
	b01 := e.Children[0]
	if len(b01.Children) != 2 || b01.Location == nil {
		t.Errorf("building entity = %+v", b01)
	}
	if err := e.Validate(); err != nil {
		t.Errorf("converted entity invalid: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	o := buildSample(t)
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != o.Len() {
		t.Fatalf("Len = %d, want %d", restored.Len(), o.Len())
	}
	if got := restored.Districts(); len(got) != 2 {
		t.Errorf("Districts = %v", got)
	}
	res, err := restored.ResolveDevices("urn:district:turin/building:b01")
	if err != nil || len(res) != 2 {
		t.Errorf("ResolveDevices after restore: %v %v", res, err)
	}
	// Serialization must be deterministic.
	again, _ := json.Marshal(restored)
	if string(again) != string(data) {
		t.Error("serialization not deterministic")
	}
}

func TestUnmarshalRejectsDanglingRefs(t *testing.T) {
	bad := `{"nodes":[{"uri":"urn:district:x","kind":"district","children":["urn:district:x/building:ghost"]}]}`
	o := New()
	if err := json.Unmarshal([]byte(bad), o); err == nil {
		t.Error("dangling child accepted")
	}
	bad = `{"nodes":[{"uri":"urn:district:x/building:b","kind":"building","parent":"urn:district:ghost"}]}`
	o = New()
	if err := json.Unmarshal([]byte(bad), o); err == nil {
		t.Error("dangling parent accepted")
	}
}

func TestGetReturnsCopies(t *testing.T) {
	o := buildSample(t)
	n, err := o.Get("urn:district:turin")
	if err != nil {
		t.Fatal(err)
	}
	n.Properties[PropGISURI] = "http://tampered/"
	n.Children[0] = "urn:tampered"
	if v, _ := o.Property("urn:district:turin", PropGISURI); v != "http://gis.turin/" {
		t.Error("Get leaked internal property map")
	}
	kids, _ := o.Children("urn:district:turin")
	if kids[0].URI == "urn:tampered" {
		t.Error("Get leaked internal children slice")
	}
}

// Property: for any set of buildings at distinct positions, ResolveArea
// with a box around a single building returns exactly that building.
func TestResolveAreaExactProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		o := New()
		turin, err := o.AddDistrict("turin", "Torino")
		if err != nil {
			return false
		}
		// Distinct grid positions.
		for i := 0; i < n; i++ {
			lat := 45.0 + float64(i)*0.01
			lon := 7.0 + float64(i%7)*0.01
			if _, err := o.AddEntity(turin, KindBuilding, fmt.Sprintf("b%02d", i), "B", lat, lon); err != nil {
				return false
			}
		}
		pick := int(seed%int64(n)+int64(n)) % n
		lat := 45.0 + float64(pick)*0.01
		lon := 7.0 + float64(pick%7)*0.01
		got, err := o.ResolveArea("turin", Area{
			MinLat: lat - 0.001, MinLon: lon - 0.001,
			MaxLat: lat + 0.001, MaxLon: lon + 0.001,
		})
		if err != nil {
			return false
		}
		return len(got) == 1 && got[0].URI == EntityURI("turin", KindBuilding, fmt.Sprintf("b%02d", pick))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
