// Package ontology implements the master node's ontology: the structure
// of one or more districts, "each one structured as a tree" (paper §II).
// The root node of each tree holds the district's global properties (its
// name, the URIs of the GIS Database-proxies' web services); intermediate
// nodes represent buildings and energy-distribution networks with their
// BIM/SIM Database-proxy URIs and GIS mappings; leaf nodes represent the
// devices placed in each intermediate entity.
//
// The master node consults this structure to answer area queries with
// the proxy URIs the end-user application should fetch from.
package ontology

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dataformat"
)

// Kind classifies ontology nodes.
type Kind string

// Node kinds, mirroring the paper's tree: district roots, building and
// network intermediates, device leaves.
const (
	KindDistrict Kind = "district"
	KindBuilding Kind = "building"
	KindNetwork  Kind = "network"
	KindDevice   Kind = "device"
)

// Well-known property names attached to ontology nodes.
const (
	PropProxyURI   = "proxy.uri"   // web service of the entity's proxy
	PropGISURI     = "gis.uri"     // district GIS Database-proxy
	PropMeasureURI = "measure.uri" // district measurements DB proxy
	PropGISFeature = "gis.feature" // feature ID in the GIS database
	PropProtocol   = "protocol"    // device native protocol
	PropQuantities = "quantities"  // comma-joined sensed quantities
)

// URI construction. District entity URIs follow the
// urn:district:<district>/<kind>:<id> convention used across the system.

// DistrictURI returns the root URI of a district.
func DistrictURI(district string) string {
	return "urn:district:" + district
}

// EntityURI returns the URI of an intermediate entity in a district.
func EntityURI(district string, kind Kind, id string) string {
	return fmt.Sprintf("%s/%s:%s", DistrictURI(district), kind, id)
}

// DeviceURI returns the URI of a device under an intermediate entity.
func DeviceURI(parentURI, deviceID string) string {
	return fmt.Sprintf("%s/device:%s", parentURI, deviceID)
}

// Node is one ontology entry.
type Node struct {
	URI  string `json:"uri"`
	Kind Kind   `json:"kind"`
	Name string `json:"name,omitempty"`
	// Lat/Lon georeference the entity (building centroid, plant
	// position, device placement).
	Lat float64 `json:"lat,omitempty"`
	Lon float64 `json:"lon,omitempty"`
	// Properties carries the URIs and annotations the paper stores in
	// the ontology (proxy web service URIs, GIS mappings, ...).
	Properties map[string]string `json:"properties,omitempty"`
	// Children are the URIs of child nodes, sorted.
	Children []string `json:"children,omitempty"`
	// Parent is the URI of the parent node ("" for districts).
	Parent string `json:"parent,omitempty"`
}

// Errors reported by the ontology.
var (
	ErrUnknownNode  = errors.New("ontology: unknown node")
	ErrDuplicateURI = errors.New("ontology: duplicate URI")
	ErrBadParent    = errors.New("ontology: invalid parent for node kind")
)

// Ontology is the thread-safe district forest.
type Ontology struct {
	mu    sync.RWMutex
	nodes map[string]*Node
	roots []string // district URIs, sorted
}

// New creates an empty ontology.
func New() *Ontology {
	return &Ontology{nodes: make(map[string]*Node)}
}

// AddDistrict creates a district root and returns its URI.
func (o *Ontology) AddDistrict(district, name string) (string, error) {
	uri := DistrictURI(district)
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.nodes[uri]; dup {
		return "", fmt.Errorf("%w: %s", ErrDuplicateURI, uri)
	}
	o.nodes[uri] = &Node{URI: uri, Kind: KindDistrict, Name: name, Properties: map[string]string{}}
	o.roots = append(o.roots, uri)
	sort.Strings(o.roots)
	return uri, nil
}

// AddEntity creates a building or network node under a district root.
func (o *Ontology) AddEntity(districtURI string, kind Kind, id, name string, lat, lon float64) (string, error) {
	if kind != KindBuilding && kind != KindNetwork {
		return "", fmt.Errorf("%w: %q under district", ErrBadParent, kind)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	parent, ok := o.nodes[districtURI]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownNode, districtURI)
	}
	if parent.Kind != KindDistrict {
		return "", fmt.Errorf("%w: parent %s is a %s", ErrBadParent, districtURI, parent.Kind)
	}
	uri := fmt.Sprintf("%s/%s:%s", districtURI, kind, id)
	if _, dup := o.nodes[uri]; dup {
		return "", fmt.Errorf("%w: %s", ErrDuplicateURI, uri)
	}
	o.nodes[uri] = &Node{
		URI: uri, Kind: kind, Name: name, Lat: lat, Lon: lon,
		Parent: districtURI, Properties: map[string]string{},
	}
	parent.Children = insertSorted(parent.Children, uri)
	return uri, nil
}

// AddDevice creates a device leaf under a building or network node.
func (o *Ontology) AddDevice(parentURI, deviceID, name string, lat, lon float64) (string, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	parent, ok := o.nodes[parentURI]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownNode, parentURI)
	}
	if parent.Kind != KindBuilding && parent.Kind != KindNetwork {
		return "", fmt.Errorf("%w: device under %s", ErrBadParent, parent.Kind)
	}
	uri := DeviceURI(parentURI, deviceID)
	if _, dup := o.nodes[uri]; dup {
		return "", fmt.Errorf("%w: %s", ErrDuplicateURI, uri)
	}
	o.nodes[uri] = &Node{
		URI: uri, Kind: KindDevice, Name: name, Lat: lat, Lon: lon,
		Parent: parentURI, Properties: map[string]string{},
	}
	parent.Children = insertSorted(parent.Children, uri)
	return uri, nil
}

func insertSorted(list []string, s string) []string {
	i := sort.SearchStrings(list, s)
	list = append(list, "")
	copy(list[i+1:], list[i:])
	list[i] = s
	return list
}

// SetProperty sets one property on a node.
func (o *Ontology) SetProperty(uri, name, value string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	n, ok := o.nodes[uri]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, uri)
	}
	n.Properties[name] = value
	return nil
}

// Property reads one property of a node.
func (o *Ontology) Property(uri, name string) (string, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	n, ok := o.nodes[uri]
	if !ok {
		return "", false
	}
	v, ok := n.Properties[name]
	return v, ok
}

// Get returns a copy of a node.
func (o *Ontology) Get(uri string) (Node, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	n, ok := o.nodes[uri]
	if !ok {
		return Node{}, fmt.Errorf("%w: %s", ErrUnknownNode, uri)
	}
	return copyNode(n), nil
}

func copyNode(n *Node) Node {
	cp := *n
	cp.Properties = make(map[string]string, len(n.Properties))
	for k, v := range n.Properties {
		cp.Properties[k] = v
	}
	cp.Children = append([]string(nil), n.Children...)
	return cp
}

// Districts lists district root URIs.
func (o *Ontology) Districts() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return append([]string(nil), o.roots...)
}

// Children returns copies of a node's children.
func (o *Ontology) Children(uri string) ([]Node, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	n, ok := o.nodes[uri]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, uri)
	}
	out := make([]Node, 0, len(n.Children))
	for _, c := range n.Children {
		out = append(out, copyNode(o.nodes[c]))
	}
	return out, nil
}

// Len reports the number of nodes.
func (o *Ontology) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.nodes)
}

// Area is a latitude/longitude box used by area queries.
type Area struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// contains reports whether the area includes the point.
func (a Area) contains(lat, lon float64) bool {
	return lat >= a.MinLat && lat <= a.MaxLat && lon >= a.MinLon && lon <= a.MaxLon
}

// Empty reports whether the area is the zero box.
func (a Area) Empty() bool {
	return a == Area{}
}

// Resolution is one entity the master returns for an area query: the
// entity's ontology description plus the proxy URI to fetch it from —
// exactly the redirection contract of the paper.
type Resolution struct {
	URI      string            `json:"uri"`
	Kind     Kind              `json:"kind"`
	Name     string            `json:"name,omitempty"`
	Lat      float64           `json:"lat,omitempty"`
	Lon      float64           `json:"lon,omitempty"`
	ProxyURI string            `json:"proxyUri,omitempty"`
	Extra    map[string]string `json:"extra,omitempty"`
}

// ResolveArea returns the intermediate entities (buildings, networks) of
// a district that fall inside the area, each with its proxy URI; an
// empty area matches the whole district. Devices are not returned — the
// end-user application reaches them through their entity's proxies,
// matching the paper's flow.
func (o *Ontology) ResolveArea(district string, area Area) ([]Resolution, error) {
	rootURI := DistrictURI(district)
	o.mu.RLock()
	defer o.mu.RUnlock()
	root, ok := o.nodes[rootURI]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, rootURI)
	}
	var out []Resolution
	for _, childURI := range root.Children {
		n := o.nodes[childURI]
		if !area.Empty() && !area.contains(n.Lat, n.Lon) {
			continue
		}
		out = append(out, resolutionOf(n))
	}
	return out, nil
}

// ResolveDevices returns the device leaves under an entity, each with
// its device-proxy URI.
func (o *Ontology) ResolveDevices(entityURI string) ([]Resolution, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	n, ok := o.nodes[entityURI]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, entityURI)
	}
	var out []Resolution
	for _, childURI := range n.Children {
		c := o.nodes[childURI]
		if c.Kind == KindDevice {
			out = append(out, resolutionOf(c))
		}
	}
	return out, nil
}

func resolutionOf(n *Node) Resolution {
	r := Resolution{URI: n.URI, Kind: n.Kind, Name: n.Name, Lat: n.Lat, Lon: n.Lon}
	extra := make(map[string]string)
	for k, v := range n.Properties {
		if k == PropProxyURI {
			r.ProxyURI = v
			continue
		}
		extra[k] = v
	}
	if len(extra) > 0 {
		r.Extra = extra
	}
	return r
}

// Entity converts a subtree to the common-format entity representation,
// recursively including children.
func (o *Ontology) Entity(uri string) (dataformat.Entity, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	n, ok := o.nodes[uri]
	if !ok {
		return dataformat.Entity{}, fmt.Errorf("%w: %s", ErrUnknownNode, uri)
	}
	return o.entityLocked(n), nil
}

func (o *Ontology) entityLocked(n *Node) dataformat.Entity {
	e := dataformat.Entity{
		URI:  n.URI,
		Kind: dataformat.EntityKind(n.Kind),
		Name: n.Name,
	}
	if n.Lat != 0 || n.Lon != 0 {
		e.Location = &dataformat.Location{Latitude: n.Lat, Longitude: n.Lon}
	}
	keys := make([]string, 0, len(n.Properties))
	for k := range n.Properties {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.Properties = append(e.Properties, dataformat.Property{Name: k, Value: n.Properties[k], Type: "string"})
	}
	for _, c := range n.Children {
		e.Children = append(e.Children, o.entityLocked(o.nodes[c]))
	}
	return e
}

// MarshalJSON serializes the whole forest deterministically.
func (o *Ontology) MarshalJSON() ([]byte, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	uris := make([]string, 0, len(o.nodes))
	for uri := range o.nodes {
		uris = append(uris, uri)
	}
	sort.Strings(uris)
	nodes := make([]*Node, len(uris))
	for i, uri := range uris {
		nodes[i] = o.nodes[uri]
	}
	return json.Marshal(struct {
		Nodes []*Node `json:"nodes"`
	}{nodes})
}

// UnmarshalJSON restores a forest serialized by MarshalJSON.
func (o *Ontology) UnmarshalJSON(data []byte) error {
	var wire struct {
		Nodes []*Node `json:"nodes"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.nodes = make(map[string]*Node, len(wire.Nodes))
	o.roots = nil
	for _, n := range wire.Nodes {
		if n.URI == "" {
			return fmt.Errorf("ontology: node without URI in serialized forest")
		}
		if n.Properties == nil {
			n.Properties = map[string]string{}
		}
		o.nodes[n.URI] = n
		if n.Kind == KindDistrict {
			o.roots = append(o.roots, n.URI)
		}
	}
	sort.Strings(o.roots)
	// Verify referential integrity.
	for _, n := range o.nodes {
		for _, c := range n.Children {
			if _, ok := o.nodes[c]; !ok {
				return fmt.Errorf("%w: child %s of %s", ErrUnknownNode, c, n.URI)
			}
		}
		if n.Parent != "" {
			if _, ok := o.nodes[n.Parent]; !ok {
				return fmt.Errorf("%w: parent %s of %s", ErrUnknownNode, n.Parent, n.URI)
			}
		}
	}
	return nil
}

// ParseURI splits an entity URI into its district and path segments
// ("urn:district:turin/building:b01/device:t1" -> "turin",
// ["building:b01", "device:t1"]).
func ParseURI(uri string) (district string, segments []string, err error) {
	const prefix = "urn:district:"
	if !strings.HasPrefix(uri, prefix) {
		return "", nil, fmt.Errorf("ontology: URI %q lacks %q prefix", uri, prefix)
	}
	rest := strings.TrimPrefix(uri, prefix)
	parts := strings.Split(rest, "/")
	if parts[0] == "" {
		return "", nil, fmt.Errorf("ontology: URI %q has empty district", uri)
	}
	return parts[0], parts[1:], nil
}
