package middleware

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus(BusOptions{})
	defer b.Close()
	var got atomic.Int64
	sub, err := b.Subscribe("district/+/temperature", func(ev Event) {
		got.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	if err := b.Publish(Event{Topic: "district/turin/temperature", Payload: []byte("21.5")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(Event{Topic: "district/turin/humidity"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 })
}

func TestBusSynchronousDelivery(t *testing.T) {
	b := NewBus(BusOptions{QueueLen: -1})
	defer b.Close()
	var got int
	if _, err := b.Subscribe("a/#", func(ev Event) { got++ }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := b.Publish(Event{Topic: "a/b"}); err != nil {
			t.Fatal(err)
		}
	}
	if got != 10 { // synchronous: no waiting needed
		t.Fatalf("got %d deliveries, want 10", got)
	}
}

func TestBusRejectsBadTopics(t *testing.T) {
	b := NewBus(BusOptions{})
	defer b.Close()
	if err := b.Publish(Event{Topic: "a/+"}); err == nil {
		t.Error("wildcard topic accepted by Publish")
	}
	if _, err := b.Subscribe("a//b", func(Event) {}); err == nil {
		t.Error("bad pattern accepted by Subscribe")
	}
}

func TestBusUnsubscribeStopsDelivery(t *testing.T) {
	b := NewBus(BusOptions{})
	defer b.Close()
	var got atomic.Int64
	sub, _ := b.Subscribe("x", func(Event) { got.Add(1) })
	_ = b.Publish(Event{Topic: "x"})
	waitFor(t, func() bool { return got.Load() == 1 })
	sub.Unsubscribe()
	_ = b.Publish(Event{Topic: "x"})
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 1 {
		t.Fatalf("delivery after Unsubscribe: %d", got.Load())
	}
}

func TestBusSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBus(BusOptions{QueueLen: 1})
	defer b.Close()
	block := make(chan struct{})
	_, _ = b.Subscribe("x", func(Event) { <-block })
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			_ = b.Publish(Event{Topic: "x"})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publisher blocked on slow subscriber")
	}
	close(block)
	waitFor(t, func() bool { return b.Stats().Dropped > 0 })
}

func TestBusStats(t *testing.T) {
	b := NewBus(BusOptions{QueueLen: -1})
	defer b.Close()
	_, _ = b.Subscribe("a", func(Event) {})
	_, _ = b.Subscribe("#", func(Event) {})
	_ = b.Publish(Event{Topic: "a"})
	st := b.Stats()
	if st.Published != 1 || st.Delivered != 2 || st.Subscriptions != 2 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestBusCloseIdempotentAndRejects(t *testing.T) {
	b := NewBus(BusOptions{})
	_, _ = b.Subscribe("a", func(Event) {})
	b.Close()
	b.Close()
	if err := b.Publish(Event{Topic: "a"}); err != ErrBusClosed {
		t.Fatalf("Publish after close = %v, want ErrBusClosed", err)
	}
	if _, err := b.Subscribe("a", func(Event) {}); err != ErrBusClosed {
		t.Fatalf("Subscribe after close = %v, want ErrBusClosed", err)
	}
}

func TestBusEventTimestampDefaulted(t *testing.T) {
	b := NewBus(BusOptions{QueueLen: -1})
	defer b.Close()
	var at time.Time
	_, _ = b.Subscribe("a", func(ev Event) { at = ev.At })
	_ = b.Publish(Event{Topic: "a"})
	if at.IsZero() {
		t.Fatal("Publish did not default the event timestamp")
	}
}

func TestBusConcurrentPublishers(t *testing.T) {
	b := NewBus(BusOptions{QueueLen: 4096})
	defer b.Close()
	var got atomic.Int64
	for i := 0; i < 4; i++ {
		_, _ = b.Subscribe("load/#", func(Event) { got.Add(1) })
	}
	var wg sync.WaitGroup
	const perPublisher = 250
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				_ = b.Publish(Event{Topic: "load/x"})
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool {
		st := b.Stats()
		return st.Delivered+st.Dropped == 4*8*perPublisher
	})
}
