package middleware

import (
	"net"
	"sync/atomic"
	"testing"
	"time"
)

func TestDialPersistentSurvivesHubRestart(t *testing.T) {
	// Reserve a port, start a hub on it, kill it, restart on the same
	// port: the persistent leaf must reconnect and deliveries resume.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	hub1 := NewNode(NodeOptions{ID: "hub1", Relay: true})
	if _, err := hub1.Listen(addr); err != nil {
		t.Fatal(err)
	}

	leaf := NewNode(NodeOptions{ID: "leaf"})
	var got atomic.Int64
	if _, err := leaf.Subscribe("r/#", func(Event) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := leaf.DialPersistent(addr); err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()
	waitFor(t, func() bool { return len(leaf.Peers()) == 1 })
	time.Sleep(50 * time.Millisecond)

	if err := hub1.Publish(Event{Topic: "r/1"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 })

	// Hub dies; leaf loses the link.
	hub1.Close()
	waitFor(t, func() bool { return len(leaf.Peers()) == 0 })

	// Hub restarts on the same port (retry: the OS may briefly hold it).
	hub2 := NewNode(NodeOptions{ID: "hub2", Relay: true})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := hub2.Listen(addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Skip("port not reusable on this host")
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer hub2.Close()

	// The leaf reconnects and re-advertises; publishes reach it again.
	waitFor(t, func() bool { return len(leaf.Peers()) == 1 })
	time.Sleep(100 * time.Millisecond) // let the sub advertisement land
	if err := hub2.Publish(Event{Topic: "r/2"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 2 })
}

func TestDialPersistentOnClosedNode(t *testing.T) {
	n := NewNode(NodeOptions{})
	n.Close()
	if err := n.DialPersistent("127.0.0.1:1"); err != ErrNodeClosed {
		t.Fatalf("err = %v, want ErrNodeClosed", err)
	}
}

func TestDialPersistentStopsOnClose(t *testing.T) {
	// Target never listens: the dial loop must exit promptly on Close.
	n := NewNode(NodeOptions{})
	if err := n.DialPersistent("127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		n.Close() // must not hang on the backoff loop
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on persistent dialer")
	}
}
