// Package middleware implements the event-driven publish/subscribe
// middleware the infrastructure is built on — the role the SEEMPubS
// middleware plays in the paper. Device-proxies publish measurements into
// it, the global measurements database ingests from it, and end-user
// applications can subscribe to live district events.
//
// Topics are hierarchical, slash-separated paths mirroring the ontology
// ("district/turin/building/b01/device/t-12/temperature"). Subscriptions
// may use `+` to match exactly one segment and `#` to match any suffix.
// The package offers an in-process Bus for embedding inside a proxy and a
// TCP Node that links buses on different hosts into the peer-to-peer
// middleware network of the paper.
package middleware

import (
	"errors"
	"strings"
	"sync"
)

// Wildcards accepted in subscription patterns.
const (
	WildcardOne  = "+" // matches exactly one topic segment
	WildcardRest = "#" // matches any (possibly empty) topic suffix
)

// ErrBadPattern reports a malformed subscription pattern.
var ErrBadPattern = errors.New("middleware: malformed pattern")

// ValidatePattern checks that a subscription pattern is well formed:
// non-empty, no empty segments, and `#` only as the final segment.
func ValidatePattern(pattern string) error {
	if pattern == "" {
		return ErrBadPattern
	}
	segs := strings.Split(pattern, "/")
	for i, s := range segs {
		switch {
		case s == "":
			return ErrBadPattern
		case s == WildcardRest && i != len(segs)-1:
			return ErrBadPattern
		}
	}
	return nil
}

// ValidateTopic checks that a concrete topic is well formed: non-empty,
// no empty segments, and no wildcard characters.
func ValidateTopic(topic string) error {
	if topic == "" {
		return ErrBadPattern
	}
	for _, s := range strings.Split(topic, "/") {
		if s == "" || s == WildcardOne || s == WildcardRest {
			return ErrBadPattern
		}
	}
	return nil
}

// Match reports whether a concrete topic matches a subscription pattern.
func Match(pattern, topic string) bool {
	p := strings.Split(pattern, "/")
	t := strings.Split(topic, "/")
	return matchSegs(p, t)
}

func matchSegs(p, t []string) bool {
	for {
		switch {
		case len(p) == 0:
			return len(t) == 0
		case p[0] == WildcardRest:
			return true
		case len(t) == 0:
			return false
		case p[0] == WildcardOne || p[0] == t[0]:
			p, t = p[1:], t[1:]
		default:
			return false
		}
	}
}

// matcher is the subscription index. The trie implementation makes match
// cost proportional to topic depth rather than subscription count; the
// linear variant exists for the ablation benchmark (DESIGN.md §5).
type matcher interface {
	add(pattern string, id int)
	remove(pattern string, id int)
	match(topic string, visit func(id int))
	len() int
}

// trieMatcher indexes patterns in a segment trie.
type trieMatcher struct {
	root *trieNode
	n    int
}

type trieNode struct {
	children map[string]*trieNode
	ids      map[int]struct{} // subscriptions terminating here
	restIDs  map[int]struct{} // subscriptions with trailing '#'
}

func newTrieMatcher() *trieMatcher { return &trieMatcher{root: newTrieNode()} }

func newTrieNode() *trieNode {
	return &trieNode{children: make(map[string]*trieNode)}
}

func (m *trieMatcher) len() int { return m.n }

func (m *trieMatcher) add(pattern string, id int) {
	node := m.root
	segs := strings.Split(pattern, "/")
	for i, s := range segs {
		if s == WildcardRest {
			if node.restIDs == nil {
				node.restIDs = make(map[int]struct{})
			}
			node.restIDs[id] = struct{}{}
			m.n++
			return
		}
		child, ok := node.children[s]
		if !ok {
			child = newTrieNode()
			node.children[s] = child
		}
		node = child
		if i == len(segs)-1 {
			if node.ids == nil {
				node.ids = make(map[int]struct{})
			}
			node.ids[id] = struct{}{}
			m.n++
		}
	}
}

func (m *trieMatcher) remove(pattern string, id int) {
	node := m.root
	segs := strings.Split(pattern, "/")
	for i, s := range segs {
		if s == WildcardRest {
			if _, ok := node.restIDs[id]; ok {
				delete(node.restIDs, id)
				m.n--
			}
			return
		}
		child, ok := node.children[s]
		if !ok {
			return
		}
		node = child
		if i == len(segs)-1 {
			if _, ok := node.ids[id]; ok {
				delete(node.ids, id)
				m.n--
			}
		}
	}
	// Branch garbage is left in place; subscription churn in this system
	// is dominated by proxies joining, and empty branches are tiny.
}

func (m *trieMatcher) match(topic string, visit func(id int)) {
	matchTrie(m.root, strings.Split(topic, "/"), visit)
}

func matchTrie(node *trieNode, segs []string, visit func(id int)) {
	for id := range node.restIDs {
		visit(id)
	}
	if len(segs) == 0 {
		for id := range node.ids {
			visit(id)
		}
		return
	}
	if child, ok := node.children[segs[0]]; ok {
		matchTrie(child, segs[1:], visit)
	}
	if child, ok := node.children[WildcardOne]; ok {
		matchTrie(child, segs[1:], visit)
	}
}

// linearMatcher scans every pattern on match. Kept for the E2 ablation.
type linearMatcher struct {
	subs map[int]string
}

func newLinearMatcher() *linearMatcher { return &linearMatcher{subs: make(map[int]string)} }

func (m *linearMatcher) len() int { return len(m.subs) }

func (m *linearMatcher) add(pattern string, id int) { m.subs[id] = pattern }

func (m *linearMatcher) remove(pattern string, id int) {
	if m.subs[id] == pattern {
		delete(m.subs, id)
	}
}

func (m *linearMatcher) match(topic string, visit func(id int)) {
	for id, p := range m.subs {
		if Match(p, topic) {
			visit(id)
		}
	}
}

// Index is an exported, concurrency-safe subscription index backed by
// the production trie matcher. Other subsystems that need to resolve a
// concrete topic to a set of integer subscriber IDs (the stream fan-out
// hub) reuse this instead of re-implementing pattern matching; match
// cost stays proportional to topic depth, not subscriber count.
type Index struct {
	lm lockedMatcher
}

// NewIndex creates an empty trie-backed pattern index.
func NewIndex() *Index {
	return &Index{lm: lockedMatcher{m: newTrieMatcher()}}
}

// Add registers id under pattern (the pattern must be pre-validated).
func (ix *Index) Add(pattern string, id int) { ix.lm.add(pattern, id) }

// Remove drops id's registration under pattern.
func (ix *Index) Remove(pattern string, id int) { ix.lm.remove(pattern, id) }

// Match visits the id of every pattern matching the concrete topic.
func (ix *Index) Match(topic string, visit func(id int)) { ix.lm.match(topic, visit) }

// Len returns the number of registered patterns.
func (ix *Index) Len() int { return ix.lm.len() }

// guard wraps a matcher with a lock so Bus and Node can share it.
type lockedMatcher struct {
	mu sync.RWMutex
	m  matcher
}

func (l *lockedMatcher) add(pattern string, id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m.add(pattern, id)
}

func (l *lockedMatcher) remove(pattern string, id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m.remove(pattern, id)
}

func (l *lockedMatcher) match(topic string, visit func(id int)) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.m.match(topic, visit)
}

func (l *lockedMatcher) len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.m.len()
}
