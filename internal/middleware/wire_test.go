package middleware

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestWireFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	in := &message{
		Type: msgPub, Origin: "node-a", Seq: 42,
		Event: &Event{Topic: "a/b/c", Payload: []byte("payload"), Headers: map[string]string{"k": "v"}},
	}
	if err := writeFrame(w, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != msgPub || out.Origin != "node-a" || out.Seq != 42 {
		t.Errorf("envelope = %+v", out)
	}
	if out.Event == nil || out.Event.Topic != "a/b/c" || string(out.Event.Payload) != "payload" {
		t.Errorf("event = %+v", out.Event)
	}
}

func TestWireReadRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	buf.Write(hdr[:])
	if _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestWireReadRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, &message{Type: msgSub, Pattern: "a/#"}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := readFrame(bufio.NewReader(bytes.NewReader(full[:cut]))); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestWireReadRejectsGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("garbage body accepted")
	}
}

// Property: any sequence of messages written back-to-back reads back in
// order and intact.
func TestWireStreamProperty(t *testing.T) {
	f := func(patterns []string, seqs []uint16) bool {
		if len(patterns) > 16 {
			patterns = patterns[:16]
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		var want []message
		for i, p := range patterns {
			var seq uint64
			if i < len(seqs) {
				seq = uint64(seqs[i])
			}
			m := message{Type: msgSub, Pattern: p, Seq: seq}
			if err := writeFrame(w, &m); err != nil {
				return false
			}
			want = append(want, m)
		}
		r := bufio.NewReader(&buf)
		for _, m := range want {
			got, err := readFrame(r)
			if err != nil {
				return false
			}
			if got.Pattern != m.Pattern || got.Seq != m.Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
