package middleware

import (
	"sync/atomic"
	"testing"
	"time"
)

// startRelay spins a hub node listening on loopback.
func startRelay(t *testing.T) (*Node, string) {
	t.Helper()
	hub := NewNode(NodeOptions{ID: "hub", Relay: true})
	addr, err := hub.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hub.Close)
	return hub, addr
}

func dialLeaf(t *testing.T, id, addr string) *Node {
	t.Helper()
	leaf := NewNode(NodeOptions{ID: id})
	if err := leaf.Dial(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(leaf.Close)
	waitFor(t, func() bool { return len(leaf.Peers()) == 1 })
	return leaf
}

func TestNodePublishReachesRemoteSubscriber(t *testing.T) {
	_, addr := startRelay(t)
	pub := dialLeaf(t, "publisher", addr)
	subn := dialLeaf(t, "subscriber", addr)

	var got atomic.Int64
	if _, err := subn.Subscribe("district/turin/#", func(ev Event) {
		if string(ev.Payload) == "21.5" {
			got.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Give the sub advertisement a moment to reach the hub.
	time.Sleep(50 * time.Millisecond)

	if err := pub.Publish(Event{Topic: "district/turin/building/b01/temperature", Payload: []byte("21.5")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 })
}

func TestNodeLeafFiltering(t *testing.T) {
	hub, addr := startRelay(t)
	leaf := dialLeaf(t, "leaf", addr)

	var matched, all atomic.Int64
	_, _ = leaf.Subscribe("a/b", func(Event) { matched.Add(1) })
	time.Sleep(50 * time.Millisecond)

	// Hub-side counter sees everything published at the hub.
	_, _ = hub.Subscribe("#", func(Event) { all.Add(1) })
	_ = hub.Publish(Event{Topic: "a/b"})
	_ = hub.Publish(Event{Topic: "a/c"})
	_ = hub.Publish(Event{Topic: "x/y"})

	waitFor(t, func() bool { return all.Load() == 3 })
	waitFor(t, func() bool { return matched.Load() == 1 })
	time.Sleep(50 * time.Millisecond)
	if matched.Load() != 1 {
		t.Fatalf("leaf received %d events, want 1 (filtering failed)", matched.Load())
	}
}

func TestNodeSubscriptionBeforeDialIsAdvertised(t *testing.T) {
	_, addr := startRelay(t)

	leaf := NewNode(NodeOptions{ID: "early-sub"})
	var got atomic.Int64
	_, _ = leaf.Subscribe("pre/#", func(Event) { got.Add(1) })
	if err := leaf.Dial(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(leaf.Close)
	waitFor(t, func() bool { return len(leaf.Peers()) == 1 })
	time.Sleep(50 * time.Millisecond)

	pub := dialLeaf(t, "pub", addr)
	_ = pub.Publish(Event{Topic: "pre/x"})
	waitFor(t, func() bool { return got.Load() == 1 })
}

func TestNodeTwoRelaysNoDuplicates(t *testing.T) {
	// Two hubs linked to each other; a publisher on hub A, subscriber on
	// hub B, and a redundant second path A->B must not duplicate events.
	hubA := NewNode(NodeOptions{ID: "A", Relay: true})
	addrA, err := hubA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hubA.Close()
	hubB := NewNode(NodeOptions{ID: "B", Relay: true})
	_, err = hubB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hubB.Close()
	if err := hubB.Dial(addrA); err != nil {
		t.Fatal(err)
	}
	if err := hubB.Dial(addrA); err != nil { // second, redundant link
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(hubB.Peers()) == 2 })

	var got atomic.Int64
	_, _ = hubB.Subscribe("dup/#", func(Event) { got.Add(1) })
	time.Sleep(50 * time.Millisecond)

	_ = hubA.Publish(Event{Topic: "dup/x"})
	waitFor(t, func() bool { return got.Load() >= 1 })
	time.Sleep(100 * time.Millisecond)
	if got.Load() != 1 {
		t.Fatalf("received %d copies, want exactly 1", got.Load())
	}
}

func TestNodeUnsubscribeViaWire(t *testing.T) {
	hub, addr := startRelay(t)
	leaf := dialLeaf(t, "leaf", addr)
	var got atomic.Int64
	sub, _ := leaf.Subscribe("u/v", func(Event) { got.Add(1) })
	time.Sleep(50 * time.Millisecond)
	_ = hub.Publish(Event{Topic: "u/v"})
	waitFor(t, func() bool { return got.Load() == 1 })

	sub.Unsubscribe()
	// The wire-level unsub is not sent by Subscription.Unsubscribe (it
	// only detaches the local handler); events may still arrive at the
	// node but have no handler. Delivery count must stay flat.
	_ = hub.Publish(Event{Topic: "u/v"})
	time.Sleep(100 * time.Millisecond)
	if got.Load() != 1 {
		t.Fatalf("handler ran after Unsubscribe: %d", got.Load())
	}
}

func TestNodeDialAfterCloseFails(t *testing.T) {
	n := NewNode(NodeOptions{})
	n.Close()
	if err := n.Dial("127.0.0.1:1"); err != ErrNodeClosed {
		t.Fatalf("Dial after Close = %v, want ErrNodeClosed", err)
	}
}

func TestNodeListenAssignsID(t *testing.T) {
	n := NewNode(NodeOptions{})
	addr, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.ID() != addr {
		t.Fatalf("ID = %q, want listen address %q", n.ID(), addr)
	}
}

func TestSeenCacheEviction(t *testing.T) {
	c := newSeenCache(4)
	for i := 0; i < 4; i++ {
		if !c.insert(string(rune('a' + i))) {
			t.Fatalf("fresh insert %d reported duplicate", i)
		}
	}
	if c.insert("a") {
		t.Fatal("duplicate not detected")
	}
	// Push out "a" (FIFO ring) with new entries.
	c.insert("e")
	c.insert("f")
	c.insert("g")
	c.insert("h")
	if !c.insert("a") {
		t.Fatal("evicted entry still reported as duplicate")
	}
}
