package middleware

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Wire protocol: each frame is a 4-byte big-endian length followed by a
// JSON-encoded message. JSON keeps the wire open-standard, in the spirit
// of the paper's format choices; the length prefix keeps framing trivial.

// maxFrame bounds a single middleware frame (16 MiB).
const maxFrame = 16 << 20

// message is the on-wire envelope between middleware nodes.
type message struct {
	Type    string `json:"type"` // hello | sub | unsub | pub
	NodeID  string `json:"nodeId,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	Origin  string `json:"origin,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	Event   *Event `json:"event,omitempty"`
	Relay   bool   `json:"relay,omitempty"`
}

// Message types.
const (
	msgHello = "hello"
	msgSub   = "sub"
	msgUnsub = "unsub"
	msgPub   = "pub"
)

func writeFrame(w *bufio.Writer, m *message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if len(body) > maxFrame {
		return fmt.Errorf("middleware: frame too large (%d bytes)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) (*message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("middleware: oversized frame (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var m message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// NodeOptions configure a middleware Node.
type NodeOptions struct {
	// ID names the node in the network; default is the listen address.
	ID string
	// Bus is the local bus; a fresh one is created when nil.
	Bus *Bus
	// Relay makes the node request every event from its peers and
	// re-forward events between links — the hub role. Leaf proxies leave
	// this false and receive only what their local subscriptions match.
	Relay bool
	// DedupeWindow is the number of recently-seen event IDs remembered
	// for flood suppression. Zero means the default (8192).
	DedupeWindow int
}

// Node links a local Bus into the district-wide middleware network over
// TCP. Leaf nodes advertise their local subscription patterns to peers;
// relay (hub) nodes subscribe to everything and re-flood with duplicate
// suppression, so an arbitrary mesh of relays delivers each event once.
type Node struct {
	opts NodeOptions
	bus  *Bus
	ln   net.Listener

	mu     sync.Mutex
	links  map[*link]struct{}
	closed bool
	stopCh chan struct{}
	wg     sync.WaitGroup

	seq   uint64
	seen  *seenCache
	ownID string
}

// link is one established connection to a peer node.
type link struct {
	node   *Node
	conn   net.Conn
	enc    *bufio.Writer
	encMu  sync.Mutex
	peerID string
	relay  bool // peer asked for everything
	remote *lockedMatcher
	subIDs map[string]int // local bus subscription per remote pattern
	nextID int
}

// NewNode creates a Node around the given (or a fresh) bus.
func NewNode(opts NodeOptions) *Node {
	if opts.Bus == nil {
		opts.Bus = NewBus(BusOptions{})
	}
	if opts.DedupeWindow <= 0 {
		opts.DedupeWindow = 8192
	}
	return &Node{
		opts:   opts,
		bus:    opts.Bus,
		links:  make(map[*link]struct{}),
		seen:   newSeenCache(opts.DedupeWindow),
		stopCh: make(chan struct{}),
		ownID:  opts.ID,
	}
}

// Bus returns the node's local bus.
func (n *Node) Bus() *Bus { return n.bus }

// ID returns the node's network identity.
func (n *Node) ID() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ownID
}

// Listen starts accepting peer links on addr and returns the bound
// address (useful with ":0").
func (n *Node) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	n.mu.Lock()
	n.ln = ln
	if n.ownID == "" {
		n.ownID = ln.Addr().String()
	}
	n.mu.Unlock()
	n.wg.Add(1)
	go n.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (n *Node) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.runLink(conn)
		}()
	}
}

// Dial links this node to a peer at addr.
func (n *Node) Dial(addr string) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrNodeClosed
	}
	n.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.runLink(conn)
	}()
	return nil
}

// DialPersistent links to a peer and re-dials with exponential backoff
// whenever the link drops — the self-configuration behaviour §III of the
// paper emphasizes for unattended district deployments. The maintenance
// goroutine stops when the node closes.
func (n *Node) DialPersistent(addr string) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrNodeClosed
	}
	n.wg.Add(1)
	n.mu.Unlock()
	go func() {
		defer n.wg.Done()
		backoff := 50 * time.Millisecond
		const maxBackoff = 5 * time.Second
		for {
			n.mu.Lock()
			closed := n.closed
			n.mu.Unlock()
			if closed {
				return
			}
			conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				select {
				case <-time.After(backoff):
				case <-n.stopCh:
					return
				}
				if backoff *= 2; backoff > maxBackoff {
					backoff = maxBackoff
				}
				continue
			}
			backoff = 50 * time.Millisecond
			n.runLink(conn) // blocks until the link drops
		}
	}()
	return nil
}

// runLink performs the hello exchange and serves the link until EOF.
func (n *Node) runLink(conn net.Conn) {
	defer conn.Close()
	l := &link{
		node:   n,
		conn:   conn,
		enc:    bufio.NewWriter(conn),
		remote: &lockedMatcher{m: newTrieMatcher()},
		subIDs: make(map[string]int),
	}
	r := bufio.NewReader(conn)

	if err := l.send(&message{Type: msgHello, NodeID: n.ID(), Relay: n.opts.Relay}); err != nil {
		return
	}
	hello, err := readFrame(r)
	if err != nil || hello.Type != msgHello {
		return
	}
	l.peerID = hello.NodeID
	l.relay = hello.Relay

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.links[l] = struct{}{}
	n.mu.Unlock()
	defer n.dropLink(l)
	n.advertise(l)

	for {
		m, err := readFrame(r)
		if err != nil {
			return
		}
		n.handle(l, m)
	}
}

func (n *Node) dropLink(l *link) {
	n.mu.Lock()
	delete(n.links, l)
	n.mu.Unlock()
}

func (l *link) send(m *message) error {
	l.encMu.Lock()
	defer l.encMu.Unlock()
	l.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	return writeFrame(l.enc, m)
}

// handle dispatches one inbound frame.
func (n *Node) handle(l *link, m *message) {
	switch m.Type {
	case msgSub:
		if ValidatePattern(m.Pattern) != nil {
			return
		}
		id := l.nextID
		l.nextID++
		l.subIDs[m.Pattern] = id
		l.remote.add(m.Pattern, id)
	case msgUnsub:
		if id, ok := l.subIDs[m.Pattern]; ok {
			l.remote.remove(m.Pattern, id)
			delete(l.subIDs, m.Pattern)
		}
	case msgPub:
		if m.Event == nil {
			return
		}
		eventID := m.Origin + "#" + fmt.Sprint(m.Seq)
		if !n.seen.insert(eventID) {
			return // already flooded through this node
		}
		_ = n.bus.Publish(*m.Event)
		if n.opts.Relay {
			n.forward(m, l)
		}
	}
}

// Publish publishes locally and into the network.
func (n *Node) Publish(ev Event) error {
	if ev.At.IsZero() {
		ev.At = time.Now().UTC()
	}
	if err := n.bus.Publish(ev); err != nil {
		return err
	}
	seq := atomic.AddUint64(&n.seq, 1)
	m := &message{Type: msgPub, Origin: n.ID(), Seq: seq, Event: &ev}
	n.seen.insert(m.Origin + "#" + fmt.Sprint(seq))
	n.forward(m, nil)
	return nil
}

// forward sends a pub to every link interested in its topic, except the
// one it arrived on.
func (n *Node) forward(m *message, from *link) {
	n.mu.Lock()
	targets := make([]*link, 0, len(n.links))
	for l := range n.links {
		if l == from {
			continue
		}
		if l.relay || matchesLink(l, m.Event.Topic) {
			targets = append(targets, l)
		}
	}
	n.mu.Unlock()
	for _, l := range targets {
		_ = l.send(m) // broken links are reaped by their read loop
	}
}

func matchesLink(l *link, topic string) bool {
	found := false
	l.remote.match(topic, func(int) { found = true })
	return found
}

// Subscribe subscribes the local handler and advertises the pattern to
// every current and future peer so remote publishes reach this node.
func (n *Node) Subscribe(pattern string, h Handler) (*Subscription, error) {
	sub, err := n.bus.Subscribe(pattern, h)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	links := make([]*link, 0, len(n.links))
	for l := range n.links {
		links = append(links, l)
	}
	n.mu.Unlock()
	for _, l := range links {
		_ = l.send(&message{Type: msgSub, Pattern: pattern})
	}
	return sub, nil
}

// advertise sends current local patterns on a fresh link. Called under no
// locks; a race with new Subscribe calls only causes a redundant sub.
func (n *Node) advertise(l *link) {
	n.bus.mu.Lock()
	patterns := make([]string, 0, len(n.bus.subs))
	for _, s := range n.bus.subs {
		patterns = append(patterns, s.pattern)
	}
	n.bus.mu.Unlock()
	for _, p := range patterns {
		_ = l.send(&message{Type: msgSub, Pattern: p})
	}
}

// Peers reports the IDs of currently linked peers.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.links))
	for l := range n.links {
		out = append(out, l.peerID)
	}
	return out
}

// Close tears the node down: listener, links, and local bus.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.stopCh)
	ln := n.ln
	links := make([]*link, 0, len(n.links))
	for l := range n.links {
		links = append(links, l)
	}
	n.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, l := range links {
		l.conn.Close()
	}
	n.wg.Wait()
	n.bus.Close()
}

// ErrNodeClosed reports use of a closed node.
var ErrNodeClosed = errors.New("middleware: node closed")

// seenCache is a fixed-size set of recently seen event IDs with FIFO
// eviction, used for flood duplicate suppression.
type seenCache struct {
	mu    sync.Mutex
	set   map[string]struct{}
	ring  []string
	next  int
	limit int
}

func newSeenCache(limit int) *seenCache {
	return &seenCache{
		set:   make(map[string]struct{}, limit),
		ring:  make([]string, limit),
		limit: limit,
	}
}

// insert adds id and reports true when it was not already present.
func (c *seenCache) insert(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.set[id]; ok {
		return false
	}
	if old := c.ring[c.next]; old != "" {
		delete(c.set, old)
	}
	c.ring[c.next] = id
	c.next = (c.next + 1) % c.limit
	c.set[id] = struct{}{}
	return true
}
