package middleware

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestValidatePattern(t *testing.T) {
	good := []string{"a", "a/b/c", "+", "#", "a/+/c", "a/b/#", "+/+/#"}
	for _, p := range good {
		if err := ValidatePattern(p); err != nil {
			t.Errorf("ValidatePattern(%q) = %v, want nil", p, err)
		}
	}
	bad := []string{"", "/", "a//b", "a/", "/a", "a/#/b", "#/a"}
	for _, p := range bad {
		if err := ValidatePattern(p); err == nil {
			t.Errorf("ValidatePattern(%q) accepted", p)
		}
	}
}

func TestValidateTopic(t *testing.T) {
	if err := ValidateTopic("district/turin/building/b01"); err != nil {
		t.Errorf("concrete topic rejected: %v", err)
	}
	for _, bad := range []string{"", "a//b", "a/+", "a/#", "+"} {
		if err := ValidateTopic(bad); err == nil {
			t.Errorf("ValidateTopic(%q) accepted", bad)
		}
	}
}

func TestMatch(t *testing.T) {
	cases := []struct {
		pattern, topic string
		want           bool
	}{
		{"a/b/c", "a/b/c", true},
		{"a/b/c", "a/b", false},
		{"a/b", "a/b/c", false},
		{"a/+/c", "a/b/c", true},
		{"a/+/c", "a/b/d", false},
		{"+/+/+", "a/b/c", true},
		{"+", "a", true},
		{"+", "a/b", false},
		{"#", "a", true},
		{"#", "a/b/c/d", true},
		{"a/#", "a", true}, // '#' matches the empty suffix too (MQTT semantics)
		{"a/#", "a/b", true},
		{"a/#", "a/b/c", true},
		{"a/b/#", "a/b/c/d/e", true},
		{"a/b/#", "a/c", false},
		{"district/+/building/+/device/+/temperature", "district/turin/building/b01/device/t1/temperature", true},
	}
	for _, tc := range cases {
		if got := Match(tc.pattern, tc.topic); got != tc.want {
			t.Errorf("Match(%q, %q) = %v, want %v", tc.pattern, tc.topic, got, tc.want)
		}
	}
}

// randomTopic builds a concrete topic with depth in [1,5] from a tiny
// alphabet so collisions with patterns are frequent.
func randomTopic(rng *rand.Rand) string {
	depth := rng.Intn(5) + 1
	segs := make([]string, depth)
	for i := range segs {
		segs[i] = string(rune('a' + rng.Intn(4)))
	}
	return strings.Join(segs, "/")
}

// randomPattern derives a pattern by mutating topic segments to wildcards.
func randomPattern(rng *rand.Rand) string {
	topic := randomTopic(rng)
	segs := strings.Split(topic, "/")
	for i := range segs {
		switch rng.Intn(4) {
		case 0:
			segs[i] = WildcardOne
		case 1:
			if i == len(segs)-1 {
				segs[i] = WildcardRest
			}
		}
	}
	return strings.Join(segs, "/")
}

// Property: the trie matcher agrees with the reference Match predicate on
// random pattern sets and topics.
func TestTrieMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trie := newTrieMatcher()
		patterns := make(map[int]string)
		for i := 0; i < 32; i++ {
			p := randomPattern(rng)
			patterns[i] = p
			trie.add(p, i)
		}
		for trial := 0; trial < 16; trial++ {
			topic := randomTopic(rng)
			got := make(map[int]bool)
			trie.match(topic, func(id int) { got[id] = true })
			for id, p := range patterns {
				if Match(p, topic) != got[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTrieAddRemove(t *testing.T) {
	trie := newTrieMatcher()
	trie.add("a/+/c", 1)
	trie.add("a/#", 2)
	trie.add("a/b/c", 3)
	if trie.len() != 3 {
		t.Fatalf("len = %d, want 3", trie.len())
	}
	ids := func(topic string) map[int]bool {
		got := map[int]bool{}
		trie.match(topic, func(id int) { got[id] = true })
		return got
	}
	if got := ids("a/b/c"); !got[1] || !got[2] || !got[3] {
		t.Fatalf("match a/b/c = %v", got)
	}
	trie.remove("a/#", 2)
	trie.remove("a/#", 2) // idempotent
	if trie.len() != 2 {
		t.Fatalf("len after remove = %d, want 2", trie.len())
	}
	if got := ids("a/b/c"); got[2] {
		t.Fatal("removed pattern still matches")
	}
	trie.remove("never/added", 9) // no-op on unknown branch
}

func TestLinearMatcherAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lin := newLinearMatcher()
	trie := newTrieMatcher()
	for i := 0; i < 64; i++ {
		p := randomPattern(rng)
		lin.add(p, i)
		trie.add(p, i)
	}
	if lin.len() != 64 {
		t.Fatalf("linear len = %d", lin.len())
	}
	for trial := 0; trial < 200; trial++ {
		topic := randomTopic(rng)
		a, b := map[int]bool{}, map[int]bool{}
		lin.match(topic, func(id int) { a[id] = true })
		trie.match(topic, func(id int) { b[id] = true })
		if fmt.Sprint(a) != fmt.Sprint(b) && len(a) != len(b) {
			t.Fatalf("matchers disagree on %q: linear %v trie %v", topic, a, b)
		}
		for id := range a {
			if !b[id] {
				t.Fatalf("trie missed id %d on %q", id, topic)
			}
		}
	}
}
