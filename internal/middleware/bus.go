package middleware

import (
	"errors"
	"sync"
	"time"
)

// Event is one published message.
type Event struct {
	// Topic is the concrete hierarchical topic the event was published on.
	Topic string `json:"topic"`
	// Payload is an opaque body; proxies put common-format documents here.
	Payload []byte `json:"payload"`
	// Headers carries small metadata (content type, source URI, ...).
	Headers map[string]string `json:"headers,omitempty"`
	// At is the publication timestamp, UTC.
	At time.Time `json:"at"`
}

// Handler consumes events delivered to a subscription.
type Handler func(Event)

// ErrBusClosed reports use of a closed bus.
var ErrBusClosed = errors.New("middleware: bus closed")

// MatcherKind selects the subscription index implementation.
type MatcherKind int

// Matcher kinds. TrieMatcher is the production index; LinearMatcher is a
// deliberately naive baseline used by the E2 ablation benchmark.
const (
	TrieMatcher MatcherKind = iota
	LinearMatcher
)

// BusOptions configure a Bus.
type BusOptions struct {
	// Matcher selects the subscription index (default TrieMatcher).
	Matcher MatcherKind
	// QueueLen is the per-subscription delivery queue length; events are
	// dropped (counted in Stats) once a subscriber's queue is full.
	// Zero means the default (256). Negative means synchronous delivery
	// on the publisher's goroutine.
	QueueLen int
}

// Bus is the in-process event bus embedded in every proxy. Delivery is
// per-subscription FIFO, asynchronous by default, at-most-once: slow
// subscribers lose events rather than stalling publishers — the behaviour
// a sensor-data middleware wants.
type Bus struct {
	opts BusOptions

	idx    *lockedMatcher
	mu     sync.Mutex
	subs   map[int]*subscription
	nextID int
	closed bool

	stats struct {
		sync.Mutex
		published uint64
		delivered uint64
		dropped   uint64
	}
}

type subscription struct {
	id      int
	pattern string
	handler Handler
	queue   chan Event
	done    chan struct{}
	sync    bool
}

// Subscription is the caller's handle on an active subscription.
type Subscription struct {
	bus *Bus
	id  int
	// Pattern is the subscribed pattern.
	Pattern string
}

// NewBus creates a Bus.
func NewBus(opts BusOptions) *Bus {
	var m matcher
	switch opts.Matcher {
	case LinearMatcher:
		m = newLinearMatcher()
	default:
		m = newTrieMatcher()
	}
	if opts.QueueLen == 0 {
		opts.QueueLen = 256
	}
	return &Bus{
		opts: opts,
		idx:  &lockedMatcher{m: m},
		subs: make(map[int]*subscription),
	}
}

// Subscribe registers a handler for a pattern. The handler runs on a
// dedicated goroutine per subscription (or synchronously on the
// publisher's goroutine when QueueLen < 0).
func (b *Bus) Subscribe(pattern string, h Handler) (*Subscription, error) {
	if err := ValidatePattern(pattern); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrBusClosed
	}
	id := b.nextID
	b.nextID++
	sub := &subscription{id: id, pattern: pattern, handler: h, sync: b.opts.QueueLen < 0}
	if !sub.sync {
		sub.queue = make(chan Event, b.opts.QueueLen)
		sub.done = make(chan struct{})
		go sub.run(b)
	}
	b.subs[id] = sub
	b.idx.add(pattern, id)
	return &Subscription{bus: b, id: id, Pattern: pattern}, nil
}

func (s *subscription) run(b *Bus) {
	for ev := range s.queue {
		s.handler(ev)
		b.stats.Lock()
		b.stats.delivered++
		b.stats.Unlock()
	}
	close(s.done)
}

// Unsubscribe removes the subscription and waits for its delivery
// goroutine to drain.
func (s *Subscription) Unsubscribe() {
	b := s.bus
	b.mu.Lock()
	sub, ok := b.subs[s.id]
	if ok {
		delete(b.subs, s.id)
		b.idx.remove(sub.pattern, s.id)
	}
	b.mu.Unlock()
	if ok && !sub.sync {
		close(sub.queue)
		<-sub.done
	}
}

// Publish delivers the event to every matching subscription. The topic
// must be concrete (no wildcards).
func (b *Bus) Publish(ev Event) error {
	if err := ValidateTopic(ev.Topic); err != nil {
		return err
	}
	if ev.At.IsZero() {
		ev.At = time.Now().UTC()
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrBusClosed
	}
	var targets []*subscription
	b.idx.match(ev.Topic, func(id int) {
		if sub, ok := b.subs[id]; ok {
			targets = append(targets, sub)
		}
	})
	b.mu.Unlock()

	b.stats.Lock()
	b.stats.published++
	b.stats.Unlock()

	for _, sub := range targets {
		if sub.sync {
			sub.handler(ev)
			b.stats.Lock()
			b.stats.delivered++
			b.stats.Unlock()
			continue
		}
		select {
		case sub.queue <- ev:
		default:
			b.stats.Lock()
			b.stats.dropped++
			b.stats.Unlock()
		}
	}
	return nil
}

// BusStats are cumulative bus counters.
type BusStats struct {
	Published     uint64
	Delivered     uint64
	Dropped       uint64
	Subscriptions int
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	n := len(b.subs)
	b.mu.Unlock()
	b.stats.Lock()
	defer b.stats.Unlock()
	return BusStats{
		Published:     b.stats.published,
		Delivered:     b.stats.delivered,
		Dropped:       b.stats.dropped,
		Subscriptions: n,
	}
}

// Close shuts the bus down, draining all subscription goroutines.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*subscription, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[int]*subscription)
	b.mu.Unlock()
	for _, s := range subs {
		if !s.sync {
			close(s.queue)
			<-s.done
		}
	}
}
