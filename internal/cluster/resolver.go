package cluster

import (
	"context"
	"sync"
	"time"

	"repro/internal/api"
)

// DefaultRefresh is how long a resolver trusts a cached map before
// re-fetching on the next Get. Handoffs are rare and rejected writes
// force an immediate refresh, so the TTL only bounds how long a purely
// read-side consumer can lag a flip.
const DefaultRefresh = 2 * time.Second

// Resolver caches the master-published shard map for a router or
// storage node. Get serves from cache inside the TTL; Refresh and
// EnsureEpoch force a fetch — the paths a stale-epoch rejection takes
// so a retry resolves against the flipped map, not the cached one.
type Resolver struct {
	master string
	t      *api.Transport
	ttl    time.Duration

	mu      sync.Mutex
	cur     *Map
	fetched time.Time
}

// NewResolver builds a resolver against a master base URL. transport
// may be nil (a default api.Transport is used); ttl <= 0 means
// DefaultRefresh.
func NewResolver(masterURL string, transport *api.Transport, ttl time.Duration) *Resolver {
	if transport == nil {
		transport = &api.Transport{}
	}
	if ttl <= 0 {
		ttl = DefaultRefresh
	}
	return &Resolver{master: masterURL, t: transport, ttl: ttl}
}

// Cached returns the cached map without fetching, and whether one
// exists. Hot paths (per-row ownership checks) use this — they must not
// block on the network.
func (r *Resolver) Cached() (Map, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		return Map{}, false
	}
	return r.cur.Clone(), true
}

// CachedEpoch returns the cached map's epoch (0 when none) — the value
// the map-epoch gauge exports.
func (r *Resolver) CachedEpoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		return 0
	}
	return r.cur.Epoch
}

// Get returns the map, fetching from the master when the cache is empty
// or older than the TTL.
func (r *Resolver) Get(ctx context.Context) (Map, error) {
	r.mu.Lock()
	if r.cur != nil && time.Since(r.fetched) < r.ttl {
		m := r.cur.Clone()
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()
	return r.Refresh(ctx)
}

// Refresh fetches the map from the master unconditionally, replacing
// the cache on success — but never with an older epoch (a lagging
// response must not roll the cache back across a flip).
func (r *Resolver) Refresh(ctx context.Context) (Map, error) {
	var m Map
	if err := r.t.GetJSON(ctx, api.URL(r.master, "/cluster/map"), &m); err != nil {
		return Map{}, err
	}
	if err := m.Validate(); err != nil {
		return Map{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil || m.Epoch >= r.cur.Epoch {
		cp := m.Clone()
		r.cur = &cp
		r.fetched = time.Now()
	}
	return r.cur.Clone(), nil
}

// EnsureEpoch returns a map at least as new as epoch, refreshing once
// if the cache lags. A request stamped with a newer epoch than the
// cache proves a newer map exists — this is how nodes catch up without
// polling.
func (r *Resolver) EnsureEpoch(ctx context.Context, epoch uint64) (Map, error) {
	r.mu.Lock()
	if r.cur != nil && r.cur.Epoch >= epoch {
		m := r.cur.Clone()
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()
	return r.Refresh(ctx)
}
