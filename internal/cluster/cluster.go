// Package cluster is the multi-host layer of the measurements plane: a
// versioned shard map (shard index → owning measuredb node) published
// by the master at /v1/cluster/map, a TTL-cached Resolver every router
// and storage node shares, and the epoch bookkeeping that makes live
// shard handoff safe. Placement is the same device-hash the Sharded
// engine uses (tsdb.ShardOf), so a row's cluster owner and its on-disk
// shard directory always agree — moving shard k between nodes moves
// exactly the directory shard-000k.
//
// Epochs order map versions: every map change increments the epoch,
// writers stamp requests with the epoch they resolved against
// (EpochHeader), and a node that sees a stale epoch rejects the write
// with a retryable envelope instead of accepting rows it may no longer
// own. Cursors returned by the coordinator embed the epoch the page was
// cut under, which keeps pagination honest across a handoff.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/tsdb"
)

// EpochHeader carries the map epoch a client resolved against. A node
// compares it with its own cached epoch: a request stamped with an
// older epoch is rejected (CodeStaleEpoch) so the client re-resolves; a
// newer one makes the node refresh its cache before deciding.
const EpochHeader = "X-Cluster-Epoch"

// Error codes a cluster-aware node returns inside the standard 503
// envelope. All three are retryable-after-re-resolve: the coordinator
// (or any client) refreshes its map and retries against the new owner.
const (
	// CodeStaleEpoch: the request was routed with an older map than the
	// node holds — ownership may have moved.
	CodeStaleEpoch = "stale_epoch"
	// CodeShardMoving: the addressed shard is frozen mid-handoff on
	// this node; retry after the flip lands on the new owner.
	CodeShardMoving = "shard_moving"
	// CodeNotOwner: the node's cached map says another node owns the
	// addressed shard.
	CodeNotOwner = "not_owner"
)

// Map is one version of the cluster's shard placement: Owners[i] is the
// base URL of the measuredb node owning shard i. The shard count is the
// engine shard count — every node runs the full N-shard engine (unowned
// shards just stay empty), so a handed-off shard directory lands at the
// same index on any node.
type Map struct {
	Epoch  uint64   `json:"epoch"`
	Shards int      `json:"shards"`
	Owners []string `json:"owners"`
}

// Validate checks structural sanity: a positive shard count, one owner
// address per shard, no empty addresses.
func (m *Map) Validate() error {
	if m.Shards <= 0 {
		return errors.New("cluster: map needs a positive shard count")
	}
	if len(m.Owners) != m.Shards {
		return fmt.Errorf("cluster: map has %d owners for %d shards", len(m.Owners), m.Shards)
	}
	for i, o := range m.Owners {
		if o == "" {
			return fmt.Errorf("cluster: shard %d has no owner", i)
		}
	}
	return nil
}

// ShardFor reports which shard owns a device's series under this map —
// the engine's own placement function, so routing and storage agree.
func (m *Map) ShardFor(device string) int { return tsdb.ShardOf(device, m.Shards) }

// Owner returns the base URL owning a shard ("" when out of range).
func (m *Map) Owner(shard int) string {
	if shard < 0 || shard >= len(m.Owners) {
		return ""
	}
	return m.Owners[shard]
}

// OwnerOf returns the base URL owning a device's shard.
func (m *Map) OwnerOf(device string) string { return m.Owner(m.ShardFor(device)) }

// Nodes returns the distinct owner addresses, sorted.
func (m *Map) Nodes() []string {
	seen := make(map[string]bool, len(m.Owners))
	var out []string
	for _, o := range m.Owners {
		if o != "" && !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	sort.Strings(out)
	return out
}

// ShardsOf lists the shards a node owns under this map.
func (m *Map) ShardsOf(node string) []int {
	var out []int
	for i, o := range m.Owners {
		if o == node {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a deep copy (maps travel between goroutines by value;
// Owners is the only shared backing array).
func (m *Map) Clone() Map {
	cp := *m
	cp.Owners = append([]string(nil), m.Owners...)
	return cp
}
