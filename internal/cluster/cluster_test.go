package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/tsdb"
)

func TestMapPlacementMatchesEngine(t *testing.T) {
	m := Map{Epoch: 1, Shards: 8, Owners: make([]string, 8)}
	for i := range m.Owners {
		m.Owners[i] = "http://node-a"
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, dev := range []string{"urn:district:turin/building:b001/device:d1", "d2", ""} {
		if got, want := m.ShardFor(dev), tsdb.ShardOf(dev, 8); got != want {
			t.Fatalf("ShardFor(%q) = %d, engine places it in %d", dev, got, want)
		}
	}
}

func TestMapValidate(t *testing.T) {
	bad := []Map{
		{Shards: 0},
		{Shards: 2, Owners: []string{"a"}},
		{Shards: 2, Owners: []string{"a", ""}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted %+v", i, m)
		}
	}
}

func TestMapNodesAndShardsOf(t *testing.T) {
	m := Map{Shards: 4, Owners: []string{"b", "a", "b", "a"}}
	if got := m.Nodes(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Nodes() = %v", got)
	}
	if got := m.ShardsOf("b"); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("ShardsOf(b) = %v", got)
	}
	if m.Owner(-1) != "" || m.Owner(4) != "" {
		t.Fatal("out-of-range Owner should be empty")
	}
}

func TestRegistryEpochs(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Current(); ok {
		t.Fatal("empty registry published a map")
	}
	if _, err := r.Move(0, "http://a"); err == nil {
		t.Fatal("Move before Set should fail")
	}
	m1, err := r.Set(Map{Epoch: 99, Shards: 2, Owners: []string{"http://a", "http://a"}})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Epoch != 1 {
		t.Fatalf("first Set epoch = %d, want 1 (registry owns the counter)", m1.Epoch)
	}
	m2, err := r.Move(1, "http://b")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Epoch != 2 || m2.Owners[1] != "http://b" {
		t.Fatalf("Move result %+v", m2)
	}
	if _, err := r.Move(5, "http://b"); err == nil {
		t.Fatal("out-of-range Move accepted")
	}
	if _, err := r.Set(Map{Shards: 4, Owners: []string{"a", "a", "a", "a"}}); err == nil {
		t.Fatal("shard-count change accepted")
	}
	// The returned copies must not alias registry state.
	m2.Owners[0] = "mutated"
	cur, _ := r.Current()
	if cur.Owners[0] == "mutated" {
		t.Fatal("Registry leaked its backing array")
	}
}

func TestResolverCachingAndEnsureEpoch(t *testing.T) {
	var fetches int
	cur := Map{Epoch: 1, Shards: 2, Owners: []string{"http://a", "http://a"}}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cluster/map" {
			http.NotFound(w, r)
			return
		}
		fetches++
		json.NewEncoder(w).Encode(cur)
	}))
	defer srv.Close()

	res := NewResolver(srv.URL, nil, time.Hour)
	ctx := context.Background()
	if _, ok := res.Cached(); ok {
		t.Fatal("fresh resolver has a cached map")
	}
	m, err := res.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 1 || fetches != 1 {
		t.Fatalf("epoch=%d fetches=%d", m.Epoch, fetches)
	}
	if _, err := res.Get(ctx); err != nil || fetches != 1 {
		t.Fatalf("Get inside TTL refetched (fetches=%d, err=%v)", fetches, err)
	}
	// A request stamped with a newer epoch forces a refresh.
	cur = Map{Epoch: 2, Shards: 2, Owners: []string{"http://a", "http://b"}}
	m, err = res.EnsureEpoch(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 2 || fetches != 2 {
		t.Fatalf("EnsureEpoch: epoch=%d fetches=%d", m.Epoch, fetches)
	}
	// ...but an epoch the cache already covers is served locally.
	if _, err := res.EnsureEpoch(ctx, 1); err != nil || fetches != 2 {
		t.Fatalf("EnsureEpoch(1) refetched (fetches=%d)", fetches)
	}
	if got := res.CachedEpoch(); got != 2 {
		t.Fatalf("CachedEpoch = %d", got)
	}
}
