package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// Registry is the master-side source of truth for the shard map. It
// hands out immutable snapshots and owns the epoch counter: every
// accepted change — a whole-map Set or a single-shard Move — bumps the
// epoch by exactly one, so observers can order map versions without
// clocks.
type Registry struct {
	mu  sync.Mutex
	cur *Map
}

// NewRegistry returns an empty registry (no map published yet — the
// deployment is single-node until a map is Set).
func NewRegistry() *Registry { return &Registry{} }

// Current returns a copy of the published map, and whether one exists.
func (r *Registry) Current() (Map, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		return Map{}, false
	}
	return r.cur.Clone(), true
}

// Set publishes a whole map. The caller provides placement (Shards,
// Owners); the registry owns the epoch — whatever the caller sent is
// replaced with last+1. Once a map exists its shard count is pinned:
// rows are placed by device-hash % shards, so changing the count would
// re-home every series.
func (r *Registry) Set(m Map) (Map, error) {
	if err := m.Validate(); err != nil {
		return Map{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m = m.Clone()
	if r.cur != nil {
		if m.Shards != r.cur.Shards {
			return Map{}, fmt.Errorf("cluster: shard count is pinned at %d (got %d)", r.cur.Shards, m.Shards)
		}
		m.Epoch = r.cur.Epoch + 1
	} else {
		m.Epoch = 1
	}
	r.cur = &m
	return m.Clone(), nil
}

// Move reassigns one shard to a node and bumps the epoch — the flip
// step of a handoff, called only after the shard's data is in place on
// the target.
func (r *Registry) Move(shard int, node string) (Map, error) {
	if node == "" {
		return Map{}, errors.New("cluster: move needs a target node")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		return Map{}, errors.New("cluster: no map published")
	}
	if shard < 0 || shard >= r.cur.Shards {
		return Map{}, fmt.Errorf("cluster: shard %d out of range [0,%d)", shard, r.cur.Shards)
	}
	next := r.cur.Clone()
	next.Owners[shard] = node
	next.Epoch++
	r.cur = &next
	return next.Clone(), nil
}
