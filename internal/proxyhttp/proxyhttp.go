// Package proxyhttp carries the web-service plumbing every proxy shares:
// serving common-format documents with JSON/XML content negotiation,
// registering with the master node, and keeping the registration fresh
// with heartbeats. Device-proxies and Database-proxies differ in what
// they serve, not in how they join the infrastructure; that common "how"
// lives here.
//
// The HTTP mechanics (negotiation, envelopes, retrying transport) are
// delegated to the unified service-API layer in internal/api; the
// helpers kept here are thin compatibility wrappers plus the Registrar.
package proxyhttp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/dataformat"
	"repro/internal/registry"
)

// NegotiateEncoding picks the response encoding from an Accept header,
// with full media-type and q-value parsing (api.NegotiateEncoding).
func NegotiateEncoding(r *http.Request) dataformat.Encoding {
	return api.NegotiateEncoding(r)
}

// WriteDoc writes a common-format document honouring content negotiation.
func WriteDoc(w http.ResponseWriter, r *http.Request, doc *dataformat.Document) {
	api.WriteDoc(w, r, doc)
}

// Error writes the uniform JSON error envelope with the given status.
func Error(w http.ResponseWriter, status int, err error) {
	api.WriteErrorStatus(w, nil, status, err)
}

// ReadDoc decodes a request body as a common-format document, sniffing
// the encoding from the Content-Type (or the payload itself).
func ReadDoc(r *http.Request) (*dataformat.Document, error) {
	return api.ReadDoc(r)
}

// Server wraps an http.Server bound to an ephemeral or fixed port.
type Server struct {
	mu  sync.Mutex
	srv *http.Server
	ln  net.Listener
	wg  sync.WaitGroup
}

// Serve starts handler on addr and returns the bound address.
func (s *Server) Serve(addr string, handler http.Handler) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	s.srv = srv
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server.
func (s *Server) Close() {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	s.wg.Wait()
}

// Registrar keeps one proxy registered with the master node. All master
// interactions ride the shared retrying transport, so a briefly
// unreachable master is absorbed by backoff instead of surfacing
// immediately.
type Registrar struct {
	// MasterURL is the master node's base URL.
	MasterURL string
	// Registration is this proxy's record; LastSeen is managed remotely.
	Registration registry.Registration
	// HeartbeatEvery is the keepalive period. Zero means 30 seconds.
	HeartbeatEvery time.Duration
	// Client is the HTTP client; nil uses the shared pooled client.
	Client *http.Client

	cancel context.CancelFunc
	done   chan struct{}
}

// ErrRegistration reports a failed master interaction.
var ErrRegistration = errors.New("proxyhttp: registration failed")

func (g *Registrar) transport() *api.Transport {
	return &api.Transport{Client: g.Client}
}

func (g *Registrar) masterURL(pathAndQuery string) string {
	return api.URL(g.MasterURL, pathAndQuery)
}

// Register performs one registration round trip.
func (g *Registrar) Register() error {
	return g.RegisterContext(context.Background())
}

// RegisterContext performs one registration round trip under ctx.
func (g *Registrar) RegisterContext(ctx context.Context) error {
	if err := g.transport().PostJSON(ctx, g.masterURL("/register"), g.Registration, nil); err != nil {
		return fmt.Errorf("%w: %v", ErrRegistration, err)
	}
	return nil
}

// Start registers and then heartbeats until Stop.
func (g *Registrar) Start() error {
	if err := g.Register(); err != nil {
		return err
	}
	every := g.HeartbeatEvery
	if every <= 0 {
		every = 30 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	g.cancel = cancel
	g.done = make(chan struct{})
	go func() {
		defer close(g.done)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := g.heartbeat(ctx); err != nil && ctx.Err() == nil {
					// A master restart forgets registrations; re-register.
					_ = g.RegisterContext(ctx)
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return nil
}

func (g *Registrar) heartbeat(ctx context.Context) error {
	url := g.masterURL("/heartbeat?id=" + g.Registration.ID)
	if err := g.transport().PostJSON(ctx, url, nil, nil); err != nil {
		return fmt.Errorf("%w: %v", ErrRegistration, err)
	}
	return nil
}

// Stop ends the heartbeat loop and deregisters from the master.
func (g *Registrar) Stop() {
	if g.cancel != nil {
		g.cancel()
		<-g.done
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Deregistration is best effort: a dead master forgets us anyway.
	tr := &api.Transport{Client: g.Client, MaxAttempts: 1}
	_ = tr.Delete(ctx, g.masterURL("/register?id="+g.Registration.ID))
}

// GetDoc fetches and decodes a common-format document. Deprecated shim:
// new code should use api.Transport.GetDoc with a real context.
func GetDoc(client *http.Client, url string, enc dataformat.Encoding) (*dataformat.Document, error) {
	tr := &api.Transport{Client: client}
	return tr.GetDoc(context.Background(), url, enc)
}

// PostDoc sends a common-format document and decodes the reply document
// (nil when the response has no body). Deprecated shim: new code should
// use api.Transport.PostDoc with a real context.
func PostDoc(client *http.Client, url string, doc *dataformat.Document, enc dataformat.Encoding) (*dataformat.Document, error) {
	tr := &api.Transport{Client: client}
	return tr.PostDoc(context.Background(), url, doc, enc)
}
