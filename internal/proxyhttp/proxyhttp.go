// Package proxyhttp carries the web-service plumbing every proxy shares:
// serving common-format documents with JSON/XML content negotiation,
// registering with the master node, and keeping the registration fresh
// with heartbeats. Device-proxies and Database-proxies differ in what
// they serve, not in how they join the infrastructure; that common "how"
// lives here.
package proxyhttp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/dataformat"
	"repro/internal/registry"
)

// NegotiateEncoding picks the response encoding from an Accept header.
func NegotiateEncoding(r *http.Request) dataformat.Encoding {
	if strings.Contains(r.Header.Get("Accept"), "xml") {
		return dataformat.XML
	}
	return dataformat.JSON
}

// WriteDoc writes a common-format document honouring content negotiation.
func WriteDoc(w http.ResponseWriter, r *http.Request, doc *dataformat.Document) {
	enc := NegotiateEncoding(r)
	body, err := doc.Encode(enc)
	if err != nil {
		Error(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", enc.ContentType())
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// Error writes a JSON error body with the given status.
func Error(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// ReadDoc decodes a request body as a common-format document, sniffing
// the encoding from the Content-Type (or the payload itself).
func ReadDoc(r *http.Request) (*dataformat.Document, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	enc := dataformat.ParseEncoding(r.Header.Get("Content-Type"))
	if r.Header.Get("Content-Type") == "" {
		enc = dataformat.Sniff(body)
	}
	return dataformat.Decode(body, enc)
}

// Server wraps an http.Server bound to an ephemeral or fixed port.
type Server struct {
	mu  sync.Mutex
	srv *http.Server
	ln  net.Listener
	wg  sync.WaitGroup
}

// Serve starts handler on addr and returns the bound address.
func (s *Server) Serve(addr string, handler http.Handler) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	s.srv = srv
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server.
func (s *Server) Close() {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	s.wg.Wait()
}

// Registrar keeps one proxy registered with the master node.
type Registrar struct {
	// MasterURL is the master node's base URL.
	MasterURL string
	// Registration is this proxy's record; LastSeen is managed remotely.
	Registration registry.Registration
	// HeartbeatEvery is the keepalive period. Zero means 30 seconds.
	HeartbeatEvery time.Duration
	// Client is the HTTP client; nil uses a 5-second-timeout default.
	Client *http.Client

	cancel context.CancelFunc
	done   chan struct{}
}

// ErrRegistration reports a failed master interaction.
var ErrRegistration = errors.New("proxyhttp: registration failed")

func (g *Registrar) client() *http.Client {
	if g.Client != nil {
		return g.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// Register performs one registration round trip.
func (g *Registrar) Register() error {
	body, err := json.Marshal(g.Registration)
	if err != nil {
		return err
	}
	rsp, err := g.client().Post(strings.TrimSuffix(g.MasterURL, "/")+"/register", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRegistration, err)
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: master returned %d", ErrRegistration, rsp.StatusCode)
	}
	return nil
}

// Start registers and then heartbeats until Stop.
func (g *Registrar) Start() error {
	if err := g.Register(); err != nil {
		return err
	}
	every := g.HeartbeatEvery
	if every <= 0 {
		every = 30 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	g.cancel = cancel
	g.done = make(chan struct{})
	go func() {
		defer close(g.done)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := g.heartbeat(); err != nil {
					// A master restart forgets registrations; re-register.
					_ = g.Register()
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return nil
}

func (g *Registrar) heartbeat() error {
	url := fmt.Sprintf("%s/heartbeat?id=%s", strings.TrimSuffix(g.MasterURL, "/"), g.Registration.ID)
	rsp, err := g.client().Post(url, "", nil)
	if err != nil {
		return err
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: heartbeat returned %d", ErrRegistration, rsp.StatusCode)
	}
	return nil
}

// Stop ends the heartbeat loop and deregisters from the master.
func (g *Registrar) Stop() {
	if g.cancel != nil {
		g.cancel()
		<-g.done
	}
	url := fmt.Sprintf("%s/register?id=%s", strings.TrimSuffix(g.MasterURL, "/"), g.Registration.ID)
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return
	}
	if rsp, err := g.client().Do(req); err == nil {
		rsp.Body.Close()
	}
}

// GetDoc fetches and decodes a common-format document.
func GetDoc(client *http.Client, url string, enc dataformat.Encoding) (*dataformat.Document, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", enc.ContentType())
	rsp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("proxyhttp: GET %s returned %d", url, rsp.StatusCode)
	}
	return dataformat.DecodeFrom(rsp.Body, dataformat.ParseEncoding(rsp.Header.Get("Content-Type")))
}

// PostDoc sends a common-format document and decodes the reply document
// (nil when the response has no body).
func PostDoc(client *http.Client, url string, doc *dataformat.Document, enc dataformat.Encoding) (*dataformat.Document, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	body, err := doc.Encode(enc)
	if err != nil {
		return nil, err
	}
	rsp, err := client.Post(url, enc.ContentType(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("proxyhttp: POST %s returned %d", url, rsp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(rsp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if len(bytes.TrimSpace(raw)) == 0 {
		return nil, nil
	}
	return dataformat.Decode(raw, dataformat.ParseEncoding(rsp.Header.Get("Content-Type")))
}
