package proxyhttp

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataformat"
	"repro/internal/registry"
)

func sampleDoc() *dataformat.Document {
	return dataformat.NewMeasurementDoc(dataformat.Measurement{
		Device: "urn:d", Quantity: dataformat.Temperature, Unit: dataformat.Celsius,
		Value: 21, Timestamp: time.Date(2015, 3, 9, 10, 0, 0, 0, time.UTC),
	})
}

func TestNegotiateEncoding(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	if NegotiateEncoding(r) != dataformat.JSON {
		t.Error("default not JSON")
	}
	r.Header.Set("Accept", "application/xml")
	if NegotiateEncoding(r) != dataformat.XML {
		t.Error("xml accept ignored")
	}
}

func TestWriteDocBothEncodings(t *testing.T) {
	for _, accept := range []string{"application/json", "application/xml"} {
		rec := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodGet, "/", nil)
		r.Header.Set("Accept", accept)
		WriteDoc(rec, r, sampleDoc())
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", accept, rec.Code)
		}
		if got := rec.Header().Get("Content-Type"); got != accept {
			t.Errorf("%s: content type %q", accept, got)
		}
		if _, err := dataformat.Decode(rec.Body.Bytes(), dataformat.ParseEncoding(accept)); err != nil {
			t.Errorf("%s: undecodable body: %v", accept, err)
		}
	}
}

func TestErrorHelper(t *testing.T) {
	rec := httptest.NewRecorder()
	Error(rec, http.StatusTeapot, http.ErrBodyNotAllowed)
	if rec.Code != http.StatusTeapot {
		t.Errorf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestReadDocSniffsEncoding(t *testing.T) {
	body, _ := sampleDoc().Encode(dataformat.XML)
	r := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(string(body)))
	// No Content-Type: must sniff XML from the payload.
	doc, err := ReadDoc(r)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Measurement == nil || doc.Measurement.Value != 21 {
		t.Errorf("doc = %+v", doc)
	}
}

func TestReadDocHonoursContentType(t *testing.T) {
	body, _ := sampleDoc().Encode(dataformat.JSON)
	r := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(string(body)))
	r.Header.Set("Content-Type", "application/json")
	if _, err := ReadDoc(r); err != nil {
		t.Fatal(err)
	}
}

func TestGetDocErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer ts.Close()
	if _, err := GetDoc(nil, ts.URL, dataformat.JSON); err == nil {
		t.Error("404 accepted")
	}
	if _, err := GetDoc(nil, "http://127.0.0.1:1/", dataformat.JSON); err == nil {
		t.Error("dead server accepted")
	}
}

func TestPostDocRoundTrip(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		doc, err := ReadDoc(r)
		if err != nil {
			Error(w, http.StatusBadRequest, err)
			return
		}
		WriteDoc(w, r, doc) // echo
	}))
	defer ts.Close()
	got, err := PostDoc(nil, ts.URL, sampleDoc(), dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if got.Measurement == nil || got.Measurement.Value != 21 {
		t.Errorf("echo = %+v", got)
	}
}

func TestPostDocEmptyReply(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	got, err := PostDoc(nil, ts.URL, sampleDoc(), dataformat.JSON)
	if err != nil || got != nil {
		t.Errorf("empty reply: %v %v", got, err)
	}
}

func TestServerServeAndClose(t *testing.T) {
	var srv Server
	if srv.Addr() != "" {
		t.Error("Addr before Serve")
	}
	addr, err := srv.Serve("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() != addr {
		t.Errorf("Addr = %q, want %q", srv.Addr(), addr)
	}
	rsp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	srv.Close()
	if _, err := http.Get("http://" + addr + "/"); err == nil {
		t.Error("server alive after Close")
	}
}

// fakeMaster implements just enough of the master's registration API.
func fakeMaster(t *testing.T, failHeartbeat *atomic.Bool) (*httptest.Server, *int32) {
	t.Helper()
	var registered int32
	mux := http.NewServeMux()
	register := func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			atomic.AddInt32(&registered, 1)
			w.WriteHeader(http.StatusOK)
		case http.MethodDelete:
			atomic.AddInt32(&registered, -1)
			w.WriteHeader(http.StatusOK)
		}
	}
	heartbeat := func(w http.ResponseWriter, r *http.Request) {
		if failHeartbeat != nil && failHeartbeat.Load() {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	}
	// The registrar speaks the versioned API; the bare paths stay
	// registered to mirror the real master's legacy aliases.
	mux.HandleFunc("/register", register)
	mux.HandleFunc("/v1/register", register)
	mux.HandleFunc("/heartbeat", heartbeat)
	mux.HandleFunc("/v1/heartbeat", heartbeat)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &registered
}

func TestRegistrarLifecycle(t *testing.T) {
	ts, registered := fakeMaster(t, nil)
	reg := &Registrar{
		MasterURL: ts.URL + "/", // trailing slash must be tolerated
		Registration: registry.Registration{
			ID: "p", Kind: registry.KindBIM, BaseURL: "http://x/", EntityURI: "urn:e",
		},
		HeartbeatEvery: 5 * time.Millisecond,
	}
	if err := reg.Start(); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(registered) != 1 {
		t.Fatal("not registered")
	}
	time.Sleep(30 * time.Millisecond)
	reg.Stop()
	if got := atomic.LoadInt32(registered); got != 0 {
		t.Fatalf("after Stop registered = %d", got)
	}
}

func TestRegistrarReRegistersOnHeartbeatFailure(t *testing.T) {
	var fail atomic.Bool
	ts, registered := fakeMaster(t, &fail)
	reg := &Registrar{
		MasterURL: ts.URL,
		Registration: registry.Registration{
			ID: "p", Kind: registry.KindBIM, BaseURL: "http://x/", EntityURI: "urn:e",
		},
		HeartbeatEvery: 5 * time.Millisecond,
	}
	if err := reg.Start(); err != nil {
		t.Fatal(err)
	}
	defer reg.Stop()
	fail.Store(true) // master forgets: heartbeats 404, registrar re-registers
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if atomic.LoadInt32(registered) >= 2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("registrar never re-registered after heartbeat failures")
}

func TestRegistrarStartFailure(t *testing.T) {
	reg := &Registrar{
		MasterURL: "http://127.0.0.1:1",
		Registration: registry.Registration{
			ID: "p", Kind: registry.KindBIM, BaseURL: "http://x/", EntityURI: "urn:e",
		},
	}
	if err := reg.Start(); err == nil {
		t.Fatal("Start against dead master succeeded")
	}
}
