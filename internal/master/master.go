// Package master implements the master node of the infrastructure: "the
// unique entry point of the system" (paper §II). It maintains the
// district ontology, accepts proxy registrations, and answers area
// queries by returning the URIs of the proxies' web services for the
// matching entities — redirecting clients rather than aggregating data,
// which is the core scalability argument of the design.
package master

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/dataformat"
	"repro/internal/middleware"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/registry"
	"repro/internal/stream"
)

func init() {
	// Domain sentinels → HTTP statuses for the unified error envelope.
	api.RegisterStatus(registry.ErrInvalid, http.StatusBadRequest)
	api.RegisterStatus(registry.ErrNotFound, http.StatusNotFound)
}

// Options configure a master node.
type Options struct {
	// LivenessTTL bounds how stale a proxy may be and still be linked
	// into query responses. Zero means 5 minutes.
	LivenessTTL time.Duration
	// SweepEvery is the stale-registration sweep period. Zero disables
	// the background sweeper (sweeps still happen lazily).
	SweepEvery time.Duration
	// Logger receives operational messages; nil silences them.
	Logger *log.Logger
	// DisableLegacyAliases drops the unversioned route aliases; only
	// versioned paths are then served.
	DisableLegacyAliases bool
	// Stream tunes the master's streaming subsystem; setting Hub.Dir
	// re-backs the registry-event replay ring with an on-disk log, so
	// `districtctl watch` resumes survive a master restart.
	Stream stream.Options
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof.
	EnablePprof bool
	// SlowRequest is the span-duration threshold above which requests are
	// logged (0 = 1s; negative disables).
	SlowRequest time.Duration
}

// Master is the ontology + registry service.
type Master struct {
	opts   Options
	ont    *ontology.Ontology
	reg    *registry.Registry
	apiS   *api.Server
	bus    *middleware.Bus
	stream *stream.Service
	// shardMap is the cluster shard-map source of truth ("the unique
	// entry point of the system" also hands out measurement placement).
	shardMap *cluster.Registry

	mu     sync.Mutex
	srv    *http.Server
	ln     net.Listener
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// New creates a master node with an empty ontology.
func New(opts Options) *Master {
	if opts.LivenessTTL <= 0 {
		opts.LivenessTTL = 5 * time.Minute
	}
	m := &Master{
		opts:     opts,
		ont:      ontology.New(),
		reg:      registry.New(),
		bus:      middleware.NewBus(middleware.BusOptions{QueueLen: -1}),
		shardMap: cluster.NewRegistry(),
		stopCh:   make(chan struct{}),
	}
	// Registry lifecycle events stream to remote subscribers (districtctl
	// watch "registry/#", dashboards) through the master's own bus. On
	// the fresh bus this can only fail opening a durable replay ring —
	// an unusable deployment, reported loudly at build time.
	var err error
	if m.stream, err = stream.NewService(m.bus, opts.Stream); err != nil {
		panic("master: stream service: " + err.Error())
	}
	m.apiS = m.buildAPI()
	return m
}

// Bus exposes the master's event bus (registry lifecycle topics).
func (m *Master) Bus() *middleware.Bus { return m.bus }

// Stream exposes the master's streaming service.
func (m *Master) Stream() *stream.Service { return m.stream }

// publishEvent emits one registry lifecycle event on the master's bus.
func (m *Master) publishEvent(topic string, v any) {
	payload, err := json.Marshal(v)
	if err != nil {
		return
	}
	_ = m.bus.Publish(middleware.Event{
		Topic:   topic,
		Payload: payload,
		Headers: map[string]string{"content-type": "application/json"},
	})
}

// Ontology exposes the district forest for programmatic construction
// (the districtsim bootstrap and the tests build districts through it).
func (m *Master) Ontology() *ontology.Ontology { return m.ont }

// Registry exposes the proxy registry.
func (m *Master) Registry() *registry.Registry { return m.reg }

// ClusterMap exposes the shard-map registry (districtsim's bootstrap
// publishes the initial placement through it in-process).
func (m *Master) ClusterMap() *cluster.Registry { return m.shardMap }

// Metrics exposes the per-route API metrics.
func (m *Master) Metrics() *api.Metrics { return m.apiS.Metrics() }

// SetLegacyAliases toggles the unversioned route aliases at runtime.
func (m *Master) SetLegacyAliases(enabled bool) { m.apiS.SetLegacyAliases(enabled) }

// logf logs when a logger is configured.
func (m *Master) logf(format string, args ...any) {
	if m.opts.Logger != nil {
		m.opts.Logger.Printf(format, args...)
	}
}

// apiLogger adapts the optional *log.Logger for the API layer.
func (m *Master) apiLogger() api.Logger {
	if m.opts.Logger == nil {
		return nil
	}
	return m.opts.Logger
}

// buildAPI registers the master's endpoints on the unified API layer.
// Every route is served under /v1/... with the bare path kept as a
// legacy alias:
//
//	POST   /v1/register    body: registry.Registration JSON
//	DELETE /v1/register?id=...
//	POST   /v1/heartbeat?id=...
//	GET    /v1/query?district=...&minLat=&minLon=&maxLat=&maxLon=
//	GET    /v1/devices?entity=<uri>
//	GET    /v1/ontology?uri=<uri>     (Accept: application/json|xml)
//	GET    /v1/districts
//	GET    /v1/proxies
//	GET    /v1/metrics, /v1/healthz
func (m *Master) buildAPI() *api.Server {
	s := api.NewServer(api.Options{
		Service:              "master",
		Logger:               m.apiLogger(),
		DisableLegacyAliases: m.opts.DisableLegacyAliases,
		EnablePprof:          m.opts.EnablePprof,
		SlowRequest:          m.opts.SlowRequest,
	})
	reg := obs.NewRegistry()
	m.stream.RegisterMetrics(reg)
	reg.GaugeFunc("repro_registry_proxies",
		"Proxy registrations currently held by the master.", nil,
		func() float64 { return float64(len(m.reg.List())) })
	s.Metrics().AttachRegistry(reg)

	s.Handle(http.MethodPost, "/register", api.Body(m.register))
	s.Handle(http.MethodDelete, "/register", api.Query(m.deregister))
	s.Handle(http.MethodPost, "/heartbeat", api.Query(m.heartbeat))
	s.Get("/query", m.query)
	s.Get("/devices", m.devices)
	s.Get("/ontology", m.ontologyDoc)
	s.Get("/districts", func(ctx context.Context, q url.Values) (any, error) {
		return m.ont.Districts(), nil
	})
	s.Get("/proxies", func(ctx context.Context, q url.Values) (any, error) {
		return m.reg.List(), nil
	})
	reg.GaugeFunc("repro_cluster_map_epoch",
		"Epoch of the published cluster shard map (0 = single-node, no map).", nil,
		func() float64 {
			cur, ok := m.shardMap.Current()
			if !ok {
				return 0
			}
			return float64(cur.Epoch)
		})
	s.Get("/cluster/map", func(ctx context.Context, q url.Values) (any, error) {
		cur, ok := m.shardMap.Current()
		if !ok {
			return nil, api.NotFound(errors.New("no cluster map published (single-node deployment)"))
		}
		return cur, nil
	})
	s.Handle(http.MethodPost, "/cluster/map", api.Body(m.setClusterMap))
	s.Handle(http.MethodPost, "/cluster/move", api.Body(m.moveShard))
	m.stream.Mount(s)
	return s
}

// setClusterMap publishes a whole shard map (epoch assigned by the
// registry) and announces it on the bus so watchers see the flip.
func (m *Master) setClusterMap(ctx context.Context, in cluster.Map) (cluster.Map, error) {
	out, err := m.shardMap.Set(in)
	if err != nil {
		return cluster.Map{}, api.BadRequest(err)
	}
	m.logf("master: cluster map set: epoch=%d shards=%d nodes=%v", out.Epoch, out.Shards, out.Nodes())
	m.publishEvent("cluster/map", out)
	return out, nil
}

// clusterMove is the body of POST /v1/cluster/move — the flip step of a
// shard handoff, called once the shard's data is in place on the
// target node.
type clusterMove struct {
	Shard int    `json:"shard"`
	Node  string `json:"node"`
}

func (m *Master) moveShard(ctx context.Context, in clusterMove) (cluster.Map, error) {
	out, err := m.shardMap.Move(in.Shard, in.Node)
	if err != nil {
		return cluster.Map{}, api.BadRequest(err)
	}
	m.logf("master: cluster map: shard %d -> %s (epoch %d)", in.Shard, in.Node, out.Epoch)
	m.publishEvent("cluster/map", out)
	return out, nil
}

// Handler returns the master's HTTP API.
func (m *Master) Handler() http.Handler { return m.apiS.Handler() }

// Serve binds the HTTP API to addr and returns the bound address.
func (m *Master) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: m.Handler(), ReadHeaderTimeout: 10 * time.Second}
	m.mu.Lock()
	m.srv = srv
	m.ln = ln
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			m.logf("master: serve: %v", err)
		}
	}()
	if m.opts.SweepEvery > 0 {
		m.wg.Add(1)
		go m.sweepLoop()
	}
	m.logf("master: listening on %s", ln.Addr())
	return ln.Addr().String(), nil
}

func (m *Master) sweepLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.opts.SweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if n := m.reg.Sweep(m.opts.LivenessTTL); n > 0 {
				m.logf("master: swept %d stale proxies", n)
				m.publishEvent("registry/swept", map[string]int{"swept": n})
			}
		case <-m.stopCh:
			return
		}
	}
}

// Close shuts the HTTP server down.
func (m *Master) Close() {
	m.mu.Lock()
	srv := m.srv
	close(m.stopCh)
	m.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	m.wg.Wait()
	if err := m.stream.Close(); err != nil {
		m.logf("master: stream close: %v", err)
	}
	m.bus.Close()
}

// register accepts a proxy registration and links the proxy's URL into
// the ontology node it serves.
func (m *Master) register(ctx context.Context, reg registry.Registration) (map[string]string, error) {
	if err := m.reg.Register(reg); err != nil {
		return nil, err
	}
	// Link the proxy into the ontology when the entity exists. A
	// registration for a not-yet-modelled entity is kept in the
	// registry only; the ontology stays authoritative.
	if _, err := m.ont.Get(reg.EntityURI); err == nil {
		_ = m.ont.SetProperty(reg.EntityURI, ontology.PropProxyURI, reg.BaseURL)
		if reg.Protocol != "" {
			_ = m.ont.SetProperty(reg.EntityURI, ontology.PropProtocol, reg.Protocol)
		}
	}
	m.logf("master: registered %s (%s) at %s", reg.ID, reg.Kind, reg.BaseURL)
	m.publishEvent("registry/registered", reg)
	return map[string]string{"status": "registered", "id": reg.ID}, nil
}

// deregister removes a registration by id.
func (m *Master) deregister(ctx context.Context, q url.Values) (map[string]string, error) {
	id := q.Get("id")
	if err := m.reg.Deregister(id); err != nil {
		return nil, err
	}
	m.publishEvent("registry/deregistered", map[string]string{"id": id})
	return map[string]string{"status": "deregistered", "id": id}, nil
}

// heartbeat refreshes a registration's liveness.
func (m *Master) heartbeat(ctx context.Context, q url.Values) (map[string]string, error) {
	if err := m.reg.Heartbeat(q.Get("id")); err != nil {
		return nil, err
	}
	return map[string]string{"status": "ok"}, nil
}

// parseArea reads the optional bounding-box query parameters.
func parseArea(q url.Values) (ontology.Area, error) {
	raw := [4]string{q.Get("minLat"), q.Get("minLon"), q.Get("maxLat"), q.Get("maxLon")}
	if raw[0] == "" && raw[1] == "" && raw[2] == "" && raw[3] == "" {
		return ontology.Area{}, nil
	}
	var vals [4]float64
	for i, s := range raw {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return ontology.Area{}, fmt.Errorf("bad bounding box parameter %d: %q", i, s)
		}
		vals[i] = v
	}
	a := ontology.Area{MinLat: vals[0], MinLon: vals[1], MaxLat: vals[2], MaxLon: vals[3]}
	if a.MinLat > a.MaxLat || a.MinLon > a.MaxLon {
		return ontology.Area{}, errors.New("inverted bounding box")
	}
	return a, nil
}

// QueryResponse is the master's answer to an area query.
type QueryResponse struct {
	District string `json:"district"`
	// GISURI and MeasureURI are the district-level proxy services.
	GISURI     string                `json:"gisUri,omitempty"`
	MeasureURI string                `json:"measureUri,omitempty"`
	Entities   []ontology.Resolution `json:"entities"`
}

// query resolves an area to entity resolutions with proxy URIs.
func (m *Master) query(ctx context.Context, q url.Values) (any, error) {
	district := q.Get("district")
	if district == "" {
		return nil, api.BadRequest(errors.New("missing district parameter"))
	}
	area, err := parseArea(q)
	if err != nil {
		return nil, api.BadRequest(err)
	}
	entities, err := m.ont.ResolveArea(district, area)
	if err != nil {
		return nil, api.NotFound(err)
	}
	rsp := QueryResponse{District: district, Entities: entities}
	rootURI := ontology.DistrictURI(district)
	if v, ok := m.ont.Property(rootURI, ontology.PropGISURI); ok {
		rsp.GISURI = v
	}
	if v, ok := m.ont.Property(rootURI, ontology.PropMeasureURI); ok {
		rsp.MeasureURI = v
	}
	return rsp, nil
}

// devices resolves an entity to its device leaves.
func (m *Master) devices(ctx context.Context, q url.Values) (any, error) {
	entity := q.Get("entity")
	if entity == "" {
		return nil, api.BadRequest(errors.New("missing entity parameter"))
	}
	devices, err := m.ont.ResolveDevices(entity)
	if err != nil {
		return nil, api.NotFound(err)
	}
	return devices, nil
}

// ontologyDoc returns a subtree as a common-format entity document
// (content-negotiated JSON/XML).
func (m *Master) ontologyDoc(ctx context.Context, q url.Values) (any, error) {
	uri := q.Get("uri")
	if uri == "" {
		return nil, api.BadRequest(errors.New("missing uri parameter"))
	}
	e, err := m.ont.Entity(uri)
	if err != nil {
		return nil, api.NotFound(err)
	}
	return dataformat.NewEntityDoc(e), nil
}
