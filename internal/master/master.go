// Package master implements the master node of the infrastructure: "the
// unique entry point of the system" (paper §II). It maintains the
// district ontology, accepts proxy registrations, and answers area
// queries by returning the URIs of the proxies' web services for the
// matching entities — redirecting clients rather than aggregating data,
// which is the core scalability argument of the design.
package master

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dataformat"
	"repro/internal/ontology"
	"repro/internal/registry"
)

// Options configure a master node.
type Options struct {
	// LivenessTTL bounds how stale a proxy may be and still be linked
	// into query responses. Zero means 5 minutes.
	LivenessTTL time.Duration
	// SweepEvery is the stale-registration sweep period. Zero disables
	// the background sweeper (sweeps still happen lazily).
	SweepEvery time.Duration
	// Logger receives operational messages; nil silences them.
	Logger *log.Logger
}

// Master is the ontology + registry service.
type Master struct {
	opts Options
	ont  *ontology.Ontology
	reg  *registry.Registry

	mu     sync.Mutex
	srv    *http.Server
	ln     net.Listener
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// New creates a master node with an empty ontology.
func New(opts Options) *Master {
	if opts.LivenessTTL <= 0 {
		opts.LivenessTTL = 5 * time.Minute
	}
	return &Master{
		opts:   opts,
		ont:    ontology.New(),
		reg:    registry.New(),
		stopCh: make(chan struct{}),
	}
}

// Ontology exposes the district forest for programmatic construction
// (the districtsim bootstrap and the tests build districts through it).
func (m *Master) Ontology() *ontology.Ontology { return m.ont }

// Registry exposes the proxy registry.
func (m *Master) Registry() *registry.Registry { return m.reg }

// logf logs when a logger is configured.
func (m *Master) logf(format string, args ...any) {
	if m.opts.Logger != nil {
		m.opts.Logger.Printf(format, args...)
	}
}

// Handler returns the master's HTTP API:
//
//	POST   /register    body: registry.Registration JSON
//	DELETE /register?id=...
//	POST   /heartbeat?id=...
//	GET    /query?district=...&minLat=&minLon=&maxLat=&maxLon=
//	GET    /devices?entity=<uri>
//	GET    /ontology?uri=<uri>     (Accept: application/json|xml)
//	GET    /districts
//	GET    /proxies
//	GET    /healthz
func (m *Master) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/register", m.handleRegister)
	mux.HandleFunc("/heartbeat", m.handleHeartbeat)
	mux.HandleFunc("/query", m.handleQuery)
	mux.HandleFunc("/devices", m.handleDevices)
	mux.HandleFunc("/ontology", m.handleOntology)
	mux.HandleFunc("/districts", m.handleDistricts)
	mux.HandleFunc("/proxies", m.handleProxies)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Serve binds the HTTP API to addr and returns the bound address.
func (m *Master) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: m.Handler(), ReadHeaderTimeout: 10 * time.Second}
	m.mu.Lock()
	m.srv = srv
	m.ln = ln
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			m.logf("master: serve: %v", err)
		}
	}()
	if m.opts.SweepEvery > 0 {
		m.wg.Add(1)
		go m.sweepLoop()
	}
	m.logf("master: listening on %s", ln.Addr())
	return ln.Addr().String(), nil
}

func (m *Master) sweepLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.opts.SweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if n := m.reg.Sweep(m.opts.LivenessTTL); n > 0 {
				m.logf("master: swept %d stale proxies", n)
			}
		case <-m.stopCh:
			return
		}
	}
}

// Close shuts the HTTP server down.
func (m *Master) Close() {
	m.mu.Lock()
	srv := m.srv
	close(m.stopCh)
	m.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	m.wg.Wait()
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// httpError reports an error with a JSON body.
func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleRegister accepts proxy registrations and links the proxy's URL
// into the ontology node it serves.
func (m *Master) handleRegister(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var reg registry.Registration
		if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := m.reg.Register(reg); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// Link the proxy into the ontology when the entity exists. A
		// registration for a not-yet-modelled entity is kept in the
		// registry only; the ontology stays authoritative.
		if _, err := m.ont.Get(reg.EntityURI); err == nil {
			_ = m.ont.SetProperty(reg.EntityURI, ontology.PropProxyURI, reg.BaseURL)
			if reg.Protocol != "" {
				_ = m.ont.SetProperty(reg.EntityURI, ontology.PropProtocol, reg.Protocol)
			}
		}
		m.logf("master: registered %s (%s) at %s", reg.ID, reg.Kind, reg.BaseURL)
		writeJSON(w, http.StatusOK, map[string]string{"status": "registered", "id": reg.ID})
	case http.MethodDelete:
		id := r.URL.Query().Get("id")
		if err := m.reg.Deregister(id); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "deregistered", "id": id})
	default:
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST or DELETE"))
	}
}

func (m *Master) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	id := r.URL.Query().Get("id")
	if err := m.reg.Heartbeat(id); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// parseArea reads the optional bounding-box query parameters.
func parseArea(r *http.Request) (ontology.Area, error) {
	q := r.URL.Query()
	raw := [4]string{q.Get("minLat"), q.Get("minLon"), q.Get("maxLat"), q.Get("maxLon")}
	if raw[0] == "" && raw[1] == "" && raw[2] == "" && raw[3] == "" {
		return ontology.Area{}, nil
	}
	var vals [4]float64
	for i, s := range raw {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return ontology.Area{}, fmt.Errorf("bad bounding box parameter %d: %q", i, s)
		}
		vals[i] = v
	}
	a := ontology.Area{MinLat: vals[0], MinLon: vals[1], MaxLat: vals[2], MaxLon: vals[3]}
	if a.MinLat > a.MaxLat || a.MinLon > a.MaxLon {
		return ontology.Area{}, errors.New("inverted bounding box")
	}
	return a, nil
}

// QueryResponse is the master's answer to an area query.
type QueryResponse struct {
	District string `json:"district"`
	// GISURI and MeasureURI are the district-level proxy services.
	GISURI     string                `json:"gisUri,omitempty"`
	MeasureURI string                `json:"measureUri,omitempty"`
	Entities   []ontology.Resolution `json:"entities"`
}

// handleQuery resolves an area to entity resolutions with proxy URIs.
func (m *Master) handleQuery(w http.ResponseWriter, r *http.Request) {
	district := r.URL.Query().Get("district")
	if district == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing district parameter"))
		return
	}
	area, err := parseArea(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	entities, err := m.ont.ResolveArea(district, area)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	rsp := QueryResponse{District: district, Entities: entities}
	rootURI := ontology.DistrictURI(district)
	if v, ok := m.ont.Property(rootURI, ontology.PropGISURI); ok {
		rsp.GISURI = v
	}
	if v, ok := m.ont.Property(rootURI, ontology.PropMeasureURI); ok {
		rsp.MeasureURI = v
	}
	writeJSON(w, http.StatusOK, rsp)
}

// handleDevices resolves an entity to its device leaves.
func (m *Master) handleDevices(w http.ResponseWriter, r *http.Request) {
	entity := r.URL.Query().Get("entity")
	if entity == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing entity parameter"))
		return
	}
	devices, err := m.ont.ResolveDevices(entity)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, devices)
}

// handleOntology returns a subtree as a common-format entity document.
func (m *Master) handleOntology(w http.ResponseWriter, r *http.Request) {
	uri := r.URL.Query().Get("uri")
	if uri == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing uri parameter"))
		return
	}
	e, err := m.ont.Entity(uri)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	enc := dataformat.JSON
	if strings.Contains(r.Header.Get("Accept"), "xml") {
		enc = dataformat.XML
	}
	doc := dataformat.NewEntityDoc(e)
	w.Header().Set("Content-Type", enc.ContentType())
	if err := doc.EncodeTo(w, enc); err != nil {
		m.logf("master: encode ontology: %v", err)
	}
}

func (m *Master) handleDistricts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.ont.Districts())
}

func (m *Master) handleProxies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.reg.List())
}
