package master

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dataformat"
	"repro/internal/ontology"
	"repro/internal/registry"
)

// newTestMaster builds a master with a small Turin district and returns
// it with an httptest server over its handler.
func newTestMaster(t *testing.T) (*Master, *httptest.Server) {
	t.Helper()
	m := New(Options{})
	ont := m.Ontology()
	turin, err := ont.AddDistrict("turin", "Torino")
	if err != nil {
		t.Fatal(err)
	}
	_ = ont.SetProperty(turin, ontology.PropGISURI, "http://gis/")
	_ = ont.SetProperty(turin, ontology.PropMeasureURI, "http://measure/")
	b1, err := ont.AddEntity(turin, ontology.KindBuilding, "b01", "DAUIN", 45.0628, 7.6624)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ont.AddEntity(turin, ontology.KindBuilding, "b02", "Library", 45.09, 7.70); err != nil {
		t.Fatal(err)
	}
	if _, err := ont.AddDevice(b1, "t-1", "Temp", 45.0628, 7.6624); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Handler())
	t.Cleanup(ts.Close)
	return m, ts
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return rsp
}

func TestRegisterLinksOntology(t *testing.T) {
	m, ts := newTestMaster(t)
	rsp := postJSON(t, ts.URL+"/register", registry.Registration{
		ID: "bim-b01", Kind: registry.KindBIM,
		BaseURL: "http://bim-b01/", EntityURI: "urn:district:turin/building:b01",
	})
	if rsp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", rsp.StatusCode)
	}
	rsp.Body.Close()
	if v, ok := m.Ontology().Property("urn:district:turin/building:b01", ontology.PropProxyURI); !ok || v != "http://bim-b01/" {
		t.Errorf("ontology not linked: %q %v", v, ok)
	}
	if m.Registry().Len() != 1 {
		t.Errorf("registry len = %d", m.Registry().Len())
	}
}

func TestRegisterRejectsGarbage(t *testing.T) {
	_, ts := newTestMaster(t)
	rsp, err := http.Post(ts.URL+"/register", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated body: status = %d", rsp.StatusCode)
	}
	rsp = postJSON(t, ts.URL+"/register", registry.Registration{ID: "x"})
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid registration: status = %d", rsp.StatusCode)
	}
}

func TestRegisterUnknownEntityKeptInRegistryOnly(t *testing.T) {
	m, ts := newTestMaster(t)
	rsp := postJSON(t, ts.URL+"/register", registry.Registration{
		ID: "p", Kind: registry.KindBIM, BaseURL: "http://p/",
		EntityURI: "urn:district:turin/building:ghost",
	})
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", rsp.StatusCode)
	}
	if m.Registry().Len() != 1 {
		t.Error("registration dropped")
	}
}

func TestDeregister(t *testing.T) {
	m, ts := newTestMaster(t)
	rsp := postJSON(t, ts.URL+"/register", registry.Registration{
		ID: "p", Kind: registry.KindGIS, BaseURL: "http://p/", EntityURI: "urn:district:turin",
	})
	rsp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/register?id=p", nil)
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK || m.Registry().Len() != 0 {
		t.Errorf("deregister: status = %d, len = %d", rsp.StatusCode, m.Registry().Len())
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/register?id=ghost", nil)
	rsp, _ = http.DefaultClient.Do(req)
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusNotFound {
		t.Errorf("deregister ghost: status = %d", rsp.StatusCode)
	}
}

func TestHeartbeat(t *testing.T) {
	_, ts := newTestMaster(t)
	rsp := postJSON(t, ts.URL+"/register", registry.Registration{
		ID: "p", Kind: registry.KindGIS, BaseURL: "http://p/", EntityURI: "urn:district:turin",
	})
	rsp.Body.Close()
	rsp, err := http.Post(ts.URL+"/heartbeat?id=p", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		t.Errorf("heartbeat: %d", rsp.StatusCode)
	}
	rsp, _ = http.Post(ts.URL+"/heartbeat?id=ghost", "", nil)
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusNotFound {
		t.Errorf("heartbeat ghost: %d", rsp.StatusCode)
	}
}

func TestQueryWholeDistrict(t *testing.T) {
	_, ts := newTestMaster(t)
	rsp, err := http.Get(ts.URL + "/query?district=turin")
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(rsp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.District != "turin" || len(qr.Entities) != 2 {
		t.Fatalf("query = %+v", qr)
	}
	if qr.GISURI != "http://gis/" || qr.MeasureURI != "http://measure/" {
		t.Errorf("district proxies = %q %q", qr.GISURI, qr.MeasureURI)
	}
}

func TestQueryWithArea(t *testing.T) {
	_, ts := newTestMaster(t)
	url := ts.URL + "/query?district=turin&minLat=45.06&minLon=7.65&maxLat=45.07&maxLon=7.67"
	rsp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(rsp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Entities) != 1 || qr.Entities[0].Name != "DAUIN" {
		t.Fatalf("area query = %+v", qr.Entities)
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := newTestMaster(t)
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/query", http.StatusBadRequest},
		{"/query?district=ghost", http.StatusNotFound},
		{"/query?district=turin&minLat=x&minLon=0&maxLat=1&maxLon=1", http.StatusBadRequest},
		{"/query?district=turin&minLat=9&minLon=0&maxLat=1&maxLon=1", http.StatusBadRequest},
	} {
		rsp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		rsp.Body.Close()
		if rsp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.url, rsp.StatusCode, tc.want)
		}
	}
}

func TestDevicesEndpoint(t *testing.T) {
	_, ts := newTestMaster(t)
	rsp, err := http.Get(ts.URL + "/devices?entity=urn:district:turin/building:b01")
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	var devices []ontology.Resolution
	if err := json.NewDecoder(rsp.Body).Decode(&devices); err != nil {
		t.Fatal(err)
	}
	if len(devices) != 1 || devices[0].Kind != ontology.KindDevice {
		t.Fatalf("devices = %+v", devices)
	}
	rsp, _ = http.Get(ts.URL + "/devices")
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing entity: %d", rsp.StatusCode)
	}
}

func TestOntologyEndpointJSONAndXML(t *testing.T) {
	_, ts := newTestMaster(t)
	rsp, err := http.Get(ts.URL + "/ontology?uri=urn:district:turin")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := dataformat.DecodeFrom(rsp.Body, dataformat.JSON)
	rsp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Entity == nil || len(doc.Entity.Children) != 2 {
		t.Fatalf("entity doc = %+v", doc)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/ontology?uri=urn:district:turin", nil)
	req.Header.Set("Accept", "application/xml")
	rsp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	doc, err = dataformat.DecodeFrom(rsp.Body, dataformat.XML)
	rsp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Entity == nil || doc.Entity.Name != "Torino" {
		t.Fatalf("xml entity = %+v", doc.Entity)
	}
}

func TestDistrictsAndProxiesEndpoints(t *testing.T) {
	_, ts := newTestMaster(t)
	rsp, err := http.Get(ts.URL + "/districts")
	if err != nil {
		t.Fatal(err)
	}
	var districts []string
	_ = json.NewDecoder(rsp.Body).Decode(&districts)
	rsp.Body.Close()
	if len(districts) != 1 || districts[0] != "urn:district:turin" {
		t.Errorf("districts = %v", districts)
	}

	rsp, err = http.Get(ts.URL + "/proxies")
	if err != nil {
		t.Fatal(err)
	}
	var proxies []registry.Registration
	_ = json.NewDecoder(rsp.Body).Decode(&proxies)
	rsp.Body.Close()
	if len(proxies) != 0 {
		t.Errorf("proxies = %v", proxies)
	}
}

func TestServeAndClose(t *testing.T) {
	m := New(Options{SweepEvery: 10 * time.Millisecond, LivenessTTL: time.Hour})
	if _, err := m.Ontology().AddDistrict("turin", "Torino"); err != nil {
		t.Fatal(err)
	}
	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", rsp.StatusCode)
	}
	m.Close()
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("server still answering after Close")
	}
}

func TestMethodGuards(t *testing.T) {
	_, ts := newTestMaster(t)
	rsp, err := http.Get(ts.URL + "/register")
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /register = %d", rsp.StatusCode)
	}
	rsp, _ = http.Get(ts.URL + "/heartbeat?id=x")
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /heartbeat = %d", rsp.StatusCode)
	}
}
