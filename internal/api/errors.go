package api

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"
)

// Envelope is the single error shape every service returns. The "error"
// field matches the pre-redesign ad-hoc bodies, so legacy clients that
// only read that key keep working; code/status/requestId are additive.
type Envelope struct {
	Error     string `json:"error"`
	Code      string `json:"code,omitempty"`
	Status    int    `json:"status,omitempty"`
	RequestID string `json:"requestId,omitempty"`
}

// Error attaches an HTTP status (and a short machine-readable code) to
// an underlying error. Handlers wrap errors with the helpers below; the
// adapters map anything unwrapped through the sentinel table.
type Error struct {
	Status int
	Code   string
	Err    error
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Err == nil {
		return e.Code
	}
	return e.Err.Error()
}

// Unwrap exposes the wrapped error to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// codeFor derives a machine-readable code from a status.
func codeFor(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusTooManyRequests:
		return "rate_limited"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusNotAcceptable:
		return "not_acceptable"
	default:
		if status >= 500 {
			return "internal"
		}
		return "error"
	}
}

// WithStatus wraps err with an explicit HTTP status.
func WithStatus(status int, err error) error {
	return &Error{Status: status, Code: codeFor(status), Err: err}
}

// BadRequest marks err as a 400.
func BadRequest(err error) error { return WithStatus(http.StatusBadRequest, err) }

// NotFound marks err as a 404.
func NotFound(err error) error { return WithStatus(http.StatusNotFound, err) }

// MethodNotAllowed marks err as a 405.
func MethodNotAllowed(err error) error { return WithStatus(http.StatusMethodNotAllowed, err) }

// Internal marks err as a 500.
func Internal(err error) error { return WithStatus(http.StatusInternalServerError, err) }

// statusTable maps sentinel errors to statuses. Service packages
// register their domain sentinels (e.g. tsdb.ErrNoSeries → 404) so the
// mapping lives next to the sentinel's owner, not in every handler.
var statusTable struct {
	sync.RWMutex
	entries []statusEntry
}

type statusEntry struct {
	sentinel error
	status   int
}

// RegisterStatus maps a sentinel error (matched with errors.Is) to an
// HTTP status for every service using this layer.
func RegisterStatus(sentinel error, status int) {
	statusTable.Lock()
	defer statusTable.Unlock()
	for i, e := range statusTable.entries {
		if e.sentinel == sentinel {
			statusTable.entries[i].status = status
			return
		}
	}
	statusTable.entries = append(statusTable.entries, statusEntry{sentinel, status})
}

// StatusOf resolves the HTTP status of an error: an explicit *Error
// wins, then the sentinel table, then 500.
func StatusOf(err error) int {
	var ae *Error
	if errors.As(err, &ae) && ae.Status != 0 {
		return ae.Status
	}
	statusTable.RLock()
	defer statusTable.RUnlock()
	for _, e := range statusTable.entries {
		if errors.Is(err, e.sentinel) {
			return e.status
		}
	}
	return http.StatusInternalServerError
}

// WriteError writes the uniform JSON error envelope for err, resolving
// its status and attaching the request ID when one is in the context.
func WriteError(w http.ResponseWriter, r *http.Request, err error) {
	status := StatusOf(err)
	WriteErrorStatus(w, r, status, err)
}

// WriteErrorStatus writes the envelope with an explicit status.
func WriteErrorStatus(w http.ResponseWriter, r *http.Request, status int, err error) {
	env := Envelope{
		Error:  err.Error(),
		Code:   codeFor(status),
		Status: status,
	}
	var ae *Error
	if errors.As(err, &ae) && ae.Code != "" {
		env.Code = ae.Code
	}
	if r != nil {
		env.RequestID = RequestIDFrom(r.Context())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(env)
}
