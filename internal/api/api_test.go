package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/dataformat"
)

// testServer builds a Server with a few representative routes.
func testServer(opts Options) *Server {
	s := NewServer(opts)
	s.Get("/hello", func(ctx context.Context, q url.Values) (any, error) {
		name := q.Get("name")
		if name == "" {
			return nil, BadRequest(errors.New("missing name"))
		}
		return map[string]string{"hello": name}, nil
	})
	s.Get("/doc", func(ctx context.Context, q url.Values) (any, error) {
		return dataformat.NewEntityDoc(dataformat.Entity{
			URI: "urn:x", Kind: dataformat.EntityBuilding, Name: "X",
		}), nil
	})
	s.Handle(http.MethodPost, "/echo", Body(func(ctx context.Context, in map[string]string) (map[string]string, error) {
		return in, nil
	}))
	s.Get("/boom", func(ctx context.Context, q url.Values) (any, error) {
		panic("kaboom")
	})
	return s
}

func get(t *testing.T, h http.Handler, target string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest(http.MethodGet, target, nil)
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

func TestVersionedAndLegacyAliases(t *testing.T) {
	h := testServer(Options{}).Handler()
	for _, target := range []string{"/hello?name=a", "/v1/hello?name=a"} {
		rec := get(t, h, target, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d: %s", target, rec.Code, rec.Body)
		}
		var out map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out["hello"] != "a" {
			t.Fatalf("%s body = %q (%v)", target, rec.Body, err)
		}
	}
}

func TestLegacyAliasesCanBeDisabled(t *testing.T) {
	h := testServer(Options{DisableLegacyAliases: true}).Handler()
	if rec := get(t, h, "/v1/hello?name=a", nil); rec.Code != http.StatusOK {
		t.Fatalf("versioned path = %d", rec.Code)
	}
	if rec := get(t, h, "/hello?name=a", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("legacy path = %d, want 404", rec.Code)
	}
}

func TestUniformNotFoundAndMethodNotAllowed(t *testing.T) {
	h := testServer(Options{}).Handler()

	rec := get(t, h, "/nope", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path = %d", rec.Code)
	}
	var env Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("404 body not an envelope: %q", rec.Body)
	}
	if env.Code != "not_found" || env.Error == "" || env.RequestID == "" {
		t.Fatalf("404 envelope = %+v", env)
	}

	r := httptest.NewRequest(http.MethodDelete, "/v1/echo", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("bad method = %d", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != "POST" {
		t.Fatalf("Allow = %q", allow)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Code != "method_not_allowed" {
		t.Fatalf("405 envelope = %+v (%v)", env, err)
	}
}

func TestBodyAdapterDecodesAndRejects(t *testing.T) {
	h := testServer(Options{}).Handler()

	r := httptest.NewRequest(http.MethodPost, "/v1/echo", strings.NewReader(`{"a":"b"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"a":"b"`) {
		t.Fatalf("echo = %d %q", rec.Code, rec.Body)
	}

	r = httptest.NewRequest(http.MethodPost, "/v1/echo", strings.NewReader(`{`))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body = %d", rec.Code)
	}
}

func TestDocResultIsContentNegotiated(t *testing.T) {
	h := testServer(Options{}).Handler()
	for accept, wantCT := range map[string]string{
		"application/json":                  "application/json",
		"application/xml":                   "application/xml",
		"application/xml;q=0, */*":          "application/json",
		"application/json;q=0.1, text/xml":  "application/xml",
		"text/html, application/xhtml+xml":  "application/json",
		"":                                  "application/json",
		"application/*;q=0.8, text/xml;q=1": "application/xml",
	} {
		rec := get(t, h, "/v1/doc", map[string]string{"Accept": accept})
		if rec.Code != http.StatusOK {
			t.Fatalf("Accept %q: status %d", accept, rec.Code)
		}
		if got := rec.Header().Get("Content-Type"); got != wantCT {
			t.Errorf("Accept %q: content type %q, want %q", accept, got, wantCT)
		}
		enc := dataformat.ParseEncoding(wantCT)
		if _, err := dataformat.Decode(rec.Body.Bytes(), enc); err != nil {
			t.Errorf("Accept %q: undecodable body: %v", accept, err)
		}
	}
}

func TestErrorEnvelopeStatusMapping(t *testing.T) {
	sentinel := errors.New("api_test: domain sentinel")
	RegisterStatus(sentinel, http.StatusConflict)

	cases := []struct {
		err  error
		want int
	}{
		{BadRequest(errors.New("x")), http.StatusBadRequest},
		{NotFound(errors.New("x")), http.StatusNotFound},
		{MethodNotAllowed(errors.New("x")), http.StatusMethodNotAllowed},
		{Internal(errors.New("x")), http.StatusInternalServerError},
		{WithStatus(http.StatusTeapot, errors.New("x")), http.StatusTeapot},
		{sentinel, http.StatusConflict},
		{errors.Join(errors.New("wrap"), sentinel), http.StatusConflict},
		{errors.New("unmapped"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := StatusOf(tc.err); got != tc.want {
			t.Errorf("StatusOf(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestRecoverMiddlewareConvertsPanics(t *testing.T) {
	h := testServer(Options{}).Handler()
	rec := get(t, h, "/v1/boom", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic = %d", rec.Code)
	}
	var env Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || !strings.Contains(env.Error, "kaboom") {
		t.Fatalf("panic envelope = %+v (%v)", env, err)
	}
}

func TestRequestIDPropagatesAndEchoes(t *testing.T) {
	h := testServer(Options{}).Handler()
	rec := get(t, h, "/v1/hello?name=a", map[string]string{"X-Request-ID": "abc-123"})
	if got := rec.Header().Get("X-Request-ID"); got != "abc-123" {
		t.Fatalf("inbound id not echoed: %q", got)
	}
	rec = get(t, h, "/v1/hello?name=a", nil)
	if rec.Header().Get("X-Request-ID") == "" {
		t.Fatal("no generated request id")
	}
}

// TestMiddlewareChainOrder asserts the documented order: the request ID
// is already in the context when the handler (and any panic envelope)
// runs, and metrics observe panics as 500s.
func TestMiddlewareChainOrder(t *testing.T) {
	s := NewServer(Options{DisableGzip: true})
	var seenID string
	s.Get("/probe", func(ctx context.Context, q url.Values) (any, error) {
		seenID = RequestIDFrom(ctx)
		return "ok", nil
	})
	s.Get("/die", func(ctx context.Context, q url.Values) (any, error) {
		panic("die")
	})
	h := s.Handler()

	rec := get(t, h, "/v1/probe", map[string]string{"X-Request-ID": "order-1"})
	if rec.Code != http.StatusOK || seenID != "order-1" {
		t.Fatalf("request id not visible inside handler: %q (status %d)", seenID, rec.Code)
	}

	rec = get(t, h, "/v1/die", nil)
	var env Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.RequestID == "" {
		t.Fatalf("panic envelope lost the request id: %q", rec.Body)
	}

	var dieStats *RouteSnapshot
	for _, snap := range s.Metrics().Snapshot() {
		if snap.Route == "GET /die" {
			dieStats = &snap
		}
	}
	if dieStats == nil || dieStats.Count != 1 || dieStats.Errors != 1 {
		t.Fatalf("metrics did not observe the panic: %+v", dieStats)
	}
}

func TestGzipMiddleware(t *testing.T) {
	ts := httptest.NewServer(testServer(Options{}).Handler())
	defer ts.Close()

	// The default Go client advertises gzip and decodes transparently.
	rsp, err := http.Get(ts.URL + "/v1/hello?name=gz")
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(rsp.Body).Decode(&out); err != nil || out["hello"] != "gz" {
		t.Fatalf("transparent gzip decode failed: %v %v", out, err)
	}
	if !rsp.Uncompressed {
		t.Error("response was not gzip-compressed on the wire")
	}

	// A client refusing gzip gets identity bytes — including when the
	// q parameter is not the first parameter of the member.
	tr := &http.Transport{DisableCompression: true}
	defer tr.CloseIdleConnections()
	for _, refusal := range []string{"gzip;q=0", "gzip;x=1;q=0", "gzip; q=0.000"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/hello?name=plain", nil)
		req.Header.Set("Accept-Encoding", refusal)
		rsp2, err := tr.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		if rsp2.Header.Get("Content-Encoding") == "gzip" {
			t.Errorf("%q: gzip forced on a refusing client", refusal)
		}
		var out2 map[string]string
		if err := json.NewDecoder(rsp2.Body).Decode(&out2); err != nil || out2["hello"] != "plain" {
			t.Fatalf("%q: identity body = %v (%v)", refusal, out2, err)
		}
		rsp2.Body.Close()
	}
}

func TestBuiltinHealthzAndMetrics(t *testing.T) {
	s := testServer(Options{})
	h := s.Handler()
	for _, target := range []string{"/healthz", "/v1/healthz"} {
		if rec := get(t, h, target, nil); rec.Code != http.StatusOK {
			t.Fatalf("%s = %d", target, rec.Code)
		}
	}
	get(t, h, "/v1/hello?name=a", nil)
	rec := get(t, h, "/v1/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/metrics = %d", rec.Code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil || len(snap.Routes) == 0 {
		t.Fatalf("metrics body = %q (%v)", rec.Body, err)
	}
	found := false
	for _, s := range snap.Routes {
		if s.Route == "GET /hello" && s.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("GET /hello not counted: %+v", snap.Routes)
	}
}

func TestMetricsExposesLimiterTiers(t *testing.T) {
	s := testServer(Options{})
	rl := NewRateLimiter(1, 1)
	s.Metrics().RegisterLimiter("read", rl)
	rl.Allow("10.0.0.1") // one admitted
	rl.Allow("10.0.0.1") // one rejected (burst 1)

	rec := get(t, s.Handler(), "/v1/metrics", nil)
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics body = %q (%v)", rec.Body, err)
	}
	if len(snap.Limiters) != 1 {
		t.Fatalf("limiters = %+v", snap.Limiters)
	}
	l := snap.Limiters[0]
	if l.Tier != "read" || l.Allowed != 1 || l.Rejected != 1 || l.Buckets != 1 {
		t.Fatalf("limiter stats = %+v", l)
	}

	rec = get(t, s.Handler(), "/v1/metrics?format=prometheus", nil)
	body := rec.Body.String()
	for _, want := range []string{
		`repro_rate_limit_allowed_total{service="",tier="read"} 1`,
		`repro_rate_limit_rejected_total{service="",tier="read"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus exposition missing %q in:\n%s", want, body)
		}
	}
}

func TestV2ExactAndPatternRouting(t *testing.T) {
	s := NewServer(Options{DisableGzip: true})
	s.HandleV2(http.MethodPost, "/query", Body(func(ctx context.Context, in map[string]int) (map[string]int, error) {
		return map[string]int{"n": in["n"] * 2}, nil
	}))
	s.GetV2("/series/{device}/{quantity}/samples", func(ctx context.Context, p Params, q url.Values) (any, error) {
		return map[string]string{
			"device":   p.Get("device"),
			"quantity": p.Get("quantity"),
			"limit":    q.Get("limit"),
		}, nil
	})
	h := s.Handler()

	// Exact /v2 route.
	r := httptest.NewRequest(http.MethodPost, "/v2/query", strings.NewReader(`{"n":21}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"n":42`) {
		t.Fatalf("/v2/query = %d %q", rec.Code, rec.Body)
	}

	// Pattern route with an escaped device URI (embedded slashes).
	device := "urn:district:turin/building:b00/device:d01"
	target := "/v2/series/" + url.PathEscape(device) + "/temperature/samples?limit=5"
	rec = get(t, h, target, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("pattern route = %d %q", rec.Code, rec.Body)
	}
	var out map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["device"] != device || out["quantity"] != "temperature" || out["limit"] != "5" {
		t.Fatalf("params = %+v", out)
	}

	// Wrong method on a matched pattern draws the uniform 405.
	r = httptest.NewRequest(http.MethodDelete, target, nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "GET" {
		t.Fatalf("pattern 405 = %d Allow=%q", rec.Code, rec.Header().Get("Allow"))
	}

	// /v2 misses draw the envelope; /v2 routes have no legacy aliases.
	if rec := get(t, h, "/v2/nope", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("/v2 miss = %d", rec.Code)
	}
	if rec := get(t, h, "/series/x/y/samples", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unversioned v2 path = %d, want 404", rec.Code)
	}
}

func TestSetLegacyAliasesAtRuntime(t *testing.T) {
	s := testServer(Options{})
	h := s.Handler()
	if rec := get(t, h, "/hello?name=a", nil); rec.Code != http.StatusOK {
		t.Fatalf("alias before disable = %d", rec.Code)
	}
	s.SetLegacyAliases(false)
	if rec := get(t, h, "/hello?name=a", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("alias after disable = %d", rec.Code)
	}
	if rec := get(t, h, "/v1/hello?name=a", nil); rec.Code != http.StatusOK {
		t.Fatalf("versioned path after disable = %d", rec.Code)
	}
	s.SetLegacyAliases(true)
	if rec := get(t, h, "/hello?name=a", nil); rec.Code != http.StatusOK {
		t.Fatalf("alias after re-enable = %d", rec.Code)
	}
}

func TestParseAccept(t *testing.T) {
	ranges := ParseAccept("text/html, application/xml;q=0.9, */*;q=0.1, garbage")
	if len(ranges) != 3 {
		t.Fatalf("ranges = %+v", ranges)
	}
	if ranges[0].Subtype != "html" || ranges[1].Subtype != "xml" || ranges[2].Type != "*" {
		t.Errorf("order = %+v", ranges)
	}
	if NegotiateMediaType("application/json;q=0, application/xml;q=0", "application/json", "application/xml") != "" {
		t.Error("all-refused did not return empty")
	}
}
