package api

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsHistogramExposition round-trips the Prometheus text
// exposition through the obs parser: the per-route latency histogram
// must come out as a well-formed cumulative family.
func TestMetricsHistogramExposition(t *testing.T) {
	s := NewServer(Options{Service: "histtest"})
	s.Get("/thing", func(ctx context.Context, q url.Values) (any, error) {
		return map[string]string{"ok": "yes"}, nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		rsp, err := http.Get(ts.URL + "/v1/thing")
		if err != nil {
			t.Fatal(err)
		}
		rsp.Body.Close()
	}
	rsp, err := http.Get(ts.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	raw, err := io.ReadAll(rsp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseProm(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, raw)
	}
	hist, ok := fams["repro_http_request_duration_seconds"]
	if !ok {
		t.Fatalf("no route latency histogram in exposition:\n%s", raw)
	}
	if hist.Type != "histogram" {
		t.Fatalf("TYPE = %q, want histogram", hist.Type)
	}
	if err := hist.ValidateHistogram(); err != nil {
		t.Fatalf("malformed histogram: %v", err)
	}
	// The five requests all land in one labelled series; its _count
	// sample must agree with the plain request counter.
	count := -1.0
	for _, c := range hist.Counts {
		if c.Labels["route"] == "/thing" {
			count = c.Value
		}
	}
	if count != 5 {
		t.Fatalf("histogram count for /thing = %g, want 5", count)
	}
	if _, ok := fams["repro_http_requests_total"]; !ok {
		t.Fatal("request counter family missing")
	}
}

// TestMaxLatencyGaugeWindows pins the windowed-max semantics: a
// cold-start outlier must age out after two rotation windows instead of
// pinning the gauge forever.
func TestMaxLatencyGaugeWindows(t *testing.T) {
	m := NewMetrics()
	clock := time.Unix(1700000000, 0)
	m.now = func() time.Time { return clock }

	maxMs := func() float64 {
		snaps := m.Snapshot()
		if len(snaps) != 1 {
			t.Fatalf("routes = %d, want 1", len(snaps))
		}
		return snaps[0].MaxMs
	}

	m.observe(http.MethodGet, "/x", 200, 100*time.Millisecond)
	if got := maxMs(); got != 100 {
		t.Fatalf("max = %gms, want 100", got)
	}

	// One window later the outlier survives as the previous window's max.
	clock = clock.Add(maxLatencyWindow + time.Second)
	m.observe(http.MethodGet, "/x", 200, 10*time.Millisecond)
	if got := maxMs(); got != 100 {
		t.Fatalf("max after one rotation = %gms, want 100 (prev window)", got)
	}

	// Two windows later it has aged out entirely.
	clock = clock.Add(maxLatencyWindow + time.Second)
	m.observe(http.MethodGet, "/x", 200, 5*time.Millisecond)
	if got := maxMs(); got != 10 {
		t.Fatalf("max after two rotations = %gms, want 10", got)
	}
}

// TestTraceMiddlewareAndEndpoint drives one request carrying a
// traceparent through the full middleware chain and reads the span back
// from /v1/trace/{id}, stage timings included.
func TestTraceMiddlewareAndEndpoint(t *testing.T) {
	s := NewServer(Options{Service: "tracetest"})
	s.Get("/staged", func(ctx context.Context, q url.Values) (any, error) {
		obs.StagesFrom(ctx).Observe("fake-stage", 3*time.Millisecond)
		return map[string]string{"ok": "yes"}, nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	traceID := obs.NewTraceID()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/staged", nil)
	req.Header.Set(obs.TraceHeader, obs.FormatTraceparent(traceID, obs.NewSpanID()))
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()

	// The response echoes a traceparent carrying the same trace ID.
	gotID, _, ok := obs.ParseTraceparent(rsp.Header.Get(obs.TraceHeader))
	if !ok || gotID != traceID {
		t.Fatalf("response traceparent = %q, want trace ID %s", rsp.Header.Get(obs.TraceHeader), traceID)
	}

	var tr TraceResponse
	rec := get(t, s.Handler(), "/v1/trace/"+traceID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("trace lookup status = %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != traceID || len(tr.Spans) != 1 {
		t.Fatalf("trace response = %+v, want 1 span for %s", tr, traceID)
	}
	sp := tr.Spans[0]
	if sp.Service != "tracetest" || sp.Route != "/staged" || sp.Status != http.StatusOK {
		t.Fatalf("span = %+v", sp)
	}
	if len(sp.Stages) != 1 || sp.Stages[0].Name != "fake-stage" || sp.Stages[0].DurationMS != 3 {
		t.Fatalf("stages = %+v, want fake-stage at 3ms", sp.Stages)
	}

	// A request without a traceparent mints its own ID.
	rec = get(t, s.Handler(), "/v1/staged", nil)
	minted, _, ok := obs.ParseTraceparent(rec.Header().Get(obs.TraceHeader))
	if !ok || minted == traceID {
		t.Fatalf("minted traceparent = %q", rec.Header().Get(obs.TraceHeader))
	}

	// Unknown IDs are a not-found envelope.
	rec = get(t, s.Handler(), "/v1/trace/"+obs.NewTraceID(), nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d", rec.Code)
	}
}
