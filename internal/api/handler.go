package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"

	"repro/internal/dataformat"
)

// maxBodyBytes bounds request bodies accepted by the adapters.
const maxBodyBytes = 16 << 20

// RawJSON is a pre-encoded JSON payload: WriteJSON (and the typed
// adapters through it) write it verbatim instead of re-encoding. Result
// caches return it so a cached response reaches the wire byte-for-byte
// identical to the encode that filled the cache.
type RawJSON []byte

// jsonBufPool recycles encode buffers across responses: a response body
// is encoded into a pooled buffer and written in one call, so the
// per-request encoder and its bytes.Buffer growth are not re-allocated
// per request.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledEncodeBuf caps the buffers the pool keeps; an occasional
// giant page should not pin its high-water mark forever.
const maxPooledEncodeBuf = 1 << 20

func putEncodeBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledEncodeBuf {
		buf.Reset()
		jsonBufPool.Put(buf)
	}
}

// EncodeJSON returns exactly the bytes WriteJSON would write for v
// (including the trailing newline json.Encoder appends). The returned
// slice is freshly allocated — safe to retain.
func EncodeJSON(v any) ([]byte, error) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		putEncodeBuf(buf)
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	putEncodeBuf(buf)
	return out, nil
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if raw, ok := v.(RawJSON); ok {
		w.WriteHeader(status)
		_, _ = w.Write(raw)
		return
	}
	buf := jsonBufPool.Get().(*bytes.Buffer)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Encode-into-buffer failed before any byte reached the client:
		// the status line is still ours to set.
		putEncodeBuf(buf)
		WriteError(w, nil, err)
		return
	}
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	putEncodeBuf(buf)
}

// writeResult encodes a handler's return value: common-format documents
// are content-negotiated (JSON/XML per Accept), everything else is
// plain JSON.
func writeResult(w http.ResponseWriter, r *http.Request, v any) {
	switch out := v.(type) {
	case *dataformat.Document:
		if out == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		WriteDoc(w, r, out)
	case nil:
		w.WriteHeader(http.StatusNoContent)
	default:
		WriteJSON(w, http.StatusOK, out)
	}
}

// Query adapts a typed query-parameter endpoint: fn gets the request
// context and parsed query values, returns a value (or a
// *dataformat.Document for negotiated output) and an error. It never
// sees http.ResponseWriter — encoding, status mapping, and the error
// envelope are the layer's job.
func Query[Resp any](fn func(ctx context.Context, q url.Values) (Resp, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out, err := fn(r.Context(), r.URL.Query())
		if err != nil {
			WriteError(w, r, err)
			return
		}
		writeResult(w, r, out)
	})
}

// Params exposes the {param} path values a /v2 pattern route matched on
// the request.
type Params struct{ r *http.Request }

// Get returns the decoded value of one named path parameter ("" when
// the route has no such parameter).
func (p Params) Get(name string) string { return p.r.PathValue(name) }

// ParamsOf exposes the path parameters of a request to handlers that
// bypass the typed adapters (streaming endpoints).
func ParamsOf(r *http.Request) Params { return Params{r: r} }

// QueryP adapts a typed endpoint that reads both /v2 path parameters
// and query values; otherwise identical to Query.
func QueryP[Resp any](fn func(ctx context.Context, p Params, q url.Values) (Resp, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out, err := fn(r.Context(), Params{r: r}, r.URL.Query())
		if err != nil {
			WriteError(w, r, err)
			return
		}
		writeResult(w, r, out)
	})
}

// Body adapts a typed JSON-body endpoint: the request body is decoded
// into Req before fn runs. Decode failures map to 400.
func Body[Req, Resp any](fn func(ctx context.Context, in Req) (Resp, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var in Req
		dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
		if err := dec.Decode(&in); err != nil {
			WriteError(w, r, BadRequest(fmt.Errorf("bad request body: %w", err)))
			return
		}
		out, err := fn(r.Context(), in)
		if err != nil {
			WriteError(w, r, err)
			return
		}
		writeResult(w, r, out)
	})
}

// DocIn adapts an endpoint consuming a common-format document body.
// The encoding is taken from Content-Type, or sniffed when absent.
func DocIn[Resp any](fn func(ctx context.Context, doc *dataformat.Document) (Resp, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		doc, err := ReadDoc(r)
		if err != nil {
			WriteError(w, r, BadRequest(err))
			return
		}
		out, err := fn(r.Context(), doc)
		if err != nil {
			WriteError(w, r, err)
			return
		}
		writeResult(w, r, out)
	})
}

// ReadDoc decodes a request body as a common-format document, sniffing
// the encoding from the Content-Type (or the payload itself).
func ReadDoc(r *http.Request) (*dataformat.Document, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	enc := dataformat.ParseEncoding(r.Header.Get("Content-Type"))
	if r.Header.Get("Content-Type") == "" {
		enc = dataformat.Sniff(body)
	}
	return dataformat.Decode(body, enc)
}
