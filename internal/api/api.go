// Package api is the unified, versioned service-API layer every web
// service of the infrastructure shares: the master node, the
// measurements database, the Database-proxies (GIS/BIM/SIM), and the
// device-proxies all register their endpoints on an api.Server instead
// of hand-rolling http.HandleFunc surfaces.
//
// The layer provides, in one place:
//
//   - versioned routing: every endpoint is served under /v1/<path> with
//     the bare legacy path kept as an alias, so pre-versioning clients
//     keep working while new clients pin a version;
//   - uniform not-found / method-not-allowed / error responses as a
//     single JSON envelope (see errors.go);
//   - typed endpoint adapters (handler.go) so service handlers take
//     decoded requests and return values + errors — they never touch
//     http.ResponseWriter;
//   - a middleware chain (middleware.go): request-ID injection, access
//     logging, per-route latency/count metrics, gzip compression, and
//     panic recovery;
//   - real Accept-header content negotiation (negotiate.go);
//   - a context-aware retrying client transport (transport.go) shared
//     by the end-user client and the proxy registration/heartbeat path.
package api

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
)

// Version is the current API version prefix served by every Server.
const Version = "v1"

// URL joins a service base URL (with or without a trailing slash) and
// an endpoint path-and-query into a versioned request URL:
// URL("http://h:1/", "/query?district=x") → "http://h:1/v1/query?district=x".
// Every consumer of the versioned API builds URLs through this one
// helper so the version prefix lives in a single place.
func URL(base, pathAndQuery string) string {
	if !strings.HasPrefix(pathAndQuery, "/") {
		pathAndQuery = "/" + pathAndQuery
	}
	return strings.TrimSuffix(base, "/") + "/" + Version + pathAndQuery
}

// Options configure a Server.
type Options struct {
	// Service names the service in access-log lines (e.g. "master").
	Service string
	// Logger receives access-log lines; nil disables access logging.
	Logger Logger
	// DisableGzip turns the gzip middleware off (mainly for tests that
	// want to inspect raw bytes on the wire).
	DisableGzip bool
	// DisableLegacyAliases drops the unversioned route aliases; only
	// /v1/... paths are then served.
	DisableLegacyAliases bool
}

// Logger is the minimal logging interface the layer needs; *log.Logger
// satisfies it.
type Logger interface {
	Printf(format string, args ...any)
}

// route is one registered path with its per-method handlers.
type route struct {
	pattern  string // the unversioned path, e.g. "/query"
	handlers map[string]http.Handler
	allow    string // precomputed Allow header value
}

// Server registers typed endpoints and serves them under /v1 plus
// legacy aliases, wrapped in the standard middleware chain.
type Server struct {
	opts Options

	mu      sync.RWMutex
	routes  map[string]*route
	metrics *Metrics

	handlerOnce sync.Once
	handler     http.Handler
}

// NewServer creates a Server with the built-in /healthz and /metrics
// endpoints already registered.
func NewServer(opts Options) *Server {
	s := &Server{
		opts:    opts,
		routes:  make(map[string]*route),
		metrics: NewMetrics(),
	}
	s.HandleFunc(http.MethodGet, "/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.HandleFunc(http.MethodGet, "/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Prometheus exposition on explicit request (?format=prometheus)
		// or when the Accept header genuinely prefers text/plain over
		// JSON; the JSON snapshot stays the default.
		prom := r.URL.Query().Get("format") == "prometheus"
		if !prom && r.URL.Query().Get("format") == "" {
			prom = NegotiateMediaType(r.Header.Get("Accept"),
				"application/json", "text/plain") == "text/plain"
		}
		if prom {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			s.metrics.WritePrometheus(w, s.opts.Service)
			return
		}
		WriteJSON(w, http.StatusOK, s.metrics.Snapshot())
	})
	return s
}

// Handle registers handler for method on path. The path must start with
// "/" and is registered both as /v1<path> and (unless disabled) as the
// bare legacy alias <path>. Multiple methods may be registered on the
// same path; other methods then draw a uniform 405 envelope.
func (s *Server) Handle(method, path string, handler http.Handler) {
	if !strings.HasPrefix(path, "/") {
		panic(fmt.Sprintf("api: route %q must start with /", path))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rt := s.routes[path]
	if rt == nil {
		rt = &route{pattern: path, handlers: make(map[string]http.Handler)}
		s.routes[path] = rt
	}
	rt.handlers[method] = handler
	methods := make([]string, 0, len(rt.handlers))
	for m := range rt.handlers {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	rt.allow = strings.Join(methods, ", ")
}

// HandleFunc registers a plain http.HandlerFunc (escape hatch for
// endpoints that stream or set custom headers).
func (s *Server) HandleFunc(method, path string, f http.HandlerFunc) {
	s.Handle(method, path, f)
}

// Get registers a typed GET endpoint: fn receives the request context
// and decoded query values and returns a response value. A returned
// *dataformat.Document is content-negotiated; anything else is JSON.
func (s *Server) Get(path string, fn func(ctx context.Context, q url.Values) (any, error)) {
	s.Handle(http.MethodGet, path, Query(fn))
}

// Metrics exposes the per-route counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// stripVersion removes a leading /v1 segment, reporting whether the
// request was explicitly versioned.
func stripVersion(path string) (string, bool) {
	const pfx = "/" + Version
	if path == pfx {
		return "/", true
	}
	if strings.HasPrefix(path, pfx+"/") {
		return path[len(pfx):], true
	}
	return path, false
}

// lookup resolves a request to (pattern, handler). Misses return a
// pattern used for metrics bucketing and an envelope-writing handler.
func (s *Server) lookup(method, rawPath string) (string, http.Handler) {
	path, versioned := stripVersion(rawPath)
	if !versioned && s.opts.DisableLegacyAliases {
		return "404", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			WriteError(w, r, NotFound(fmt.Errorf("unknown path %q (unversioned aliases disabled)", rawPath)))
		})
	}
	s.mu.RLock()
	rt := s.routes[path]
	s.mu.RUnlock()
	if rt == nil {
		return "404", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			WriteError(w, r, NotFound(fmt.Errorf("unknown path %q", rawPath)))
		})
	}
	h := rt.handlers[method]
	if h == nil && method == http.MethodHead {
		h = rt.handlers[http.MethodGet] // net/http serves HEAD via GET
	}
	if h == nil {
		allow := rt.allow
		return rt.pattern, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			WriteError(w, r, MethodNotAllowed(fmt.Errorf("method %s not allowed on %s (use %s)", method, rt.pattern, allow)))
		})
	}
	return rt.pattern, h
}

// dispatch routes the request and records the matched pattern for the
// observing middleware.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request) {
	pattern, h := s.lookup(r.Method, r.URL.Path)
	if ri := routeInfoFrom(r.Context()); ri != nil {
		ri.Pattern = pattern
	}
	h.ServeHTTP(w, r)
}

// Handler returns the service's complete http.Handler: the router
// wrapped in the standard middleware chain. The chain order is
// request-ID (outermost) → access log → metrics → gzip → recover →
// router, so log lines carry request IDs, metrics see every outcome
// including panics, and panic envelopes still travel gzipped.
func (s *Server) Handler() http.Handler {
	s.handlerOnce.Do(func() {
		mws := []Middleware{RequestID()}
		if s.opts.Logger != nil {
			mws = append(mws, AccessLog(s.opts.Service, s.opts.Logger))
		}
		mws = append(mws, Observe(s.metrics))
		if !s.opts.DisableGzip {
			mws = append(mws, Gzip())
		}
		mws = append(mws, Recover())
		s.handler = Chain(http.HandlerFunc(s.dispatch), mws...)
	})
	return s.handler
}

// ServeHTTP lets a Server be used directly as an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.Handler().ServeHTTP(w, r)
}
