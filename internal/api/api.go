// Package api is the unified, versioned service-API layer every web
// service of the infrastructure shares: the master node, the
// measurements database, the Database-proxies (GIS/BIM/SIM), and the
// device-proxies all register their endpoints on an api.Server instead
// of hand-rolling http.HandleFunc surfaces.
//
// The layer provides, in one place:
//
//   - versioned routing: every endpoint is served under /v1/<path> with
//     the bare legacy path kept as an alias, so pre-versioning clients
//     keep working while new clients pin a version;
//   - uniform not-found / method-not-allowed / error responses as a
//     single JSON envelope (see errors.go);
//   - typed endpoint adapters (handler.go) so service handlers take
//     decoded requests and return values + errors — they never touch
//     http.ResponseWriter;
//   - a middleware chain (middleware.go): request-ID injection, access
//     logging, per-route latency/count metrics, gzip compression, and
//     panic recovery;
//   - real Accept-header content negotiation (negotiate.go);
//   - a context-aware retrying client transport (transport.go) shared
//     by the end-user client and the proxy registration/heartbeat path.
package api

import (
	"context"
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Version is the current API version prefix served by every Server.
const Version = "v1"

// Version2 is the resource-oriented query data plane prefix. /v2 routes
// are registered explicitly (HandleV2 and friends), may carry {param}
// path segments, and never get unversioned legacy aliases.
const Version2 = "v2"

// URL joins a service base URL (with or without a trailing slash) and
// an endpoint path-and-query into a versioned request URL:
// URL("http://h:1/", "/query?district=x") → "http://h:1/v1/query?district=x".
// Every consumer of the versioned API builds URLs through this one
// helper so the version prefix lives in a single place.
func URL(base, pathAndQuery string) string {
	return versionedURL(base, Version, pathAndQuery)
}

// URL2 builds a /v2 request URL the way URL builds /v1 ones. Path
// segments holding reserved characters (device URIs contain "/") must be
// escaped with url.PathEscape by the caller.
func URL2(base, pathAndQuery string) string {
	return versionedURL(base, Version2, pathAndQuery)
}

func versionedURL(base, version, pathAndQuery string) string {
	if !strings.HasPrefix(pathAndQuery, "/") {
		pathAndQuery = "/" + pathAndQuery
	}
	return strings.TrimSuffix(base, "/") + "/" + version + pathAndQuery
}

// Options configure a Server.
type Options struct {
	// Service names the service in access-log lines (e.g. "master").
	Service string
	// Logger receives access-log lines; nil disables access logging.
	Logger Logger
	// DisableGzip turns the gzip middleware off (mainly for tests that
	// want to inspect raw bytes on the wire).
	DisableGzip bool
	// DisableLegacyAliases drops the unversioned route aliases; only
	// /v1/... paths are then served.
	DisableLegacyAliases bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default: the profiling surface stays opt-in per service).
	EnablePprof bool
	// SlowRequest is the slow-request log threshold: requests at or
	// above it are logged with their trace ID and stage timings
	// (requires Logger). Zero means a 1s default; negative disables.
	SlowRequest time.Duration
}

// Logger is the minimal logging interface the layer needs; *log.Logger
// satisfies it.
type Logger interface {
	Printf(format string, args ...any)
}

// route is one registered path with its per-method handlers.
type route struct {
	pattern  string // the metrics pattern, e.g. "/query" or "/v2/series"
	handlers map[string]http.Handler
	allow    string // precomputed Allow header value
}

// patternRoute is one /v2 route with {param} path segments. Matching
// runs over the escaped request path, so a parameter value may itself
// contain percent-encoded reserved characters (device URIs carry "/").
type patternRoute struct {
	route
	segs []string // parsed pattern segments; "{name}" marks a parameter
}

// Server registers typed endpoints and serves them under /v1 plus
// legacy aliases (and, when registered, resource-style /v2 routes),
// wrapped in the standard middleware chain.
type Server struct {
	opts Options

	mu        sync.RWMutex
	routes    map[string]*route
	v1pattern []*patternRoute   // {param} /v1 routes, in registration order
	v2routes  map[string]*route // exact-path /v2 routes
	v2pattern []*patternRoute   // {param} /v2 routes, in registration order
	metrics   *Metrics
	tracer    *obs.Tracer

	handlerOnce sync.Once
	handler     http.Handler
}

// NewServer creates a Server with the built-in /healthz, /metrics, and
// /trace/{id} endpoints already registered.
func NewServer(opts Options) *Server {
	s := &Server{
		opts:     opts,
		routes:   make(map[string]*route),
		v2routes: make(map[string]*route),
		metrics:  NewMetrics(),
		tracer:   obs.NewTracer(0),
	}
	if opts.Logger != nil && opts.SlowRequest >= 0 {
		slow := opts.SlowRequest
		if slow == 0 {
			slow = time.Second
		}
		s.tracer.SetSlowLog(slow, opts.Logger.Printf)
	}
	s.HandleFunc(http.MethodGet, "/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.HandleFunc(http.MethodGet, "/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Prometheus exposition on explicit request (?format=prometheus)
		// or when the Accept header genuinely prefers text/plain over
		// JSON; the JSON snapshot stays the default.
		prom := r.URL.Query().Get("format") == "prometheus"
		if !prom && r.URL.Query().Get("format") == "" {
			prom = NegotiateMediaType(r.Header.Get("Accept"),
				"application/json", "text/plain") == "text/plain"
		}
		if prom {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			s.metrics.WritePrometheus(w, s.opts.Service)
			return
		}
		WriteJSON(w, http.StatusOK, MetricsSnapshot{
			Routes:      s.metrics.Snapshot(),
			Limiters:    s.metrics.Limiters(),
			Instruments: s.metrics.Instruments(),
		})
	})
	s.HandleFunc(http.MethodGet, "/trace/{id}", s.handleTrace)
	return s
}

// Tracer exposes the server's span ring (tests and embedding services
// record into it directly).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// TraceResponse is the JSON body of /v1/trace/{id}: every span record
// this service retains for the trace, oldest first.
type TraceResponse struct {
	TraceID string           `json:"traceId"`
	Spans   []obs.SpanRecord `json:"spans"`
}

// handleTrace serves the retained span records of one trace ID.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := s.tracer.Get(id)
	if len(spans) == 0 {
		WriteError(w, r, NotFound(fmt.Errorf("no retained spans for trace %q", id)))
		return
	}
	WriteJSON(w, http.StatusOK, TraceResponse{TraceID: id, Spans: spans})
}

// Handle registers handler for method on path. The path must start with
// "/" and is registered both as /v1<path> and (unless disabled) as the
// bare legacy alias <path>. Multiple methods may be registered on the
// same path; other methods then draw a uniform 405 envelope. Paths may
// carry {param} segments (matched like /v2 pattern routes, values via
// http.Request.PathValue).
func (s *Server) Handle(method, path string, handler http.Handler) {
	if !strings.HasPrefix(path, "/") {
		panic(fmt.Sprintf("api: route %q must start with /", path))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if strings.Contains(path, "{") {
		segs := parsePatternSegs(path)
		for _, pr := range s.v1pattern {
			if equalSegs(pr.segs, segs) {
				pr.set(method, handler)
				return
			}
		}
		pr := &patternRoute{
			route: route{pattern: path, handlers: make(map[string]http.Handler)},
			segs:  segs,
		}
		pr.set(method, handler)
		s.v1pattern = append(s.v1pattern, pr)
		return
	}
	rt := s.routes[path]
	if rt == nil {
		rt = &route{pattern: path, handlers: make(map[string]http.Handler)}
		s.routes[path] = rt
	}
	rt.set(method, handler)
}

// parsePatternSegs splits and validates a {param} route path.
func parsePatternSegs(path string) []string {
	segs := strings.Split(strings.TrimPrefix(path, "/"), "/")
	for _, seg := range segs {
		if strings.HasPrefix(seg, "{") != strings.HasSuffix(seg, "}") ||
			seg == "{}" || strings.Count(seg, "{") > 1 {
			panic(fmt.Sprintf("api: malformed segment %q in route %q", seg, path))
		}
	}
	return segs
}

// set binds one method handler and refreshes the Allow header value.
func (rt *route) set(method string, handler http.Handler) {
	rt.handlers[method] = handler
	methods := make([]string, 0, len(rt.handlers))
	for m := range rt.handlers {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	rt.allow = strings.Join(methods, ", ")
}

// HandleFunc registers a plain http.HandlerFunc (escape hatch for
// endpoints that stream or set custom headers).
func (s *Server) HandleFunc(method, path string, f http.HandlerFunc) {
	s.Handle(method, path, f)
}

// Get registers a typed GET endpoint: fn receives the request context
// and decoded query values and returns a response value. A returned
// *dataformat.Document is content-negotiated; anything else is JSON.
func (s *Server) Get(path string, fn func(ctx context.Context, q url.Values) (any, error)) {
	s.Handle(http.MethodGet, path, Query(fn))
}

// HandleV2 registers handler for method on a /v2 path. The path may
// carry {param} segments ("/series/{device}/{quantity}/samples"); a
// parameter matches exactly one path segment of the escaped request
// path, so clients escape reserved characters inside a value with
// url.PathEscape (a device URI's "/" travels as %2F). Matched values
// are exposed through http.Request.PathValue. /v2 routes never get
// unversioned legacy aliases.
func (s *Server) HandleV2(method, path string, handler http.Handler) {
	if !strings.HasPrefix(path, "/") {
		panic(fmt.Sprintf("api: route %q must start with /", path))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !strings.Contains(path, "{") {
		rt := s.v2routes[path]
		if rt == nil {
			rt = &route{pattern: "/" + Version2 + path, handlers: make(map[string]http.Handler)}
			s.v2routes[path] = rt
		}
		rt.set(method, handler)
		return
	}
	segs := parsePatternSegs(path)
	for _, pr := range s.v2pattern {
		if equalSegs(pr.segs, segs) {
			pr.set(method, handler)
			return
		}
	}
	pr := &patternRoute{
		route: route{pattern: "/" + Version2 + path, handlers: make(map[string]http.Handler)},
		segs:  segs,
	}
	pr.set(method, handler)
	s.v2pattern = append(s.v2pattern, pr)
}

// GetV2 registers a typed GET endpoint on a /v2 path, with path
// parameters available through the Params accessor.
func (s *Server) GetV2(path string, fn func(ctx context.Context, p Params, q url.Values) (any, error)) {
	s.HandleV2(http.MethodGet, path, QueryP(fn))
}

// equalSegs reports whether two parsed patterns collide: literal
// segments must match, parameter segments collide regardless of name.
func equalSegs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		pa, pb := strings.HasPrefix(a[i], "{"), strings.HasPrefix(b[i], "{")
		if pa != pb || (!pa && a[i] != b[i]) {
			return false
		}
	}
	return true
}

// match tries the pattern against the escaped, version-stripped request
// path, returning the decoded parameter values.
func (pr *patternRoute) match(escPath string) (map[string]string, bool) {
	segs := strings.Split(strings.TrimPrefix(escPath, "/"), "/")
	if len(segs) != len(pr.segs) {
		return nil, false
	}
	var params map[string]string
	for i, ps := range pr.segs {
		val, err := url.PathUnescape(segs[i])
		if err != nil {
			return nil, false
		}
		if strings.HasPrefix(ps, "{") {
			if params == nil {
				params = make(map[string]string, 2)
			}
			params[ps[1:len(ps)-1]] = val
		} else if ps != val {
			return nil, false
		}
	}
	return params, true
}

// SetLegacyAliases toggles the unversioned route aliases at runtime
// (services expose it so deployments can retire the aliases via a flag
// without rebuilding their option structs).
func (s *Server) SetLegacyAliases(enabled bool) {
	s.mu.Lock()
	s.opts.DisableLegacyAliases = !enabled
	s.mu.Unlock()
}

// Metrics exposes the per-route counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// stripVersion removes a leading version segment, reporting which
// version prefixed the path ("" for unversioned legacy paths).
func stripVersion(path string) (string, string) {
	for _, v := range [...]string{Version, Version2} {
		pfx := "/" + v
		if path == pfx {
			return "/", v
		}
		if strings.HasPrefix(path, pfx+"/") {
			return path[len(pfx):], v
		}
	}
	return path, ""
}

// notFoundHandler writes the uniform 404 envelope for rawPath.
func notFoundHandler(rawPath, hint string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, r, NotFound(fmt.Errorf("unknown path %q%s", rawPath, hint)))
	})
}

// resolve picks the method handler of a matched route, falling back to
// the uniform 405 envelope (and GET for HEAD, as net/http does).
func (rt *route) resolve(method string) http.Handler {
	h := rt.handlers[method]
	if h == nil && method == http.MethodHead {
		h = rt.handlers[http.MethodGet]
	}
	if h == nil {
		allow, pattern := rt.allow, rt.pattern
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			WriteError(w, r, MethodNotAllowed(fmt.Errorf("method %s not allowed on %s (use %s)", method, pattern, allow)))
		})
	}
	return h
}

// lookup resolves a request to (pattern, handler), setting any /v2 path
// parameters on the request. Misses return a pattern used for metrics
// bucketing and an envelope-writing handler.
func (s *Server) lookup(r *http.Request) (string, http.Handler) {
	rawPath := r.URL.Path
	path, version := stripVersion(rawPath)
	if version == Version2 {
		return s.lookupV2(r, rawPath)
	}
	s.mu.RLock()
	disabled := s.opts.DisableLegacyAliases
	rt := s.routes[path]
	patterns := s.v1pattern
	s.mu.RUnlock()
	if version == "" && disabled {
		return "404", notFoundHandler(rawPath, " (unversioned aliases disabled)")
	}
	if rt == nil {
		escPath, _ := stripVersion(r.URL.EscapedPath())
		for _, pr := range patterns {
			params, ok := pr.match(escPath)
			if !ok {
				continue
			}
			for k, v := range params {
				r.SetPathValue(k, v)
			}
			rt = &pr.route
			break
		}
	}
	if rt == nil {
		return "404", notFoundHandler(rawPath, "")
	}
	return rt.pattern, rt.resolve(r.Method)
}

// lookupV2 resolves a /v2 request: exact routes first, then pattern
// routes over the escaped path (so percent-encoded reserved characters
// inside one parameter survive segment splitting).
func (s *Server) lookupV2(r *http.Request, rawPath string) (string, http.Handler) {
	path, _ := stripVersion(rawPath)
	s.mu.RLock()
	rt := s.v2routes[path]
	patterns := s.v2pattern
	s.mu.RUnlock()
	if rt == nil {
		escPath, _ := stripVersion(r.URL.EscapedPath())
		for _, pr := range patterns {
			params, ok := pr.match(escPath)
			if !ok {
				continue
			}
			for k, v := range params {
				r.SetPathValue(k, v)
			}
			rt = &pr.route
			break
		}
	}
	if rt == nil {
		return "404", notFoundHandler(rawPath, "")
	}
	return rt.pattern, rt.resolve(r.Method)
}

// dispatch routes the request and records the matched pattern for the
// observing middleware. The pprof surface, when enabled, is routed
// ahead of the versioned tables so the standard /debug/pprof/ paths
// work as every Go profiling tool expects.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request) {
	if s.opts.EnablePprof && strings.HasPrefix(r.URL.Path, "/debug/pprof") {
		if ri := routeInfoFrom(r.Context()); ri != nil {
			ri.Pattern = "/debug/pprof"
		}
		servePprof(w, r)
		return
	}
	pattern, h := s.lookup(r)
	if ri := routeInfoFrom(r.Context()); ri != nil {
		ri.Pattern = pattern
	}
	h.ServeHTTP(w, r)
}

// servePprof dispatches to the net/http/pprof handlers without going
// through http.DefaultServeMux.
func servePprof(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/debug/pprof/cmdline":
		pprof.Cmdline(w, r)
	case "/debug/pprof/profile":
		pprof.Profile(w, r)
	case "/debug/pprof/symbol":
		pprof.Symbol(w, r)
	case "/debug/pprof/trace":
		pprof.Trace(w, r)
	default:
		pprof.Index(w, r)
	}
}

// Handler returns the service's complete http.Handler: the router
// wrapped in the standard middleware chain. The chain order is
// request-ID (outermost) → trace → access log → metrics → gzip →
// recover → router, so log lines carry request IDs, every request gets
// a span record with its stage timings, metrics see every outcome
// including panics, and panic envelopes still travel gzipped.
func (s *Server) Handler() http.Handler {
	s.handlerOnce.Do(func() {
		mws := []Middleware{RequestID(), Trace(s.opts.Service, s.tracer)}
		if s.opts.Logger != nil {
			mws = append(mws, AccessLog(s.opts.Service, s.opts.Logger))
		}
		mws = append(mws, Observe(s.metrics))
		if !s.opts.DisableGzip {
			mws = append(mws, Gzip())
		}
		mws = append(mws, Recover())
		s.handler = Chain(http.HandlerFunc(s.dispatch), mws...)
	})
	return s.handler
}

// ServeHTTP lets a Server be used directly as an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.Handler().ServeHTTP(w, r)
}
