package api

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RateLimiter is a per-key token-bucket limiter. Each key (the client
// IP in the middleware below) owns a bucket of Burst tokens refilled at
// Rate tokens per second; a request spends one token. It backstops the
// hot proxy routes and the stream publish ingress against a runaway or
// hostile client without throttling the well-behaved ones.
type RateLimiter struct {
	// Rate is the sustained request rate per key (tokens per second).
	Rate float64
	// Burst is the bucket capacity (instantaneous excursion allowance).
	Burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // test hook

	allowed  uint64
	rejected uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds limiter memory under hostile key cardinality; when
// exceeded, buckets idle long enough to have refilled completely are
// discarded (dropping them only ever gives a key back its full burst).
const maxBuckets = 16384

// NewRateLimiter creates a limiter allowing rate requests/second with
// the given burst capacity per key.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	return &RateLimiter{
		Rate:    rate,
		Burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// WithClock overrides the limiter's clock (tests).
func (rl *RateLimiter) WithClock(now func() time.Time) *RateLimiter {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	rl.now = now
	return rl
}

// Allow reports whether one request for key may proceed now. When it
// may not, the returned duration is how long the key must wait for the
// next token — the Retry-After hint.
func (rl *RateLimiter) Allow(key string) (bool, time.Duration) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	b := rl.buckets[key]
	if b == nil {
		if len(rl.buckets) >= maxBuckets && rl.pruneLocked(now) == 0 {
			// Nothing idle enough to forget for free: evict an arbitrary
			// bucket so the cap holds strictly. The evicted key regains
			// its full burst, which degrades fairness, not safety.
			for k := range rl.buckets {
				delete(rl.buckets, k)
				break
			}
		}
		b = &bucket{tokens: rl.Burst, last: now}
		rl.buckets[key] = b
	} else {
		b.tokens = math.Min(rl.Burst, b.tokens+now.Sub(b.last).Seconds()*rl.Rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		rl.allowed++
		return true, 0
	}
	rl.rejected++
	wait := time.Duration((1 - b.tokens) / rl.Rate * float64(time.Second))
	return false, wait
}

// LimiterStats is a snapshot of one limiter's configuration and
// cumulative counters; Tier is the route-class label the limiter was
// registered under (Metrics.RegisterLimiter).
type LimiterStats struct {
	Tier     string  `json:"tier,omitempty"`
	Rate     float64 `json:"rate"`
	Burst    float64 `json:"burst"`
	Allowed  uint64  `json:"allowed"`
	Rejected uint64  `json:"rejected"`
	Buckets  int     `json:"buckets"`
}

// Stats returns a snapshot of the limiter counters.
func (rl *RateLimiter) Stats() LimiterStats {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return LimiterStats{
		Rate: rl.Rate, Burst: rl.Burst,
		Allowed: rl.allowed, Rejected: rl.rejected,
		Buckets: len(rl.buckets),
	}
}

// pruneLocked drops buckets that have fully refilled (forgetting them
// is free) and returns how many it dropped.
func (rl *RateLimiter) pruneLocked(now time.Time) int {
	full := time.Duration(rl.Burst / rl.Rate * float64(time.Second))
	freed := 0
	for key, b := range rl.buckets {
		if now.Sub(b.last) >= full {
			delete(rl.buckets, key)
			freed++
		}
	}
	return freed
}

// Len returns the number of live buckets (tests, introspection).
func (rl *RateLimiter) Len() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return len(rl.buckets)
}

// clientIP extracts the bucket key from a request: the connection's
// remote IP. (No X-Forwarded-For here — this infrastructure's services
// face each other, not a trusted reverse proxy.)
func clientIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// RateLimit wraps a handler with per-client-IP token-bucket limiting.
// Rejected requests draw a 429 envelope with a Retry-After header in
// whole seconds (rounded up), which the shared client transport honours
// before its next retry attempt.
func RateLimit(rl *RateLimiter) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ok, wait := rl.Allow(clientIP(r))
			if !ok {
				secs := int(math.Ceil(wait.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				WriteError(w, r, WithStatus(http.StatusTooManyRequests,
					fmt.Errorf("rate limit exceeded, retry in %ds", secs)))
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
