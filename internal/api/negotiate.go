package api

import (
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataformat"
)

// MediaRange is one parsed entry of an Accept header.
type MediaRange struct {
	Type    string  // "application", or "*"
	Subtype string  // "json", "xml", or "*"
	Q       float64 // quality factor in [0,1]
	// pos preserves header order for stable tie-breaking.
	pos int
}

// specificity ranks exact types over subtype wildcards over full
// wildcards, per RFC 7231 §5.3.2.
func (m MediaRange) specificity() int {
	switch {
	case m.Type == "*":
		return 0
	case m.Subtype == "*":
		return 1
	default:
		return 2
	}
}

// matches reports whether the range covers the concrete media type.
func (m MediaRange) matches(mediaType string) bool {
	t, sub, _ := strings.Cut(mediaType, "/")
	if m.Type != "*" && !strings.EqualFold(m.Type, t) {
		return false
	}
	if m.Subtype != "*" && !strings.EqualFold(m.Subtype, sub) {
		return false
	}
	return true
}

// ParseAccept parses an Accept header into media ranges sorted by
// quality (desc), then specificity (desc), then header order. Malformed
// entries are skipped; q-values are clamped to [0,1] and default to 1.
func ParseAccept(header string) []MediaRange {
	var out []MediaRange
	for i, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ";")
		mt := strings.TrimSpace(fields[0])
		t, sub, ok := strings.Cut(mt, "/")
		if !ok || t == "" || sub == "" {
			continue
		}
		mr := MediaRange{Type: strings.ToLower(t), Subtype: strings.ToLower(sub), Q: 1, pos: i}
		for _, p := range fields[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok || !strings.EqualFold(strings.TrimSpace(k), "q") {
				continue
			}
			q, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				continue // malformed q: keep default 1 per lenient parsing
			}
			mr.Q = min(1, max(0, q))
		}
		out = append(out, mr)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Q != out[j].Q {
			return out[i].Q > out[j].Q
		}
		if si, sj := out[i].specificity(), out[j].specificity(); si != sj {
			return si > sj
		}
		return out[i].pos < out[j].pos
	})
	return out
}

// NegotiateMediaType picks the best of the offered media types for the
// Accept header, with the first offer as the default. It returns "" if
// every offer is explicitly refused (q=0) and no wildcard allows one.
func NegotiateMediaType(header string, offers ...string) string {
	if len(offers) == 0 {
		return ""
	}
	ranges := ParseAccept(header)
	if len(ranges) == 0 {
		return offers[0] // no (parsable) preference: server default
	}
	bestOffer := ""
	bestQ := 0.0
	for _, offer := range offers {
		// The quality the client assigns an offer comes from the most
		// specific matching range (RFC 7231 §5.3.2).
		q, spec := 0.0, -1
		for _, mr := range ranges {
			if mr.matches(offer) && mr.specificity() > spec {
				q, spec = mr.Q, mr.specificity()
			}
		}
		// Earlier offers are the server's preference and win ties.
		if q > bestQ {
			bestOffer, bestQ = offer, q
		}
	}
	if bestQ == 0 {
		return ""
	}
	return bestOffer
}

// NegotiateEncoding picks the wire encoding for a common-format
// response from the request's Accept header. JSON is the
// infrastructure's primary encoding and wins ties, wildcards, and
// absent/unparsable headers; XML is only chosen when the client
// genuinely prefers it (this subsumes the old substring match, which
// mis-fired on entries like "application/xml;q=0").
func NegotiateEncoding(r *http.Request) dataformat.Encoding {
	offer := NegotiateMediaType(r.Header.Get("Accept"),
		"application/json", "application/xml", "text/xml")
	if offer == "application/xml" || offer == "text/xml" {
		return dataformat.XML
	}
	return dataformat.JSON
}

// WriteDoc writes a common-format document honouring content
// negotiation; it is the response half of the Doc-returning adapters.
func WriteDoc(w http.ResponseWriter, r *http.Request, doc *dataformat.Document) {
	enc := NegotiateEncoding(r)
	body, err := doc.Encode(enc)
	if err != nil {
		WriteError(w, r, Internal(err))
		return
	}
	w.Header().Set("Content-Type", enc.ContentType())
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}
