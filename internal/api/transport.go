package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataformat"
	"repro/internal/obs"
)

// sharedHTTPClient pools connections across every Transport that does
// not bring its own http.Client, so concurrent proxy fetches reuse
// keep-alive connections instead of re-dialling per request.
var sharedHTTPClient = &http.Client{
	Timeout: 15 * time.Second,
	Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 32,
		IdleConnTimeout:     90 * time.Second,
	},
}

// SharedHTTPClient returns the process-wide pooled HTTP client.
func SharedHTTPClient() *http.Client { return sharedHTTPClient }

// StatusError reports a non-2xx response, preserving the status for
// callers that branch on it and a trimmed body excerpt for logs.
type StatusError struct {
	Method string
	URL    string
	Status int
	Body   string
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	msg := fmt.Sprintf("api: %s %s returned %d", e.Method, e.URL, e.Status)
	if e.Body != "" {
		msg += ": " + e.Body
	}
	return msg
}

// Transport is the typed, context-aware client transport every consumer
// shares: the end-user client, proxy registration, and heartbeats.
// Transient failures (network errors and 429/502/503/504) retry with
// capped exponential backoff plus jitter; context cancellation aborts
// both in-flight requests and backoff sleeps.
type Transport struct {
	// Client overrides the pooled default HTTP client.
	Client *http.Client
	// MaxAttempts bounds tries per request (default 3; 1 disables retry).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
}

func (t *Transport) httpClient() *http.Client {
	if t != nil && t.Client != nil {
		return t.Client
	}
	return sharedHTTPClient
}

func (t *Transport) attempts() int {
	if t != nil && t.MaxAttempts > 0 {
		return t.MaxAttempts
	}
	return 3
}

// backoff returns the sleep before attempt n (0-based), jittered to
// 50–150% of min(BaseDelay·2ⁿ, MaxDelay) so synchronized clients spread
// out.
func (t *Transport) backoff(attempt int) time.Duration {
	base, maxd := 100*time.Millisecond, 2*time.Second
	if t != nil && t.BaseDelay > 0 {
		base = t.BaseDelay
	}
	if t != nil && t.MaxDelay > 0 {
		maxd = t.MaxDelay
	}
	d := base << attempt
	if d > maxd || d <= 0 {
		d = maxd
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// retryableStatus reports statuses worth another attempt.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfter parses a 429/503 Retry-After header (delta-seconds form;
// the HTTP-date form is not used by this infrastructure). Zero means
// absent or unparsable.
func retryAfter(rsp *http.Response) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(rsp.Header.Get("Retry-After")))
	if err != nil || secs <= 0 {
		return 0
	}
	const maxRetryAfter = 30 * time.Second // cap hostile/buggy server hints
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// Do performs one logical request with retries. body may be nil; it is
// replayed from the byte slice on every attempt. The response body is
// fully read, so connections always return to the pool; non-2xx
// responses come back as *StatusError.
//
// Every request carries an X-Request-ID: an inbound one from ctx (when
// the caller is itself serving a request through this layer) or a fresh
// one minted per logical request, so cross-service traces line up in
// access logs. All attempts of one request share the same ID. A trace
// ID travels the same way: a caller-set Traceparent header wins,
// otherwise a ctx trace ID (set by the Trace middleware) is forwarded
// with a fresh span ID — the downstream service's span records then
// carry the same trace ID as the caller's.
func (t *Transport) Do(ctx context.Context, method, url string, header http.Header, body []byte) ([]byte, *http.Response, error) {
	requestID := header.Get("X-Request-ID")
	if requestID == "" {
		if requestID = RequestIDFrom(ctx); requestID == "" {
			requestID = NewRequestID()
		}
	}
	traceparent := header.Get(obs.TraceHeader)
	if traceparent == "" {
		if id := obs.TraceIDFrom(ctx); id != "" {
			traceparent = obs.FormatTraceparent(id, obs.NewSpanID())
		}
	}
	var lastErr error
	var serverWait time.Duration
	for attempt := 0; attempt < t.attempts(); attempt++ {
		if attempt > 0 {
			wait := t.backoff(attempt - 1)
			if serverWait > wait {
				wait = serverWait // a Retry-After hint overrides shorter backoff
			}
			serverWait = 0
			if err := sleep(ctx, wait); err != nil {
				return nil, nil, err
			}
		}
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, reader)
		if err != nil {
			return nil, nil, err // malformed request: retrying cannot help
		}
		for k, vs := range header {
			req.Header[k] = vs
		}
		req.Header.Set("X-Request-ID", requestID)
		if traceparent != "" {
			req.Header.Set(obs.TraceHeader, traceparent)
		}
		rsp, err := t.httpClient().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			lastErr = err
			continue // network-level failure: retry
		}
		raw, err := io.ReadAll(io.LimitReader(rsp.Body, maxBodyBytes))
		rsp.Body.Close()
		if err != nil {
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		if rsp.StatusCode < 200 || rsp.StatusCode > 299 {
			serr := &StatusError{
				Method: method, URL: url, Status: rsp.StatusCode,
				Body: strings.TrimSpace(string(raw[:min(len(raw), 512)])),
			}
			if retryableStatus(rsp.StatusCode) {
				lastErr = serr
				serverWait = retryAfter(rsp)
				continue
			}
			return raw, rsp, serr
		}
		return raw, rsp, nil
	}
	return nil, nil, fmt.Errorf("api: %s %s failed after %d attempts: %w", method, url, t.attempts(), lastErr)
}

// GetJSON fetches url and decodes the JSON response into out (out may
// be nil to discard the body).
func (t *Transport) GetJSON(ctx context.Context, url string, out any) error {
	h := http.Header{"Accept": {"application/json"}}
	raw, _, err := t.Do(ctx, http.MethodGet, url, h, nil)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// PostJSON sends in as a JSON body (nil for an empty body) and decodes
// the JSON response into out (nil to discard).
func (t *Transport) PostJSON(ctx context.Context, url string, in, out any) error {
	var body []byte
	h := http.Header{"Accept": {"application/json"}}
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
		h.Set("Content-Type", "application/json")
	}
	raw, _, err := t.Do(ctx, http.MethodPost, url, h, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Delete issues a DELETE and discards the response body.
func (t *Transport) Delete(ctx context.Context, url string) error {
	_, _, err := t.Do(ctx, http.MethodDelete, url, nil, nil)
	return err
}

// GetDoc fetches and decodes a common-format document, asking for enc
// via the Accept header.
func (t *Transport) GetDoc(ctx context.Context, url string, enc dataformat.Encoding) (*dataformat.Document, error) {
	h := http.Header{"Accept": {enc.ContentType()}}
	raw, rsp, err := t.Do(ctx, http.MethodGet, url, h, nil)
	if err != nil {
		return nil, err
	}
	return dataformat.Decode(raw, responseEncoding(rsp))
}

// PostDoc sends a common-format document and decodes the reply document
// (nil when the response has no body).
func (t *Transport) PostDoc(ctx context.Context, url string, doc *dataformat.Document, enc dataformat.Encoding) (*dataformat.Document, error) {
	body, err := doc.Encode(enc)
	if err != nil {
		return nil, err
	}
	h := http.Header{
		"Content-Type": {enc.ContentType()},
		"Accept":       {enc.ContentType()},
	}
	raw, rsp, err := t.Do(ctx, http.MethodPost, url, h, body)
	if err != nil {
		return nil, err
	}
	if len(bytes.TrimSpace(raw)) == 0 {
		return nil, nil
	}
	return dataformat.Decode(raw, responseEncoding(rsp))
}

// responseEncoding resolves the wire encoding of a response.
func responseEncoding(rsp *http.Response) dataformat.Encoding {
	ct, _, _ := strings.Cut(rsp.Header.Get("Content-Type"), ";")
	return dataformat.ParseEncoding(strings.TrimSpace(ct))
}
