package api

import (
	"compress/gzip"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Middleware wraps an http.Handler with cross-cutting behaviour.
type Middleware func(http.Handler) http.Handler

// Chain applies middlewares to h with the first middleware outermost:
// Chain(h, a, b) serves a(b(h)).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// ctxKey namespaces the layer's context values.
type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyRouteInfo
)

// RouteInfo carries the matched route pattern from the router back out
// to the observing middlewares (which run outside the router).
type RouteInfo struct {
	Pattern string
}

func routeInfoFrom(ctx context.Context) *RouteInfo {
	ri, _ := ctx.Value(ctxKeyRouteInfo).(*RouteInfo)
	return ri
}

// RequestIDFrom returns the request ID middleware-injected into ctx, or
// "" outside a request.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// NewRequestID mints a 16-hex-char random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// RequestID injects a request ID (honouring an inbound X-Request-ID so
// IDs propagate across service hops) into the context and echoes it on
// the response.
func RequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get("X-Request-ID")
			if id == "" {
				id = NewRequestID()
			}
			ctx := context.WithValue(r.Context(), ctxKeyRequestID, id)
			ctx = context.WithValue(ctx, ctxKeyRouteInfo, &RouteInfo{})
			w.Header().Set("X-Request-ID", id)
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// Trace is the cross-service tracing middleware: it adopts an inbound
// Traceparent header's trace ID (minting one otherwise, so every
// request is traceable), exposes the ID and a stage-timing collector
// through the context (obs.TraceIDFrom / obs.StagesFrom), echoes a
// traceparent on the response so callers learn the ID, and records a
// span into the tracer's ring when the handler returns. The built-in
// /healthz and /metrics routes are not recorded — scrapes would churn
// the ring out of its useful spans.
func Trace(service string, t *obs.Tracer) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			traceID, _, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceHeader))
			if !ok {
				traceID = obs.NewTraceID()
			}
			stages := &obs.Stages{}
			ctx := obs.WithTraceID(r.Context(), traceID)
			ctx = obs.WithStages(ctx, stages)
			w.Header().Set(obs.TraceHeader, obs.FormatTraceparent(traceID, obs.NewSpanID()))
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r.WithContext(ctx))
			pattern := "unmatched"
			if ri := routeInfoFrom(ctx); ri != nil && ri.Pattern != "" {
				pattern = ri.Pattern
			}
			switch pattern {
			case "/healthz", "/metrics", "/debug/pprof":
				return
			}
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			t.Record(obs.SpanRecord{
				TraceID:    traceID,
				RequestID:  RequestIDFrom(ctx),
				Service:    service,
				Method:     r.Method,
				Route:      pattern,
				Status:     status,
				Start:      start.UTC(),
				DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
				Stages:     stages.Snapshot(),
			})
		})
	}
}

// statusWriter records the response status and size.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status != 0 {
		return // first write wins; avoids superfluous-WriteHeader noise
	}
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming endpoints
// (Server-Sent Events) keep working through the observing middlewares.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog logs one line per request: service, method, path, matched
// route, status, bytes, duration, and request ID.
func AccessLog(service string, logger Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			pattern := r.URL.Path
			if ri := routeInfoFrom(r.Context()); ri != nil && ri.Pattern != "" {
				pattern = ri.Pattern
			}
			logger.Printf("%s: %s %s -> %s %d %dB %s rid=%s",
				service, r.Method, r.URL.RequestURI(), pattern,
				sw.status, sw.bytes, time.Since(start).Round(time.Microsecond),
				RequestIDFrom(r.Context()))
		})
	}
}

// Observe records per-route count, error count, and latency.
func Observe(m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			pattern := "unmatched"
			if ri := routeInfoFrom(r.Context()); ri != nil && ri.Pattern != "" {
				pattern = ri.Pattern
			}
			m.observe(r.Method, pattern, sw.status, time.Since(start))
		})
	}
}

// Recover converts handler panics into a 500 envelope instead of a
// dropped connection.
func Recover() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if v := recover(); v != nil {
					WriteErrorStatus(w, r, http.StatusInternalServerError,
						fmt.Errorf("internal error: %v", v))
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// gzipPool recycles gzip writers across requests.
var gzipPool = sync.Pool{New: func() any {
	return gzip.NewWriter(io.Discard)
}}

// gzipWriter compresses the response lazily: the gzip stream starts on
// the first body write, so empty responses stay empty.
type gzipWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (w *gzipWriter) WriteHeader(status int) {
	w.Header().Del("Content-Length") // length of the plain body no longer applies
	w.ResponseWriter.WriteHeader(status)
}

func (w *gzipWriter) Write(p []byte) (int, error) {
	if w.gz == nil {
		w.gz = gzipPool.Get().(*gzip.Writer)
		w.gz.Reset(w.ResponseWriter)
	}
	return w.gz.Write(p)
}

// Flush ends the current gzip block and flushes the underlying writer,
// so a streaming endpoint accidentally running gzipped still makes
// progress on the wire.
func (w *gzipWriter) Flush() {
	if w.gz != nil {
		_ = w.gz.Flush()
	}
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *gzipWriter) close() {
	if w.gz == nil {
		return
	}
	_ = w.gz.Close()
	w.gz.Reset(io.Discard)
	gzipPool.Put(w.gz)
	w.gz = nil
}

// acceptsGzip reports whether the client accepts gzip coding (with the
// same q-value care as media-type negotiation: "gzip;q=0" is a refusal,
// wherever the q parameter appears in the member).
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		fields := strings.Split(part, ";")
		coding := strings.ToLower(strings.TrimSpace(fields[0]))
		if coding != "gzip" && coding != "*" {
			continue
		}
		refused := false
		for _, p := range fields[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok || !strings.EqualFold(strings.TrimSpace(k), "q") {
				continue
			}
			q := strings.TrimSpace(v)
			refused = strings.HasPrefix(q, "0") && !strings.ContainsAny(q, "123456789")
		}
		if !refused {
			return true
		}
	}
	return false
}

// Gzip compresses responses for clients that accept it. Event-stream
// requests are exempt: compressing an unbounded SSE response trades
// per-event latency for ratio, the opposite of what live subscribers
// want.
func Gzip() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !acceptsGzip(r) || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
				next.ServeHTTP(w, r)
				return
			}
			w.Header().Set("Content-Encoding", "gzip")
			w.Header().Add("Vary", "Accept-Encoding")
			gw := &gzipWriter{ResponseWriter: w}
			defer gw.close()
			next.ServeHTTP(gw, r)
		})
	}
}
