package api

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataformat"
)

// fastTransport retries quickly so tests stay subsecond.
func fastTransport() *Transport {
	return &Transport{BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func TestTransportRetriesTransientFailures(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	var out map[string]bool
	if err := fastTransport().GetJSON(context.Background(), ts.URL, &out); err != nil {
		t.Fatal(err)
	}
	if !out["ok"] || hits.Load() != 3 {
		t.Fatalf("out=%v hits=%d", out, hits.Load())
	}
}

func TestTransportDoesNotRetryClientErrors(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()

	err := fastTransport().GetJSON(context.Background(), ts.URL, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("err = %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("400 was retried: %d hits", hits.Load())
	}
}

func TestTransportGivesUpAfterMaxAttempts(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer ts.Close()

	tr := fastTransport()
	tr.MaxAttempts = 2
	err := tr.GetJSON(context.Background(), ts.URL, nil)
	if err == nil || hits.Load() != 2 {
		t.Fatalf("err=%v hits=%d", err, hits.Load())
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadGateway {
		t.Fatalf("final error does not carry the status: %v", err)
	}
}

func TestTransportContextCancelsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	tr := &Transport{BaseDelay: time.Hour, MaxDelay: time.Hour} // would hang without ctx
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := tr.GetJSON(ctx, ts.URL, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

func TestTransportBodyReplayedOnRetry(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		doc, err := ReadDoc(r)
		if err != nil || doc.Measurement == nil {
			t.Errorf("attempt %d: bad body: %v", hits.Load(), err)
		}
		if hits.Add(1) < 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		WriteDoc(w, r, doc)
	}))
	defer ts.Close()

	doc := dataformat.NewMeasurementDoc(dataformat.Measurement{
		Device: "urn:d", Quantity: dataformat.Temperature, Unit: dataformat.Celsius,
		Value: 21, Timestamp: time.Date(2015, 3, 9, 10, 0, 0, 0, time.UTC),
	})
	got, err := fastTransport().PostDoc(context.Background(), ts.URL, doc, dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Measurement == nil || got.Measurement.Value != 21 {
		t.Fatalf("echo = %+v", got)
	}
	if hits.Load() != 2 {
		t.Fatalf("hits = %d", hits.Load())
	}
}

func TestTransportBackoffIsCappedAndJittered(t *testing.T) {
	tr := &Transport{BaseDelay: 100 * time.Millisecond, MaxDelay: 300 * time.Millisecond}
	for attempt := 0; attempt < 10; attempt++ {
		d := tr.backoff(attempt)
		if d < 50*time.Millisecond || d > 450*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v outside jittered cap", attempt, d)
		}
	}
}
