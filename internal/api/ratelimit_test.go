package api

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRateLimiterTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	rl := NewRateLimiter(10, 3).WithClock(func() time.Time { return now })

	for i := 0; i < 3; i++ {
		if ok, _ := rl.Allow("k"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, wait := rl.Allow("k")
	if ok {
		t.Fatal("request beyond burst allowed")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("wait = %v, want ~1/rate", wait)
	}
	// Other keys have their own buckets.
	if ok, _ := rl.Allow("other"); !ok {
		t.Fatal("independent key throttled")
	}
	// Refill at 10/s: 100ms buys one token back.
	now = now.Add(100 * time.Millisecond)
	if ok, _ := rl.Allow("k"); !ok {
		t.Fatal("token not refilled")
	}
	if ok, _ := rl.Allow("k"); ok {
		t.Fatal("second token appeared from nowhere")
	}
}

func TestRateLimitMiddleware429(t *testing.T) {
	rl := NewRateLimiter(1, 1)
	var hits atomic.Int64
	h := RateLimit(rl)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	rsp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d", rsp.StatusCode)
	}
	rsp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", rsp.StatusCode)
	}
	if rsp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if hits.Load() != 1 {
		t.Fatalf("handler ran %d times", hits.Load())
	}
}

func TestTransportHonoursRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstRetryAt atomic.Int64
	start := time.Now()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		firstRetryAt.Store(int64(time.Since(start)))
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	tr := &Transport{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	if _, _, err := tr.Do(context.Background(), http.MethodGet, ts.URL, nil, nil); err != nil {
		t.Fatal(err)
	}
	// The 1s server hint must override the ~1ms client backoff.
	if got := time.Duration(firstRetryAt.Load()); got < 900*time.Millisecond {
		t.Fatalf("retried after %v, ignoring Retry-After", got)
	}
}

func TestTransportPropagatesRequestID(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-Request-ID"))
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	tr := &Transport{}

	// Outside a request: a fresh ID is minted.
	if _, _, err := tr.Do(context.Background(), http.MethodGet, ts.URL, nil, nil); err != nil {
		t.Fatal(err)
	}
	if id, _ := got.Load().(string); len(id) != 16 {
		t.Fatalf("minted request ID = %q", id)
	}

	// Inside a request served by the layer: the inbound ID rides along,
	// so two hops share one trace ID.
	front := NewServer(Options{Service: "front"})
	front.HandleFunc(http.MethodGet, "/hop", func(w http.ResponseWriter, r *http.Request) {
		if _, _, err := tr.Do(r.Context(), http.MethodGet, ts.URL, nil, nil); err != nil {
			WriteError(w, r, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	fts := httptest.NewServer(front.Handler())
	defer fts.Close()

	req, _ := http.NewRequest(http.MethodGet, fts.URL+"/v1/hop", nil)
	req.Header.Set("X-Request-ID", "trace-me-0001")
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if id, _ := got.Load().(string); id != "trace-me-0001" {
		t.Fatalf("downstream saw %q, want the inbound trace ID", id)
	}
}

func TestMetricsPrometheusExposition(t *testing.T) {
	s := NewServer(Options{Service: "promtest"})
	s.HandleFunc(http.MethodGet, "/thing", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		rsp, err := http.Get(ts.URL + "/v1/thing")
		if err != nil {
			t.Fatal(err)
		}
		rsp.Body.Close()
	}

	// format=prometheus forces the text exposition.
	rsp, err := http.Get(ts.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if ct := rsp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(rsp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	want := `repro_http_requests_total{service="promtest",method="GET",route="/thing"} 3`
	if !strings.Contains(body, want) {
		t.Fatalf("exposition missing %q:\n%s", want, body)
	}
	if !strings.Contains(body, "# TYPE repro_http_requests_total counter") {
		t.Fatal("missing TYPE header")
	}

	// Accept negotiation reaches the same output; JSON stays default.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rsp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rsp2.Body.Close()
	if ct := rsp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("negotiated Content-Type = %q", ct)
	}
	rsp3, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	rsp3.Body.Close()
	if ct := rsp3.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("default Content-Type = %q", ct)
	}
}
