package api

import (
	"sort"
	"sync"
	"time"
)

// Metrics accumulates per-route request counters. Routes are keyed by
// "METHOD pattern" (the matched pattern, not the raw path, so metrics
// cardinality stays bounded under hostile paths).
type Metrics struct {
	mu     sync.Mutex
	routes map[string]*routeStats
}

type routeStats struct {
	count   uint64
	errors  uint64 // responses with status >= 400
	totalNS int64
	maxNS   int64
}

// NewMetrics creates an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{routes: make(map[string]*routeStats)}
}

func (m *Metrics) observe(method, pattern string, status int, d time.Duration) {
	key := method + " " + pattern
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.routes[key]
	if rs == nil {
		rs = &routeStats{}
		m.routes[key] = rs
	}
	rs.count++
	if status >= 400 {
		rs.errors++
	}
	ns := d.Nanoseconds()
	rs.totalNS += ns
	if ns > rs.maxNS {
		rs.maxNS = ns
	}
}

// RouteSnapshot is one route's counters at a point in time.
type RouteSnapshot struct {
	Route   string  `json:"route"`
	Count   uint64  `json:"count"`
	Errors  uint64  `json:"errors"`
	MeanMs  float64 `json:"meanMs"`
	MaxMs   float64 `json:"maxMs"`
	TotalMs float64 `json:"totalMs"`
}

// Snapshot returns the counters of every route, sorted by route key.
func (m *Metrics) Snapshot() []RouteSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RouteSnapshot, 0, len(m.routes))
	for key, rs := range m.routes {
		snap := RouteSnapshot{
			Route:   key,
			Count:   rs.count,
			Errors:  rs.errors,
			MaxMs:   float64(rs.maxNS) / 1e6,
			TotalMs: float64(rs.totalNS) / 1e6,
		}
		if rs.count > 0 {
			snap.MeanMs = snap.TotalMs / float64(rs.count)
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}
