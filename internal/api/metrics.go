package api

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Metrics accumulates per-route request counters and delegates
// distributions to an internal obs.Registry: every observed route gets
// a latency histogram (repro_http_request_duration_seconds), and
// services attach their own registries (storage internals, stream
// counters) so one /v1/metrics scrape serves the whole picture.
// Routes are keyed by "METHOD pattern" (the matched pattern, not the
// raw path, so metrics cardinality stays bounded under hostile paths).
type Metrics struct {
	mu       sync.Mutex
	routes   map[string]*routeStats
	limiters []limiterEntry
	reg      *obs.Registry   // route latency histograms
	attached []*obs.Registry // service-internals registries
	now      func() time.Time
}

// limiterEntry labels one registered rate limiter with its tier.
type limiterEntry struct {
	tier string
	rl   *RateLimiter
}

// maxLatencyWindow is the rotation period of the per-route max-latency
// gauge: the reported max covers the current and previous window, so a
// cold-start outlier ages out instead of pinning the gauge forever.
const maxLatencyWindow = 5 * time.Minute

type routeStats struct {
	count   uint64
	errors  uint64 // responses with status >= 400
	totalNS int64

	curMaxNS    int64
	prevMaxNS   int64
	windowStart time.Time

	hist *obs.Histogram
}

// maxNS is the windowed max: the slowest request of the current and
// previous rotation windows.
func (rs *routeStats) maxNS() int64 {
	if rs.prevMaxNS > rs.curMaxNS {
		return rs.prevMaxNS
	}
	return rs.curMaxNS
}

// NewMetrics creates an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		routes: make(map[string]*routeStats),
		reg:    obs.NewRegistry(),
		now:    time.Now,
	}
}

func (m *Metrics) observe(method, pattern string, status int, d time.Duration) {
	key := method + " " + pattern
	now := m.now()
	m.mu.Lock()
	rs := m.routes[key]
	if rs == nil {
		rs = &routeStats{
			windowStart: now,
			hist: m.reg.Histogram("repro_http_request_duration_seconds",
				"Handler latency distribution, by route.",
				obs.LatencyBuckets, obs.Labels{"method": method, "route": pattern}),
		}
		m.routes[key] = rs
	}
	rs.count++
	if status >= 400 {
		rs.errors++
	}
	ns := d.Nanoseconds()
	rs.totalNS += ns
	if now.Sub(rs.windowStart) >= maxLatencyWindow {
		rs.prevMaxNS = rs.curMaxNS
		rs.curMaxNS = 0
		rs.windowStart = now
	}
	if ns > rs.curMaxNS {
		rs.curMaxNS = ns
	}
	hist := rs.hist
	m.mu.Unlock()
	hist.ObserveDuration(d)
}

// AttachRegistry includes a service-internals registry in the metrics
// endpoints (both the JSON instruments list and the Prometheus
// exposition). Attaching the same registry twice is a no-op.
func (m *Metrics) AttachRegistry(r *obs.Registry) {
	if r == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range m.attached {
		if a == r {
			return
		}
	}
	m.attached = append(m.attached, r)
}

// registries snapshots the route-histogram registry plus everything
// attached.
func (m *Metrics) registries() []*obs.Registry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*obs.Registry, 0, len(m.attached)+1)
	out = append(out, m.reg)
	return append(out, m.attached...)
}

// Instruments reads every obs instrument visible through this metrics
// set — route latency histograms first, then attached registries.
func (m *Metrics) Instruments() []obs.Snapshot {
	var out []obs.Snapshot
	for _, r := range m.registries() {
		out = append(out, r.Snapshot()...)
	}
	return out
}

// RouteSnapshot is one route's counters at a point in time. MaxMs is
// the windowed max (see maxLatencyWindow), not an all-time high-water
// mark.
type RouteSnapshot struct {
	Route   string  `json:"route"`
	Count   uint64  `json:"count"`
	Errors  uint64  `json:"errors"`
	MeanMs  float64 `json:"meanMs"`
	MaxMs   float64 `json:"maxMs"`
	TotalMs float64 `json:"totalMs"`
}

// RegisterLimiter labels a rate limiter with its route-class tier
// ("read", "batch", "publish", ...) and includes its counters in the
// metrics endpoints. Registering the same limiter again under the same
// tier is a no-op.
func (m *Metrics) RegisterLimiter(tier string, rl *RateLimiter) {
	if rl == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.limiters {
		if e.tier == tier && e.rl == rl {
			return
		}
	}
	m.limiters = append(m.limiters, limiterEntry{tier: tier, rl: rl})
}

// Limiters returns a stats snapshot of every registered limiter, sorted
// by tier.
func (m *Metrics) Limiters() []LimiterStats {
	m.mu.Lock()
	entries := make([]limiterEntry, len(m.limiters))
	copy(entries, m.limiters)
	m.mu.Unlock()
	out := make([]LimiterStats, 0, len(entries))
	for _, e := range entries {
		st := e.rl.Stats()
		st.Tier = e.tier
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tier < out[j].Tier })
	return out
}

// Snapshot returns the counters of every route, sorted by route key.
func (m *Metrics) Snapshot() []RouteSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RouteSnapshot, 0, len(m.routes))
	for key, rs := range m.routes {
		snap := RouteSnapshot{
			Route:   key,
			Count:   rs.count,
			Errors:  rs.errors,
			MaxMs:   float64(rs.maxNS()) / 1e6,
			TotalMs: float64(rs.totalNS) / 1e6,
		}
		if rs.count > 0 {
			snap.MeanMs = snap.TotalMs / float64(rs.count)
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// labelEscaper escapes a Prometheus label value per the text exposition
// format (backslash, double quote, and newline).
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// WritePrometheus renders everything in the Prometheus text exposition
// format (version 0.0.4), labelled with the owning service: per-route
// request/error counters and the windowed max gauge, the route latency
// histograms (_bucket/_sum/_count), rate-limiter counters, and every
// attached service-internals registry. Scrapers hit
// /v1/metrics?format=prometheus (or negotiate text/plain) instead of
// the JSON snapshot.
func (m *Metrics) WritePrometheus(w io.Writer, service string) {
	snaps := m.Snapshot()
	emit := func(name, help, typ string, value func(RouteSnapshot) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, s := range snaps {
			method, route, _ := strings.Cut(s.Route, " ")
			fmt.Fprintf(w, "%s{service=%q,method=%q,route=%q} %g\n",
				name, escapeLabel(service), escapeLabel(method), escapeLabel(route), value(s))
		}
	}
	emit("repro_http_requests_total", "Requests served, by route.", "counter",
		func(s RouteSnapshot) float64 { return float64(s.Count) })
	emit("repro_http_request_errors_total", "Responses with status >= 400, by route.", "counter",
		func(s RouteSnapshot) float64 { return float64(s.Errors) })
	emit("repro_http_request_duration_seconds_max", "Slowest handler time in the recent window, by route.", "gauge",
		func(s RouteSnapshot) float64 { return s.MaxMs / 1e3 })

	if limiters := m.Limiters(); len(limiters) > 0 {
		emitL := func(name, help, typ string, value func(LimiterStats) float64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
			for _, l := range limiters {
				fmt.Fprintf(w, "%s{service=%q,tier=%q} %g\n",
					name, escapeLabel(service), escapeLabel(l.Tier), value(l))
			}
		}
		emitL("repro_rate_limit_allowed_total", "Requests admitted by the tier's limiter.", "counter",
			func(l LimiterStats) float64 { return float64(l.Allowed) })
		emitL("repro_rate_limit_rejected_total", "Requests rejected with 429 by the tier's limiter.", "counter",
			func(l LimiterStats) float64 { return float64(l.Rejected) })
		emitL("repro_rate_limit_buckets", "Live per-client buckets held by the tier's limiter.", "gauge",
			func(l LimiterStats) float64 { return float64(l.Buckets) })
	}

	extra := obs.Labels{"service": service}
	for _, r := range m.registries() {
		r.WritePrometheus(w, extra)
	}
}

// MetricsSnapshot is the JSON body of /v1/metrics: per-route counters,
// per-tier limiter stats, and the obs instruments (histograms and
// internals gauges) visible through this server.
type MetricsSnapshot struct {
	Routes      []RouteSnapshot `json:"routes"`
	Limiters    []LimiterStats  `json:"limiters,omitempty"`
	Instruments []obs.Snapshot  `json:"instruments,omitempty"`
}
