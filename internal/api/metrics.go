package api

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metrics accumulates per-route request counters. Routes are keyed by
// "METHOD pattern" (the matched pattern, not the raw path, so metrics
// cardinality stays bounded under hostile paths).
type Metrics struct {
	mu       sync.Mutex
	routes   map[string]*routeStats
	limiters []limiterEntry
}

// limiterEntry labels one registered rate limiter with its tier.
type limiterEntry struct {
	tier string
	rl   *RateLimiter
}

type routeStats struct {
	count   uint64
	errors  uint64 // responses with status >= 400
	totalNS int64
	maxNS   int64
}

// NewMetrics creates an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{routes: make(map[string]*routeStats)}
}

func (m *Metrics) observe(method, pattern string, status int, d time.Duration) {
	key := method + " " + pattern
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.routes[key]
	if rs == nil {
		rs = &routeStats{}
		m.routes[key] = rs
	}
	rs.count++
	if status >= 400 {
		rs.errors++
	}
	ns := d.Nanoseconds()
	rs.totalNS += ns
	if ns > rs.maxNS {
		rs.maxNS = ns
	}
}

// RouteSnapshot is one route's counters at a point in time.
type RouteSnapshot struct {
	Route   string  `json:"route"`
	Count   uint64  `json:"count"`
	Errors  uint64  `json:"errors"`
	MeanMs  float64 `json:"meanMs"`
	MaxMs   float64 `json:"maxMs"`
	TotalMs float64 `json:"totalMs"`
}

// RegisterLimiter labels a rate limiter with its route-class tier
// ("read", "batch", "publish", ...) and includes its counters in the
// metrics endpoints. Registering the same limiter again under the same
// tier is a no-op.
func (m *Metrics) RegisterLimiter(tier string, rl *RateLimiter) {
	if rl == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.limiters {
		if e.tier == tier && e.rl == rl {
			return
		}
	}
	m.limiters = append(m.limiters, limiterEntry{tier: tier, rl: rl})
}

// Limiters returns a stats snapshot of every registered limiter, sorted
// by tier.
func (m *Metrics) Limiters() []LimiterStats {
	m.mu.Lock()
	entries := make([]limiterEntry, len(m.limiters))
	copy(entries, m.limiters)
	m.mu.Unlock()
	out := make([]LimiterStats, 0, len(entries))
	for _, e := range entries {
		st := e.rl.Stats()
		st.Tier = e.tier
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tier < out[j].Tier })
	return out
}

// Snapshot returns the counters of every route, sorted by route key.
func (m *Metrics) Snapshot() []RouteSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RouteSnapshot, 0, len(m.routes))
	for key, rs := range m.routes {
		snap := RouteSnapshot{
			Route:   key,
			Count:   rs.count,
			Errors:  rs.errors,
			MaxMs:   float64(rs.maxNS) / 1e6,
			TotalMs: float64(rs.totalNS) / 1e6,
		}
		if rs.count > 0 {
			snap.MeanMs = snap.TotalMs / float64(rs.count)
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// labelEscaper escapes a Prometheus label value per the text exposition
// format (backslash, double quote, and newline).
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// WritePrometheus renders the counters in the Prometheus text exposition
// format (version 0.0.4), one sample per route and method, labelled with
// the owning service. Scrapers hit /v1/metrics?format=prometheus (or
// negotiate text/plain) instead of the JSON snapshot.
func (m *Metrics) WritePrometheus(w io.Writer, service string) {
	snaps := m.Snapshot()
	emit := func(name, help, typ string, value func(RouteSnapshot) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, s := range snaps {
			method, route, _ := strings.Cut(s.Route, " ")
			fmt.Fprintf(w, "%s{service=%q,method=%q,route=%q} %g\n",
				name, escapeLabel(service), escapeLabel(method), escapeLabel(route), value(s))
		}
	}
	emit("repro_http_requests_total", "Requests served, by route.", "counter",
		func(s RouteSnapshot) float64 { return float64(s.Count) })
	emit("repro_http_request_errors_total", "Responses with status >= 400, by route.", "counter",
		func(s RouteSnapshot) float64 { return float64(s.Errors) })
	emit("repro_http_request_duration_seconds_sum", "Total handler time, by route.", "counter",
		func(s RouteSnapshot) float64 { return s.TotalMs / 1e3 })
	emit("repro_http_request_duration_seconds_max", "Slowest handler time, by route.", "gauge",
		func(s RouteSnapshot) float64 { return s.MaxMs / 1e3 })

	limiters := m.Limiters()
	if len(limiters) == 0 {
		return
	}
	emitL := func(name, help, typ string, value func(LimiterStats) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, l := range limiters {
			fmt.Fprintf(w, "%s{service=%q,tier=%q} %g\n",
				name, escapeLabel(service), escapeLabel(l.Tier), value(l))
		}
	}
	emitL("repro_rate_limit_allowed_total", "Requests admitted by the tier's limiter.", "counter",
		func(l LimiterStats) float64 { return float64(l.Allowed) })
	emitL("repro_rate_limit_rejected_total", "Requests rejected with 429 by the tier's limiter.", "counter",
		func(l LimiterStats) float64 { return float64(l.Rejected) })
	emitL("repro_rate_limit_buckets", "Live per-client buckets held by the tier's limiter.", "gauge",
		func(l LimiterStats) float64 { return float64(l.Buckets) })
}

// MetricsSnapshot is the JSON body of /v1/metrics: per-route counters
// plus, when limiters are registered, per-tier limiter stats.
type MetricsSnapshot struct {
	Routes   []RouteSnapshot `json:"routes"`
	Limiters []LimiterStats  `json:"limiters,omitempty"`
}
