package sim

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// lineNetwork is plant -> junction -> substation (100 kW) with a lossy
// pipe of known fraction.
func lineNetwork() *Network {
	return &Network{
		ID: "dh1", Name: "Test DH", Kind: Heating,
		Nodes: []Node{
			{ID: "p", Kind: NodePlant, Name: "Plant"},
			{ID: "j", Kind: NodeJunction, Name: "J"},
			{ID: "s", Kind: NodeSubstation, Name: "S", DemandKW: 100, Building: "urn:b1"},
		},
		Edges: []Edge{
			{ID: "e1", Parent: "p", Child: "j", LengthM: 1000, LossPerKM: 0.02},
			{ID: "e2", Parent: "j", Child: "s", LengthM: 500, LossPerKM: 0.02},
		},
	}
}

func TestValidateGood(t *testing.T) {
	if err := lineNetwork().Validate(); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Network)
		want   error
	}{
		{"no ID", func(n *Network) { n.ID = "" }, ErrInvalidNetwork},
		{"no plant", func(n *Network) { n.Nodes[0].Kind = NodeJunction }, ErrInvalidNetwork},
		{"two plants", func(n *Network) { n.Nodes[1].Kind = NodePlant }, ErrInvalidNetwork},
		{"dup node", func(n *Network) { n.Nodes[1].ID = "p" }, ErrInvalidNetwork},
		{"negative demand", func(n *Network) { n.Nodes[2].DemandKW = -5 }, ErrInvalidNetwork},
		{"unknown edge parent", func(n *Network) { n.Edges[0].Parent = "ghost" }, ErrInvalidNetwork},
		{"unknown edge child", func(n *Network) { n.Edges[1].Child = "ghost" }, ErrInvalidNetwork},
		{"negative length", func(n *Network) { n.Edges[0].LengthM = -1 }, ErrInvalidNetwork},
		{"two parents", func(n *Network) {
			n.Edges = append(n.Edges, Edge{ID: "e3", Parent: "p", Child: "s"})
		}, ErrNotTree},
		{"unreachable node", func(n *Network) { n.Edges = n.Edges[:1] }, ErrNotTree},
		{"plant has parent", func(n *Network) {
			n.Edges = append(n.Edges, Edge{ID: "e3", Parent: "s", Child: "p"})
		}, ErrNotTree},
	}
	for _, tc := range cases {
		bad := lineNetwork()
		tc.mutate(bad)
		if err := bad.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestSolveLineNetwork(t *testing.T) {
	n := lineNetwork()
	sol, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// e2: 100 kW delivered through 500 m at 2%/km -> 1% loss fraction.
	flowE2 := 100 / (1 - 0.01)
	// e1: flowE2 through 1000m at 2%/km -> 2% loss fraction.
	flowE1 := flowE2 / (1 - 0.02)
	if math.Abs(sol.PlantOutputKW-flowE1) > 1e-9 {
		t.Errorf("PlantOutputKW = %v, want %v", sol.PlantOutputKW, flowE1)
	}
	if sol.DeliveredKW != 100 {
		t.Errorf("DeliveredKW = %v", sol.DeliveredKW)
	}
	if math.Abs(sol.LossKW-(flowE1-100)) > 1e-9 {
		t.Errorf("LossKW = %v", sol.LossKW)
	}
	if len(sol.Flows) != 2 || sol.Flows[0].EdgeID != "e1" {
		t.Fatalf("Flows = %+v", sol.Flows)
	}
	if eff := sol.Efficiency(); math.Abs(eff-100/flowE1) > 1e-9 {
		t.Errorf("Efficiency = %v", eff)
	}
}

func TestSolveZeroDemand(t *testing.T) {
	n := lineNetwork()
	n.Nodes[2].DemandKW = 0
	sol, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.PlantOutputKW != 0 || sol.LossKW != 0 || sol.Efficiency() != 0 {
		t.Errorf("idle network: %+v", sol)
	}
}

func TestSolveInvalidNetwork(t *testing.T) {
	n := lineNetwork()
	n.Edges = n.Edges[:1]
	if _, err := n.Solve(); err == nil {
		t.Fatal("Solve accepted an invalid network")
	}
}

func TestSetDemand(t *testing.T) {
	n := lineNetwork()
	if !n.SetDemand("s", 250) {
		t.Fatal("SetDemand on substation failed")
	}
	if n.SetDemand("j", 10) {
		t.Error("SetDemand on junction succeeded")
	}
	if n.SetDemand("ghost", 10) {
		t.Error("SetDemand on unknown node succeeded")
	}
	if n.TotalDemandKW() != 250 {
		t.Errorf("TotalDemandKW = %v", n.TotalDemandKW())
	}
}

func TestNodeLookups(t *testing.T) {
	n := lineNetwork()
	if p := n.Plant(); p.ID != "p" {
		t.Errorf("Plant = %+v", p)
	}
	if _, ok := n.NodeByID("j"); !ok {
		t.Error("NodeByID(j) missed")
	}
	if _, ok := n.NodeByID("ghost"); ok {
		t.Error("NodeByID(ghost) found")
	}
}

func TestSynthesizeValidAndDeterministic(t *testing.T) {
	a := Synthesize(SynthOptions{Seed: 11, Substations: 20, Branching: 4})
	if err := a.Validate(); err != nil {
		t.Fatalf("synthetic network invalid: %v", err)
	}
	b := Synthesize(SynthOptions{Seed: 11, Substations: 20, Branching: 4})
	if a.TotalDemandKW() != b.TotalDemandKW() || len(a.Edges) != len(b.Edges) {
		t.Error("Synthesize not deterministic")
	}
	subs := 0
	for _, node := range a.Nodes {
		if node.Kind == NodeSubstation {
			subs++
		}
	}
	if subs != 20 {
		t.Errorf("substations = %d, want 20", subs)
	}
}

func TestSynthesizedSolves(t *testing.T) {
	n := Synthesize(SynthOptions{Seed: 5, Substations: 50, Branching: 5})
	sol, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.PlantOutputKW <= sol.DeliveredKW {
		t.Errorf("plant output %v should exceed delivered %v (losses)", sol.PlantOutputKW, sol.DeliveredKW)
	}
	if eff := sol.Efficiency(); eff <= 0.8 || eff >= 1 {
		t.Errorf("efficiency = %v, want in (0.8, 1) for city-scale pipes", eff)
	}
	if len(sol.Flows) != len(n.Edges) {
		t.Errorf("flows = %d, edges = %d", len(sol.Flows), len(n.Edges))
	}
}

func TestExportRoundTrip(t *testing.T) {
	n := Synthesize(SynthOptions{Seed: 9, Substations: 12, Kind: Electric})
	var buf bytes.Buffer
	if err := EncodeExport(&buf, n); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "distributionNetwork") || !strings.Contains(buf.String(), "ELECTRICITY") {
		t.Fatalf("export lacks operator vocabulary:\n%s", buf.String()[:200])
	}
	got, err := DecodeExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != n.ID || got.Kind != Electric || len(got.Nodes) != len(n.Nodes) || len(got.Edges) != len(n.Edges) {
		t.Errorf("round trip shape: %+v", got)
	}
	if math.Abs(got.TotalDemandKW()-n.TotalDemandKW()) > 1e-6 {
		t.Errorf("demand = %v, want %v", got.TotalDemandKW(), n.TotalDemandKW())
	}
	// Physics must survive the percent/fraction conversion.
	a, _ := n.Solve()
	b, err := got.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.PlantOutputKW-b.PlantOutputKW) > 1e-6 {
		t.Errorf("solution changed: %v vs %v", a.PlantOutputKW, b.PlantOutputKW)
	}
}

func TestDecodeExportRejects(t *testing.T) {
	if _, err := DecodeExport(strings.NewReader("<distributionNetwork")); err == nil {
		t.Error("truncated XML accepted")
	}
	bad := `<distributionNetwork code="n" label="n" medium="STEAM"></distributionNetwork>`
	if _, err := DecodeExport(strings.NewReader(bad)); err == nil {
		t.Error("unknown medium accepted")
	}
	bad = `<distributionNetwork code="n" label="n" medium="HOT_WATER">
	  <stations><station code="x" role="WAT" label="x"/></stations></distributionNetwork>`
	if _, err := DecodeExport(strings.NewReader(bad)); err == nil {
		t.Error("unknown role accepted")
	}
	// Structurally broken (no plant) must fail validation on decode.
	bad = `<distributionNetwork code="n" label="n" medium="HOT_WATER">
	  <stations><station code="x" role="BRANCH" label="x"/></stations></distributionNetwork>`
	if _, err := DecodeExport(strings.NewReader(bad)); err == nil {
		t.Error("plantless network accepted")
	}
}

// Property: energy balance holds for arbitrary synthetic networks:
// plant output = delivered + losses, and every edge flow is positive.
func TestSolveEnergyBalanceProperty(t *testing.T) {
	f := func(seed int64, subs, branching uint8) bool {
		n := Synthesize(SynthOptions{
			Seed:        seed,
			Substations: int(subs%40) + 1,
			Branching:   int(branching%6) + 1,
		})
		sol, err := n.Solve()
		if err != nil {
			return false
		}
		if math.Abs(sol.PlantOutputKW-(sol.DeliveredKW+sol.LossKW)) > 1e-6 {
			return false
		}
		for _, fl := range sol.Flows {
			if fl.FlowKW < 0 || fl.LossKW < 0 {
				return false
			}
		}
		return sol.Efficiency() > 0 && sol.Efficiency() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
