// Package sim implements the System Information Model database of the
// infrastructure: one per energy-distribution network, as in the paper
// ("a database ... for each distribution network (System Information
// Model, SIM)"). It models a district heating (or electric) network as a
// directed tree rooted at the plant, with pipes/feeders as edges and
// substations/consumers as leaves, plus a steady-state flow and loss
// solver so the network data the Database-proxy serves is physically
// coherent rather than random.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NetworkKind distinguishes heating from electric networks.
type NetworkKind string

// Supported network kinds.
const (
	Heating  NetworkKind = "heating"
	Electric NetworkKind = "electric"
)

// NodeKind classifies network nodes.
type NodeKind string

// Node kinds.
const (
	NodePlant      NodeKind = "plant"      // source
	NodeJunction   NodeKind = "junction"   // internal branch point
	NodeSubstation NodeKind = "substation" // consumer connection
)

// Node is one vertex of the network.
type Node struct {
	ID   string
	Kind NodeKind
	Name string
	// Lat/Lon georeference the node for the GIS mapping.
	Lat, Lon float64
	// DemandKW is the connected load at substations (0 elsewhere).
	DemandKW float64
	// Building is the ontology URI of the served building, if any.
	Building string
}

// Edge is one directed pipe or feeder from Parent to Child.
type Edge struct {
	ID      string
	Parent  string
	Child   string
	LengthM float64
	// LossPerKM is the fractional energy loss per kilometre (heat loss
	// for heating networks, resistive loss for electric ones).
	LossPerKM float64
}

// Network is one distribution network's SIM.
type Network struct {
	ID    string
	Name  string
	Kind  NetworkKind
	Nodes []Node
	Edges []Edge
}

// Errors reported by validation and the solver.
var (
	ErrInvalidNetwork = errors.New("sim: invalid network")
	ErrNotTree        = errors.New("sim: network is not a tree rooted at the plant")
)

// Validate checks the structural invariants: exactly one plant, unique
// IDs, edges referencing known nodes, non-negative physics, and a tree
// topology reaching every node from the plant.
func (n *Network) Validate() error {
	if n.ID == "" {
		return fmt.Errorf("%w: network without ID", ErrInvalidNetwork)
	}
	byID := make(map[string]*Node, len(n.Nodes))
	plants := 0
	for i := range n.Nodes {
		node := &n.Nodes[i]
		if node.ID == "" {
			return fmt.Errorf("%w: node %d without ID", ErrInvalidNetwork, i)
		}
		if _, dup := byID[node.ID]; dup {
			return fmt.Errorf("%w: duplicate node ID %q", ErrInvalidNetwork, node.ID)
		}
		byID[node.ID] = node
		if node.Kind == NodePlant {
			plants++
		}
		if node.DemandKW < 0 {
			return fmt.Errorf("%w: node %q negative demand", ErrInvalidNetwork, node.ID)
		}
	}
	if plants != 1 {
		return fmt.Errorf("%w: %d plants (want exactly 1)", ErrInvalidNetwork, plants)
	}
	parentOf := make(map[string]string, len(n.Edges))
	children := make(map[string][]string)
	for i := range n.Edges {
		e := &n.Edges[i]
		if e.ID == "" {
			return fmt.Errorf("%w: edge %d without ID", ErrInvalidNetwork, i)
		}
		if _, ok := byID[e.Parent]; !ok {
			return fmt.Errorf("%w: edge %q parent %q unknown", ErrInvalidNetwork, e.ID, e.Parent)
		}
		if _, ok := byID[e.Child]; !ok {
			return fmt.Errorf("%w: edge %q child %q unknown", ErrInvalidNetwork, e.ID, e.Child)
		}
		if e.LengthM < 0 || e.LossPerKM < 0 {
			return fmt.Errorf("%w: edge %q negative physics", ErrInvalidNetwork, e.ID)
		}
		if _, dup := parentOf[e.Child]; dup {
			return fmt.Errorf("%w: node %q has two parents", ErrNotTree, e.Child)
		}
		parentOf[e.Child] = e.Parent
		children[e.Parent] = append(children[e.Parent], e.Child)
	}
	// Reachability from the plant covers all nodes (tree, no cycles).
	root := n.Plant().ID
	if _, hasParent := parentOf[root]; hasParent {
		return fmt.Errorf("%w: plant has a parent", ErrNotTree)
	}
	visited := map[string]bool{}
	stack := []string{root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[cur] {
			return fmt.Errorf("%w: cycle through %q", ErrNotTree, cur)
		}
		visited[cur] = true
		stack = append(stack, children[cur]...)
	}
	if len(visited) != len(n.Nodes) {
		return fmt.Errorf("%w: %d of %d nodes reachable from plant", ErrNotTree, len(visited), len(n.Nodes))
	}
	return nil
}

// Plant returns the network's source node (zero Node if absent).
func (n *Network) Plant() Node {
	for _, node := range n.Nodes {
		if node.Kind == NodePlant {
			return node
		}
	}
	return Node{}
}

// NodeByID finds a node.
func (n *Network) NodeByID(id string) (Node, bool) {
	for _, node := range n.Nodes {
		if node.ID == id {
			return node, true
		}
	}
	return Node{}, false
}

// TotalDemandKW sums the connected substation load.
func (n *Network) TotalDemandKW() float64 {
	var total float64
	for _, node := range n.Nodes {
		total += node.DemandKW
	}
	return total
}

// EdgeFlow is the solved state of one edge.
type EdgeFlow struct {
	EdgeID string
	// FlowKW is the power entering the edge at its parent end.
	FlowKW float64
	// LossKW is the power lost along the edge.
	LossKW float64
}

// Solution is a steady-state network solution.
type Solution struct {
	// PlantOutputKW is the power the plant must inject to cover demand
	// plus distribution losses.
	PlantOutputKW float64
	// DeliveredKW is the total power delivered at substations.
	DeliveredKW float64
	// LossKW is the total distribution loss.
	LossKW float64
	// Flows lists the per-edge flows, sorted by edge ID.
	Flows []EdgeFlow
}

// Efficiency returns delivered power over plant output (0 when idle).
func (s *Solution) Efficiency() float64 {
	if s.PlantOutputKW == 0 {
		return 0
	}
	return s.DeliveredKW / s.PlantOutputKW
}

// Solve computes steady-state edge flows for the current demands by a
// post-order accumulation from the leaves: an edge carries its subtree's
// delivered demand plus downstream losses, then loses its own share
// (flow_in = flow_out / (1 - lossFraction)).
func (n *Network) Solve() (*Solution, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	children := make(map[string][]Edge)
	for _, e := range n.Edges {
		children[e.Parent] = append(children[e.Parent], e)
	}
	demand := make(map[string]float64, len(n.Nodes))
	for _, node := range n.Nodes {
		demand[node.ID] = node.DemandKW
	}
	sol := &Solution{}

	// inflow returns the power that must enter node `id` to serve its
	// own demand and its subtree, accumulating per-edge flows.
	var inflow func(id string) float64
	inflow = func(id string) float64 {
		need := demand[id]
		sol.DeliveredKW += demand[id]
		for _, e := range children[id] {
			childNeed := inflow(e.Child)
			lossFrac := e.LossPerKM * e.LengthM / 1000
			if lossFrac >= 0.999 {
				lossFrac = 0.999 // clamp pathological inputs
			}
			flowIn := childNeed / (1 - lossFrac)
			sol.Flows = append(sol.Flows, EdgeFlow{
				EdgeID: e.ID,
				FlowKW: flowIn,
				LossKW: flowIn - childNeed,
			})
			sol.LossKW += flowIn - childNeed
			need += flowIn
		}
		return need
	}
	sol.PlantOutputKW = inflow(n.Plant().ID)
	sort.Slice(sol.Flows, func(i, j int) bool { return sol.Flows[i].EdgeID < sol.Flows[j].EdgeID })
	return sol, nil
}

// SetDemand updates the demand of a substation and reports whether the
// node exists and is a substation.
func (n *Network) SetDemand(nodeID string, demandKW float64) bool {
	for i := range n.Nodes {
		if n.Nodes[i].ID == nodeID && n.Nodes[i].Kind == NodeSubstation {
			n.Nodes[i].DemandKW = demandKW
			return true
		}
	}
	return false
}

// SynthOptions parameterize the synthetic network generator standing in
// for the utility's SIM exports (DESIGN.md S10).
type SynthOptions struct {
	ID          string
	Kind        NetworkKind
	Substations int     // leaves; zero means 8
	Branching   int     // junction fan-out; zero means 3
	MeanDemand  float64 // kW per substation; zero means 150
	Seed        int64
}

// Synthesize builds a deterministic, valid radial network: a plant, a
// layer of junctions, and substations attached breadth-first.
func Synthesize(opts SynthOptions) *Network {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Substations <= 0 {
		opts.Substations = 8
	}
	if opts.Branching <= 0 {
		opts.Branching = 3
	}
	if opts.MeanDemand <= 0 {
		opts.MeanDemand = 150
	}
	if opts.Kind == "" {
		opts.Kind = Heating
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	if opts.ID == "" {
		opts.ID = fmt.Sprintf("net%03d", rng.Intn(1000))
	}
	n := &Network{ID: opts.ID, Name: "Network " + opts.ID, Kind: opts.Kind}
	plantID := opts.ID + "-plant"
	n.Nodes = append(n.Nodes, Node{
		ID: plantID, Kind: NodePlant, Name: "Plant",
		Lat: 45.05 + rng.Float64()*0.04, Lon: 7.62 + rng.Float64()*0.08,
	})
	nJunctions := (opts.Substations + opts.Branching - 1) / opts.Branching
	junctionIDs := make([]string, 0, nJunctions)
	for j := 0; j < nJunctions; j++ {
		id := fmt.Sprintf("%s-j%02d", opts.ID, j)
		junctionIDs = append(junctionIDs, id)
		n.Nodes = append(n.Nodes, Node{
			ID: id, Kind: NodeJunction, Name: fmt.Sprintf("Junction %d", j),
			Lat: 45.05 + rng.Float64()*0.04, Lon: 7.62 + rng.Float64()*0.08,
		})
		n.Edges = append(n.Edges, Edge{
			ID: fmt.Sprintf("%s-e-j%02d", opts.ID, j), Parent: plantID, Child: id,
			LengthM: 200 + rng.Float64()*1800, LossPerKM: 0.01 + rng.Float64()*0.02,
		})
	}
	for s := 0; s < opts.Substations; s++ {
		id := fmt.Sprintf("%s-s%03d", opts.ID, s)
		demand := opts.MeanDemand * (0.5 + rng.Float64())
		n.Nodes = append(n.Nodes, Node{
			ID: id, Kind: NodeSubstation, Name: fmt.Sprintf("Substation %d", s),
			Lat: 45.05 + rng.Float64()*0.04, Lon: 7.62 + rng.Float64()*0.08,
			DemandKW: math.Round(demand*10) / 10,
			Building: fmt.Sprintf("urn:district:turin/building:b%04d", s),
		})
		n.Edges = append(n.Edges, Edge{
			ID:     fmt.Sprintf("%s-e-s%03d", opts.ID, s),
			Parent: junctionIDs[s%len(junctionIDs)], Child: id,
			LengthM: 50 + rng.Float64()*450, LossPerKM: 0.01 + rng.Float64()*0.02,
		})
	}
	return n
}
