package sim

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
)

// The utility's SIM exports arrive as XML with the operator's own
// vocabulary — a third encoding style (after BIM VendorA's flat text and
// VendorB's JSON) so each Database-proxy kind exercises a genuinely
// different translation path.

// ErrExport reports a malformed SIM export.
var ErrExport = errors.New("sim: malformed export")

type xmlNetwork struct {
	XMLName  xml.Name  `xml:"distributionNetwork"`
	Code     string    `xml:"code,attr"`
	Label    string    `xml:"label,attr"`
	Medium   string    `xml:"medium,attr"` // HOT_WATER | ELECTRICITY
	Stations []xmlNode `xml:"stations>station"`
	Links    []xmlLink `xml:"links>link"`
}

type xmlNode struct {
	Code     string  `xml:"code,attr"`
	Role     string  `xml:"role,attr"` // SOURCE | BRANCH | DELIVERY
	Label    string  `xml:"label,attr"`
	Lat      float64 `xml:"lat,attr"`
	Lon      float64 `xml:"lon,attr"`
	LoadKW   float64 `xml:"loadKw,attr,omitempty"`
	Building string  `xml:"servesBuilding,attr,omitempty"`
}

type xmlLink struct {
	Code      string  `xml:"code,attr"`
	From      string  `xml:"from,attr"`
	To        string  `xml:"to,attr"`
	LengthM   float64 `xml:"lengthM,attr"`
	LossPctKM float64 `xml:"lossPercentPerKm,attr"`
}

var mediumOf = map[NetworkKind]string{Heating: "HOT_WATER", Electric: "ELECTRICITY"}
var kindOfMedium = map[string]NetworkKind{"HOT_WATER": Heating, "ELECTRICITY": Electric}

var roleOf = map[NodeKind]string{NodePlant: "SOURCE", NodeJunction: "BRANCH", NodeSubstation: "DELIVERY"}
var kindOfRole = map[string]NodeKind{"SOURCE": NodePlant, "BRANCH": NodeJunction, "DELIVERY": NodeSubstation}

// EncodeExport writes the network in the operator XML export format.
func EncodeExport(w io.Writer, n *Network) error {
	x := xmlNetwork{Code: n.ID, Label: n.Name, Medium: mediumOf[n.Kind]}
	for _, node := range n.Nodes {
		x.Stations = append(x.Stations, xmlNode{
			Code: node.ID, Role: roleOf[node.Kind], Label: node.Name,
			Lat: node.Lat, Lon: node.Lon, LoadKW: node.DemandKW, Building: node.Building,
		})
	}
	for _, e := range n.Edges {
		x.Links = append(x.Links, xmlLink{
			Code: e.ID, From: e.Parent, To: e.Child,
			LengthM: e.LengthM, LossPctKM: e.LossPerKM * 100,
		})
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return err
	}
	return enc.Flush()
}

// DecodeExport parses an operator XML export into a Network.
func DecodeExport(r io.Reader) (*Network, error) {
	var x xmlNetwork
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExport, err)
	}
	kind, ok := kindOfMedium[x.Medium]
	if !ok {
		return nil, fmt.Errorf("%w: unknown medium %q", ErrExport, x.Medium)
	}
	n := &Network{ID: x.Code, Name: x.Label, Kind: kind}
	for _, st := range x.Stations {
		nodeKind, ok := kindOfRole[st.Role]
		if !ok {
			return nil, fmt.Errorf("%w: unknown role %q", ErrExport, st.Role)
		}
		n.Nodes = append(n.Nodes, Node{
			ID: st.Code, Kind: nodeKind, Name: st.Label,
			Lat: st.Lat, Lon: st.Lon, DemandKW: st.LoadKW, Building: st.Building,
		})
	}
	for _, l := range x.Links {
		n.Edges = append(n.Edges, Edge{
			ID: l.Code, Parent: l.From, Child: l.To,
			LengthM: l.LengthM, LossPerKM: l.LossPctKM / 100,
		})
	}
	return n, n.Validate()
}
