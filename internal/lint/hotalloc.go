package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotalloc guards the allocation discipline of the ingest/query hot
// paths: a function whose doc comment carries the marker
// "districtlint:hotpath" (or any function in a file whose package
// clause carries it) runs per row, so reflection-based decoding and
// fmt-style formatting are banned inside it — json.Unmarshal and
// friends allocate and reflect per call, and fmt.Sprintf/fmt.Errorf
// used for control flow ("format the error, usually throw it away")
// put an allocation on the fast path. Hot code formats with
// strconv/append helpers and builds errors lazily at the point they
// are actually returned to a caller that keeps them.
var hotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "no fmt formatting or encoding/json reflection inside districtlint:hotpath-annotated functions",
	Run:  runHotAlloc,
}

// hotPathMarker designates a hot function in its doc comment (or a
// whole file in its package-clause doc).
const hotPathMarker = "districtlint:hotpath"

func runHotAlloc(p *Pass) {
	for _, f := range p.Files {
		fileHot := f.Doc != nil && strings.Contains(f.Doc.Text(), hotPathMarker)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !fileHot && !(fd.Doc != nil && strings.Contains(fd.Doc.Text(), hotPathMarker)) {
				continue
			}
			fname := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(p.Info, call)
				if callee == nil {
					return true
				}
				if what, bad := hotAllocCall(callee); bad {
					p.Reportf(call.Pos(),
						"%s allocates per call in hot path %q (%s); use strconv/append formatting or a hand-rolled decoder",
						what, fname, hotPathMarker)
				}
				return true
			})
		}
	}
}

// hotAllocCall classifies a resolved callee as hot-path-hostile: the
// fmt string builders (Errorf included — an error formatted on the fast
// path is usually thrown away) and the reflecting entry points of
// encoding/json.
func hotAllocCall(obj types.Object) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Sprintf", "Errorf", "Sprint", "Sprintln":
			return "fmt." + fn.Name(), true
		}
	case "encoding/json":
		switch fn.Name() {
		case "Unmarshal", "Marshal", "MarshalIndent", "NewDecoder", "NewEncoder":
			return "json." + fn.Name(), true
		}
	}
	return "", false
}
