package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader resolves and type-checks the module's packages with nothing
// beyond the standard library and the go command that is already driving
// the build: one `go list -export -deps -json` walk yields every
// dependency's compiled export data, which feeds the stdlib gc importer,
// and the target packages themselves are re-parsed from source so the
// analyzers get full ASTs with comments plus a complete types.Info.
// Keeping go.mod dependency-free was a design constraint of the suite —
// the analysis engine must never be the reason the module grows a
// third-party requirement.

// Package is one loaded, type-checked package: the unit analyzers run on.
type Package struct {
	// Path is the package's import path. Fixture loads may assign a
	// synthetic path so path-scoped analyzers see the package as the
	// production package it stands in for.
	Path string
	// Fset positions every file and diagnostic of this load.
	Fset *token.FileSet
	// Files are the parsed source files, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries use/def/selection/type resolution for the files.
	Info *types.Info
	// Sources holds each file's raw bytes by filename (the suppression
	// scanner needs to see whether a directive trails code on its line).
	Sources map[string][]byte
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// exportIndex maps import paths to compiled export data files, shared by
// every type-check of one Load (the gc importer caches by path).
type exportIndex map[string]string

func (x exportIndex) lookup(path string) (io.ReadCloser, error) {
	file, ok := x[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q (not in the module's dependency closure)", path)
	}
	return os.Open(file)
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("lint: go list: %s", msg)
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Loader loads packages of one module for analysis.
type Loader struct {
	dir     string // module root (or any directory inside it)
	fset    *token.FileSet
	exports exportIndex
	imp     types.Importer
}

// NewLoader prepares a loader rooted at dir: one `go list -export -deps`
// walk of the whole module primes the export index, so later loads (the
// target packages, or fixture directories in tests) only pay for parsing
// and type-checking their own sources.
func NewLoader(dir string) (*Loader, error) {
	deps, err := goList(dir, "list", "-export", "-deps",
		"-json=ImportPath,Export,Standard", "./...")
	if err != nil {
		return nil, err
	}
	l := &Loader{dir: dir, fset: token.NewFileSet(), exports: exportIndex{}}
	for _, e := range deps {
		if e.Export != "" {
			l.exports[e.ImportPath] = e.Export
		}
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.exports.lookup)
	return l, nil
}

// Fset returns the loader's shared position set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves patterns (e.g. "./...") to the module's packages and
// type-checks each from source. Test files are excluded: the suite
// checks production invariants, and several analyzers are specified as
// non-test-only.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,Standard,Error"}, patterns...)
	targets, err := goList(l.dir, args...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, e := range targets {
		if e.Standard {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", e.ImportPath, e.Error.Err)
		}
		if len(e.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(e.GoFiles))
		for i, gf := range e.GoFiles {
			files[i] = filepath.Join(e.Dir, gf)
		}
		pkg, err := l.check(e.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses every non-test .go file in dir and type-checks them as
// a package with import path asPath. This is the fixture entry point:
// testdata packages are checked under the production import path they
// exercise, so path-scoped analyzers treat them exactly like the real
// package.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	return l.check(asPath, files)
}

// check parses and type-checks one package's files.
func (l *Loader) check(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	sources := make(map[string][]byte, len(filenames))
	for _, fn := range filenames {
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		f, err := parser.ParseFile(l.fset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		sources[fn] = src
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info, Sources: sources}, nil
}
