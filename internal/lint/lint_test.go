package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture harness: each testdata package is type-checked under a
// production import path and run through one analyzer (or the whole
// suite). Expectations live in the fixtures as trailing
//
//	// want "regexp"
//
// comments: every such line must produce a diagnostic matching the
// regexp against its "rule: message" rendering, and every diagnostic
// must be wanted by its line. This is the same golden-comment
// convention the upstream analysis ecosystem uses, minus the
// dependency.

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// fixtureLoader builds one Loader for the whole test binary: priming
// the export-data index shells out to go list once, which dominates the
// suite's runtime.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			loaderErr = err
			return
		}
		loaderVal, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderVal
}

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
}

// fixtureWants scans a fixture directory for // want comments.
func fixtureWants(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixtures: %v", err)
	}
	var wants []expectation
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, m[1], err)
				}
				wants = append(wants, expectation{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return wants
}

// checkFixture loads testdata/<name> as asPath, runs the analyzers, and
// reconciles findings against the fixture's want comments.
func checkFixture(t *testing.T, name, asPath string, analyzers []*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	pkg, err := fixtureLoader(t).LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := Run([]*Package{pkg}, analyzers)
	wants := fixtureWants(t, dir)

	used := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if used[i] || filepath.Base(d.Pos.Filename) != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Rule + ": " + d.Message) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: wanted a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !used[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func TestAPIEnvelope(t *testing.T) {
	checkFixture(t, "apienvelope", "repro/internal/fixtureapi", []*Analyzer{Analyzers.APIEnvelope})
}

func TestCtxFlow(t *testing.T) {
	checkFixture(t, "ctxflow", "repro/internal/fixturectx", []*Analyzer{Analyzers.CtxFlow})
}

func TestLockIO(t *testing.T) {
	// Checked under a lockio-scoped import path: the rule only runs in
	// the write-path packages.
	checkFixture(t, "lockio", "repro/internal/stream", []*Analyzer{Analyzers.LockIO})
}

func TestWALOrder(t *testing.T) {
	checkFixture(t, "walorder", "repro/internal/tsdb", []*Analyzer{Analyzers.WALOrder})
}

func TestObsNames(t *testing.T) {
	checkFixture(t, "obsnames", "repro/internal/fixtureobs", []*Analyzer{Analyzers.ObsNames})
}

func TestHotAlloc(t *testing.T) {
	checkFixture(t, "hotalloc", "repro/internal/fixturehot", []*Analyzer{Analyzers.HotAlloc})
}

func TestCloseCheck(t *testing.T) {
	checkFixture(t, "closecheck", "repro/internal/fixtureclose", []*Analyzer{Analyzers.CloseCheck})
}

// TestSuppression runs the full suite so every rule name in the
// fixture's directives is known; it asserts the directive semantics —
// next-line scope, trailing scope, wrong rule silences nothing, and
// unknown rule / missing reason are themselves diagnostics.
func TestSuppression(t *testing.T) {
	checkFixture(t, "suppress", "repro/internal/fixturesuppress", All())
}

// TestLockIOOutOfScope pins the scoping: the same designated-mutex
// fixture produces nothing outside the write-path package set.
func TestLockIOOutOfScope(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "lockio"), "repro/internal/elsewhere")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{Analyzers.LockIO}); len(diags) != 0 {
		t.Fatalf("lockio fired outside its package scope: %v", diags)
	}
}

// TestRepoClean is the dogfood gate: the suite must hold on the
// codebase that defines it. It is the same check CI's lint job runs
// through cmd/districtlint.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint in -short mode")
	}
	pkgs, err := fixtureLoader(t).Load([]string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("finding: %s", d)
	}
}
