package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// closecheck guards the durability teardown paths: Close, Sync, and
// Flush errors on os.File values and on internal/wal types carry the
// last word on whether journaled data actually reached disk — an
// unchecked wal Close can silently drop the final segment flush, and an
// unchecked file Sync turns fsync-before-rename into plain rename. The
// rule flags calls to error-returning Close/Sync/Flush methods on those
// receivers whose result is discarded: expression statements, defers,
// go statements, and assignments to blank only. Test files are exempt
// (tests tear down temp dirs where the error genuinely has no
// consumer).
var closeCheckAnalyzer = &Analyzer{
	Name: "closecheck",
	Doc:  "Close/Sync/Flush errors on os.File and internal/wal values must be checked (returned or logged)",
	Run:  runCloseCheck,
}

func runCloseCheck(p *Pass) {
	for _, f := range p.Files {
		if name := p.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 || !allBlank(n.Lhs) {
					return true
				}
				call, _ = n.Rhs[0].(*ast.CallExpr)
			default:
				return true
			}
			if call == nil {
				return true
			}
			if obj := calleeOf(p.Info, call); isDurableCloser(obj) {
				recv := recvNamed(obj)
				p.Reportf(call.Pos(), "%s.%s error discarded; a dropped %s on the durability path can lose acked data — return or log it",
					recv.Obj().Name(), obj.Name(), obj.Name())
			}
			return true
		})
	}
}

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		if id, ok := e.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// isDurableCloser matches error-returning Close/Sync/Flush methods
// whose receiver is os.File or any type of internal/wal.
func isDurableCloser(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	switch fn.Name() {
	case "Close", "Sync", "Flush":
	default:
		return false
	}
	if !returnsError(obj) {
		return false
	}
	recv := recvNamed(obj)
	if recv == nil || recv.Obj().Pkg() == nil {
		return false
	}
	switch recv.Obj().Pkg().Path() {
	case "os":
		return recv.Obj().Name() == "File"
	case walPkgPath:
		return true
	}
	return false
}
