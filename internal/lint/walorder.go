package lint

import (
	"go/ast"
	"go/types"
)

// walorder machine-checks the durability invariant at the heart of PR 5:
// inside the tsdb shard workers, a batch is journaled to the WAL before
// it is applied to the in-memory store. Applying first and journaling
// second means a crash between the two acks data that replay cannot
// reconstruct — the one ordering bug the crash-recovery suite exists to
// catch, now caught at compile time instead. Concretely: in any method
// of tsdb.Sharded whose body applies to a Store (Append/AppendBatch),
// the apply must be lexically preceded in the same statement list, or
// dominated by an enclosing statement preceded, by a wal.Log append
// (Append/AppendBatch).
var walOrderAnalyzer = &Analyzer{
	Name: "walorder",
	Doc:  "tsdb shard workers journal to the WAL before applying a batch to the in-memory store",
	Run:  runWALOrder,
}

func runWALOrder(p *Pass) {
	if p.Path != "repro/internal/tsdb" {
		return
	}
	for obj, fd := range p.funcDeclsOf() {
		recv := recvNamed(obj)
		if recv == nil || recv.Obj().Name() != "Sharded" || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != p.Path {
			continue
		}
		checkWALOrder(p, fd.Body)
	}
}

// checkWALOrder walks one Sharded method body in statement order,
// tracking whether a WAL append has happened on the current path. Store
// applies before the first WAL append are findings. Branch bodies
// inherit the flag but cannot set it for the fall-through path (an
// append inside an if does not dominate what follows); a WAL append at
// statement level does.
func checkWALOrder(p *Pass, body *ast.BlockStmt) {
	var walk func(list []ast.Stmt, journaled bool)
	walk = func(list []ast.Stmt, journaled bool) {
		for _, s := range list {
			// A statement that contains a WAL append anywhere (including
			// `if err := log.AppendBatch(...); err != nil` or an
			// assignment) marks the rest of this list journaled — but
			// only after the statement's own subtree is checked with the
			// incoming state.
			checkApplies(p, s, journaled)
			if containsWALAppend(p, s) {
				journaled = true
			}
		}
	}
	walk(body.List, false)
}

// checkApplies flags store applies in the statement's subtree when no
// WAL append dominates them. Nested function literals are skipped: they
// run on their own schedule (worker loops are driven per-batch and are
// walked when their enclosing method is).
func checkApplies(p *Pass, s ast.Stmt, journaled bool) {
	if journaled {
		return
	}
	// Within the statement, a WAL append textually before the apply in
	// the same expression order still satisfies the invariant; handle
	// the common `if err := wal(); ...` shape by tracking a local flag
	// in source order.
	local := false
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeOf(p.Info, call)
		if isWALAppend(obj) {
			local = true
			return true
		}
		if !local && isStoreApply(p, obj) {
			p.Reportf(call.Pos(), "%s applies to the in-memory store before wal.Log append on this path; journal the batch first (WAL-before-store)", obj.Name())
		}
		return true
	})
}

// containsWALAppend reports whether the statement's subtree (function
// literals excluded) performs a wal.Log append.
func containsWALAppend(p *Pass, s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isWALAppend(calleeOf(p.Info, call)) {
			found = true
		}
		return !found
	})
	return found
}

// isWALAppend matches Append/AppendBatch methods of internal/wal types.
func isWALAppend(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != walPkgPath {
		return false
	}
	return fn.Name() == "Append" || fn.Name() == "AppendBatch"
}

// isStoreApply matches the in-memory apply entry points: Append,
// AppendBatch, and appendRun methods on the package's Store type.
func isStoreApply(p *Pass, obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	switch fn.Name() {
	case "Append", "AppendBatch", "appendRun":
	default:
		return false
	}
	recv := recvNamed(obj)
	return recv != nil && recv.Obj().Name() == "Store" &&
		recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == p.Path
}
