package lint

import (
	"go/ast"
	"go/constant"
	"net/http"
)

// apienvelope enforces the PR 1 contract: every service surface fails
// through the internal/api error envelope (api.WriteError and the
// sentinel table), never through http.Error or a hand-rolled error
// status. One error shape across every service is what lets clients,
// the retrying transport, and the middleware chain treat failures
// uniformly; a single raw http.Error reintroduces the pre-PR-1 ad-hoc
// bodies. A handler package is any package wired onto the api layer:
// it imports both net/http and repro/internal/api (the api package
// itself, which implements the envelope, is exempt).
var apiEnvelopeAnalyzer = &Analyzer{
	Name: "apienvelope",
	Doc:  "handler packages fail through the internal/api error envelope, never http.Error or naked error-status writes",
	Run:  runAPIEnvelope,
}

func runAPIEnvelope(p *Pass) {
	if p.Path == apiPkgPath || !p.importsPath(apiPkgPath) || !p.importsPath("net/http") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeOf(p.Info, call)
			if obj == nil {
				return true
			}
			if isPkgFunc(obj, "net/http", "Error") && recvNamed(obj) == nil {
				p.Reportf(call.Pos(), "http.Error bypasses the error envelope; use api.WriteError (sentinels map through api.RegisterStatus)")
				return true
			}
			if isPkgFunc(obj, "net/http", "WriteHeader") && len(call.Args) == 1 {
				if code, ok := constStatus(p, call.Args[0]); ok && code >= http.StatusBadRequest {
					p.Reportf(call.Pos(), "naked WriteHeader(%d) bypasses the error envelope; use api.WriteError or api.WriteErrorStatus", code)
				}
			}
			return true
		})
	}
}

// constStatus evaluates an expression to a constant int status code.
func constStatus(p *Pass, e ast.Expr) (int64, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
