package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// lockio enforces the PR 5 hardening that already regressed once during
// that PR: file IO, fsync, and network calls must never run under the
// hot-path fan-out mutexes — the dedup-window and replay-ring locks,
// and the tsdb store/series locks. An fsync under one of those stalls
// every publisher (or every keyed request, or every reader) behind a
// disk flush. The protected locks are designated explicitly: a
// sync.Mutex or sync.RWMutex struct field whose comment contains the
// marker "districtlint:lockio". The analyzer then walks each function
// in the package, tracks which designated locks are held lexically
// (x.mu.Lock() … x.mu.Unlock(), branch bodies isolated), and flags any
// call that performs IO — directly (os, net, net/http, anything in
// internal/wal) or transitively through a package function or local
// closure that does.
var lockIOAnalyzer = &Analyzer{
	Name: "lockio",
	Doc:  "no file IO, fsync, or network calls lexically under a districtlint:lockio-designated mutex",
	Run:  runLockIO,
}

// lockIOMarker designates a mutex field in its doc or line comment.
const lockIOMarker = "districtlint:lockio"

// lockIOScope is the package set the rule applies to: the write path.
var lockIOScope = map[string]bool{
	walPkgPath:                 true,
	"repro/internal/measuredb": true,
	"repro/internal/stream":    true,
	"repro/internal/tsdb":      true,
}

func runLockIO(p *Pass) {
	if !lockIOScope[p.Path] {
		return
	}
	designated := designatedMutexes(p)
	if len(designated) == 0 {
		return
	}
	decls := p.funcDeclsOf()
	ioFuncs := transitiveIOFuncs(p, decls)
	for _, fd := range decls {
		w := &lockWalker{p: p, designated: designated, ioFuncs: ioFuncs}
		w.closures = localIOClosures(p, fd, ioFuncs)
		w.stmts(fd.Body.List, map[*types.Var]bool{})
	}
}

// designatedMutexes collects the struct fields of type sync.Mutex or
// sync.RWMutex whose comments carry the lockio marker.
func designatedMutexes(p *Pass) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !commentHas(field, lockIOMarker) {
					continue
				}
				for _, name := range field.Names {
					v, ok := p.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if isNamedType(v.Type(), "sync", "Mutex") || isNamedType(v.Type(), "sync", "RWMutex") {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// commentHas reports whether a field's doc or line comment mentions the
// marker.
func commentHas(field *ast.Field, marker string) bool {
	for _, cg := range [...]*ast.CommentGroup{field.Doc, field.Comment} {
		if cg != nil && strings.Contains(cg.Text(), marker) {
			return true
		}
	}
	return false
}

// ioCall classifies one resolved callee as direct IO. The judgment is
// package-based: anything in os (minus pure predicates/env lookups),
// anything in net (minus parsers/formatters), the request/response IO
// of net/http, and every entry point of internal/wal — a WAL call is a
// journal write, a segment scan, or a blocked wait behind one.
func ioCall(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "os":
		switch name {
		case "IsNotExist", "IsExist", "IsPermission", "IsTimeout",
			"Getenv", "LookupEnv", "Environ", "Getpid", "TempDir", "Expand", "ExpandEnv":
			return false
		}
		return true
	case "net":
		switch name {
		case "JoinHostPort", "SplitHostPort", "ParseIP", "ParseCIDR", "CIDRMask", "ParseMAC":
			return false
		}
		return true
	case "net/http":
		switch name {
		case "Do", "RoundTrip", "Get", "Post", "PostForm", "Head",
			"Write", "WriteHeader", "Flush", "Hijack",
			"Serve", "ListenAndServe", "ListenAndServeTLS", "ReadResponse", "ReadRequest":
			return true
		}
		return false
	case walPkgPath:
		switch name {
		case "String", "ParseMode", "withDefaults", "LastSeq", "Segments":
			return false
		}
		return true
	}
	return false
}

// transitiveIOFuncs computes, by fixpoint over the package call graph,
// which package-level functions perform IO directly or through another
// package function.
func transitiveIOFuncs(p *Pass, decls map[*types.Func]*ast.FuncDecl) map[types.Object]bool {
	io := map[types.Object]bool{}
	calls := map[types.Object][]types.Object{}
	for obj, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(p.Info, call)
			if callee == nil {
				return true
			}
			if ioCall(callee) {
				io[obj] = true
			} else if _, local := decls[calleeObjAsFunc(callee)]; local {
				calls[obj] = append(calls[obj], callee)
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for obj, callees := range calls {
			if io[obj] {
				continue
			}
			for _, c := range callees {
				if io[c] {
					io[obj] = true
					changed = true
					break
				}
			}
		}
	}
	return io
}

// calleeObjAsFunc narrows an object to *types.Func (nil otherwise),
// usable as a decls key.
func calleeObjAsFunc(obj types.Object) *types.Func {
	fn, _ := obj.(*types.Func)
	return fn
}

// localIOClosures classifies the function literals bound to local
// variables inside fd (name := func(){…}) that perform IO, so a
// flush()-style helper defined before the lock is still caught when
// called under it.
func localIOClosures(p *Pass, fd *ast.FuncDecl, ioFuncs map[types.Object]bool) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok {
				continue
			}
			ident, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.Defs[ident]
			if obj == nil {
				obj = p.Info.Uses[ident]
			}
			if obj == nil {
				continue
			}
			hasIO := false
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeOf(p.Info, call); callee != nil && (ioCall(callee) || ioFuncs[callee]) {
					hasIO = true
				}
				return !hasIO
			})
			if hasIO {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// lockWalker tracks lexically held designated mutexes through one
// function body.
type lockWalker struct {
	p          *Pass
	designated map[*types.Var]bool
	ioFuncs    map[types.Object]bool
	closures   map[types.Object]bool
}

// stmts walks a statement list, updating held in place. Branch bodies
// run on clones: an unlock on an early-return path must not mark the
// fall-through path unlocked.
func (w *lockWalker) stmts(list []ast.Stmt, held map[*types.Var]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held map[*types.Var]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if field, op, ok := w.lockOp(call); ok {
				if op == "Lock" || op == "RLock" {
					held[field] = true
				} else {
					delete(held, field)
				}
				return
			}
		}
		w.check(s, held)
	case *ast.DeferStmt:
		if field, op, ok := w.lockOp(s.Call); ok {
			// defer x.mu.Unlock(): held for the rest of the function —
			// leave the state as is. A deferred Lock would be a bug but
			// not this rule's.
			_ = field
			_ = op
			return
		}
		w.check(s, held)
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.check(s.Cond, held)
		w.stmts(s.Body.List, clone(held))
		if s.Else != nil {
			w.stmt(s.Else, clone(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.check(s.Cond, held)
		}
		w.stmts(s.Body.List, clone(held))
	case *ast.RangeStmt:
		w.check(s.X, held)
		w.stmts(s.Body.List, clone(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.check(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.GoStmt:
		// A goroutine launched under the lock does not hold it.
		return
	default:
		w.check(s, held)
	}
}

func clone(held map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// lockOp recognizes x.<field>.Lock/Unlock/RLock/RUnlock() on a
// designated field.
func (w *lockWalker) lockOp(call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	field, ok := w.p.Info.Uses[recv.Sel].(*types.Var)
	if !ok || !w.designated[field] {
		return nil, "", false
	}
	return field, op, true
}

// check flags IO calls inside one statement or expression while any
// designated mutex is held. Function literals are not descended into:
// their bodies execute when called, and calls through them are caught
// via the closure classification.
func (w *lockWalker) check(n ast.Node, held map[*types.Var]bool) {
	if len(held) == 0 {
		return
	}
	var name string
	for f := range held {
		name = f.Name()
		break
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(w.p.Info, call)
		if callee == nil {
			return true
		}
		switch {
		case ioCall(callee):
			w.p.Reportf(call.Pos(), "%s performs file or network IO under designated mutex %q", callee.Name(), name)
		case w.ioFuncs[callee]:
			w.p.Reportf(call.Pos(), "call to %s runs file or network IO under designated mutex %q", callee.Name(), name)
		case w.closures[callee]:
			w.p.Reportf(call.Pos(), "closure %s runs file or network IO under designated mutex %q", callee.Name(), name)
		}
		return true
	})
}
