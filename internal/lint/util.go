package lint

import (
	"go/ast"
	"go/types"
)

// Shared type-resolution helpers for the analyzers. Everything works on
// object identity resolved by go/types, matched back to packages and
// names by string — analyzers never pattern-match source text.

// walPkgPath is the durable-log package every IO-ordering rule keys on.
const walPkgPath = "repro/internal/wal"

// apiPkgPath is the versioned API layer (error envelope owner).
const apiPkgPath = "repro/internal/api"

// obsPkgPath is the instrument registry the naming rules key on.
const obsPkgPath = "repro/internal/obs"

// calleeOf resolves the object a call expression invokes: a *types.Func
// for direct function and method calls, a *types.Var for calls through
// a function-valued variable (closures), nil for type conversions and
// calls of anonymous function literals.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call (os.Open): the selector identifier
		// resolves directly.
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function (or any
// function, method included) pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// pkgPathOf returns the defining package path of obj ("" for builtins).
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// recvNamed returns the named type of a method's receiver, pointers
// dereferenced, or nil when obj is not a method.
func recvNamed(obj types.Object) *types.Named {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// namedOf unwraps pointers down to a named type (nil if the underlying
// type is unnamed).
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (pointers dereferenced) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// importsPath reports whether the package imports path (directly).
func (p *Package) importsPath(path string) bool {
	for _, imp := range p.Types.Imports() {
		if imp.Path() == path {
			return true
		}
	}
	return false
}

// returnsError reports whether a function object's last result is error.
func returnsError(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named := namedOf(last)
	return named != nil && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// funcDeclsOf yields every function declaration of the package with a
// body, paired with its defining object.
func (p *Package) funcDeclsOf() map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}
