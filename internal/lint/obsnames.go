package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// obsnames enforces the observability naming contract the internal/obs
// registry relies on: every instrument name is a compile-time constant
// in the repro_ snake_case namespace, carries the unit suffix its type
// implies (counters count events → _total; histograms measure a unit →
// _seconds/_bytes/_rows/_series; gauges are instantaneous readings and
// must not borrow _total), and label keys are constant strings. The
// registry keys series by name+labels, so a dynamic name or label key
// is an unbounded-cardinality leak: every distinct runtime value mints
// a new series that lives until process exit and bloats every scrape.
// Dynamic label VALUES are fine — cardinality there is a deliberate,
// visible choice (per-shard, per-route).
var obsNamesAnalyzer = &Analyzer{
	Name: "obsnames",
	Doc:  "obs instruments use constant repro_-prefixed snake_case names with type-implied unit suffixes, and constant label keys",
	Run:  runObsNames,
}

// metricNameRe is the allowed name shape: repro_ prefix, lower
// snake_case throughout.
var metricNameRe = regexp.MustCompile(`^repro_[a-z0-9_]+$`)

// labelKeyRe is the allowed label-key shape.
var labelKeyRe = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)

// histogramSuffixes are the unit suffixes a histogram name may end in.
var histogramSuffixes = []string{"_seconds", "_bytes", "_rows", "_series"}

// registryMethods maps each *obs.Registry constructor to the index of
// its name argument (labels are checked structurally, wherever the
// obs.Labels value is built).
var registryMethods = map[string]bool{
	"Counter": true, "CounterFunc": true,
	"Gauge": true, "GaugeFunc": true,
	"Histogram": true,
}

func runObsNames(p *Pass) {
	// The obs package itself (registry internals, its own tests'
	// scratch names) is exempt; everything that imports it is in scope.
	if p.Path == obsPkgPath || !p.importsPath(obsPkgPath) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRegistryCall(p, n)
			case *ast.CompositeLit:
				checkLabelsLiteral(p, n)
			case *ast.AssignStmt:
				checkLabelsIndexWrite(p, n)
			}
			return true
		})
	}
}

// checkRegistryCall validates the name argument of a Registry
// constructor call against the prefix and type-suffix rules.
func checkRegistryCall(p *Pass, call *ast.CallExpr) {
	obj := calleeOf(p.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok || !registryMethods[fn.Name()] {
		return
	}
	recv := recvNamed(obj)
	if recv == nil || recv.Obj().Name() != "Registry" || pkgPathOf(recv.Obj()) != obsPkgPath {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	kind := fn.Name()
	name, ok := constString(p, call.Args[0])
	if !ok {
		p.Reportf(call.Args[0].Pos(), "%s name must be a compile-time constant string (dynamic names are unbounded series cardinality)", kind)
		return
	}
	if !metricNameRe.MatchString(name) {
		p.Reportf(call.Args[0].Pos(), "metric name %q must match %s", name, metricNameRe)
		return
	}
	switch kind {
	case "Counter", "CounterFunc":
		if !strings.HasSuffix(name, "_total") {
			p.Reportf(call.Args[0].Pos(), "counter %q must end in _total", name)
		}
	case "Gauge", "GaugeFunc":
		if strings.HasSuffix(name, "_total") {
			p.Reportf(call.Args[0].Pos(), "gauge %q must not end in _total (that suffix marks counters)", name)
		}
	case "Histogram":
		ok := false
		for _, suf := range histogramSuffixes {
			if strings.HasSuffix(name, suf) {
				ok = true
				break
			}
		}
		if !ok {
			p.Reportf(call.Args[0].Pos(), "histogram %q must end in a unit suffix (%s)", name, strings.Join(histogramSuffixes, ", "))
		}
	}
}

// checkLabelsLiteral requires constant, well-shaped keys in every
// obs.Labels composite literal. Checking at construction (rather than
// at the registry call) keeps the common pull-the-literal-into-a-
// variable refactor legal while still covering every key.
func checkLabelsLiteral(p *Pass, lit *ast.CompositeLit) {
	tv, ok := p.Info.Types[lit]
	if !ok || !isNamedType(tv.Type, obsPkgPath, "Labels") {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := constString(p, kv.Key)
		if !ok {
			p.Reportf(kv.Key.Pos(), "obs.Labels key must be a compile-time constant string (dynamic keys are unbounded series cardinality)")
			continue
		}
		if !labelKeyRe.MatchString(key) {
			p.Reportf(kv.Key.Pos(), "obs.Labels key %q must match %s", key, labelKeyRe)
		}
	}
}

// checkLabelsIndexWrite catches the literal-bypass: indexing a
// non-constant key into an obs.Labels value after construction.
func checkLabelsIndexWrite(p *Pass, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		tv, ok := p.Info.Types[idx.X]
		if !ok || !isNamedType(tv.Type, obsPkgPath, "Labels") {
			continue
		}
		if _, ok := constString(p, idx.Index); !ok {
			p.Reportf(idx.Index.Pos(), "obs.Labels key must be a compile-time constant string (dynamic keys are unbounded series cardinality)")
		}
	}
}

// constString evaluates an expression to a constant string.
func constString(p *Pass, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
