// Package lint is districtlint's engine: a zero-dependency static
// analysis suite over the standard library's go/parser and go/types
// that machine-checks the project invariants PRs 1–5 established by
// convention — error-envelope discipline in handler packages, context
// threading, no IO under fan-out locks, WAL-before-store ordering, and
// checked Close/Sync on durability paths. Each invariant is one
// Analyzer; cmd/districtlint loads every package of the module and runs
// the suite, and LINTING.md documents what each rule enforces and why.
//
// Findings can be suppressed, one line at a time, with a directive
// comment naming the rule and the reason:
//
//	//lint:ignore lockio held lock is local; append cannot block
//	x.mu.Lock()
//
// A directive on its own line silences the named rule on the next
// line; a trailing directive silences its own line. The reason is
// mandatory, and a directive naming a rule the suite does not have is
// itself a diagnostic — a typoed suppression must never silently stop
// suppressing.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, located at a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Analyzer is one rule of the suite.
type Analyzer struct {
	// Name is the rule name used in output and //lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the rule encodes.
	Doc string
	// Run reports the rule's findings on one package through the pass.
	Run func(*Pass)
}

// Pass hands one package to one analyzer.
type Pass struct {
	*Package
	rule    string
	collect *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.collect = append(*p.collect, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Analyzers.APIEnvelope,
		Analyzers.CloseCheck,
		Analyzers.CtxFlow,
		Analyzers.HotAlloc,
		Analyzers.LockIO,
		Analyzers.ObsNames,
		Analyzers.WALOrder,
	}
}

// Analyzers names each rule of the suite individually (tests run them
// in isolation against their fixture packages).
var Analyzers = struct {
	APIEnvelope *Analyzer
	CloseCheck  *Analyzer
	CtxFlow     *Analyzer
	HotAlloc    *Analyzer
	LockIO      *Analyzer
	ObsNames    *Analyzer
	WALOrder    *Analyzer
}{
	APIEnvelope: apiEnvelopeAnalyzer,
	CloseCheck:  closeCheckAnalyzer,
	CtxFlow:     ctxFlowAnalyzer,
	HotAlloc:    hotAllocAnalyzer,
	LockIO:      lockIOAnalyzer,
	ObsNames:    obsNamesAnalyzer,
	WALOrder:    walOrderAnalyzer,
}

// Run applies analyzers to every package, resolves //lint:ignore
// suppressions, and returns the surviving findings ordered by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{Package: pkg, rule: a.Name, collect: &diags})
		}
		supp, meta := collectIgnores(pkg, known)
		for _, d := range diags {
			if supp[suppKey{file: d.Pos.Filename, line: d.Pos.Line, rule: d.Rule}] {
				continue
			}
			out = append(out, d)
		}
		out = append(out, meta...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// ignorePrefix introduces a suppression directive comment.
const ignorePrefix = "//lint:ignore"

// suppKey addresses one suppressed (file, line, rule).
type suppKey struct {
	file string
	line int
	rule string
}

// collectIgnores scans a package's comments for //lint:ignore
// directives. It returns the suppression set and the directives' own
// diagnostics (unknown rule name, missing reason) — those are reported
// under the "lint" pseudo-rule and are not themselves suppressible.
func collectIgnores(pkg *Package, known map[string]bool) (map[suppKey]bool, []Diagnostic) {
	supp := make(map[suppKey]bool)
	var meta []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				rule, reason, _ := strings.Cut(rest, " ")
				// Fixture files annotate expectations with trailing
				// "// want" markers; they are not part of the reason.
				if i := strings.Index(reason, "// want"); i >= 0 {
					reason = reason[:i]
				}
				reason = strings.TrimSpace(reason)
				if rule == "" || !known[rule] {
					meta = append(meta, Diagnostic{
						Pos:  pos,
						Rule: "lint",
						Message: fmt.Sprintf(
							"//lint:ignore names unknown rule %q (rules: %s)", rule, ruleNames(known)),
					})
					continue
				}
				if reason == "" {
					meta = append(meta, Diagnostic{
						Pos:     pos,
						Rule:    "lint",
						Message: fmt.Sprintf("//lint:ignore %s needs a reason", rule),
					})
					continue
				}
				// A directive alone on its line suppresses the next
				// line; trailing a statement, it suppresses its own.
				line := pos.Line + 1
				if trailsCode(pkg.Sources[pos.Filename], pos) {
					line = pos.Line
				}
				supp[suppKey{file: pos.Filename, line: line, rule: rule}] = true
			}
		}
	}
	return supp, meta
}

// trailsCode reports whether the directive at pos has code before it on
// its line (a trailing comment) rather than only whitespace.
func trailsCode(src []byte, pos token.Position) bool {
	if src == nil || pos.Offset > len(src) {
		return pos.Column > 1
	}
	for i := pos.Offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return false
		case ' ', '\t', '\r':
			continue
		default:
			return true
		}
	}
	return false
}

// ruleNames renders the known rule set for the unknown-rule message.
func ruleNames(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
