// Package fixture exercises the walorder analyzer. It is type-checked
// under the tsdb import path, so its local Sharded and Store types are
// the ones the rule keys on: a Store apply in a Sharded method must be
// dominated by a wal.Log append.
package fixture

import "repro/internal/wal"

type Store struct{}

func (*Store) Append(p []byte) error         { return nil }
func (*Store) AppendBatch(ps [][]byte) error { return nil }

type Sharded struct {
	log   *wal.Log
	store *Store
}

func (s *Sharded) applyFirst(p []byte) {
	_ = s.store.Append(p) // want "walorder: Append applies to the in-memory store before wal.Log append"
	_, _ = s.log.Append(p)
}

func (s *Sharded) neverJournaled(p []byte) {
	_ = s.store.AppendBatch([][]byte{p}) // want "walorder: AppendBatch applies to the in-memory store"
}

func (s *Sharded) journalFirst(p []byte) {
	_, _ = s.log.Append(p)
	_ = s.store.Append(p)
}

func (s *Sharded) journalInInit(p []byte) error {
	if _, err := s.log.AppendBatch([][]byte{p}); err != nil {
		return err
	}
	return s.store.Append(p)
}

func (s *Sharded) branchDoesNotDominate(p []byte) {
	if len(p) > 0 {
		_, _ = s.log.Append(p)
	}
	// The append above sits inside a branch of an earlier statement; at
	// statement level it still dominates everything after that if.
	_ = s.store.Append(p)
}

// notSharded has a Store apply with no WAL, but the receiver is not
// Sharded: the rule is about the shard workers, not every user of a
// Store.
type notSharded struct{ store *Store }

func (n *notSharded) apply(p []byte) {
	_ = n.store.Append(p)
}
