// Fixture for the obsnames rule: instrument names registered through
// the obs registry must be constant repro_-prefixed snake_case with the
// unit suffix their type implies, and label keys must be constant.
package fixtureobs

import "repro/internal/obs"

var reg = obs.NewRegistry()

const goodName = "repro_fixture_events_total"

func value() float64 { return 0 }

func register(dynamic string) {
	// Conforming registrations: constant names, right suffixes,
	// constant label keys (dynamic label VALUES are fine).
	reg.Counter(goodName, "events", nil)
	reg.CounterFunc("repro_fixture_drops_total", "drops", obs.Labels{"shard": dynamic}, value)
	reg.Gauge("repro_fixture_queue_depth", "depth", nil)
	reg.GaugeFunc("repro_fixture_snapshot_age_seconds", "age", nil, value)
	reg.Histogram("repro_fixture_fsync_seconds", "fsync", obs.FastLatencyBuckets, nil)
	reg.Histogram("repro_fixture_group_rows", "group", obs.CountBuckets, nil)

	// A labels literal hoisted into a variable stays legal.
	shard := obs.Labels{"shard": "0"}
	reg.Gauge("repro_fixture_wal_pending_rows", "pending", shard)

	reg.Counter("repro_fixture_events", "no suffix", nil)    // want "obsnames: counter .repro_fixture_events. must end in _total"
	reg.Gauge("repro_fixture_rows_total", "counterish", nil) // want "obsnames: gauge .repro_fixture_rows_total. must not end in _total"
	reg.Histogram("repro_fixture_latency", "no unit",        // want "obsnames: histogram .repro_fixture_latency. must end in a unit suffix"
		obs.LatencyBuckets, nil)
	reg.Counter("fixture_events_total", "no prefix", nil) // want "obsnames: metric name .fixture_events_total. must match"
	reg.Counter("repro_Fixture_total", "case", nil)       // want "obsnames: metric name .repro_Fixture_total. must match"
	reg.Counter(dynamic, "dynamic name", nil)             // want "obsnames: Counter name must be a compile-time constant string"

	reg.Gauge("repro_fixture_depth", "labels",
		obs.Labels{dynamic: "x"}) // want "obsnames: obs.Labels key must be a compile-time constant string"
	reg.Gauge("repro_fixture_width", "labels",
		obs.Labels{"Bad-Key": "x"}) // want "obsnames: obs.Labels key .Bad-Key. must match"

	// The literal-bypass: writing a dynamic key after construction.
	shard[dynamic] = "x" // want "obsnames: obs.Labels key must be a compile-time constant string"
	shard["ok"] = dynamic
}
