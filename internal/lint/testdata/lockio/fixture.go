// Package fixture exercises the lockio analyzer: file and network IO
// must not run while a districtlint:lockio-designated mutex is held,
// directly or through package functions and local closures.
package fixture

import (
	"os"
	"sync"
)

type thing struct {
	// mu is the designated hot-path lock.
	mu sync.Mutex // districtlint:lockio
	// plain is an ordinary lock; IO under it is fine.
	plain sync.Mutex
	f     *os.File
}

func cond() bool { return false }

func (t *thing) direct() {
	t.mu.Lock()
	_ = t.f.Sync() // want "lockio: Sync performs file or network IO under designated mutex \"mu\""
	t.mu.Unlock()
	_ = t.f.Sync() // after the unlock: fine
}

func (t *thing) deferred() {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.f.Sync() // want "lockio: Sync performs file or network IO"
}

func (t *thing) branchHeld() {
	t.mu.Lock()
	if cond() {
		t.mu.Unlock()
		return
	}
	_ = t.f.Sync() // want "lockio: Sync performs" — the early-return unlock does not cover the fall-through
	t.mu.Unlock()
}

func (t *thing) undesignated() {
	t.plain.Lock()
	_ = t.f.Sync() // plain is not designated: fine
	t.plain.Unlock()
}

func (t *thing) transitive() {
	t.mu.Lock()
	t.helper() // want "lockio: call to helper runs file or network IO"
	t.mu.Unlock()
}

func (t *thing) helper() {
	_, _ = os.Create("x")
}

func (t *thing) closure() {
	flush := func() {
		_, _ = os.Create("y")
	}
	t.mu.Lock()
	flush() // want "lockio: closure flush runs file or network IO"
	t.mu.Unlock()
}

func (t *thing) spawned() {
	t.mu.Lock()
	go t.helper() // the goroutine does not hold the lock: fine
	t.mu.Unlock()
}

func (t *thing) pure() {
	t.mu.Lock()
	_ = os.Getenv("HOME") // env lookup is not IO in this rule's sense
	t.mu.Unlock()
}
