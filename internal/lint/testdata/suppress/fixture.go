// Package fixture exercises the //lint:ignore directive semantics: a
// correct directive silences exactly the named rule on exactly the next
// line (or its own line when trailing); a wrong rule silences nothing;
// an unknown rule or a missing reason is itself a diagnostic.
package fixture

import "os"

func ownLine(f *os.File) {
	//lint:ignore closecheck fixture: own-line directive covers the next line
	f.Close()
	f.Close() // want "closecheck: File.Close error discarded" — one line only
}

func trailing(f *os.File) {
	f.Close() //lint:ignore closecheck fixture: trailing directive covers its own line
}

func wrongRule(f *os.File) {
	//lint:ignore ctxflow fixture: names a known rule, but not the one firing
	f.Close() // want "closecheck: File.Close error discarded"
}

func unknownRule(f *os.File) {
	//lint:ignore nosuchrule bogus // want "lint: //lint:ignore names unknown rule \"nosuchrule\""
	f.Close() // want "closecheck: File.Close error discarded"
}

func missingReason(f *os.File) {
	//lint:ignore closecheck // want "lint: //lint:ignore closecheck needs a reason"
	f.Close() // want "closecheck: File.Close error discarded"
}
