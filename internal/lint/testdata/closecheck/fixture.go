// Package fixture exercises the closecheck analyzer: Close/Sync/Flush
// errors on os.File and internal/wal values must reach a consumer.
package fixture

import (
	"os"

	"repro/internal/wal"
)

func fileDiscards(f *os.File) {
	f.Close()       // want "closecheck: File.Close error discarded"
	_ = f.Sync()    // want "closecheck: File.Sync error discarded"
	defer f.Close() // want "closecheck: File.Close error discarded"
	go f.Close()    // want "closecheck: File.Close error discarded"
}

func fileChecked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func fileCaptured(f *os.File) {
	err := f.Close() // captured into a named variable: checked
	_ = err
}

func walDiscards(l *wal.Log) {
	l.Close()    // want "closecheck: Log.Close error discarded"
	_ = l.Sync() // want "closecheck: Log.Sync error discarded"
}

func walChecked(l *wal.Log) error {
	return l.Close()
}

func snapshotReader(sr *wal.SnapshotReader) {
	_ = sr.Close() // want "closecheck: SnapshotReader.Close error discarded"
}

type notDurable struct{}

func (notDurable) Close() error { return nil }

func otherReceivers(n notDurable) {
	n.Close() // not an os.File or wal value: fine
}

func voidClose(ch chan int) {
	close(ch) // the builtin: fine
}
