// Package fixturehot exercises the hotalloc rule: fmt formatting and
// encoding/json reflection are banned inside functions carrying
// the hotpath marker, and nowhere else.
package fixturehot

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
)

type row struct {
	Device string  `json:"device"`
	V      float64 `json:"value"`
}

// decodeRow is a per-row decode loop body.
//
// districtlint:hotpath
func decodeRow(b []byte) (row, error) {
	var r row
	if err := json.Unmarshal(b, &r); err != nil { // want "hotalloc: json\.Unmarshal allocates per call in hot path \"decodeRow\""
		return row{}, fmt.Errorf("bad row: %v", err) // want "hotalloc: fmt\.Errorf allocates per call"
	}
	return r, nil
}

// formatRow renders a row the slow way.
//
// districtlint:hotpath
func formatRow(r row) string {
	return fmt.Sprintf("%s=%g", r.Device, r.V) // want "hotalloc: fmt\.Sprintf allocates per call"
}

// encodeRow boxes an encoder per call.
//
// districtlint:hotpath
func encodeRow(r row) ([]byte, error) {
	return json.Marshal(r) // want "hotalloc: json\.Marshal allocates per call"
}

// appendRow is annotated and clean: strconv append formatting and a
// lazily built static error are the sanctioned idiom.
//
// districtlint:hotpath
func appendRow(dst []byte, r row) ([]byte, error) {
	if r.Device == "" {
		return dst, errors.New("empty device")
	}
	dst = append(dst, r.Device...)
	dst = append(dst, '=')
	return strconv.AppendFloat(dst, r.V, 'g', -1, 64), nil
}

// coldFormat is not annotated: the same calls are fine off the hot
// path.
func coldFormat(r row) string {
	return fmt.Sprintf("%s=%g", r.Device, r.V)
}
