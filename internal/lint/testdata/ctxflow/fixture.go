// Package fixture exercises the ctxflow analyzer: functions with a
// context.Context parameter must thread it instead of minting fresh
// roots; functions without one are free to.
package fixture

import "context"

func withCtx(ctx context.Context) {
	_ = context.Background() // want "ctxflow: context.Background\(\) while a context.Context is in scope"
	_ = context.TODO()       // want "ctxflow: context.TODO\(\) while a context.Context is in scope"
	use(ctx)
}

func withCtxClosure(ctx context.Context) {
	go func() {
		// The closure lexically sees ctx, so a fresh root is still a
		// detach.
		_ = context.Background() // want "ctxflow: context.Background\(\)"
	}()
}

func withoutCtx() {
	// No ctx in scope: background loops mint their own roots.
	ctx := context.Background()
	use(ctx)
}

func litOwnCtx() {
	fn := func(ctx context.Context) {
		_ = context.TODO() // want "ctxflow: context.TODO\(\)"
	}
	fn(context.Background())
}

func use(context.Context) {}
