// Package fixture exercises the apienvelope analyzer: it is
// type-checked under a handler-package import path and imports both
// net/http and the api layer, so every raw error write must be flagged
// and every envelope write must not.
package fixture

import (
	"errors"
	"net/http"

	"repro/internal/api"
)

var errBroken = errors.New("broken")

func bad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusBadRequest)  // want "apienvelope: http.Error bypasses the error envelope"
	w.WriteHeader(http.StatusInternalServerError) // want "apienvelope: naked WriteHeader\(500\) bypasses the error envelope"
	w.WriteHeader(404)                            // want "apienvelope: naked WriteHeader\(404\)"
}

func good(w http.ResponseWriter, r *http.Request) {
	api.WriteError(w, r, errBroken)
	api.WriteErrorStatus(w, r, http.StatusBadGateway, errBroken)
	w.WriteHeader(http.StatusNoContent) // success statuses are not error writes
	w.WriteHeader(http.StatusOK)
}

func dynamic(w http.ResponseWriter, r *http.Request, status int) {
	// A non-constant status is the envelope's own job (api.WriteError
	// calls WriteHeader internally); only literal error statuses in
	// handler code are naked writes.
	w.WriteHeader(status)
}

type ownError struct{}

// Error is a method named like http.Error on a local type: not flagged.
func (ownError) Error(w http.ResponseWriter, msg string, code int) {}

func ownType(w http.ResponseWriter) {
	var e ownError
	e.Error(w, "fine", 500)
}
