package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxflow enforces the PR 1 context-propagation contract in internal
// packages: a function that was handed a context.Context must thread it
// — calling context.Background() or context.TODO() with a ctx in
// lexical scope detaches the work from the caller's deadline and
// cancellation, exactly the bug class the context-aware client redesign
// removed. Functions without a ctx parameter (legacy shims, background
// loops, fire-and-forget publishers) are free to mint their own roots.
var ctxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "no context.Background()/TODO() while a context.Context parameter is in scope; thread the caller's ctx",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	if !strings.HasPrefix(p.Path, "repro/internal/") {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok {
				continue
			}
			checkCtxScope(p, fd.Body, hasCtxParam(sig))
		}
	}
}

// checkCtxScope walks a function body; inScope is whether an enclosing
// function's signature carries a context.Context. Function literals
// inherit the lexical scope (a closure sees its parent's ctx) and may
// add their own ctx parameter.
func checkCtxScope(p *Pass, body ast.Node, inScope bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := false
			if tv, ok := p.Info.Types[n]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok {
					lit = hasCtxParam(sig)
				}
			}
			checkCtxScope(p, n.Body, inScope || lit)
			return false
		case *ast.CallExpr:
			if !inScope {
				return true
			}
			obj := calleeOf(p.Info, n)
			for _, name := range [...]string{"Background", "TODO"} {
				if isPkgFunc(obj, "context", name) {
					p.Reportf(n.Pos(), "context.%s() while a context.Context is in scope; thread the caller's ctx instead", name)
				}
			}
		}
		return true
	})
}

// hasCtxParam reports whether any parameter of sig is context.Context.
func hasCtxParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isNamedType(sig.Params().At(i).Type(), "context", "Context") {
			return true
		}
	}
	return false
}
