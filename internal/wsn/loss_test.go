package wsn

import (
	"testing"
	"time"

	"repro/internal/dataformat"
	"repro/internal/deviceproxy"
	"repro/internal/protocol/ieee802154"
	"repro/internal/tsdb"
)

// Failure injection: the proxy's dedicated layer over a lossy radio.
// Individual polls may fail (counted as PollErrs), but the pipeline must
// keep making progress and never corrupt the local database.

func TestDeviceProxyOverLossyRadio(t *testing.T) {
	radio := ieee802154.NewRadio(ieee802154.RadioOptions{LossProb: 0.4, Seed: 99})
	defer radio.Close()
	node, err := NewNode802154(radio, 1, 0x10, map[dataformat.Quantity]Signal{
		dataformat.Temperature: {Base: 21},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	drv, err := NewDriver802154(radio, 1, 0x01, 0x10, 1)
	if err != nil {
		t.Fatal(err)
	}
	drv.timeout = 100 * time.Millisecond

	proxy, err := deviceproxy.New(deviceproxy.Options{
		DeviceURI: "urn:district:turin/building:b00/device:lossy",
		Driver:    drv,
		PollEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.Run("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const polls = 40
	for i := 0; i < polls; i++ {
		proxy.PollOnce()
	}
	st := proxy.Stats()
	if st.Polls != polls {
		t.Fatalf("polls = %d", st.Polls)
	}
	// At 40% per-delivery loss a poll (request + response) succeeds
	// ~36% of the time; with 40 polls, both outcomes must occur.
	if st.Samples == 0 {
		t.Fatal("no poll ever succeeded under 40% loss")
	}
	if st.PollErrs == 0 {
		t.Fatal("no poll ever failed under 40% loss (loss injection broken?)")
	}
	// The local database holds exactly the successful samples, ordered.
	key := tsdb.SeriesKey{Device: "urn:district:turin/building:b00/device:lossy", Quantity: "temperature"}
	samples, err := proxy.LocalDB().Query(key, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(samples)) != st.Samples {
		t.Errorf("local DB has %d samples, stats say %d", len(samples), st.Samples)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].At.Before(samples[i-1].At) {
			t.Fatal("local DB ordering violated under loss")
		}
	}
}

// Failure injection: a device that disappears mid-operation. The proxy
// keeps serving its buffered history.
func TestDeviceProxyDeviceDisappears(t *testing.T) {
	radio := ieee802154.NewRadio(ieee802154.RadioOptions{Seed: 7})
	defer radio.Close()
	node, err := NewNode802154(radio, 1, 0x10, map[dataformat.Quantity]Signal{
		dataformat.Temperature: {Base: 21},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	drv, err := NewDriver802154(radio, 1, 0x01, 0x10, 1)
	if err != nil {
		t.Fatal(err)
	}
	drv.timeout = 100 * time.Millisecond
	proxy, err := deviceproxy.New(deviceproxy.Options{
		DeviceURI: "urn:district:turin/building:b00/device:gone",
		Driver:    drv,
		PollEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.Run("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	proxy.PollOnce()
	if proxy.Stats().Samples != 1 {
		t.Fatalf("initial poll failed: %+v", proxy.Stats())
	}
	node.Close() // battery died

	proxy.PollOnce()
	st := proxy.Stats()
	if st.PollErrs != 1 {
		t.Fatalf("dead device not detected: %+v", st)
	}
	// Buffered history still served.
	key := tsdb.SeriesKey{Device: "urn:district:turin/building:b00/device:gone", Quantity: "temperature"}
	if _, err := proxy.LocalDB().Latest(key); err != nil {
		t.Fatalf("history lost after device death: %v", err)
	}
}
