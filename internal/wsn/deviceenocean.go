package wsn

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/dataformat"
	"repro/internal/deviceproxy"
	"repro/internal/protocol/enocean"
)

// SerialLink simulates the serial line between an EnOcean gateway module
// and its host: a byte stream devices write ESP3 packets into and the
// driver drains.
type SerialLink struct {
	mu  sync.Mutex
	buf []byte
}

// Write appends bytes to the link (device side).
func (l *SerialLink) Write(p []byte) (int, error) {
	l.mu.Lock()
	l.buf = append(l.buf, p...)
	l.mu.Unlock()
	return len(p), nil
}

// Drain removes and returns all buffered bytes (host side).
func (l *SerialLink) Drain() []byte {
	l.mu.Lock()
	out := l.buf
	l.buf = nil
	l.mu.Unlock()
	return out
}

// NodeEnOcean is an energy-harvesting EnOcean device: it spontaneously
// transmits telegrams for its profile on a period (as real harvesting
// devices do) and, when it models an actuator, answers switch telegrams
// addressed to it.
type NodeEnOcean struct {
	link    *SerialLink
	profile enocean.EEP
	sender  uint32
	rng     *rand.Rand

	mu      sync.Mutex
	signal  map[dataformat.Quantity]Signal
	state   float64 // actuator state for switch/contact profiles
	stopCh  chan struct{}
	wg      sync.WaitGroup
	started bool
}

// NewNodeEnOcean creates a virtual EnOcean device on the link.
func NewNodeEnOcean(link *SerialLink, profile enocean.EEP, sender uint32, signals map[dataformat.Quantity]Signal, seed int64) *NodeEnOcean {
	return &NodeEnOcean{
		link: link, profile: profile, sender: sender,
		rng: rand.New(rand.NewSource(seed)), signal: signals,
		stopCh: make(chan struct{}),
	}
}

// Start begins spontaneous emission with the given period.
func (n *NodeEnOcean) Start(every time.Duration) {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				n.Emit()
			case <-n.stopCh:
				return
			}
		}
	}()
}

// Emit transmits one telegram for the current state. Exposed so tests
// and benchmarks can force an emission.
func (n *NodeEnOcean) Emit() {
	now := time.Now()
	n.mu.Lock()
	readings := make([]enocean.Reading, 0, len(n.signal)+1)
	for q, sig := range n.signal {
		readings = append(readings, enocean.Reading{
			Quantity: q, Value: sig.valueAt(now, n.rng),
		})
	}
	switch n.profile {
	case enocean.EEPRockerF60201:
		readings = append(readings, enocean.Reading{Quantity: dataformat.SwitchState, Value: n.state})
	case enocean.EEPContactD50001:
		readings = append(readings, enocean.Reading{Quantity: dataformat.ContactState, Value: n.state})
	}
	n.mu.Unlock()

	tg, err := enocean.EncodeEEP(n.profile, n.sender, readings)
	if err != nil {
		return
	}
	_, _ = n.link.Write(tg.WrapRadio().Encode())
}

// SetState flips the device's binary state (used to model a person
// pressing a rocker or a window opening) and emits the telegram.
func (n *NodeEnOcean) SetState(v float64) {
	n.mu.Lock()
	n.state = v
	n.mu.Unlock()
	n.Emit()
}

// State reports the binary state.
func (n *NodeEnOcean) State() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// Close stops spontaneous emission.
func (n *NodeEnOcean) Close() {
	n.mu.Lock()
	started := n.started
	n.started = false
	n.mu.Unlock()
	if started {
		close(n.stopCh)
		n.wg.Wait()
	}
}

// DriverEnOcean is the device-proxy dedicated layer for EnOcean: it
// drains the gateway's serial link, parses ESP3 packets, decodes the
// device's profile, and caches the latest readings (EnOcean devices
// push; the proxy's Poll returns the freshest received state).
type DriverEnOcean struct {
	link    *SerialLink
	profile enocean.EEP
	sender  uint32
	node    *NodeEnOcean // actuation target, when the device is a relay

	mu      sync.Mutex
	pending []byte
	latest  []deviceproxy.Reading
}

// NewDriverEnOcean creates the driver for one device on the link. The
// optional actuator lets the driver command a relay device (EnOcean
// actuation is a gateway-transmitted telegram; the simulation shortcuts
// the air interface but keeps the telegram encoding on the link).
func NewDriverEnOcean(link *SerialLink, profile enocean.EEP, sender uint32, actuator *NodeEnOcean) *DriverEnOcean {
	return &DriverEnOcean{link: link, profile: profile, sender: sender, node: actuator}
}

// Protocol implements deviceproxy.Driver.
func (d *DriverEnOcean) Protocol() string { return "enocean" }

// Poll implements deviceproxy.Driver: drain the serial link, decode any
// telegram from our device, and return the latest readings.
func (d *DriverEnOcean) Poll() ([]deviceproxy.Reading, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pending = append(d.pending, d.link.Drain()...)
	packets, consumed := enocean.DecodeStream(d.pending)
	d.pending = d.pending[consumed:]
	for _, pkt := range packets {
		if pkt.Type != enocean.TypeRadioERP1 {
			continue
		}
		tg, err := enocean.DecodeTelegram(pkt.Data)
		if err != nil || tg.SenderID != d.sender {
			continue
		}
		readings, err := enocean.DecodeEEP(d.profile, tg)
		if err != nil {
			continue // teach-in or profile mismatch
		}
		out := make([]deviceproxy.Reading, len(readings))
		for i, r := range readings {
			out[i] = deviceproxy.Reading{Quantity: r.Quantity, Value: r.Value, Unit: r.Unit, Battery: -1}
		}
		d.latest = out
	}
	if d.latest == nil {
		return nil, fmt.Errorf("wsn: no telegram from EnOcean device %#08x yet", d.sender)
	}
	return append([]deviceproxy.Reading(nil), d.latest...), nil
}

// Actuate implements deviceproxy.Driver for relay profiles.
func (d *DriverEnOcean) Actuate(q dataformat.Quantity, v float64) error {
	if d.node == nil || (q != dataformat.SwitchState && q != dataformat.ContactState) {
		return fmt.Errorf("%w: %s", deviceproxy.ErrNotActuator, q)
	}
	d.node.SetState(v)
	return nil
}

// Close implements deviceproxy.Driver.
func (d *DriverEnOcean) Close() error { return nil }
