package wsn

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/dataformat"
	"repro/internal/deviceproxy"
	"repro/internal/protocol/ieee802154"
)

// pollCommand is the MAC-command payload the proxy sends to ask a plain
// 802.15.4 node for a fresh reading (a simplified data-request).
var pollCommand = []byte{0x04}

// Node802154 is a plain IEEE 802.15.4 sensor node: it answers poll
// requests with sensor-reading data frames, one per configured quantity.
type Node802154 struct {
	xcvr   *ieee802154.Transceiver
	pan    uint16
	addr   uint16
	rng    *rand.Rand
	signal map[dataformat.Quantity]Signal
	batt   *battery

	mu     sync.Mutex
	seq    uint8
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// readingKindOf maps quantities to the plain-802.15.4 payload kinds.
var readingKindOf = map[dataformat.Quantity]ieee802154.ReadingKind{
	dataformat.Temperature: ieee802154.ReadingTemperature,
	dataformat.Humidity:    ieee802154.ReadingHumidity,
	dataformat.Illuminance: ieee802154.ReadingIlluminance,
	dataformat.PowerActive: ieee802154.ReadingPower,
	dataformat.Occupancy:   ieee802154.ReadingOccupancy,
	dataformat.CO2:         ieee802154.ReadingCO2,
}

var quantityOfKind = map[ieee802154.ReadingKind]struct {
	q dataformat.Quantity
	u dataformat.Unit
}{
	ieee802154.ReadingTemperature: {dataformat.Temperature, dataformat.Celsius},
	ieee802154.ReadingHumidity:    {dataformat.Humidity, dataformat.Percent},
	ieee802154.ReadingIlluminance: {dataformat.Illuminance, dataformat.Lux},
	ieee802154.ReadingPower:       {dataformat.PowerActive, dataformat.Watt},
	ieee802154.ReadingOccupancy:   {dataformat.Occupancy, dataformat.Bool},
	ieee802154.ReadingCO2:         {dataformat.CO2, dataformat.PPM},
}

// NewNode802154 attaches a virtual sensor node to the radio and starts
// its serving goroutine.
func NewNode802154(radio *ieee802154.Radio, pan, addr uint16, signals map[dataformat.Quantity]Signal, seed int64) (*Node802154, error) {
	xcvr, err := radio.Attach(pan, addr, 64)
	if err != nil {
		return nil, err
	}
	n := &Node802154{
		xcvr: xcvr, pan: pan, addr: addr,
		rng:    rand.New(rand.NewSource(seed)),
		signal: signals,
		batt:   newBattery(100, 0.002),
		stopCh: make(chan struct{}),
	}
	n.wg.Add(1)
	go n.serve()
	return n, nil
}

// serve answers poll requests until Close.
func (n *Node802154) serve() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		default:
		}
		f, err := n.xcvr.Receive(100 * time.Millisecond)
		if err != nil {
			continue
		}
		if f.Type != ieee802154.FrameMACCmd || len(f.Payload) == 0 || f.Payload[0] != pollCommand[0] {
			continue
		}
		n.respond(f.SrcAddr)
	}
}

// respond transmits one data frame per quantity.
func (n *Node802154) respond(to uint16) {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	level := n.batt.sample()
	for q, sig := range n.signal {
		kind, ok := readingKindOf[q]
		if !ok {
			continue
		}
		payload := ieee802154.EncodeReading(ieee802154.SensorReading{
			Kind:    kind,
			Value:   sig.valueAt(now, n.rng),
			Battery: uint8(level),
		})
		n.seq++
		frame := &ieee802154.Frame{
			Type: ieee802154.FrameData, IntraPAN: true,
			Seq: n.seq, DestPAN: n.pan, DestAddr: to, SrcAddr: n.addr,
			Payload: payload,
		}
		_ = n.xcvr.Send(frame)
	}
}

// Close detaches the node from the radio.
func (n *Node802154) Close() {
	close(n.stopCh)
	n.wg.Wait()
	n.xcvr.Detach()
}

// Driver802154 is the device-proxy dedicated layer for a plain 802.15.4
// node: Poll sends a data request and collects the reading frames.
type Driver802154 struct {
	xcvr    *ieee802154.Transceiver
	pan     uint16
	device  uint16
	expect  int
	timeout time.Duration

	mu  sync.Mutex
	seq uint8
}

// NewDriver802154 attaches the proxy's transceiver to the radio.
// expectReadings is how many quantities the device reports per poll.
func NewDriver802154(radio *ieee802154.Radio, pan, proxyAddr, deviceAddr uint16, expectReadings int) (*Driver802154, error) {
	xcvr, err := radio.Attach(pan, proxyAddr, 64)
	if err != nil {
		return nil, err
	}
	if expectReadings <= 0 {
		expectReadings = 1
	}
	return &Driver802154{
		xcvr: xcvr, pan: pan, device: deviceAddr,
		expect: expectReadings, timeout: 500 * time.Millisecond,
	}, nil
}

// Protocol implements deviceproxy.Driver.
func (d *Driver802154) Protocol() string { return "ieee802.15.4" }

// Poll implements deviceproxy.Driver: transmit a poll command, then
// collect the device's reading frames.
func (d *Driver802154) Poll() ([]deviceproxy.Reading, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	req := &ieee802154.Frame{
		Type: ieee802154.FrameMACCmd, IntraPAN: true,
		Seq: d.seq, DestPAN: d.pan, DestAddr: d.device, SrcAddr: d.xcvr.Addr(),
		Payload: pollCommand,
	}
	if err := d.xcvr.Send(req); err != nil {
		return nil, err
	}
	var out []deviceproxy.Reading
	deadline := time.Now().Add(d.timeout)
	for len(out) < d.expect && time.Now().Before(deadline) {
		f, err := d.xcvr.Receive(time.Until(deadline))
		if err != nil {
			break
		}
		if f.Type != ieee802154.FrameData || f.SrcAddr != d.device {
			continue
		}
		r, err := ieee802154.DecodeReading(f.Payload)
		if err != nil {
			continue
		}
		qi, ok := quantityOfKind[r.Kind]
		if !ok {
			continue
		}
		out = append(out, deviceproxy.Reading{
			Quantity: qi.q, Value: r.Value, Unit: qi.u,
			Battery: float64(r.Battery),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("wsn: 802.15.4 device %#04x did not answer", d.device)
	}
	return out, nil
}

// Actuate implements deviceproxy.Driver; plain sensor nodes actuate
// nothing.
func (d *Driver802154) Actuate(q dataformat.Quantity, v float64) error {
	return fmt.Errorf("%w: %s", deviceproxy.ErrNotActuator, q)
}

// Close implements deviceproxy.Driver.
func (d *Driver802154) Close() error {
	d.xcvr.Detach()
	return nil
}
