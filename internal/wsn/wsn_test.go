package wsn

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataformat"
	"repro/internal/deviceproxy"
	"repro/internal/protocol/enocean"
	"repro/internal/protocol/ieee802154"
)

func tempSignals() map[dataformat.Quantity]Signal {
	return map[dataformat.Quantity]Signal{
		dataformat.Temperature: {Base: 21, NoiseStd: 0.1, Min: -10, Max: 40},
	}
}

func TestSignalValueBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sig := Signal{Base: 21, Amplitude: 3, Period: time.Hour, NoiseStd: 0.5, Min: 19, Max: 23}
	for i := 0; i < 1000; i++ {
		v := sig.valueAt(time.Now().Add(time.Duration(i)*time.Minute), rng)
		if v < 19 || v > 23 {
			t.Fatalf("value %v out of clamp range", v)
		}
	}
}

func TestSignalDeterministicBase(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sig := Signal{Base: 42}
	if v := sig.valueAt(time.Now(), rng); v != 42 {
		t.Errorf("pure base signal = %v", v)
	}
}

func TestBatteryDrains(t *testing.T) {
	b := newBattery(100, 25)
	levels := []float64{100, 75, 50, 25, 0, 0}
	for i, want := range levels {
		if got := b.sample(); got != want {
			t.Errorf("sample %d = %v, want %v", i, got, want)
		}
	}
}

func TestDefaultSignalsSane(t *testing.T) {
	sigs := DefaultSignals()
	for name, sig := range sigs {
		if sig.Max <= sig.Min {
			t.Errorf("%s: Max <= Min", name)
		}
	}
	if _, ok := sigs["temperature"]; !ok {
		t.Error("temperature signal missing")
	}
}

func TestDriver802154PollAgainstNode(t *testing.T) {
	radio := ieee802154.NewRadio(ieee802154.RadioOptions{})
	defer radio.Close()
	signals := map[dataformat.Quantity]Signal{
		dataformat.Temperature: {Base: 21},
		dataformat.Humidity:    {Base: 45},
	}
	node, err := NewNode802154(radio, 0x1234, 0x0010, signals, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	drv, err := NewDriver802154(radio, 0x1234, 0x0001, 0x0010, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer drv.Close()

	if drv.Protocol() != "ieee802.15.4" {
		t.Errorf("protocol = %q", drv.Protocol())
	}
	readings, err := drv.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) != 2 {
		t.Fatalf("readings = %+v", readings)
	}
	byQ := map[dataformat.Quantity]deviceproxy.Reading{}
	for _, r := range readings {
		byQ[r.Quantity] = r
	}
	if math.Abs(byQ[dataformat.Temperature].Value-21) > 0.01 {
		t.Errorf("temperature = %v", byQ[dataformat.Temperature].Value)
	}
	if byQ[dataformat.Temperature].Battery < 99 {
		t.Errorf("battery = %v", byQ[dataformat.Temperature].Battery)
	}
	if err := drv.Actuate(dataformat.SwitchState, 1); !errors.Is(err, deviceproxy.ErrNotActuator) {
		t.Errorf("Actuate = %v", err)
	}
}

func TestDriver802154NoDevice(t *testing.T) {
	radio := ieee802154.NewRadio(ieee802154.RadioOptions{})
	defer radio.Close()
	drv, err := NewDriver802154(radio, 1, 1, 0x99, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer drv.Close()
	drv.timeout = 50 * time.Millisecond
	if _, err := drv.Poll(); err == nil {
		t.Fatal("poll of absent device succeeded")
	}
}

func TestDriverZigbeeReadAndActuate(t *testing.T) {
	radio := ieee802154.NewRadio(ieee802154.RadioOptions{})
	defer radio.Close()
	signals := map[dataformat.Quantity]Signal{
		dataformat.Temperature: {Base: 22.5},
		dataformat.Humidity:    {Base: 51},
	}
	node, err := NewNodeZigbee(radio, 0x1234, 0x0020, signals, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	drv, err := NewDriverZigbee(radio, 0x1234, 0x0002, 0x0020,
		[]dataformat.Quantity{dataformat.Temperature, dataformat.Humidity, dataformat.SwitchState})
	if err != nil {
		t.Fatal(err)
	}
	defer drv.Close()

	readings, err := drv.Poll()
	if err != nil {
		t.Fatal(err)
	}
	byQ := map[dataformat.Quantity]float64{}
	for _, r := range readings {
		byQ[r.Quantity] = r.Value
	}
	if math.Abs(byQ[dataformat.Temperature]-22.5) > 0.011 { // int16 0.01 resolution
		t.Errorf("temperature = %v", byQ[dataformat.Temperature])
	}
	if math.Abs(byQ[dataformat.Humidity]-51) > 0.011 {
		t.Errorf("humidity = %v", byQ[dataformat.Humidity])
	}
	if byQ[dataformat.SwitchState] != 0 {
		t.Errorf("switch = %v, want off", byQ[dataformat.SwitchState])
	}

	if err := drv.Actuate(dataformat.SwitchState, 1); err != nil {
		t.Fatal(err)
	}
	if !node.On() {
		t.Fatal("relay did not switch on")
	}
	readings, err = drv.Poll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range readings {
		if r.Quantity == dataformat.SwitchState && r.Value != 1 {
			t.Errorf("switch after actuation = %v", r.Value)
		}
	}
}

func TestDriverZigbeeActuateUnsupported(t *testing.T) {
	radio := ieee802154.NewRadio(ieee802154.RadioOptions{})
	defer radio.Close()
	node, err := NewNodeZigbee(radio, 1, 2, tempSignals(), false, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	drv, err := NewDriverZigbee(radio, 1, 3, 2, []dataformat.Quantity{dataformat.Temperature})
	if err != nil {
		t.Fatal(err)
	}
	defer drv.Close()
	if err := drv.Actuate(dataformat.CO2, 1); !errors.Is(err, deviceproxy.ErrNotActuator) {
		t.Errorf("unsupported quantity: %v", err)
	}
	// Write to a non-relay device must be rejected by the device.
	if err := drv.Actuate(dataformat.SwitchState, 1); err == nil {
		t.Error("write to sensor-only device succeeded")
	}
}

func TestDriverEnOceanReceives(t *testing.T) {
	link := &SerialLink{}
	node := NewNodeEnOcean(link, enocean.EEPTempHumA50401, 0x0180ABCD, map[dataformat.Quantity]Signal{
		dataformat.Temperature: {Base: 20},
		dataformat.Humidity:    {Base: 40},
	}, 4)
	defer node.Close()
	drv := NewDriverEnOcean(link, enocean.EEPTempHumA50401, 0x0180ABCD, nil)
	defer drv.Close()

	// Nothing emitted yet.
	if _, err := drv.Poll(); err == nil {
		t.Fatal("poll before any telegram succeeded")
	}
	node.Emit()
	readings, err := drv.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) != 2 {
		t.Fatalf("readings = %+v", readings)
	}
	// Latest state is cached: a second poll without new telegrams works.
	if _, err := drv.Poll(); err != nil {
		t.Fatalf("cached poll: %v", err)
	}
}

func TestDriverEnOceanIgnoresOtherSenders(t *testing.T) {
	link := &SerialLink{}
	other := NewNodeEnOcean(link, enocean.EEPTempA50205, 0x0BADF00D, map[dataformat.Quantity]Signal{
		dataformat.Temperature: {Base: 10},
	}, 5)
	defer other.Close()
	other.Emit()
	drv := NewDriverEnOcean(link, enocean.EEPTempA50205, 0x0180ABCD, nil)
	defer drv.Close()
	if _, err := drv.Poll(); err == nil {
		t.Fatal("telegram from wrong sender accepted")
	}
}

func TestDriverEnOceanActuate(t *testing.T) {
	link := &SerialLink{}
	relay := NewNodeEnOcean(link, enocean.EEPRockerF60201, 0x0180AAAA, nil, 6)
	defer relay.Close()
	drv := NewDriverEnOcean(link, enocean.EEPRockerF60201, 0x0180AAAA, relay)
	defer drv.Close()

	if err := drv.Actuate(dataformat.SwitchState, 1); err != nil {
		t.Fatal(err)
	}
	if relay.State() != 1 {
		t.Fatal("relay state not applied")
	}
	// The confirmation telegram is on the link; Poll decodes it.
	readings, err := drv.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if readings[0].Quantity != dataformat.SwitchState || readings[0].Value != 1 {
		t.Errorf("confirmation = %+v", readings[0])
	}
	if err := drv.Actuate(dataformat.Temperature, 20); !errors.Is(err, deviceproxy.ErrNotActuator) {
		t.Errorf("temperature actuation: %v", err)
	}
	drvNoAct := NewDriverEnOcean(link, enocean.EEPRockerF60201, 0x0180AAAA, nil)
	if err := drvNoAct.Actuate(dataformat.SwitchState, 1); !errors.Is(err, deviceproxy.ErrNotActuator) {
		t.Errorf("actuation without target: %v", err)
	}
}

func TestDriverOPCUAPollAndActuate(t *testing.T) {
	node, err := NewNodeOPCUA(map[dataformat.Quantity]Signal{
		dataformat.Temperature: {Base: 19.5},
		dataformat.PowerActive: {Base: 1200},
	}, []dataformat.Quantity{dataformat.Temperature}, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	drv, err := NewDriverOPCUA(node.Addr(),
		[]dataformat.Quantity{dataformat.Temperature, dataformat.PowerActive},
		[]dataformat.Quantity{dataformat.Temperature})
	if err != nil {
		t.Fatal(err)
	}
	defer drv.Close()

	if drv.Protocol() != "opc-ua" {
		t.Errorf("protocol = %q", drv.Protocol())
	}
	readings, err := drv.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) != 2 {
		t.Fatalf("readings = %+v", readings)
	}
	byQ := map[dataformat.Quantity]float64{}
	for _, r := range readings {
		byQ[r.Quantity] = r.Value
	}
	if byQ[dataformat.Temperature] != 19.5 || byQ[dataformat.PowerActive] != 1200 {
		t.Errorf("values = %v", byQ)
	}

	if err := drv.Actuate(dataformat.Temperature, 22); err != nil {
		t.Fatal(err)
	}
	if v, ok := node.Setpoint(dataformat.Temperature); !ok || v != 22 {
		t.Errorf("setpoint = %v %v", v, ok)
	}
	if err := drv.Actuate(dataformat.CO2, 1); !errors.Is(err, deviceproxy.ErrNotActuator) {
		t.Errorf("unknown setpoint: %v", err)
	}
}

func TestDriverOPCUANoVariables(t *testing.T) {
	node, err := NewNodeOPCUA(map[dataformat.Quantity]Signal{
		dataformat.Temperature: {Base: 19.5},
	}, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if _, err := NewDriverOPCUA(node.Addr(), []dataformat.Quantity{dataformat.CO2}, nil); err == nil {
		t.Fatal("driver built with no matching variables")
	}
}

func TestNodeEnOceanPeriodicEmission(t *testing.T) {
	link := &SerialLink{}
	node := NewNodeEnOcean(link, enocean.EEPTempA50205, 0x01020304, map[dataformat.Quantity]Signal{
		dataformat.Temperature: {Base: 25},
	}, 9)
	node.Start(10 * time.Millisecond)
	defer node.Close()
	drv := NewDriverEnOcean(link, enocean.EEPTempA50205, 0x01020304, nil)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if readings, err := drv.Poll(); err == nil {
			if math.Abs(readings[0].Value-25) > 0.2 {
				t.Errorf("temperature = %v", readings[0].Value)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no spontaneous emission observed")
}
