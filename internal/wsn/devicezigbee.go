package wsn

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/dataformat"
	"repro/internal/deviceproxy"
	"repro/internal/protocol/ieee802154"
	"repro/internal/protocol/zigbee"
)

// zigbeeEndpoint is the application endpoint virtual devices expose.
const zigbeeEndpoint = 1

// NodeZigbee is a ZigBee HA device: it serves ZCL Read Attributes and
// Write Attributes requests over the simulated 802.15.4 radio, keeping
// attribute state (the on/off cluster is writable).
type NodeZigbee struct {
	xcvr *ieee802154.Transceiver
	pan  uint16
	addr uint16
	rng  *rand.Rand

	mu       sync.Mutex
	signal   map[dataformat.Quantity]Signal
	onOff    bool
	hasRelay bool
	seq      uint8
	apsCnt   uint8
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewNodeZigbee attaches a virtual ZigBee device to the radio. When
// relay is true the device also exposes a writable on/off cluster.
func NewNodeZigbee(radio *ieee802154.Radio, pan, addr uint16, signals map[dataformat.Quantity]Signal, relay bool, seed int64) (*NodeZigbee, error) {
	xcvr, err := radio.Attach(pan, addr, 64)
	if err != nil {
		return nil, err
	}
	n := &NodeZigbee{
		xcvr: xcvr, pan: pan, addr: addr,
		rng: rand.New(rand.NewSource(seed)), signal: signals,
		hasRelay: relay,
		stopCh:   make(chan struct{}),
	}
	n.wg.Add(1)
	go n.serve()
	return n, nil
}

// On reports the relay state (tests).
func (n *NodeZigbee) On() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.onOff
}

func (n *NodeZigbee) serve() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		default:
		}
		f, err := n.xcvr.Receive(100 * time.Millisecond)
		if err != nil || f.Type != ieee802154.FrameData {
			continue
		}
		aps, err := zigbee.DecodeAPS(f.Payload)
		if err != nil {
			continue
		}
		zcl, err := zigbee.DecodeFrame(aps.ZCL)
		if err != nil {
			continue
		}
		switch zcl.Command {
		case zigbee.CmdReadAttributes:
			n.serveRead(f.SrcAddr, aps, zcl)
		case zigbee.CmdWriteAttributes:
			n.serveWrite(f.SrcAddr, aps, zcl)
		}
	}
}

// attributeOf produces the current raw attribute of a cluster.
func (n *NodeZigbee) attributeOf(cluster zigbee.ClusterID, id zigbee.AttrID) (zigbee.Attribute, bool) {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	switch cluster {
	case zigbee.ClusterOnOff:
		if !n.hasRelay {
			return zigbee.Attribute{}, false
		}
		v := int64(0)
		if n.onOff {
			v = 1
		}
		return zigbee.Attribute{ID: id, Type: zigbee.TypeBool, Value: v}, true
	case zigbee.ClusterTemperature:
		sig, ok := n.signal[dataformat.Temperature]
		if !ok {
			return zigbee.Attribute{}, false
		}
		return zigbee.Attribute{ID: id, Type: zigbee.TypeInt16,
			Value: int64(sig.valueAt(now, n.rng) * 100)}, true
	case zigbee.ClusterHumidity:
		sig, ok := n.signal[dataformat.Humidity]
		if !ok {
			return zigbee.Attribute{}, false
		}
		return zigbee.Attribute{ID: id, Type: zigbee.TypeUint16,
			Value: int64(sig.valueAt(now, n.rng) * 100)}, true
	case zigbee.ClusterElectrical:
		sig, ok := n.signal[dataformat.PowerActive]
		if !ok {
			return zigbee.Attribute{}, false
		}
		return zigbee.Attribute{ID: id, Type: zigbee.TypeInt16,
			Value: int64(sig.valueAt(now, n.rng))}, true
	case zigbee.ClusterOccupancy:
		sig, ok := n.signal[dataformat.Occupancy]
		if !ok {
			return zigbee.Attribute{}, false
		}
		v := int64(0)
		if sig.valueAt(now, n.rng) >= 0.5 {
			v = 1
		}
		return zigbee.Attribute{ID: id, Type: zigbee.TypeBitmap, Value: v}, true
	default:
		return zigbee.Attribute{}, false
	}
}

func (n *NodeZigbee) serveRead(to uint16, aps *zigbee.APSFrame, zcl *zigbee.Frame) {
	ids, err := zigbee.DecodeReadRequest(zcl.Payload)
	if err != nil {
		return
	}
	records := make([]zigbee.ReadRecord, 0, len(ids))
	for _, id := range ids {
		attr, ok := n.attributeOf(aps.Cluster, id)
		if !ok {
			records = append(records, zigbee.ReadRecord{ID: id, Status: zigbee.StatusUnsupportedAttr})
			continue
		}
		records = append(records, zigbee.ReadRecord{ID: id, Status: zigbee.StatusSuccess, Attr: attr})
	}
	rsp, err := zigbee.EncodeReadResponse(zcl.Seq, records)
	if err != nil {
		return
	}
	n.sendZCL(to, aps.Cluster, rsp)
}

func (n *NodeZigbee) serveWrite(to uint16, aps *zigbee.APSFrame, zcl *zigbee.Frame) {
	attrs, err := zigbee.DecodeWriteRequest(zcl.Payload)
	if err != nil {
		return
	}
	status := uint8(zigbee.StatusSuccess)
	for _, a := range attrs {
		if aps.Cluster == zigbee.ClusterOnOff && a.ID == zigbee.AttrOnOffState && n.hasRelay {
			n.mu.Lock()
			n.onOff = a.Value != 0
			n.mu.Unlock()
			continue
		}
		status = zigbee.StatusReadOnly
	}
	n.sendZCL(to, aps.Cluster, zigbee.EncodeDefaultResponse(zcl.Seq, zigbee.CmdWriteAttributes, status))
}

func (n *NodeZigbee) sendZCL(to uint16, cluster zigbee.ClusterID, zcl []byte) {
	n.mu.Lock()
	n.apsCnt++
	n.seq++
	aps := &zigbee.APSFrame{
		DstEndpoint: zigbeeEndpoint, SrcEndpoint: zigbeeEndpoint,
		Cluster: cluster, Profile: zigbee.ProfileHomeAutomation,
		Counter: n.apsCnt, ZCL: zcl,
	}
	frame := &ieee802154.Frame{
		Type: ieee802154.FrameData, IntraPAN: true,
		Seq: n.seq, DestPAN: n.pan, DestAddr: to, SrcAddr: n.addr,
		Payload: aps.Encode(),
	}
	n.mu.Unlock()
	_ = n.xcvr.Send(frame)
}

// Close detaches the device.
func (n *NodeZigbee) Close() {
	close(n.stopCh)
	n.wg.Wait()
	n.xcvr.Detach()
}

// DriverZigbee is the device-proxy dedicated layer for a ZigBee device.
type DriverZigbee struct {
	xcvr   *ieee802154.Transceiver
	pan    uint16
	device uint16
	// Quantities drive which clusters Poll reads.
	quantities []dataformat.Quantity
	timeout    time.Duration

	mu  sync.Mutex
	seq uint8
	cnt uint8
}

// NewDriverZigbee attaches the proxy's radio endpoint.
func NewDriverZigbee(radio *ieee802154.Radio, pan, proxyAddr, deviceAddr uint16, quantities []dataformat.Quantity) (*DriverZigbee, error) {
	xcvr, err := radio.Attach(pan, proxyAddr, 64)
	if err != nil {
		return nil, err
	}
	return &DriverZigbee{
		xcvr: xcvr, pan: pan, device: deviceAddr,
		quantities: quantities, timeout: 500 * time.Millisecond,
	}, nil
}

// Protocol implements deviceproxy.Driver.
func (d *DriverZigbee) Protocol() string { return "zigbee" }

// exchange sends one ZCL request and waits for the matching response.
func (d *DriverZigbee) exchange(cluster zigbee.ClusterID, zcl []byte, wantSeq uint8) (*zigbee.Frame, error) {
	d.mu.Lock()
	d.cnt++
	aps := &zigbee.APSFrame{
		DstEndpoint: zigbeeEndpoint, SrcEndpoint: zigbeeEndpoint,
		Cluster: cluster, Profile: zigbee.ProfileHomeAutomation,
		Counter: d.cnt, ZCL: zcl,
	}
	frame := &ieee802154.Frame{
		Type: ieee802154.FrameData, IntraPAN: true,
		Seq: wantSeq, DestPAN: d.pan, DestAddr: d.device, SrcAddr: d.xcvr.Addr(),
		Payload: aps.Encode(),
	}
	d.mu.Unlock()
	if err := d.xcvr.Send(frame); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(d.timeout)
	for time.Now().Before(deadline) {
		f, err := d.xcvr.Receive(time.Until(deadline))
		if err != nil {
			return nil, err
		}
		if f.Type != ieee802154.FrameData || f.SrcAddr != d.device {
			continue
		}
		rspAPS, err := zigbee.DecodeAPS(f.Payload)
		if err != nil || rspAPS.Cluster != cluster {
			continue
		}
		rspZCL, err := zigbee.DecodeFrame(rspAPS.ZCL)
		if err != nil || rspZCL.Seq != wantSeq {
			continue
		}
		return rspZCL, nil
	}
	return nil, fmt.Errorf("wsn: zigbee device %#04x timed out on cluster %#04x", d.device, uint16(cluster))
}

// Poll implements deviceproxy.Driver: one Read Attributes per quantity's
// cluster, translated to common-format readings.
func (d *DriverZigbee) Poll() ([]deviceproxy.Reading, error) {
	var out []deviceproxy.Reading
	for _, q := range d.quantities {
		cluster, attrID, ok := zigbee.ClusterForQuantity(q)
		if !ok {
			continue
		}
		d.mu.Lock()
		d.seq++
		seq := d.seq
		d.mu.Unlock()
		rsp, err := d.exchange(cluster, zigbee.EncodeReadRequest(seq, []zigbee.AttrID{attrID}), seq)
		if err != nil {
			return out, err
		}
		if rsp.Command != zigbee.CmdReadAttributesRsp {
			continue
		}
		records, err := zigbee.DecodeReadResponse(rsp.Payload)
		if err != nil {
			continue
		}
		for _, rec := range records {
			if rec.Status != zigbee.StatusSuccess {
				continue
			}
			quantity, value, unit, err := zigbee.Translate(cluster, rec.Attr)
			if err != nil {
				continue
			}
			out = append(out, deviceproxy.Reading{Quantity: quantity, Value: value, Unit: unit, Battery: -1})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("wsn: zigbee device %#04x returned no attributes", d.device)
	}
	return out, nil
}

// Actuate implements deviceproxy.Driver via ZCL Write Attributes.
func (d *DriverZigbee) Actuate(q dataformat.Quantity, v float64) error {
	cluster, attr, err := zigbee.Untranslate(q, v)
	if err != nil {
		return fmt.Errorf("%w: %s", deviceproxy.ErrNotActuator, q)
	}
	d.mu.Lock()
	d.seq++
	seq := d.seq
	d.mu.Unlock()
	zcl, err := zigbee.EncodeWriteRequest(seq, []zigbee.Attribute{attr})
	if err != nil {
		return err
	}
	rsp, err := d.exchange(cluster, zcl, seq)
	if err != nil {
		return err
	}
	if rsp.Command != zigbee.CmdDefaultResponse {
		return fmt.Errorf("wsn: unexpected response command %#02x", uint8(rsp.Command))
	}
	_, status, err := zigbee.DecodeDefaultResponse(rsp.Payload)
	if err != nil {
		return err
	}
	if status != zigbee.StatusSuccess {
		return fmt.Errorf("wsn: zigbee write rejected with status %#02x", status)
	}
	return nil
}

// Close implements deviceproxy.Driver.
func (d *DriverZigbee) Close() error {
	d.xcvr.Detach()
	return nil
}
