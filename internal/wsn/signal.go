// Package wsn simulates the district's wireless sensor and actuator
// network: the physical devices the paper's testbed deploys (DESIGN.md
// S8). Every virtual device speaks its native protocol for real — MAC
// frames over the simulated 802.15.4 radio, ZCL attribute commands,
// ESP3 telegrams on a simulated serial gateway, OPC UA services over
// TCP — so the device-proxies' dedicated layers exercise exactly the
// translation work the paper assigns them.
package wsn

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Signal models one physical quantity's evolution: a base level, a
// diurnal sinusoidal component, and Gaussian noise. It is the synthetic
// stand-in for real sensor physics.
type Signal struct {
	// Base is the mean level (e.g. 21 degC).
	Base float64
	// Amplitude scales the sinusoidal component.
	Amplitude float64
	// Period is the oscillation period (e.g. 24h); zero disables it.
	Period time.Duration
	// NoiseStd is the standard deviation of the additive noise.
	NoiseStd float64
	// Min/Max clamp the output when Max > Min.
	Min, Max float64
}

// valueAt evaluates the signal at time t using the given RNG.
func (s Signal) valueAt(t time.Time, rng *rand.Rand) float64 {
	v := s.Base
	if s.Period > 0 && s.Amplitude != 0 {
		phase := 2 * math.Pi * float64(t.UnixNano()%int64(s.Period)) / float64(s.Period)
		v += s.Amplitude * math.Sin(phase)
	}
	if s.NoiseStd > 0 {
		v += rng.NormFloat64() * s.NoiseStd
	}
	if s.Max > s.Min {
		v = math.Max(s.Min, math.Min(s.Max, v))
	}
	return v
}

// battery models a linearly draining battery.
type battery struct {
	mu      sync.Mutex
	percent float64
	drain   float64 // percent per sample
}

func newBattery(start, drainPerSample float64) *battery {
	return &battery{percent: start, drain: drainPerSample}
}

// sample returns the current level and applies one sample's drain.
func (b *battery) sample() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := b.percent
	b.percent -= b.drain
	if b.percent < 0 {
		b.percent = 0
	}
	return v
}

// DefaultSignals returns plausible signals for common quantities, used
// by the district simulator when no explicit signals are configured.
func DefaultSignals() map[string]Signal {
	return map[string]Signal{
		"temperature": {Base: 21, Amplitude: 2.5, Period: 24 * time.Hour, NoiseStd: 0.15, Min: -10, Max: 40},
		"humidity":    {Base: 45, Amplitude: 10, Period: 24 * time.Hour, NoiseStd: 1.2, Min: 0, Max: 100},
		"illuminance": {Base: 350, Amplitude: 300, Period: 24 * time.Hour, NoiseStd: 25, Min: 0, Max: 2000},
		"power.active": {
			Base: 900, Amplitude: 600, Period: 24 * time.Hour, NoiseStd: 60, Min: 0, Max: 5000},
		"co2": {Base: 600, Amplitude: 150, Period: 24 * time.Hour, NoiseStd: 20, Min: 350, Max: 2000},
	}
}
