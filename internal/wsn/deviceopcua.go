package wsn

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/dataformat"
	"repro/internal/deviceproxy"
	"repro/internal/protocol/opcua"
)

// NodeOPCUA simulates a wired building-automation controller exposed
// through OPC UA — the legacy systems the paper's OPC UA proxy bridges.
// It serves an address space whose variable values follow the configured
// signals, refreshed by an internal sampling loop.
type NodeOPCUA struct {
	server *opcua.Server
	addr   string
	rng    *rand.Rand

	mu     sync.Mutex
	signal map[dataformat.Quantity]Signal
	nodeOf map[dataformat.Quantity]opcua.NodeID
	setps  map[dataformat.Quantity]float64
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewNodeOPCUA builds the controller's address space and starts serving
// on an ephemeral port. Writable quantities get read/write variables.
func NewNodeOPCUA(signals map[dataformat.Quantity]Signal, writable []dataformat.Quantity, seed int64) (*NodeOPCUA, error) {
	space := opcua.NewAddressSpace()
	plant := opcua.NodeID{Namespace: 1, ID: "Controller"}
	if err := space.AddObject(opcua.RootID, plant, "Controller"); err != nil {
		return nil, err
	}
	n := &NodeOPCUA{
		server: opcua.NewServer(space),
		rng:    rand.New(rand.NewSource(seed)),
		signal: signals,
		nodeOf: make(map[dataformat.Quantity]opcua.NodeID),
		setps:  make(map[dataformat.Quantity]float64),
		stopCh: make(chan struct{}),
	}
	for q := range signals {
		id := opcua.NodeID{Namespace: 1, ID: "Controller." + string(q)}
		if err := space.AddVariable(plant, id, string(q), opcua.AccessRead, nil); err != nil {
			return nil, err
		}
		n.nodeOf[q] = id
	}
	for _, q := range writable {
		q := q
		id := opcua.NodeID{Namespace: 1, ID: "Controller.setpoint." + string(q)}
		err := space.AddVariable(plant, id, "setpoint."+string(q), opcua.AccessRead|opcua.AccessWrite,
			func(v float64) error {
				n.mu.Lock()
				n.setps[q] = v
				n.mu.Unlock()
				return nil
			})
		if err != nil {
			return nil, err
		}
		n.nodeOf[dataformat.Quantity("setpoint."+string(q))] = id
	}
	addr, err := n.server.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	n.addr = addr
	n.refresh()
	n.wg.Add(1)
	go n.sampleLoop()
	return n, nil
}

// Addr returns the server's endpoint address.
func (n *NodeOPCUA) Addr() string { return n.addr }

// Setpoint reports the last written setpoint for a quantity (tests).
func (n *NodeOPCUA) Setpoint(q dataformat.Quantity) (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.setps[q]
	return v, ok
}

func (n *NodeOPCUA) sampleLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			n.refresh()
		case <-n.stopCh:
			return
		}
	}
}

// refresh re-evaluates every signal into its variable.
func (n *NodeOPCUA) refresh() {
	now := time.Now().UTC()
	n.mu.Lock()
	defer n.mu.Unlock()
	for q, sig := range n.signal {
		_ = n.server.Space().SetValue(n.nodeOf[q], sig.valueAt(now, n.rng), now)
	}
}

// Close stops the controller.
func (n *NodeOPCUA) Close() {
	close(n.stopCh)
	n.wg.Wait()
	n.server.Close()
}

// DriverOPCUA is the device-proxy dedicated layer for OPC UA devices.
type DriverOPCUA struct {
	client *opcua.Client
	// reads maps quantities to node IDs for Poll.
	reads map[dataformat.Quantity]opcua.NodeID
	// writes maps quantities to writable node IDs for Actuate.
	writes map[dataformat.Quantity]opcua.NodeID
}

// NewDriverOPCUA dials the controller and maps quantities onto its
// address space by browsing — the discovery a real OPC UA proxy does.
func NewDriverOPCUA(addr string, quantities []dataformat.Quantity, writable []dataformat.Quantity) (*DriverOPCUA, error) {
	client, err := opcua.Dial(addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	d := &DriverOPCUA{
		client: client,
		reads:  make(map[dataformat.Quantity]opcua.NodeID),
		writes: make(map[dataformat.Quantity]opcua.NodeID),
	}
	// Browse Objects -> controllers -> variables.
	roots, err := client.Browse(opcua.RootID)
	if err != nil {
		client.Close()
		return nil, err
	}
	for _, obj := range roots {
		vars, err := client.Browse(obj.ID)
		if err != nil {
			continue
		}
		for _, v := range vars {
			if v.Class != opcua.ClassVariable {
				continue
			}
			for _, q := range quantities {
				if v.BrowseName == string(q) {
					d.reads[q] = v.ID
				}
			}
			for _, q := range writable {
				if v.BrowseName == "setpoint."+string(q) {
					d.writes[q] = v.ID
				}
			}
		}
	}
	if len(d.reads) == 0 {
		client.Close()
		return nil, fmt.Errorf("wsn: no matching variables on OPC UA server %s", addr)
	}
	return d, nil
}

// Protocol implements deviceproxy.Driver.
func (d *DriverOPCUA) Protocol() string { return "opc-ua" }

// Poll implements deviceproxy.Driver with one batched Read service call.
func (d *DriverOPCUA) Poll() ([]deviceproxy.Reading, error) {
	ids := make([]opcua.NodeID, 0, len(d.reads))
	qs := make([]dataformat.Quantity, 0, len(d.reads))
	for q, id := range d.reads {
		ids = append(ids, id)
		qs = append(qs, q)
	}
	results, err := d.client.Read(ids)
	if err != nil {
		return nil, err
	}
	var out []deviceproxy.Reading
	for i, res := range results {
		if res.Status != opcua.StatusGood {
			continue
		}
		unit, _ := dataformat.CanonicalUnit(qs[i])
		out = append(out, deviceproxy.Reading{
			Quantity: qs[i], Value: res.Value.Value, Unit: unit,
			Battery: -1, At: res.Value.SourceTimestamp,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("wsn: OPC UA poll returned no good values")
	}
	return out, nil
}

// Actuate implements deviceproxy.Driver with the Write service.
func (d *DriverOPCUA) Actuate(q dataformat.Quantity, v float64) error {
	id, ok := d.writes[q]
	if !ok {
		return fmt.Errorf("%w: %s", deviceproxy.ErrNotActuator, q)
	}
	code, err := d.client.Write(id, v)
	if err != nil {
		return err
	}
	if code != opcua.StatusGood {
		return fmt.Errorf("wsn: OPC UA write rejected with status %#08x", uint32(code))
	}
	return nil
}

// Close implements deviceproxy.Driver.
func (d *DriverOPCUA) Close() error { return d.client.Close() }
