// Package stream is the real-time event streaming subsystem: it
// federates the in-process middleware bus across services over the
// versioned HTTP API. Server side, a Hub fans bus events out to
// HTTP subscribers over Server-Sent Events with monotonic event IDs,
// bounded per-subscriber queues, and slow-consumer eviction; a
// /v1/publish ingress lets remote processes inject events. Client side,
// Subscribe consumes a remote stream with automatic reconnection and
// Last-Event-ID resume (no gaps, no duplicates across a reconnect), and
// Bridge mirrors a remote topic subtree into a local bus — a device
// proxy on one host publishes, the measurements database on another
// ingests, exactly the distributed topology of the paper's Fig. 1.
package stream

import (
	"errors"
	"time"

	"repro/internal/middleware"

	"sync"
)

// ErrHubClosed reports use of a closed hub.
var ErrHubClosed = errors.New("stream: hub closed")

// Entry is one sequenced event: what a Hub fans out and what the SSE
// wire carries (the ID travels as the SSE id field).
type Entry struct {
	// ID is the hub-assigned monotonic sequence number.
	ID uint64
	// Event is the bus event.
	Event middleware.Event
}

// HubOptions configure a Hub.
type HubOptions struct {
	// History is the replay ring capacity: how many recent events are
	// retained for Last-Event-ID resume. Zero means the default (1024).
	History int
	// QueueLen is the per-subscriber queue capacity; a subscriber whose
	// queue overflows is evicted (it reconnects and resumes from the
	// replay ring) rather than stalling the hub or silently losing
	// events. Zero means the default (256).
	QueueLen int
	// FirstID overrides the first event ID. Zero derives the ID base
	// from the wall clock, so a restarted hub keeps assigning IDs above
	// everything it assigned before — a resuming client never mistakes
	// fresh events for already-seen ones.
	FirstID uint64
}

func (o HubOptions) withDefaults() HubOptions {
	if o.History <= 0 {
		o.History = 1024
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 256
	}
	if o.FirstID == 0 {
		o.FirstID = uint64(time.Now().UnixNano())
	}
	return o
}

// Hub sequences events and fans them out to pattern subscribers. It is
// the server half of the streaming subsystem: every event gets a
// monotonic ID, lands in a bounded replay ring, and is delivered to
// every subscriber whose topic pattern matches (trie-indexed, so match
// cost grows with topic depth, not subscriber count).
type Hub struct {
	opts HubOptions

	mu        sync.Mutex
	idx       *middleware.Index
	subs      map[int]*Sub
	nextSubID int
	lastID    uint64 // last assigned event ID
	ring      []Entry
	ringStart int // index of the oldest entry once the ring is full
	closed    bool

	published uint64
	delivered uint64
	evicted   uint64
	replayed  uint64
}

// NewHub creates a Hub.
func NewHub(opts HubOptions) *Hub {
	opts = opts.withDefaults()
	return &Hub{
		opts:   opts,
		idx:    middleware.NewIndex(),
		subs:   make(map[int]*Sub),
		lastID: opts.FirstID - 1,
	}
}

// Sub is one hub subscription: the server-side peer of an SSE
// connection (or any other in-process consumer).
type Sub struct {
	// Pattern is the subscribed topic pattern.
	Pattern string
	// Gap reports that events between the subscriber's Last-Event-ID
	// and the oldest retained entry had already expired from the replay
	// ring at subscribe time — the resume could not be gapless.
	Gap bool
	// C delivers sequenced events. It is closed when the subscription
	// ends: by Close, by hub shutdown, or by slow-consumer eviction
	// (drain it to the end; buffered entries are still valid).
	C <-chan Entry

	hub     *Hub
	id      int
	ch      chan Entry
	evicted bool // guarded by hub.mu
}

// Subscribe registers a subscriber for pattern. afterID > 0 requests
// resume: every retained event with ID > afterID matching the pattern
// is returned as replay (deliver it before reading C — entries arriving
// on C are strictly newer, so the hand-off is gapless and duplicate-free).
func (h *Hub) Subscribe(pattern string, afterID uint64) (*Sub, []Entry, error) {
	if err := middleware.ValidatePattern(pattern); err != nil {
		return nil, nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil, ErrHubClosed
	}
	sub := &Sub{
		hub:     h,
		id:      h.nextSubID,
		Pattern: pattern,
		ch:      make(chan Entry, h.opts.QueueLen),
	}
	sub.C = sub.ch
	h.nextSubID++

	var replay []Entry
	if afterID > 0 && afterID != h.lastID {
		n := len(h.ring)
		for i := 0; i < n; i++ {
			e := h.ring[(h.ringStart+i)%n]
			if e.ID > afterID && middleware.Match(pattern, e.Event.Topic) {
				replay = append(replay, e)
			}
		}
		h.replayed += uint64(len(replay))
		// The resume is gapless only when the ring still reaches back to
		// afterID+1 (or the client is from a different ID epoch entirely).
		switch {
		case afterID > h.lastID:
			sub.Gap = true // future/foreign ID: nothing to line up against
		case n == 0 || h.ring[h.ringStart].ID > afterID+1:
			sub.Gap = true
		}
	}

	h.subs[sub.id] = sub
	h.idx.Add(pattern, sub.id)
	return sub, replay, nil
}

// Close ends the subscription and releases its queue.
func (s *Sub) Close() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	h.removeLocked(s)
}

// Evicted reports whether the hub dropped this subscriber for falling
// behind (C is closed in that case).
func (s *Sub) Evicted() bool {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.evicted
}

// removeLocked detaches a subscription; idempotent.
func (h *Hub) removeLocked(s *Sub) {
	if _, ok := h.subs[s.id]; !ok {
		return
	}
	delete(h.subs, s.id)
	h.idx.Remove(s.Pattern, s.id)
	close(s.ch)
}

// Publish sequences one event and fans it out. A subscriber whose queue
// is full is evicted on the spot: unlike the in-process bus (at-most-once,
// drop-on-overflow), the stream contract is "no silent gaps" — the
// evicted consumer reconnects and resumes from the replay ring.
func (h *Hub) Publish(ev middleware.Event) error {
	if err := middleware.ValidateTopic(ev.Topic); err != nil {
		return err
	}
	if ev.At.IsZero() {
		ev.At = time.Now().UTC()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrHubClosed
	}
	h.lastID++
	h.published++
	e := Entry{ID: h.lastID, Event: ev}

	if len(h.ring) < h.opts.History {
		h.ring = append(h.ring, e)
	} else {
		h.ring[h.ringStart] = e
		h.ringStart = (h.ringStart + 1) % len(h.ring)
	}

	var evict []*Sub
	h.idx.Match(ev.Topic, func(id int) {
		sub := h.subs[id]
		if sub == nil {
			return
		}
		select {
		case sub.ch <- e:
			h.delivered++
		default:
			evict = append(evict, sub)
		}
	})
	for _, s := range evict {
		s.evicted = true
		h.evicted++
		h.removeLocked(s)
	}
	return nil
}

// KickAll evicts every subscriber (each sees its channel close and, over
// SSE, reconnects and resumes). An operational lever for draining a
// service before shutdown or rebalancing, and the deterministic way to
// exercise resume in tests. Returns how many were evicted.
func (h *Hub) KickAll() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, s := range h.subs {
		s.evicted = true
		h.evicted++
		h.removeLocked(s)
		n++
	}
	return n
}

// LastID returns the most recently assigned event ID (FirstID-1 when
// nothing has been published).
func (h *Hub) LastID() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastID
}

// HubStats are cumulative hub counters.
type HubStats struct {
	Published   uint64 `json:"published"`
	Delivered   uint64 `json:"delivered"`
	Evicted     uint64 `json:"evicted"`
	Replayed    uint64 `json:"replayed"`
	Subscribers int    `json:"subscribers"`
	Retained    int    `json:"retained"`
}

// Stats returns a snapshot of the hub counters.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HubStats{
		Published:   h.published,
		Delivered:   h.delivered,
		Evicted:     h.evicted,
		Replayed:    h.replayed,
		Subscribers: len(h.subs),
		Retained:    len(h.ring),
	}
}

// Close shuts the hub down; every subscriber's channel is closed.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for _, s := range h.subs {
		h.removeLocked(s)
	}
}
