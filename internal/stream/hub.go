// Package stream is the real-time event streaming subsystem: it
// federates the in-process middleware bus across services over the
// versioned HTTP API. Server side, a Hub fans bus events out to
// HTTP subscribers over Server-Sent Events with monotonic event IDs,
// bounded per-subscriber queues, and slow-consumer eviction; a
// /v1/publish ingress lets remote processes inject events. Client side,
// Subscribe consumes a remote stream with automatic reconnection and
// Last-Event-ID resume (no gaps, no duplicates across a reconnect), and
// Bridge mirrors a remote topic subtree into a local bus — a device
// proxy on one host publishes, the measurements database on another
// ingests, exactly the distributed topology of the paper's Fig. 1.
package stream

import (
	"encoding/json"
	"errors"
	"time"

	"repro/internal/middleware"
	"repro/internal/wal"

	"sync"
)

// ErrHubClosed reports use of a closed hub.
var ErrHubClosed = errors.New("stream: hub closed")

// Entry is one sequenced event: what a Hub fans out and what the SSE
// wire carries (the ID travels as the SSE id field).
type Entry struct {
	// ID is the hub-assigned monotonic sequence number.
	ID uint64
	// Event is the bus event.
	Event middleware.Event
}

// HubOptions configure a Hub.
type HubOptions struct {
	// History is the replay ring capacity: how many recent events are
	// retained for Last-Event-ID resume. Zero means the default (1024).
	History int
	// QueueLen is the per-subscriber queue capacity; a subscriber whose
	// queue overflows is evicted (it reconnects and resumes from the
	// replay ring) rather than stalling the hub or silently losing
	// events. Zero means the default (256).
	QueueLen int
	// FirstID overrides the first event ID. Zero derives the ID base
	// from the wall clock, so a restarted hub keeps assigning IDs above
	// everything it assigned before — a resuming client never mistakes
	// fresh events for already-seen ones. A durable hub (Dir set) that
	// finds existing data continues from the persisted last ID instead.
	FirstID uint64
	// Dir re-backs the replay ring with a segmented log on disk: every
	// published event is journaled, OpenHub reloads the last History
	// entries, and Last-Event-ID resume works across a process restart,
	// not just a reconnect. Empty keeps the ring memory-only.
	Dir string
	// Fsync is the ring log's durability policy (default wal.FsyncNone:
	// the journal survives a process kill; choose a stronger mode to
	// survive machine crashes).
	Fsync wal.Mode
	// SyncEvery is the wal.FsyncInterval sync period (default 100ms).
	SyncEvery time.Duration
}

func (o HubOptions) withDefaults() HubOptions {
	if o.History <= 0 {
		o.History = 1024
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 256
	}
	if o.FirstID == 0 {
		o.FirstID = uint64(time.Now().UnixNano())
	}
	return o
}

// Hub sequences events and fans them out to pattern subscribers. It is
// the server half of the streaming subsystem: every event gets a
// monotonic ID, lands in a bounded replay ring, and is delivered to
// every subscriber whose topic pattern matches (trie-indexed, so match
// cost grows with topic depth, not subscriber count).
type Hub struct {
	opts HubOptions

	// mu is the fan-out lock: every publisher and every subscriber
	// change serializes on it, so nothing slow may ever run under it.
	mu        sync.Mutex // districtlint:lockio
	idx       *middleware.Index
	subs      map[int]*Sub
	nextSubID int
	lastID    uint64 // last assigned event ID
	ring      []Entry
	ringStart int // index of the oldest entry once the ring is full
	closed    bool

	published uint64
	delivered uint64
	evicted   uint64
	replayed  uint64

	log         *wal.Log // nil: memory-only ring; pointer guarded by mu
	jpending    []jrec   // staged journal records, ID order; guarded by mu
	persistErrs uint64
	sinceTrim   int

	// jmu serializes journal IO. It is only ever acquired with mu NOT
	// held (lock order: jmu then mu), so a publisher paying for an
	// fsync never stalls fan-out for the publishers behind it — they
	// stage under mu and one drainer group-commits the batch.
	jmu sync.Mutex
}

// jrec is one staged journal record. A nil rec poisons the journal (the
// event could not be encoded; journaling past it would shift every
// later record one seq behind its live ID).
type jrec struct {
	id  uint64
	rec []byte
}

// NewHub creates a Hub. It can only fail when Options.Dir requests a
// durable ring — use OpenHub for that; NewHub panics on a disk error.
func NewHub(opts HubOptions) *Hub {
	h, err := OpenHub(opts)
	if err != nil {
		panic("stream: NewHub: " + err.Error() + " (use OpenHub for durable rings)")
	}
	return h
}

// OpenHub creates a Hub, reloading the replay ring from Options.Dir
// when set: retained events come back with their original IDs and the
// ID sequence continues where the previous process stopped, so a
// subscriber resuming with a pre-restart Last-Event-ID replays the gap
// exactly as if the connection had merely dropped.
func OpenHub(opts HubOptions) (*Hub, error) {
	opts = opts.withDefaults()
	h := &Hub{
		opts:   opts,
		idx:    middleware.NewIndex(),
		subs:   make(map[int]*Sub),
		lastID: opts.FirstID - 1,
	}
	if opts.Dir == "" {
		return h, nil
	}
	log, err := wal.Open(opts.Dir, wal.Options{
		FirstSeq:     opts.FirstID,
		Fsync:        opts.Fsync,
		SyncEvery:    opts.SyncEvery,
		SegmentBytes: 1 << 20,
	})
	if err != nil {
		return nil, err
	}
	err = log.Replay(0, func(seq uint64, p []byte) error {
		var ev middleware.Event
		if err := json.Unmarshal(p, &ev); err != nil {
			return nil // unreadable entry: skip, keep the rest of the ring
		}
		h.ringPush(Entry{ID: seq, Event: ev})
		return nil
	})
	if err != nil {
		return nil, errors.Join(err, log.Close())
	}
	h.lastID = log.LastSeq()
	if first := opts.FirstID - 1; first > h.lastID {
		// Never continue an ID sequence the journal may not have seen
		// to the end: under the weaker fsync modes (or after a persist
		// failure detached the log) the tail of the previous process's
		// live IDs can be missing from disk, and re-issuing those IDs
		// to fresh events would let a resuming client mistake them for
		// already-seen. Jump the log — and the ID sequence with it, the
		// ID == seq invariant holds — to the wall-clock-derived FirstID,
		// which is above everything the previous process assigned.
		if err := log.SkipTo(opts.FirstID); err != nil {
			return nil, errors.Join(err, log.Close())
		}
		h.lastID = first
	}
	h.log = log
	return h, nil
}

// Sub is one hub subscription: the server-side peer of an SSE
// connection (or any other in-process consumer).
type Sub struct {
	// Pattern is the subscribed topic pattern.
	Pattern string
	// Gap reports that events between the subscriber's Last-Event-ID
	// and the oldest retained entry had already expired from the replay
	// ring at subscribe time — the resume could not be gapless.
	Gap bool
	// C delivers sequenced events. It is closed when the subscription
	// ends: by Close, by hub shutdown, or by slow-consumer eviction
	// (drain it to the end; buffered entries are still valid).
	C <-chan Entry

	hub     *Hub
	id      int
	ch      chan Entry
	evicted bool // guarded by hub.mu
}

// Subscribe registers a subscriber for pattern. afterID > 0 requests
// resume: every retained event with ID > afterID matching the pattern
// is returned as replay (deliver it before reading C — entries arriving
// on C are strictly newer, so the hand-off is gapless and duplicate-free).
func (h *Hub) Subscribe(pattern string, afterID uint64) (*Sub, []Entry, error) {
	if err := middleware.ValidatePattern(pattern); err != nil {
		return nil, nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil, ErrHubClosed
	}
	sub := &Sub{
		hub:     h,
		id:      h.nextSubID,
		Pattern: pattern,
		ch:      make(chan Entry, h.opts.QueueLen),
	}
	sub.C = sub.ch
	h.nextSubID++

	var replay []Entry
	if afterID > 0 && afterID != h.lastID {
		n := len(h.ring)
		sawSelf, sawNext := false, false // afterID / afterID+1 retained
		for i := 0; i < n; i++ {
			e := h.ring[(h.ringStart+i)%n]
			if e.ID == afterID {
				sawSelf = true
			} else if e.ID == afterID+1 {
				sawNext = true
			}
			if e.ID > afterID && middleware.Match(pattern, e.Event.Topic) {
				replay = append(replay, e)
			}
		}
		h.replayed += uint64(len(replay))
		// The resume is gapless only when the retained entries still
		// connect to afterID. A durable hub reloaded after a crash can
		// hold an ID hole (journal tail lost under a weak fsync mode,
		// then the sequence jumped past the loss): a cursor the journal
		// never saw — neither it nor its successor retained — names
		// events that existed and are gone, and must see that flagged.
		// A retained cursor followed by a jump is the clean SkipTo shape
		// (nothing between was journaled) and resumes gaplessly.
		switch {
		case afterID > h.lastID:
			sub.Gap = true // future/foreign ID: nothing to line up against
		case n == 0 || h.ring[h.ringStart].ID > afterID+1:
			sub.Gap = true // expired from the replay window
		case !sawSelf && !sawNext:
			sub.Gap = true // cursor sits in an ID hole
		}
	}

	h.subs[sub.id] = sub
	h.idx.Add(pattern, sub.id)
	return sub, replay, nil
}

// Close ends the subscription and releases its queue.
func (s *Sub) Close() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	h.removeLocked(s)
}

// Evicted reports whether the hub dropped this subscriber for falling
// behind (C is closed in that case).
func (s *Sub) Evicted() bool {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.evicted
}

// removeLocked detaches a subscription; idempotent.
func (h *Hub) removeLocked(s *Sub) {
	if _, ok := h.subs[s.id]; !ok {
		return
	}
	delete(h.subs, s.id)
	h.idx.Remove(s.Pattern, s.id)
	close(s.ch)
}

// Publish sequences one event and fans it out. A subscriber whose queue
// is full is evicted on the spot: unlike the in-process bus (at-most-once,
// drop-on-overflow), the stream contract is "no silent gaps" — the
// evicted consumer reconnects and resumes from the replay ring.
//
// On a durable hub the event is journaled before Publish returns, but
// the journal write runs outside the fan-out lock: the record is staged
// under mu and written under jmu, where concurrent publishers
// group-commit each other's staged records. An fsync therefore never
// blocks fan-out, only the publishers waiting on their own ack.
func (h *Hub) Publish(ev middleware.Event) error {
	if err := middleware.ValidateTopic(ev.Topic); err != nil {
		return err
	}
	if ev.At.IsZero() {
		ev.At = time.Now().UTC()
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrHubClosed
	}
	h.lastID++
	h.published++
	e := Entry{ID: h.lastID, Event: ev}

	h.ringPush(e)
	h.stageLocked(e)

	var evict []*Sub
	h.idx.Match(ev.Topic, func(id int) {
		sub := h.subs[id]
		if sub == nil {
			return
		}
		select {
		case sub.ch <- e:
			h.delivered++
		default:
			evict = append(evict, sub)
		}
	})
	for _, s := range evict {
		s.evicted = true
		h.evicted++
		h.removeLocked(s)
	}
	h.mu.Unlock()

	h.drainJournal()
	return nil
}

// ringPush inserts one entry into the bounded replay ring.
func (h *Hub) ringPush(e Entry) {
	if len(h.ring) < h.opts.History {
		h.ring = append(h.ring, e)
	} else {
		h.ring[h.ringStart] = e
		h.ringStart = (h.ringStart + 1) % len(h.ring)
	}
}

// stageLocked queues one published entry for the ring log. Encoding
// happens here (under mu, in ID order — staging order is what keeps the
// event-ID == log-sequence invariant); the write happens in
// drainJournal, outside the fan-out lock. An event that fails to encode
// stages a poison record: journaling past it would land every later
// record one seq behind its live ID, so the drain detaches instead.
func (h *Hub) stageLocked(e Entry) {
	if h.log == nil {
		return
	}
	rec, err := json.Marshal(e.Event)
	if err != nil {
		rec = nil
	}
	h.jpending = append(h.jpending, jrec{id: e.ID, rec: rec})
}

// drainJournal writes every staged record to the ring log and
// periodically drops the segments that have fallen out of the replay
// window. Persistence is best-effort relative to fan-out: a failure is
// counted and never stalls live delivery — but it also DETACHES the
// log, degrading the hub to its memory-only ring. Skipping single
// records instead would break the event-ID == log-sequence invariant
// recovery depends on: every later record would land one seq behind
// its live ID, and a restart would replay shifted, wrong IDs. After a
// detach, a restart resumes from the last journaled event and resume
// points beyond it draw the normal gap marker.
//
// The jmu critical section is where the disk time goes; mu is only
// taken briefly to swap the staged batch out. A caller returning from
// drainJournal knows its own staged records were written: they were
// staged before the call, so either this drain wrote them or a
// concurrent drainer did before releasing jmu.
func (h *Hub) drainJournal() {
	h.jmu.Lock()
	defer h.jmu.Unlock()
	for {
		h.mu.Lock()
		log := h.log
		batch := h.jpending
		h.jpending = nil
		h.mu.Unlock()
		if log == nil || len(batch) == 0 {
			return
		}

		recs := make([][]byte, 0, len(batch))
		for _, r := range batch {
			if r.rec == nil {
				recs = nil // poison: encode failure, detach below
				break
			}
			recs = append(recs, r.rec)
		}
		var err error
		if recs == nil {
			err = errors.New("stream: event payload not JSON-encodable")
		} else {
			_, err = log.AppendBatch(recs)
		}
		if err != nil {
			h.mu.Lock()
			h.persistErrs += uint64(len(batch))
			if h.log == log {
				h.log = nil
			}
			h.mu.Unlock()
			// The log is already sticky-failed (or holds an event it
			// must not outlive); Close is cleanup, not durability.
			_ = log.Close() //lint:ignore closecheck log already sticky-failed; Close error carries no new information
			return
		}

		h.mu.Lock()
		h.sinceTrim += len(batch)
		due := h.sinceTrim >= h.opts.History/2+1
		if due {
			h.sinceTrim = 0
		}
		last := batch[len(batch)-1].id
		h.mu.Unlock()
		if due && last >= uint64(h.opts.History) {
			_ = log.TruncateBefore(last - uint64(h.opts.History) + 1)
		}
	}
}

// KickAll evicts every subscriber (each sees its channel close and, over
// SSE, reconnects and resumes). An operational lever for draining a
// service before shutdown or rebalancing, and the deterministic way to
// exercise resume in tests. Returns how many were evicted.
func (h *Hub) KickAll() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, s := range h.subs {
		s.evicted = true
		h.evicted++
		h.removeLocked(s)
		n++
	}
	return n
}

// LastID returns the most recently assigned event ID (FirstID-1 when
// nothing has been published).
func (h *Hub) LastID() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastID
}

// HubStats are cumulative hub counters.
type HubStats struct {
	Published   uint64 `json:"published"`
	Delivered   uint64 `json:"delivered"`
	Evicted     uint64 `json:"evicted"`
	Replayed    uint64 `json:"replayed"`
	Subscribers int    `json:"subscribers"`
	Retained    int    `json:"retained"`
	// PersistErrors counts ring-log write failures of a durable hub
	// (events stay live but would not survive a restart).
	PersistErrors uint64 `json:"persist_errors,omitempty"`
}

// QueueDepth sums the entries buffered across every subscriber queue —
// a live measure of how far the slowest consumers are behind fan-out.
func (h *Hub) QueueDepth() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	depth := 0
	for _, s := range h.subs {
		depth += len(s.ch)
	}
	return depth
}

// Stats returns a snapshot of the hub counters.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HubStats{
		Published:     h.published,
		Delivered:     h.delivered,
		Evicted:       h.evicted,
		Replayed:      h.replayed,
		Subscribers:   len(h.subs),
		Retained:      len(h.ring),
		PersistErrors: h.persistErrs,
	}
}

// Close shuts the hub down; every subscriber's channel is closed and a
// durable ring log is drained and synced for the next boot. The
// returned error is the ring log's close error — a durable hub caller
// that drops it cannot tell whether the final flush reached disk.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	for _, s := range h.subs {
		h.removeLocked(s)
	}
	h.mu.Unlock()

	// Flush anything still staged (closed is set, so no new records can
	// appear behind the drain), then detach and close outside mu.
	h.drainJournal()
	h.mu.Lock()
	log := h.log
	h.log = nil
	h.mu.Unlock()
	if log == nil {
		return nil
	}
	return log.Close()
}
