package stream

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/middleware"
)

func event(topic, payload string) middleware.Event {
	return middleware.Event{Topic: topic, Payload: []byte(payload)}
}

// collect drains n entries from a sub channel with a deadline.
func collect(t *testing.T, c <-chan Entry, n int) []Entry {
	t.Helper()
	out := make([]Entry, 0, n)
	deadline := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case e, ok := <-c:
			if !ok {
				t.Fatalf("channel closed after %d/%d entries", len(out), n)
			}
			out = append(out, e)
		case <-deadline:
			t.Fatalf("timeout after %d/%d entries", len(out), n)
		}
	}
	return out
}

func TestHubFanoutFiltersByPattern(t *testing.T) {
	h := NewHub(HubOptions{FirstID: 1})
	defer h.Close()

	all, _, err := h.Subscribe("#", 0)
	if err != nil {
		t.Fatal(err)
	}
	temp, _, err := h.Subscribe("measurements/+/temperature", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Subscribe("bad//pattern", 0); err == nil {
		t.Fatal("malformed pattern accepted")
	}

	for i, topic := range []string{
		"measurements/d1/temperature",
		"measurements/d1/humidity",
		"registry/registered",
		"measurements/d2/temperature",
	} {
		if err := h.Publish(event(topic, fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}

	got := collect(t, all.C, 4)
	for i := 1; i < len(got); i++ {
		if got[i].ID != got[i-1].ID+1 {
			t.Fatalf("IDs not monotonic: %d then %d", got[i-1].ID, got[i].ID)
		}
	}
	filtered := collect(t, temp.C, 2)
	for _, e := range filtered {
		if !strings.HasSuffix(e.Event.Topic, "/temperature") {
			t.Fatalf("pattern leak: %s", e.Event.Topic)
		}
	}
	st := h.Stats()
	if st.Published != 4 || st.Delivered != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHubReplayResume(t *testing.T) {
	h := NewHub(HubOptions{FirstID: 1, History: 64})
	defer h.Close()
	for i := 1; i <= 10; i++ {
		if err := h.Publish(event("a/b", fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Resume after ID 6: replay must be exactly 7..10, no gap flagged.
	sub, replay, err := h.Subscribe("#", 6)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Gap {
		t.Fatal("gap reported though ring covers the resume point")
	}
	if len(replay) != 4 || replay[0].ID != 7 || replay[3].ID != 10 {
		t.Fatalf("replay = %+v", replay)
	}
	// Live events continue the sequence with no duplicates.
	if err := h.Publish(event("a/b", "11")); err != nil {
		t.Fatal(err)
	}
	live := collect(t, sub.C, 1)
	if live[0].ID != 11 {
		t.Fatalf("live ID = %d, want 11", live[0].ID)
	}
}

func TestHubReplayGapDetection(t *testing.T) {
	h := NewHub(HubOptions{FirstID: 1, History: 4})
	defer h.Close()
	for i := 1; i <= 10; i++ { // ring retains only 7..10
		if err := h.Publish(event("a/b", fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	sub, replay, err := h.Subscribe("#", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Gap {
		t.Fatal("expired resume point not flagged as gap")
	}
	if len(replay) != 4 || replay[0].ID != 7 {
		t.Fatalf("replay = %+v", replay)
	}
	// A current resume point stays gapless.
	fresh, _, err := h.Subscribe("#", 10)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Gap {
		t.Fatal("up-to-date subscriber flagged as gapped")
	}
}

func TestHubSlowConsumerEvictedWithoutStalling(t *testing.T) {
	h := NewHub(HubOptions{FirstID: 1, QueueLen: 4})
	defer h.Close()
	slow, _, err := h.Subscribe("#", 0) // never drained
	if err != nil {
		t.Fatal(err)
	}
	fast, _, err := h.Subscribe("#", 0)
	if err != nil {
		t.Fatal(err)
	}
	var drained atomic.Int64
	done := make(chan []Entry)
	go func() {
		var got []Entry
		for e := range fast.C {
			got = append(got, e)
			drained.Add(1)
		}
		done <- got
	}()

	start := time.Now()
	for i := 1; i <= 20; i++ {
		if err := h.Publish(event("x/y", fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
		// Pace on the fast consumer so only the slow one builds backlog.
		for drained.Load() < int64(i) && time.Since(start) < 5*time.Second {
			time.Sleep(100 * time.Microsecond)
		}
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("publish stalled behind slow consumer: %v for 20 events", d)
	}
	if !slow.Evicted() {
		t.Fatal("slow consumer not evicted")
	}
	// The slow consumer's channel closes after its buffered entries.
	n := 0
	for range slow.C {
		n++
	}
	if n != 4 {
		t.Fatalf("slow consumer drained %d buffered entries, want 4", n)
	}
	h.Close()
	got := <-done
	if len(got) != 20 {
		t.Fatalf("fast consumer saw %d/20 events", len(got))
	}
	if st := h.Stats(); st.Evicted != 1 {
		t.Fatalf("evicted = %d", st.Evicted)
	}
}

// newStreamServer wires a synchronous bus + stream service into a full
// api.Server behind httptest (the complete middleware chain, gzip
// included, exactly as a real service serves it).
func newStreamServer(t *testing.T, opts Options) (*middleware.Bus, *Service, *httptest.Server) {
	t.Helper()
	bus := middleware.NewBus(middleware.BusOptions{QueueLen: -1})
	if opts.Hub.FirstID == 0 {
		opts.Hub.FirstID = 1
	}
	svc, err := NewService(bus, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := api.NewServer(api.Options{Service: "streamtest"})
	svc.Mount(srv)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
		bus.Close()
	})
	return bus, svc, ts
}

func TestSSERoundTrip(t *testing.T) {
	bus, svc, ts := newStreamServer(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sub, err := Subscribe(ctx, ts.URL, "measurements/#", SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// The SSE subscription races the first publish; wait for the hub to
	// see the subscriber before publishing.
	waitSubscribers(t, svc, 1)

	want := map[string]bool{}
	for i := 0; i < 5; i++ {
		topic := fmt.Sprintf("measurements/dev%d/temperature", i)
		want[topic] = true
		if err := bus.Publish(middleware.Event{
			Topic:   topic,
			Payload: []byte(fmt.Sprintf(`{"n":%d}`, i)),
			Headers: map[string]string{"content-type": "application/json"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	bus.Publish(event("other/topic", "filtered")) // must not arrive

	for i := 0; i < 5; i++ {
		select {
		case ev := <-sub.Events:
			if !want[ev.Topic] {
				t.Fatalf("unexpected topic %s", ev.Topic)
			}
			delete(want, ev.Topic)
			if ev.Headers["content-type"] != "application/json" {
				t.Fatalf("headers lost: %+v", ev.Headers)
			}
			if ev.At.IsZero() {
				t.Fatal("timestamp lost in transit")
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out with %d topics outstanding", len(want))
		}
	}
}

func TestPublishIngressReachesBusAndStream(t *testing.T) {
	bus, svc, ts := newStreamServer(t, Options{})
	ctx := context.Background()

	// A local bus subscriber and a remote SSE subscriber both see an
	// event injected through the HTTP ingress.
	local := make(chan middleware.Event, 1)
	if _, err := bus.Subscribe("ingress/#", func(ev middleware.Event) { local <- ev }); err != nil {
		t.Fatal(err)
	}
	sub, err := Subscribe(ctx, ts.URL, "ingress/#", SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitSubscribers(t, svc, 1)

	pub := &RemotePublisher{BaseURL: ts.URL}
	if err := pub.Publish(event("ingress/x", "hello")); err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]<-chan middleware.Event{"local": local, "sse": sub.Events} {
		select {
		case ev := <-ch:
			if ev.Topic != "ingress/x" || string(ev.Payload) != "hello" {
				t.Fatalf("%s got %+v", name, ev)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s subscriber never saw the ingress event", name)
		}
	}

	// Wildcard topics are rejected at the ingress.
	if err := pub.Publish(middleware.Event{Topic: "bad/#", Payload: []byte("x")}); err == nil {
		t.Fatal("wildcard topic accepted by ingress")
	}
}

// TestSSEReconnectResumeExactlyOnce drives the full resume loop: the
// hub evicts every SSE subscriber mid-stream (KickAll — the same path a
// slow-consumer eviction or service drain takes), the client reconnects
// on its own with Last-Event-ID, and the replay ring fills the gap so
// the consumer sees every event exactly once.
func TestSSEReconnectResumeExactlyOnce(t *testing.T) {
	bus, svc, ts := newStreamServer(t, Options{Hub: HubOptions{History: 256}})
	ctx := context.Background()

	sub, err := Subscribe(ctx, ts.URL, "seq/#", SubscribeOptions{
		BaseDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitSubscribers(t, svc, 1)

	publish := func(from, to int) {
		for i := from; i <= to; i++ {
			if err := bus.Publish(event("seq/n", fmt.Sprint(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	receive := func(n int) []string {
		var out []string
		deadline := time.After(10 * time.Second)
		for len(out) < n {
			select {
			case ev, ok := <-sub.Events:
				if !ok {
					t.Fatalf("stream ended early (%v) after %d/%d", sub.Err(), len(out), n)
				}
				out = append(out, string(ev.Payload))
			case <-deadline:
				t.Fatalf("timeout after %d/%d events", len(out), n)
			}
		}
		return out
	}

	publish(1, 10)
	got := receive(10)

	// Kill every server-side subscription; publish while the client is
	// disconnected; the reconnect must replay exactly what was missed.
	if n := svc.Hub().KickAll(); n != 1 {
		t.Fatalf("kicked %d subscribers, want 1", n)
	}
	publish(11, 20)
	waitSubscribers(t, svc, 1) // reconnected
	publish(21, 25)
	got = append(got, receive(15)...)

	if sub.Reconnects() == 0 {
		t.Fatal("client never reconnected")
	}
	seen := map[string]int{}
	for _, p := range got {
		seen[p]++
	}
	for i := 1; i <= 25; i++ {
		if seen[fmt.Sprint(i)] != 1 {
			t.Fatalf("event %d delivered %d times; all: %v", i, seen[fmt.Sprint(i)], got)
		}
	}
}

func TestBridgeMirrorsRemoteSubtree(t *testing.T) {
	remoteBus, svc, ts := newStreamServer(t, Options{})
	ctx := context.Background()

	localBus := middleware.NewBus(middleware.BusOptions{QueueLen: -1})
	defer localBus.Close()
	mirrored := make(chan middleware.Event, 16)
	if _, err := localBus.Subscribe("measurements/#", func(ev middleware.Event) { mirrored <- ev }); err != nil {
		t.Fatal(err)
	}

	b, err := NewBridge(ctx, ts.URL, "measurements/#", localBus, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	waitSubscribers(t, svc, 1)

	if err := remoteBus.Publish(middleware.Event{
		Topic: "measurements/d1/temperature", Payload: []byte("21.5"),
		Headers: map[string]string{"content-type": "text/plain"},
	}); err != nil {
		t.Fatal(err)
	}
	remoteBus.Publish(event("registry/registered", "not-mirrored"))

	select {
	case ev := <-mirrored:
		if ev.Topic != "measurements/d1/temperature" {
			t.Fatalf("mirrored topic = %s", ev.Topic)
		}
		if ev.Headers[ViaHeader] != ts.URL {
			t.Fatalf("via marker missing: %+v", ev.Headers)
		}
		if ev.Headers["content-type"] != "text/plain" {
			t.Fatalf("original headers lost: %+v", ev.Headers)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bridge never mirrored the event")
	}

	// Already-bridged events are not re-mirrored (loop protection).
	if err := remoteBus.Publish(middleware.Event{
		Topic: "measurements/d1/humidity", Payload: []byte("45"),
		Headers: map[string]string{ViaHeader: "http://elsewhere"},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Skipped() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if b.Skipped() != 1 {
		t.Fatalf("loop protection skipped %d events, want 1", b.Skipped())
	}
	select {
	case ev := <-mirrored:
		t.Fatalf("bridged event re-mirrored: %+v", ev)
	default:
	}
	if b.Mirrored() != 1 {
		t.Fatalf("Mirrored = %d", b.Mirrored())
	}
}

func TestPublishIngressRateLimited(t *testing.T) {
	_, _, ts := newStreamServer(t, Options{
		PublishLimiter: api.NewRateLimiter(1, 2), // 2-token burst, 1/s refill
	})
	pub := &RemotePublisher{BaseURL: ts.URL, Transport: &api.Transport{MaxAttempts: 1}}
	if err := pub.Publish(event("a/b", "1")); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(event("a/b", "2")); err != nil {
		t.Fatal(err)
	}
	err := pub.Publish(event("a/b", "3"))
	var se *api.StatusError
	if err == nil || !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("third publish = %v, want 429", err)
	}
}

// waitSubscribers polls the hub until the subscriber count reaches n.
func waitSubscribers(t *testing.T, svc *Service, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if svc.Hub().Stats().Subscribers >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("hub never reached %d subscribers", n)
}

func TestHubDurableResumeAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	h, err := OpenHub(HubOptions{Dir: dir, History: 64, FirstID: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := h.Publish(event("measurements/turin/a", fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	lastID := h.LastID()
	if lastID != 10 {
		t.Fatalf("lastID = %d, want 10", lastID)
	}
	h.Close()

	// A new process: the ring comes back from disk, IDs continue, and a
	// pre-restart Last-Event-ID replays the gap with no Gap flag.
	h2, err := OpenHub(HubOptions{Dir: dir, History: 64, FirstID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if got := h2.LastID(); got != lastID {
		t.Fatalf("reloaded lastID = %d, want %d", got, lastID)
	}
	if got := h2.Stats().Retained; got != 10 {
		t.Fatalf("reloaded retained = %d, want 10", got)
	}
	sub, replay, err := h2.Subscribe("measurements/#", 5)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if sub.Gap {
		t.Fatal("resume across restart flagged a gap")
	}
	if len(replay) != 5 || replay[0].ID != 6 || string(replay[4].Event.Payload) != "v9" {
		t.Fatalf("replay = %d entries, first %v", len(replay), replay)
	}
	// New publishes continue the sequence.
	if err := h2.Publish(event("measurements/turin/a", "fresh")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sub.C, 1)
	if got[0].ID != 11 {
		t.Fatalf("post-restart ID = %d, want 11", got[0].ID)
	}
}

func TestHubDurableRingBoundedAndCompacted(t *testing.T) {
	dir := t.TempDir()
	h, err := OpenHub(HubOptions{Dir: dir, History: 8, FirstID: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := h.Publish(event("measurements/turin/b", fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	h.Close()

	h2, err := OpenHub(HubOptions{Dir: dir, History: 8, FirstID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if got := h2.Stats().Retained; got != 8 {
		t.Fatalf("retained = %d, want History", got)
	}
	// Resuming from before the ring reaches back is flagged as a gap,
	// exactly like the memory-only hub.
	sub, replay, err := h2.Subscribe("measurements/#", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if !sub.Gap {
		t.Fatal("expired resume point not flagged")
	}
	if len(replay) == 0 || replay[len(replay)-1].ID != 100 {
		t.Fatalf("replay tail = %v", replay)
	}
}

func TestHubDurableReopenNeverReusesLiveIDs(t *testing.T) {
	// Default (wall-clock) FirstID on reopen: even if the journal tail
	// were lost, new events must get IDs above everything the previous
	// process assigned — and a cursor in the resulting ID hole is
	// flagged as a gap instead of silently skipping events.
	dir := t.TempDir()
	h, err := OpenHub(HubOptions{Dir: dir, History: 16, FirstID: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // IDs 100..103 journaled
		if err := h.Publish(event("measurements/turin/c", "x")); err != nil {
			t.Fatal(err)
		}
	}
	h.Close()

	// Reopen with a FirstID far ahead (standing in for the wall clock
	// after IDs 104..120 were assigned live but lost from the journal).
	h2, err := OpenHub(HubOptions{Dir: dir, History: 16, FirstID: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if got := h2.LastID(); got != 999 {
		t.Fatalf("lastID after jump = %d, want 999", got)
	}
	if err := h2.Publish(event("measurements/turin/c", "fresh")); err != nil {
		t.Fatal(err)
	}
	// A cursor inside the hole (an ID the journal never saw) is a gap.
	sub, replay, err := h2.Subscribe("measurements/#", 110)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if !sub.Gap {
		t.Fatal("cursor in the ID hole not flagged as gap")
	}
	if len(replay) != 1 || replay[0].ID != 1000 {
		t.Fatalf("replay across the hole = %v", replay)
	}
	// A cursor exactly at the journal tail resumes gaplessly.
	sub2, replay2, err := h2.Subscribe("measurements/#", 103)
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	if sub2.Gap {
		t.Fatal("journal-tail cursor wrongly flagged")
	}
	if len(replay2) != 1 || replay2[0].ID != 1000 {
		t.Fatalf("replay2 = %v", replay2)
	}
}
