package stream

import (
	"context"
	"sync/atomic"

	"repro/internal/middleware"
)

// ViaHeader marks an event as having crossed a bridge; its value is the
// remote base URL the event was mirrored from. A bridge never mirrors an
// event that already carries its own source marker, which breaks the
// trivial two-bridge loop (A→B and B→A over the same subtree).
const ViaHeader = "x-stream-via"

// Bridge mirrors a topic subtree from a remote service's stream into a
// local bus: the distributed data path of the paper's Fig. 1 topology —
// device proxies publish on one host, the measurements database ingests
// on another — carried over the versioned HTTP API instead of a
// dedicated middleware TCP link. It rides a resuming Subscription, so a
// remote restart or network blip costs nothing as long as the remote
// replay ring covers the outage.
type Bridge struct {
	sub      *Subscription
	remote   string
	done     chan struct{}
	mirrored atomic.Uint64
	skipped  atomic.Uint64
}

// NewBridge subscribes to pattern on the service at remoteBase and
// republishes every received event into local. Cancelling ctx or
// calling Close stops the mirror.
func NewBridge(ctx context.Context, remoteBase, pattern string, local Publisher, opts SubscribeOptions) (*Bridge, error) {
	sub, err := Subscribe(ctx, remoteBase, pattern, opts)
	if err != nil {
		return nil, err
	}
	b := &Bridge{sub: sub, remote: remoteBase, done: make(chan struct{})}
	go b.run(local)
	return b, nil
}

func (b *Bridge) run(local Publisher) {
	defer close(b.done)
	for ev := range b.sub.Events {
		if ev.Headers[ViaHeader] != "" {
			b.skipped.Add(1)
			continue // already bridged once; don't build forwarding loops
		}
		// Copy headers before annotating: the map may be shared with
		// other consumers of the same subscription buffer.
		headers := make(map[string]string, len(ev.Headers)+1)
		for k, v := range ev.Headers {
			headers[k] = v
		}
		headers[ViaHeader] = b.remote
		ev.Headers = headers
		if err := local.Publish(ev); err == nil {
			b.mirrored.Add(1)
		}
	}
}

// Mirrored returns how many events the bridge republished locally.
func (b *Bridge) Mirrored() uint64 { return b.mirrored.Load() }

// Skipped returns how many already-bridged events were dropped (loop
// protection).
func (b *Bridge) Skipped() uint64 { return b.skipped.Load() }

// LastID returns the remote event ID the bridge has mirrored up to.
func (b *Bridge) LastID() uint64 { return b.sub.LastID() }

// Err surfaces the underlying subscription's terminal error, if any.
func (b *Bridge) Err() error { return b.sub.Err() }

// Close stops the bridge and waits for the mirror loop to drain.
func (b *Bridge) Close() {
	b.sub.Close()
	<-b.done
}

// Ensure the middleware types satisfy the local-side contract.
var (
	_ Publisher = (*middleware.Bus)(nil)
	_ Publisher = (*middleware.Node)(nil)
	_ EventBus  = (*middleware.Bus)(nil)
	_ EventBus  = (*middleware.Node)(nil)
)
